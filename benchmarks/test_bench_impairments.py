"""Impairment-pipeline benchmarks: the batched kernels over frame stacks.

The robustness experiment pushes every Monte-Carlo batch through the full
impairment chain before the noise stage; these benchmarks pin the chain's
throughput on a WiFi-sized batch and sanity-check that the arithmetic
stays the deterministic contract (same generators, same samples).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.impairments import (
    Adc,
    CarrierFrequencyOffset,
    ImpairmentPipeline,
    IQImbalance,
    Multipath,
    PhaseNoise,
)
from repro.montecarlo.seeding import trial_rng

#: A Monte-Carlo-default batch of WiFi-frame-sized rows.
BATCH = 32
SAMPLES = 4000


def _pipeline() -> ImpairmentPipeline:
    return ImpairmentPipeline((
        CarrierFrequencyOffset(97_600.0, 20e6),
        Multipath(n_taps=4, tap_spacing_samples=2),
        PhaseNoise(1e-3),
        IQImbalance(gain_db=0.5, phase_deg=1.0),
        Adc(n_bits=10, full_scale=4.0),
    ))


@pytest.fixture
def stack(rng) -> np.ndarray:
    return rng.normal(size=(BATCH, SAMPLES)) + 1j * rng.normal(
        size=(BATCH, SAMPLES)
    )


def _rngs():
    return [trial_rng(2022, "bench/impair", k) for k in range(BATCH)]


def test_bench_full_chain_batch32(benchmark, stack):
    """Five-kernel chain over a (32, 4000) batch."""
    pipeline = _pipeline()
    out = benchmark(lambda: pipeline.apply(stack, _rngs()))
    assert out.shape == stack.shape
    # Deterministic contract: same addressed generators, same samples.
    again = pipeline.apply(stack, _rngs())
    assert np.array_equal(out, again)


def test_bench_cfo_only_batch32(benchmark, stack):
    """The cheapest kernel alone — the per-batch overhead floor."""
    kernel = CarrierFrequencyOffset(97_600.0, 20e6)
    out = benchmark(lambda: kernel.apply(stack))
    assert out.shape == stack.shape
