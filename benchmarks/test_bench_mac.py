"""Benchmarks: the coexistence-simulator experiments (Figs. 14, 15, 16)
and the scenario-engine event core."""

from __future__ import annotations

import pytest

from repro.experiments import fig14_dwz, fig15_dz, fig16_traffic
from repro.mac.events import EventScheduler
from repro.mac.scenario import grid_scenario, run_scenario

#: Short simulated duration so one benchmark round stays subsecond-scale.
QUICK_US = 120_000.0

#: Events pushed through the calendar queue per benchmark round.
EVENT_CORE_N = 100_000

#: Dispatch-rate floor (events/second).  The indexed calendar queue
#: sustains ~140k dispatches/s under this churn mix on a development
#: machine; the floor leaves >3x head-room so only a genuine complexity
#: regression (not runner noise) can trip it.
EVENT_CORE_FLOOR_PER_S = 40_000.0


def _event_core_round() -> int:
    """Schedule/cancel/dispatch churn: the scenario engine's hot loop.

    Every third event reschedules a later one and every fifth cancels
    one, so the lazy-deletion and compaction paths are on the clock too.
    """
    sched = EventScheduler()
    live: "list[int]" = []
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count >= EVENT_CORE_N:
            return  # stop growing; the remaining backlog drains
        live.append(sched.schedule(7.0 + (count % 13), tick))
        if count % 3 == 0 and live:
            sched.reschedule(live[len(live) // 2], 29.0)
        if count % 5 == 0 and live:
            sched.cancel(live.pop(0))
            live.append(sched.schedule(11.0, tick))
    for i in range(64):
        live.append(sched.schedule(float(i % 7), tick))
    sched.run_until(float("inf"))
    return count


def test_bench_event_core(benchmark):
    """Calendar-queue dispatch rate with live cancel/reschedule churn."""
    count = benchmark.pedantic(_event_core_round, rounds=3, iterations=1)
    assert count >= EVENT_CORE_N
    rate = count / benchmark.stats.stats.min
    assert rate > EVENT_CORE_FLOOR_PER_S, (
        f"event core dispatched {rate:,.0f} events/s; "
        f"floor is {EVENT_CORE_FLOOR_PER_S:,.0f}"
    )


def test_bench_scenario_grid(benchmark):
    """One mid-size multi-cell scenario (2 BSSs, 40 sensors) end to end."""
    result = benchmark.pedantic(
        lambda: run_scenario(grid_scenario(
            2, 40, name="bench-grid", duration_us=60_000.0, master_seed=3,
        )),
        rounds=1, iterations=1,
    )
    assert result.packets_attempted > 0
    assert 0.0 < result.delivery_ratio <= 1.0


def test_bench_fig14a_dwz_ch13(benchmark):
    """Fig. 14(a): ZigBee throughput vs d_WZ on a CH1-CH3 channel."""
    result = benchmark.pedantic(
        lambda: fig14_dwz.sweep_channel(
            3, distances=(3.5, 9.0), duration_us=QUICK_US
        ),
        rounds=1, iterations=1,
    )
    assert result["normal"][0] < 5.0       # blocked at 3.5 m
    assert result["qam256"][1] > 40.0      # everyone healthy at 9 m
    assert result["normal"][1] > 40.0


def test_bench_fig14b_dwz_ch4(benchmark):
    """Fig. 14(b): CH4 panel — QAM-256 already works at 1 m."""
    result = benchmark.pedantic(
        lambda: fig14_dwz.sweep_channel(4, distances=(1.0,), duration_us=QUICK_US),
        rounds=1, iterations=1,
    )
    assert result["qam256"][0] > 40.0
    assert result["normal"][0] < 5.0


def test_bench_fig15_dz(benchmark):
    """Fig. 15: collapse when the ZigBee link weakens past ~1.6 m."""
    result = benchmark.pedantic(
        lambda: fig15_dz.sweep(distances=(1.0, 1.8), duration_us=QUICK_US),
        rounds=1, iterations=1,
    )
    assert result["qam256"][0] > 40.0
    assert result["qam256"][1] < 10.0


def test_bench_fig16_duty_ratio(benchmark):
    """Fig. 16: throughput vs WiFi duration ratio with box statistics."""
    result = benchmark.pedantic(
        lambda: fig16_traffic.sweep(
            ratios=(0.2, 0.8), duration_us=QUICK_US, n_seeds=2
        ),
        rounds=1, iterations=1,
    )
    assert result["normal"][1].mean < 10.0
    assert result["qam256"][1].mean > 25.0


def test_bench_fig4_multilink(benchmark):
    """Fig. 4 motivation scenario: two links, both failure modes."""
    from repro.experiments import fig04_scenario

    result = benchmark.pedantic(
        lambda: fig04_scenario.run(duration_us=QUICK_US), rounds=1, iterations=1
    )
    rows = {row[0]: row for row in result.rows}
    assert rows["normal"][1] < 5.0
    assert rows["sledzig qam256"][1] > 40.0
