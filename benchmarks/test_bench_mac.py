"""Benchmarks: the coexistence-simulator experiments (Figs. 14, 15, 16)."""

from __future__ import annotations

import pytest

from repro.experiments import fig14_dwz, fig15_dz, fig16_traffic

#: Short simulated duration so one benchmark round stays subsecond-scale.
QUICK_US = 120_000.0


def test_bench_fig14a_dwz_ch13(benchmark):
    """Fig. 14(a): ZigBee throughput vs d_WZ on a CH1-CH3 channel."""
    result = benchmark.pedantic(
        lambda: fig14_dwz.sweep_channel(
            3, distances=(3.5, 9.0), duration_us=QUICK_US
        ),
        rounds=1, iterations=1,
    )
    assert result["normal"][0] < 5.0       # blocked at 3.5 m
    assert result["qam256"][1] > 40.0      # everyone healthy at 9 m
    assert result["normal"][1] > 40.0


def test_bench_fig14b_dwz_ch4(benchmark):
    """Fig. 14(b): CH4 panel — QAM-256 already works at 1 m."""
    result = benchmark.pedantic(
        lambda: fig14_dwz.sweep_channel(4, distances=(1.0,), duration_us=QUICK_US),
        rounds=1, iterations=1,
    )
    assert result["qam256"][0] > 40.0
    assert result["normal"][0] < 5.0


def test_bench_fig15_dz(benchmark):
    """Fig. 15: collapse when the ZigBee link weakens past ~1.6 m."""
    result = benchmark.pedantic(
        lambda: fig15_dz.sweep(distances=(1.0, 1.8), duration_us=QUICK_US),
        rounds=1, iterations=1,
    )
    assert result["qam256"][0] > 40.0
    assert result["qam256"][1] < 10.0


def test_bench_fig16_duty_ratio(benchmark):
    """Fig. 16: throughput vs WiFi duration ratio with box statistics."""
    result = benchmark.pedantic(
        lambda: fig16_traffic.sweep(
            ratios=(0.2, 0.8), duration_us=QUICK_US, n_seeds=2
        ),
        rounds=1, iterations=1,
    )
    assert result["normal"][1].mean < 10.0
    assert result["qam256"][1].mean > 25.0


def test_bench_fig4_multilink(benchmark):
    """Fig. 4 motivation scenario: two links, both failure modes."""
    from repro.experiments import fig04_scenario

    result = benchmark.pedantic(
        lambda: fig04_scenario.run(duration_us=QUICK_US), rounds=1, iterations=1
    )
    rows = {row[0]: row for row in result.rows}
    assert rows["normal"][1] < 5.0
    assert rows["sledzig qam256"][1] > 40.0
