"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures (the mapping
lives in DESIGN.md).  pytest-benchmark provides the timing fixture; the
returned values are additionally sanity-checked so a benchmark can never
silently regenerate the wrong numbers fast.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for benchmark payloads."""
    return np.random.default_rng(2022)
