"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures (the mapping
lives in DESIGN.md).  pytest-benchmark provides the timing fixture; the
returned values are additionally sanity-checked so a benchmark can never
silently regenerate the wrong numbers fast.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for benchmark payloads."""
    return np.random.default_rng(2022)


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<suite>.json`` per benchmark module that ran.

    The files land in the repository root (where CI collects them as
    artifacts): timing stats keyed by test name, grouped by the
    ``test_bench_<suite>.py`` module they came from.  Runs without
    pytest-benchmark results (collection-only, ``--benchmark-disable``)
    write nothing.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return
    suites: "dict[str, dict[str, dict]]" = {}
    for bench in benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue  # errored benchmark: nothing to record
        module = Path(bench.fullname.split("::")[0]).stem
        suite = module.removeprefix("test_bench_")
        stat_dict = stats.as_dict()
        suites.setdefault(suite, {})[bench.name] = {
            "fullname": bench.fullname,
            "rounds": stat_dict.get("rounds"),
            "iterations": bench.iterations,
            "min_s": stat_dict.get("min"),
            "mean_s": stat_dict.get("mean"),
            "stddev_s": stat_dict.get("stddev"),
        }
    for suite, entries in suites.items():
        out = Path(session.config.rootpath) / f"BENCH_{suite}.json"
        out.write_text(json.dumps({"suite": suite, "benchmarks": entries},
                                  indent=2, sort_keys=True) + "\n")
