"""Gateway load-smoke benchmarks: sustained request throughput + SLOs.

The serving layer's reason to exist is sustained throughput: many
single-frame clients must ride the batch kernels' vectorization without
knowing batches exist.  The load smoke drives 256 frame requests from 16
concurrent clients through an inline-pool gateway and asserts a hard
floor of 500 frame-requests/s (the ISSUE-9 acceptance number for CI
hardware); a second benchmark pins the coalescing overhead itself by
comparing against the bare ``encode_frames`` batch call on the same
payloads.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.gateway import BatchPolicy, EncodeProfile, GatewayClient, GatewayServer
from repro.sledzig.pipeline import encode_frames

#: The load point: 16 clients x 16 frames of 8-octet payloads.
N_CLIENTS = 16
FRAMES_PER_CLIENT = 16
PAYLOAD_OCTETS = 8

#: Acceptance floor: sustained frame-requests per second through the
#: gateway (coalescing + pool + SLO accounting included).
THROUGHPUT_FLOOR_FPS = 500.0

PROFILE = EncodeProfile(technology="sledzig", mcs="qam16-1/2", channel="CH1")
POLICY = BatchPolicy(max_batch=32, max_linger_s=0.001,
                     max_pending=4 * N_CLIENTS * FRAMES_PER_CLIENT)


def _payloads(rng) -> "list[list[bytes]]":
    return [
        [
            rng.integers(0, 256, size=PAYLOAD_OCTETS, dtype=np.uint8).tobytes()
            for _ in range(FRAMES_PER_CLIENT)
        ]
        for _ in range(N_CLIENTS)
    ]


async def _drive(per_client) -> "tuple[int, float, dict]":
    async with GatewayServer(PROFILE, POLICY) as gateway:
        clients = [GatewayClient(gateway) for _ in per_client]

        async def one_client(client, frames):
            for frame in frames:
                await client.encode(frame, timeout_s=60.0)

        loop = asyncio.get_running_loop()
        start = loop.time()
        await asyncio.gather(*(
            one_client(client, frames)
            for client, frames in zip(clients, per_client)
        ))
        seconds = loop.time() - start
        slo = gateway.slo_snapshot()
    return N_CLIENTS * FRAMES_PER_CLIENT, seconds, slo


def test_bench_gateway_load_smoke(benchmark, rng):
    """256 concurrent frame requests through the gateway, >= 500 fps."""
    per_client = _payloads(rng)
    # Warm the table caches so the benchmark measures steady-state serving.
    encode_frames([per_client[0][0]], PROFILE.mcs, PROFILE.channel,
                  PROFILE.scrambler_seed)

    def load():
        return asyncio.run(_drive(per_client))

    n_frames, seconds, slo = benchmark(load)
    fps = n_frames / seconds
    assert slo["encoded"] == n_frames
    assert slo["drops"] == {}
    assert slo["latency_s"]["p99"] >= slo["latency_s"]["p50"] > 0
    assert fps >= THROUGHPUT_FLOOR_FPS, (
        f"gateway sustained only {fps:.0f} frame-requests/s "
        f"(floor {THROUGHPUT_FLOOR_FPS})"
    )


def test_bench_gateway_overhead_vs_bare_batch(benchmark, rng):
    """Serving overhead: the gateway must stay within 2x of calling the
    batch API directly on the same frames (futures, timers, coalescing
    and SLO accounting are the price of the serving semantics)."""
    import time

    per_client = _payloads(rng)
    flat = [frame for frames in per_client for frame in frames]
    encode_frames(flat[:1], PROFILE.mcs, PROFILE.channel,
                  PROFILE.scrambler_seed)

    start = time.perf_counter()
    encode_frames(flat, PROFILE.mcs, PROFILE.channel, PROFILE.scrambler_seed)
    bare_seconds = time.perf_counter() - start

    def load():
        return asyncio.run(_drive(per_client))

    n_frames, gateway_seconds, slo = benchmark(load)
    assert slo["encoded"] == n_frames
    assert gateway_seconds < 2.0 * bare_seconds + 0.05, (
        f"gateway took {gateway_seconds:.3f}s vs bare batch "
        f"{bare_seconds:.3f}s"
    )
