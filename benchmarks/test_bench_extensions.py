"""Benchmarks: extension experiments beyond the paper's numbered artefacts.

* waveform-level cross-technology collision (signal-level validation of the
  paper's premise);
* adaptive channel identification + control (the composition sketched in
  the paper's related-work discussion).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import xtech_collision
from repro.sledzig.adaptive import (
    AdaptiveSledZigController,
    EnergySnapshot,
    ZigbeeChannelEstimator,
)


def test_bench_xtech_collision(benchmark):
    """ZigBee delivery ratio vs on-air WiFi level, real waveforms."""
    result = benchmark.pedantic(
        lambda: xtech_collision.sweep(levels_db=(14.0, 20.0), n_frames=4),
        rounds=1, iterations=1,
    )
    # At 20 dB the SledZig waveform still delivers; normal does not.
    assert result["sledzig"][1] > result["normal"][1]


def test_bench_adaptive_pipeline(benchmark):
    """Estimate + control over a 1000-snapshot activity trace."""
    rng = np.random.default_rng(11)

    def scenario() -> int:
        estimator = ZigbeeChannelEstimator(window=40)
        controller = AdaptiveSledZigController(confirmations=3)
        for t in range(1000):
            active = 2 if (200 <= t < 700 and rng.random() < 0.3) else None
            levels = [-91.0] * 4
            if active:
                levels[active - 1] = -70.0
            estimator.observe(EnergySnapshot(time_us=float(t), levels_db=levels))
            if t % 10 == 0:
                controller.update(estimator.estimate())
        return controller.n_switches

    switches = benchmark(scenario)
    # Protection turned on once and off once, without flapping.
    assert switches <= 3


def test_bench_snr_waterfall(benchmark):
    """Receiver 90%-delivery thresholds vs the paper's Table IV minima."""
    from repro.experiments import snr_waterfall

    result = benchmark.pedantic(
        lambda: snr_waterfall.run(mcs_names=("qam16-1/2", "qam256-5/6"), n_frames=5),
        rounds=1, iterations=1,
    )
    for row in result.rows:
        assert row[2] <= row[1] + 0.5
