"""Benchmarks: the ablation studies (design-choice quantification)."""

from __future__ import annotations

from repro.experiments import ablations


def test_bench_ablation_span(benchmark):
    """Silenced-span sweep: RSSI gain vs payload overhead."""
    result = benchmark.pedantic(
        lambda: ablations.span_ablation(n_data_values=(5, 7, 9)),
        rounds=1, iterations=1,
    )
    assert len(result.rows) == 3


def test_bench_ablation_solver(benchmark):
    """Algorithm 1 vs cluster solver across all 28 configurations."""
    result = benchmark.pedantic(ablations.solver_ablation, rounds=1, iterations=1)
    assert all(row[3] == "ok" for row in result.rows)


def test_bench_ablation_preamble(benchmark):
    """Full-power preamble window on/off in the coexistence simulator."""
    result = benchmark.pedantic(
        lambda: ablations.preamble_ablation(d_z_values=(1.6,), duration_us=120_000.0),
        rounds=1, iterations=1,
    )
    assert result.rows[0][2] >= result.rows[0][1]


def test_bench_ablation_cca(benchmark):
    """ZigBee CCA-threshold sensitivity sweep."""
    result = benchmark.pedantic(
        lambda: ablations.cca_threshold_ablation(
            thresholds_db=(-77.0, -60.0), duration_us=120_000.0
        ),
        rounds=1, iterations=1,
    )
    assert result.rows[1][1] <= result.rows[0][1]
