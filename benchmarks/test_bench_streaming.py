"""Micro-benchmarks of the streaming receive layer.

The streaming front ends buy constant memory with per-chunk state
machinery; these benchmarks keep that overhead honest against the
full-buffer batch path and pin the memory bound (ring high-water) that
justifies it.
"""

from __future__ import annotations

import numpy as np

from repro.streaming import FrameEvent, iter_chunks
from repro.utils.bits import random_bits
from repro.wifi.streaming import WifiStreamReceiver
from repro.wifi.transmitter import encode_frames as wifi_encode
from repro.zigbee.streaming import ZigbeeStreamReceiver
from repro.zigbee.transmitter import encode_frames as zigbee_encode

_CHUNK = 4096


def _stream(waveforms, gap=500):
    silence = np.zeros(gap, dtype=np.complex128)
    pieces = [silence]
    for w in waveforms:
        pieces.extend([w, silence])
    return np.concatenate(pieces)


def test_bench_wifi_stream_decode(benchmark, rng):
    """Chunked 802.11 stream decode, 16 frames of 100-byte PSDUs."""
    payloads = [random_bits(8 * 100, rng) for _ in range(16)]
    stream = _stream(wifi_encode(payloads, "qam16-1/2"))

    def stream_decode():
        receiver = WifiStreamReceiver()
        return receiver.receive_stream(iter_chunks(stream, _CHUNK))

    decoded, drops = benchmark(stream_decode)
    assert not drops
    assert len(decoded) == 16
    for sent, got in zip(payloads, decoded):
        assert np.array_equal(got.psdu_bits, sent)


def test_bench_zigbee_stream_decode(benchmark, rng):
    """Chunked 802.15.4 stream decode, 8 frames of 40-octet PSDUs."""
    psdus = [bytes(rng.integers(0, 256, size=40, dtype=np.uint8)) for _ in range(8)]
    stream = _stream(zigbee_encode(psdus), gap=400)

    def stream_decode():
        receiver = ZigbeeStreamReceiver()
        decoded, drops = receiver.receive_stream(iter_chunks(stream, _CHUNK))
        return decoded, drops, receiver.sync.ring.high_water

    decoded, drops, high_water = benchmark(stream_decode)
    assert not drops
    assert [bytes(d.frame.psdu) for d in decoded] == psdus
    # The memory bound the layer exists for: peak retained samples stay
    # near one frame + chunk slack, far below the whole stream.
    assert high_water < stream.size / 2


def test_bench_streaming_overhead_vs_scalar(benchmark, rng):
    """Chunked streaming must stay within 2.5x of the per-frame scalar
    receive loop — the apples-to-apples baseline, since streaming also
    decodes one frame at a time.  What the bound covers is the streaming
    machinery itself: ring bookkeeping, the sync state machine, and the
    per-chunk stage dispatch.  (The *batched* full-buffer path is faster
    still via its cross-frame Viterbi; that floor lives in
    ``test_bench_core.py``.)
    """
    import time

    from repro.wifi.receiver import WifiReceiver

    payloads = [random_bits(8 * 100, rng) for _ in range(16)]
    waveforms = wifi_encode(payloads, "qam16-1/2")
    stream = _stream(waveforms)

    def stream_decode():
        return WifiStreamReceiver().receive_stream(iter_chunks(stream, _CHUNK))

    decoded, drops = benchmark(stream_decode)
    assert not drops and len(decoded) == 16

    receiver = WifiReceiver()
    start = time.perf_counter()
    scalar = [receiver.receive(w).psdu_bits for w in waveforms]
    scalar_seconds = time.perf_counter() - start
    for got, ref in zip(decoded, scalar):
        assert np.array_equal(got.psdu_bits, ref)

    stream_seconds = benchmark.stats.stats.mean
    slowdown = stream_seconds / scalar_seconds
    assert slowdown <= 2.5, (
        f"streaming {slowdown:.1f}x slower than the scalar per-frame loop "
        f"({stream_seconds:.3f}s vs {scalar_seconds:.3f}s)"
    )
