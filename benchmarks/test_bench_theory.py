"""Benchmark: Section III-B theory and Table I (constellation analysis)."""

from __future__ import annotations

import pytest

from repro.experiments import theory


def test_bench_theory_section3b(benchmark):
    """Regenerates the 7.0 / 13.2 / 19.3 dB power-decrease figures."""
    result = benchmark(theory.run)
    decreases = {row[0]: row[3] for row in result.rows}
    assert decreases["qam16"] == pytest.approx(7.0, abs=0.05)
    assert decreases["qam64"] == pytest.approx(13.2, abs=0.05)
    assert decreases["qam256"] == pytest.approx(19.3, abs=0.05)
