"""Monte-Carlo engine benchmarks: batched trials vs the scalar loop.

The engine's reason to exist is that a batch_fn can push a whole batch of
trials through the vectorized channel + frame kernels at once; these
benchmarks pin the batch-32 AWGN delivery trial and assert the speedup
over the per-trial scalar path stays above the 3x floor.
"""

from __future__ import annotations

import time
from functools import partial

import numpy as np
import pytest

from repro.experiments.snr_waterfall import _delivery_batch, _delivery_trial
from repro.montecarlo import MonteCarloEngine

#: One batch of the engine's default size — the unit the experiments run.
N_TRIALS = 32
_KW = dict(mcs_name="qam64-2/3", snr_db=20.0, psdu_octets=30, soft=True)


def _engine() -> MonteCarloEngine:
    return MonteCarloEngine(
        "bench/awgn-delivery", master_seed=2022, kind="proportion"
    )


def _run_batched() -> np.ndarray:
    return _engine().run(
        batch_fn=partial(_delivery_batch, **_KW),
        n_trials=N_TRIALS,
        batch_size=N_TRIALS,
    ).outcomes


def _run_scalar() -> np.ndarray:
    return _engine().run(
        partial(_delivery_trial, **_KW), N_TRIALS, batch_size=1
    ).outcomes


def test_bench_montecarlo_batch32(benchmark):
    """32 AWGN delivery trials in one vectorized batch."""
    outcomes = benchmark(_run_batched)
    assert outcomes.size == N_TRIALS
    assert outcomes.mean() > 0.9  # 20 dB is above the QAM-64 waterfall


def test_batch32_speedup_over_scalar_loop():
    """The batched path must be at least 3x the scalar per-trial loop.

    Both paths produce bit-identical outcomes (the engine contract); the
    difference is purely the vectorized channel/decode layout.
    """
    _run_batched()  # warm the cached tables out of the timed region
    start = time.perf_counter()
    batched = _run_batched()
    batched_s = time.perf_counter() - start
    start = time.perf_counter()
    scalar = _run_scalar()
    scalar_s = time.perf_counter() - start
    assert np.array_equal(batched, scalar)
    speedup = scalar_s / batched_s
    assert speedup >= 3.0, (
        f"batch-32 speedup {speedup:.2f}x below the 3x floor "
        f"(batched {batched_s:.3f}s, scalar {scalar_s:.3f}s)"
    )
