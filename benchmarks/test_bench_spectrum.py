"""Benchmark: Fig. 5(b) — spectrum with lowest points on overlapped subcarriers."""

from __future__ import annotations

from repro.experiments import fig05_spectrum


def test_bench_fig5_spectrum(benchmark):
    """Regenerates the per-subcarrier power comparison of Fig. 5(b)."""
    result = benchmark(fig05_spectrum.run)
    regions = {row[0]: row for row in result.rows}
    assert regions["overlapped data subcarriers"][3] < -6.0
    assert abs(regions["total symbol power"][3]) < 0.6
