"""Telemetry overhead: instrumentation must stay far below the DSP cost.

The acceptance bar for the telemetry layer is that the batch-32 WiFi
roundtrip regresses by < 5 % with instrumentation enabled.  Receivers
report per *batch* (a handful of dict operations and two spans per call),
so the bound holds by orders of magnitude; these benchmarks pin it down by
timing the instrumented roundtrip and, separately, the exact telemetry
operation mix one roundtrip performs.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.utils.bits import random_bits
from repro.wifi.receiver import decode_frames
from repro.wifi.transmitter import encode_frames


def test_bench_instrumented_batch32_roundtrip(benchmark, rng):
    """Batch-32 WiFi roundtrip under an active collector, with the 5 % bound.

    The per-roundtrip telemetry cost is measured in isolation (the same
    counter/span mix the receive path performs) and asserted under 5 % of
    the roundtrip itself — the instrumented-vs-uninstrumented regression
    can be no larger than the instrumentation's own cost.
    """
    mcs = "qam16-1/2"
    payloads = [random_bits(8 * 100, rng) for _ in range(32)]

    def instrumented_roundtrip():
        with telemetry.collect() as tel:
            decoded = decode_frames(encode_frames(payloads, mcs))
        return decoded, tel.snapshot()

    decoded, snapshot = benchmark(instrumented_roundtrip)
    for sent, got in zip(payloads, decoded):
        assert np.array_equal(sent, got)
    assert snapshot.counters["wifi.rx.frames"] == 32
    assert snapshot.counters["wifi.rx.ok"] == 32

    def telemetry_ops_only():
        # The operation mix one batched receive_frames call performs.
        with telemetry.collect() as tel:
            tel.count("wifi.rx.frames", 32)
            with tel.span("wifi.rx.front_end"):
                pass
            with tel.span("wifi.rx.bit_domain"):
                pass
            tel.count("wifi.rx.ok", 32)
            tel.snapshot()

    reps = 2000
    start = time.perf_counter()
    for _ in range(reps):
        telemetry_ops_only()
    ops_seconds = (time.perf_counter() - start) / reps

    roundtrip_seconds = benchmark.stats.stats.mean
    overhead = ops_seconds / roundtrip_seconds
    assert overhead < 0.05, (
        f"telemetry ops cost {ops_seconds * 1e6:.1f}us per roundtrip — "
        f"{overhead * 100:.2f}% of the {roundtrip_seconds * 1e3:.1f}ms roundtrip"
    )


def test_bench_counter_throughput(benchmark):
    """Raw counter increments (the hottest telemetry primitive)."""
    tel = telemetry.Telemetry()

    def bump_10k():
        for _ in range(10_000):
            tel.count("hot.counter")
        return tel.counters["hot.counter"]

    total = benchmark(bump_10k)
    assert total >= 10_000


def test_bench_snapshot_merge(benchmark):
    """Snapshot + merge of a realistically sized collector (worker return)."""
    tel = telemetry.Telemetry()
    for i in range(64):
        tel.count(f"stage.counter.{i}", i)
        tel.observe(f"stage.timer.{i % 8}", 0.001 * i)
    parent = telemetry.Telemetry()

    def snapshot_and_merge():
        parent.merge(tel.snapshot())
        return parent

    merged = benchmark(snapshot_and_merge)
    assert merged.counters["stage.counter.63"] > 0
