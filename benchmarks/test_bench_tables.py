"""Benchmarks: Tables I-IV of the paper (analytic + end-to-end encoder)."""

from __future__ import annotations

import pytest

from repro.experiments import table2_positions, table3_extra_bits, table4_throughput_loss
from repro.experiments.table2_positions import PAPER_POSITIONS


def test_bench_table1_significant_patterns(benchmark):
    """Table I: significant bits per QAM point."""
    from repro.wifi.constellation import significant_bit_pattern

    def regenerate():
        return {m: significant_bit_pattern(m) for m in ("qam16", "qam64", "qam256")}

    patterns = benchmark(regenerate)
    assert [len(patterns[m]) for m in ("qam16", "qam64", "qam256")] == [2, 4, 6]


def test_bench_table2_positions(benchmark):
    """Table II: the 14 significant-bit positions (QAM-16, CH2)."""
    positions = benchmark(table2_positions.paper_convention_positions)
    assert positions == PAPER_POSITIONS


def test_bench_table3_extra_bits(benchmark):
    """Table III: extra bits per OFDM symbol across all modes."""
    result = benchmark(table3_extra_bits.run)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["qam16-1/2"][2] == 14
    assert by_name["qam256-5/6"][4] == 30


def test_bench_table4_throughput_loss(benchmark):
    """Table IV: WiFi throughput loss, analytic + measured frames."""
    result = benchmark(table4_throughput_loss.run)
    losses = [row[2] for row in result.rows] + [row[5] for row in result.rows]
    assert min(losses) == pytest.approx(6.94, abs=0.01)
    assert max(losses) == pytest.approx(14.58, abs=0.01)
