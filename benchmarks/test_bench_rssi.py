"""Benchmarks: the RSSI experiments (Figs. 11, 12, 13, 17)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    fig11_subcarriers,
    fig12_rssi_decrease,
    fig13_zigbee_rssi,
    fig17_wifi_rssi,
)


def test_bench_fig11_subcarrier_sweep(benchmark):
    """Fig. 11: in-band RSSI vs number of silenced data subcarriers."""
    result = benchmark.pedantic(
        lambda: fig11_subcarriers.run(payload_octets=80, n_seeds=2),
        rounds=1, iterations=1,
    )
    rows = {(r[0], r[1]): r[2] for r in result.rows}
    assert rows[("CH1", 7)] < rows[("CH1", 6)] + 0.3


def test_bench_fig12_rssi_decrease(benchmark):
    """Fig. 12: normal vs SledZig reported RSSI per QAM and channel."""
    result = benchmark.pedantic(
        lambda: fig12_rssi_decrease.run(payload_octets=120),
        rounds=1, iterations=1,
    )
    for row in result.rows:
        paper_decrease = row[5] - row[6]
        assert row[4] == pytest.approx(paper_decrease, abs=3.0)


def test_bench_fig13_zigbee_rssi(benchmark):
    """Fig. 13: ZigBee RSSI vs distance and TX gain."""
    result = benchmark(fig13_zigbee_rssi.run)
    assert result.rows[0][1] == pytest.approx(-75.0, abs=0.1)


def test_bench_fig17_wifi_rssi(benchmark):
    """Fig. 17: WiFi vs ZigBee RSSI at the WiFi receiver."""
    result = benchmark(fig17_wifi_rssi.run)
    assert result.rows[0][3] == pytest.approx(30.0, abs=1.0)
