"""Per-backend kernel benchmarks and the optimized-backend speedup floors.

Each hot kernel is timed under every backend that implements it (via the
public ``backend=`` overrides), so BENCH_kernels.json records a
per-backend perf trajectory that :mod:`repro.tools.bench_trend` gates in
CI.  Two floors are asserted outright — they are the acceptance bar of the
optimized backend and must hold wherever CI runs:

* hard-decision Viterbi, batch 32 x 432 data bits: optimized >= 1.5x
  reference;
* GF(2) solve, 192 x 192 system: optimized >= 2x reference.

Floors compare best-of-N wall times (not means) so scheduler noise on
shared runners cannot fail a genuinely fast kernel.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.dsp.trellis import (
    conv_encode_batch,
    viterbi_decode_batch,
    viterbi_decode_soft_batch,
)
from repro.dsp.dsss import correlate_batch, spread_batch
from repro.utils.bits import random_bits
from repro.utils.galois import gf2_solve

VITERBI_BACKENDS = ("reference", "optimized")
GF2_BACKENDS = ("reference", "optimized")

#: Speedup floors asserted by this module (documented in DESIGN.md).
VITERBI_SPEEDUP_FLOOR = 1.5
GF2_SOLVE_SPEEDUP_FLOOR = 2.0


def _viterbi_batch(rng) -> "tuple[np.ndarray, np.ndarray, int]":
    """(coded, data, n_data_bits) for a 32 x 432 zero-tail batch."""
    data = np.stack([
        np.concatenate([random_bits(426, rng), np.zeros(6, np.uint8)])
        for _ in range(32)
    ])
    coded, _ = conv_encode_batch(data)
    return coded, data, data.shape[1]


def _gf2_system(rng) -> "tuple[np.ndarray, np.ndarray]":
    """A consistent random 192 x 192 GF(2) system."""
    matrix = rng.integers(0, 2, size=(192, 192), dtype=np.uint8)
    x = rng.integers(0, 2, size=192, dtype=np.uint8)
    rhs = (matrix @ x.astype(np.int64)) % 2
    return matrix, rhs.astype(np.uint8)


def _best_of(fn, repeats: int = 7) -> float:
    """Best-of-N wall time of fn() — robust to shared-runner jitter."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("backend", VITERBI_BACKENDS)
def test_bench_viterbi_hard_batch32(benchmark, rng, backend):
    """Hard ACS, batch 32 x 432 bits, per backend."""
    coded, data, n_bits = _viterbi_batch(rng)
    decoded = benchmark(
        viterbi_decode_batch, coded, n_bits, backend=backend
    )
    assert np.array_equal(decoded, data)


@pytest.mark.parametrize("backend", VITERBI_BACKENDS)
def test_bench_viterbi_soft_batch32(benchmark, rng, backend):
    """Soft ACS, batch 32 x 432 bits, per backend."""
    coded, data, n_bits = _viterbi_batch(rng)
    soft = coded.astype(np.float64) * 2.0 - 1.0
    decoded = benchmark(
        viterbi_decode_soft_batch, soft, n_bits,
        assume_zero_tail=True, backend=backend,
    )
    assert np.array_equal(decoded, data)


@pytest.mark.parametrize("backend", GF2_BACKENDS)
def test_bench_gf2_solve_192(benchmark, rng, backend):
    """GF(2) elimination on a 192 x 192 system, per backend."""
    matrix, rhs = _gf2_system(rng)
    solution, _ = benchmark(gf2_solve, matrix, rhs, backend=backend)
    assert np.array_equal((matrix @ solution.astype(np.int64)) % 2, rhs)


def test_bench_dsss_correlate(benchmark, rng):
    """DSSS correlation of 64 x 60 symbols (reference is the only backend)."""
    bits = rng.integers(0, 2, size=(64, 240), dtype=np.uint8)
    chips = spread_batch(bits).astype(np.float64) * 2.0 - 1.0
    symbols, scores = benchmark(correlate_batch, chips)
    assert symbols.shape == (64, 60)
    assert float(scores.min()) == pytest.approx(1.0)


def test_viterbi_speedup_floor(rng):
    """optimized >= 1.5x reference on the batch-32 hard-decision decode."""
    coded, data, n_bits = _viterbi_batch(rng)

    def run(backend):
        return viterbi_decode_batch(coded, n_bits, backend=backend)

    assert np.array_equal(run("optimized"), data)
    ref = _best_of(lambda: run("reference"))
    opt = _best_of(lambda: run("optimized"))
    speedup = ref / opt
    assert speedup >= VITERBI_SPEEDUP_FLOOR, (
        f"optimized viterbi only {speedup:.2f}x reference "
        f"({opt * 1e3:.2f} ms vs {ref * 1e3:.2f} ms)"
    )


def test_gf2_solve_speedup_floor(rng):
    """optimized >= 2x reference on the 192 x 192 GF(2) solve."""
    matrix, rhs = _gf2_system(rng)

    def run(backend):
        return gf2_solve(matrix, rhs, backend=backend)[0]

    assert np.array_equal(run("optimized"), run("reference"))
    ref = _best_of(lambda: run("reference"))
    opt = _best_of(lambda: run("optimized"))
    speedup = ref / opt
    assert speedup >= GF2_SOLVE_SPEEDUP_FLOOR, (
        f"optimized gf2_solve only {speedup:.2f}x reference "
        f"({opt * 1e3:.2f} ms vs {ref * 1e3:.2f} ms)"
    )
