"""Micro-benchmarks of the core processing stages.

These are not paper artefacts; they track the cost of the building blocks
(SledZig encode, WiFi modulate, Viterbi, ZigBee spread) so performance
regressions in the substrates show up separately from the experiment
harness timings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sledzig.encoder import SledZigEncoder
from repro.sledzig.pipeline import SledZigReceiver, SledZigTransmitter
from repro.utils.bits import random_bits
from repro.wifi.convolutional import conv_encode, viterbi_decode
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.transmitter import ZigbeeTransmitter


def test_bench_sledzig_encode(benchmark, rng):
    """SledZig payload encoding (insert + solve + verify), 300-byte frame."""
    encoder = SledZigEncoder("qam64-2/3", "CH2")
    data = random_bits(2400, rng)
    result = benchmark(encoder.encode, data)
    assert result.n_extra_bits > 0


def test_bench_wifi_transmit(benchmark, rng):
    """Standard 802.11 transmit chain, 300-byte PSDU at QAM-64."""
    tx = WifiTransmitter("qam64-2/3")
    psdu = random_bits(8 * 300, rng)
    frame = benchmark(tx.transmit, psdu)
    assert frame.waveform.size > 0


def test_bench_viterbi(benchmark, rng):
    """Hard-decision Viterbi over ~1000 coded pairs."""
    data = np.concatenate([random_bits(1000, rng), np.zeros(6, np.uint8)])
    coded = conv_encode(data)
    decoded = benchmark(viterbi_decode, coded, data.size)
    assert np.array_equal(decoded, data)


def test_bench_zigbee_transmit(benchmark, rng):
    """802.15.4 spread + O-QPSK modulation of a 60-octet frame."""
    tx = ZigbeeTransmitter()
    psdu = bytes(rng.integers(0, 256, size=60, dtype=np.uint8))
    trans = benchmark(tx.send, psdu)
    assert trans.duration_us == pytest.approx(2112.0)


def test_bench_sledzig_pipeline_roundtrip(benchmark, rng):
    """Full bytes -> waveform -> bytes loop with channel detection."""
    tx = SledZigTransmitter("qam16-1/2", "CH3")
    rx = SledZigReceiver()
    payload = bytes(rng.integers(0, 256, size=50, dtype=np.uint8))

    def roundtrip():
        return rx.receive(tx.send(payload).waveform)

    packet = benchmark(roundtrip)
    assert packet.payload == payload


def test_bench_wifi_batch32_roundtrip(benchmark, rng):
    """Batched 802.11 encode -> decode of 32 frames (100-byte PSDUs).

    The batch API must beat a scalar per-frame loop by >= 3x at batch 32
    while producing bit-exact waveforms and payloads — the acceptance bar
    of the repro.dsp refactor.
    """
    from repro.wifi.receiver import decode_frames
    from repro.wifi.transmitter import encode_frames

    mcs = "qam16-1/2"
    payloads = [random_bits(8 * 100, rng) for _ in range(32)]

    def batch_roundtrip():
        return decode_frames(encode_frames(payloads, mcs))

    decoded = benchmark(batch_roundtrip)
    for sent, got in zip(payloads, decoded):
        assert np.array_equal(sent, got)

    # Time the legacy scalar loop once for the speedup floor.
    import time

    tx = WifiTransmitter(mcs)
    from repro.wifi.receiver import WifiReceiver

    receiver = WifiReceiver()
    start = time.perf_counter()
    scalar_waveforms = [tx.transmit(p).waveform for p in payloads]
    scalar_decoded = [receiver.receive(w).psdu_bits for w in scalar_waveforms]
    scalar_seconds = time.perf_counter() - start

    batch_waveforms = encode_frames(payloads, mcs)
    for one, many in zip(scalar_waveforms, batch_waveforms):
        assert np.array_equal(one, many)
    for one, many in zip(scalar_decoded, decoded):
        assert np.array_equal(one, many)

    batch_seconds = benchmark.stats.stats.mean
    speedup = scalar_seconds / batch_seconds
    assert speedup >= 3.0, (
        f"batch-32 roundtrip only {speedup:.1f}x faster than scalar "
        f"({batch_seconds:.3f}s vs {scalar_seconds:.3f}s)"
    )
