"""Micro-benchmarks of the core processing stages.

These are not paper artefacts; they track the cost of the building blocks
(SledZig encode, WiFi modulate, Viterbi, ZigBee spread) so performance
regressions in the substrates show up separately from the experiment
harness timings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sledzig.encoder import SledZigEncoder
from repro.sledzig.pipeline import SledZigReceiver, SledZigTransmitter
from repro.utils.bits import random_bits
from repro.wifi.convolutional import conv_encode, viterbi_decode
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.transmitter import ZigbeeTransmitter


def test_bench_sledzig_encode(benchmark, rng):
    """SledZig payload encoding (insert + solve + verify), 300-byte frame."""
    encoder = SledZigEncoder("qam64-2/3", "CH2")
    data = random_bits(2400, rng)
    result = benchmark(encoder.encode, data)
    assert result.n_extra_bits > 0


def test_bench_wifi_transmit(benchmark, rng):
    """Standard 802.11 transmit chain, 300-byte PSDU at QAM-64."""
    tx = WifiTransmitter("qam64-2/3")
    psdu = random_bits(8 * 300, rng)
    frame = benchmark(tx.transmit, psdu)
    assert frame.waveform.size > 0


def test_bench_viterbi(benchmark, rng):
    """Hard-decision Viterbi over ~1000 coded pairs."""
    data = np.concatenate([random_bits(1000, rng), np.zeros(6, np.uint8)])
    coded = conv_encode(data)
    decoded = benchmark(viterbi_decode, coded, data.size)
    assert np.array_equal(decoded, data)


def test_bench_zigbee_transmit(benchmark, rng):
    """802.15.4 spread + O-QPSK modulation of a 60-octet frame."""
    tx = ZigbeeTransmitter()
    psdu = bytes(rng.integers(0, 256, size=60, dtype=np.uint8))
    trans = benchmark(tx.send, psdu)
    assert trans.duration_us == pytest.approx(2112.0)


def test_bench_sledzig_pipeline_roundtrip(benchmark, rng):
    """Full bytes -> waveform -> bytes loop with channel detection."""
    tx = SledZigTransmitter("qam16-1/2", "CH3")
    rx = SledZigReceiver()
    payload = bytes(rng.integers(0, 256, size=50, dtype=np.uint8))

    def roundtrip():
        return rx.receive(tx.send(payload).waveform)

    packet = benchmark(roundtrip)
    assert packet.payload == payload
