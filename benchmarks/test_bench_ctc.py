"""Micro-benchmarks of the CTC side channel.

Three stages of the WiFi->ZigBee power-pattern channel: the transmit
side (per-frame pattern scheduling + SledZig encoding), the ZigBee-side
RSSI demodulator in its synthetic-sample domain (the Monte-Carlo hot
loop of the ``ctc`` experiment), and the full waveform-domain receive
path (band-power measurement per overheard frame, then demodulation).
"""

from __future__ import annotations

import numpy as np

from repro.sledzig.ctc.alphabet import ctc_alphabet, scaled_decreases_db
from repro.sledzig.ctc.demod import demodulate, rssi_from_frames
from repro.sledzig.ctc.modem import CtcModulator, CtcTransmitter, synthesize_rssi

#: The waveform-domain operating point the unit tests pin: deep pattern,
#: several frames averaged per symbol, long varied payloads.
_DEPTH = 3
_FPS = 4


def _wifi_payloads(rng, n, octets=60):
    return [rng.integers(0, 256, octets, dtype=np.uint8).tobytes()
            for _ in range(n)]


def test_bench_ctc_transmit(benchmark, rng):
    """Pattern-scheduling + SledZig-encoding one side-channel frame."""
    tx = CtcTransmitter(mcs_name="qam64-2/3", channel="CH2", depth=1)
    wifi = _wifi_payloads(rng, 16, octets=40)

    sent = benchmark(lambda: tx.send(b"B", wifi))
    assert sent.ctc_payload == b"B"
    assert len(sent.frames) == len(sent.schedule)


def test_bench_ctc_rssi_demod(benchmark, rng):
    """Demodulating an 8-frame noisy RSSI capture (the experiment's
    Monte-Carlo hot loop: sync scan, slicing, framing, CRC)."""
    mod = CtcModulator("qam64-2/3", 2, 1, frames_per_symbol=2)
    low, full = scaled_decreases_db(ctc_alphabet("qam64-2/3", 2, 1))
    levels = (-60.0 - low, -60.0 - full)
    pieces = []
    for i in range(8):
        pieces.append(synthesize_rssi(
            mod.pattern_schedule(bytes([i]) * 6), 1, levels,
            lead_in=9, tail=9, noise_db=0.2, rng=rng,
        ))
    stream = np.concatenate(pieces)

    frames, _ = benchmark(
        lambda: demodulate(stream, samples_per_symbol=2, min_swing_db=0.5)
    )
    assert [f.payload for f in frames] == [bytes([i]) * 6 for i in range(8)]


def test_bench_ctc_waveform_receive(benchmark, rng):
    """The full ZigBee-side path over real SledZig waveforms: one
    band-power read per overheard frame, then demodulation."""
    tx = CtcTransmitter(
        mcs_name="qam64-2/3", channel="CH2",
        depth=_DEPTH, frames_per_symbol=_FPS,
    )
    sent = tx.send(b"Z", _wifi_payloads(rng, 41))
    waveforms = list(sent.waveforms)

    def receive():
        rssi = rssi_from_frames(waveforms, "CH2")
        return demodulate(rssi, samples_per_symbol=_FPS, min_swing_db=0.3)

    frames, drops = benchmark(receive)
    assert [f.payload for f in frames] == [b"Z"]
    assert not drops
