"""Unit tests for the CTC side channel (repro.sledzig.ctc)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import (
    ConfigurationError,
    CtcCrcError,
    CtcFramingError,
    InvalidWaveformError,
)
from repro.sledzig.analysis import expected_band_decrease_db
from repro.sledzig.channels import get_channel
from repro.sledzig.ctc import (
    CtcDemodulator,
    CtcModulator,
    CtcTransmitter,
    MAX_PAYLOAD_OCTETS,
    SYNC_PATTERN,
    crc16,
    ctc_alphabet,
    demodulate,
    frame_bits,
    pattern_band_decrease_db,
    rssi_from_frames,
    scaled_decreases_db,
    slice_bits,
    synthesize_rssi,
)
from repro.sledzig.ctc.framing import parse_body, parse_length
from repro.sledzig.pipeline import SledZigReceiver
from repro.streaming.stage import FrameEvent


def _levels(depth: int, base: float = -60.0) -> "tuple[float, float]":
    low, full = scaled_decreases_db(ctc_alphabet("qam64-2/3", 2, depth))
    return (base - low, base - full)


class TestAlphabet:
    def test_full_pattern_matches_analysis_formula(self):
        ch = get_channel(2)
        assert pattern_band_decrease_db(
            "qam64", ch, ch.n_data_subcarriers
        ) == pytest.approx(expected_band_decrease_db("qam64", ch))

    def test_partial_pattern_keeps_released_subcarriers_in_band(self):
        # The regression this formula exists for: released subcarriers
        # must stay in the denominator at normal power, so the partial
        # decrease sits strictly between zero and the full decrease.
        ch = get_channel(2)
        full = pattern_band_decrease_db("qam64", ch, ch.n_data_subcarriers)
        partial = pattern_band_decrease_db(
            "qam64", ch, ch.n_data_subcarriers - 1
        )
        assert 0.0 < partial < full
        assert pattern_band_decrease_db("qam64", ch, 0) == pytest.approx(0.0)

    def test_n_silenced_bounds(self):
        ch = get_channel(2)
        with pytest.raises(ConfigurationError):
            pattern_band_decrease_db("qam64", ch, -1)
        with pytest.raises(ConfigurationError):
            pattern_band_decrease_db("qam64", ch, ch.n_data_subcarriers + 1)

    def test_separation_grows_with_depth(self):
        seps = [
            ctc_alphabet("qam64-2/3", 2, d).separation_db for d in (1, 2, 4)
        ]
        assert seps[0] > 0.0
        assert seps == sorted(seps)

    def test_symbol_channels_share_span_and_pilots(self):
        alphabet = ctc_alphabet("qam64-2/3", 2, 2)
        low, full = alphabet.symbol_channels
        assert low.subcarriers == full.subcarriers
        assert low.pilot_subcarriers == full.pilot_subcarriers
        assert low.n_data_subcarriers == full.n_data_subcarriers - 2
        assert set(low.data_subcarriers) < set(full.data_subcarriers)

    def test_depth_bounds_typed(self):
        n_data = get_channel(2).n_data_subcarriers
        with pytest.raises(ConfigurationError):
            ctc_alphabet("qam64-2/3", 2, 0)
        with pytest.raises(ConfigurationError):
            ctc_alphabet("qam64-2/3", 2, n_data)

    def test_scaled_decreases_preserve_pattern_ratio(self):
        alphabet = ctc_alphabet("qam64-2/3", 2, 1)
        low, full = scaled_decreases_db(alphabet)
        analytic_low, analytic_full = alphabet.decreases_db
        assert low / full == pytest.approx(analytic_low / analytic_full)
        assert 0.0 < low < full


class TestFraming:
    def test_crc16_known_vector(self):
        # CRC-16/CCITT-FALSE check value of the standard "123456789".
        assert crc16(b"123456789") == 0x29B1

    def test_frame_roundtrip(self):
        payload = b"side channel"
        bits = frame_bits(payload)
        assert tuple(bits[: len(SYNC_PATTERN)]) == SYNC_PATTERN
        body_start = len(SYNC_PATTERN)
        length = parse_length(bits[body_start : body_start + 8])
        assert length == len(payload)
        assert parse_body(length, bits[body_start + 8 :]) == payload

    def test_empty_payload_frames(self):
        bits = frame_bits(b"")
        assert parse_length(bits[32:40]) == 0
        assert parse_body(0, bits[40:]) == b""

    def test_oversize_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            frame_bits(b"\x00" * (MAX_PAYLOAD_OCTETS + 1))

    def test_impossible_length_is_typed(self):
        bits = frame_bits(b"x" * 32)
        with pytest.raises(CtcFramingError):
            parse_length(bits[32:40], max_payload=16)

    def test_corrupted_payload_fails_crc(self):
        bits = frame_bits(b"payload")
        body = np.array(bits[40:], dtype=np.uint8)
        body[5] ^= 1
        with pytest.raises(CtcCrcError):
            parse_body(7, body)


class TestModulator:
    def test_schedule_repeats_each_symbol(self):
        payload = b"\x0f"
        one = CtcModulator(channel=2, depth=1).pattern_schedule(payload)
        four = CtcModulator(
            channel=2, depth=1, frames_per_symbol=4
        ).pattern_schedule(payload)
        assert len(four) == 4 * len(one)
        assert four == tuple(b for b in one for _ in range(4))

    def test_schedule_is_the_frame_bits(self):
        payload = b"\xa5\x5a"
        schedule = CtcModulator(channel=2, depth=1).pattern_schedule(payload)
        assert schedule == tuple(int(b) for b in frame_bits(payload))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            CtcModulator(channel=2, depth=1, frames_per_symbol=0)


class TestTransmitterWaveforms:
    """The side channel rides real SledZig frames without breaking them."""

    #: Waveform-domain operating point: the per-frame band power carries a
    #: deterministic payload-dependent leakage offset comparable to a
    #: shallow depth's eye, so the realistic receiver averages each symbol
    #: over several distinct frames (frames_per_symbol > 1, OfdmFi-style).
    _DEPTH = 3
    _FPS = 4

    @pytest.fixture(scope="class")
    def transmission(self):
        tx = CtcTransmitter(
            mcs_name="qam64-2/3", channel="CH2",
            depth=self._DEPTH, frames_per_symbol=self._FPS,
        )
        rng = np.random.default_rng(11)
        wifi = [
            bytes(rng.integers(0, 256, 60, dtype=np.uint8)) for _ in range(41)
        ]
        return tx, tx.send(b"Z", wifi), wifi

    def test_every_frame_is_a_decodable_sledzig_stream(self, transmission):
        # The protection guarantee: both symbol patterns are ordinary
        # SledZig encodings, so the standard receiver decodes every frame
        # of the schedule and recovers the primary payload bit-exactly.
        tx, txn, wifi = transmission
        receivers = {
            bit: SledZigReceiver(channel=ch)
            for bit, ch in enumerate(tx.alphabet.symbol_channels)
        }
        for index in (0, 1, len(txn.frames) - 1):
            bit = txn.schedule[index]
            decoded = receivers[bit].receive(txn.frames[index].waveform)
            assert decoded.payload == wifi[index % len(wifi)]

    def test_band_levels_separate_by_symbol(self, transmission):
        _, txn, _ = transmission
        rssi = rssi_from_frames(txn.waveforms, "CH2")
        pooled = rssi.reshape(-1, self._FPS).mean(axis=1)
        bits = txn.schedule[:: self._FPS]
        zeros = pooled[[b == 0 for b in bits]]
        ones = pooled[[b == 1 for b in bits]]
        # Symbol 1 = full protection = quieter band; after frame
        # averaging the eye is fully open.
        assert zeros.min() > ones.max()

    def test_waveform_roundtrip_decodes_the_side_channel(self, transmission):
        _, txn, _ = transmission
        rssi = rssi_from_frames(txn.waveforms, "CH2")
        frames, drops = demodulate(
            rssi, samples_per_symbol=self._FPS, min_swing_db=0.3
        )
        assert [f.payload for f in frames] == [b"Z"]
        assert drops == []


class TestDemodulator:
    def test_clean_roundtrip(self):
        payload = b"hello"
        schedule = CtcModulator(channel=2, depth=1).pattern_schedule(payload)
        stream = synthesize_rssi(schedule, 1, _levels(1), lead_in=9, tail=5)
        frames, drops = demodulate(stream)
        assert [f.payload for f in frames] == [payload]
        assert frames[0].start_sample == 9
        assert drops == []

    def test_noisy_roundtrip_with_averaging(self):
        payload = b"noisy"
        mod = CtcModulator(channel=2, depth=1, frames_per_symbol=4)
        stream = synthesize_rssi(
            mod.pattern_schedule(payload), 1, _levels(1),
            lead_in=7, tail=7, noise_db=0.35, rng=np.random.default_rng(5),
        )
        frames, _ = demodulate(stream, samples_per_symbol=4)
        assert [f.payload for f in frames] == [payload]

    def test_back_to_back_frames(self):
        mod = CtcModulator(channel=2, depth=2)
        stream = np.concatenate([
            synthesize_rssi(mod.pattern_schedule(b"one"), 1, _levels(2),
                            lead_in=4, tail=11),
            synthesize_rssi(mod.pattern_schedule(b"two"), 1, _levels(2),
                            tail=6),
        ])
        frames, drops = demodulate(stream)
        assert [f.payload for f in frames] == [b"one", b"two"]
        assert drops == []

    def test_idle_stream_produces_nothing(self):
        with telemetry.collect() as tel:
            frames, drops = demodulate(np.full(4096, -95.0))
        assert frames == [] and drops == []
        assert tel.snapshot().counters.get("ctc.rx.locks", 0) == 0

    def test_corrupted_sync_word_is_typed_and_counted(self):
        schedule = list(CtcModulator(channel=2, depth=1).pattern_schedule(b"x"))
        # Flip two sync-word symbols (preamble intact, sync broken).
        schedule[17] ^= 1
        schedule[22] ^= 1
        stream = synthesize_rssi(schedule, 1, _levels(1), lead_in=6, tail=40)
        with telemetry.collect() as tel:
            frames, drops = demodulate(stream)
        counters = tel.snapshot().counters
        assert frames == []
        assert any(d.cause == "CtcSyncError" for d in drops)
        assert counters["ctc.rx.sync_errors"] >= 1
        assert counters["ctc.rx.drop.CtcSyncError"] == sum(
            d.cause == "CtcSyncError" for d in drops
        )

    def test_impossible_length_is_typed_and_counted(self):
        # A sync pattern followed by an all-zero length octet sliced as
        # 0xFF (all-quiet symbols read as 1-bits) announces 255 octets.
        schedule = list(SYNC_PATTERN) + [1] * 8 + [0, 1] * 30
        stream = synthesize_rssi(schedule, 1, _levels(1), lead_in=3, tail=24)
        with telemetry.collect() as tel:
            frames, drops = demodulate(stream)
        assert frames == []
        assert any(d.cause == "CtcFramingError" for d in drops)
        assert tel.snapshot().counters["ctc.rx.header_errors"] >= 1

    def test_corrupted_payload_fails_crc_and_counts(self):
        schedule = list(CtcModulator(channel=2, depth=1).pattern_schedule(b"abcd"))
        schedule[48] ^= 1  # inside the payload bits
        stream = synthesize_rssi(schedule, 1, _levels(1), lead_in=5, tail=30)
        with telemetry.collect() as tel:
            frames, drops = demodulate(stream)
        assert frames == []
        assert any(d.cause == "CtcCrcError" for d in drops)
        assert tel.snapshot().counters["ctc.rx.crc_errors"] == 1

    def test_truncated_stream_drops_at_flush(self):
        schedule = CtcModulator(channel=2, depth=1).pattern_schedule(b"tail")
        stream = synthesize_rssi(schedule, 1, _levels(1), lead_in=2)
        frames, drops = demodulate(stream[: stream.size - 30])
        assert frames == []
        assert drops[0].cause == "TruncatedFrameError"
        # The tail rescan after the dead lock may flag further sync-error
        # candidates, but never another truncation or a frame.
        assert all(d.cause == "CtcSyncError" for d in drops[1:])

    def test_delivered_frame_counters(self):
        schedule = CtcModulator(channel=2, depth=1).pattern_schedule(b"ok")
        stream = synthesize_rssi(schedule, 1, _levels(1), lead_in=3, tail=3)
        with telemetry.collect() as tel:
            frames, _ = demodulate(stream)
        counters = tel.snapshot().counters
        assert len(frames) == 1
        assert counters["ctc.rx.frames"] == 1
        assert counters["ctc.rx.locks"] == 1
        assert counters["ctc.rx.samples"] == stream.size
        assert counters["ctc.rx.symbols"] == len(schedule)

    def test_non_finite_samples_rejected(self):
        demod = CtcDemodulator()
        with pytest.raises(InvalidWaveformError):
            demod.push(np.array([-60.0, np.nan, -66.0]))

    def test_undersized_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            CtcDemodulator(samples_per_symbol=8, capacity=256)

    def test_push_returns_events_incrementally(self):
        schedule = CtcModulator(channel=2, depth=1).pattern_schedule(b"inc")
        stream = synthesize_rssi(schedule, 1, _levels(1), lead_in=2, tail=2)
        demod = CtcDemodulator()
        head = list(demod.push(stream[:40]))
        assert head == []  # not enough for a lock decision yet
        rest = list(demod.push(stream[40:])) + list(demod.flush())
        payloads = [
            e.result.payload for e in rest if isinstance(e, FrameEvent)
        ]
        assert payloads == [b"inc"]


class TestSliceBits:
    def test_recovers_frame_bits(self):
        payload = b"raw"
        schedule = CtcModulator(channel=2, depth=1).pattern_schedule(payload)
        stream = synthesize_rssi(schedule, 3, _levels(1))
        assert np.array_equal(slice_bits(stream, 3), frame_bits(payload))

    def test_explicit_threshold(self):
        bits = slice_bits([-60.0, -70.0, -60.0], 1, threshold_db=-65.0)
        assert list(bits) == [0, 1, 0]

    def test_invalid_sps_rejected(self):
        with pytest.raises(ConfigurationError):
            slice_bits([-60.0], 0)
