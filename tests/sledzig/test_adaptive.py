"""Tests for adaptive SledZig: detection, estimation, control policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import frequency_shift
from repro.errors import ConfigurationError
from repro.sledzig.adaptive import (
    AdaptiveSledZigController,
    EnergySnapshot,
    ZigbeeChannelEstimator,
    detect_zigbee_activity,
)
from repro.sledzig.channels import all_channels
from repro.wifi.params import SAMPLE_RATE_HZ


def _zigbee_like_capture(channel_index: int, rng, snr_db: float = 20.0) -> np.ndarray:
    """A 20 MHz capture holding a 2 MHz-ish tone at one overlap channel."""
    n = 8192
    noise = (rng.normal(size=n) + 1j * rng.normal(size=n)) / np.sqrt(2)
    noise *= 10 ** (-snr_db / 20)
    ch = all_channels()[channel_index - 1]
    # Narrowband occupant: noise-modulated carrier ~1.5 MHz wide.
    base = (rng.normal(size=n) + 1j * rng.normal(size=n)) / np.sqrt(2)
    kernel = np.ones(16) / 16.0
    base = np.convolve(base, kernel, mode="same")
    occupant = frequency_shift(base, ch.center_offset_hz, SAMPLE_RATE_HZ)
    return occupant + noise


class TestWaveformDetection:
    @pytest.mark.parametrize("index", [1, 2, 3, 4])
    def test_detects_each_channel(self, index, rng):
        capture = _zigbee_like_capture(index, rng)
        detected = detect_zigbee_activity(capture)
        assert detected is not None
        assert detected.index == index

    def test_flat_noise_detects_nothing(self, rng):
        noise = (rng.normal(size=8192) + 1j * rng.normal(size=8192)) / np.sqrt(2)
        assert detect_zigbee_activity(noise) is None

    def test_short_capture_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_zigbee_activity(np.zeros(10, complex))

    def test_real_zigbee_waveform_detected(self, rng):
        """An actual 802.15.4 frame (resampled into the WiFi band) trips
        the detector on the right channel."""
        from scipy.signal import resample_poly

        from repro.zigbee.transmitter import ZigbeeTransmitter

        frame = ZigbeeTransmitter().send(bytes(rng.integers(0, 256, 20, dtype=np.uint8)))
        at_20mhz = resample_poly(frame.waveform, 5, 2)  # 8 -> 20 MHz
        ch = all_channels()[2]  # CH3
        shifted = frequency_shift(at_20mhz, ch.center_offset_hz, SAMPLE_RATE_HZ)
        noise = 0.02 * (rng.normal(size=shifted.size) + 1j * rng.normal(size=shifted.size))
        detected = detect_zigbee_activity(shifted + noise)
        assert detected is not None and detected.index == 3


class TestEstimator:
    def _snapshot(self, t, active=None, level=-70.0, floor=-91.0):
        levels = [floor, floor, floor, floor]
        if active is not None:
            levels[active - 1] = level
        return EnergySnapshot(time_us=t, levels_db=levels)

    def test_estimates_busy_channel(self):
        est = ZigbeeChannelEstimator()
        for t in range(20):
            est.observe(self._snapshot(t, active=2 if t % 3 == 0 else None))
        assert est.estimate() == 2

    def test_all_quiet_is_none(self):
        est = ZigbeeChannelEstimator()
        for t in range(20):
            est.observe(self._snapshot(t))
        assert est.estimate() is None

    def test_min_activity_threshold(self):
        est = ZigbeeChannelEstimator(min_activity=0.5)
        for t in range(20):
            est.observe(self._snapshot(t, active=1 if t < 4 else None))
        assert est.estimate() is None  # 20% activity < 50% requirement

    def test_window_forgets_old_traffic(self):
        est = ZigbeeChannelEstimator(window=10)
        for t in range(10):
            est.observe(self._snapshot(t, active=1))
        for t in range(10, 20):
            est.observe(self._snapshot(t, active=4))
        assert est.estimate() == 4
        assert est.n_observations == 10

    def test_activity_fractions(self):
        est = ZigbeeChannelEstimator()
        est.observe_many(self._snapshot(t, active=3) for t in range(4))
        fractions = est.activity_fractions()
        assert fractions == [0.0, 0.0, 1.0, 0.0]

    def test_bad_snapshot_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergySnapshot(time_us=0, levels_db=[-91.0])

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ZigbeeChannelEstimator(window=0)
        with pytest.raises(ConfigurationError):
            ZigbeeChannelEstimator(min_activity=0.0)


class TestController:
    def test_requires_confirmations(self):
        ctrl = AdaptiveSledZigController(confirmations=3)
        assert ctrl.update(2) is None
        assert ctrl.update(2) is None
        assert ctrl.update(2) == 2  # third confirmation applies

    def test_noise_does_not_flap(self):
        ctrl = AdaptiveSledZigController(confirmations=3)
        for _ in range(3):
            ctrl.update(1)
        assert ctrl.protected_channel == 1
        # A single stray estimate must not move the target.
        ctrl.update(4)
        ctrl.update(1)
        assert ctrl.protected_channel == 1
        assert ctrl.n_switches == 1

    def test_disable_also_needs_confirmation(self):
        ctrl = AdaptiveSledZigController(confirmations=2)
        ctrl.update(3)
        ctrl.update(3)
        assert ctrl.protected_channel == 3
        ctrl.update(None)
        assert ctrl.protected_channel == 3
        ctrl.update(None)
        assert ctrl.protected_channel is None

    def test_switch_between_channels(self):
        ctrl = AdaptiveSledZigController(confirmations=1)
        assert ctrl.update(1) == 1
        assert ctrl.update(4) == 4
        assert ctrl.n_switches == 2

    def test_bad_confirmations(self):
        with pytest.raises(ConfigurationError):
            AdaptiveSledZigController(confirmations=0)


class TestEstimatorDecisionPaths:
    """Boundary and empty-window paths of the estimator's decision logic."""

    def _snapshot(self, t, active=None, level=-70.0, floor=-91.0):
        levels = [floor, floor, floor, floor]
        if active is not None:
            levels[active - 1] = level
        return EnergySnapshot(time_us=t, levels_db=levels)

    def test_empty_window_estimate_is_none(self):
        est = ZigbeeChannelEstimator()
        assert est.n_observations == 0
        assert est.activity_fractions() == [0.0, 0.0, 0.0, 0.0]
        assert est.estimate() is None

    def test_activity_exactly_at_threshold_passes(self):
        # The gate is strict-below: a fraction equal to min_activity counts.
        est = ZigbeeChannelEstimator(min_activity=0.5)
        est.observe_many(
            self._snapshot(t, active=2 if t % 2 == 0 else None)
            for t in range(10)
        )
        assert est.activity_fractions()[1] == 0.5
        assert est.estimate() == 2

    def test_activity_just_below_threshold_fails(self):
        est = ZigbeeChannelEstimator(min_activity=0.5)
        est.observe_many(
            self._snapshot(t, active=2 if t < 4 else None) for t in range(10)
        )
        assert est.estimate() is None

    def test_margin_boundary_is_strict(self):
        # Energy exactly at floor+margin does NOT count as active (> not >=).
        est = ZigbeeChannelEstimator(noise_floor_db=-91.0, margin_db=6.0)
        est.observe(self._snapshot(0, active=1, level=-85.0))
        assert est.activity_fractions() == [0.0, 0.0, 0.0, 0.0]
        est.observe(self._snapshot(1, active=1, level=-84.9))
        assert est.activity_fractions()[0] == 0.5

    def test_busiest_channel_wins_over_less_busy(self):
        est = ZigbeeChannelEstimator()
        est.observe_many(self._snapshot(t, active=1) for t in range(3))
        est.observe_many(self._snapshot(t, active=4) for t in range(3, 10))
        assert est.estimate() == 4

    def test_min_activity_of_one_requires_constant_energy(self):
        est = ZigbeeChannelEstimator(min_activity=1.0)
        est.observe_many(self._snapshot(t, active=3) for t in range(5))
        assert est.estimate() == 3
        est.observe(self._snapshot(5, active=None))
        assert est.estimate() is None


class TestControllerDecisionPaths:
    """Hysteresis corner cases: pending resets and switch accounting."""

    def test_matching_current_resets_pending(self):
        # Two confirmations towards channel 2, then one reading of the
        # current state: the pending change must restart from scratch.
        ctrl = AdaptiveSledZigController(confirmations=3)
        ctrl.update(2)
        ctrl.update(2)
        ctrl.update(None)  # equals current (None) -> pending cleared
        ctrl.update(2)
        assert ctrl.update(2) is None  # only 2 of 3 fresh confirmations
        assert ctrl.update(2) == 2

    def test_changing_pending_restarts_count(self):
        ctrl = AdaptiveSledZigController(confirmations=3)
        ctrl.update(1)
        ctrl.update(1)
        ctrl.update(3)  # different pending -> count restarts at 1
        ctrl.update(3)
        assert ctrl.protected_channel is None
        assert ctrl.update(3) == 3

    def test_switch_counts_enable_disable_and_change(self):
        ctrl = AdaptiveSledZigController(confirmations=1)
        ctrl.update(1)   # enable
        ctrl.update(2)   # switch
        ctrl.update(None)  # disable
        assert ctrl.n_switches == 3
        assert ctrl.protected_channel is None

    def test_steady_state_does_not_count_switches(self):
        ctrl = AdaptiveSledZigController(confirmations=1)
        for _ in range(5):
            ctrl.update(2)
        assert ctrl.n_switches == 1
        assert ctrl.protected_channel == 2

    def test_update_returns_current_target_every_call(self):
        ctrl = AdaptiveSledZigController(confirmations=2)
        assert ctrl.update(4) is None
        assert ctrl.update(4) == 4
        assert ctrl.update(4) == 4  # steady state echoes the target
