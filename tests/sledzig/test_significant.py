"""Tests for significant-bit derivation (Sections IV-A to IV-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sledzig.significant import (
    constraint_map_for_symbols,
    extra_bits_per_symbol,
    significant_bits_for_symbol,
    significant_positions_paper,
)
from repro.wifi.params import PAPER_MCS_NAMES, get_mcs

#: Expected counts per symbol (paper Tables II/III, corrected for the
#: QAM-64 2/3 typo — see EXPERIMENTS.md).
EXPECTED_COUNTS = {
    ("qam16", "CH1"): 14, ("qam16", "CH4"): 10,
    ("qam64", "CH1"): 28, ("qam64", "CH4"): 20,
    ("qam256", "CH1"): 42, ("qam256", "CH4"): 30,
}


class TestCounts:
    @pytest.mark.parametrize("name", PAPER_MCS_NAMES)
    @pytest.mark.parametrize("channel", ["CH1", "CH2", "CH3", "CH4"])
    def test_paper_counts(self, name, channel):
        mcs = get_mcs(name)
        group = "CH4" if channel == "CH4" else "CH1"
        expected = EXPECTED_COUNTS[(mcs.modulation, group)]
        assert extra_bits_per_symbol(mcs, channel) == expected

    def test_count_independent_of_rate(self):
        """The paper's observation: puncturing never hits significant bits."""
        for rate in ("2/3", "3/4", "5/6"):
            assert extra_bits_per_symbol(f"qam64-{rate}", "CH2") == 28


class TestPositions:
    def test_sorted_unique(self, qam_mcs_name, channel_name):
        bits = significant_bits_for_symbol(qam_mcs_name, channel_name)
        positions = [b.position for b in bits]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_positions_inside_symbol(self, qam_mcs_name, channel_name):
        mcs = get_mcs(qam_mcs_name)
        for bit in significant_bits_for_symbol(mcs, channel_name):
            assert 0 <= bit.position < 2 * mcs.n_dbps

    def test_positions_survive_puncturing(self, channel_name):
        """Every significant position maps to a transmitted bit."""
        from repro.wifi.puncture import is_punctured

        for name in PAPER_MCS_NAMES:
            mcs = get_mcs(name)
            for bit in significant_bits_for_symbol(mcs, channel_name):
                assert not is_punctured(bit.position, mcs.coding_rate)

    def test_encoder_step_and_branch(self):
        bits = significant_bits_for_symbol("qam16-1/2", "CH2")
        for bit in bits:
            assert bit.encoder_step == bit.position // 2
            assert bit.branch == bit.position % 2

    def test_values_match_constellation_pattern(self, qam_mcs_name):
        from repro.wifi.constellation import significant_bit_pattern

        mcs = get_mcs(qam_mcs_name)
        pattern = significant_bit_pattern(mcs.modulation)
        for bit in significant_bits_for_symbol(mcs, "CH3"):
            assert bit.value == pattern[bit.bit_offset]

    def test_one_based_helper(self):
        zero_based = [b.position for b in significant_bits_for_symbol("qam16-1/2", "CH2")]
        one_based = significant_positions_paper("qam16-1/2", "CH2")
        assert one_based == [p + 1 for p in zero_based]


class TestConstraintMap:
    def test_repeats_per_symbol(self):
        mcs = get_mcs("qam16-1/2")
        per_symbol = significant_bits_for_symbol(mcs, "CH1")
        cmap = constraint_map_for_symbols(mcs, "CH1", 3)
        assert len(cmap) == 3 * len(per_symbol)
        stride = 2 * mcs.n_dbps
        for bit in per_symbol:
            for s in range(3):
                value, _ = cmap[s * stride + bit.position]
                assert value == bit.value


class TestRejections:
    def test_bpsk_rejected(self):
        with pytest.raises(ConfigurationError):
            significant_bits_for_symbol("bpsk-1/2", "CH1")

    def test_qpsk_rejected(self):
        with pytest.raises(ConfigurationError):
            significant_bits_for_symbol("qpsk-1/2", "CH1")
