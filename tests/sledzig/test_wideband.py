"""Tests for the 40 MHz (HT40) extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, InsertionError
from repro.sledzig.wideband import (
    build_wide_stream,
    wide_expected_decrease_db,
    wide_extra_bits_per_symbol,
    wide_overlap_channels,
    wide_significant_positions,
    wide_throughput_loss,
    wide_wifi_center_mhz,
)
from repro.utils.bits import random_bits
from repro.wifi.ht40 import HT40_MCS_TABLE, get_ht40_mcs

ALL_HT40 = sorted(HT40_MCS_TABLE)


class TestGeometry:
    def test_eight_channels(self):
        channels = wide_overlap_channels()
        assert len(channels) == 8
        assert [ch.zigbee_channel for ch in channels] == list(range(19, 27))

    def test_span_is_eight_subcarriers(self):
        for ch in wide_overlap_channels():
            assert len(ch.subcarriers) == 8

    def test_pilot_and_null_accounting(self):
        channels = {ch.name: ch for ch in wide_overlap_channels()}
        # Four of the eight spans contain one pilot each (6 HT40 pilots,
        # two fall outside any ZigBee span).
        with_pilot = [ch for ch in channels.values() if ch.pilot_subcarriers]
        assert len(with_pilot) == 4
        # The edge channel overlaps the guard band.
        assert channels["W8"].null_subcarriers == (59, 60, 61)
        assert len(channels["W8"].data_subcarriers) == 5

    def test_ht40_center_below_primary(self):
        assert wide_wifi_center_mhz(13) == 2462.0

    def test_unknown_zigbee_rejected(self):
        with pytest.raises(ConfigurationError):
            wide_significant_positions("ht40-qam16-1/2", 11)


class TestCounts:
    @pytest.mark.parametrize("name", ALL_HT40)
    def test_count_formula(self, name):
        """Extra bits = data subcarriers in span x significant bits/point."""
        mcs = get_ht40_mcs(name)
        per_point = {"qam16": 2, "qam64": 4, "qam256": 6}[mcs.modulation]
        for ch in wide_overlap_channels():
            expected = len(ch.data_subcarriers) * per_point
            assert wide_extra_bits_per_symbol(name, ch.zigbee_channel) == expected

    @pytest.mark.parametrize("name", ALL_HT40)
    def test_loss_cheaper_than_20mhz(self, name):
        """Doubling the channel roughly halves the relative overhead."""
        losses = [
            wide_throughput_loss(name, ch.zigbee_channel)
            for ch in wide_overlap_channels()
        ]
        assert max(losses) < 0.08  # vs up to 14.58% at 20 MHz

    def test_positions_sorted_unique(self):
        pairs = wide_significant_positions("ht40-qam256-5/6", 24)
        positions = [p for p, _ in pairs]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_expected_decrease_ordering(self):
        """Pilot-free spans reach the full constellation decrease."""
        pilot_free = wide_expected_decrease_db("ht40-qam64-2/3", 20)
        pilot_limited = wide_expected_decrease_db("ht40-qam64-2/3", 19)
        assert pilot_free == pytest.approx(13.2, abs=0.1)
        assert pilot_limited < pilot_free


class TestStreamBuilding:
    @pytest.mark.parametrize("name", ["ht40-qam16-1/2", "ht40-qam64-5/6", "ht40-qam256-3/4"])
    @pytest.mark.parametrize("zigbee", [19, 20, 26])
    def test_build_and_verify(self, name, zigbee, rng):
        mcs = get_ht40_mcs(name)
        k = wide_extra_bits_per_symbol(name, zigbee)
        n_symbols = 2
        capacity = n_symbols * (mcs.n_dbps - k)
        payload = random_bits(capacity, rng)
        stream, extra = build_wide_stream(name, zigbee, payload, n_symbols)
        assert stream.size == n_symbols * mcs.n_dbps
        assert len(extra) == n_symbols * k
        # Payload preserved in order.
        keep = np.ones(stream.size, dtype=bool)
        keep[list(extra)] = False
        assert np.array_equal(stream[keep], payload)

    def test_wrong_capacity_rejected(self, rng):
        with pytest.raises(InsertionError):
            build_wide_stream("ht40-qam16-1/2", 20, random_bits(10, rng), 1)


class TestHt40Tables:
    def test_interleaver_bijection(self):
        from repro.wifi.ht40 import ht40_deinterleave_permutation, ht40_interleave_permutation

        for name in ALL_HT40:
            mcs = get_ht40_mcs(name)
            perm = ht40_interleave_permutation(mcs.n_cbps, mcs.n_bpsc)
            inv = ht40_deinterleave_permutation(mcs.n_cbps, mcs.n_bpsc)
            assert sorted(perm) == list(range(mcs.n_cbps))
            assert all(inv[perm[k]] == k for k in range(0, mcs.n_cbps, 37))

    def test_data_rates(self):
        # HT40 single stream long-GI: QAM-64 5/6 -> 135 Mbps.
        assert get_ht40_mcs("qam64-5/6").data_rate_mbps == pytest.approx(135.0)
        assert get_ht40_mcs("ht40-qam16-1/2").data_rate_mbps == pytest.approx(54.0)

    def test_subcarrier_counts(self):
        from repro.wifi.ht40 import DATA_SUBCARRIERS, N_DATA_SUBCARRIERS, PILOT_SUBCARRIERS

        assert N_DATA_SUBCARRIERS == 108
        assert len(PILOT_SUBCARRIERS) == 6
        assert 0 not in DATA_SUBCARRIERS and 1 not in DATA_SUBCARRIERS

    def test_unknown_mcs(self):
        with pytest.raises(ConfigurationError):
            get_ht40_mcs("qam1024-7/8")


class TestWidebandDecisionPaths:
    """Naming, lookup-error, overhead-range and backend-invariance paths."""

    def test_w_naming_follows_position(self):
        channels = wide_overlap_channels()
        assert [ch.name for ch in channels] == [f"W{i}" for i in range(1, 9)]
        assert [ch.position for ch in channels] == list(range(1, 9))

    def test_channel_offsets_monotonic_across_band(self):
        offsets = [ch.center_offset_hz for ch in wide_overlap_channels()]
        assert offsets == sorted(offsets)
        assert all(abs(o) < 21e6 for o in offsets)

    def test_unknown_zigbee_channel_message_names_center(self):
        with pytest.raises(ConfigurationError, match="does not overlap"):
            wide_extra_bits_per_symbol("qam64-2/3", 11)

    def test_overhead_ranges_single_digit_to_low_teens(self):
        # The paper-level claim the module docstring makes: every
        # (MCS, channel) pair stays within a low-teens fractional loss.
        for name in ALL_HT40:
            for ch in wide_overlap_channels():
                loss = wide_throughput_loss(name, ch.zigbee_channel)
                assert 0.0 < loss < 0.15, (name, ch.name, loss)

    def test_extra_bits_scale_with_modulation_depth(self):
        # Deeper constellations have more significant bits per subcarrier,
        # so the per-symbol insertion count must not shrink with depth.
        ch = wide_overlap_channels()[0]
        counts = [
            wide_extra_bits_per_symbol(name, ch.zigbee_channel)
            for name in ("qam16-1/2", "qam64-2/3", "qam256-3/4")
        ]
        assert counts == sorted(counts)

    def test_build_wide_stream_wrong_payload_size_raises(self, rng):
        mcs = get_ht40_mcs("qam16-1/2")
        n_symbols = 2
        extra = wide_extra_bits_per_symbol("qam16-1/2", 19)
        capacity = n_symbols * mcs.n_dbps - n_symbols * extra
        for wrong in (capacity - 1, capacity + 1, 0):
            with pytest.raises(InsertionError, match="does not fill"):
                build_wide_stream(
                    "qam16-1/2", 19, random_bits(wrong, rng), n_symbols
                )

    def test_build_wide_stream_backend_invariant(self, rng):
        # The HT40 planner leans on the GF(2) kernels; the packed and the
        # dense backends must produce the identical stream.
        from repro import kernels

        mcs = get_ht40_mcs("qam64-2/3")
        n_symbols = 2
        extra = wide_extra_bits_per_symbol("qam64-2/3", 22)
        payload = random_bits(n_symbols * (mcs.n_dbps - extra), rng)
        streams = {}
        for backend in ("reference", "optimized"):
            with kernels.use_backend(backend):
                stream, positions = build_wide_stream(
                    "qam64-2/3", 22, payload, n_symbols
                )
            streams[backend] = (stream, positions)
        ref_stream, ref_pos = streams["reference"]
        opt_stream, opt_pos = streams["optimized"]
        assert ref_pos == opt_pos
        assert np.array_equal(ref_stream, opt_stream)

    def test_expected_decrease_finite_everywhere(self):
        for name in ALL_HT40:
            for ch in wide_overlap_channels():
                decrease = wide_expected_decrease_db(name, ch.zigbee_channel)
                assert np.isfinite(decrease)
                # Silencing can only help or do nothing in-band; allow the
                # BPSK-degenerate case (power ratio 2) to go negative but
                # keep the magnitude physical.
                assert -4.0 < decrease < 20.0, (name, ch.name, decrease)
