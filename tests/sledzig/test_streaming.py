"""Tests for the multi-frame streaming API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sledzig.pipeline import SledZigReceiver, SledZigTransmitter


class TestStreaming:
    def test_large_payload_splits_and_roundtrips(self, rng):
        tx = SledZigTransmitter("qam16-1/2", "CH1")
        rx = SledZigReceiver()
        payload = bytes(rng.integers(0, 256, size=8000, dtype=np.uint8))
        frames = tx.send_stream(payload)
        assert len(frames) >= 2
        recovered = b"".join(rx.receive(f.waveform).payload for f in frames)
        assert recovered == payload

    def test_small_payload_single_frame(self, rng):
        tx = SledZigTransmitter("qam64-2/3", "CH4")
        frames = tx.send_stream(b"tiny")
        assert len(frames) == 1
        assert frames[0].payload == b"tiny"

    def test_empty_payload(self):
        tx = SledZigTransmitter("qam256-3/4", "CH2")
        frames = tx.send_stream(b"")
        assert len(frames) == 1
        assert SledZigReceiver().receive(frames[0].waveform).payload == b""

    def test_max_payload_respects_length_field(self):
        """Every (MCS, channel) pair must fit its max payload in one frame."""
        for name in ("qam16-1/2", "qam64-5/6", "qam256-3/4"):
            for channel in ("CH1", "CH4"):
                tx = SledZigTransmitter(name, channel)
                limit = tx.max_payload_per_frame()
                assert limit > 0
                packet = tx.send(bytes(limit))
                assert packet.frame.psdu_octets <= 4095

    def test_chunking_boundaries_exact(self, rng):
        tx = SledZigTransmitter("qam64-2/3", "CH3")
        chunk = min(tx.max_payload_per_frame(), 65535)
        payload = bytes(rng.integers(0, 256, size=2 * chunk, dtype=np.uint8))
        frames = tx.send_stream(payload)
        assert len(frames) == 2
        assert len(frames[0].payload) == chunk
