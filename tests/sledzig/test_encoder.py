"""Tests for the SledZig encoder (framing, scrambling, verification)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sledzig.encoder import SledZigEncoder
from repro.sledzig.insertion import verify_stream
from repro.sledzig.significant import extra_bits_per_symbol
from repro.utils.bits import random_bits
from repro.wifi.params import PAPER_MCS_NAMES, get_mcs
from repro.wifi.ppdu import SERVICE_BITS, TAIL_BITS


class TestFraming:
    def test_symbol_count_accounts_for_overhead(self, rng):
        mcs = get_mcs("qam16-1/2")  # 96 - 14 = 82 payload bits per symbol
        encoder = SledZigEncoder(mcs, "CH1")
        n_data = 500
        expected = -(-(SERVICE_BITS + n_data + TAIL_BITS) // (96 - 14))
        assert encoder.frame_symbols(n_data) == expected

    def test_more_symbols_than_plain_wifi(self, rng):
        """SledZig frames are longer — that is the throughput loss."""
        from repro.wifi.ppdu import plan_data_field

        mcs = get_mcs("qam64-2/3")
        n_data = 4000
        plain = plan_data_field(n_data, mcs).n_symbols
        sled = SledZigEncoder(mcs, "CH1").frame_symbols(n_data)
        assert sled > plain
        # Ratio approximates the Table IV loss (14.58% for this combo).
        assert (1 - plain / sled) == pytest.approx(0.1458, abs=0.02)

    @pytest.mark.parametrize("name", PAPER_MCS_NAMES)
    def test_encode_verifies(self, name, channel_name, rng):
        encoder = SledZigEncoder(name, channel_name)
        result = encoder.encode(random_bits(700, rng))
        assert verify_stream(result.stream, name, channel_name) == []
        assert result.n_extra_bits == (
            extra_bits_per_symbol(name, channel_name) * result.plan.n_symbols
        )

    def test_overhead_fraction(self, rng):
        result = SledZigEncoder("qam16-3/4", "CH4").encode(random_bits(800, rng))
        assert result.overhead_fraction == pytest.approx(10 / 144)

    def test_layout_consistent(self, rng):
        result = SledZigEncoder("qam64-3/4", "CH2").encode(random_bits(300, rng))
        assert result.layout.n_total_bits == result.stream.size
        assert result.layout.n_symbols == result.plan.n_symbols

    def test_tail_zeroed_in_stream(self, rng):
        """The six scrambled tail bits sit at their (post-insertion) slots
        as zeros."""
        result = SledZigEncoder("qam16-1/2", "CH1").encode(random_bits(100, rng))
        occupied = np.ones(result.stream.size, dtype=bool)
        occupied[list(result.plan.extra_positions)] = False
        payload_positions = np.flatnonzero(occupied)
        tail_slots = payload_positions[
            SERVICE_BITS + 100 : SERVICE_BITS + 100 + TAIL_BITS
        ]
        assert np.all(result.stream[tail_slots] == 0)


class TestRejections:
    def test_bpsk_rejected(self):
        with pytest.raises(ConfigurationError):
            SledZigEncoder("bpsk-1/2", "CH1")

    def test_qpsk_rejected(self):
        with pytest.raises(ConfigurationError):
            SledZigEncoder("qpsk-3/4", "CH1")

    def test_giant_payload_rejected(self, rng):
        encoder = SledZigEncoder("qam16-1/2", "CH1")
        with pytest.raises(ConfigurationError):
            encoder.encode(random_bits(40_000, rng))
