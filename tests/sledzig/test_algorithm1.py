"""Tests for the literal Algorithm 1 transcription, cross-validated against
the production cluster solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InsertionError
from repro.sledzig.algorithm1 import generate_transmit_bits
from repro.sledzig.insertion import verify_stream
from repro.sledzig.significant import extra_bits_per_symbol
from repro.utils.bits import random_bits
from repro.wifi.convolutional import conv_encode
from repro.sledzig.significant import significant_bits_for_symbol
from repro.wifi.params import get_mcs

#: Rate-1/2 configurations where Algorithm 1's preconditions hold.
RATE_HALF_COMBOS = [("qam16-1/2", ch) for ch in ("CH1", "CH2", "CH3", "CH4")]


class TestAlgorithm1:
    @pytest.mark.parametrize("mcs_name,channel", RATE_HALF_COMBOS)
    def test_constraints_satisfied(self, mcs_name, channel, rng):
        mcs = get_mcs(mcs_name)
        data = random_bits(3 * mcs.n_dbps, rng)
        stream, extra = generate_transmit_bits(data, mcs, channel)
        # Check every whole symbol of the produced stream.
        whole = stream[: (stream.size // mcs.n_dbps) * mcs.n_dbps]
        assert whole.size >= mcs.n_dbps
        assert verify_stream(whole, mcs, channel) == []

    @pytest.mark.parametrize("mcs_name,channel", RATE_HALF_COMBOS)
    def test_one_extra_per_significant_bit(self, mcs_name, channel, rng):
        """Algorithm 1 inserts exactly K extra bits per symbol."""
        mcs = get_mcs(mcs_name)
        k = extra_bits_per_symbol(mcs, channel)
        data = random_bits(2 * mcs.n_dbps, rng)
        stream, extra = generate_transmit_bits(data, mcs, channel)
        n_whole_symbols = stream.size // mcs.n_dbps
        in_whole = [p for p in extra if p < n_whole_symbols * mcs.n_dbps]
        assert len(in_whole) >= k * (n_whole_symbols - 1)

    def test_data_preserved(self, rng):
        mcs = get_mcs("qam16-1/2")
        data = random_bits(mcs.n_dbps, rng)
        stream, extra = generate_transmit_bits(data, mcs, "CH2")
        keep = np.ones(stream.size, dtype=bool)
        keep[extra] = False
        assert np.array_equal(stream[keep], data)

    def test_extra_positions_data_independent(self, rng):
        mcs = get_mcs("qam16-1/2")
        a = random_bits(mcs.n_dbps, rng)
        b = random_bits(mcs.n_dbps, rng)
        _, extra_a = generate_transmit_bits(a, mcs, "CH3")
        _, extra_b = generate_transmit_bits(b, mcs, "CH3")
        assert extra_a == extra_b

    def test_punctured_rate_rejected(self, rng):
        with pytest.raises(InsertionError):
            generate_transmit_bits(random_bits(100, rng), "qam64-2/3", "CH1")

    def test_agrees_with_cluster_solver_on_counts(self, rng):
        """Both implementations insert the same number of extra bits."""
        from repro.sledzig.insertion import plan_insertion

        mcs = get_mcs("qam16-1/2")
        data = random_bits(3 * mcs.n_dbps, rng)
        stream, extra = generate_transmit_bits(data, mcs, "CH2")
        plan = plan_insertion(mcs, "CH2", 3)
        per_symbol_alg1 = len([p for p in extra if p < mcs.n_dbps])
        per_symbol_plan = len([p for p in plan.extra_positions if p < mcs.n_dbps])
        assert per_symbol_alg1 == per_symbol_plan
