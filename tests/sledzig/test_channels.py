"""Tests for ZigBee/WiFi channel overlap geometry."""

from __future__ import annotations

import pytest

import numpy as np

from repro.errors import ConfigurationError
from repro.sledzig.channels import (
    OVERLAP_SPAN,
    all_channels,
    channel_with_n_data,
    get_channel,
    overlap_channel,
    wifi_center_frequency_mhz,
    zigbee_center_frequency_mhz,
)


class TestFrequencies:
    def test_wifi_channel_13(self):
        assert wifi_center_frequency_mhz(13) == 2472.0

    def test_wifi_channel_1(self):
        assert wifi_center_frequency_mhz(1) == 2412.0

    def test_zigbee_channels(self):
        assert zigbee_center_frequency_mhz(11) == 2405.0
        assert zigbee_center_frequency_mhz(26) == 2480.0

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            wifi_center_frequency_mhz(14)
        with pytest.raises(ConfigurationError):
            zigbee_center_frequency_mhz(27)


class TestOverlap:
    def test_four_channels(self):
        channels = all_channels()
        assert [ch.zigbee_channel for ch in channels] == [23, 24, 25, 26]
        assert [ch.name for ch in channels] == ["CH1", "CH2", "CH3", "CH4"]

    def test_paper_offsets(self):
        """Fig. 2 geometry: offsets -7, -2, +3, +8 MHz from WiFi ch13."""
        offsets = [ch.center_offset_hz / 1e6 for ch in all_channels()]
        assert offsets == [-7.0, -2.0, 3.0, 8.0]

    def test_ch1_to_ch3_contain_one_pilot(self):
        for ch in all_channels()[:3]:
            assert len(ch.pilot_subcarriers) == 1
            assert ch.n_data_subcarriers == 7
            assert ch.has_pilot

    def test_ch4_contains_three_nulls(self):
        ch4 = all_channels()[3]
        assert len(ch4.null_subcarriers) == 3
        assert ch4.n_data_subcarriers == 5
        assert not ch4.has_pilot

    def test_span_is_eight(self):
        for ch in all_channels():
            assert len(ch.subcarriers) == OVERLAP_SPAN == 8

    def test_exact_subcarrier_sets(self):
        """The spans derived from the centre offsets (paper Section IV-B)."""
        ch1, ch2, ch3, ch4 = all_channels()
        assert ch1.subcarriers == tuple(range(-26, -18))
        assert ch2.subcarriers == tuple(range(-10, -2))
        assert ch3.subcarriers == tuple(range(6, 14))
        assert ch4.subcarriers == tuple(range(22, 30))
        assert ch1.pilot_subcarriers == (-21,)
        assert ch2.pilot_subcarriers == (-7,)
        assert ch3.pilot_subcarriers == (7,)

    def test_other_wifi_channels_same_pattern(self):
        """Every WiFi channel overlaps four ZigBee channels similarly."""
        for wifi_ch in (1, 6, 13):
            channels = all_channels(wifi_ch)
            assert len(channels) == 4

    def test_non_overlapping_zigbee_rejected(self):
        with pytest.raises(ConfigurationError):
            overlap_channel(11, wifi_channel=13)


class TestGetChannel:
    def test_by_name(self):
        assert get_channel("ch2").index == 2
        assert get_channel("CH4").index == 4

    def test_by_paper_index(self):
        assert get_channel(1).zigbee_channel == 23

    def test_by_zigbee_number(self):
        assert get_channel(26).index == 4

    def test_passthrough(self):
        ch = get_channel("CH1")
        assert get_channel(ch) is ch

    def test_bad_name(self):
        with pytest.raises(ConfigurationError):
            get_channel("CH5")

    def test_numpy_integer_accepted(self):
        assert get_channel(np.int64(3)).index == 3

    def test_non_integral_float_rejected(self):
        # int(2.5) used to truncate to CH2 and hand back a silently wrong
        # subcarrier span; a typed error is the pinned behaviour now.
        with pytest.raises(ConfigurationError):
            get_channel(2.5)

    def test_integral_float_rejected(self):
        with pytest.raises(ConfigurationError):
            get_channel(2.0)

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            get_channel(True)


class TestBoundaryValidation:
    """Boundary channels: clear typed errors instead of silent wrong spans."""

    def test_wifi_channel_bounds(self):
        assert overlap_channel(1, wifi_channel=1).wifi_channel == 1
        assert overlap_channel(4, wifi_channel=13).wifi_channel == 13
        for bad in (0, 14, -1):
            with pytest.raises(ConfigurationError, match="WiFi channel"):
                overlap_channel(1, wifi_channel=bad)

    def test_zigbee_channel_bounds(self):
        # 11 and 26 are the first/last 802.15.4 channels; each overlaps a
        # specific WiFi channel.
        assert overlap_channel(11, wifi_channel=1).zigbee_channel == 11
        assert overlap_channel(26, wifi_channel=13).zigbee_channel == 26
        for bad in (5, 10, 27, 0, -3):
            with pytest.raises(
                ConfigurationError, match="1..4 or a ZigBee channel 11..26"
            ):
                overlap_channel(bad)

    def test_non_positive_span_rejected(self):
        # span=0 used to yield an empty subcarrier tuple: a channel object
        # that protects nothing while claiming to be a SledZig overlap.
        for bad in (0, -1, -8):
            with pytest.raises(ConfigurationError, match="span"):
                overlap_channel(1, span=bad)

    def test_span_beyond_fft_grid_rejected(self):
        # CH4 is centred at +25.6 subcarriers; a wide span would walk past
        # bin +31, indices that do not exist on the 64-point grid.
        with pytest.raises(ConfigurationError, match="64-bin"):
            overlap_channel(4, span=16)

    def test_moderate_span_variants_still_work(self):
        assert len(overlap_channel(1, span=6).subcarriers) == 6
        assert len(overlap_channel(2, span=10).subcarriers) == 10

    def test_non_integral_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            overlap_channel(1.5)
        with pytest.raises(ConfigurationError):
            overlap_channel(1, wifi_channel=6.5)
        with pytest.raises(ConfigurationError):
            overlap_channel(1, span=7.5)


class TestChannelWithNData:
    def test_reduces_data_set(self):
        base = get_channel("CH2")
        variant = channel_with_n_data(base, base.n_data_subcarriers - 1)
        assert variant.n_data_subcarriers == base.n_data_subcarriers - 1
        assert set(variant.data_subcarriers) <= set(base.data_subcarriers)
        # The span/pilot description of the base channel is untouched.
        assert variant.subcarriers == base.subcarriers
        assert variant.pilot_subcarriers == base.pilot_subcarriers

    def test_zero_keeps_nothing(self):
        assert channel_with_n_data("CH1", 0).data_subcarriers == ()

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            channel_with_n_data("CH1", -1)
        with pytest.raises(ConfigurationError):
            channel_with_n_data("CH1", 49)
