"""Property-based tests (hypothesis) on the SledZig core invariants.

These are the invariants a downstream user implicitly relies on:

1. *Roundtrip*: for any payload, encode -> standard chain -> decode returns
   the payload, on every (MCS, channel) pair.
2. *Constraint satisfaction*: for any payload, every significant bit holds
   after the standard convolutional encoder.
3. *Position determinism*: extra-bit positions never depend on payload.
4. *Power*: the protected subcarriers of any frame carry exactly the
   lowest-point power.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sledzig.channels import get_channel
from repro.sledzig.encoder import SledZigEncoder
from repro.sledzig.insertion import verify_stream
from repro.sledzig.pipeline import SledZigReceiver, SledZigTransmitter
from repro.utils.bits import random_bits
from repro.wifi.constellation import normalisation_factor
from repro.wifi.params import data_subcarrier_index, get_mcs

MCS_NAMES = st.sampled_from(["qam16-1/2", "qam64-2/3", "qam64-5/6", "qam256-3/4"])
CHANNELS = st.sampled_from(["CH1", "CH2", "CH3", "CH4"])

_slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRoundtripProperty:
    @given(payload=st.binary(min_size=0, max_size=120), mcs=MCS_NAMES, channel=CHANNELS)
    @_slow
    def test_any_payload_roundtrips(self, payload, mcs, channel):
        packet = SledZigTransmitter(mcs, channel).send(payload)
        received = SledZigReceiver().receive(packet.waveform)
        assert received.payload == payload
        assert received.channel.name == channel


class TestConstraintProperty:
    @given(seed=st.integers(0, 2**16), mcs=MCS_NAMES, channel=CHANNELS)
    @_slow
    def test_constraints_always_hold(self, seed, mcs, channel):
        rng = np.random.default_rng(seed)
        n_bits = int(rng.integers(8, 1600))
        result = SledZigEncoder(mcs, channel).encode(random_bits(n_bits, rng))
        assert verify_stream(result.stream, mcs, channel) == []

    @given(seed=st.integers(0, 2**16))
    @_slow
    def test_positions_payload_independent(self, seed):
        rng = np.random.default_rng(seed)
        encoder = SledZigEncoder("qam64-3/4", "CH2")
        a = encoder.encode(random_bits(600, rng))
        b = encoder.encode(random_bits(600, rng))
        assert a.plan.extra_positions == b.plan.extra_positions


class TestPowerProperty:
    @given(seed=st.integers(0, 2**16), mcs=MCS_NAMES, channel=CHANNELS)
    @_slow
    def test_protected_points_are_lowest_power(self, seed, mcs, channel):
        """Every QAM point on a protected data subcarrier of every DATA
        symbol has magnitude sqrt(2) * K_mod exactly."""
        rng = np.random.default_rng(seed)
        payload = bytes(rng.integers(0, 256, size=int(rng.integers(4, 80)), dtype=np.uint8))
        packet = SledZigTransmitter(mcs, channel).send(payload)
        ch = get_channel(channel)
        modulation = get_mcs(mcs).modulation
        lowest = normalisation_factor(modulation) * np.sqrt(2.0)
        indices = [data_subcarrier_index(k) for k in ch.data_subcarriers]
        for spectrum in packet.frame.data_spectra:
            from repro.wifi.ofdm import extract_subcarriers

            points, _ = extract_subcarriers(spectrum)
            magnitudes = np.abs(points[indices])
            assert np.allclose(magnitudes, lowest, atol=1e-9)

    @given(seed=st.integers(0, 2**16))
    @_slow
    def test_unprotected_power_distribution_unchanged(self, seed):
        """Subcarriers outside the span keep the full constellation: their
        average power stays near 1 (unit-power normalisation)."""
        rng = np.random.default_rng(seed)
        payload = bytes(rng.integers(0, 256, size=150, dtype=np.uint8))
        packet = SledZigTransmitter("qam64-2/3", "CH1").send(payload)
        ch = get_channel("CH1")
        outside = [
            data_subcarrier_index(k)
            for k in range(-26, 27)
            if k != 0
            and k not in (-21, -7, 7, 21)
            and k not in ch.subcarriers
        ]
        powers = []
        for spectrum in packet.frame.data_spectra:
            from repro.wifi.ofdm import extract_subcarriers

            points, _ = extract_subcarriers(spectrum)
            powers.append(np.mean(np.abs(points[outside]) ** 2))
        assert np.mean(powers) == pytest.approx(1.0, abs=0.15)
