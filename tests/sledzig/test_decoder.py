"""Tests for extra-bit stripping and ZigBee-channel detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DecodingError
from repro.sledzig.channels import all_channels
from repro.sledzig.decoder import SledZigDecoder, detect_zigbee_channel
from repro.sledzig.encoder import SledZigEncoder
from repro.utils.bits import random_bits
from repro.wifi.params import get_mcs
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter


def _roundtrip(mcs_name, channel, n_data, rng):
    encoder = SledZigEncoder(mcs_name, channel)
    data = random_bits(n_data, rng)
    result = encoder.encode(data)
    frame = WifiTransmitter(mcs_name).transmit_scrambled_field(
        result.stream, result.layout, result.signal_length_octets
    )
    reception = WifiReceiver().receive(frame.waveform)
    return data, result, reception


class TestStrip:
    @pytest.mark.parametrize("mcs_name", ["qam16-1/2", "qam64-5/6", "qam256-3/4"])
    def test_recovers_data_with_known_channel(self, mcs_name, channel_name, rng):
        data, result, reception = _roundtrip(mcs_name, channel_name, 480, rng)
        decoder = SledZigDecoder(channel_name)
        out = decoder.decode(reception, n_data_bits=data.size)
        assert np.array_equal(out.data_bits, data)
        assert out.n_extra_bits == result.n_extra_bits

    def test_without_length_returns_tail_and_pad(self, rng):
        data, result, reception = _roundtrip("qam16-1/2", "CH2", 200, rng)
        out = SledZigDecoder("CH2").decode(reception)
        assert out.data_bits.size >= data.size
        assert np.array_equal(out.data_bits[: data.size], data)

    def test_requesting_too_much_rejected(self, rng):
        _, _, reception = _roundtrip("qam16-1/2", "CH2", 100, rng)
        with pytest.raises(DecodingError):
            SledZigDecoder("CH2").decode(reception, n_data_bits=10_000)

    def test_strip_static_method(self, rng):
        data, result, reception = _roundtrip("qam64-2/3", "CH4", 300, rng)
        out = SledZigDecoder.strip(
            reception.descrambled_field, reception.mcs, "CH4", n_data_bits=300
        )
        assert np.array_equal(out.data_bits, data)


class TestChannelDetection:
    @pytest.mark.parametrize("mcs_name", ["qam16-1/2", "qam64-2/3", "qam256-5/6"])
    def test_detects_each_channel(self, mcs_name, channel_name, rng):
        _, _, reception = _roundtrip(mcs_name, channel_name, 600, rng)
        detection = detect_zigbee_channel(reception.data_points)
        assert detection.channel is not None
        assert detection.channel.name == channel_name

    def test_normal_wifi_detects_nothing(self, rng):
        frame = WifiTransmitter("qam16-1/2").transmit(random_bits(8 * 100, rng))
        reception = WifiReceiver().receive(frame.waveform)
        detection = detect_zigbee_channel(reception.data_points)
        assert detection.channel is None

    def test_auto_decode_uses_detection(self, rng):
        data, _, reception = _roundtrip("qam64-3/4", "CH3", 400, rng)
        out = SledZigDecoder().decode(reception, n_data_bits=400)
        assert np.array_equal(out.data_bits, data)
        assert out.detection is not None
        assert out.detection.channel.name == "CH3"

    def test_decode_normal_frame_raises(self, rng):
        frame = WifiTransmitter("qam16-1/2").transmit(random_bits(8 * 60, rng))
        reception = WifiReceiver().receive(frame.waveform)
        with pytest.raises(DecodingError):
            SledZigDecoder().decode(reception)

    def test_ratio_ordering(self, rng):
        """The protected channel's ratio is far below all others."""
        _, _, reception = _roundtrip("qam256-3/4", "CH1", 500, rng)
        detection = detect_zigbee_channel(reception.data_points)
        ratios = list(detection.ratios_db)
        protected = ratios[0]  # CH1
        assert protected < min(ratios[1:]) - 3.0

    def test_bad_shape_rejected(self):
        with pytest.raises(DecodingError):
            detect_zigbee_channel([np.zeros(10)])
