"""Tests for the cluster-based extra-bit insertion solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsertionError
from repro.sledzig.insertion import (
    Constraint,
    build_stream,
    plan_insertion,
    verify_stream,
)
from repro.sledzig.significant import extra_bits_per_symbol
from repro.utils.bits import random_bits
from repro.wifi.params import PAPER_MCS_NAMES, get_mcs

ALL_COMBOS = [(m, c) for m in PAPER_MCS_NAMES for c in ("CH1", "CH2", "CH3", "CH4")]


class TestPlan:
    @pytest.mark.parametrize("mcs_name,channel", ALL_COMBOS)
    def test_extra_count_is_k_per_symbol(self, mcs_name, channel):
        """One extra bit per significant bit — the paper's accounting."""
        k = extra_bits_per_symbol(mcs_name, channel)
        for n_symbols in (1, 3):
            plan = plan_insertion(mcs_name, channel, n_symbols)
            assert plan.n_extra == k * n_symbols

    def test_positions_sorted_unique(self):
        plan = plan_insertion("qam256-5/6", "CH2", 4)
        positions = list(plan.extra_positions)
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_positions_within_stream(self, qam_mcs_name, channel_name):
        plan = plan_insertion(qam_mcs_name, channel_name, 2)
        assert all(0 <= p < plan.n_stream_bits for p in plan.extra_positions)

    def test_capacity_accounting(self):
        mcs = get_mcs("qam16-1/2")
        plan = plan_insertion(mcs, "CH1", 5)
        assert plan.payload_capacity == 5 * 96 - 5 * 14

    def test_plan_is_cached(self):
        a = plan_insertion("qam16-1/2", "CH1", 2)
        b = plan_insertion("qam16-1/2", "CH1", 2)
        assert a is b

    def test_zero_symbols_rejected(self):
        with pytest.raises(InsertionError):
            plan_insertion("qam16-1/2", "CH1", 0)

    def test_clusters_cover_all_constraints(self, qam_mcs_name, channel_name):
        plan = plan_insertion(qam_mcs_name, channel_name, 3)
        total = sum(len(c.constraints) for c in plan.clusters)
        assert total == plan.n_extra


class TestBuildStream:
    @pytest.mark.parametrize("mcs_name,channel", ALL_COMBOS)
    def test_all_constraints_satisfied(self, mcs_name, channel, rng):
        """The core invariant: re-encoding meets every significant bit."""
        plan = plan_insertion(mcs_name, channel, 3)
        payload = random_bits(plan.payload_capacity, rng)
        stream = build_stream(plan, payload)
        assert verify_stream(stream, mcs_name, channel) == []

    @pytest.mark.parametrize("mcs_name,channel", ALL_COMBOS)
    def test_payload_preserved_in_order(self, mcs_name, channel, rng):
        plan = plan_insertion(mcs_name, channel, 2)
        payload = random_bits(plan.payload_capacity, rng)
        stream = build_stream(plan, payload)
        keep = np.ones(plan.n_stream_bits, dtype=bool)
        keep[list(plan.extra_positions)] = False
        assert np.array_equal(stream[keep], payload)

    def test_wrong_payload_size_rejected(self, rng):
        plan = plan_insertion("qam16-1/2", "CH1", 1)
        with pytest.raises(InsertionError):
            build_stream(plan, random_bits(plan.payload_capacity + 1, rng))

    @given(st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_property_random_payloads(self, seed):
        """For any payload, the solved stream satisfies the constraints and
        the extra positions are payload-independent."""
        rng = np.random.default_rng(seed)
        plan = plan_insertion("qam64-5/6", "CH2", 2)
        payload = random_bits(plan.payload_capacity, rng)
        stream = build_stream(plan, payload)
        assert verify_stream(stream, "qam64-5/6", "CH2") == []

    def test_deterministic_for_same_payload(self, rng):
        plan = plan_insertion("qam256-3/4", "CH4", 2)
        payload = random_bits(plan.payload_capacity, rng)
        a = build_stream(plan, payload)
        b = build_stream(plan, payload.copy())
        assert np.array_equal(a, b)


class TestVerifyStream:
    def test_detects_violations(self, rng):
        """A plain random stream violates roughly half the constraints."""
        mcs = get_mcs("qam16-1/2")
        stream = random_bits(2 * mcs.n_dbps, rng)
        violated = verify_stream(stream, mcs, "CH1")
        assert len(violated) > 0
        assert all(isinstance(v, Constraint) for v in violated)

    def test_partial_symbol_rejected(self, rng):
        with pytest.raises(InsertionError):
            verify_stream(random_bits(10, rng), "qam16-1/2", "CH1")
