"""End-to-end SledZig pipeline tests (bytes -> waveform -> bytes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.errors import DecodingError
from repro.sledzig.pipeline import SledZigReceiver, SledZigTransmitter
from repro.wifi.params import PAPER_MCS_NAMES


def _payload(rng, n=60) -> bytes:
    return bytes(rng.integers(0, 256, size=n, dtype=np.uint8))


class TestRoundtrip:
    @pytest.mark.parametrize("mcs_name", PAPER_MCS_NAMES)
    def test_all_mcs_all_channels(self, mcs_name, channel_name, rng):
        payload = _payload(rng)
        tx = SledZigTransmitter(mcs_name, channel_name)
        packet = tx.send(payload)
        received = SledZigReceiver().receive(packet.waveform)
        assert received.payload == payload
        assert received.channel.name == channel_name
        assert received.mcs.name == mcs_name

    def test_pinned_receiver(self, rng):
        payload = _payload(rng)
        packet = SledZigTransmitter("qam64-2/3", "CH2").send(payload)
        received = SledZigReceiver(channel="CH2").receive(packet.waveform)
        assert received.payload == payload
        assert received.detection is None

    def test_empty_payload(self, rng):
        packet = SledZigTransmitter("qam16-1/2", "CH1").send(b"")
        assert SledZigReceiver().receive(packet.waveform).payload == b""

    def test_duration_reflects_overhead(self, rng):
        from repro.wifi.transmitter import WifiTransmitter

        payload = _payload(rng, 400)
        sled = SledZigTransmitter("qam16-1/2", "CH1").send(payload)
        plain = WifiTransmitter("qam16-1/2").transmit(
            np.frombuffer(payload, dtype=np.uint8).repeat(8) % 2
        )
        assert sled.duration_us > plain.duration_us

    def test_noise_tolerance(self, rng):
        """SledZig frames decode at the same SNR as plain WiFi frames."""
        payload = _payload(rng, 40)
        packet = SledZigTransmitter("qam16-1/2", "CH3").send(payload)
        noisy = awgn(packet.waveform, 16.0, rng)
        assert SledZigReceiver().receive(noisy).payload == payload

    def test_oversized_payload_rejected(self, rng):
        tx = SledZigTransmitter("qam256-5/6", "CH4")
        with pytest.raises(Exception):
            tx.send(bytes(70_000))


class TestInteroperability:
    def test_standard_receiver_sees_valid_frame(self, rng):
        """A stock 802.11 receiver decodes the PPDU without any SledZig
        knowledge — the compatibility claim."""
        from repro.wifi.receiver import WifiReceiver

        packet = SledZigTransmitter("qam64-2/3", "CH1").send(_payload(rng))
        reception = WifiReceiver().receive(packet.waveform)
        assert reception.mcs.name == "qam64-2/3"
        assert reception.psdu_bits.size == reception.layout.n_psdu_bits

    def test_transmit_power_unchanged(self, rng):
        """Total transmit power stays within a fraction of a dB of normal
        WiFi (the energy moves, it does not disappear... only the protected
        subcarriers lose power)."""
        from repro.utils.db import signal_power_db
        from repro.utils.bits import random_bits
        from repro.wifi.transmitter import WifiTransmitter

        sled = SledZigTransmitter("qam16-1/2", "CH4").send(_payload(rng, 200))
        plain = WifiTransmitter("qam16-1/2").transmit(random_bits(8 * 220, rng))
        delta = signal_power_db(sled.waveform) - signal_power_db(plain.waveform)
        assert abs(delta) < 1.0
