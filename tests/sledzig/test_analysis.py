"""Tests for the closed-form analysis against the paper's numbers."""

from __future__ import annotations

import pytest

from repro.sledzig.analysis import (
    expected_band_decrease_db,
    extra_bits_table,
    rssi_offset_db,
    summary,
    theoretical_power_decrease_db,
    throughput_loss,
    throughput_loss_table,
)


class TestTheory:
    def test_paper_section3b_values(self):
        """7.0 / 13.2 / 19.3 dB for QAM-16/64/256."""
        assert theoretical_power_decrease_db("qam16") == pytest.approx(7.0, abs=0.05)
        assert theoretical_power_decrease_db("qam64") == pytest.approx(13.2, abs=0.05)
        assert theoretical_power_decrease_db("qam256") == pytest.approx(19.3, abs=0.05)

    def test_band_decrease_pilot_limited(self):
        """CH1-CH3 saturate near 8-9 dB because of the pilot."""
        for modulation in ("qam64", "qam256"):
            ch13 = expected_band_decrease_db(modulation, "CH1")
            ch4 = expected_band_decrease_db(modulation, "CH4")
            assert ch4 > ch13
        assert expected_band_decrease_db("qam256", "CH1") < 9.0
        assert expected_band_decrease_db("qam256", "CH4") == pytest.approx(19.3, abs=0.05)

    def test_rssi_offset_is_negative(self):
        assert rssi_offset_db("qam64", "CH2") == pytest.approx(-7.78, abs=0.1)


class TestTables:
    def test_table3_counts(self):
        rows = {r.mcs_name: r for r in extra_bits_table()}
        assert rows["qam16-1/2"].extra_ch13 == 14
        assert rows["qam16-1/2"].extra_ch4 == 10
        assert rows["qam64-2/3"].extra_ch13 == 28
        assert rows["qam256-5/6"].extra_ch4 == 30

    def test_table4_paper_range(self):
        """All losses between 6.94% and 14.58% (the paper's headline)."""
        rows = throughput_loss_table()
        losses = [r.loss_ch13 for r in rows] + [r.loss_ch4 for r in rows]
        assert min(losses) == pytest.approx(0.0694, abs=0.0005)
        assert max(losses) == pytest.approx(0.1458, abs=0.0005)

    def test_specific_paper_cells(self):
        assert throughput_loss("qam16-1/2", "CH1") == pytest.approx(14 / 96)
        assert throughput_loss("qam16-3/4", "CH4") == pytest.approx(10 / 144)
        assert throughput_loss("qam64-5/6", "CH2") == pytest.approx(28 / 240)
        assert throughput_loss("qam256-5/6", "CH4") == pytest.approx(30 / 320)

    def test_loss_decreases_with_rate(self):
        """Within one modulation, higher code rate -> lower loss (paper)."""
        assert throughput_loss("qam64-2/3", "CH1") > throughput_loss(
            "qam64-3/4", "CH1"
        ) > throughput_loss("qam64-5/6", "CH1")

    def test_summary_renders(self):
        text = summary()
        assert "qam256" in text
        assert "14.58%" in text
