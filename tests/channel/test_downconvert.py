"""Tests for cross-technology band extraction and collision injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.downconvert import (
    band_power_ratio_db,
    extract_zigbee_band,
    inject_interference,
    inject_wifi_interference,
    lowpass_fir,
)
from repro.errors import ConfigurationError
from repro.sledzig.pipeline import SledZigTransmitter
from repro.utils.bits import random_bits
from repro.utils.db import signal_power
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.params import SAMPLE_RATE_HZ as ZIGBEE_RATE
from repro.zigbee.receiver import ZigbeeReceiver
from repro.zigbee.transmitter import ZigbeeTransmitter


class TestFir:
    def test_dc_gain_unity(self):
        taps = lowpass_fir(1.2e6, 20e6)
        assert taps.sum() == pytest.approx(1.0)

    def test_passband_vs_stopband(self):
        taps = lowpass_fir(1.2e6, 20e6, n_taps=129)
        freqs = np.fft.rfftfreq(4096, 1 / 20e6)
        response = np.abs(np.fft.rfft(taps, 4096))
        passband = response[freqs < 0.8e6]
        stopband = response[freqs > 3e6]
        assert passband.min() > 0.7
        assert stopband.max() < 0.1

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            lowpass_fir(11e6, 20e6)
        with pytest.raises(ConfigurationError):
            lowpass_fir(1e6, 20e6, n_taps=10)


class TestExtraction:
    def test_output_rate(self, rng):
        frame = WifiTransmitter("qam16-1/2").transmit(random_bits(8 * 200, rng))
        band = extract_zigbee_band(frame.waveform, "CH2")
        expected = frame.waveform.size * ZIGBEE_RATE / 20e6
        assert band.size == pytest.approx(expected, rel=0.01)

    def test_normal_wifi_band_fraction(self, rng):
        """~8 of 52 subcarriers -> about -8 dB of the total power."""
        frame = WifiTransmitter("qam64-2/3").transmit(random_bits(8 * 300, rng))
        ratio = band_power_ratio_db(frame.waveform[400:], "CH2")
        assert ratio == pytest.approx(-8.1, abs=1.5)

    def test_sledzig_notch_survives_chain(self, rng):
        """The protected band reads far less power after the *full* transmit
        chain + band extraction — the end-to-end premise of the paper."""
        payload = bytes(rng.integers(0, 256, 300, dtype=np.uint8))
        packet = SledZigTransmitter("qam64-2/3", "CH4").send(payload)
        protected = band_power_ratio_db(packet.waveform[400:], "CH4")
        unprotected = band_power_ratio_db(packet.waveform[400:], "CH1")
        assert unprotected - protected > 8.0

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            extract_zigbee_band(np.zeros(100, complex), "CH1")


class TestInjection:
    def test_inject_interference_sets_sir(self, rng):
        signal = np.exp(1j * np.linspace(0, 50, 8000))
        interference = (rng.normal(size=8000) + 1j * rng.normal(size=8000))
        mixed = inject_interference(signal, interference, sir_db=10.0)
        added = mixed - signal
        sir = 10 * np.log10(signal_power(signal) / signal_power(added))
        assert sir == pytest.approx(10.0, abs=0.3)

    def test_silent_inputs_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            inject_interference(np.zeros(10, complex), np.ones(10, complex), 0.0)

    def test_sledzig_tolerates_stronger_wifi(self, rng):
        """The collision headline: at an on-air level that kills ZigBee
        under normal WiFi, the SledZig waveform leaves it decodable."""
        psdu = bytes(rng.integers(0, 256, 24, dtype=np.uint8))
        zt = ZigbeeTransmitter().send(psdu)
        rx = ZigbeeReceiver()

        normal = WifiTransmitter("qam64-2/3").transmit(random_bits(8 * 400, rng))
        payload = bytes(rng.integers(0, 256, 380, dtype=np.uint8))
        sled = SledZigTransmitter("qam64-2/3", "CH4").send(payload)

        level_db = 20.0  # WiFi 20 dB hotter on air
        with_normal = inject_wifi_interference(
            zt.waveform, normal.waveform[400:], "CH4", level_db
        )
        with_sled = inject_wifi_interference(
            zt.waveform, sled.waveform[400:], "CH4", level_db
        )

        def decodes(waveform):
            try:
                return rx.receive(waveform, start_sample=0).frame.psdu == psdu
            except Exception:
                return False

        assert not decodes(with_normal)
        assert decodes(with_sled)
