"""Tests for reported-RSSI propagation against the paper's figures."""

from __future__ import annotations

import pytest

from repro.channel.propagation import (
    distance,
    wifi_at_wifi_rx,
    wifi_inband_at_zigbee,
    wifi_profile,
    zigbee_at_wifi_rx,
    zigbee_rssi,
)
from repro.errors import ConfigurationError


class TestWifiProfile:
    def test_normal_profile_flat(self):
        profile = wifi_profile("CH2")
        assert profile.preamble_db_at_1m == profile.payload_db_at_1m == -60.0

    def test_sledzig_reduces_payload_only(self):
        profile = wifi_profile("CH2", sledzig_modulation="qam64")
        assert profile.preamble_db_at_1m == -60.0
        assert profile.payload_db_at_1m == pytest.approx(-66.9)

    def test_ch4_base_lower(self):
        assert wifi_profile("CH4").payload_db_at_1m == -64.0

    def test_gain_shifts_linearly(self):
        hot = wifi_profile("CH1", tx_gain_db=20.0)
        assert hot.payload_db_at_1m == -55.0


class TestDistances:
    def test_paper_fig14_crossover_normal(self):
        """Normal WiFi in-band sinks to ~the noise floor near 8.5-9.5 m."""
        profile = wifi_profile("CH3")
        at_85 = wifi_inband_at_zigbee(profile, 8.5)
        assert at_85 == pytest.approx(-87.9, abs=0.5)

    def test_paper_fig14_crossover_qam256(self):
        """SledZig QAM-256 reaches the same level near 3.5-4 m (CH1-CH3)."""
        profile = wifi_profile("CH3", sledzig_modulation="qam256")
        at_4 = wifi_inband_at_zigbee(profile, 4.0)
        assert at_4 == pytest.approx(-85.4, abs=1.0)

    def test_preamble_always_full_power(self):
        profile = wifi_profile("CH4", sledzig_modulation="qam256")
        payload = wifi_inband_at_zigbee(profile, 2.0)
        preamble = wifi_inband_at_zigbee(profile, 2.0, during_preamble=True)
        assert preamble - payload == pytest.approx(15.2)

    def test_floor(self):
        profile = wifi_profile("CH4", sledzig_modulation="qam256")
        assert wifi_inband_at_zigbee(profile, 50.0, floor=True) == -91.0


class TestZigbeeRssi:
    def test_paper_anchor_half_metre(self):
        assert zigbee_rssi(0.5, 31) == pytest.approx(-75.0, abs=0.1)

    def test_gain15_submerged_at_1m(self):
        """Paper Fig. 13: gain below 15 at 1 m sits at the noise floor."""
        assert zigbee_rssi(1.0, 15, floor=True) == -91.0

    def test_three_metres_submerged(self):
        assert zigbee_rssi(3.0, 25, floor=True) == -91.0

    def test_at_wifi_band_penalty(self):
        assert zigbee_rssi(0.5, 31) - zigbee_at_wifi_rx(0.5, 31) == pytest.approx(10.0)

    def test_paper_fig17_anchor(self):
        """ZigBee at the WiFi receiver: ~-85 dB at 0.5 m, ~30 dB under WiFi."""
        z = zigbee_at_wifi_rx(0.5, 31)
        w = wifi_at_wifi_rx(0.5)
        assert z == pytest.approx(-85.0, abs=0.1)
        assert w - z == pytest.approx(30.0, abs=0.5)


class TestGeometry:
    def test_distance(self):
        assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_coincident_rejected(self):
        with pytest.raises(ConfigurationError):
            distance((1.0, 1.0), (1.0, 1.0))
