"""Tests for AWGN and waveform mixing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn, frequency_shift, mix_at_offset
from repro.errors import ConfigurationError
from repro.utils.db import signal_power


class TestAwgn:
    def test_snr_is_honoured(self, rng):
        signal = np.exp(1j * np.linspace(0, 100, 50_000))
        noisy = awgn(signal, 10.0, rng)
        noise_power = signal_power(noisy - signal)
        assert 10 * np.log10(1.0 / noise_power) == pytest.approx(10.0, abs=0.3)

    def test_silent_waveform_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            awgn(np.zeros(100, complex), 10.0, rng)

    def test_deterministic_with_seed(self):
        signal = np.ones(100, complex)
        a = awgn(signal, 5.0, np.random.default_rng(7))
        b = awgn(signal, 5.0, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestMix:
    def test_lengths(self):
        out = mix_at_offset(np.ones(10, complex), np.ones(5, complex), 8)
        assert out.size == 13
        assert out[9] == pytest.approx(2.0)
        assert out[12] == pytest.approx(1.0)

    def test_gain_applied(self):
        out = mix_at_offset(np.zeros(4, complex), np.ones(4, complex), 0, gain_db=20.0)
        assert abs(out[0]) == pytest.approx(10.0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            mix_at_offset(np.ones(4, complex), np.ones(4, complex), -1)


class TestFrequencyShift:
    def test_shift_moves_tone(self):
        fs = 20e6
        t = np.arange(2048) / fs
        tone = np.exp(2j * np.pi * 1e6 * t)
        shifted = frequency_shift(tone, 2e6, fs)
        spectrum = np.abs(np.fft.fft(shifted))
        peak_bin = int(np.argmax(spectrum))
        freq = np.fft.fftfreq(2048, 1 / fs)[peak_bin]
        assert freq == pytest.approx(3e6, abs=2e4)

    def test_zero_shift_identity(self):
        x = np.random.default_rng(0).normal(size=64) + 0j
        assert np.allclose(frequency_shift(x, 0.0, 1e6), x)
