"""Batch channel kernels must be bit-exact against the scalar functions."""

import numpy as np
import pytest

from repro.channel.awgn import awgn, frequency_shift, mix_at_offset
from repro.channel.batch import (
    apply_gain_db,
    awgn_batch,
    frequency_shift_batch,
    mix_at_offset_batch,
    stack_waveforms,
)
from repro.errors import ConfigurationError
from repro.montecarlo import seeding
from repro.utils.db import db_to_linear


def _waveforms(n, lengths, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.normal(size=ell) + 1j * rng.normal(size=ell) for ell in lengths[:n]
    ]


class TestStackWaveforms:
    def test_pads_to_longest(self):
        waves = _waveforms(3, [5, 8, 3])
        stack = stack_waveforms(waves)
        assert stack.shape == (3, 8)
        for row, wave in zip(stack, waves):
            assert np.array_equal(row[: wave.size], wave)
            assert np.all(row[wave.size :] == 0)

    def test_explicit_length_and_errors(self):
        waves = _waveforms(2, [4, 6])
        assert stack_waveforms(waves, length=10).shape == (2, 10)
        with pytest.raises(ConfigurationError):
            stack_waveforms(waves, length=5)
        with pytest.raises(ConfigurationError):
            stack_waveforms([])


class TestAwgnBatch:
    def test_matches_scalar_bit_for_bit(self):
        waves = _waveforms(4, [100, 100, 100, 100])
        rngs = seeding.trial_rngs(7, "test/awgn", range(4))
        batched = awgn_batch(np.stack(waves), 10.0, rngs)
        for k, wave in enumerate(waves):
            scalar = awgn(wave, 10.0, seeding.trial_rng(7, "test/awgn", k))
            assert np.array_equal(batched[k], scalar)

    def test_padded_ragged_matches_scalar(self):
        lengths = [80, 120, 60]
        waves = _waveforms(3, lengths)
        rngs = seeding.trial_rngs(3, "test/ragged", range(3))
        batched = awgn_batch(stack_waveforms(waves), [8.0, 10.0, 12.0], rngs,
                             lengths=lengths)
        for k, (wave, snr) in enumerate(zip(waves, [8.0, 10.0, 12.0])):
            scalar = awgn(wave, snr, seeding.trial_rng(3, "test/ragged", k))
            assert np.array_equal(batched[k, : wave.size], scalar)
            assert np.all(batched[k, wave.size :] == 0)

    def test_validates_inputs(self):
        waves = np.ones((2, 10), dtype=np.complex128)
        rngs = seeding.trial_rngs(0, "x", range(2))
        with pytest.raises(ConfigurationError):
            awgn_batch(waves, 10.0, rngs[:1])
        with pytest.raises(ConfigurationError):
            awgn_batch(waves, 10.0, rngs, lengths=[10])
        with pytest.raises(ConfigurationError):
            awgn_batch(waves, 10.0, rngs, lengths=[10, 11])
        with pytest.raises(ConfigurationError):
            awgn_batch(np.zeros((2, 10), dtype=np.complex128), 10.0, rngs)


class TestMixAtOffsetBatch:
    def test_matches_scalar_per_row(self):
        bases = _waveforms(3, [50, 50, 50], seed=1)
        interfs = _waveforms(3, [20, 20, 20], seed=2)
        offsets = [0, 17, 35]
        gains = [-3.0, 0.0, 6.0]
        batched = mix_at_offset_batch(bases, interfs, offsets, gains)
        for k in range(3):
            scalar = mix_at_offset(bases[k], interfs[k], offsets[k], gains[k])
            assert np.allclose(batched[k, : scalar.size], scalar, atol=1e-15)
            assert np.all(batched[k, scalar.size :] == 0)

    def test_rejects_negative_offsets(self):
        with pytest.raises(ConfigurationError):
            mix_at_offset_batch(np.ones((1, 4)), np.ones((1, 2)), -1)


class TestApplyGain:
    def test_scalar_and_vector_gains(self):
        stack = np.stack(_waveforms(2, [30, 30], seed=3))
        assert np.allclose(
            apply_gain_db(stack, -6.0),
            stack * np.sqrt(db_to_linear(-6.0)),
        )
        per_row = apply_gain_db(stack, [-6.0, 3.0])
        assert np.allclose(per_row[0], stack[0] * np.sqrt(db_to_linear(-6.0)))
        assert np.allclose(per_row[1], stack[1] * np.sqrt(db_to_linear(3.0)))
        with pytest.raises(ConfigurationError):
            apply_gain_db(stack, [1.0, 2.0, 3.0])


class TestFrequencyShiftBatch:
    def test_matches_scalar(self):
        waves = _waveforms(2, [64, 64], seed=4)
        shifts = [5e6, -2e6]
        batched = frequency_shift_batch(np.stack(waves), shifts, 20e6)
        for k in range(2):
            scalar = frequency_shift(waves[k], shifts[k], 20e6)
            assert np.allclose(batched[k], scalar, atol=1e-12)


class TestAwgnRequiresGenerator:
    def test_missing_rng_raises(self):
        wave = np.ones(16, dtype=np.complex128)
        with pytest.raises(TypeError):
            awgn(wave, 10.0)
        with pytest.raises(ConfigurationError):
            awgn(wave, 10.0, None)
        with pytest.raises(ConfigurationError):
            awgn(wave, 10.0, np.random.RandomState(0))
