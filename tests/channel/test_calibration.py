"""Tests for the reported-dB calibration anchors."""

from __future__ import annotations

import pytest

from repro.channel.calibration import (
    DEFAULT_CALIBRATION,
    MEASURED_DECREASE_DB,
    cc2420_power_dbm,
    sledzig_decrease_db,
)
from repro.errors import ConfigurationError


class TestCc2420:
    def test_datasheet_points(self):
        assert cc2420_power_dbm(31) == 0.0
        assert cc2420_power_dbm(15) == -7.0
        assert cc2420_power_dbm(3) == -25.0

    def test_interpolation_monotone(self):
        values = [cc2420_power_dbm(g) for g in range(0, 32)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            cc2420_power_dbm(32)


class TestAnchors:
    def test_paper_noise_floor(self):
        assert DEFAULT_CALIBRATION.noise_floor_db == -91.0

    def test_paper_wifi_anchors(self):
        assert DEFAULT_CALIBRATION.wifi_inband_ch13_at_1m_db == -60.0
        assert DEFAULT_CALIBRATION.wifi_inband_ch4_at_1m_db == -64.0

    def test_path_loss_reference(self):
        assert DEFAULT_CALIBRATION.path_loss_db(1.0) == pytest.approx(0.0)
        # Exponent 3: doubling distance costs ~9 dB.
        assert DEFAULT_CALIBRATION.path_loss_db(2.0) == pytest.approx(9.03, abs=0.01)

    def test_nonpositive_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_CALIBRATION.path_loss_db(0.0)


class TestDecreases:
    def test_all_combinations_present(self):
        for modulation in ("qam16", "qam64", "qam256"):
            for index in (1, 2, 3, 4):
                assert sledzig_decrease_db(modulation, index) > 0

    def test_ch4_always_deeper(self):
        for modulation in ("qam16", "qam64", "qam256"):
            assert sledzig_decrease_db(modulation, 4) > sledzig_decrease_db(modulation, 1)

    def test_ordering_with_modulation(self):
        """Higher QAM -> deeper decrease (paper Fig. 12)."""
        for index in (1, 4):
            assert (
                sledzig_decrease_db("qam16", index)
                < sledzig_decrease_db("qam64", index)
                < sledzig_decrease_db("qam256", index)
            )

    def test_close_to_analytic_model(self):
        """Measured decreases track the pilot-dilution model; spectral
        leakage caps the deepest (QAM-256 CH4) notch ~4 dB short of the
        19.3 dB constellation limit, matching the paper's 14 dB report."""
        from repro.sledzig.analysis import expected_band_decrease_db

        for (modulation, group), measured in MEASURED_DECREASE_DB.items():
            channel = "CH4" if group == "ch4" else "CH1"
            analytic = expected_band_decrease_db(modulation, channel)
            assert measured <= analytic + 1.0
            assert measured == pytest.approx(analytic, abs=4.5)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            sledzig_decrease_db("qpsk", 1)
