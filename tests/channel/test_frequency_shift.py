"""Phase-continuity regressions for ``frequency_shift`` (scalar and batch).

The contract (documented on both functions): sample *n* is rotated by
``exp(2j*pi*shift*(n + phase_origin_sample)/fs)``.  Because the phase
references the sample index — not accumulated state — chained shifts
compose exactly and +f followed by -f returns the input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import frequency_shift
from repro.channel.batch import frequency_shift_batch


@pytest.fixture
def wave(rng):
    return rng.normal(size=500) + 1j * rng.normal(size=500)


class TestScalarPhaseContinuity:
    def test_plus_then_minus_is_identity(self, wave):
        fs = 20e6
        for f in (97_600.0, 1.25e6, 3_333.333):
            roundtrip = frequency_shift(frequency_shift(wave, f, fs), -f, fs)
            np.testing.assert_allclose(roundtrip, wave, rtol=0, atol=1e-12)

    def test_shifts_compose_additively(self, wave):
        fs = 20e6
        chained = frequency_shift(frequency_shift(wave, 40e3, fs), 60e3, fs)
        direct = frequency_shift(wave, 100e3, fs)
        np.testing.assert_allclose(chained, direct, rtol=0, atol=1e-12)

    def test_phase_origin_matches_split_processing(self, wave):
        """Shifting a stream in two chunks with the second chunk's origin
        advanced equals shifting the whole stream at once."""
        fs = 20e6
        f = 71e3
        whole = frequency_shift(wave, f, fs)
        head = frequency_shift(wave[:200], f, fs)
        tail = frequency_shift(wave[200:], f, fs, phase_origin_sample=200)
        np.testing.assert_allclose(
            np.concatenate([head, tail]), whole, rtol=0, atol=1e-12
        )

    def test_zero_origin_phase_reference_is_sample_zero(self):
        fs = 1e6
        out = frequency_shift(np.ones(4, dtype=complex), 1e5, fs)
        assert out[0] == 1.0  # exp(0) at n=0: no rotation of sample zero


class TestChunkedDownconversion:
    """``extract_zigbee_band`` honours the same phase-origin contract, so a
    capture can be downconverted chunk-by-chunk."""

    # A cut that is a multiple of 5 (the 20->8 MHz resampler's input period)
    # but NOT a whole number of LO cycles for CH2's -2 MHz offset, so a
    # phase-discontinuous mixer cannot pass by accident.
    _CUT = 2005
    _EDGE = 40  # output samples around a seam affected by FIR/resampler edges

    @pytest.fixture
    def wifi_wave(self, rng):
        return rng.normal(size=4000) + 1j * rng.normal(size=4000)

    def test_chunked_mix_matches_full_capture_away_from_seams(self, wifi_wave):
        from repro.channel.downconvert import extract_zigbee_band

        full = extract_zigbee_band(wifi_wave, "CH2")
        head = extract_zigbee_band(wifi_wave[: self._CUT], "CH2")
        tail = extract_zigbee_band(
            wifi_wave[self._CUT :], "CH2", phase_origin_sample=self._CUT
        )
        chunked = np.concatenate([head, tail])
        assert chunked.size == full.size
        seam = self._CUT * 2 // 5
        interior = np.ones(full.size, dtype=bool)
        interior[: self._EDGE] = False
        interior[-self._EDGE :] = False
        interior[seam - self._EDGE : seam + self._EDGE] = False
        # Away from filter edges the mixer keeps phase exactly: bit-equal.
        assert np.array_equal(chunked[interior], full[interior])

    def test_forgetting_the_origin_breaks_the_seam(self, wifi_wave):
        from repro.channel.downconvert import extract_zigbee_band

        full = extract_zigbee_band(wifi_wave, "CH2")
        head = extract_zigbee_band(wifi_wave[: self._CUT], "CH2")
        tail = extract_zigbee_band(wifi_wave[self._CUT :], "CH2")  # origin 0
        chunked = np.concatenate([head, tail])
        seam = self._CUT * 2 // 5
        post = np.abs(chunked[seam + self._EDGE : -self._EDGE]
                      - full[seam + self._EDGE : -self._EDGE])
        assert post.max() > 1.0  # the tail mixes at the wrong LO phase


class TestBatchPhaseContinuity:
    def test_matches_scalar_including_origin(self, rng):
        fs = 20e6
        waves = [rng.normal(size=300) + 1j * rng.normal(size=300) for _ in range(3)]
        shifts = [12e3, -47e3, 0.0]
        batched = frequency_shift_batch(
            np.stack(waves), shifts, fs, phase_origin_sample=160
        )
        for k in range(3):
            scalar = frequency_shift(
                waves[k], shifts[k], fs, phase_origin_sample=160
            )
            assert np.array_equal(batched[k], scalar)

    def test_plus_then_minus_is_identity(self, rng):
        fs = 20e6
        stack = rng.normal(size=(4, 256)) + 1j * rng.normal(size=(4, 256))
        shifts = np.array([10e3, 20e3, -5e3, 97.6e3])
        roundtrip = frequency_shift_batch(
            frequency_shift_batch(stack, shifts, fs), -shifts, fs
        )
        np.testing.assert_allclose(roundtrip, stack, rtol=0, atol=1e-12)
