"""Batch-of-one and batch-of-many must match the scalar chains bit-exactly.

The batched entry points (``encode_frames`` / ``decode_frames`` /
``*_frames``) are the hot path of the experiment suite; these tests pin
them to the legacy scalar APIs so vectorisation can never drift from the
reference behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.bits import random_bits
from repro.wifi import receiver as wifi_receiver
from repro.wifi import transmitter as wifi_transmitter
from repro.wifi.params import PAPER_MCS_NAMES, get_mcs
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter

ALL_MCS = ("bpsk-1/2", "qpsk-3/4") + PAPER_MCS_NAMES


def _psdu(n_octets: int, seed: int) -> np.ndarray:
    return random_bits(8 * n_octets, np.random.default_rng(seed))


class TestWifiBatchEquivalence:
    @pytest.mark.parametrize("mcs_name", ALL_MCS)
    def test_encode_frames_matches_scalar_transmit(self, mcs_name):
        mcs = get_mcs(mcs_name)
        payloads = [_psdu(60, seed) for seed in (1, 2, 3)]
        scalar = [WifiTransmitter(mcs).transmit(p).waveform for p in payloads]
        batched = wifi_transmitter.encode_frames(payloads, mcs)
        for one, many in zip(scalar, batched):
            np.testing.assert_array_equal(one, many)

    @pytest.mark.parametrize("mcs_name", ALL_MCS)
    def test_decode_frames_matches_scalar_receive(self, mcs_name):
        mcs = get_mcs(mcs_name)
        payloads = [_psdu(60, seed) for seed in (4, 5, 6)]
        waveforms = wifi_transmitter.encode_frames(payloads, mcs)
        receiver = WifiReceiver()
        scalar = [receiver.receive(w).psdu_bits for w in waveforms]
        batched = wifi_receiver.decode_frames(waveforms)
        for one, many, sent in zip(scalar, batched, payloads):
            np.testing.assert_array_equal(one, many)
            np.testing.assert_array_equal(many, sent)

    def test_mixed_lengths_keep_input_order(self):
        mcs = get_mcs("qam16-1/2")
        payloads = [_psdu(n, seed) for seed, n in enumerate((20, 80, 20, 50))]
        batched = wifi_transmitter.encode_frames(payloads, mcs)
        decoded = wifi_receiver.decode_frames(batched)
        for sent, got in zip(payloads, decoded):
            np.testing.assert_array_equal(sent, got)

    def test_soft_and_hard_decisions_agree_on_clean_channel(self):
        mcs = get_mcs("qam64-3/4")
        payloads = [_psdu(40, seed) for seed in (7, 8)]
        waveforms = wifi_transmitter.encode_frames(payloads, mcs)
        hard = WifiReceiver().receive_frames(waveforms, soft=False)
        soft = WifiReceiver().receive_frames(waveforms, soft=True)
        for one, other in zip(hard, soft):
            np.testing.assert_array_equal(one.psdu_bits, other.psdu_bits)


class TestZigbeeBatchEquivalence:
    def test_send_frames_matches_scalar_send(self):
        from repro.zigbee.transmitter import ZigbeeTransmitter

        psdus = [bytes(range(10)), b"\x00" * 5, bytes(range(10, 20))]
        tx = ZigbeeTransmitter()
        scalar = [ZigbeeTransmitter().send(p) for p in psdus]
        batched = tx.send_frames(psdus)
        for one, many in zip(scalar, batched):
            np.testing.assert_array_equal(one.chips, many.chips)
            np.testing.assert_array_equal(one.waveform, many.waveform)

    def test_roundtrip_via_module_helpers(self):
        from repro.zigbee import decode_frames, encode_frames

        psdus = [b"hello zigbee", b"x" * 30, b"hello zigbee"]
        assert decode_frames(encode_frames(psdus)) == psdus

    def test_receive_frames_matches_scalar_receive(self):
        from repro.zigbee.receiver import ZigbeeReceiver
        from repro.zigbee.transmitter import ZigbeeTransmitter

        psdus = [bytes(range(12)), bytes(range(40, 45))]
        waveforms = [ZigbeeTransmitter().send(p).waveform for p in psdus]
        rx = ZigbeeReceiver()
        scalar = [rx.receive(w) for w in waveforms]
        batched = rx.receive_frames(waveforms)
        for one, many in zip(scalar, batched):
            assert one.frame.psdu == many.frame.psdu
            assert one.start_sample == many.start_sample
            assert one.symbol_scores == pytest.approx(many.symbol_scores)


class TestSledZigBatchEquivalence:
    @pytest.mark.parametrize("mcs_name", ("qam16-1/2", "qam64-3/4"))
    def test_send_frames_matches_scalar_send(self, mcs_name):
        from repro.sledzig.pipeline import SledZigTransmitter

        payloads = [bytes(range(25)), b"\xaa" * 40, bytes(range(25))]
        batched = SledZigTransmitter(mcs_name, 23).send_frames(payloads)
        scalar = [SledZigTransmitter(mcs_name, 23).send(p) for p in payloads]
        for one, many in zip(scalar, batched):
            np.testing.assert_array_equal(one.waveform, many.waveform)

    def test_pipeline_roundtrip_via_module_helpers(self):
        from repro.sledzig.pipeline import decode_frames, encode_frames

        payloads = [bytes(range(30)), b"sledzig", b"\x00" * 12]
        waveforms = encode_frames(payloads, "qam16-1/2", 24)
        assert decode_frames(waveforms) == payloads

    def test_receive_frames_matches_scalar_receive(self):
        from repro.sledzig.pipeline import (
            SledZigReceiver,
            SledZigTransmitter,
        )

        payloads = [bytes(range(20)), bytes(range(50, 85))]
        waveforms = [
            SledZigTransmitter("qam64-2/3", 25).send(p).waveform
            for p in payloads
        ]
        rx = SledZigReceiver()
        scalar = [rx.receive(w) for w in waveforms]
        batched = rx.receive_frames(waveforms)
        for one, many in zip(scalar, batched):
            assert one.payload == many.payload
            assert one.channel == many.channel
            assert one.mcs == many.mcs
