"""Edge-case pins: zero-length frames and empty batches through the DSP layer.

Streaming callers legitimately produce empty batches (a chunk boundary
falling exactly on a frame boundary) and zero-length frames (header-only
traffic probes).  These must flow through encode/decode as well-formed
empty arrays — not raise — on every kernel backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.dsp.dsss import correlate_batch, despread_batch, spread_batch
from repro.dsp.trellis import (
    conv_encode_batch,
    viterbi_decode_batch,
    viterbi_decode_soft_batch,
)

BACKENDS = [b for b in kernels.available_backends()]


class TestEncodeDegenerate:
    def test_empty_batch(self) -> None:
        coded, state = conv_encode_batch(np.zeros((0, 10), dtype=np.uint8))
        assert coded.shape == (0, 20)
        assert coded.dtype == np.uint8
        assert state == 0

    def test_empty_batch_preserves_initial_state(self) -> None:
        _, state = conv_encode_batch(
            np.zeros((0, 10), dtype=np.uint8), initial_state=5
        )
        assert state == 5

    def test_zero_length_frames(self) -> None:
        coded, state = conv_encode_batch(
            np.zeros((3, 0), dtype=np.uint8), initial_state=9
        )
        assert coded.shape == (3, 0)
        assert state == 9

    def test_empty_both_axes(self) -> None:
        coded, state = conv_encode_batch(np.zeros((0, 0), dtype=np.uint8))
        assert coded.shape == (0, 0)
        assert state == 0


@pytest.mark.parametrize("backend", BACKENDS)
class TestViterbiDegenerate:
    def test_empty_batch_hard(self, backend: str) -> None:
        decoded = viterbi_decode_batch(
            np.zeros((0, 20), dtype=np.uint8), backend=backend
        )
        assert decoded.shape == (0, 10)
        assert decoded.dtype == np.uint8

    def test_zero_steps_hard(self, backend: str) -> None:
        decoded = viterbi_decode_batch(
            np.zeros((4, 0), dtype=np.uint8), backend=backend
        )
        assert decoded.shape == (4, 0)

    def test_empty_batch_soft(self, backend: str) -> None:
        decoded = viterbi_decode_soft_batch(
            np.zeros((0, 20), dtype=np.float64), backend=backend
        )
        assert decoded.shape == (0, 10)

    def test_zero_steps_soft(self, backend: str) -> None:
        decoded = viterbi_decode_soft_batch(
            np.zeros((4, 0), dtype=np.float64), backend=backend
        )
        assert decoded.shape == (4, 0)

    def test_roundtrip_through_empty(self, backend: str) -> None:
        """encode -> decode of an empty batch is the identity on shapes."""
        coded, _ = conv_encode_batch(np.zeros((0, 16), dtype=np.uint8))
        decoded = viterbi_decode_batch(coded, backend=backend)
        assert decoded.shape == (0, 16)


class TestDsssDegenerate:
    def test_spread_empty(self) -> None:
        chips = spread_batch(np.zeros((0, 8), dtype=np.uint8))
        assert chips.shape == (0, 64)

    def test_correlate_zero_symbols(self) -> None:
        symbols, scores = correlate_batch(np.zeros((3, 0)))
        assert symbols.shape == (3, 0)
        assert scores.shape == (3, 0)

    def test_correlate_empty_batch(self) -> None:
        symbols, scores = correlate_batch(np.zeros((0, 64)))
        assert symbols.shape == (0, 2)
        assert scores.shape == (0, 2)

    def test_correlate_empty_both(self) -> None:
        symbols, scores = correlate_batch(np.zeros((0, 0)))
        assert symbols.shape == (0, 0)
        assert scores.shape == (0, 0)

    def test_despread_empty(self) -> None:
        bits, scores = despread_batch(np.zeros((2, 0)))
        assert bits.shape == (2, 0)
        assert scores.shape == (2, 0)
