"""Tests for the repro.dsp parameter-keyed table cache."""

from __future__ import annotations

import numpy as np

from repro.dsp.cache import TableCache, cache_stats, cached_table, clear_cache


class TestTableCache:
    def test_build_once(self):
        cache = TableCache()
        calls = []

        def build():
            calls.append(1)
            return np.arange(4)

        first = cache.get(("x", 1), build)
        second = cache.get(("x", 1), build)
        assert len(calls) == 1
        assert first is second

    def test_hit_miss_accounting(self):
        cache = TableCache()
        cache.get(("a",), lambda: 1)
        cache.get(("a",), lambda: 1)
        cache.get(("b",), lambda: 2)
        stats = cache.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 1
        assert stats["entries"] == 2

    def test_distinct_keys_distinct_tables(self):
        cache = TableCache()
        one = cache.get(("k", 1), lambda: np.zeros(1))
        two = cache.get(("k", 2), lambda: np.ones(1))
        assert one is not two

    def test_clear_resets(self):
        cache = TableCache()
        cache.get(("a",), lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}


class TestGlobalCache:
    def test_module_cache_hit_on_reuse(self):
        clear_cache()
        try:
            before = cache_stats()
            cached_table(("test-table", 7), lambda: np.arange(7))
            cached_table(("test-table", 7), lambda: np.arange(7))
            after = cache_stats()
            assert after["misses"] == before["misses"] + 1
            assert after["hits"] == before["hits"] + 1
        finally:
            clear_cache()

    def test_kernels_share_the_cache(self):
        from repro.dsp.interleaving import interleave_permutation

        clear_cache()
        try:
            interleave_permutation(192, 4)
            misses = cache_stats()["misses"]
            interleave_permutation(192, 4)
            stats = cache_stats()
            assert stats["misses"] == misses  # second call was a pure hit
            assert stats["hits"] >= 1
        finally:
            clear_cache()
