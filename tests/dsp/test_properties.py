"""Property-based tests (hypothesis) for the repro.dsp kernel invariants.

The algebra a downstream caller leans on without thinking:

1. *Scrambling* is an involution (XOR with a fixed PRBS), with period 127.
2. *Interleaving* is a permutation, exactly undone by deinterleaving, in
   either composition order, for every modulation's block geometry.
3. *QAM map/demap* roundtrips bits at all orders, and the soft demapper's
   signs agree with the hard decisions on noiseless symbols.
4. *Puncturing* drops exactly the patterned positions; depuncturing
   restores the kept bits and marks the rest as erasures, and the full
   encode -> puncture -> depuncture -> Viterbi chain recovers the data.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dsp.interleaving import (
    deinterleave_blocks,
    deinterleave_permutation,
    interleave_blocks,
    interleave_permutation,
)
from repro.dsp.qam import (
    bits_per_point,
    demodulate_hard_batch,
    demodulate_soft_batch,
    modulate_batch,
)
from repro.dsp.scrambling import scramble_batch, scrambler_sequence
from repro.dsp.trellis import ERASURE, conv_encode_batch, viterbi_decode_batch
from repro.wifi.puncture import (
    PUNCTURE_PATTERNS,
    depuncture,
    punctured_length,
    puncture,
)

MODULATIONS = st.sampled_from(["bpsk", "qpsk", "qam16", "qam64", "qam256"])
CODING_RATES = st.sampled_from(sorted(PUNCTURE_PATTERNS))
SEEDS = st.integers(min_value=1, max_value=127)

_prop = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _bits(rng_seed: int, n: int) -> np.ndarray:
    return np.random.default_rng(rng_seed).integers(0, 2, size=n, dtype=np.uint8)


class TestScrambler:
    @given(seed=SEEDS, rng_seed=st.integers(0, 2**16), n=st.integers(0, 500))
    @_prop
    def test_involution(self, seed, rng_seed, n):
        bits = _bits(rng_seed, n)[None, :]
        assert np.array_equal(scramble_batch(scramble_batch(bits, seed), seed), bits)

    @given(seed=SEEDS)
    @_prop
    def test_period_127(self, seed):
        seq = scrambler_sequence(seed, 3 * 127)
        assert np.array_equal(seq[:127], seq[127:254])
        assert np.array_equal(seq[:127], seq[254:])

    @given(seed=SEEDS, rng_seed=st.integers(0, 2**16), n=st.integers(1, 300))
    @_prop
    def test_is_fixed_mask_xor(self, seed, rng_seed, n):
        bits = _bits(rng_seed, n)[None, :]
        mask = scramble_batch(np.zeros((1, n), dtype=np.uint8), seed)
        assert np.array_equal(scramble_batch(bits, seed), bits ^ mask)


class TestInterleaver:
    @given(modulation=MODULATIONS, rng_seed=st.integers(0, 2**16),
           n_blocks=st.integers(1, 4))
    @_prop
    def test_roundtrip_both_orders(self, modulation, rng_seed, n_blocks):
        n_bpsc = bits_per_point(modulation)
        n_cbps = 48 * n_bpsc
        bits = _bits(rng_seed, n_blocks * n_cbps)
        assert np.array_equal(
            deinterleave_blocks(interleave_blocks(bits, n_cbps, n_bpsc),
                                n_cbps, n_bpsc),
            bits,
        )
        assert np.array_equal(
            interleave_blocks(deinterleave_blocks(bits, n_cbps, n_bpsc),
                              n_cbps, n_bpsc),
            bits,
        )

    @given(modulation=MODULATIONS)
    @_prop
    def test_permutations_are_inverse(self, modulation):
        n_bpsc = bits_per_point(modulation)
        n_cbps = 48 * n_bpsc
        fwd = interleave_permutation(n_cbps, n_bpsc)
        inv = deinterleave_permutation(n_cbps, n_bpsc)
        identity = np.arange(n_cbps)
        assert np.array_equal(np.sort(fwd), identity)
        assert np.array_equal(fwd[inv], identity)
        assert np.array_equal(inv[fwd], identity)


class TestQam:
    @given(modulation=MODULATIONS, rng_seed=st.integers(0, 2**16),
           n_points=st.integers(1, 96))
    @_prop
    def test_hard_roundtrip(self, modulation, rng_seed, n_points):
        n_bpsc = bits_per_point(modulation)
        bits = _bits(rng_seed, n_points * n_bpsc)[None, :]
        symbols = modulate_batch(bits, modulation)
        assert symbols.shape == (1, n_points)
        assert np.array_equal(demodulate_hard_batch(symbols, modulation), bits)

    @given(modulation=MODULATIONS, rng_seed=st.integers(0, 2**16),
           n_points=st.integers(1, 96))
    @_prop
    def test_soft_signs_match_hard_bits(self, modulation, rng_seed, n_points):
        n_bpsc = bits_per_point(modulation)
        bits = _bits(rng_seed, n_points * n_bpsc)[None, :]
        soft = demodulate_soft_batch(modulate_batch(bits, modulation), modulation)
        assert np.all(soft != 0)  # noiseless points are never ambiguous
        assert np.array_equal((soft > 0).astype(np.uint8), bits)

    @given(modulation=MODULATIONS, rng_seed=st.integers(0, 2**16),
           n_points=st.integers(1, 64))
    @_prop
    def test_unit_average_power_tables(self, modulation, rng_seed, n_points):
        # Any all-points batch has exactly the table's unit average power.
        n_bpsc = bits_per_point(modulation)
        groups = np.arange(2**n_bpsc, dtype=np.uint8)
        bits = ((groups[:, None] >> np.arange(n_bpsc - 1, -1, -1)) & 1).astype(
            np.uint8
        )
        symbols = modulate_batch(bits.reshape(1, -1), modulation)
        assert np.isclose(np.mean(np.abs(symbols) ** 2), 1.0)


class TestPuncture:
    @given(rate=CODING_RATES, rng_seed=st.integers(0, 2**16),
           n_periods=st.integers(1, 40))
    @_prop
    def test_depuncture_restores_kept_and_marks_erasures(
        self, rate, rng_seed, n_periods
    ):
        pattern = np.array(PUNCTURE_PATTERNS[rate], dtype=bool)
        coded = _bits(rng_seed, n_periods * pattern.size)
        sent = puncture(coded, rate)
        assert sent.size == punctured_length(coded.size, rate)
        restored = depuncture(sent, rate)
        assert restored.size == coded.size
        mask = np.tile(pattern, n_periods)
        assert np.array_equal(restored[mask], coded[mask])
        assert np.all(restored[~mask] == ERASURE)

    @given(rate=CODING_RATES, rng_seed=st.integers(0, 2**16),
           k=st.integers(1, 3))
    @_prop
    def test_encode_puncture_viterbi_roundtrip(self, rate, rng_seed, k):
        # 30k total bits (incl. the 6-zero tail) keeps every pattern aligned.
        data = _bits(rng_seed, 30 * k - 6)
        padded = np.concatenate([data, np.zeros(6, dtype=np.uint8)])[None, :]
        coded, _ = conv_encode_batch(padded)
        received = depuncture(puncture(coded[0], rate), rate)[None, :]
        decoded = viterbi_decode_batch(received, n_data_bits=padded.shape[1])
        assert np.array_equal(decoded[0][: data.size], data)
