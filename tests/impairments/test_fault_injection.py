"""Fault injection: receivers degrade gracefully, never crash or hang.

Every fault class the Monte-Carlo campaigns can produce — truncated
captures, corrupted SIGNAL headers, non-finite samples — must surface as a
typed :mod:`repro.errors` exception under ``on_error="raise"`` and as a
``None`` result under ``on_error="none"``, for all three receivers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.ofdm import ofdm_modulate_batch
from repro.errors import DecodingError, InvalidWaveformError, ReproError
from repro.sledzig.pipeline import SledZigReceiver, SledZigTransmitter
from repro.utils.bits import random_bits
from repro.wifi.constellation import modulate
from repro.wifi.convolutional import conv_encode
from repro.wifi.interleaver import interleave
from repro.wifi.ofdm import map_subcarriers
from repro.wifi.receiver import WifiReceiver
from repro.wifi.signal_field import build_signal_bits
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.receiver import ZigbeeReceiver
from repro.zigbee.transmitter import ZigbeeTransmitter

_DATA_START = 320


@pytest.fixture(scope="module")
def wifi_frame():
    rng = np.random.default_rng(42)
    psdu = random_bits(8 * 40, rng)
    frame = WifiTransmitter("qpsk-1/2").transmit(psdu)
    return frame, psdu


@pytest.fixture(scope="module")
def zigbee_frame():
    rng = np.random.default_rng(43)
    psdu = bytes(rng.integers(0, 256, 24, dtype=np.uint8))
    return ZigbeeTransmitter().send(psdu), psdu


class TestWifiFaults:
    def test_truncated_payload_is_typed_or_none(self, wifi_frame):
        frame, _ = wifi_frame
        truncated = frame.waveform[: _DATA_START + 80 + 40]
        rx = WifiReceiver()
        with pytest.raises(ReproError):
            rx.receive(truncated, data_start=_DATA_START)
        results = rx.receive_frames(
            [truncated], data_start=_DATA_START, on_error="none"
        )
        assert results == [None]

    def test_flipped_rate_bit_fails_parity(self, wifi_frame):
        """Flip the RATE MSB in the SIGNAL field at the waveform level."""
        frame, psdu = wifi_frame
        bits = build_signal_bits(frame.mcs, psdu.size // 8)
        bits = bits.copy()
        bits[0] ^= 1  # RATE is bits to the parity, so this breaks it
        coded = conv_encode(bits)
        points = modulate(interleave(coded, n_cbps=48, n_bpsc=1), "bpsk")
        spectrum = map_subcarriers(points, symbol_index=0)
        symbol = ofdm_modulate_batch(spectrum[np.newaxis, :])[0]
        corrupted = frame.waveform.copy()
        corrupted[_DATA_START : _DATA_START + 80] = symbol
        rx = WifiReceiver()
        with pytest.raises(DecodingError):
            rx.receive(corrupted, data_start=_DATA_START)
        results = rx.receive_frames(
            [corrupted], data_start=_DATA_START, on_error="none"
        )
        assert results == [None]

    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf, 1j * np.nan])
    def test_non_finite_samples_rejected(self, wifi_frame, poison):
        frame, _ = wifi_frame
        bad = frame.waveform.copy()
        bad[_DATA_START + 100] = poison
        rx = WifiReceiver()
        with pytest.raises(InvalidWaveformError):
            rx.receive(bad, data_start=_DATA_START)
        results = rx.receive_frames(
            [bad], data_start=_DATA_START, on_error="none"
        )
        assert results == [None]

    def test_good_frames_survive_a_bad_neighbour(self, wifi_frame):
        """One poisoned row must not take down the rest of the batch."""
        frame, psdu = wifi_frame
        bad = frame.waveform.copy()
        bad[:] = np.nan
        results = WifiReceiver().receive_frames(
            [frame.waveform, bad, frame.waveform],
            data_start=_DATA_START,
            on_error="none",
        )
        assert results[1] is None
        assert results[0] is not None and results[2] is not None
        assert np.array_equal(results[0].psdu_bits, psdu)
        assert np.array_equal(results[2].psdu_bits, psdu)


class TestZigbeeFaults:
    def test_truncated_payload_is_typed_or_none(self, zigbee_frame):
        trans, _ = zigbee_frame
        truncated = trans.waveform[: trans.waveform.size // 3]
        rx = ZigbeeReceiver()
        with pytest.raises(ReproError):
            rx.receive(truncated, start_sample=0)
        assert rx.receive_frames(
            [truncated], on_error="none"
        ) == [None]

    @pytest.mark.parametrize("poison", [np.nan, np.inf])
    def test_non_finite_samples_rejected(self, zigbee_frame, poison):
        trans, _ = zigbee_frame
        bad = trans.waveform.copy()
        bad[100] = poison
        rx = ZigbeeReceiver()
        with pytest.raises(InvalidWaveformError):
            rx.receive(bad)
        assert rx.receive_frames([bad], on_error="none") == [None]

    def test_silence_never_hangs(self):
        rx = ZigbeeReceiver()
        silence = np.zeros(4096, dtype=complex)
        with pytest.raises(ReproError):
            rx.receive(silence)
        assert rx.receive_frames([silence], on_error="none") == [None]


class TestSledZigFaults:
    @pytest.fixture(scope="class")
    def packet(self):
        tx = SledZigTransmitter("qam16-1/2", "CH2")
        return tx.send(b"fault injection payload")

    def test_truncated_payload_is_typed_or_none(self, packet):
        truncated = packet.waveform[: packet.waveform.size // 2]
        rx = SledZigReceiver()
        with pytest.raises(ReproError):
            rx.receive(truncated)
        assert rx.receive_frames([truncated], on_error="none") == [None]

    def test_non_finite_samples_rejected(self, packet):
        bad = packet.waveform.copy()
        bad[500] = np.nan
        rx = SledZigReceiver()
        with pytest.raises(InvalidWaveformError):
            rx.receive(bad)
        assert rx.receive_frames([bad], on_error="none") == [None]

    def test_good_frames_survive_a_bad_neighbour(self, packet):
        bad = np.full(packet.waveform.size, np.nan, dtype=complex)
        results = SledZigReceiver().receive_frames(
            [packet.waveform, bad], on_error="none"
        )
        assert results[0] is not None and results[0].payload == packet.payload
        assert results[1] is None


class TestMixedBatchIsolation:
    """One bad capture must only cost its own slot, never the batch."""

    def test_truncated_zigbee_capture_returns_none_only_for_that_frame(self):
        rng = np.random.default_rng(44)
        tx = ZigbeeTransmitter()
        frames = [
            tx.send(bytes(rng.integers(0, 256, 20, dtype=np.uint8)))
            for _ in range(3)
        ]
        payloads = [bytes(t.frame.psdu) for t in frames]
        waveforms = [t.waveform for t in frames]
        waveforms[1] = waveforms[1][: waveforms[1].size // 4]  # truncated capture

        from repro import telemetry

        with telemetry.collect() as tel:
            results = ZigbeeReceiver().receive_frames(waveforms, on_error="none")
        assert results[1] is None
        assert results[0] is not None and results[2] is not None
        assert bytes(results[0].frame.psdu) == payloads[0]
        assert bytes(results[2].frame.psdu) == payloads[2]
        assert sum(tel.snapshot().drop_causes().values()) == 1

    def test_segment_assembly_honours_on_error_none(self):
        """The batch-assembly guard records a per-frame drop, not a batch
        failure (regression: it used to raise under on_error="none")."""
        from repro.telemetry import Telemetry

        tel = Telemetry()
        arrs = [np.zeros(10, dtype=complex), np.zeros(100, dtype=complex)]
        starts = [0, 0]
        segments, kept = ZigbeeReceiver._assemble_segments(
            arrs, starts, [0, 1], 50, "none", tel
        )
        assert kept == [1]
        assert segments.shape == (1, 50)
        assert tel.counters["zigbee.rx.drop.TruncatedFrameError"] == 1
        with pytest.raises(DecodingError):
            ZigbeeReceiver._assemble_segments(
                arrs, starts, [0, 1], 50, "raise", Telemetry()
            )


class TestGenuineBugsPropagate:
    """Injected non-ReproError faults must escape even under on_error="none"
    — a TypeError is a bug, not a lost frame."""

    def test_zigbee_parse_typeerror_propagates(self, zigbee_frame, monkeypatch):
        import repro.zigbee.receiver as zr

        def boom(bits):
            raise TypeError("injected bug")

        monkeypatch.setattr(zr, "parse_ppdu_bits", boom)
        trans, _ = zigbee_frame
        with pytest.raises(TypeError):
            ZigbeeReceiver().receive_frames([trans.waveform], on_error="none")

    def test_wifi_front_end_typeerror_propagates(self, wifi_frame, monkeypatch):
        import repro.wifi.receiver as wr

        def boom(spectrum):
            raise TypeError("injected bug")

        monkeypatch.setattr(wr, "decode_signal_symbol", boom)
        frame, _ = wifi_frame
        with pytest.raises(TypeError):
            WifiReceiver().receive_frames(
                [frame.waveform], data_start=_DATA_START, on_error="none"
            )

    def test_sledzig_strip_typeerror_propagates(self, monkeypatch):
        from repro.sledzig.decoder import SledZigDecoder

        tx = SledZigTransmitter("qam16-1/2", "CH2")
        packet = tx.send(b"genuine bug propagation")

        def boom(self, reception):
            raise TypeError("injected bug")

        monkeypatch.setattr(SledZigDecoder, "decode", boom)
        with pytest.raises(TypeError):
            SledZigReceiver().receive_frames([packet.waveform], on_error="none")

    def test_unexpected_errors_are_counted(self, zigbee_frame, monkeypatch):
        import repro.zigbee.receiver as zr
        from repro import telemetry

        def boom(bits):
            raise TypeError("injected bug")

        monkeypatch.setattr(zr, "parse_ppdu_bits", boom)
        trans, _ = zigbee_frame
        with telemetry.collect() as tel:
            with pytest.raises(TypeError):
                ZigbeeReceiver().receive_frames([trans.waveform], on_error="none")
        assert tel.counters["zigbee.rx.error.unexpected"] == 1
