"""Differential conformance: scalar and batched paths are bit-identical.

For every receiver, decoding a set of impaired waveforms one at a time must
produce exactly the results of the batched ``receive_frames`` call on the
same waveforms — the batch layout may change the arithmetic schedule but
never the bits.  Impairments are drawn from the addressed trial streams, so
the same comparison also pins impairment generation itself (batch-of-N
equals N batch-of-1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.batch import awgn_batch, stack_waveforms
from repro.impairments import (
    Adc,
    CarrierFrequencyOffset,
    ImpairmentPipeline,
    IQImbalance,
    Multipath,
    PhaseNoise,
)
from repro.montecarlo.seeding import trial_rng
from repro.sledzig.pipeline import SledZigReceiver, SledZigTransmitter
from repro.utils.bits import random_bits
from repro.wifi.params import SAMPLE_RATE_HZ as WIFI_FS
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.params import SAMPLE_RATE_HZ as ZIGBEE_FS
from repro.zigbee.receiver import ZigbeeReceiver
from repro.zigbee.transmitter import ZigbeeTransmitter

_DATA_START = 320
_N = 4


def _pipeline(fs: float) -> ImpairmentPipeline:
    return ImpairmentPipeline((
        CarrierFrequencyOffset(40e-6 * 2.44e9, fs),
        Multipath(n_taps=3, tap_spacing_samples=2),
        PhaseNoise(5e-4),
        IQImbalance(gain_db=0.3, phase_deg=1.0),
        Adc(n_bits=10, full_scale=4.0),
    ))


def _impair(waveforms, fs: float, snr_db: float, experiment: str):
    """Impair + noise each waveform twice from identical addressed streams.

    Returns (batched rows, scalar rows): the batched rows come from one
    stacked pipeline pass, the scalar rows from per-waveform batch-of-one
    passes; both must already be bit-identical, and both decode paths see
    the exact same samples.
    """
    pipeline = _pipeline(fs)
    lengths = [w.size for w in waveforms]
    stack = stack_waveforms(waveforms)
    rngs = [trial_rng(11, experiment, k) for k in range(len(waveforms))]
    impaired = pipeline.apply(stack, rngs, lengths=lengths)
    noisy = awgn_batch(impaired, snr_db, rngs, lengths=lengths)
    batched_rows = [noisy[k, :ell] for k, ell in enumerate(lengths)]
    scalar_rows = []
    for k, w in enumerate(waveforms):
        rng = trial_rng(11, experiment, k)
        one = pipeline.apply_one(w, rng)
        scalar_rows.append(awgn_batch(one[np.newaxis, :], snr_db, [rng])[0])
    for batched, scalar in zip(batched_rows, scalar_rows):
        assert np.array_equal(batched, scalar)
    return batched_rows, scalar_rows


class TestWifiConformance:
    def test_scalar_vs_batched_decode(self):
        rng = np.random.default_rng(21)
        tx = WifiTransmitter("qpsk-1/2")
        psdus = [random_bits(8 * (30 + 10 * k), rng) for k in range(_N)]
        frames = tx.transmit_frames(psdus)
        rows, scalar_rows = _impair(
            [f.waveform for f in frames], WIFI_FS, 20.0, "conf/wifi"
        )
        rx = WifiReceiver()
        batched = rx.receive_frames(
            rows, data_start=_DATA_START, soft=True, on_error="none"
        )
        for k, row in enumerate(scalar_rows):
            try:
                single = rx.receive(row, data_start=_DATA_START, soft=True)
            except Exception:
                single = None
            if single is None or batched[k] is None:
                assert single is None and batched[k] is None
            else:
                assert np.array_equal(single.psdu_bits, batched[k].psdu_bits)

    def test_at_least_one_frame_decodes(self):
        """The conformance fixture exercises the success path, not only
        failure agreement."""
        rng = np.random.default_rng(21)
        tx = WifiTransmitter("qpsk-1/2")
        psdus = [random_bits(8 * 30, rng)]
        frames = tx.transmit_frames(psdus)
        rows, _ = _impair(
            [f.waveform for f in frames], WIFI_FS, 20.0, "conf/wifi-ok"
        )
        out = WifiReceiver().receive_frames(
            rows, data_start=_DATA_START, soft=True, on_error="none"
        )
        assert out[0] is not None
        assert np.array_equal(out[0].psdu_bits, psdus[0])


class TestZigbeeConformance:
    def test_scalar_vs_batched_decode(self):
        rng = np.random.default_rng(22)
        tx = ZigbeeTransmitter()
        psdus = [
            bytes(rng.integers(0, 256, 16 + 4 * k, dtype=np.uint8))
            for k in range(_N)
        ]
        waves = [tx.send(p).waveform for p in psdus]
        rows, scalar_rows = _impair(waves, ZIGBEE_FS, 12.0, "conf/zigbee")
        rx = ZigbeeReceiver()
        batched = rx.receive_frames(rows, on_error="none", correct_cfo=True)
        decoded = 0
        for k, row in enumerate(scalar_rows):
            try:
                single = rx.receive(row, correct_cfo=True)
            except Exception:
                single = None
            if single is None or batched[k] is None:
                assert single is None and batched[k] is None
            else:
                assert single.frame.psdu == batched[k].frame.psdu
                decoded += 1
        assert decoded >= 1  # exercise the success path too


class TestSledZigConformance:
    def test_scalar_vs_batched_decode(self):
        rng = np.random.default_rng(23)
        tx = SledZigTransmitter("qam16-1/2", "CH2")
        payloads = [
            bytes(rng.integers(0, 256, 20, dtype=np.uint8)) for _ in range(_N)
        ]
        waves = [p.waveform for p in tx.send_frames(payloads)]
        rows, scalar_rows = _impair(waves, WIFI_FS, 22.0, "conf/sledzig")
        rx = SledZigReceiver()
        batched = rx.receive_frames(rows, on_error="none")
        for k, row in enumerate(scalar_rows):
            try:
                single = rx.receive(row)
            except Exception:
                single = None
            if single is None or batched[k] is None:
                assert single is None and batched[k] is None
            else:
                assert single.payload == batched[k].payload
