"""Property-based tests (hypothesis) on the impairment-kernel invariants.

The contract a downstream experiment relies on:

1. *Identity points*: the zero magnitude of every kernel is the exact
   identity (CFO at 0 Hz, SCO at 0 ppm, IQ at 0 dB/0 deg, a single unit
   multipath tap).
2. *Real-linearity*: the linear kernels commute with the channel's power
   scaling (:func:`repro.channel.batch.apply_gain_db`), so impairing
   before or after path loss is the same channel.
3. *Idempotence*: the ADC re-quantizes to itself, saturated samples
   included.
4. *Determinism*: same generator state, same output, regardless of batch
   company.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.batch import apply_gain_db
from repro.impairments import (
    Adc,
    CarrierFrequencyOffset,
    IQImbalance,
    Multipath,
    PhaseNoise,
    SamplingClockOffset,
)

_quick = settings(max_examples=40, deadline=None)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
sizes = st.integers(min_value=1, max_value=300)


def _wave(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=n) + 1j * rng.normal(size=n)


class TestIdentityPoints:
    @_quick
    @given(seed=seeds, n=sizes)
    def test_cfo_zero_hz_is_identity(self, seed, n):
        x = _wave(seed, n)
        assert np.array_equal(
            CarrierFrequencyOffset(0.0, 20e6).apply_one(x), x
        )

    @_quick
    @given(seed=seeds, n=sizes)
    def test_sco_zero_ppm_is_identity(self, seed, n):
        x = _wave(seed, n)
        assert np.array_equal(SamplingClockOffset(0.0).apply_one(x), x)

    @_quick
    @given(seed=seeds, n=sizes)
    def test_iq_zero_is_identity(self, seed, n):
        x = _wave(seed, n)
        assert np.array_equal(IQImbalance(0.0, 0.0).apply_one(x), x)

    @_quick
    @given(seed=seeds, n=sizes, spacing=st.integers(1, 8))
    def test_multipath_unit_tap_is_identity(self, seed, n, spacing):
        x = _wave(seed, n)
        y = Multipath(taps=(1.0,), tap_spacing_samples=spacing).apply_one(x)
        np.testing.assert_allclose(y, x, rtol=0, atol=1e-12)


class TestGainCommutation:
    """Linear kernels commute with path-loss scaling (up to rounding)."""

    @_quick
    @given(
        seed=seeds,
        n=sizes,
        gain_db=st.floats(-40.0, 10.0),
        offset_hz=st.floats(-200e3, 200e3),
    )
    def test_cfo_commutes_with_gain(self, seed, n, gain_db, offset_hz):
        x = _wave(seed, n)[np.newaxis, :]
        kernel = CarrierFrequencyOffset(offset_hz, 20e6)
        before = kernel.apply(apply_gain_db(x, gain_db))
        after = apply_gain_db(kernel.apply(x), gain_db)
        np.testing.assert_allclose(before, after, rtol=1e-12, atol=1e-12)

    @_quick
    @given(
        seed=seeds,
        n=sizes,
        gain_db=st.floats(-40.0, 10.0),
        imb_db=st.floats(-3.0, 3.0),
        phase=st.floats(-10.0, 10.0),
    )
    def test_iq_commutes_with_gain(self, seed, n, gain_db, imb_db, phase):
        x = _wave(seed, n)[np.newaxis, :]
        kernel = IQImbalance(imb_db, phase)
        before = kernel.apply(apply_gain_db(x, gain_db))
        after = apply_gain_db(kernel.apply(x), gain_db)
        np.testing.assert_allclose(before, after, rtol=1e-12, atol=1e-12)

    @_quick
    @given(seed=seeds, n=sizes, gain_db=st.floats(-40.0, 10.0), rng_seed=seeds)
    def test_multipath_commutes_with_gain(self, seed, n, gain_db, rng_seed):
        x = _wave(seed, n)[np.newaxis, :]
        kernel = Multipath(n_taps=3, tap_spacing_samples=2)
        before = kernel.apply(
            apply_gain_db(x, gain_db), [np.random.default_rng(rng_seed)]
        )
        after = apply_gain_db(
            kernel.apply(x, [np.random.default_rng(rng_seed)]), gain_db
        )
        np.testing.assert_allclose(before, after, rtol=1e-12, atol=1e-12)

    @_quick
    @given(seed=seeds, n=sizes, gain_db=st.floats(-40.0, 10.0), rng_seed=seeds)
    def test_phase_noise_commutes_with_gain(self, seed, n, gain_db, rng_seed):
        x = _wave(seed, n)[np.newaxis, :]
        kernel = PhaseNoise(2e-3)
        before = kernel.apply(
            apply_gain_db(x, gain_db), [np.random.default_rng(rng_seed)]
        )
        after = apply_gain_db(
            kernel.apply(x, [np.random.default_rng(rng_seed)]), gain_db
        )
        np.testing.assert_allclose(before, after, rtol=1e-12, atol=1e-12)


class TestAdcIdempotence:
    @_quick
    @given(
        seed=seeds,
        n=sizes,
        n_bits=st.integers(2, 12),
        scale=st.floats(0.25, 4.0),
        drive=st.floats(0.1, 10.0),
    )
    def test_requantization_is_identity(self, seed, n, n_bits, scale, drive):
        """Any output level — saturated rails included — is its own
        quantization."""
        adc = Adc(n_bits=n_bits, full_scale=scale)
        x = drive * _wave(seed, n)
        once = adc.apply_one(x)
        assert np.array_equal(adc.apply_one(once), once)
        assert np.max(np.abs(once.real)) <= scale + 1e-12
        assert np.max(np.abs(once.imag)) <= scale + 1e-12


class TestDeterminism:
    @_quick
    @given(seed=seeds, n=st.integers(8, 200), rng_seed=seeds)
    def test_same_generator_state_same_output(self, seed, n, rng_seed):
        x = _wave(seed, n)
        kernel = Multipath(n_taps=4)
        a = kernel.apply_one(x, np.random.default_rng(rng_seed))
        b = kernel.apply_one(x, np.random.default_rng(rng_seed))
        assert np.array_equal(a, b)
