"""Unit tests for the individual channel-impairment kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.impairments import (
    Adc,
    CarrierFrequencyOffset,
    ImpairmentPipeline,
    IQImbalance,
    Multipath,
    PhaseNoise,
    SamplingClockOffset,
)
from repro.montecarlo.seeding import trial_rng


def _wave(rng: np.random.Generator, n: int = 256) -> np.ndarray:
    return rng.normal(size=n) + 1j * rng.normal(size=n)


class TestCarrierFrequencyOffset:
    def test_rotation_matches_closed_form(self, rng):
        x = _wave(rng)
        fs = 20e6
        cfo = CarrierFrequencyOffset(97_600.0, fs)
        y = cfo.apply_one(x)
        n = np.arange(x.size)
        expected = x * np.exp(2j * np.pi * 97_600.0 * n / fs)
        np.testing.assert_allclose(y, expected, atol=1e-12)

    def test_zero_offset_is_exact_copy(self, rng):
        x = _wave(rng)
        y = CarrierFrequencyOffset(0.0, 20e6).apply_one(x)
        assert np.array_equal(y, x)
        assert y is not x

    def test_does_not_consume_rng(self, rng):
        cfo = CarrierFrequencyOffset(1e3, 20e6)
        assert not cfo.uses_rng
        a = np.random.default_rng(1)
        b = np.random.default_rng(1)
        cfo.apply(_wave(rng)[np.newaxis, :], [a])
        assert a.normal() == b.normal()


class TestSamplingClockOffset:
    def test_zero_ppm_is_exact_copy(self, rng):
        x = _wave(rng)
        assert np.array_equal(SamplingClockOffset(0.0).apply_one(x), x)

    def test_small_offset_interpolates_linearly(self):
        # A linear ramp is invariant under linear interpolation (interior).
        x = np.arange(64, dtype=float).astype(complex)
        y = SamplingClockOffset(1e5).apply_one(x)  # step 1.1
        positions = np.arange(64) * 1.1
        interior = positions < 63
        np.testing.assert_allclose(
            y[interior].real, positions[interior], atol=1e-9
        )

    def test_reads_past_extent_return_silence(self):
        x = np.ones(50, dtype=complex)
        y = SamplingClockOffset(1e5).apply_one(x)  # reads up to index ~54
        assert y.size == x.size
        assert np.all(y[np.abs(y) == 0.0].size > 0)

    def test_padding_stays_silent(self, rng):
        x = _wave(rng, 40)
        batch = np.zeros((1, 64), dtype=complex)
        batch[0, :40] = x
        y = SamplingClockOffset(50.0).apply(batch, lengths=[40])
        assert np.all(y[0, 40:] == 0.0)
        np.testing.assert_array_equal(
            y[0, :40], SamplingClockOffset(50.0).apply_one(x)
        )


class TestIQImbalance:
    def test_identity_at_zero(self, rng):
        x = _wave(rng)
        assert np.array_equal(IQImbalance(0.0, 0.0).apply_one(x), x)

    def test_matches_two_coefficient_model(self, rng):
        x = _wave(rng)
        imb = IQImbalance(gain_db=1.0, phase_deg=3.0)
        g = 10.0 ** (1.0 / 20.0)
        phi = np.deg2rad(3.0)
        k1 = (1.0 + g * np.exp(-1j * phi)) / 2.0
        k2 = (1.0 - g * np.exp(1j * phi)) / 2.0
        np.testing.assert_allclose(
            imb.apply_one(x), k1 * x + k2 * np.conj(x), atol=1e-12
        )

    def test_pure_gain_imbalance_scales_rails(self):
        imb = IQImbalance(gain_db=6.0, phase_deg=0.0)
        g = 10.0 ** (6.0 / 20.0)
        y = imb.apply_one(np.array([1.0 + 1.0j]))
        np.testing.assert_allclose(y[0].real, 1.0, atol=1e-12)
        np.testing.assert_allclose(y[0].imag, g, atol=1e-12)


class TestPhaseNoise:
    def test_requires_rngs(self, rng):
        with pytest.raises(ConfigurationError):
            PhaseNoise(1e-3).apply(_wave(rng)[np.newaxis, :])

    def test_preserves_magnitude(self, rng):
        x = _wave(rng)
        y = PhaseNoise(5e-3).apply_one(x, np.random.default_rng(0))
        np.testing.assert_allclose(np.abs(y), np.abs(x), atol=1e-12)

    def test_draws_sized_by_true_length(self, rng):
        x = _wave(rng, 40)
        padded = np.zeros((1, 64), dtype=complex)
        padded[0, :40] = x
        kernel = PhaseNoise(2e-3)
        unpadded = kernel.apply_one(x, np.random.default_rng(7))
        via_padding = kernel.apply(
            padded, [np.random.default_rng(7)], lengths=[40]
        )
        assert np.array_equal(via_padding[0, :40], unpadded)
        assert np.all(via_padding[0, 40:] == 0.0)

    def test_rows_use_only_their_own_generator(self, rng):
        a, b = _wave(rng), _wave(rng)
        kernel = PhaseNoise(1e-3)
        batch = kernel.apply(
            np.stack([a, b]),
            [np.random.default_rng(1), np.random.default_rng(2)],
        )
        alone = kernel.apply_one(b, np.random.default_rng(2))
        assert np.array_equal(batch[1], alone)


class TestMultipath:
    def test_unit_tap_is_identity(self, rng):
        x = _wave(rng)
        mp = Multipath(taps=(1.0,))
        assert not mp.uses_rng
        np.testing.assert_allclose(mp.apply_one(x), x, atol=1e-12)

    def test_explicit_taps_convolve(self):
        x = np.array([1.0, 0.0, 0.0, 0.0], dtype=complex)
        y = Multipath(taps=(1.0, 0.5j), tap_spacing_samples=2).apply_one(x)
        np.testing.assert_allclose(y, [1.0, 0.0, 0.5j, 0.0], atol=1e-12)

    def test_echo_tail_truncated_at_true_length(self):
        x = np.ones(4, dtype=complex)
        y = Multipath(taps=(1.0, 1.0), tap_spacing_samples=2).apply_one(x)
        assert y.size == 4
        np.testing.assert_allclose(y, [1.0, 1.0, 2.0, 2.0], atol=1e-12)

    def test_random_taps_need_rngs(self, rng):
        with pytest.raises(ConfigurationError):
            Multipath(n_taps=2).apply(_wave(rng)[np.newaxis, :])

    def test_profile_normalised_to_unit_power(self):
        mp = Multipath(n_taps=4, decay_db_per_tap=3.0)
        np.testing.assert_allclose(mp._profile_powers().sum(), 1.0, atol=1e-12)

    def test_rician_first_tap_carries_los(self):
        # With a huge K-factor the first tap converges to its LOS gain.
        mp = Multipath(n_taps=2, profile="rician", k_factor_db=80.0)
        taps = mp._draw_taps(np.random.default_rng(3))
        los = np.sqrt(mp._profile_powers()[0])
        np.testing.assert_allclose(taps[0], los, atol=1e-2)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            Multipath(profile="nakagami")
        with pytest.raises(ConfigurationError):
            Multipath(n_taps=0)
        with pytest.raises(ConfigurationError):
            Multipath(tap_spacing_samples=0)


class TestAdc:
    def test_zero_stays_zero(self):
        y = Adc(n_bits=6).apply_one(np.zeros(8, dtype=complex))
        assert np.all(y == 0.0)

    def test_idempotent(self, rng):
        adc = Adc(n_bits=6, full_scale=1.0)
        x = 3.0 * _wave(rng)  # drives both rails into clipping
        once = adc.apply_one(x)
        twice = adc.apply_one(once)
        assert np.array_equal(once, twice)

    def test_clips_to_full_scale(self):
        adc = Adc(n_bits=8, full_scale=1.0)
        y = adc.apply_one(np.array([10.0 - 10.0j]))
        assert y[0].real == pytest.approx(1.0)
        assert y[0].imag == pytest.approx(-1.0)

    def test_quantization_error_bounded_by_half_step(self, rng):
        adc = Adc(n_bits=8, full_scale=4.0)
        x = _wave(rng)  # well inside full scale
        y = adc.apply_one(x)
        delta = 4.0 / (2 ** 7 - 1)
        assert np.max(np.abs(y.real - x.real)) <= delta / 2 + 1e-12
        assert np.max(np.abs(y.imag - x.imag)) <= delta / 2 + 1e-12

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            Adc(n_bits=1)
        with pytest.raises(ConfigurationError):
            Adc(full_scale=0.0)


class TestPipeline:
    def test_empty_pipeline_is_identity_copy(self, rng):
        x = _wave(rng)
        pipeline = ImpairmentPipeline()
        y = pipeline.apply_one(x)
        assert np.array_equal(y, x)
        assert not pipeline.uses_rng

    def test_kernels_run_in_order(self, rng):
        x = _wave(rng)
        cfo = CarrierFrequencyOffset(5e3, 20e6)
        adc = Adc(n_bits=6, full_scale=4.0)
        chained = ImpairmentPipeline((cfo, adc)).apply_one(x)
        manual = adc.apply_one(cfo.apply_one(x))
        assert np.array_equal(chained, manual)

    def test_rejects_non_kernels(self):
        with pytest.raises(ConfigurationError):
            ImpairmentPipeline((lambda w: w,))

    def test_uses_rng_reflects_stages(self):
        assert ImpairmentPipeline((PhaseNoise(1e-3),)).uses_rng
        assert not ImpairmentPipeline(
            (CarrierFrequencyOffset(1e3, 20e6), Multipath(taps=(1.0,)))
        ).uses_rng

    def test_batch_matches_scalar_with_trial_streams(self, rng):
        """Batch-of-N equals N batch-of-1 under the addressed streams."""
        pipeline = ImpairmentPipeline((
            CarrierFrequencyOffset(40e3, 20e6),
            Multipath(n_taps=3, tap_spacing_samples=2),
            PhaseNoise(1e-3),
        ))
        waves = [_wave(rng, 200 + 10 * k) for k in range(4)]
        batch = np.zeros((4, 230), dtype=complex)
        for k, w in enumerate(waves):
            batch[k, : w.size] = w
        lengths = [w.size for w in waves]
        rngs = [trial_rng(9, "impair-test", k) for k in range(4)]
        batched = pipeline.apply(batch, rngs, lengths=lengths)
        for k, w in enumerate(waves):
            alone = pipeline.apply_one(w, trial_rng(9, "impair-test", k))
            assert np.array_equal(batched[k, : w.size], alone)
            assert np.all(batched[k, w.size :] == 0.0)
