"""Two-node equivalence regression: the refactored engine vs golden pins.

``tests/mac/golden_two_node.json`` was generated from the pre-refactor
simulator (plain-heapq scheduler, monolithic medium).  These tests rerun
the same configurations on the current engine — the indexed calendar
queue, the ``at_position``-aware medium protocol, the traffic-capable
node machines — and assert **bit-identity** of every counter and float.
A single perturbed RNG draw or reordered event anywhere in the two-node
path fails here, with the differing field named.

Regenerate deliberately with ``python -m repro.tools.regen_mac_golden``;
the JSON diff is the review record of the behaviour change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tools.regen_mac_golden import CASES, generate

GOLDEN_PATH = Path(__file__).parent / "golden_two_node.json"


@pytest.fixture(scope="module")
def fresh():
    """One regeneration on the current code, shared across the module."""
    return generate()


@pytest.fixture(scope="module")
def pinned():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("case", sorted(CASES))
def test_single_runs_bit_identical(case, fresh, pinned):
    """Every counter of every pinned configuration matches exactly."""
    expected = pinned["runs"][case]
    actual = fresh["runs"][case]
    for side in ("zigbee", "wifi"):
        for field, value in expected[side].items():
            assert actual[side][field] == value, (
                f"{case}: {side}.{field} drifted "
                f"({actual[side][field]!r} != {value!r})"
            )
    assert actual["wifi_sinr_db"] == expected["wifi_sinr_db"], (
        f"{case}: wifi_sinr_db drifted"
    )


def test_sweep_bit_identical(fresh, pinned):
    """The pinned Monte-Carlo sweep reproduces exactly, seed by seed."""
    assert fresh["sweep"]["values"] == pinned["sweep"]["values"]
    assert fresh["sweep"]["n_seeds"] == pinned["sweep"]["n_seeds"]
    for i, (got, want) in enumerate(
        zip(
            fresh["sweep"]["throughputs_kbps"],
            pinned["sweep"]["throughputs_kbps"],
        )
    ):
        assert got == want, (
            f"sweep point {pinned['sweep']['values'][i]}: throughput list "
            f"drifted ({got} != {want})"
        )


def test_golden_file_covers_every_case(pinned):
    """The pin file and the regeneration tool agree on the case set."""
    assert sorted(pinned["runs"]) == sorted(CASES)
