"""Integration tests for the coexistence simulator against paper behaviour."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.mac.config import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig
from repro.mac.simulator import run_coexistence, sweep

QUICK = 300_000.0  # 0.3 simulated seconds


def _config(**kwargs) -> CoexistenceConfig:
    defaults = dict(
        wifi=WifiConfig(),
        zigbee=ZigbeeConfig(channel_index=4),
        topology=Topology(d_wz=4.0, d_z=1.0),
        duration_us=QUICK,
        seed=3,
    )
    defaults.update(kwargs)
    return CoexistenceConfig(**defaults)


class TestBaselines:
    def test_clean_channel_throughput_near_63kbps(self):
        """Paper Section V-C1: ~63 kbps without interference."""
        result = run_coexistence(
            _config(wifi=WifiConfig(saturated=False), duration_us=1_000_000.0)
        )
        assert result.zigbee_throughput_kbps == pytest.approx(63.0, abs=3.0)

    def test_continuous_wifi_close_kills_zigbee(self):
        """Normal WiFi at 1 m blocks ZigBee completely."""
        result = run_coexistence(_config(topology=Topology(d_wz=1.0, d_z=1.0)))
        assert result.zigbee_throughput_kbps == pytest.approx(0.0, abs=1.0)

    def test_far_wifi_harmless(self):
        result = run_coexistence(_config(topology=Topology(d_wz=12.0, d_z=1.0)))
        assert result.zigbee_throughput_kbps > 55.0

    def test_wifi_throughput_positive(self):
        result = run_coexistence(_config())
        assert result.wifi_throughput_mbps > 10.0

    def test_zigbee_never_hurts_wifi(self):
        """Paper Section V-D2: WiFi SINR over ZigBee is enormous."""
        result = run_coexistence(_config())
        assert result.wifi_sinr_db > 25.0


class TestSledZigEffect:
    def test_sledzig_enables_close_transmission(self):
        """At d_WZ = 2 m (CH4): normal blocks ZigBee, QAM-256 SledZig does not."""
        topo = Topology(d_wz=2.0, d_z=1.0)
        normal = run_coexistence(_config(topology=topo))
        sled = run_coexistence(
            _config(
                topology=topo,
                wifi=WifiConfig(mcs_name="qam256-3/4", sledzig_channel=4),
            )
        )
        assert normal.zigbee_throughput_kbps < 5.0
        assert sled.zigbee_throughput_kbps > 50.0

    def test_modulation_ordering_at_fixed_distance(self):
        """QAM-256 >= QAM-64 >= QAM-16 at the crossover distances."""
        topo = Topology(d_wz=1.5, d_z=1.0)
        values = {}
        for name in ("qam16-1/2", "qam64-2/3", "qam256-3/4"):
            result = run_coexistence(
                _config(topology=topo, wifi=WifiConfig(mcs_name=name, sledzig_channel=4))
            )
            values[name] = result.zigbee_throughput_kbps
        assert values["qam256-3/4"] >= values["qam64-2/3"] >= values["qam16-1/2"]

    def test_sledzig_costs_wifi_throughput(self):
        """SledZig reduces WiFi application throughput by the Table IV loss."""
        normal = run_coexistence(_config())
        sled = run_coexistence(
            _config(wifi=WifiConfig(mcs_name="qam64-2/3", sledzig_channel=4))
        )
        loss = 1 - sled.wifi_throughput_mbps / normal.wifi_throughput_mbps
        assert loss == pytest.approx(20 / 192, abs=0.01)

    def test_wifi_link_ok_property(self):
        result = run_coexistence(_config())
        assert result.wifi_link_ok


class TestDutyRatio:
    def test_lower_ratio_more_zigbee(self):
        topo = Topology(d_wz=1.0, d_z=0.5)
        low = run_coexistence(
            _config(topology=topo, wifi=WifiConfig(duty_ratio=0.2, burst_duration_us=4000))
        )
        high = run_coexistence(
            _config(topology=topo, wifi=WifiConfig(duty_ratio=0.9, burst_duration_us=4000))
        )
        assert low.zigbee_throughput_kbps > high.zigbee_throughput_kbps

    def test_wifi_airtime_tracks_ratio(self):
        result = run_coexistence(
            _config(wifi=WifiConfig(duty_ratio=0.5, burst_duration_us=4000))
        )
        airtime_fraction = result.wifi.airtime_us / QUICK
        assert airtime_fraction == pytest.approx(0.5, abs=0.1)


class TestSweep:
    def test_sweep_shapes(self):
        base = _config()
        points = sweep(
            base,
            values=[2.0, 6.0],
            apply_value=lambda cfg, v: replace(cfg, topology=Topology(d_wz=v, d_z=1.0)),
            n_seeds=2,
        )
        assert len(points) == 2
        assert all(len(p.throughputs_kbps) == 2 for p in points)
        assert points[1].mean > points[0].mean
        q1, q3 = points[1].quartiles()
        assert q1 <= points[1].median <= q3


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_coexistence(_config())
        b = run_coexistence(_config())
        assert a.zigbee_throughput_kbps == b.zigbee_throughput_kbps
        assert a.zigbee.packets_sent == b.zigbee.packets_sent

    def test_different_seed_differs_somewhere(self):
        a = run_coexistence(_config(seed=1, fading_sigma_db=2.0))
        b = run_coexistence(_config(seed=2, fading_sigma_db=2.0))
        assert (
            a.zigbee.packets_delivered != b.zigbee.packets_delivered
            or a.zigbee.cca_busy != b.zigbee.cca_busy
        )
