"""Tests for the shared-medium power queries."""

from __future__ import annotations

import pytest

from repro.channel.calibration import DEFAULT_CALIBRATION
from repro.errors import SimulationError
from repro.mac.medium import Medium, WifiBurst


def _burst(start, end, preamble_us=20.0, pre_db=-60.0, pay_db=-67.0):
    return WifiBurst(
        start_us=start,
        end_us=end,
        preamble_until_us=start + preamble_us,
        preamble_db_at_1m=pre_db,
        payload_db_at_1m=pay_db,
    )


class TestBursts:
    def test_order_enforced(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_burst(_burst(100, 200))
        with pytest.raises(SimulationError):
            medium.add_burst(_burst(50, 80))

    def test_zero_duration_rejected(self):
        with pytest.raises(SimulationError):
            Medium(DEFAULT_CALIBRATION).add_burst(_burst(10, 10))

    def test_overlap_query(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_burst(_burst(0, 100))
        medium.add_burst(_burst(200, 300))
        medium.add_burst(_burst(400, 500))
        hits = medium.bursts_overlapping(250, 450)
        assert [b.start_us for b in hits] == [200, 400]

    def test_long_span_catches_all(self):
        medium = Medium(DEFAULT_CALIBRATION)
        for k in range(20):
            medium.add_burst(_burst(100 * k, 100 * k + 50))
        assert len(medium.bursts_overlapping(0, 2000)) == 20

    def test_prune(self):
        medium = Medium(DEFAULT_CALIBRATION)
        for k in range(5):
            medium.add_burst(_burst(100 * k, 100 * k + 50))
        medium.prune_before(250)
        assert len(medium.bursts_overlapping(0, 10_000)) == 3


class TestTrace:
    def test_segments_cover_interval(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_burst(_burst(100, 300))
        trace = medium.interference_trace(50, 400, distance_m=1.0)
        assert trace[0][0] == 50 and trace[-1][1] == 400
        for (a, b, _), (c, d, _) in zip(trace, trace[1:]):
            assert b == c

    def test_preamble_level_distinct(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_burst(_burst(100, 300))
        trace = {(a, b): level for a, b, level in medium.interference_trace(100, 300, 1.0)}
        assert trace[(100.0, 120.0)] == pytest.approx(-60.0)
        assert trace[(120.0, 300.0)] == pytest.approx(-67.0)

    def test_idle_is_minus_inf(self):
        medium = Medium(DEFAULT_CALIBRATION)
        trace = medium.interference_trace(0, 100, 1.0)
        assert trace == [(0, 100, float("-inf"))]

    def test_distance_scaling(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_burst(_burst(0, 100, preamble_us=0.0))
        level_1m = medium.interference_trace(10, 20, 1.0)[0][2]
        level_2m = medium.interference_trace(10, 20, 2.0)[0][2]
        assert level_1m - level_2m == pytest.approx(9.03, abs=0.01)


class TestAveragePower:
    def test_idle_equals_noise(self):
        medium = Medium(DEFAULT_CALIBRATION)
        level = medium.average_power_db(0, 128, 1.0)
        assert level == pytest.approx(-91.0, abs=0.01)

    def test_full_overlap(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_burst(_burst(0, 1000, preamble_us=0.0))
        level = medium.average_power_db(100, 228, 1.0)
        assert level == pytest.approx(-67.0, abs=0.05)

    def test_paper_cca_preamble_argument(self):
        """A 20 us full-power preamble inside a 128 us CCA window keeps the
        window average well below the preamble's own level (Section IV-F's
        'very limited impact on the CCA result')."""
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_burst(_burst(0, 1000, preamble_us=20.0, pre_db=-60.0, pay_db=-75.0))
        with_preamble = medium.average_power_db(0, 128, 1.0)
        payload_only = medium.average_power_db(200, 328, 1.0)
        # The average sits much closer to the payload level than to the
        # 15 dB hotter preamble level.
        assert with_preamble < -65.0
        assert with_preamble - payload_only > 0.5

    def test_empty_interval_rejected(self):
        with pytest.raises(SimulationError):
            Medium(DEFAULT_CALIBRATION).average_power_db(5, 5, 1.0)
