"""Property tests for the indexed calendar/heap event queue.

The scenario engine's determinism rests on three invariants of
:class:`repro.mac.events.CalendarQueue`:

* dequeue times are monotone non-decreasing;
* equal timestamps dequeue in schedule order (stable FIFO);
* cancelling or rescheduling one event never perturbs the relative order
  of the untouched events — the dequeue sequence is a pure function of the
  surviving ``(time, tie-break)`` keys, however the schedule/cancel/
  reschedule calls were interleaved.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.mac.events import CalendarQueue, EventScheduler

# Coarse-grained times force plenty of exact ties.
times = st.integers(min_value=0, max_value=12).map(float)


def drain(queue: CalendarQueue):
    out = []
    while len(queue):
        out.append(queue.pop())
    return out


class TestDequeueOrder:
    @given(st.lists(times, max_size=60))
    def test_monotone_dequeue(self, schedule_times):
        queue = CalendarQueue()
        for t in schedule_times:
            queue.push(t, None)
        popped = [t for t, _id, _p in drain(queue)]
        assert popped == sorted(popped)
        assert len(popped) == len(schedule_times)

    @given(st.lists(times, max_size=60))
    def test_fifo_at_equal_timestamps(self, schedule_times):
        queue = CalendarQueue()
        for i, t in enumerate(schedule_times):
            queue.push(t, i)
        popped = drain(queue)
        # Stable sort of (time, insertion index) is the specified order.
        expected = sorted(range(len(schedule_times)),
                          key=lambda i: (schedule_times[i], i))
        assert [p for _t, _id, p in popped] == expected


class TestCancelRescheduleInvariance:
    @given(
        st.lists(times, min_size=1, max_size=40),
        st.data(),
    )
    def test_cancel_does_not_perturb_survivors(self, schedule_times, data):
        """Any cancellation subset leaves survivors in their pairwise order."""
        reference = CalendarQueue()
        ids_ref = [reference.push(t, i) for i, t in enumerate(schedule_times)]
        subject = CalendarQueue()
        ids_sub = [subject.push(t, i) for i, t in enumerate(schedule_times)]
        to_cancel = data.draw(
            st.sets(st.integers(0, len(schedule_times) - 1),
                    max_size=len(schedule_times))
        )
        for k in sorted(to_cancel):
            assert subject.remove(ids_sub[k])
            assert reference.remove(ids_ref[k])
        survivors_subject = [p for _t, _id, p in drain(subject)]
        survivors_reference = [p for _t, _id, p in drain(reference)]
        assert survivors_subject == survivors_reference
        expected = [i for i in sorted(range(len(schedule_times)),
                                      key=lambda i: (schedule_times[i], i))
                    if i not in to_cancel]
        assert survivors_subject == expected

    @given(
        st.lists(times, min_size=2, max_size=40),
        st.data(),
    )
    def test_reschedule_equals_cancel_plus_push(self, schedule_times, data):
        """reschedule(id, t) dequeues exactly like remove(id) + push(t)."""
        moved = data.draw(st.integers(0, len(schedule_times) - 1))
        new_time = data.draw(times)

        rescheduled = CalendarQueue()
        ids = [rescheduled.push(t, i) for i, t in enumerate(schedule_times)]
        assert rescheduled.reschedule(ids[moved], new_time)

        replaced = CalendarQueue()
        ids2 = [replaced.push(t, i) for i, t in enumerate(schedule_times)]
        assert replaced.remove(ids2[moved])
        replaced.push(new_time, moved)

        assert ([(t, p) for t, _id, p in drain(rescheduled)]
                == [(t, p) for t, _id, p in drain(replaced)])

    @given(st.lists(st.tuples(times, times), min_size=1, max_size=30))
    def test_insertion_order_invariance_of_final_keys(self, moves):
        """Events that end at the same final times dequeue identically
        whether they got there directly or via a reschedule each."""
        direct = CalendarQueue()
        via_reschedule = CalendarQueue()
        ids = []
        for i, (first, final) in enumerate(moves):
            direct.push(final, i)
            ids.append(via_reschedule.push(first, i))
        for (first, final), event_id in zip(moves, ids):
            via_reschedule.reschedule(event_id, final)
        # Both queues hold the same (final time, payload) multiset and the
        # same relative tie-break order (reschedules happened in push order).
        assert ([(t, p) for t, _id, p in drain(direct)]
                == [(t, p) for t, _id, p in drain(via_reschedule)])


class TestQueueBookkeeping:
    @given(st.lists(times, max_size=200))
    @settings(max_examples=25)
    def test_compaction_preserves_contents(self, schedule_times):
        """Heavy cancel traffic (triggering compaction) loses no events."""
        queue = CalendarQueue()
        keep = []
        for i, t in enumerate(schedule_times):
            event_id = queue.push(t, i)
            if i % 3 == 0:
                keep.append((t, i))
            else:
                queue.remove(event_id)
        # Extra churn to push past the compaction floor.
        for _ in range(3):
            doomed = [queue.push(99.0, "x") for _ in range(80)]
            for event_id in doomed:
                queue.remove(event_id)
        assert len(queue) == len(keep)
        drained = [(t, p) for t, _id, p in drain(queue)]
        assert drained == sorted(keep, key=lambda pair: (pair[0], pair[1]))

    def test_remove_unknown_or_fired_is_false(self):
        queue = CalendarQueue()
        event_id = queue.push(1.0, "a")
        assert queue.remove(event_id)
        assert not queue.remove(event_id)
        assert not queue.remove(12345)
        assert not queue.reschedule(event_id, 5.0)


class TestSchedulerFacade:
    def test_reschedule_moves_callback(self):
        sched = EventScheduler()
        log = []
        event = sched.schedule(5.0, lambda: log.append(sched.now))
        assert sched.reschedule(event, 2.0)
        sched.run_until(10.0)
        assert log == [2.0]

    def test_reschedule_fired_event_returns_false(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        sched.run_until(2.0)
        assert not sched.reschedule(event, 1.0)

    def test_negative_reschedule_rejected(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        try:
            sched.reschedule(event, -1.0)
        except SimulationError:
            return
        raise AssertionError("negative reschedule must raise")

    def test_event_budget_guard(self):
        sched = EventScheduler()

        def spin():
            sched.schedule(0.0, spin)

        sched.schedule(0.0, spin)
        try:
            sched.run_until(1.0, max_events=500)
        except SimulationError as exc:
            assert "budget" in str(exc)
            return
        raise AssertionError("livelock must exhaust the event budget")

    def test_run_until_reports_dispatch_count(self):
        sched = EventScheduler()
        for i in range(5):
            sched.schedule(float(i), lambda: None)
        assert sched.run_until(10.0) == 5
