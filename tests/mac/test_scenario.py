"""Scenario-engine behaviour: determinism, geometry physics, telemetry.

Hidden terminals and capture asymmetries must *emerge* from positions —
carrier sense and reception both query power at (x, y) — rather than from
special-case switches; these tests pin the mechanics at both the medium
level (deterministic queries) and the full-run level.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.channel.calibration import DEFAULT_CALIBRATION
from repro.errors import ConfigurationError
from repro.mac.config import WifiConfig, ZigbeeConfig, zigbee_wifi_overlap
from repro.mac.medium import (
    MediumView,
    PartitionedMedium,
    SpatialIndex,
    WifiBurst,
)
from repro.mac.scenario import (
    CellSpec,
    ScenarioConfig,
    SensorSpec,
    grid_scenario,
    run_scenario,
)
from repro.mac.simulator import run_coexistence
from repro.mac.config import CoexistenceConfig, Topology
from repro.mac.traffic import PoissonTraffic


def _stats_tuple(result):
    """Every counter of a run, flattened for exact comparison."""
    out = []
    for key in sorted(result.sensors):
        s = result.sensors[key]
        out.append((key, s.packets_attempted, s.packets_sent, s.packets_delivered,
                    s.packets_dropped_cca, s.packets_failed,
                    s.payload_bits_delivered, s.cca_attempts, s.cca_busy,
                    s.arrivals, s.queue_dropped))
    for key in sorted(result.cells):
        c = result.cells[key]
        out.append((key, c.bursts_sent, c.airtime_us, c.payload_bits,
                    c.bursts_ok, c.bursts_degraded, c.deferrals))
    return out


class TestDeterminism:
    def test_rerun_is_bit_identical(self):
        config = grid_scenario(2, 14, duration_us=60_000.0, master_seed=9)
        first = run_scenario(config)
        second = run_scenario(config)
        assert _stats_tuple(first) == _stats_tuple(second)
        assert first.events_dispatched == second.events_dispatched

    def test_node_order_in_config_is_irrelevant(self):
        """Reversing the spec tuples changes nothing: streams are keyed."""
        config = grid_scenario(2, 10, duration_us=60_000.0, master_seed=4)
        shuffled = ScenarioConfig(
            name=config.name,
            cells=tuple(reversed(config.cells)),
            sensors=tuple(reversed(config.sensors)),
            duration_us=config.duration_us,
            master_seed=config.master_seed,
            trial_index=config.trial_index,
        )
        assert _stats_tuple(run_scenario(config)) == _stats_tuple(
            run_scenario(shuffled)
        )

    def test_trial_index_changes_outcomes(self):
        base = grid_scenario(1, 8, duration_us=60_000.0, master_seed=4,
                             trial_index=0)
        other = grid_scenario(1, 8, duration_us=60_000.0, master_seed=4,
                              trial_index=1)
        assert _stats_tuple(run_scenario(base)) != _stats_tuple(
            run_scenario(other)
        )


class TestHiddenTerminalGeometry:
    def _two_cell_config(self, separation_m: float) -> ScenarioConfig:
        wifi = WifiConfig(duty_ratio=0.5, burst_duration_us=2000.0)
        return ScenarioConfig(
            name=f"hidden/{separation_m}",
            cells=(
                CellSpec(key="a", wifi_channel=1, position=(0.0, 0.0),
                         rx_position=(separation_m / 2, 0.0), wifi=wifi),
                CellSpec(key="b", wifi_channel=1, position=(separation_m, 0.0),
                         rx_position=(separation_m / 2, 1.0), wifi=wifi),
            ),
            duration_us=60_000.0,
            master_seed=3,
        )

    def test_close_cells_defer_far_cells_do_not(self):
        """Same channel: 2.5 m apart they hear each other, 110 m apart never.

        (In this calibration's reported-dB domain the -75 dB carrier-sense
        threshold puts the WiFi sensing radius near 3 m.)  The far pair is
        the hidden-terminal geometry — both still reach the midpoint
        receivers (55 m < interference range) but cannot sense one
        another, so they never defer and collide freely.
        """
        close = run_scenario(self._two_cell_config(2.5))
        far = run_scenario(self._two_cell_config(110.0))
        close_deferrals = sum(c.deferrals for c in close.cells.values())
        far_deferrals = sum(c.deferrals for c in far.cells.values())
        assert close_deferrals > 0
        assert far_deferrals == 0
        # Both far cells kept transmitting (nothing suppressed them).
        assert all(c.bursts_sent > 0 for c in far.cells.values())


class TestSubChannelPhysics:
    def test_sledzig_only_quiets_the_protected_sub(self):
        """A SledZig burst reads low on its protected sub, normal elsewhere."""
        spatial = SpatialIndex()
        spatial.register(1, (0.0, 0.0))
        medium = PartitionedMedium(DEFAULT_CALIBRATION, spatial)
        band = medium.wifi_band(1)
        band.add_burst(WifiBurst(
            start_us=0.0, end_us=1000.0, preamble_until_us=20.0,
            preamble_db_at_1m=-10.0, payload_db_at_1m=-12.0,
            source=1, position=(0.0, 0.0),
            payload_db_by_sub=(-12.0, -30.0, -12.0, -12.0),
        ))
        at = (4.0, 0.0)
        protected = band.average_power_db(100.0, 900.0, at, sub_index=2)
        unprotected = band.average_power_db(100.0, 900.0, at, sub_index=3)
        assert protected < unprotected - 10.0
        # The preamble window reads full power on every sub.
        pre_protected = band.interference_trace(0.0, 20.0, at, sub_index=2)
        pre_unprotected = band.interference_trace(0.0, 20.0, at, sub_index=3)
        assert pre_protected == pre_unprotected

    def test_interference_decays_with_distance(self):
        """Capture-effect precondition: near receivers see more power."""
        spatial = SpatialIndex()
        spatial.register(1, (0.0, 0.0))
        medium = PartitionedMedium(DEFAULT_CALIBRATION, spatial)
        band = medium.wifi_band(6)
        band.add_burst(WifiBurst(
            start_us=0.0, end_us=1000.0, preamble_until_us=20.0,
            preamble_db_at_1m=-10.0, payload_db_at_1m=-12.0,
            source=1, position=(0.0, 0.0),
        ))
        near = band.average_power_db(0.0, 1000.0, (2.0, 0.0))
        far = band.average_power_db(0.0, 1000.0, (20.0, 0.0))
        assert near > far + 20.0

    def test_out_of_range_source_is_culled(self):
        spatial = SpatialIndex()
        spatial.register(1, (0.0, 0.0))
        medium = PartitionedMedium(DEFAULT_CALIBRATION, spatial, wifi_range_m=60.0)
        band = medium.wifi_band(11)
        band.add_burst(WifiBurst(
            start_us=0.0, end_us=1000.0, preamble_until_us=20.0,
            preamble_db_at_1m=-10.0, payload_db_at_1m=-12.0,
            source=1, position=(0.0, 0.0),
        ))
        trace = band.interference_trace(0.0, 1000.0, (100.0, 0.0))
        assert all(level == float("-inf") for _s, _e, level in trace)


class TestChannelOverlap:
    def test_overlap_mapping(self):
        assert zigbee_wifi_overlap(12) == (1, 2)
        assert zigbee_wifi_overlap(17) == (6, 2)
        assert zigbee_wifi_overlap(22) == (11, 2)
        assert zigbee_wifi_overlap(11) == (1, 1)
        assert zigbee_wifi_overlap(24) == (11, 4)
        for clear in (15, 20, 25, 26):
            assert zigbee_wifi_overlap(clear) is None
        with pytest.raises(ConfigurationError):
            zigbee_wifi_overlap(10)
        with pytest.raises(ConfigurationError):
            zigbee_wifi_overlap(27)

    def test_clear_channel_sensor_ignores_wifi(self):
        """A sensor on channel 25 never defers to WiFi, however loud."""
        config = ScenarioConfig(
            name="clear-channel",
            cells=(CellSpec(key="bss", wifi_channel=1, position=(0.0, 0.0),
                            rx_position=(0.0, 1.0),
                            wifi=WifiConfig(duty_ratio=1.0)),),
            sensors=(SensorSpec(key="s", zigbee_channel=25,
                                tx_position=(3.0, 0.0),
                                rx_position=(3.5, 0.0)),),
            duration_us=50_000.0,
            master_seed=2,
        )
        result = run_scenario(config)
        stats = result.sensors["s"]
        assert stats.packets_attempted > 0
        assert stats.cca_busy == 0
        assert stats.packets_failed == 0
        # The final packet may still be in flight when the clock stops.
        assert stats.packets_delivered >= stats.packets_attempted - 1


class TestLegacyAgreement:
    def test_quiet_channel_throughput_matches_two_node_simulator(self):
        """One saturated sensor, WiFi silent: both engines should land on
        the same clean-channel throughput (different RNG streams, so the
        comparison is physical, not bit-exact)."""
        duration = 400_000.0
        legacy = run_coexistence(CoexistenceConfig(
            wifi=WifiConfig(saturated=False),
            zigbee=ZigbeeConfig(channel_index=2),
            topology=Topology(d_wz=4.0, d_z=1.0),
            duration_us=duration,
            seed=3,
        ))
        scenario = run_scenario(ScenarioConfig(
            name="legacy-agreement",
            sensors=(SensorSpec(key="s", zigbee_channel=12,
                                tx_position=(4.0, 0.0),
                                rx_position=(5.0, 0.0)),),
            duration_us=duration,
            master_seed=3,
        ))
        legacy_kbps = legacy.zigbee.throughput_kbps(duration)
        scenario_kbps = scenario.zigbee_throughput_kbps
        assert scenario_kbps == pytest.approx(legacy_kbps, rel=0.15)


class TestTelemetryExport:
    def test_per_node_counters_are_exported(self):
        config = grid_scenario(1, 3, duration_us=40_000.0, master_seed=6,
                               name="telemetry-probe")
        with telemetry.collect() as tel:
            result = run_scenario(config)
            snapshot = tel.snapshot()
        counters = snapshot.counters
        assert counters["scenario.telemetry-probe.runs"] == 1
        for key in result.sensors:
            assert f"scenario.telemetry-probe.sensor.{key}.attempted" in counters
            assert f"scenario.telemetry-probe.sensor.{key}.delivered" in counters
        for key in result.cells:
            assert f"scenario.telemetry-probe.cell.{key}.bursts" in counters
        total = sum(s.packets_delivered for s in result.sensors.values())
        assert counters[
            "scenario.telemetry-probe.zigbee.packets_delivered"
        ] == total


class TestValidation:
    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ScenarioConfig(
                name="dup",
                sensors=(
                    SensorSpec(key="x", zigbee_channel=12,
                               tx_position=(0.0, 0.0), rx_position=(1.0, 0.0)),
                    SensorSpec(key="x", zigbee_channel=17,
                               tx_position=(2.0, 0.0), rx_position=(3.0, 0.0)),
                ),
            )

    def test_bad_wifi_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            CellSpec(key="c", wifi_channel=3, position=(0.0, 0.0),
                     rx_position=(1.0, 0.0))

    def test_coincident_sensor_endpoints_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorSpec(key="s", zigbee_channel=12,
                       tx_position=(1.0, 1.0), rx_position=(1.0, 1.0))

    def test_grid_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_scenario(-1, 5)
