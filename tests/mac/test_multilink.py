"""Tests for multi-link ZigBee scenarios (paper Fig. 4 motivation)."""

from __future__ import annotations

import pytest

from repro.channel.calibration import DEFAULT_CALIBRATION
from repro.errors import ConfigurationError
from repro.mac.config import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig
from repro.mac.medium import Medium, ZigbeeBurst
from repro.mac.multilink import LinkPlacement, run_multilink


def _config(wifi=None, duration_us=300_000.0, seed=3):
    return CoexistenceConfig(
        wifi=wifi or WifiConfig(),
        zigbee=ZigbeeConfig(channel_index=4),
        topology=Topology(d_wz=4.0, d_z=1.0),
        duration_us=duration_us,
        seed=seed,
    )


class TestMediumPeerQueries:
    def test_source_exclusion(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_zigbee_burst(ZigbeeBurst(0, 100, -84.0, source=1))
        own = medium.zigbee_average_power_db(0, 100, 1.0, exclude_source=1)
        other = medium.zigbee_average_power_db(0, 100, 1.0, exclude_source=2)
        assert own == float("-inf")
        assert other == pytest.approx(-84.0, abs=0.01)

    def test_positional_path_loss(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_zigbee_burst(
            ZigbeeBurst(0, 100, -84.0, source=1, position=(0.0, 0.0))
        )
        near = medium.zigbee_average_power_db(0, 100, 1.0, at_position=(0.5, 0.0))
        far = medium.zigbee_average_power_db(0, 100, 1.0, at_position=(2.0, 0.0))
        assert near > far
        assert near == pytest.approx(-84.0 + 9.03, abs=0.05)

    def test_peer_detectable_by_cca_level(self):
        """A peer transmitting 0.5 m away reads well above the -70 dB CCA
        threshold — the same-technology carrier sense input."""
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_zigbee_burst(
            ZigbeeBurst(0, 1000, -84.0, source=2, position=(0.0, 0.0))
        )
        level = medium.zigbee_average_power_db(
            0, 128, 1.0, exclude_source=1, at_position=(0.5, 0.0)
        )
        assert level > -75.0


class TestFig4Scenario:
    def test_sledzig_frees_both_failure_modes(self):
        """Fig. 4: one link silenced by carrier sense, one corrupted by
        interference; SledZig recovers both."""
        placements = [
            LinkPlacement(tx=(2.0, 0.0), rx=(3.0, 0.0)),
            LinkPlacement(tx=(5.0, 2.0), rx=(6.0, 2.0)),
        ]
        normal = run_multilink(_config(), placements)
        sled = run_multilink(
            _config(WifiConfig(mcs_name="qam256-3/4", sledzig_channel=4)),
            placements,
        )
        assert normal.throughput_kbps(0) < 5.0          # silenced near link
        assert sled.throughput_kbps(0) > 45.0           # freed
        assert sled.total_zigbee_kbps > normal.total_zigbee_kbps + 40.0

    def test_per_link_stats_exposed(self):
        placements = [LinkPlacement(tx=(8.0, 0.0), rx=(9.0, 0.0))]
        result = run_multilink(_config(), placements)
        assert len(result.per_link) == 1
        assert result.per_link[0].packets_attempted > 0
        assert result.wifi.bursts_sent >= 1

    def test_empty_placements_rejected(self):
        with pytest.raises(ConfigurationError):
            run_multilink(_config(), [])

    def test_close_links_share_capacity(self):
        """Two links nearly on top of each other cannot both get the full
        single-link rate — CSMA and mutual interference split it."""
        placements = [
            LinkPlacement(tx=(10.0, 0.0), rx=(10.5, 0.0)),
            LinkPlacement(tx=(10.2, 0.4), rx=(10.8, 0.6)),
        ]
        result = run_multilink(
            _config(WifiConfig(saturated=False), duration_us=800_000.0),
            placements,
        )
        single = 63.0
        assert result.throughput_kbps(0) < single - 5.0 or (
            result.throughput_kbps(1) < single - 5.0
        )

    def test_far_apart_links_both_full_rate(self):
        placements = [
            LinkPlacement(tx=(10.0, 0.0), rx=(11.0, 0.0)),
            LinkPlacement(tx=(10.0, 40.0), rx=(11.0, 40.0)),
        ]
        result = run_multilink(
            _config(WifiConfig(saturated=False), duration_us=600_000.0),
            placements,
        )
        assert result.throughput_kbps(0) > 55.0
        assert result.throughput_kbps(1) > 55.0
