"""Tests for the ZigBee-to-WiFi interference accounting (Section V-D2)."""

from __future__ import annotations

import pytest

from repro.channel.calibration import DEFAULT_CALIBRATION
from repro.errors import SimulationError
from repro.mac.config import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig
from repro.mac.medium import Medium, ZigbeeBurst
from repro.mac.simulator import run_coexistence


class TestZigbeeBursts:
    def test_order_enforced(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_zigbee_burst(ZigbeeBurst(100, 200, -84.0))
        with pytest.raises(SimulationError):
            medium.add_zigbee_burst(ZigbeeBurst(50, 80, -84.0))

    def test_zero_duration_rejected(self):
        with pytest.raises(SimulationError):
            Medium(DEFAULT_CALIBRATION).add_zigbee_burst(ZigbeeBurst(10, 10, -84.0))

    def test_average_power_full_overlap(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_zigbee_burst(ZigbeeBurst(0, 1000, -84.0))
        level = medium.zigbee_average_power_db(100, 200, 1.0)
        assert level == pytest.approx(-84.0, abs=0.01)

    def test_band_penalty_applied(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_zigbee_burst(ZigbeeBurst(0, 1000, -84.0))
        wide = medium.zigbee_average_power_db(0, 100, 1.0, band_penalty_db=10.0)
        assert wide == pytest.approx(-94.0, abs=0.01)

    def test_idle_is_minus_inf(self):
        medium = Medium(DEFAULT_CALIBRATION)
        assert medium.zigbee_average_power_db(0, 100, 1.0) == float("-inf")

    def test_partial_overlap_dilutes(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_zigbee_burst(ZigbeeBurst(0, 50, -84.0))
        level = medium.zigbee_average_power_db(0, 100, 1.0)
        assert level == pytest.approx(-87.0, abs=0.05)  # half the time on air

    def test_prune_covers_zigbee(self):
        medium = Medium(DEFAULT_CALIBRATION)
        medium.add_zigbee_burst(ZigbeeBurst(0, 50, -84.0))
        medium.add_zigbee_burst(ZigbeeBurst(100, 150, -84.0))
        medium.prune_before(80)
        assert medium.zigbee_average_power_db(0, 60, 1.0) == float("-inf")


class TestWifiSideOutcome:
    def test_wifi_bursts_never_degraded_in_paper_geometry(self):
        """The paper's finding: no WiFi BER increase from ZigBee."""
        config = CoexistenceConfig(
            wifi=WifiConfig(duty_ratio=0.5, burst_duration_us=4000.0),
            zigbee=ZigbeeConfig(channel_index=4),
            topology=Topology(d_wz=6.0, d_z=1.0, d_w=1.0),
            duration_us=400_000.0,
            seed=4,
        )
        result = run_coexistence(config)
        assert result.zigbee.packets_sent > 5  # ZigBee really transmitted
        assert result.wifi.bursts_degraded == 0
        # The final burst's evaluation may land past the horizon.
        assert result.wifi.bursts_ok >= result.wifi.bursts_sent - 1

    def test_worst_sinr_tracked(self):
        config = CoexistenceConfig(
            topology=Topology(d_wz=8.0, d_z=1.0, d_w=1.0),
            duration_us=300_000.0,
            seed=4,
        )
        result = run_coexistence(config)
        assert result.wifi.worst_sinr_db < float("inf")
        assert result.wifi.worst_sinr_db > 20.0
