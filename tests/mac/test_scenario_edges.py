"""Degenerate scenarios: the engine must finish or fail typed, never hang.

Every run is bounded by the event budget in
:meth:`repro.mac.scenario.ScenarioConfig.event_budget`; anything that
cannot finish raises :class:`~repro.errors.SimulationError` (and invalid
configs raise :class:`~repro.errors.ConfigurationError` at construction)
— nothing outside the typed hierarchy, no spinning forever.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError, SimulationError
from repro.mac.config import WifiConfig
from repro.mac.scenario import (
    CellSpec,
    ScenarioConfig,
    SensorSpec,
    grid_scenario,
    run_scenario,
)
from repro.mac.traffic import CBRTraffic, OnOffTraffic


class TestEmptyAndTiny:
    def test_zero_nodes(self):
        """A completely empty scenario completes immediately."""
        result = run_scenario(ScenarioConfig(name="empty", duration_us=10_000.0))
        assert result.events_dispatched == 0
        assert result.delivery_ratio == 1.0
        assert result.zigbee_throughput_kbps == 0.0

    def test_zero_zigbee_nodes(self):
        """WiFi-only grid: no sensors, delivery vacuously perfect."""
        result = run_scenario(
            grid_scenario(2, 0, duration_us=30_000.0, master_seed=1)
        )
        assert result.packets_attempted == 0
        assert result.delivery_ratio == 1.0
        assert all(c.bursts_sent > 0 for c in result.cells.values())

    def test_single_node(self):
        """One lone saturated sensor, nothing else in the world."""
        result = run_scenario(ScenarioConfig(
            name="lone",
            sensors=(SensorSpec(key="s", zigbee_channel=15,
                                tx_position=(0.0, 0.0),
                                rx_position=(1.0, 0.0)),),
            duration_us=60_000.0,
        ))
        stats = result.sensors["s"]
        assert stats.packets_attempted > 0
        assert stats.packets_failed == 0


class TestSimultaneousEvents:
    def test_simultaneous_start_events(self):
        """Many nodes all starting (and arriving) at identical times.

        CBR sensors with the same period generate exactly coincident
        arrival timestamps; the queue's FIFO tie-break keeps the run
        deterministic and the run must complete.
        """
        sensors = tuple(
            SensorSpec(key=f"s{i}", zigbee_channel=15,
                       tx_position=(float(i), 0.0),
                       rx_position=(float(i), 0.5),
                       traffic=CBRTraffic(period_us=5_000.0))
            for i in range(12)
        )
        config = ScenarioConfig(name="simultaneous", sensors=sensors,
                                duration_us=40_000.0, master_seed=1)
        first = run_scenario(config)
        second = run_scenario(config)
        assert first.packets_attempted == second.packets_attempted > 0
        assert first.packets_delivered == second.packets_delivered


class TestDegenerateTraffic:
    def test_zero_duration_on_bursts_mean_silence(self):
        """OnOff with a zero-length ON phase: no arrivals, clean finish."""
        result = run_scenario(ScenarioConfig(
            name="silent-onoff",
            sensors=(SensorSpec(
                key="s", zigbee_channel=15,
                tx_position=(0.0, 0.0), rx_position=(1.0, 0.0),
                traffic=OnOffTraffic(rate_per_s=100.0, mean_on_us=0.0,
                                     mean_off_us=1_000.0)),),
            duration_us=30_000.0,
        ))
        stats = result.sensors["s"]
        assert stats.arrivals == 0
        assert stats.packets_attempted == 0
        assert result.delivery_ratio == 1.0

    def test_queue_tail_drop_is_counted(self):
        """Arrivals far beyond channel capacity: drops, not unbounded queues."""
        result = run_scenario(ScenarioConfig(
            name="overrun",
            sensors=(SensorSpec(
                key="s", zigbee_channel=15,
                tx_position=(0.0, 0.0), rx_position=(1.0, 0.0),
                traffic=CBRTraffic(period_us=100.0),  # 10k pkt/s
                queue_limit=2),),
            duration_us=60_000.0,
        ))
        stats = result.sensors["s"]
        assert stats.queue_dropped > 0
        assert stats.arrivals > stats.packets_attempted


class TestSaturatedMedium:
    def test_fully_saturated_medium_terminates(self):
        """A dense co-channel cluster of saturated sensors under a
        continuous-stream WiFi cell: wall-to-wall energy, CCA busy
        everywhere — must still run to completion inside the budget."""
        sensors = tuple(
            SensorSpec(key=f"s{i}", zigbee_channel=12,
                       tx_position=(2.0 + 0.3 * i, 0.0),
                       rx_position=(2.0 + 0.3 * i, 0.5))
            for i in range(10)
        )
        config = ScenarioConfig(
            name="saturated",
            cells=(CellSpec(key="bss", wifi_channel=1,
                            position=(0.0, 0.0), rx_position=(0.0, 1.0),
                            wifi=WifiConfig(duty_ratio=1.0)),),
            sensors=sensors,
            duration_us=60_000.0,
            master_seed=2,
        )
        result = run_scenario(config)
        total_busy = sum(s.cca_busy for s in result.sensors.values())
        assert total_busy > 0  # the medium really was saturated
        assert result.events_dispatched <= config.event_budget()

    def test_exhausted_event_budget_raises_typed(self):
        """An impossible budget fails loudly inside the typed hierarchy."""
        config = grid_scenario(1, 6, duration_us=60_000.0, master_seed=1,
                               max_events=10)
        with pytest.raises(SimulationError, match="budget"):
            run_scenario(config)

    def test_all_failures_are_repro_errors(self):
        """Whatever goes wrong, the exception derives from ReproError."""
        config = grid_scenario(1, 4, duration_us=30_000.0, max_events=5)
        try:
            run_scenario(config)
        except ReproError:
            pass  # typed: acceptable
        else:
            pytest.fail("a 5-event budget cannot complete this scenario")
