"""Unit tests for the WiFi transmitter device."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mac.config import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig
from repro.mac.events import EventScheduler
from repro.mac.medium import Medium
from repro.mac.wifi_node import WifiNode


def _node(wifi=None, duration_us=100_000.0, seed=1):
    config = CoexistenceConfig(
        wifi=wifi or WifiConfig(),
        zigbee=ZigbeeConfig(channel_index=4),
        topology=Topology(d_wz=4.0, d_z=1.0),
        duration_us=duration_us,
        seed=seed,
    )
    scheduler = EventScheduler()
    medium = Medium(config.calibration)
    node = WifiNode(config, scheduler, medium, np.random.default_rng(seed))
    return node, scheduler, medium


class TestStreamMode:
    def test_single_burst_to_horizon(self):
        node, scheduler, medium = _node()
        node.start()
        scheduler.run_until(100_000.0)
        assert node.stats.bursts_sent == 1
        bursts = medium.bursts_overlapping(0, 100_000.0)
        assert len(bursts) == 1
        assert bursts[0].end_us == 100_000.0

    def test_stream_preamble_only_at_start(self):
        node, scheduler, medium = _node()
        node.start()
        scheduler.run_until(100_000.0)
        burst = medium.bursts_overlapping(0, 100_000.0)[0]
        assert burst.preamble_until_us - burst.start_us == pytest.approx(20.0)

    def test_silent_when_unsaturated(self):
        node, scheduler, medium = _node(WifiConfig(saturated=False))
        node.start()
        scheduler.run_until(100_000.0)
        assert node.stats.bursts_sent == 0


class TestBurstMode:
    def test_airtime_tracks_duty(self):
        node, scheduler, _ = _node(
            WifiConfig(duty_ratio=0.3, burst_duration_us=2000.0),
            duration_us=300_000.0,
        )
        node.start()
        scheduler.run_until(300_000.0)
        assert node.stats.airtime_us / 300_000.0 == pytest.approx(0.3, abs=0.08)

    def test_every_burst_has_preamble(self):
        node, scheduler, medium = _node(
            WifiConfig(duty_ratio=0.5, burst_duration_us=3000.0),
            duration_us=50_000.0,
        )
        node.start()
        scheduler.run_until(50_000.0)
        for burst in medium.bursts_overlapping(0, 50_000.0):
            assert burst.preamble_until_us - burst.start_us == pytest.approx(20.0)

    def test_preamble_ablation_switch(self):
        node, scheduler, medium = _node(
            WifiConfig(duty_ratio=0.5, burst_duration_us=3000.0, preamble_modelled=False),
            duration_us=30_000.0,
        )
        node.start()
        scheduler.run_until(30_000.0)
        for burst in medium.bursts_overlapping(0, 30_000.0):
            assert burst.preamble_until_us == burst.start_us


class TestAccounting:
    def test_sledzig_overhead_split(self):
        node, scheduler, _ = _node(
            WifiConfig(mcs_name="qam64-2/3", sledzig_channel=1), duration_us=80_000.0
        )
        node.start()
        scheduler.run_until(80_000.0)
        total = node.stats.payload_bits + node.stats.extra_bits
        assert node.stats.extra_bits / total == pytest.approx(28 / 192, abs=1e-6)

    def test_normal_has_no_extra_bits(self):
        node, scheduler, _ = _node(duration_us=80_000.0)
        node.start()
        scheduler.run_until(80_000.0)
        assert node.stats.extra_bits == 0.0

    def test_throughput_positive_duration_required(self):
        node, _, _ = _node()
        with pytest.raises(Exception):
            node.stats.throughput_mbps(0.0)
