"""Tests for simulation configuration validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mac.config import (
    WIFI_DIFS_US,
    WIFI_PREAMBLE_US,
    WIFI_SLOT_US,
    CoexistenceConfig,
    Topology,
    WifiConfig,
    ZigbeeConfig,
)
from repro.zigbee.params import BACKOFF_PERIOD_US, CCA_DURATION_US, DIFS_US


class TestPaperTimings:
    def test_wifi_vs_zigbee_asymmetry(self):
        """Section II-B: WiFi DIFS 28 us vs ZigBee 320 us; slots 9 vs 320."""
        assert WIFI_DIFS_US == 28.0
        assert WIFI_SLOT_US == 9.0
        assert DIFS_US == 320.0
        assert BACKOFF_PERIOD_US == 320.0
        assert CCA_DURATION_US == 128.0

    def test_preamble_duration(self):
        assert WIFI_PREAMBLE_US == 20.0  # 16 us preamble + 4 us SIGNAL


class TestTopology:
    def test_paper_geometry(self):
        topo = Topology(d_wz=4.0, d_z=1.0, d_w=2.0)
        assert topo.wifi_tx == (0.0, 0.0)
        assert topo.zigbee_tx == (4.0, 0.0)
        assert topo.zigbee_rx == (5.0, 0.0)
        assert topo.wifi_rx == (-2.0, 0.0)

    def test_positive_distances(self):
        with pytest.raises(ConfigurationError):
            Topology(d_wz=0.0)


class TestConfigs:
    def test_sledzig_flag(self):
        assert not WifiConfig().sledzig_enabled
        assert WifiConfig(sledzig_channel=4).sledzig_enabled

    def test_zigbee_validation(self):
        with pytest.raises(ConfigurationError):
            ZigbeeConfig(channel_index=5)
        with pytest.raises(ConfigurationError):
            ZigbeeConfig(payload_octets=0)
        with pytest.raises(ConfigurationError):
            ZigbeeConfig(tx_gain=40)

    def test_duty_ratio_validated(self):
        with pytest.raises(ConfigurationError):
            CoexistenceConfig(wifi=WifiConfig(duty_ratio=0.0))
        with pytest.raises(ConfigurationError):
            CoexistenceConfig(wifi=WifiConfig(duty_ratio=1.5))

    def test_duration_positive(self):
        with pytest.raises(ConfigurationError):
            CoexistenceConfig(duration_us=0.0)
