"""Traffic-model library: sampler semantics and degenerate specs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mac.traffic import (
    CBRTraffic,
    OnOffTraffic,
    PoissonTraffic,
    build_sampler,
)


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestPoisson:
    def test_mean_interval_matches_rate(self):
        sampler = PoissonTraffic(rate_per_s=100.0).build()
        r = rng(1)
        draws = [sampler.next_interval_us(r) for _ in range(4000)]
        assert all(d >= 0 for d in draws)
        # Mean inter-arrival at 100 pkt/s is 10 ms.
        assert np.mean(draws) == pytest.approx(10_000.0, rel=0.1)

    def test_zero_rate_never_fires(self):
        sampler = PoissonTraffic(rate_per_s=0.0).build()
        assert sampler.next_interval_us(rng()) is None

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonTraffic(rate_per_s=-1.0)

    def test_deterministic_per_stream(self):
        spec = PoissonTraffic(rate_per_s=50.0)
        a = [spec.build().next_interval_us(rng(7)) for _ in range(1)]
        b = [spec.build().next_interval_us(rng(7)) for _ in range(1)]
        assert a == b


class TestCBR:
    def test_constant_period(self):
        sampler = CBRTraffic(period_us=500.0).build()
        r = rng()
        assert [sampler.next_interval_us(r) for _ in range(5)] == [500.0] * 5

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ConfigurationError):
            CBRTraffic(period_us=0.0)
        with pytest.raises(ConfigurationError):
            CBRTraffic(period_us=-5.0)


class TestOnOff:
    def test_intervals_nonnegative_and_reproducible(self):
        spec = OnOffTraffic(rate_per_s=200.0, mean_on_us=5_000.0, mean_off_us=20_000.0)
        a_sampler, b_sampler = spec.build(), spec.build()
        a = [a_sampler.next_interval_us(rng(3)) for _ in range(1)]
        b = [b_sampler.next_interval_us(rng(3)) for _ in range(1)]
        assert a == b
        sampler = spec.build()
        r = rng(11)
        draws = [sampler.next_interval_us(r) for _ in range(500)]
        assert all(d is not None and d >= 0 for d in draws)

    def test_off_phases_stretch_the_mean(self):
        """Adding OFF time must increase the mean inter-arrival."""
        r1, r2 = rng(5), rng(5)
        dense = OnOffTraffic(200.0, mean_on_us=5_000.0, mean_off_us=0.0).build()
        bursty = OnOffTraffic(200.0, mean_on_us=5_000.0, mean_off_us=50_000.0).build()
        mean_dense = np.mean([dense.next_interval_us(r1) for _ in range(2000)])
        mean_bursty = np.mean([bursty.next_interval_us(r2) for _ in range(2000)])
        assert mean_bursty > mean_dense * 2

    def test_zero_duration_on_burst_never_fires(self):
        """mean_on_us == 0: the ON window never opens — no arrivals."""
        sampler = OnOffTraffic(200.0, mean_on_us=0.0, mean_off_us=1_000.0).build()
        assert sampler.next_interval_us(rng()) is None

    def test_zero_off_collapses_to_poisson(self):
        spec = OnOffTraffic(100.0, mean_on_us=2_000.0, mean_off_us=0.0)
        sampler = spec.build()
        r = rng(9)
        draws = [sampler.next_interval_us(r) for _ in range(3000)]
        assert np.mean(draws) == pytest.approx(10_000.0, rel=0.1)

    def test_zero_rate_never_fires(self):
        sampler = OnOffTraffic(0.0, mean_on_us=2_000.0, mean_off_us=500.0).build()
        assert sampler.next_interval_us(rng()) is None

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            OnOffTraffic(-1.0, 100.0, 100.0)
        with pytest.raises(ConfigurationError):
            OnOffTraffic(10.0, -1.0, 100.0)
        with pytest.raises(ConfigurationError):
            OnOffTraffic(10.0, 100.0, -1.0)


def test_build_sampler_none_means_saturated():
    assert build_sampler(None) is None
