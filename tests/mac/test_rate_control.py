"""Tests for SledZig-aware WiFi rate selection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mac.rate_control import (
    RateChoice,
    effective_goodput_mbps,
    select_mcs,
    select_mcs_for_protection,
)


class TestGoodput:
    def test_plain_is_phy_rate(self):
        assert effective_goodput_mbps("qam64-2/3", None) == pytest.approx(48.0)

    def test_sledzig_subtracts_table4_loss(self):
        # 48 Mbps x (1 - 14.58%) on CH1-CH3.
        assert effective_goodput_mbps("qam64-2/3", 1) == pytest.approx(41.0, abs=0.1)
        # CH4 costs less.
        assert effective_goodput_mbps("qam64-2/3", 4) == pytest.approx(43.0, abs=0.1)


class TestSelect:
    def test_high_snr_picks_fastest(self):
        choice = select_mcs(35.0)
        assert choice.mcs.name == "qam256-5/6"
        assert choice.goodput_mbps == pytest.approx(80.0)

    def test_medium_snr_steps_down(self):
        choice = select_mcs(21.0)  # below qam64-5/6 (25) and qam256 (29/31)
        assert choice.mcs.name == "qam64-3/4"

    def test_too_low_snr_gives_none(self):
        choice = select_mcs(5.0)
        assert choice.mcs is None
        assert choice.goodput_mbps == 0.0

    def test_margin_is_enforced(self):
        # 21 dB fits qam64-3/4 (20 dB) only without margin.
        assert select_mcs(21.0).mcs.name == "qam64-3/4"
        assert select_mcs(21.0, margin_db=2.0).mcs.name == "qam64-2/3"

    def test_sledzig_orders_by_goodput_not_phy_rate(self):
        """With the overhead included the ordering can differ from the PHY
        ladder; the chosen mode must top effective goodput."""
        choice = select_mcs(35.0, sledzig_channel=1)
        candidates = [
            effective_goodput_mbps(name, 1)
            for name in ("qam16-1/2", "qam64-5/6", "qam256-5/6")
        ]
        assert choice.goodput_mbps == pytest.approx(max(candidates), abs=0.5)

    def test_protection_reported(self):
        choice = select_mcs(35.0, sledzig_channel=4)
        assert choice.protection_db > 10.0

    def test_bad_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            select_mcs(30.0, sledzig_channel=5)


class TestProtectionFirst:
    def test_requires_deep_notch(self):
        """Demanding 12 dB of relief forces QAM-64+ on CH4."""
        choice = select_mcs_for_protection(35.0, 4, min_protection_db=12.0)
        assert choice.mcs.modulation in ("qam256",)
        assert choice.protection_db >= 12.0

    def test_moderate_requirement_allows_faster_modes(self):
        choice = select_mcs_for_protection(35.0, 4, min_protection_db=5.0)
        assert choice.mcs is not None
        assert choice.protection_db >= 5.0

    def test_infeasible_requirement(self):
        # No modulation decreases CH1 by 20 dB (pilot-limited ~7 dB).
        choice = select_mcs_for_protection(35.0, 1, min_protection_db=20.0)
        assert choice.mcs is None

    def test_snr_still_binding(self):
        # Deep protection needs QAM-256 whose min SNR is 29 dB.
        choice = select_mcs_for_protection(20.0, 4, min_protection_db=12.0)
        assert choice.mcs is None

    def test_returns_ratechoice(self):
        assert isinstance(select_mcs_for_protection(35.0, 4, 5.0), RateChoice)
