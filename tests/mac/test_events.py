"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.mac.events import EventScheduler


class TestScheduler:
    def test_ordering(self):
        sched = EventScheduler()
        log = []
        sched.schedule(5.0, lambda: log.append("b"))
        sched.schedule(1.0, lambda: log.append("a"))
        sched.schedule(9.0, lambda: log.append("c"))
        sched.run_until(10.0)
        assert log == ["a", "b", "c"]
        assert sched.now == 10.0

    def test_tie_break_by_insertion(self):
        sched = EventScheduler()
        log = []
        sched.schedule(1.0, lambda: log.append(1))
        sched.schedule(1.0, lambda: log.append(2))
        sched.run_until(2.0)
        assert log == [1, 2]

    def test_events_can_schedule_events(self):
        sched = EventScheduler()
        log = []

        def chain():
            log.append(sched.now)
            if sched.now < 5.0:
                sched.schedule(1.0, chain)

        sched.schedule(1.0, chain)
        sched.run_until(10.0)
        assert log == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_cancel(self):
        sched = EventScheduler()
        log = []
        event = sched.schedule(1.0, lambda: log.append("x"))
        sched.cancel(event)
        sched.run_until(5.0)
        assert log == []

    def test_events_beyond_horizon_pending(self):
        sched = EventScheduler()
        sched.schedule(100.0, lambda: None)
        sched.run_until(10.0)
        assert sched.pending() == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_backwards_clock_rejected(self):
        sched = EventScheduler()
        sched.run_until(10.0)
        with pytest.raises(SimulationError):
            sched.run_until(5.0)
