"""Unit tests for parameter validation helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.utils import validation as V


class TestRequire:
    def test_pass(self):
        V.require(True, "never raised")

    def test_fail(self):
        with pytest.raises(ConfigurationError, match="broken"):
            V.require(False, "broken")


class TestRequireIn:
    def test_pass(self):
        V.require_in("a", ["a", "b"], "choice")

    def test_fail_lists_options(self):
        with pytest.raises(ConfigurationError, match="choice"):
            V.require_in("c", ["a", "b"], "choice")


class TestRequireRange:
    def test_within(self):
        V.require_range(5, "x", 0, 10)

    def test_below(self):
        with pytest.raises(ConfigurationError):
            V.require_range(-1, "x", minimum=0)

    def test_above(self):
        with pytest.raises(ConfigurationError):
            V.require_range(11, "x", maximum=10)

    def test_unbounded(self):
        V.require_range(1e9, "x")


class TestRequirePositiveLength:
    def test_positive(self):
        V.require_positive(0.1, "x")

    def test_zero_fails(self):
        with pytest.raises(ConfigurationError):
            V.require_positive(0, "x")

    def test_length(self):
        V.require_length([1, 2], 2, "pair")
        with pytest.raises(ConfigurationError):
            V.require_length([1], 2, "pair")
