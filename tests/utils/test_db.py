"""Unit and property tests for dB conversions and power sums."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import db as D

finite_db = st.floats(min_value=-120.0, max_value=60.0)


class TestConversions:
    @given(finite_db)
    def test_db_roundtrip(self, level):
        assert D.linear_to_db(D.db_to_linear(level)) == pytest.approx(level, abs=1e-9)

    def test_zero_linear_is_minus_inf(self):
        assert D.linear_to_db(0.0) == float("-inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            D.linear_to_db(-1.0)

    def test_dbm_watt(self):
        assert D.dbm_to_watt(30.0) == pytest.approx(1.0)
        assert D.watt_to_dbm(0.001) == pytest.approx(0.0)
        assert D.watt_to_dbm(0.0) == float("-inf")


class TestPowerSum:
    def test_equal_levels_add_3db(self):
        assert D.power_sum_db([-60.0, -60.0]) == pytest.approx(-56.99, abs=0.01)

    def test_dominant_level_wins(self):
        assert D.power_sum_db([-40.0, -90.0]) == pytest.approx(-40.0, abs=0.01)

    def test_empty_is_minus_inf(self):
        assert D.power_sum_db([]) == float("-inf")

    def test_minus_inf_ignored(self):
        assert D.power_sum_db([float("-inf"), -50.0]) == pytest.approx(-50.0)

    @given(st.lists(finite_db, min_size=1, max_size=8))
    def test_sum_at_least_max(self, levels):
        assert D.power_sum_db(levels) >= max(levels) - 1e-9


class TestSignalPower:
    def test_unit_tone(self):
        tone = np.exp(1j * np.linspace(0, 20, 1000))
        assert D.signal_power(tone) == pytest.approx(1.0, abs=1e-6)
        assert D.signal_power_db(tone) == pytest.approx(0.0, abs=1e-4)

    def test_empty_is_zero(self):
        assert D.signal_power(np.array([])) == 0.0

    def test_sinr(self):
        # Signal -60, interference -70, noise -90: denominator is
        # -70 dB + 10log10(1.01) ~ -69.96 dB, so SINR ~ 9.96 dB.
        out = D.sinr_db(-60.0, [-70.0], -90.0)
        assert out == pytest.approx(9.96, abs=0.05)
