"""Unit and property tests for repro.utils.bits."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.utils import bits as B

bit_lists = st.lists(st.integers(0, 1), max_size=200)


class TestAsBits:
    def test_from_list(self):
        out = B.as_bits([1, 0, 1])
        assert out.dtype == np.uint8
        assert out.tolist() == [1, 0, 1]

    def test_from_string_with_whitespace(self):
        assert B.as_bits("10 01\n1").tolist() == [1, 0, 0, 1, 1]

    def test_rejects_non_binary(self):
        with pytest.raises(EncodingError):
            B.as_bits([0, 2, 1])

    def test_empty(self):
        assert B.as_bits([]).size == 0

    @given(bit_lists)
    def test_idempotent(self, bits):
        once = B.as_bits(bits)
        assert np.array_equal(B.as_bits(once), once)


class TestBytesRoundtrip:
    @given(st.binary(max_size=64))
    def test_roundtrip_lsb(self, data):
        assert B.bits_to_bytes(B.bytes_to_bits(data)) == data

    @given(st.binary(min_size=1, max_size=64))
    def test_roundtrip_msb(self, data):
        bits = B.bytes_to_bits(data, lsb_first=False)
        assert B.bits_to_bytes(bits, lsb_first=False) == data

    def test_known_value(self):
        # 0x01 LSB-first is 1 followed by seven zeros.
        assert B.bytes_to_bits(b"\x01").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_partial_octet_rejected(self):
        with pytest.raises(EncodingError):
            B.bits_to_bytes([1, 0, 1])


class TestIntConversion:
    @given(st.integers(0, 2**16 - 1))
    def test_roundtrip(self, value):
        assert B.bits_to_int(B.int_to_bits(value, 16)) == value

    @given(st.integers(0, 2**12 - 1))
    def test_roundtrip_msb(self, value):
        bits = B.int_to_bits(value, 12, lsb_first=False)
        assert B.bits_to_int(bits, lsb_first=False) == value

    def test_overflow_rejected(self):
        with pytest.raises(EncodingError):
            B.int_to_bits(256, 8)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            B.int_to_bits(-1, 8)


class TestPadGroup:
    def test_pad(self):
        assert B.pad_bits([1, 1], 4).tolist() == [1, 1, 0, 0]

    def test_pad_noop_when_aligned(self):
        assert B.pad_bits([1, 0, 1, 1], 4).tolist() == [1, 0, 1, 1]

    def test_group(self):
        grouped = B.group_bits([1, 0, 1, 1], 2)
        assert grouped.shape == (2, 2)

    def test_group_misaligned_rejected(self):
        with pytest.raises(EncodingError):
            B.group_bits([1, 0, 1], 2)


class TestDistanceMetrics:
    def test_hamming(self):
        assert B.hamming_distance([1, 0, 1], [1, 1, 1]) == 1

    def test_hamming_length_mismatch(self):
        with pytest.raises(EncodingError):
            B.hamming_distance([1], [1, 0])

    def test_ber_empty_is_zero(self):
        assert B.bit_error_rate([], []) == 0.0

    @given(bit_lists)
    def test_ber_self_is_zero(self, bits):
        assert B.bit_error_rate(bits, bits) == 0.0


class TestInsertRemove:
    def test_insert_then_remove_roundtrip(self, rng):
        stream = B.random_bits(50, rng)
        positions = [0, 10, 25, 52]
        values = [1, 0, 1, 1]
        inserted = B.insert_bits(stream, positions, values)
        assert inserted.size == 54
        for pos, val in zip(positions, values):
            assert inserted[pos] == val
        assert np.array_equal(B.remove_positions(inserted, positions), stream)

    @given(st.data())
    def test_property_roundtrip(self, data):
        stream = data.draw(st.lists(st.integers(0, 1), min_size=1, max_size=80))
        n = len(stream)
        k = data.draw(st.integers(0, min(10, n)))
        positions = data.draw(
            st.lists(
                st.integers(0, n + k - 1), min_size=k, max_size=k, unique=True
            )
        )
        positions = sorted(positions)
        values = data.draw(st.lists(st.integers(0, 1), min_size=k, max_size=k))
        inserted = B.insert_bits(stream, positions, values)
        assert np.array_equal(
            B.remove_positions(inserted, positions), B.as_bits(stream)
        )

    def test_remove_out_of_range(self):
        with pytest.raises(EncodingError):
            B.remove_positions([1, 0], [5])
