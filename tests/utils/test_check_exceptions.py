"""The blanket-exception linter that gates CI."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.tools.check_exceptions import lint_file, lint_tree, main


def _write(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


class TestLintRules:
    def test_swallowing_except_exception_flagged(self, tmp_path):
        path = _write(tmp_path, """
            def decode():
                try:
                    pass
                except Exception:
                    return None
        """)
        violations = lint_file(path)
        assert len(violations) == 1
        assert "decode()" in violations[0]

    def test_bare_except_flagged(self, tmp_path):
        path = _write(tmp_path, """
            try:
                pass
            except:
                pass
        """)
        violations = lint_file(path)
        assert len(violations) == 1
        assert "<module>" in violations[0]

    def test_typed_handler_ok(self, tmp_path):
        path = _write(tmp_path, """
            def decode():
                try:
                    pass
                except (ValueError, KeyError):
                    return None
        """)
        assert lint_file(path) == []

    def test_count_then_reraise_ok(self, tmp_path):
        path = _write(tmp_path, """
            def decode(tel):
                try:
                    pass
                except Exception:
                    tel.count("unexpected")
                    raise
        """)
        assert lint_file(path) == []

    def test_tuple_including_exception_flagged(self, tmp_path):
        path = _write(tmp_path, """
            def decode():
                try:
                    pass
                except (ValueError, Exception):
                    return None
        """)
        assert len(lint_file(path)) == 1

    def test_allowlisted_runner_boundary_ok(self, tmp_path):
        nested = tmp_path / "repro" / "experiments"
        nested.mkdir(parents=True)
        path = _write(nested, """
            def run_experiments():
                try:
                    pass
                except Exception as exc:
                    return exc
        """, name="runner.py")
        assert lint_file(path) == []

    def test_same_code_outside_allowlist_flagged(self, tmp_path):
        path = _write(tmp_path, """
            def run_experiments():
                try:
                    pass
                except Exception as exc:
                    return exc
        """, name="other.py")
        assert len(lint_file(path)) == 1


class TestGatewayCoverage:
    """The serving layer is linted like everything else: only its two
    sanctioned boundaries (inline pool submit, batch dispatch) may catch
    Exception, and only because they re-route the error to the affected
    requests' futures."""

    def test_gateway_tree_is_clean(self):
        root = Path(__file__).resolve().parents[2] / "src" / "repro" / "gateway"
        assert root.is_dir()
        assert lint_tree([root]) == []

    def test_gateway_boundaries_are_allowlisted_not_invisible(self, tmp_path):
        # The same handler body outside the allowlisted functions is
        # flagged — the allowlist names exactly two (file, function) pairs.
        nested = tmp_path / "repro" / "gateway"
        nested.mkdir(parents=True)
        path = _write(nested, """
            def some_other_function(future):
                try:
                    pass
                except Exception as exc:
                    future.set_exception(exc)
        """, name="server.py")
        assert len(lint_file(path)) == 1

    def test_dispatch_boundary_in_gateway_server_ok(self, tmp_path):
        nested = tmp_path / "repro" / "gateway"
        nested.mkdir(parents=True)
        path = _write(nested, """
            async def _dispatch_batch(live):
                try:
                    pass
                except Exception as exc:
                    return exc
        """, name="server.py")
        assert lint_file(path) == []


class TestRepoIsClean:
    def test_src_repro_has_no_blanket_handlers(self):
        root = Path(__file__).resolve().parents[2] / "src" / "repro"
        assert root.is_dir()
        assert lint_tree([root]) == []

    def test_main_exit_status_counts_violations(self, tmp_path, capsys):
        path = _write(tmp_path, """
            try:
                pass
            except Exception:
                pass
        """)
        assert main([str(path)]) == 1
        assert "blanket exception handler" in capsys.readouterr().out
