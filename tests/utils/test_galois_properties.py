"""Brute-force property tests for the GF(2) elimination kernels.

For matrices small enough to enumerate all 2^cols candidate vectors, rank
and solvability have direct definitions that need no elimination at all:

* rank = log2 of the size of the column-space image {A x mod 2};
* ``A x = b`` is consistent iff some enumerated x satisfies it;
* the solution is unique iff exactly one x does.

Every property is checked on both registered numpy backends (the packed
uint64 path and the dense reference), so this file is also the
ground-truth anchor the differential conformance matrix leans on.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.utils.galois import gf2_matvec, gf2_rank, gf2_solve

BACKENDS = ("reference", "optimized")


def brute_force_rank(matrix: np.ndarray) -> int:
    """log2 |{A x : x in GF(2)^cols}| by exhaustive enumeration."""
    rows, cols = matrix.shape
    image = {
        tuple(gf2_matvec(matrix, _vector(x, cols)).tolist())
        for x in range(2**cols)
    }
    size = len(image)
    rank = size.bit_length() - 1
    assert 2**rank == size, "image of a linear map must be a subspace"
    return rank


def brute_force_solutions(
    matrix: np.ndarray, rhs: np.ndarray
) -> List[np.ndarray]:
    """All x with A x = b, by exhaustive enumeration."""
    rows, cols = matrix.shape
    return [
        _vector(x, cols)
        for x in range(2**cols)
        if np.array_equal(gf2_matvec(matrix, _vector(x, cols)), rhs)
    ]


def _vector(value: int, n_bits: int) -> np.ndarray:
    return np.array(
        [(value >> i) & 1 for i in range(n_bits)], dtype=np.uint8
    )


@st.composite
def small_matrices(draw) -> np.ndarray:
    rows = draw(st.integers(min_value=1, max_value=6))
    cols = draw(st.integers(min_value=1, max_value=6))
    bits = draw(
        st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    return np.array(bits, dtype=np.uint8).reshape(rows, cols)


@st.composite
def small_systems(draw) -> Tuple[np.ndarray, np.ndarray]:
    matrix = draw(small_matrices())
    rhs = draw(
        st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=matrix.shape[0],
            max_size=matrix.shape[0],
        )
    )
    return matrix, np.array(rhs, dtype=np.uint8)


@pytest.mark.parametrize("backend", BACKENDS)
class TestRankProperty:
    @settings(max_examples=80, deadline=None)
    @given(matrix=small_matrices())
    def test_rank_matches_brute_force(self, backend, matrix) -> None:
        assert gf2_rank(matrix, backend=backend) == brute_force_rank(matrix)

    def test_rank_deficient_examples(self, backend) -> None:
        duplicated = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]], np.uint8)
        assert gf2_rank(duplicated, backend=backend) == 2
        zero = np.zeros((4, 4), dtype=np.uint8)
        assert gf2_rank(zero, backend=backend) == 0
        identity = np.eye(5, dtype=np.uint8)
        assert gf2_rank(identity, backend=backend) == 5
        # XOR-dependent (not equal) rows: r2 = r0 ^ r1.
        xor_dep = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], np.uint8)
        assert gf2_rank(xor_dep, backend=backend) == 2

    def test_rank_wide_and_tall(self, backend) -> None:
        wide = np.array([[1, 0, 1, 1, 0]], np.uint8)
        assert gf2_rank(wide, backend=backend) == 1
        tall = np.array([[1], [1], [0], [1]], np.uint8)
        assert gf2_rank(tall, backend=backend) == 1


@pytest.mark.parametrize("backend", BACKENDS)
class TestSolveProperty:
    @settings(max_examples=80, deadline=None)
    @given(system=small_systems())
    def test_solve_matches_brute_force(self, backend, system) -> None:
        matrix, rhs = system
        solutions = brute_force_solutions(matrix, rhs)
        if not solutions:
            with pytest.raises(EncodingError):
                gf2_solve(matrix, rhs, backend=backend)
            return
        solution, unique = gf2_solve(matrix, rhs, backend=backend)
        # The returned vector must actually satisfy the system...
        assert np.array_equal(gf2_matvec(matrix, solution), rhs)
        # ...and be one of the enumerated solutions with correct uniqueness.
        assert any(np.array_equal(solution, s) for s in solutions)
        assert unique == (len(solutions) == 1)

    def test_inconsistent_system_raises(self, backend) -> None:
        matrix = np.array([[1, 1], [1, 1]], np.uint8)
        rhs = np.array([0, 1], np.uint8)
        assert brute_force_solutions(matrix, rhs) == []
        with pytest.raises(EncodingError):
            gf2_solve(matrix, rhs, backend=backend)

    def test_underdetermined_reports_non_unique(self, backend) -> None:
        matrix = np.array([[1, 0, 1]], np.uint8)
        rhs = np.array([1], np.uint8)
        solution, unique = gf2_solve(matrix, rhs, backend=backend)
        assert not unique
        assert np.array_equal(gf2_matvec(matrix, solution), rhs)
        assert len(brute_force_solutions(matrix, rhs)) == 4

    def test_unique_full_rank_system(self, backend) -> None:
        matrix = np.array([[1, 1, 0], [0, 1, 1], [0, 0, 1]], np.uint8)
        x = np.array([1, 0, 1], np.uint8)
        rhs = gf2_matvec(matrix, x)
        solution, unique = gf2_solve(matrix, rhs, backend=backend)
        assert unique
        assert np.array_equal(solution, x)
