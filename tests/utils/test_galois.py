"""Unit and property tests for the GF(2) toolkit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.utils.galois import gf2_dot, gf2_matvec, gf2_rank, gf2_solve, poly_to_taps


class TestDot:
    def test_basic(self):
        assert gf2_dot([1, 1, 0], [1, 0, 1]) == 1
        assert gf2_dot([1, 1, 0], [1, 1, 0]) == 0

    def test_length_mismatch(self):
        with pytest.raises(EncodingError):
            gf2_dot([1], [1, 0])

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=32))
    def test_self_dot_is_parity(self, vec):
        assert gf2_dot(vec, vec) == sum(vec) % 2


class TestPolyToTaps:
    def test_g0(self):
        # 133 octal = 1011011 binary.
        assert poly_to_taps(0o133, 7).tolist() == [1, 0, 1, 1, 0, 1, 1]

    def test_g1(self):
        # 171 octal = 1111001 binary.
        assert poly_to_taps(0o171, 7).tolist() == [1, 1, 1, 1, 0, 0, 1]


class TestSolve:
    def test_unique_2x2(self):
        # [[0,1],[1,0]] x = [1,0] -> x = [0,1]
        solution, unique = gf2_solve([[0, 1], [1, 0]], [1, 0])
        assert unique
        assert solution.tolist() == [0, 1]

    def test_identity(self):
        solution, unique = gf2_solve(np.eye(4, dtype=int), [1, 0, 1, 1])
        assert unique
        assert solution.tolist() == [1, 0, 1, 1]

    def test_inconsistent_raises(self):
        with pytest.raises(EncodingError):
            gf2_solve([[1, 1], [1, 1]], [0, 1])

    def test_underdetermined_returns_particular(self):
        solution, unique = gf2_solve([[1, 1]], [1])
        assert not unique
        assert (int(solution[0]) ^ int(solution[1])) == 1

    @given(st.integers(1, 6), st.data())
    def test_random_invertible_systems(self, n, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        # Build a random invertible matrix by accepting only full-rank draws.
        for _ in range(50):
            matrix = rng.integers(0, 2, size=(n, n))
            if gf2_rank(matrix) == n:
                break
        else:
            pytest.skip("no invertible matrix drawn")
        x = rng.integers(0, 2, size=n)
        b = matrix @ x % 2
        solution, unique = gf2_solve(matrix, b)
        assert unique
        assert np.array_equal(solution, x % 2)


class TestRank:
    def test_zero_matrix(self):
        assert gf2_rank(np.zeros((3, 3), dtype=int)) == 0

    def test_identity(self):
        assert gf2_rank(np.eye(5, dtype=int)) == 5

    def test_duplicate_rows(self):
        assert gf2_rank([[1, 0, 1], [1, 0, 1]]) == 1

    def test_matvec(self):
        out = gf2_matvec([[1, 1], [0, 1]], [1, 1])
        assert out.tolist() == [0, 1]
