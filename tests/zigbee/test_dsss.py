"""Tests for DSSS spreading/despreading."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.utils.bits import bytes_to_bits, random_bits
from repro.zigbee.dsss import bits_to_symbols, despread, spread, symbols_to_bits


class TestSymbolConversion:
    def test_nibble_order_lsb_first(self):
        # Octet 0xA7 -> low nibble 0x7 first, then 0xA.
        bits = bytes_to_bits(b"\xa7")
        assert bits_to_symbols(bits).tolist() == [0x7, 0xA]

    @given(st.lists(st.integers(0, 15), max_size=50))
    def test_roundtrip(self, symbols):
        arr = np.array(symbols, dtype=np.int64)
        assert np.array_equal(bits_to_symbols(symbols_to_bits(arr)), arr)

    def test_misaligned_rejected(self):
        with pytest.raises(EncodingError):
            bits_to_symbols([1, 0, 1])

    def test_bad_symbol_rejected(self):
        with pytest.raises(EncodingError):
            symbols_to_bits(np.array([16]))


class TestSpreadDespread:
    def test_expansion_factor(self, rng):
        bits = random_bits(40, rng)
        assert spread(bits).size == 40 * 8  # 32 chips per 4 bits

    @given(st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        bits = random_bits(48, rng)
        out, scores = despread(spread(bits))
        assert np.array_equal(out, bits)
        assert all(s == pytest.approx(1.0) for s in scores)

    def test_processing_gain(self, rng):
        """Corrupting 5 chips of every symbol still decodes (d_min 12)."""
        bits = random_bits(32, rng)
        chips = spread(bits).astype(np.float64) * 2 - 1
        for sym in range(chips.size // 32):
            flips = rng.choice(32, size=5, replace=False)
            chips[sym * 32 + flips] *= -1
        out, scores = despread(chips)
        assert np.array_equal(out, bits)
        assert all(s < 1.0 for s in scores)

    def test_burst_interference_half_symbol(self, rng):
        """Erasing half a symbol's chips (burst) is survivable."""
        bits = random_bits(8, rng)
        chips = spread(bits).astype(np.float64) * 2 - 1
        chips[0:11] = 0.0  # 11 erased chips: strictly below d_min = 12
        out, _ = despread(chips)
        assert np.array_equal(out, bits)

    def test_misaligned_chips_rejected(self):
        with pytest.raises(DecodingError):
            despread(np.ones(33))
