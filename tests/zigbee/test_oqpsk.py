"""Tests for half-sine O-QPSK modulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DecodingError, EncodingError
from repro.utils.bits import random_bits
from repro.zigbee.oqpsk import demodulate_chips, half_sine_pulse, modulate_chips
from repro.zigbee.params import SAMPLES_PER_CHIP


class TestPulse:
    def test_shape(self):
        pulse = half_sine_pulse()
        assert pulse.size == 2 * SAMPLES_PER_CHIP
        assert pulse[0] == pytest.approx(0.0)
        assert pulse.max() <= 1.0

    def test_symmetric_peak(self):
        pulse = half_sine_pulse()
        assert np.argmax(pulse) == pulse.size // 2


class TestModDemod:
    def test_roundtrip_hard_chips(self, rng):
        chips = random_bits(64, rng)
        soft = demodulate_chips(modulate_chips(chips), 64)
        assert np.array_equal((soft > 0).astype(np.uint8), chips)

    def test_roundtrip_with_noise(self, rng):
        chips = random_bits(128, rng)
        waveform = modulate_chips(chips)
        noisy = waveform + 0.15 * (
            rng.normal(size=waveform.size) + 1j * rng.normal(size=waveform.size)
        )
        soft = demodulate_chips(noisy, 128)
        assert np.array_equal((soft > 0).astype(np.uint8), chips)

    def test_near_constant_envelope(self, rng):
        """The O-QPSK offset keeps the envelope from collapsing to zero."""
        chips = random_bits(256, rng)
        waveform = modulate_chips(chips)
        # Skip edges where only one rail is active.
        core = np.abs(waveform[16:-16])
        assert core.min() > 0.3
        assert core.max() < 1.3

    def test_odd_chips_rejected(self):
        with pytest.raises(EncodingError):
            modulate_chips(np.ones(33))
        with pytest.raises(DecodingError):
            demodulate_chips(np.zeros(100, complex), 33)

    def test_short_waveform_rejected(self):
        with pytest.raises(DecodingError):
            demodulate_chips(np.zeros(8, complex), 64)

    def test_unit_mean_power(self, rng):
        chips = random_bits(512, rng)
        waveform = modulate_chips(chips)
        power = np.mean(np.abs(waveform[16:-16]) ** 2)
        assert power == pytest.approx(1.0, rel=0.1)
