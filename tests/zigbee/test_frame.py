"""Tests for 802.15.4 framing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DecodingError
from repro.zigbee.frame import (
    ZigbeeFrame,
    build_ppdu_bits,
    frame_duration_us,
    parse_ppdu_bits,
)
from repro.zigbee.params import PREAMBLE_SYMBOLS, SYMBOL_DURATION_US


class TestBuild:
    def test_roundtrip(self, rng):
        psdu = bytes(rng.integers(0, 256, size=50, dtype=np.uint8))
        frame = parse_ppdu_bits(build_ppdu_bits(psdu))
        assert frame.psdu == psdu

    def test_preamble_is_zero(self):
        bits = build_ppdu_bits(b"\xff")
        assert not bits[: PREAMBLE_SYMBOLS * 4].any()

    def test_length_limits(self):
        with pytest.raises(ConfigurationError):
            build_ppdu_bits(b"")
        with pytest.raises(ConfigurationError):
            build_ppdu_bits(bytes(128))

    def test_sfd_validated(self):
        bits = build_ppdu_bits(b"ok")
        bits[PREAMBLE_SYMBOLS * 4 + 3] ^= 1  # corrupt the SFD
        with pytest.raises(DecodingError):
            parse_ppdu_bits(bits)

    def test_truncated_stream(self):
        bits = build_ppdu_bits(b"hello")[:-8]
        with pytest.raises(DecodingError):
            parse_ppdu_bits(bits)

    def test_few_corrupt_preamble_symbols_tolerated(self):
        """Paper Section IV-F: the redundant preamble absorbs a burst."""
        bits = build_ppdu_bits(b"x")
        bits[0] = 1   # symbol 0 corrupted
        bits[5] = 1   # symbol 1 corrupted
        assert parse_ppdu_bits(bits).psdu == b"x"

    def test_mostly_corrupt_preamble_rejected(self):
        bits = build_ppdu_bits(b"x")
        for symbol in range(5):
            bits[symbol * 4] = 1
        with pytest.raises(DecodingError):
            parse_ppdu_bits(bits)


class TestDurations:
    def test_symbol_accounting(self):
        frame = ZigbeeFrame(psdu=bytes(10))
        # SHR 10 symbols + PHR 2 + 2 per octet.
        assert frame.n_symbols == 10 + 2 + 20

    def test_duration(self):
        # The paper's example rate: 16 us per symbol.
        assert SYMBOL_DURATION_US == 16.0
        assert frame_duration_us(60) == (12 + 120) * 16.0

    def test_paper_preamble_duration(self):
        """The ZigBee preamble lasts 128 us (Section IV-F)."""
        assert PREAMBLE_SYMBOLS * SYMBOL_DURATION_US == 128.0
