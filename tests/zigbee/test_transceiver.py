"""End-to-end ZigBee PHY tests, including interference scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn, mix_at_offset
from repro.errors import SynchronizationError
from repro.zigbee.params import SAMPLE_RATE_HZ, SAMPLES_PER_CHIP
from repro.zigbee.receiver import ZigbeeReceiver
from repro.zigbee.transmitter import ZigbeeTransmitter


def _psdu(rng, n=30) -> bytes:
    return bytes(rng.integers(0, 256, size=n, dtype=np.uint8))


class TestCleanChannel:
    def test_roundtrip(self, rng):
        psdu = _psdu(rng)
        trans = ZigbeeTransmitter().send(psdu)
        reception = ZigbeeReceiver().receive(trans.waveform)
        assert reception.frame.psdu == psdu
        assert min(reception.symbol_scores) > 0.99

    def test_duration_matches_rate(self, rng):
        trans = ZigbeeTransmitter().send(_psdu(rng, 60))
        # 60 octets -> (10 SHR + 2 PHR + 120) symbols x 16 us.
        assert trans.duration_us == 132 * 16.0

    def test_sample_count(self, rng):
        trans = ZigbeeTransmitter().send(_psdu(rng, 10))
        expected_chips = trans.chips.size
        assert trans.waveform.size >= expected_chips * SAMPLES_PER_CHIP

    def test_known_offset(self, rng):
        psdu = _psdu(rng)
        trans = ZigbeeTransmitter().send(psdu)
        padded = np.concatenate([np.zeros(333, complex), trans.waveform])
        reception = ZigbeeReceiver().receive(padded, start_sample=333)
        assert reception.frame.psdu == psdu


class TestNoise:
    @pytest.mark.parametrize("snr_db", [10.0, 3.0, 0.0])
    def test_decodes_down_to_0db(self, snr_db, rng):
        """DSSS processing gain: clean decode at 0 dB SNR."""
        psdu = _psdu(rng, 20)
        trans = ZigbeeTransmitter().send(psdu)
        noisy = awgn(trans.waveform, snr_db, rng)
        reception = ZigbeeReceiver().receive(noisy)
        assert reception.frame.psdu == psdu

    def test_sync_fails_on_pure_noise(self, rng):
        noise = rng.normal(size=4000) + 1j * rng.normal(size=4000)
        with pytest.raises(SynchronizationError):
            ZigbeeReceiver().receive(noise.astype(complex))


class TestBurstInterference:
    def test_short_burst_mid_payload_survivable(self, rng):
        """A weak short burst (below the signal level) does not kill the
        frame — the DSSS argument of paper Section IV-E."""
        psdu = _psdu(rng, 20)
        trans = ZigbeeTransmitter().send(psdu)
        burst = (rng.normal(size=200) + 1j * rng.normal(size=200)) * 0.3
        corrupted = mix_at_offset(trans.waveform, burst, 4000)
        reception = ZigbeeReceiver().receive(corrupted)
        assert reception.frame.psdu == psdu

    def test_strong_long_burst_kills_frame(self, rng):
        """A strong WiFi-preamble-like burst over payload symbols corrupts
        them (the Fig. 15 limitation)."""
        psdu = _psdu(rng, 20)
        trans = ZigbeeTransmitter().send(psdu)
        n_burst = 3 * 32 * SAMPLES_PER_CHIP  # three full symbols
        burst = (rng.normal(size=n_burst) + 1j * rng.normal(size=n_burst)) * 4.0
        corrupted = mix_at_offset(trans.waveform, burst, 6000)
        try:
            reception = ZigbeeReceiver().receive(corrupted, start_sample=0)
            assert reception.frame.psdu != psdu
        except Exception:
            pass  # parse failure is an equally valid corruption outcome

    def test_interference_on_preamble_tolerated(self, rng):
        """Redundant preamble symbols survive a burst on one of them."""
        psdu = _psdu(rng, 10)
        trans = ZigbeeTransmitter().send(psdu)
        burst = (rng.normal(size=128) + 1j * rng.normal(size=128)) * 0.5
        corrupted = mix_at_offset(trans.waveform, burst, 200)
        reception = ZigbeeReceiver().receive(corrupted)
        assert reception.frame.psdu == psdu
