"""Tests for the 802.15.4 PN chip table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.zigbee.chips import (
    bipolar_table,
    chip_table,
    chips_for_symbol,
    correlate_symbol,
    min_hamming_distance,
)


class TestTable:
    def test_shape(self):
        assert chip_table().shape == (16, 32)

    def test_symbol0_matches_standard(self):
        expected = "11011001110000110101001000101110"
        assert "".join(str(c) for c in chip_table()[0]) == expected

    def test_symbols_1_to_7_are_cyclic_shifts(self):
        table = chip_table()
        for symbol in range(1, 8):
            assert np.array_equal(table[symbol], np.roll(table[0], 4 * symbol))

    def test_symbols_8_to_15_conjugate_odd_chips(self):
        table = chip_table()
        flip = np.zeros(32, dtype=np.uint8)
        flip[1::2] = 1
        for symbol in range(8):
            assert np.array_equal(table[8 + symbol], table[symbol] ^ flip)

    def test_all_sequences_distinct(self):
        rows = {bytes(row) for row in chip_table()}
        assert len(rows) == 16

    def test_min_hamming_distance(self):
        # The 802.15.4 quasi-orthogonal set: d_min = 12.
        assert min_hamming_distance() == 12

    def test_chips_for_symbol_bounds(self):
        with pytest.raises(ConfigurationError):
            chips_for_symbol(16)

    def test_bipolar(self):
        assert set(np.unique(bipolar_table())) == {-1.0, 1.0}


class TestCorrelation:
    @pytest.mark.parametrize("symbol", range(16))
    def test_perfect_match(self, symbol):
        chips = bipolar_table()[symbol]
        decoded, score = correlate_symbol(chips)
        assert decoded == symbol
        assert score == pytest.approx(1.0)

    def test_tolerates_five_chip_errors(self, rng):
        """d_min = 12, so < 6 chip flips can never change the winner."""
        for symbol in range(16):
            chips = bipolar_table()[symbol].copy()
            flips = rng.choice(32, size=5, replace=False)
            chips[flips] *= -1
            decoded, _ = correlate_symbol(chips)
            assert decoded == symbol

    def test_soft_chips(self):
        chips = bipolar_table()[3] * 0.1  # weak but clean
        decoded, score = correlate_symbol(chips)
        assert decoded == 3
        assert score == pytest.approx(1.0)

    def test_wrong_length(self):
        with pytest.raises(ConfigurationError):
            correlate_symbol(np.ones(31))
