"""Tests for the analytic ZigBee link model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.zigbee.link_model import (
    chip_error_probability,
    packet_error_probability,
    q_function,
    sinr_threshold_db,
    symbol_error_probability,
)


class TestQFunction:
    def test_known_values(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(1.0) == pytest.approx(0.1587, abs=1e-3)
        assert q_function(3.0) == pytest.approx(1.35e-3, rel=0.05)

    def test_monotone(self):
        xs = np.linspace(-3, 5, 50)
        values = [q_function(x) for x in xs]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestChipErrors:
    def test_high_sinr_near_zero(self):
        assert chip_error_probability(15.0) < 1e-12

    def test_very_low_sinr_near_half(self):
        assert chip_error_probability(-30.0) == pytest.approx(0.5, abs=0.02)

    def test_monotone_in_sinr(self):
        sinrs = np.linspace(-10, 10, 40)
        values = [chip_error_probability(s) for s in sinrs]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestSymbolErrors:
    def test_threshold_behaviour(self):
        """The SER curve has a sharp knee around 1-3 dB."""
        assert symbol_error_probability(-5.0) > 0.5
        assert symbol_error_probability(5.0) < 1e-6

    def test_monotone(self):
        sinrs = np.linspace(-8, 8, 30)
        values = [symbol_error_probability(s) for s in sinrs]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_threshold_matches_dsss_gain(self):
        """Decoding threshold sits near +2 dB — far below what an unspread
        link would need, reflecting the 32-chip processing gain."""
        threshold = sinr_threshold_db(1e-3)
        assert 0.0 < threshold < 4.0


class TestPacketErrors:
    def test_zero_symbols(self):
        assert packet_error_probability(0.0, 0) == 0.0

    def test_compounds_with_length(self):
        short = packet_error_probability(1.0, 10)
        long = packet_error_probability(1.0, 100)
        assert long > short

    def test_certain_loss(self):
        assert packet_error_probability(-20.0, 50) == pytest.approx(1.0)

    def test_clean(self):
        assert packet_error_probability(20.0, 200) < 1e-9
