"""SledZig streaming: stripping over the stream + online channel detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.sledzig.decoder import detect_zigbee_channel
from repro.sledzig.pipeline import SledZigReceiver, encode_frames
from repro.sledzig.streaming import OnlineChannelDetector, SledZigStreamReceiver
from repro.streaming import FrameEvent, iter_chunks
from repro.wifi.receiver import WifiReceiver


@pytest.fixture(scope="module")
def transmissions():
    rng = np.random.default_rng(43)
    payloads = [
        bytes(rng.integers(0, 256, size=30, dtype=np.uint8)) for _ in range(3)
    ]
    return payloads, encode_frames(payloads, "qam16-1/2", "CH3")


def _stream(waveforms, gap=600):
    silence = np.zeros(gap, dtype=np.complex128)
    pieces = [silence]
    for w in waveforms:
        pieces.extend([w, silence])
    return np.concatenate(pieces)


class TestStreamDecode:
    @pytest.mark.parametrize("detection", ["frame", "online"])
    def test_stream_recovers_payloads_and_channel(self, transmissions, detection):
        payloads, waveforms = transmissions
        receiver = SledZigStreamReceiver(detection=detection)
        packets, drops = receiver.receive_stream(
            iter_chunks(_stream(waveforms), 2048)
        )
        assert not drops
        assert [p.payload for p in packets] == payloads
        assert all(p.channel.name == "CH3" for p in packets)

    def test_frame_mode_matches_classic_receiver(self, transmissions):
        payloads, waveforms = transmissions
        receiver = SledZigStreamReceiver()
        packets, _ = receiver.receive_stream(iter_chunks(_stream(waveforms), 1024))
        classic = SledZigReceiver().receive_frames(waveforms)
        for stream_pkt, classic_pkt in zip(packets, classic):
            assert stream_pkt.payload == classic_pkt.payload
            assert stream_pkt.channel.name == classic_pkt.channel.name


class TestOnlineDetection:
    def test_single_frame_matches_per_frame_detector(self, transmissions):
        _, waveforms = transmissions
        reception = WifiReceiver().receive(waveforms[0])
        online = OnlineChannelDetector()
        online.update(reception.data_points)
        per_frame = detect_zigbee_channel(reception.data_points)
        decision = online.detection()
        assert decision.channel.name == per_frame.channel.name
        assert decision.ratios_db == pytest.approx(per_frame.ratios_db)

    def test_accumulation_spans_frames(self, transmissions):
        _, waveforms = transmissions
        wifi = WifiReceiver()
        online = OnlineChannelDetector()
        total = 0
        for waveform in waveforms:
            reception = wifi.receive(waveform)
            online.update(reception.data_points)
            total += len(reception.data_points)
        assert online.n_symbols == total
        assert online.detection().channel.name == "CH3"

    def test_online_ratios_published_as_gauges(self, transmissions):
        _, waveforms = transmissions
        receiver = SledZigStreamReceiver(detection="online")
        with telemetry.collect() as tel:
            receiver.receive_stream([_stream(waveforms[:1])])
        gauges = tel.snapshot().gauges
        assert gauges["sledzig.online.symbols"] > 0
        assert "sledzig.online.ratio_db.CH3" in gauges
        assert gauges["sledzig.online.ratio_db.CH3"] < -4.0

    def test_empty_detector_refuses_decision(self):
        from repro.errors import DecodingError

        with pytest.raises(DecodingError):
            OnlineChannelDetector().detection()

    def test_invalid_detection_mode_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SledZigStreamReceiver(detection="sometimes")
