"""Chunk-boundary invariance of the CTC RSSI demodulator.

Same contract the waveform receivers are pinned to, applied to the side
channel: a :class:`~repro.sledzig.ctc.demod.CtcDemodulator` driven
through :class:`~repro.streaming.StreamPipeline` must emit the exact
same event sequence for ANY chunking of an RSSI capture — clean, noisy,
truncated mid-frame, or back-to-back frames — as the one-chunk
reference.  RSSI streams are tiny next to waveforms, so the random
chunk plans here are sample-scale.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sledzig.ctc.alphabet import ctc_alphabet, scaled_decreases_db
from repro.sledzig.ctc.demod import CtcDemodulator
from repro.sledzig.ctc.modem import CtcModulator, synthesize_rssi
from repro.streaming import DropEvent, FrameEvent, StreamPipeline, iter_chunks

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

#: Random chunking plans at RSSI-sample scale (streams are a few hundred
#: samples long; iter_chunks repeats the last size to cover the rest).
_chunk_plans = st.lists(st.integers(1, 200), min_size=1, max_size=12)

_DEPTH = 1
_CHANNEL = 2
_SPS = 2  # RSSI samples per CTC symbol


def _levels() -> tuple:
    low, full = scaled_decreases_db(ctc_alphabet("qam64-2/3", _CHANNEL, _DEPTH))
    return (-60.0 - low, -60.0 - full)


def _build_streams() -> dict:
    mod = CtcModulator("qam64-2/3", _CHANNEL, _DEPTH, frames_per_symbol=_SPS)
    levels = _levels()
    one = synthesize_rssi(
        mod.pattern_schedule(b"inv"), 1, levels, lead_in=7, tail=9
    )
    pair = np.concatenate([
        synthesize_rssi(mod.pattern_schedule(b"one"), 1, levels, lead_in=5),
        synthesize_rssi(mod.pattern_schedule(b"two"), 1, levels, tail=5),
    ])
    noisy = synthesize_rssi(
        mod.pattern_schedule(b"n0"), 1, levels,
        lead_in=11, tail=4, noise_db=0.3, rng=np.random.default_rng(42),
    )
    return {
        "clean": one,
        "back_to_back": pair,
        "noisy": noisy,
        "truncated": one[: one.size - 40],
        "idle": np.full(300, -95.0) + np.random.default_rng(3).normal(0, 0.2, 300),
    }


def _decode(stream: np.ndarray, sizes) -> list:
    pipeline = StreamPipeline(
        [CtcDemodulator(samples_per_symbol=_SPS, min_swing_db=0.5)],
        telemetry_prefix="ctc",
    )
    out = []
    for event in pipeline.run(iter_chunks(stream, sizes)):
        if isinstance(event, FrameEvent):
            out.append(("frame", event.start_sample, event.result.payload))
        elif isinstance(event, DropEvent):
            out.append(("drop", event.start_sample, event.cause))
    return out


_STREAMS = _build_streams()

_REFERENCE = {
    variant: _decode(stream, stream.size)
    for variant, stream in _STREAMS.items()
}


class TestReferenceSanity:
    def test_clean_reference_decodes(self):
        assert [e[:1] + e[2:] for e in _REFERENCE["clean"]] == [
            ("frame", b"inv")
        ]

    def test_back_to_back_reference_decodes_both(self):
        payloads = [e[2] for e in _REFERENCE["back_to_back"] if e[0] == "frame"]
        assert payloads == [b"one", b"two"]

    def test_truncated_reference_leads_with_typed_drop(self):
        events = _REFERENCE["truncated"]
        assert events and events[0] == ("drop", 7, "TruncatedFrameError")
        assert not any(e[0] == "frame" for e in events)

    def test_idle_reference_is_silent(self):
        assert _REFERENCE["idle"] == []


class TestRandomChunkings:
    @pytest.mark.parametrize(
        "variant", ["clean", "back_to_back", "noisy", "truncated", "idle"]
    )
    @given(sizes=_chunk_plans)
    @_SETTINGS
    def test_any_chunking_matches_one_chunk_reference(self, variant, sizes):
        stream = _STREAMS[variant]
        assert _decode(stream, sizes) == _REFERENCE[variant]


class TestPathologicalSplits:
    def test_single_sample_pushes_through_entire_stream(self):
        stream = _STREAMS["back_to_back"]
        assert _decode(stream, 1) == _REFERENCE["back_to_back"]

    def test_split_mid_sync_word(self):
        # The first frame's 32-symbol preamble+sync spans samples
        # [7, 7 + 32 * _SPS): cut inside it, then tiny, then large.
        stream = _STREAMS["clean"]
        for cut in (8, 7 + 16 * _SPS, 7 + 32 * _SPS - 1):
            assert _decode(stream, [cut, 3, 4096]) == _REFERENCE["clean"]

    def test_split_exactly_at_frame_boundary(self):
        stream = _STREAMS["back_to_back"]
        first = synthesize_rssi(
            CtcModulator("qam64-2/3", _CHANNEL, _DEPTH, frames_per_symbol=_SPS)
            .pattern_schedule(b"one"),
            1, _levels(), lead_in=5,
        )
        for cut in (first.size - 1, first.size, first.size + 1):
            assert _decode(stream, [cut, 2048]) == _REFERENCE["back_to_back"]
