"""Constant-memory acceptance: peak ring occupancy is capture-length-free.

The tentpole's operational claim: decoding a recording through the
streaming pipeline retains at most (longest frame + one chunk) samples,
no matter how long the recording is.  Pinned here by decoding a >=100
frame ZigBee capture chunk-by-chunk and asserting the ring's high-water
mark — read from the ``stream.ring.zigbee.high_water`` telemetry gauge,
the same value the ``--metrics-out`` manifests record — equals the
high-water mark of a capture a quarter the length.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.streaming import FrameEvent, iter_chunks
from repro.zigbee.streaming import ZigbeeStreamReceiver
from repro.zigbee.transmitter import ZigbeeTransmitter

_CHUNK = 1024


def _capture(n_frames: int, seed: int = 11) -> "tuple[np.ndarray, list[bytes]]":
    """*n_frames* equal-length frames, aligned to the chunk grid.

    The gap pads each (frame + gap) period to a whole number of chunks, so
    every frame meets the ring at the same chunk phase — making the peak
    occupancy of two captures exactly comparable, not just both bounded.
    """
    rng = np.random.default_rng(seed)
    psdus = [
        bytes(rng.integers(0, 256, size=24, dtype=np.uint8))
        for _ in range(n_frames)
    ]
    waveforms = [t.waveform for t in ZigbeeTransmitter().send_frames(psdus)]
    gap_samples = _CHUNK + (-waveforms[0].size) % _CHUNK
    gap = np.zeros(gap_samples, dtype=np.complex128)
    pieces = [gap]
    for waveform in waveforms:
        pieces.extend([waveform, gap])
    return np.concatenate(pieces), psdus


def _decode(capture: np.ndarray) -> "tuple[int, float]":
    """Returns (frames decoded, ring high-water gauge)."""
    receiver = ZigbeeStreamReceiver()
    with telemetry.collect() as tel:
        events = receiver.pipeline.run(iter_chunks(capture, _CHUNK))
    frames = sum(1 for e in events if isinstance(e, FrameEvent))
    return frames, tel.snapshot().gauges["stream.ring.zigbee.high_water"]


class TestConstantMemory:
    def test_100_frame_capture_peaks_no_higher_than_25_frame_capture(self):
        short_capture, _ = _capture(25)
        long_capture, long_psdus = _capture(100)
        assert long_capture.size > 4 * short_capture.size * 0.9

        short_frames, short_peak = _decode(short_capture)
        long_frames, long_peak = _decode(long_capture)

        assert short_frames == 25
        assert long_frames == 100
        # The acceptance bar: peak retained samples are identical, i.e.
        # bounded by (frame + chunk slack), independent of capture length.
        assert long_peak == short_peak
        frame_samples = ZigbeeTransmitter().send_frames([bytes(24)])[0].waveform.size
        assert long_peak <= frame_samples + 2 * _CHUNK

    def test_high_water_far_below_capture_length(self):
        capture, _ = _capture(100)
        _, peak = _decode(capture)
        assert peak < capture.size / 50

    def test_every_frame_of_the_long_capture_decodes(self):
        capture, psdus = _capture(100)
        receiver = ZigbeeStreamReceiver()
        events = receiver.pipeline.run(iter_chunks(capture, _CHUNK))
        decoded = [
            bytes(e.result.frame.psdu) for e in events if isinstance(e, FrameEvent)
        ]
        assert decoded == psdus
