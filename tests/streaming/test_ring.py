"""SampleRing: absolute indexing, compaction, bounds and telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ConfigurationError, StreamOverflowError
from repro.streaming import SampleRing


class TestAbsoluteIndexing:
    def test_view_returns_appended_samples_by_stream_position(self):
        ring = SampleRing(16)
        ring.append(np.arange(5, dtype=complex))
        ring.append(np.arange(5, 8, dtype=complex))
        assert ring.start == 0 and ring.end == 8
        assert np.array_equal(ring.view(2, 6), np.arange(2, 6, dtype=complex))

    def test_release_advances_start_and_keeps_absolute_addresses(self):
        ring = SampleRing(8)
        ring.append(np.arange(8, dtype=complex))
        ring.release(5)
        assert ring.start == 5 and ring.occupancy == 3
        assert np.array_equal(ring.view(5, 8), np.arange(5, 8, dtype=complex))

    def test_compaction_preserves_content_across_many_wraps(self):
        ring = SampleRing(10)
        stream = np.arange(1000, dtype=complex)
        pos = 0
        while pos < stream.size:
            chunk = stream[pos : pos + 3]
            ring.release(ring.end - 4)  # keep a 4-sample tail
            ring.append(chunk)
            pos += chunk.size
            lo = ring.start
            assert np.array_equal(ring.view(lo, ring.end), stream[lo : ring.end])

    def test_view_outside_retained_window_raises(self):
        ring = SampleRing(8)
        ring.append(np.arange(8, dtype=complex))
        ring.release(4)
        with pytest.raises(ConfigurationError):
            ring.view(3, 6)
        with pytest.raises(ConfigurationError):
            ring.view(5, 9)


class TestBounds:
    def test_overfull_append_raises_stream_overflow(self):
        ring = SampleRing(4)
        ring.append(np.zeros(3, dtype=complex))
        with pytest.raises(StreamOverflowError):
            ring.append(np.zeros(2, dtype=complex))

    def test_release_beyond_end_is_clamped(self):
        ring = SampleRing(4)
        ring.append(np.zeros(4, dtype=complex))
        ring.release(100)
        assert ring.start == ring.end == 4
        assert ring.occupancy == 0

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SampleRing(0)

    def test_high_water_tracks_peak_not_current(self):
        ring = SampleRing(8)
        ring.append(np.zeros(6, dtype=complex))
        ring.release(6)
        ring.append(np.zeros(2, dtype=complex))
        assert ring.occupancy == 2
        assert ring.high_water == 6


class TestTelemetry:
    def test_named_ring_publishes_occupancy_and_high_water_gauges(self):
        with telemetry.collect() as tel:
            ring = SampleRing(8, name="probe")
            ring.append(np.zeros(5, dtype=complex))
            ring.release(5)
            ring.append(np.zeros(2, dtype=complex))
        gauges = tel.snapshot().gauges
        assert gauges["stream.ring.probe.occupancy"] == 2
        assert gauges["stream.ring.probe.high_water"] == 5

    def test_unnamed_ring_publishes_nothing(self):
        with telemetry.collect() as tel:
            SampleRing(8).append(np.zeros(3, dtype=complex))
        assert tel.snapshot().gauges == {}
