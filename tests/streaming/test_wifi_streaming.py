"""WiFi streaming front end: multi-frame streams, tails, typed drops."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.streaming import DropEvent, FrameEvent, iter_chunks
from repro.utils.bits import random_bits
from repro.wifi.receiver import WifiReceiver, decode_frames
from repro.wifi.streaming import WifiStreamReceiver, sync_capture
from repro.wifi.transmitter import encode_frames


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(41)
    payloads = [random_bits(8 * 60, rng) for _ in range(3)]
    return payloads, encode_frames(payloads, "qam16-1/2")


def _stream(waveforms, gap=500):
    silence = np.zeros(gap, dtype=np.complex128)
    pieces = [silence]
    for w in waveforms:
        pieces.extend([w, silence])
    return np.concatenate(pieces)


class TestStreamDecode:
    def test_multi_frame_stream_decodes_every_frame_in_order(self, frames):
        payloads, waveforms = frames
        stream = _stream(waveforms)
        receiver = WifiStreamReceiver()
        decoded, drops = receiver.receive_stream(iter_chunks(stream, 2048))
        assert not drops
        assert len(decoded) == len(payloads)
        for sent, got in zip(payloads, decoded):
            assert np.array_equal(got.psdu_bits, sent)

    def test_stream_results_match_batch_receiver_bitwise(self, frames):
        payloads, waveforms = frames
        receiver = WifiStreamReceiver()
        decoded, _ = receiver.receive_stream(iter_chunks(_stream(waveforms), 1024))
        batch = WifiReceiver().receive_frames(waveforms)
        for stream_rec, batch_rec in zip(decoded, batch):
            assert np.array_equal(stream_rec.psdu_bits, batch_rec.psdu_bits)
            assert np.array_equal(
                stream_rec.descrambled_field, batch_rec.descrambled_field
            )

    def test_frame_ending_exactly_at_flush_is_recovered(self, frames):
        payloads, waveforms = frames
        stream = np.concatenate([np.zeros(300, dtype=complex), waveforms[0]])
        receiver = WifiStreamReceiver()
        events = receiver.push(stream)
        events += receiver.flush()
        got = [e for e in events if isinstance(e, FrameEvent)]
        assert len(got) == 1
        assert np.array_equal(got[0].result.psdu_bits, payloads[0])

    def test_events_carry_absolute_start_samples(self, frames):
        _, waveforms = frames
        stream = _stream(waveforms, gap=700)
        receiver = WifiStreamReceiver()
        events = receiver.pipeline.run(iter_chunks(stream, 4096))
        starts = [e.start_sample for e in events if isinstance(e, FrameEvent)]
        expected = 700
        for start, waveform in zip(starts, waveforms):
            assert start == expected
            expected += waveform.size + 700


class TestTypedDrops:
    def test_truncated_tail_surfaces_as_truncated_frame_drop(self, frames):
        _, waveforms = frames
        cut = np.concatenate(
            [np.zeros(200, dtype=complex), waveforms[0][: waveforms[0].size // 2]]
        )
        receiver = WifiStreamReceiver()
        with telemetry.collect() as tel:
            decoded, drops = receiver.receive_stream([cut])
        assert decoded == []
        assert len(drops) == 1
        assert drops[0].cause == "TruncatedFrameError"
        counters = tel.snapshot().counters
        assert counters["wifi.stream.drop.TruncatedFrameError"] == 1

    def test_noise_only_stream_emits_nothing(self):
        rng = np.random.default_rng(5)
        noise = (rng.normal(size=4000) + 1j * rng.normal(size=4000)) * 0.1
        receiver = WifiStreamReceiver()
        decoded, drops = receiver.receive_stream(iter_chunks(noise, 512))
        assert decoded == [] and drops == []


class TestFullBufferAdapter:
    def test_sync_capture_finds_every_frame_window(self, frames):
        _, waveforms = frames
        windows, drops = sync_capture(_stream(waveforms))
        assert not drops
        assert len(windows) == len(waveforms)
        assert all(w.data_start == 320 for w in windows)

    def test_decode_frames_matches_scalar_receive_bitwise(self, frames):
        payloads, waveforms = frames
        receiver = WifiReceiver()
        batched = decode_frames(waveforms)
        for payload, bits, waveform in zip(payloads, batched, waveforms):
            assert np.array_equal(bits, payload)
            assert np.array_equal(receiver.receive(waveform).psdu_bits, bits)

    def test_nan_capture_still_raises_invalid_waveform(self, frames):
        from repro.errors import InvalidWaveformError

        _, waveforms = frames
        bad = waveforms[0].copy()
        bad[100] = np.nan
        with pytest.raises(InvalidWaveformError):
            decode_frames([bad])

    def test_pure_noise_capture_raises_synchronization_error(self):
        from repro.errors import SynchronizationError

        rng = np.random.default_rng(6)
        noise = (rng.normal(size=2000) + 1j * rng.normal(size=2000)) * 0.1
        with pytest.raises(SynchronizationError):
            decode_frames([noise])
