"""Stage protocol, pipeline composition, flush cascade, chunk iteration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import DecodingError
from repro.streaming import (
    DropEvent,
    FrameEvent,
    Stage,
    StreamPipeline,
    iter_chunks,
)


class Doubler:
    """Toy stage: emits each item twice; flush emits a sentinel."""

    name = "doubler"

    def __init__(self):
        self.flushed = False

    def push(self, item):
        return [item, item]

    def flush(self):
        self.flushed = True
        return ["tail"]


class Tagger:
    """Toy stage: tags items it sees; flush emits its own sentinel."""

    name = "tagger"

    def push(self, item):
        return [f"tagged:{item}"]

    def flush(self):
        return ["tagger-tail"]


class TestPipeline:
    def test_push_threads_events_through_downstream_stages(self):
        pipe = StreamPipeline([Doubler(), Tagger()], "test")
        assert pipe.push("x") == ["tagged:x", "tagged:x"]

    def test_flush_cascades_upstream_tails_through_downstream_stages(self):
        pipe = StreamPipeline([Doubler(), Tagger()], "test")
        # The doubler's buffered tail must still be tagged; the tagger's
        # own tail comes after, preserving stream order end to end.
        assert pipe.flush() == ["tagged:tail", "tagger-tail"]

    def test_run_is_pushes_then_flush(self):
        pipe = StreamPipeline([Doubler()], "test")
        assert pipe.run(["a", "b"]) == ["a", "a", "b", "b", "tail"]

    def test_stages_satisfy_protocol(self):
        assert isinstance(Doubler(), Stage)
        assert isinstance(Tagger(), Stage)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            StreamPipeline([], "test")

    def test_per_stage_spans_recorded(self):
        with telemetry.collect() as tel:
            StreamPipeline([Doubler(), Tagger()], "test").run(["a"])
        timers = tel.snapshot().timers
        assert "test.doubler" in timers
        assert "test.tagger" in timers


class TestEvents:
    def test_drop_event_cause_is_error_class_name(self):
        drop = DropEvent(start_sample=7, stage="sync", error=DecodingError("x"))
        assert drop.cause == "DecodingError"

    def test_frame_event_carries_result(self):
        event = FrameEvent(start_sample=0, result="payload")
        assert event.result == "payload"


class TestIterChunks:
    def test_scalar_size_splits_with_remainder(self):
        chunks = list(iter_chunks(np.arange(10), 4))
        assert [c.size for c in chunks] == [4, 4, 2]
        assert np.array_equal(np.concatenate(chunks), np.arange(10))

    def test_size_sequence_with_last_size_repeating(self):
        chunks = list(iter_chunks(np.arange(10), [1, 2, 3]))
        assert [c.size for c in chunks] == [1, 2, 3, 3, 1]
        assert np.array_equal(np.concatenate(chunks), np.arange(10))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            list(iter_chunks(np.arange(4), 0))
        with pytest.raises(ValueError):
            list(iter_chunks(np.arange(4), [2, -1]))
