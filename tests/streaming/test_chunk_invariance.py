"""Chunk-boundary invariance: ANY chunking decodes bit-identically.

The contract the streaming layer is built on: a stage's output depends
only on stream *content*, never on how the content was sliced into
chunks.  These properties drive random chunkings (hypothesis), single-
sample pushes across the sync-critical region, and deterministic splits
in the middle of preambles and SFDs — against clean and noise-impaired
streams, for all three receivers — and require event-for-event,
bit-for-bit equality with the one-chunk reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel.awgn import awgn
from repro.sledzig.pipeline import encode_frames as sledzig_encode
from repro.sledzig.streaming import SledZigStreamReceiver
from repro.streaming import DropEvent, FrameEvent, iter_chunks
from repro.utils.bits import random_bits
from repro.wifi.streaming import WifiStreamReceiver
from repro.wifi.transmitter import encode_frames as wifi_encode
from repro.zigbee.streaming import ZigbeeStreamReceiver
from repro.zigbee.transmitter import encode_frames as zigbee_encode

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

#: Random chunking plans: iter_chunks repeats the last size, so a short
#: list of sizes still covers the whole stream.
_chunk_plans = st.lists(st.integers(1, 6000), min_size=1, max_size=12)


def _make_receiver(kind):
    return {
        "wifi": WifiStreamReceiver,
        "zigbee": ZigbeeStreamReceiver,
        "sledzig": SledZigStreamReceiver,
    }[kind]()


def _canonical(events):
    """Events reduced to comparable, bit-exact tuples."""
    out = []
    for event in events:
        if isinstance(event, FrameEvent):
            result = event.result
            if hasattr(result, "psdu_bits"):  # WifiReception
                key = result.psdu_bits.tobytes() + result.descrambled_field.tobytes()
            elif hasattr(result, "frame"):  # ZigbeeReception
                key = bytes(result.frame.psdu) + np.asarray(
                    result.symbol_scores
                ).tobytes()
            else:  # SledZigReceivedPacket
                key = result.payload + result.channel.name.encode()
            out.append(("frame", event.start_sample, key))
        elif isinstance(event, DropEvent):
            out.append(("drop", event.start_sample, event.stage, event.cause))
    return out


def _decode(kind, stream, sizes):
    receiver = _make_receiver(kind)
    return _canonical(receiver.pipeline.run(iter_chunks(stream, sizes)))


def _build_streams():
    """Reference streams per technology: clean, impaired, truncated."""
    rng = np.random.default_rng(1234)
    gap = np.zeros(300, dtype=np.complex128)

    wifi = wifi_encode([random_bits(8 * 40, rng) for _ in range(2)], "qam16-1/2")
    wifi_clean = np.concatenate([gap, wifi[0], gap, wifi[1], gap])
    zig = zigbee_encode(
        [bytes(rng.integers(0, 256, size=18, dtype=np.uint8)) for _ in range(2)]
    )
    zig_clean = np.concatenate([gap, zig[0], gap, zig[1], gap])
    sled = sledzig_encode(
        [bytes(rng.integers(0, 256, size=20, dtype=np.uint8))], "qam16-1/2", "CH2"
    )
    sled_clean = np.concatenate([gap, sled[0], gap])

    streams = {
        "wifi": {
            "clean": wifi_clean,
            "impaired": awgn(wifi_clean, 22.0, np.random.default_rng(7)),
            "truncated": wifi_clean[: 300 + wifi[0].size // 2],
        },
        "zigbee": {
            "clean": zig_clean,
            "impaired": awgn(zig_clean, 12.0, np.random.default_rng(8)),
            "truncated": zig_clean[: 300 + zig[0].size - 500],
        },
        "sledzig": {
            "clean": sled_clean,
            "impaired": awgn(sled_clean, 25.0, np.random.default_rng(9)),
            "truncated": sled_clean[: 300 + sled[0].size // 2],
        },
    }
    return streams


_STREAMS = _build_streams()

_REFERENCE = {
    (kind, variant): _decode(kind, stream, stream.size)
    for kind, variants in _STREAMS.items()
    for variant, stream in variants.items()
}


class TestReferenceSanity:
    """The one-chunk references actually decode (or drop) as expected."""

    @pytest.mark.parametrize("kind,n", [("wifi", 2), ("zigbee", 2), ("sledzig", 1)])
    def test_clean_reference_has_all_frames(self, kind, n):
        events = _REFERENCE[(kind, "clean")]
        assert [e[0] for e in events] == ["frame"] * n

    @pytest.mark.parametrize("kind", ["wifi", "zigbee", "sledzig"])
    def test_truncated_reference_ends_in_typed_drop(self, kind):
        events = _REFERENCE[(kind, "truncated")]
        assert events and events[-1][0] == "drop"
        assert events[-1][-1] == "TruncatedFrameError"


class TestRandomChunkings:
    @pytest.mark.parametrize("kind", ["wifi", "zigbee", "sledzig"])
    @pytest.mark.parametrize("variant", ["clean", "impaired", "truncated"])
    @given(sizes=_chunk_plans)
    @_SETTINGS
    def test_any_chunking_matches_one_chunk_reference(self, kind, variant, sizes):
        stream = _STREAMS[kind][variant]
        assert _decode(kind, stream, sizes) == _REFERENCE[(kind, variant)]


class TestPathologicalSplits:
    def test_single_sample_pushes_through_entire_zigbee_stream(self):
        stream = _STREAMS["zigbee"]["clean"]
        assert _decode("zigbee", stream, 1) == _REFERENCE[("zigbee", "clean")]

    def test_single_sample_pushes_across_wifi_preamble_and_signal(self):
        # Sample-level boundaries across gap + preamble + SIGNAL of the
        # first frame (the sync-critical region), then large chunks.
        stream = _STREAMS["wifi"]["clean"]
        sizes = [1] * 800 + [4096]
        assert _decode("wifi", stream, sizes) == _REFERENCE[("wifi", "clean")]

    def test_split_mid_wifi_preamble(self):
        stream = _STREAMS["wifi"]["clean"]
        # Preamble occupies [300, 620): split inside the STS and the LTS.
        for cut in (310, 400, 460, 540, 610):
            sizes = [cut, 7, 4096]
            assert _decode("wifi", stream, sizes) == _REFERENCE[("wifi", "clean")]

    def test_split_mid_zigbee_sfd(self):
        stream = _STREAMS["zigbee"]["clean"]
        # Frame starts at 300; the SFD spans symbols 8..10, i.e. samples
        # [300 + 8*128, 300 + 10*128).
        for cut in (300 + 8 * 128, 300 + 9 * 128, 300 + 10 * 128 - 1):
            sizes = [cut, 3, 2048]
            assert _decode("zigbee", stream, sizes) == _REFERENCE[("zigbee", "clean")]

    def test_split_exactly_at_frame_boundaries(self):
        stream = _STREAMS["sledzig"]["clean"]
        frame_size = stream.size - 600
        for cut in (300, 300 + frame_size, 300 + frame_size - 1):
            sizes = [cut, 1024]
            assert _decode("sledzig", stream, sizes) == _REFERENCE[
                ("sledzig", "clean")
            ]
