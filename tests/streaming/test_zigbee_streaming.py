"""ZigBee streaming front end: streams, flush recovery, truncated tails."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import TruncatedFrameError
from repro.streaming import DropEvent, FrameEvent, iter_chunks
from repro.zigbee.receiver import ZigbeeReceiver, decode_frames
from repro.zigbee.streaming import ZigbeeStreamReceiver, sync_capture
from repro.zigbee.transmitter import encode_frames


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(42)
    psdus = [
        bytes(rng.integers(0, 256, size=n, dtype=np.uint8)) for n in (20, 36, 20)
    ]
    return psdus, encode_frames(psdus)


def _stream(waveforms, gap=400):
    silence = np.zeros(gap, dtype=np.complex128)
    pieces = [silence]
    for w in waveforms:
        pieces.extend([w, silence])
    return np.concatenate(pieces)


class TestStreamDecode:
    def test_multi_frame_stream_decodes_every_frame_in_order(self, frames):
        psdus, waveforms = frames
        receiver = ZigbeeStreamReceiver()
        decoded, drops = receiver.receive_stream(
            iter_chunks(_stream(waveforms), 1024)
        )
        assert not drops
        assert [bytes(d.frame.psdu) for d in decoded] == psdus

    def test_stream_results_match_batch_receiver(self, frames):
        psdus, waveforms = frames
        receiver = ZigbeeStreamReceiver()
        decoded, _ = receiver.receive_stream(iter_chunks(_stream(waveforms), 777))
        batch = ZigbeeReceiver().receive_frames(waveforms)
        for stream_rec, batch_rec in zip(decoded, batch):
            assert stream_rec.frame.psdu == batch_rec.frame.psdu
            assert stream_rec.symbol_scores == pytest.approx(
                batch_rec.symbol_scores
            )

    def test_frame_ending_exactly_at_capture_end_is_recovered(self, frames):
        """The satellite case: the capture ends exactly where the frame
        does, so nothing arrives after the payload.  The sync stage must
        defer the decision until the last sample, then deliver the frame
        rather than discard the buffered tail."""
        psdus, waveforms = frames
        stream = np.concatenate([np.zeros(250, dtype=complex), waveforms[0]])
        receiver = ZigbeeStreamReceiver()
        events = receiver.push(stream[:-1])
        assert not any(isinstance(e, FrameEvent) for e in events)
        events = receiver.push(stream[-1:])
        events += receiver.flush()
        got = [e for e in events if isinstance(e, FrameEvent)]
        assert len(got) == 1
        assert bytes(got[0].result.frame.psdu) == psdus[0]
        assert not any(isinstance(e, DropEvent) for e in events)


class TestTypedDrops:
    def test_missing_tail_surfaces_as_truncated_frame_drop(self, frames):
        _, waveforms = frames
        cut = waveforms[0][: waveforms[0].size - 600]
        receiver = ZigbeeStreamReceiver()
        with telemetry.collect() as tel:
            decoded, drops = receiver.receive_stream(iter_chunks(cut, 512))
        assert decoded == []
        assert len(drops) == 1
        assert drops[0].cause == "TruncatedFrameError"
        assert isinstance(drops[0].error, TruncatedFrameError)
        assert (
            tel.snapshot().counters["zigbee.stream.drop.TruncatedFrameError"] == 1
        )

    def test_stream_cut_before_phr_is_also_truncated(self, frames):
        _, waveforms = frames
        cut = waveforms[0][:900]  # inside the SHR, before the PHR despreads
        receiver = ZigbeeStreamReceiver()
        decoded, drops = receiver.receive_stream([cut])
        assert decoded == []
        assert [d.cause for d in drops] == ["TruncatedFrameError"]

    def test_legacy_batch_truncation_now_typed(self, frames):
        """The legacy despread path reports the same typed cause."""
        _, waveforms = frames
        cut = waveforms[0][: waveforms[0].size - 600]
        with pytest.raises(TruncatedFrameError):
            ZigbeeReceiver().receive(cut, start_sample=0)


class TestFullBufferAdapter:
    def test_decode_frames_roundtrip(self, frames):
        psdus, waveforms = frames
        assert decode_frames(waveforms) == psdus

    def test_sync_capture_cuts_exact_length_windows(self, frames):
        psdus, waveforms = frames
        windows, drops = sync_capture(_stream([waveforms[0]]))
        assert not drops and len(windows) == 1
        assert windows[0].psdu_octets == len(psdus[0])
        # Exact announced length: 12 header symbols + 2 per octet, at
        # 32 chips/symbol and 4 samples/chip, plus the matched filter's
        # trailing half-pulse.
        n_chips = (12 + 2 * len(psdus[0])) * 32
        assert windows[0].window.size == n_chips * 4 + 4

    def test_truncated_capture_raises_typed_error(self, frames):
        _, waveforms = frames
        cut = waveforms[0][: waveforms[0].size - 600]
        with pytest.raises(TruncatedFrameError):
            decode_frames([cut])
