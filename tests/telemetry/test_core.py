"""The telemetry core: counters/gauges/timers, snapshot-merge discipline."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    Histogram,
    Snapshot,
    Telemetry,
    append_line,
    config_digest,
    run_record,
)


class TestHistogram:
    def test_observe_tracks_moments(self):
        hist = Histogram()
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0
        assert hist.mean == 2.0

    def test_merge_is_exact(self):
        a, b, whole = Histogram(), Histogram(), Histogram()
        for v in (1.0, 5.0):
            a.observe(v)
            whole.observe(v)
        for v in (0.5, 2.0):
            b.observe(v)
            whole.observe(v)
        a.merge(b)
        assert a == whole

    def test_empty_jsonable(self):
        assert Histogram().to_jsonable()["count"] == 0


class TestTelemetry:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.count("x")
        tel.count("x", 2)
        tel.count("y", 0.5)
        assert tel.counters == {"x": 3, "y": 0.5}

    def test_gauge_last_write_wins(self):
        tel = Telemetry()
        tel.gauge("g", 1.0)
        tel.gauge("g", 2.5)
        assert tel.gauges["g"] == 2.5

    def test_span_records_elapsed_seconds(self):
        tel = Telemetry()
        with tel.span("stage"):
            pass
        hist = tel.timers["stage"]
        assert hist.count == 1
        assert hist.total >= 0.0

    def test_span_records_even_on_error(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("stage"):
                raise ValueError("boom")
        assert tel.timers["stage"].count == 1

    def test_reset_clears_everything(self):
        tel = Telemetry()
        tel.count("c")
        tel.gauge("g", 1.0)
        tel.observe("t", 0.1)
        tel.reset()
        assert not tel.counters and not tel.gauges and not tel.timers


class TestSnapshotMerge:
    def _snap(self, **counters):
        tel = Telemetry()
        for name, n in counters.items():
            tel.count(name, n)
        return tel.snapshot()

    def test_merge_sums_counters(self):
        parent = Telemetry()
        parent.merge(self._snap(a=1, b=2))
        parent.merge(self._snap(a=3))
        assert parent.counters == {"a": 4, "b": 2}

    def test_merge_order_equals_serial_for_counters(self):
        # The determinism contract: merging per-batch snapshots in batch
        # order produces exactly the counters of one serial collector.
        serial = Telemetry()
        parent = Telemetry()
        for batch in range(4):
            with telemetry.collect() as worker:
                worker.count("trials", batch + 1)
                worker.count("batches")
                serial.count("trials", batch + 1)
                serial.count("batches")
            parent.merge(worker.snapshot())
        assert parent.snapshot().deterministic() == serial.snapshot().deterministic()

    def test_merge_combines_timers(self):
        a, b = Telemetry(), Telemetry()
        a.observe("t", 1.0)
        b.observe("t", 3.0)
        parent = Telemetry()
        parent.merge(a.snapshot())
        parent.merge(b.snapshot())
        assert parent.timers["t"].count == 2
        assert parent.timers["t"].mean == 2.0

    def test_deterministic_view_excludes_timers(self):
        tel = Telemetry()
        tel.count("c")
        tel.observe("t", 0.25)
        view = tel.snapshot().deterministic()
        assert view == {"counters": {"c": 1}, "gauges": {}}

    def test_drop_causes_filters_counters(self):
        tel = Telemetry()
        tel.count("wifi.rx.drop.DecodingError", 2)
        tel.count("wifi.rx.frames", 5)
        assert tel.snapshot().drop_causes() == {"wifi.rx.drop.DecodingError": 2}

    def test_snapshot_is_independent_copy(self):
        tel = Telemetry()
        tel.count("c")
        tel.observe("t", 1.0)
        snap = tel.snapshot()
        tel.count("c")
        tel.observe("t", 2.0)
        assert snap.counters["c"] == 1
        assert snap.timers["t"].count == 1

    def test_snapshot_merge_returns_self(self):
        snap = Snapshot(counters={"a": 1})
        merged = snap.merge(Snapshot(counters={"a": 2}))
        assert merged is snap and snap.counters["a"] == 3


class TestContext:
    def test_collect_isolates_from_parent(self):
        outer = telemetry.current()
        before = dict(outer.counters)
        with telemetry.collect() as tel:
            tel.count("inner")
            assert telemetry.current() is tel
        assert telemetry.current() is outer
        assert outer.counters == before

    def test_use_nests(self):
        a, b = Telemetry(), Telemetry()
        with telemetry.use(a):
            with telemetry.use(b):
                telemetry.current().count("x")
            telemetry.current().count("y")
        assert b.counters == {"x": 1}
        assert a.counters == {"y": 1}


class TestManifest:
    def test_config_digest_is_stable_and_order_free(self):
        a = config_digest({"seed": 1, "quick": False})
        b = config_digest({"quick": False, "seed": 1})
        assert a == b
        assert len(a) == 16
        assert a != config_digest({"seed": 2, "quick": False})

    def test_run_record_carries_drops_and_timings(self):
        tel = Telemetry()
        tel.count("zigbee.rx.drop.SynchronizationError", 3)
        tel.observe("zigbee.rx.decode", 0.5)
        record = run_record(
            "waterfall",
            config={"experiment": "waterfall", "seed": 7},
            seconds=1.234,
            snapshot=tel.snapshot(),
            experiment_id="Ext-1",
            title="SNR waterfall",
        )
        assert record["status"] == "ok"
        assert record["drops"] == {"zigbee.rx.drop.SynchronizationError": 3}
        assert record["timings"]["zigbee.rx.decode"]["count"] == 1
        assert record["config_digest"] == config_digest(
            {"experiment": "waterfall", "seed": 7}
        )
        json.dumps(record)  # must be serialisable as-is

    def test_failed_record_has_error(self):
        record = run_record(
            "t3", config={}, seconds=0.1, status="failed",
            error="TypeError: boom",
        )
        assert record["status"] == "failed"
        assert "TypeError" in record["error"]
        assert "counters" not in record

    def test_append_line_is_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        append_line(str(path), {"a": 1})
        append_line(str(path), {"b": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1}, {"b": 2}]
