"""Instrumented hot paths: drop-cause counters, engine/MAC/runner metrics,
and the serial-vs-workers merge determinism the snapshot model guarantees."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import telemetry
from repro.experiments.runner import run_experiments
from repro.mac.config import CoexistenceConfig
from repro.mac.simulator import run_coexistence
from repro.montecarlo import MonteCarloEngine
from repro.utils.bits import random_bits
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.receiver import ZigbeeReceiver
from repro.zigbee.transmitter import ZigbeeTransmitter


def _draw_trial(rng, index):
    # Module-level so worker processes can pickle it.
    return float(rng.uniform())


class TestReceiverCounters:
    def test_zigbee_drops_counted_by_cause(self):
        frame = ZigbeeTransmitter().send(b"payload-1").waveform
        noise = np.zeros(4096, dtype=np.complex128)
        bad = np.full(4096, np.nan + 0j)
        with telemetry.collect() as tel:
            results = ZigbeeReceiver().receive_frames(
                [frame, noise, bad], on_error="none"
            )
        assert results[0] is not None
        assert results[1] is None and results[2] is None
        counters = tel.counters
        assert counters["zigbee.rx.frames"] == 3
        assert counters["zigbee.rx.ok"] == 1
        assert counters["zigbee.rx.drop.SynchronizationError"] == 1
        assert counters["zigbee.rx.drop.InvalidWaveformError"] == 1
        assert "zigbee.rx.sync" in tel.timers
        assert "zigbee.rx.decode" in tel.timers

    def test_wifi_drops_counted_by_cause(self):
        rng = np.random.default_rng(7)
        frame = WifiTransmitter("qpsk-1/2").transmit(random_bits(8 * 30, rng))
        bad = np.full(frame.waveform.size, np.inf + 0j)
        with telemetry.collect() as tel:
            results = WifiReceiver().receive_frames(
                [frame.waveform, bad], on_error="none"
            )
        assert results[0] is not None and results[1] is None
        assert tel.counters["wifi.rx.frames"] == 2
        assert tel.counters["wifi.rx.ok"] == 1
        assert tel.counters["wifi.rx.drop.InvalidWaveformError"] == 1
        assert "wifi.rx.front_end" in tel.timers
        assert "wifi.rx.bit_domain" in tel.timers

    def test_drop_counted_even_when_raising(self):
        bad = np.full(256, np.nan + 0j)
        with telemetry.collect() as tel:
            with pytest.raises(Exception):
                ZigbeeReceiver().receive_frames([bad], on_error="raise")
        assert tel.counters["zigbee.rx.drop.InvalidWaveformError"] == 1


class TestEngineTelemetry:
    def test_batch_and_trial_counters(self):
        engine = MonteCarloEngine("telemetry/engine", master_seed=3)
        with telemetry.collect() as tel:
            engine.run(_draw_trial, 10, batch_size=4)
        assert tel.counters["montecarlo.batches"] == 3
        assert tel.counters["montecarlo.trials"] == 10
        assert tel.timers["montecarlo.batch"].count == 3
        assert "montecarlo.early_stops" not in tel.counters

    def test_early_stop_counted(self):
        engine = MonteCarloEngine("telemetry/stop", master_seed=3)
        with telemetry.collect() as tel:
            result = engine.run(
                _draw_trial, 64, batch_size=8,
                target_halfwidth=0.5, min_trials=8,
            )
        assert result.stopped_early
        assert tel.counters["montecarlo.early_stops"] == 1

    def test_workers_merge_bit_identical_with_serial(self):
        engine = MonteCarloEngine("telemetry/workers", master_seed=11)
        with telemetry.collect() as serial_tel:
            serial = engine.run(_draw_trial, 24, batch_size=4, workers=0)
        with telemetry.collect() as worker_tel:
            parallel = engine.run(_draw_trial, 24, batch_size=4, workers=3)
        assert np.array_equal(serial.outcomes, parallel.outcomes)
        assert (
            serial_tel.snapshot().deterministic()
            == worker_tel.snapshot().deterministic()
        )


class TestMacTelemetry:
    def test_run_exports_occupancy_and_backoff_counters(self):
        config = CoexistenceConfig(duration_us=30_000.0, seed=9)
        with telemetry.collect() as tel:
            result = run_coexistence(config)
        counters = tel.counters
        assert counters["mac.runs"] == 1
        assert counters["mac.duration_us"] == 30_000.0
        assert counters["mac.zigbee.cca_attempts"] == result.zigbee.cca_attempts
        assert counters["mac.zigbee.packets_attempted"] == result.zigbee.packets_attempted
        assert counters["mac.wifi.airtime_us"] == result.wifi.airtime_us
        assert tel.gauges["mac.wifi.occupancy"] == pytest.approx(
            result.wifi.airtime_us / 30_000.0
        )


class TestRunnerTelemetry:
    KW = dict(quick=True, master_seed=123)

    def test_workers_merge_equals_serial(self, capsys):
        with telemetry.collect() as serial_tel:
            run_experiments(["xtech"], workers=0, **self.KW)
        with telemetry.collect() as worker_tel:
            run_experiments(["xtech"], workers=2, **self.KW)
        capsys.readouterr()
        serial = serial_tel.snapshot().deterministic()
        merged = worker_tel.snapshot().deterministic()
        assert serial["counters"]  # the experiment actually reported metrics
        assert serial == merged

    def test_metrics_out_writes_manifest(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        run_experiments(["theory", "t3"], metrics_out=str(path))
        capsys.readouterr()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [line["experiment"] for line in lines] == ["theory", "t3"]
        for line in lines:
            assert line["status"] == "ok"
            assert line["config_digest"]
            assert "counters" in line and "timings" in line and "drops" in line
