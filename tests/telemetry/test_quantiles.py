"""Reservoir/percentile unit tests: exactness, bounds, determinism."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.telemetry.quantiles import Reservoir, percentile


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for q in (0, 25, 50, 75, 90, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=64),
           st.floats(min_value=0, max_value=100))
    def test_always_within_min_max(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)


class TestReservoir:
    def test_exact_below_cap(self):
        res = Reservoir(cap=128)
        for v in range(100):
            res.observe(float(v))
        assert res.count == 100
        assert res.stride == 1
        assert res.percentile(50) == pytest.approx(
            float(np.percentile(range(100), 50))
        )

    def test_retained_samples_bounded(self):
        res = Reservoir(cap=64)
        for v in range(10_000):
            res.observe(float(v))
        assert res.count == 10_000
        assert len(res.samples) <= 64
        assert res.stride > 1

    def test_decimation_is_deterministic(self):
        a, b = Reservoir(cap=32), Reservoir(cap=32)
        values = np.random.default_rng(5).normal(size=1000)
        for v in values:
            a.observe(float(v))
            b.observe(float(v))
        assert a.samples == b.samples
        assert a.stride == b.stride

    def test_decimated_percentiles_stay_representative(self):
        res = Reservoir(cap=256)
        for v in range(100_000):
            res.observe(float(v))
        # Evenly strided retention: percentiles stay within a few percent.
        assert res.percentile(50) == pytest.approx(50_000, rel=0.05)
        assert res.percentile(99) == pytest.approx(99_000, rel=0.05)

    def test_jsonable_shape(self):
        res = Reservoir()
        res.observe(1.0)
        res.observe(3.0)
        summary = res.to_jsonable()
        assert summary["count"] == 2
        assert summary["p50"] == pytest.approx(2.0)
        assert summary["p99"] <= summary["max"] == 3.0

    def test_empty_jsonable(self):
        summary = Reservoir().to_jsonable()
        assert summary == {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
                           "max": 0.0}

    def test_tiny_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            Reservoir(cap=1)


class TestEdgeCases:
    """Empty / single-sample pins: a zero-request run must stay sane."""

    def test_empty_percentiles_never_raise(self):
        res = Reservoir()
        for q in (0.0, 50.0, 99.0, 100.0):
            assert res.percentile(q) == 0.0

    def test_single_sample_every_percentile_is_the_sample(self):
        res = Reservoir()
        res.observe(0.125)
        for q in (0.0, 50.0, 90.0, 99.0, 100.0):
            assert res.percentile(q) == 0.125
        summary = res.to_jsonable()
        assert summary == {"count": 1, "p50": 0.125, "p90": 0.125,
                           "p99": 0.125, "max": 0.125}

    def test_out_of_range_q_still_typed_on_empty(self):
        with pytest.raises(ConfigurationError):
            Reservoir().percentile(101)

    def test_non_finite_observation_rejected(self):
        # A NaN latency sorts unpredictably and poisons every percentile
        # forever after; the reservoir rejects it at the door instead.
        res = Reservoir()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                res.observe(bad)
        assert res.count == 0 and res.samples == []

    def test_minimum_cap_single_and_empty(self):
        res = Reservoir(cap=2)
        assert res.to_jsonable()["count"] == 0
        res.observe(7.0)
        assert res.percentile(50) == 7.0

    def test_zero_request_slo_shape_passes_manifest_lint(self):
        """An empty reservoir's summary must satisfy check_manifest's SLO
        lint inside a full, digest-consistent run record."""
        from repro import telemetry
        from repro.tools.check_manifest import lint_record

        with telemetry.collect() as tel:
            tel.count("gateway.requests", 0)
        record = telemetry.run_record(
            "gateway",
            config={"experiment": "gateway", "quick": True},
            seconds=0.0,
            snapshot=tel.snapshot(),
            extra={
                "slo": {
                    "latency_s": Reservoir().to_jsonable(),
                    "batch_fill": {},
                    "requests": 0,
                    "encoded": 0,
                    "drops": {},
                }
            },
        )
        assert lint_record(record, "zero-request") == []
