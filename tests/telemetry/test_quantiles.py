"""Reservoir/percentile unit tests: exactness, bounds, determinism."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.telemetry.quantiles import Reservoir, percentile


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for q in (0, 25, 50, 75, 90, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=64),
           st.floats(min_value=0, max_value=100))
    def test_always_within_min_max(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)


class TestReservoir:
    def test_exact_below_cap(self):
        res = Reservoir(cap=128)
        for v in range(100):
            res.observe(float(v))
        assert res.count == 100
        assert res.stride == 1
        assert res.percentile(50) == pytest.approx(
            float(np.percentile(range(100), 50))
        )

    def test_retained_samples_bounded(self):
        res = Reservoir(cap=64)
        for v in range(10_000):
            res.observe(float(v))
        assert res.count == 10_000
        assert len(res.samples) <= 64
        assert res.stride > 1

    def test_decimation_is_deterministic(self):
        a, b = Reservoir(cap=32), Reservoir(cap=32)
        values = np.random.default_rng(5).normal(size=1000)
        for v in values:
            a.observe(float(v))
            b.observe(float(v))
        assert a.samples == b.samples
        assert a.stride == b.stride

    def test_decimated_percentiles_stay_representative(self):
        res = Reservoir(cap=256)
        for v in range(100_000):
            res.observe(float(v))
        # Evenly strided retention: percentiles stay within a few percent.
        assert res.percentile(50) == pytest.approx(50_000, rel=0.05)
        assert res.percentile(99) == pytest.approx(99_000, rel=0.05)

    def test_jsonable_shape(self):
        res = Reservoir()
        res.observe(1.0)
        res.observe(3.0)
        summary = res.to_jsonable()
        assert summary["count"] == 2
        assert summary["p50"] == pytest.approx(2.0)
        assert summary["p99"] <= summary["max"] == 3.0

    def test_empty_jsonable(self):
        summary = Reservoir().to_jsonable()
        assert summary == {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
                           "max": 0.0}

    def test_tiny_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            Reservoir(cap=1)
