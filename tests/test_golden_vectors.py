"""Golden-vector regression: current output must match the frozen corpus.

The corpus under ``tests/vectors/`` freezes end-to-end artefacts (bit
streams exactly, waveforms to double precision).  A failure here means the
encode chains changed behaviour; if the change is intentional, regenerate
with ``python -m repro.tools.regen_vectors`` and commit the new vectors.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.sledzig.pipeline import SledZigReceiver
from repro.tools import regen_vectors
from repro.wifi.receiver import WifiReceiver
from repro.zigbee.receiver import ZigbeeReceiver

VECTOR_DIR = Path(__file__).parent / "vectors"

REGEN_HINT = (
    "golden vector mismatch — if the encode chain changed intentionally, "
    "run `python -m repro.tools.regen_vectors` and commit the new corpus"
)


def load(name):
    path = VECTOR_DIR / f"{name}.npz"
    assert path.exists(), f"missing corpus file {path}; run regen_vectors"
    with np.load(path) as data:
        return {key: data[key] for key in data.files}


def assert_same(current, frozen, label):
    assert current.shape == frozen.shape, f"{label}: shape changed; {REGEN_HINT}"
    if np.issubdtype(frozen.dtype, np.complexfloating) or np.issubdtype(
        frozen.dtype, np.floating
    ):
        np.testing.assert_allclose(
            current, frozen, rtol=0, atol=1e-10, err_msg=f"{label}: {REGEN_HINT}"
        )
    else:
        assert np.array_equal(current, frozen), f"{label}: {REGEN_HINT}"


@pytest.mark.parametrize("name", sorted(regen_vectors.BUILDERS))
def test_regenerated_arrays_match_corpus(name):
    frozen = load(name)
    current = regen_vectors.BUILDERS[name]()
    assert sorted(current) == sorted(frozen), f"{name}: array set changed"
    for key in frozen:
        assert_same(np.asarray(current[key]), frozen[key], f"{name}/{key}")


def test_manifest_matches_corpus():
    with open(VECTOR_DIR / "manifest.json") as fh:
        manifest = json.load(fh)
    assert manifest["corpus_seed"] == regen_vectors.CORPUS_SEED
    assert sorted(manifest["vectors"]) == sorted(regen_vectors.BUILDERS)
    for name, entry in manifest["vectors"].items():
        arrays = load(name)
        assert entry["spec"] == regen_vectors.SPECS[name]
        for key, meta in entry["arrays"].items():
            assert list(arrays[key].shape) == meta["shape"]
            assert str(arrays[key].dtype) == meta["dtype"]


def test_wifi_vector_decodes_to_frozen_psdu():
    vec = load("wifi_roundtrip")
    reception = WifiReceiver().receive(vec["waveform"])
    assert np.array_equal(reception.psdu_bits, vec["psdu_bits"])


def test_zigbee_vector_decodes_to_frozen_psdu():
    vec = load("zigbee_roundtrip")
    reception = ZigbeeReceiver().receive(vec["waveform"])
    assert reception.frame.psdu == vec["psdu"].tobytes()


def test_sledzig_vector_decodes_to_frozen_payload():
    vec = load("sledzig_insertion")
    spec = regen_vectors.SPECS["sledzig_insertion"]
    packet = SledZigReceiver(spec["channel"]).receive(vec["waveform"])
    assert packet.payload == vec["payload"].tobytes()


def test_impaired_wifi_vector_decodes_to_frozen_psdu():
    """The hardened receiver recovers the frozen CFO+multipath frame."""
    vec = load("impaired_wifi")
    reception = WifiReceiver().receive(vec["waveform"], data_start=320, soft=True)
    assert np.array_equal(reception.psdu_bits, vec["psdu_bits"])


def test_impaired_zigbee_vector_decodes_to_frozen_psdu():
    """The CFO-correcting O-QPSK receiver recovers the frozen frame."""
    vec = load("impaired_zigbee")
    reception = ZigbeeReceiver().receive(vec["waveform"], correct_cfo=True)
    assert reception.frame.psdu == vec["psdu"].tobytes()


def test_manifest_records_kernel_backends():
    from repro import kernels

    with open(VECTOR_DIR / "manifest.json") as fh:
        manifest = json.load(fh)
    report = manifest["kernel_backends"]
    assert sorted(report) == sorted(kernels.KERNEL_NAMES)
    declared = kernels.available_backends()
    assert all(backend in declared for backend in report.values())


def test_regenerate_roundtrip_and_manifest_only(tmp_path):
    """Full regen to a scratch dir, then a manifest-only pass over it."""
    manifest = regen_vectors.regenerate(tmp_path)
    assert sorted(manifest["vectors"]) == sorted(regen_vectors.BUILDERS)
    assert "kernel_backends" in manifest
    for entry in manifest["vectors"].values():
        assert (tmp_path / entry["file"]).exists()
    # Manifest-only: verifies the data it just wrote, touches no .npz.
    before = {
        p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.npz")
    }
    regen_vectors.regenerate(tmp_path, manifest_only=True)
    after = {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.npz")}
    assert after == before


def test_manifest_only_rejects_drifted_vector(tmp_path):
    regen_vectors.regenerate(tmp_path)
    victim = tmp_path / "wifi_roundtrip.npz"
    with np.load(victim) as vec:
        arrays = {k: vec[k].copy() for k in vec.files}
    arrays["psdu_bits"] = arrays["psdu_bits"] ^ 1
    np.savez_compressed(victim, **arrays)
    with pytest.raises(SystemExit, match="no longer matches"):
        regen_vectors.regenerate(tmp_path, manifest_only=True)


def test_manifest_only_requires_existing_corpus(tmp_path):
    with pytest.raises(SystemExit, match="missing"):
        regen_vectors.regenerate(tmp_path / "empty", manifest_only=True)
