"""Shared fixtures for the SledZig reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG so failures reproduce exactly."""
    return np.random.default_rng(12345)


@pytest.fixture(params=["qam16-1/2", "qam64-2/3", "qam256-3/4"])
def qam_mcs_name(request) -> str:
    """One representative MCS per QAM order."""
    return request.param


@pytest.fixture(params=["CH1", "CH2", "CH3", "CH4"])
def channel_name(request) -> str:
    """All four overlap channels."""
    return request.param
