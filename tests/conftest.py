"""Shared fixtures for the SledZig reproduction test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

# Seed-pinned hypothesis profile for CI: derandomize makes every property
# test draw the same examples on every run, so a red CI is reproducible
# locally with HYPOTHESIS_PROFILE=ci.  The default profile stays fully
# random for local exploration.
settings.register_profile("ci", derandomize=True, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG so failures reproduce exactly."""
    return np.random.default_rng(12345)


@pytest.fixture(params=["qam16-1/2", "qam64-2/3", "qam256-3/4"])
def qam_mcs_name(request) -> str:
    """One representative MCS per QAM order."""
    return request.param


@pytest.fixture(params=["CH1", "CH2", "CH3", "CH4"])
def channel_name(request) -> str:
    """All four overlap channels."""
    return request.param
