"""Policy/profile validation and warm batch-encoder equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gateway import BatchPolicy, EncodeProfile, make_batch_encoder
from repro.sledzig.pipeline import encode_frames as sledzig_encode_frames
from repro.utils.bits import bytes_to_bits
from repro.wifi.transmitter import encode_frames as wifi_encode_frames


class TestBatchPolicy:
    def test_defaults_valid(self):
        policy = BatchPolicy()
        assert policy.max_batch >= 1
        assert policy.max_pending >= 1

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_batch": -3},
        {"max_linger_s": -0.1},
        {"max_pending": 0},
    ])
    def test_invalid_bounds_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchPolicy(**kwargs)


class TestEncodeProfile:
    def test_unknown_technology_raises(self):
        with pytest.raises(ConfigurationError):
            EncodeProfile(technology="lora")

    def test_custom_encode_fn_bypasses_technology_check(self):
        profile = EncodeProfile(technology="anything", encode_fn=len)
        assert profile.encode_fn is len

    def test_key_distinguishes_profiles(self):
        a = EncodeProfile(mcs="qam16-1/2", channel="CH1")
        b = EncodeProfile(mcs="qam16-1/2", channel="CH2")
        c = EncodeProfile(mcs="qam64-2/3", channel="CH1")
        assert len({a.key(), b.key(), c.key()}) == 3


class TestMakeBatchEncoder:
    def test_sledzig_encoder_matches_direct_api(self):
        profile = EncodeProfile(technology="sledzig", mcs="qam16-1/2",
                                channel="CH1")
        encoder = make_batch_encoder(profile)
        payloads = [bytes([i] * 8) for i in range(5)]
        direct = sledzig_encode_frames(payloads, profile.mcs, profile.channel,
                                       profile.scrambler_seed)
        for got, want in zip(encoder(payloads), direct):
            np.testing.assert_array_equal(got, want)

    def test_wifi_encoder_matches_direct_api(self):
        profile = EncodeProfile(technology="wifi", mcs="qam16-1/2")
        encoder = make_batch_encoder(profile)
        payloads = [bytes([i] * 6) for i in range(4)]
        direct = wifi_encode_frames(
            [bytes_to_bits(p) for p in payloads], profile.mcs,
            profile.scrambler_seed,
        )
        for got, want in zip(encoder(payloads), direct):
            np.testing.assert_array_equal(got, want)

    def test_encoder_is_reusable_across_batches(self):
        encoder = make_batch_encoder(EncodeProfile())
        first = encoder([b"\x01\x02"])
        second = encoder([b"\x01\x02"])
        np.testing.assert_array_equal(first[0], second[0])
