"""Worker-pool contract: warm hand-off, bounded task pickles, round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gateway import EncodeProfile, EncodeWorkerPool, task_bytes
from repro.sledzig.pipeline import encode_frames

#: A generous ceiling for one task's pickled argument bytes: the profile
#: index plus the payload bytes themselves, never tables or transmitters.
TASK_PICKLE_CEILING = 4096


class TestTaskBytes:
    def test_task_carries_only_index_and_payloads(self):
        payloads = [bytes(8) for _ in range(32)]
        size = task_bytes(0, payloads)
        assert size < TASK_PICKLE_CEILING

    def test_task_bytes_scale_with_payloads_not_tables(self):
        small = task_bytes(0, [bytes(8)])
        large = task_bytes(0, [bytes(8)] * 64)
        # Payload bytes dominate; there is no fixed multi-kilobyte state.
        assert large - small < 64 * (8 + 64)
        assert small < 256


class TestInlinePool:
    def test_inline_submit_is_done_and_correct(self):
        profile = EncodeProfile()
        pool = EncodeWorkerPool([profile], workers=0)
        payloads = [bytes([7] * 8)]
        future = pool.submit(0, payloads)
        assert future.done()
        direct = encode_frames(payloads, profile.mcs, profile.channel,
                               profile.scrambler_seed)
        np.testing.assert_array_equal(future.result()[0], direct[0])

    def test_inline_encoder_is_built_once(self):
        pool = EncodeWorkerPool([EncodeProfile()], workers=0)
        pool.submit(0, [b"\x01"]).result()
        first = pool._inline[0]
        pool.submit(0, [b"\x02"]).result()
        assert pool._inline[0] is first

    def test_unknown_profile_index_raises(self):
        pool = EncodeWorkerPool([EncodeProfile()], workers=0)
        with pytest.raises(ConfigurationError):
            pool.submit(3, [b"x"])

    def test_profile_index_of_unregistered_profile_raises(self):
        pool = EncodeWorkerPool([EncodeProfile()], workers=0)
        with pytest.raises(ConfigurationError):
            pool.profile_index(EncodeProfile(channel="CH3"))

    def test_empty_profiles_raise(self):
        with pytest.raises(ConfigurationError):
            EncodeWorkerPool([], workers=0)

    def test_duplicate_profiles_raise(self):
        with pytest.raises(ConfigurationError):
            EncodeWorkerPool([EncodeProfile(), EncodeProfile()], workers=0)


class TestProcessPool:
    def test_process_round_trip_matches_inline(self):
        profile = EncodeProfile()
        pool = EncodeWorkerPool([profile], workers=1)
        try:
            payloads = [bytes([i] * 8) for i in range(4)]
            via_pool = pool.submit(0, payloads).result(timeout=60)
            direct = encode_frames(payloads, profile.mcs, profile.channel,
                                   profile.scrambler_seed)
            for got, want in zip(via_pool, direct):
                np.testing.assert_array_equal(got, want)
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent(self):
        pool = EncodeWorkerPool([EncodeProfile()], workers=1)
        pool.shutdown()
        pool.shutdown()
