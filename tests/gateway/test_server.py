"""Gateway serving semantics: coalescing, SLOs, lifecycle, telemetry."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ConfigurationError, GatewayShutdownError
from repro.gateway import (
    BatchPolicy,
    EncodeProfile,
    GatewayClient,
    GatewayServer,
)
from repro.sledzig.pipeline import encode_frames

PROFILE = EncodeProfile(technology="sledzig", mcs="qam16-1/2", channel="CH1")


def run(coro):
    return asyncio.run(coro)


class TestServing:
    def test_single_request_round_trip(self):
        async def main():
            async with GatewayServer(PROFILE) as gateway:
                return await gateway.submit(b"\x2a" * 8)

        waveform = run(main())
        direct = encode_frames([b"\x2a" * 8], PROFILE.mcs, PROFILE.channel,
                               PROFILE.scrambler_seed)
        np.testing.assert_array_equal(waveform, direct[0])

    def test_client_encode_many_in_submission_order(self):
        payloads = [bytes([i] * 8) for i in range(12)]

        async def main():
            policy = BatchPolicy(max_batch=5, max_linger_s=0.001)
            async with GatewayServer(PROFILE, policy) as gateway:
                return await GatewayClient(gateway).encode_many(payloads)

        waveforms = run(main())
        direct = encode_frames(payloads, PROFILE.mcs, PROFILE.channel,
                               PROFILE.scrambler_seed)
        assert len(waveforms) == len(direct)
        for got, want in zip(waveforms, direct):
            np.testing.assert_array_equal(got, want)

    def test_batches_never_exceed_max_batch(self):
        async def main():
            policy = BatchPolicy(max_batch=4, max_linger_s=0.001)
            async with GatewayServer(PROFILE, policy) as gateway:
                await GatewayClient(gateway).encode_many(
                    [bytes([i]) for i in range(11)]
                )
                return gateway.slo_snapshot()

        slo = run(main())
        fills = {int(size): count for size, count in slo["batch_fill"].items()}
        assert max(fills) <= 4
        assert sum(size * count for size, count in fills.items()) == 11

    def test_multi_profile_batches_never_mix(self):
        wifi = EncodeProfile(technology="wifi", mcs="qam16-1/2")

        async def main():
            async with GatewayServer([PROFILE, wifi]) as gateway:
                sled = GatewayClient(gateway, PROFILE)
                plain = GatewayClient(gateway, wifi)
                a, b = await asyncio.gather(
                    sled.encode_many([bytes([i] * 8) for i in range(3)]),
                    plain.encode_many([bytes([i] * 8) for i in range(3)]),
                )
                return a, b

        sled_waves, wifi_waves = run(main())
        sled_direct = encode_frames([bytes([i] * 8) for i in range(3)],
                                    PROFILE.mcs, PROFILE.channel,
                                    PROFILE.scrambler_seed)
        for got, want in zip(sled_waves, sled_direct):
            np.testing.assert_array_equal(got, want)
        # WiFi waveforms come from a different chain; just check shape sanity.
        assert all(w.dtype == np.complex128 for w in wifi_waves)


class TestSlo:
    def test_counts_balance_and_telemetry_agrees(self):
        async def main():
            with telemetry.collect() as tel:
                async with GatewayServer(PROFILE) as gateway:
                    await GatewayClient(gateway).encode_many(
                        [bytes([i] * 4) for i in range(9)]
                    )
                    slo = gateway.slo_snapshot()
                return slo, tel.snapshot()

        slo, snapshot = run(main())
        assert slo["requests"] == 9
        assert slo["encoded"] == 9
        assert slo["drops"] == {}
        assert snapshot.counters["gateway.requests"] == 9
        assert snapshot.counters["gateway.ok"] == 9
        assert snapshot.gauges["gateway.latency.p50_ms"] > 0
        assert slo["latency_s"]["count"] == 9
        assert slo["latency_s"]["p99"] >= slo["latency_s"]["p50"] > 0

    def test_queue_high_water_tracks_burst(self):
        async def main():
            policy = BatchPolicy(max_batch=4, max_linger_s=0.001,
                                 max_pending=64)
            async with GatewayServer(PROFILE, policy) as gateway:
                futures = [gateway.submit(bytes([i])) for i in range(10)]
                await asyncio.gather(*futures)
                return gateway.slo_snapshot()

        slo = run(main())
        assert slo["queue_high_water"] == 10


class TestLifecycle:
    def test_submit_before_start_raises(self):
        gateway = GatewayServer(PROFILE)
        with pytest.raises(ConfigurationError):
            gateway.submit(b"x")

    def test_drain_completes_pending_work(self):
        async def main():
            async with GatewayServer(PROFILE) as gateway:
                futures = [gateway.submit(bytes([i] * 4)) for i in range(6)]
                await gateway.drain()
                assert all(f.done() for f in futures)
                return [f.result() for f in futures]

        waveforms = run(main())
        assert len(waveforms) == 6

    def test_submit_after_close_raises_shutdown(self):
        async def main():
            gateway = GatewayServer(PROFILE)
            await gateway.start()
            await gateway.aclose()
            with pytest.raises(GatewayShutdownError):
                gateway.submit(b"x")

        run(main())

    def test_close_flushes_partial_batches(self):
        async def main():
            # A linger far longer than the test: only the close-time flush
            # can dispatch the partial batch.
            policy = BatchPolicy(max_batch=64, max_linger_s=30.0)
            gateway = GatewayServer(PROFILE, policy)
            await gateway.start()
            future = gateway.submit(b"\x11" * 4)
            await gateway.aclose()
            assert future.done()
            return future.result()

        waveform = run(main())
        direct = encode_frames([b"\x11" * 4], PROFILE.mcs, PROFILE.channel,
                               PROFILE.scrambler_seed)
        np.testing.assert_array_equal(waveform, direct[0])

    def test_aclose_is_idempotent(self):
        async def main():
            gateway = GatewayServer(PROFILE)
            await gateway.start()
            await gateway.aclose()
            await gateway.aclose()

        run(main())
