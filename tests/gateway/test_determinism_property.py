"""Property: gateway coalescing never changes bits.

For any set of payloads, any max-batch size 1..N, and any interleaving of
client submissions (chunked submission with event-loop yields between
chunks, shuffled client order), every waveform the gateway serves is
bit-identical to what one direct ``encode_frames`` call on the same
frames in submission order produces.
"""

from __future__ import annotations

import asyncio
from typing import List

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway import BatchPolicy, EncodeProfile, GatewayServer
from repro.sledzig.pipeline import encode_frames

PROFILE = EncodeProfile(technology="sledzig", mcs="qam16-1/2", channel="CH1")

#: Payload byte strings kept small so each example encodes quickly.
payloads_strategy = st.lists(
    st.binary(min_size=0, max_size=12), min_size=1, max_size=32
)


async def _serve(
    payloads: List[bytes], max_batch: int, chunk: int
) -> List[np.ndarray]:
    """Submit *payloads* in interleaved chunks; gather in submission order."""
    policy = BatchPolicy(max_batch=max_batch, max_linger_s=0.0005,
                         max_pending=len(payloads) + 1)
    async with GatewayServer(PROFILE, policy) as gateway:
        futures = []
        for start in range(0, len(payloads), chunk):
            futures.extend(
                gateway.submit(p) for p in payloads[start:start + chunk]
            )
            # Yield so the batcher interleaves dispatch with submission —
            # batch composition varies, results must not.
            await asyncio.sleep(0)
        return list(await asyncio.gather(*futures))


@settings(max_examples=20, deadline=None)
@given(
    payloads=payloads_strategy,
    max_batch=st.integers(min_value=1, max_value=32),
    chunk=st.integers(min_value=1, max_value=8),
)
def test_coalescing_is_bit_identical_to_direct_encode(
    payloads, max_batch, chunk
):
    served = asyncio.run(_serve(payloads, max_batch, chunk))
    direct = encode_frames(payloads, PROFILE.mcs, PROFILE.channel,
                           PROFILE.scrambler_seed)
    assert len(served) == len(direct)
    for got, want in zip(served, direct):
        np.testing.assert_array_equal(got, want)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_shuffled_multi_client_submission_is_bit_identical(data):
    """Several clients, shuffled submission order: each request's waveform
    still matches the direct encode of its own payload."""
    payloads = data.draw(payloads_strategy)
    order = data.draw(st.permutations(range(len(payloads))))
    max_batch = data.draw(st.integers(min_value=1, max_value=16))

    async def main():
        policy = BatchPolicy(max_batch=max_batch, max_linger_s=0.0005,
                             max_pending=len(payloads) + 1)
        async with GatewayServer(PROFILE, policy) as gateway:
            futures: dict = {}
            for index in order:
                futures[index] = gateway.submit(payloads[index])
            await asyncio.gather(*futures.values())
            return {i: f.result() for i, f in futures.items()}

    served = asyncio.run(main())
    direct = encode_frames(payloads, PROFILE.mcs, PROFILE.channel,
                           PROFILE.scrambler_seed)
    for index, want in enumerate(direct):
        np.testing.assert_array_equal(served[index], want)
