"""Fault injection: killed workers, stalled pools, overload, encoder bugs.

Every injected fault must surface as its typed error on the affected
requests AND as the matching ``gateway.drop.<Cause>`` telemetry counter —
never a hang, never a blanket exception (`repro.tools.check_exceptions`
lints the gateway tree; see ``tests/utils/test_check_exceptions.py``).
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from repro import telemetry
from repro.errors import (
    DeadlineExpiredError,
    EncodingError,
    GatewayOverloadError,
    WorkerPoolError,
)
from repro.gateway import BatchPolicy, EncodeProfile, GatewayServer

PROFILE = EncodeProfile(technology="sledzig", mcs="qam16-1/2", channel="CH1")


def crash_encoder(payloads):
    """Kill the worker process mid-batch (module-level: pickled by ref)."""
    os._exit(1)


def stall_encoder(payloads):
    """Hold the worker long enough for queued deadlines to expire."""
    time.sleep(0.6)
    return [np.zeros(4, dtype=complex) for _ in payloads]


def typed_failure_encoder(payloads):
    """Fail the batch with a typed library error."""
    raise EncodingError("injected typed encode failure")


def buggy_encoder(payloads):
    """Fail the batch with a non-ReproError (a genuine bug)."""
    raise TypeError("injected bug")


CRASH = EncodeProfile(technology="crash", encode_fn=crash_encoder)
STALL = EncodeProfile(technology="stall", encode_fn=stall_encoder)
TYPED = EncodeProfile(technology="typed", encode_fn=typed_failure_encoder)
BUGGY = EncodeProfile(technology="buggy", encode_fn=buggy_encoder)


def run(coro):
    return asyncio.run(coro)


class TestWorkerCrash:
    def test_killed_worker_surfaces_typed_error_and_counter(self):
        async def main():
            with telemetry.collect() as tel:
                async with GatewayServer(
                    [PROFILE, CRASH],
                    BatchPolicy(max_batch=4, max_linger_s=0.001),
                    workers=1,
                ) as gateway:
                    with pytest.raises(WorkerPoolError):
                        await gateway.submit(b"x", profile=CRASH)
                    slo = gateway.slo_snapshot()
                return slo, tel.snapshot()

        slo, snapshot = run(main())
        assert slo["drops"] == {"WorkerPoolError": 1}
        assert snapshot.counters["gateway.drop.WorkerPoolError"] == 1

    def test_pool_self_heals_after_crash(self):
        async def main():
            async with GatewayServer(
                [PROFILE, CRASH],
                BatchPolicy(max_batch=4, max_linger_s=0.001),
                workers=1,
            ) as gateway:
                with pytest.raises(WorkerPoolError):
                    await gateway.submit(b"x", profile=CRASH)
                waveform = await gateway.submit(b"\x05" * 8)
                return waveform, gateway.slo_snapshot()

        waveform, slo = run(main())
        assert waveform.size > 0
        assert slo["pool_restarts"] == 1
        assert slo["encoded"] == 1


class TestDeadlines:
    def test_deadline_expires_while_pool_is_stalled(self):
        async def main():
            with telemetry.collect() as tel:
                async with GatewayServer(
                    [PROFILE, STALL],
                    BatchPolicy(max_batch=4, max_linger_s=0.001),
                    workers=1,
                ) as gateway:
                    stalled = gateway.submit(b"s", profile=STALL)
                    await asyncio.sleep(0.05)  # let the stall occupy the worker
                    doomed = gateway.submit(b"\x01" * 8, timeout_s=0.1)
                    with pytest.raises(DeadlineExpiredError):
                        await doomed
                    await stalled  # the stall itself completes normally
                    slo = gateway.slo_snapshot()
                return slo, tel.snapshot()

        slo, snapshot = run(main())
        assert slo["drops"].get("DeadlineExpiredError") == 1
        assert snapshot.counters["gateway.drop.DeadlineExpiredError"] == 1

    def test_expired_queued_requests_never_reach_a_worker(self):
        calls = []

        def recording_encoder(payloads):
            calls.append(len(payloads))
            return [np.zeros(2, dtype=complex) for _ in payloads]

        recording = EncodeProfile(
            technology="recording", encode_fn=recording_encoder
        )

        async def main():
            # Inline pool, huge linger: the only dispatch happens at close,
            # by which point every deadline has expired.
            policy = BatchPolicy(max_batch=64, max_linger_s=30.0)
            gateway = GatewayServer(recording, policy)
            await gateway.start()
            futures = [
                gateway.submit(bytes([i]), timeout_s=0.02) for i in range(5)
            ]
            await asyncio.sleep(0.1)
            for future in futures:
                with pytest.raises(DeadlineExpiredError):
                    await future
            await gateway.aclose()
            return gateway.slo_snapshot()

        slo = run(main())
        assert calls == []  # no batch ever dispatched to the encoder
        assert slo["drops"] == {"DeadlineExpiredError": 5}


class TestOverload:
    def test_admission_queue_overflow_is_typed_and_counted(self):
        async def main():
            with telemetry.collect() as tel:
                policy = BatchPolicy(max_batch=4, max_linger_s=0.001,
                                     max_pending=6)
                async with GatewayServer(PROFILE, policy) as gateway:
                    admitted = []
                    rejected = 0
                    for i in range(10):
                        try:
                            admitted.append(gateway.submit(bytes([i] * 4)))
                        except GatewayOverloadError:
                            rejected += 1
                    await asyncio.gather(*admitted)
                    slo = gateway.slo_snapshot()
                return len(admitted), rejected, slo, tel.snapshot()

        admitted, rejected, slo, snapshot = run(main())
        assert admitted == 6
        assert rejected == 4
        assert slo["drops"]["GatewayOverloadError"] == 4
        assert snapshot.counters["gateway.drop.GatewayOverloadError"] == 4
        # Every admitted request was served: requests = encoded + drops.
        assert slo["requests"] == slo["encoded"] + sum(slo["drops"].values())


class TestEncoderFailures:
    def test_typed_encode_failure_counts_drop_cause(self):
        async def main():
            with telemetry.collect() as tel:
                async with GatewayServer(TYPED) as gateway:
                    with pytest.raises(EncodingError):
                        await gateway.submit(b"x")
                    slo = gateway.slo_snapshot()
                return slo, tel.snapshot()

        slo, snapshot = run(main())
        assert slo["drops"] == {"EncodingError": 1}
        assert snapshot.counters["gateway.drop.EncodingError"] == 1

    def test_unexpected_encoder_bug_propagates_and_server_survives(self):
        async def main():
            with telemetry.collect() as tel:
                async with GatewayServer([BUGGY, PROFILE]) as gateway:
                    with pytest.raises(TypeError):
                        await gateway.submit(b"x", profile=BUGGY)
                    # The batcher survives the bug and keeps serving.
                    waveform = await gateway.submit(b"\x07" * 8,
                                                    profile=PROFILE)
                    slo = gateway.slo_snapshot()
                return waveform, slo, tel.snapshot()

        waveform, slo, snapshot = run(main())
        assert waveform.size > 0
        assert snapshot.counters["gateway.error.unexpected"] == 1
        # A bug is not part of the typed drop taxonomy.
        assert "TypeError" not in slo["drops"]
