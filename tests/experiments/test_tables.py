"""Tests for the analytic table experiments (paper-vs-measured)."""

from __future__ import annotations

import pytest

from repro.experiments import (  # noqa: F401  (package import sanity)
    ExperimentResult,
)
from repro.experiments.table2_positions import (
    PAPER_POSITIONS,
    paper_convention_positions,
)
from repro.experiments import table2_positions, table3_extra_bits, table4_throughput_loss, theory


class TestTheory:
    def test_matches_paper(self):
        result = theory.run()
        assert len(result.rows) == 3
        for row in result.rows:
            computed, paper = row[3], row[4]
            assert computed == pytest.approx(paper, abs=0.05)

    def test_table_renders(self):
        text = theory.run().format_table()
        assert "qam256" in text and "19.3" in text


class TestTable2:
    def test_paper_convention_reproduces_table2_exactly(self):
        """The headline fidelity check: all 14 positions digit for digit."""
        assert paper_convention_positions() == PAPER_POSITIONS

    def test_run_notes_exact_match(self):
        result = table2_positions.run()
        assert any("reproduces Table II exactly" in n for n in result.notes)
        assert len(result.rows) == 14


class TestTable3:
    def test_counts(self):
        result = table3_extra_bits.run()
        by_name = {row[0]: row for row in result.rows}
        assert by_name["qam16-1/2"][2] == 14   # CH1-3
        assert by_name["qam16-1/2"][4] == 10   # CH4
        assert by_name["qam256-3/4"][2] == 42
        assert by_name["qam64-5/6"][4] == 20

    def test_all_but_one_match_paper(self):
        """Every cell matches except the paper's internally inconsistent
        QAM-64 2/3 CH1-CH3 entry."""
        result = table3_extra_bits.run()
        mismatches = [
            row[0]
            for row in result.rows
            if row[2] != row[3] or row[4] != row[5]
        ]
        assert mismatches == ["qam64-2/3"]


class TestTable4:
    def test_loss_range(self):
        result = table4_throughput_loss.run()
        losses = [row[2] for row in result.rows] + [row[5] for row in result.rows]
        assert min(losses) == pytest.approx(6.94, abs=0.01)
        assert max(losses) == pytest.approx(14.58, abs=0.01)

    def test_calc_matches_paper_cells(self):
        """All analytic cells match the paper except the QAM-256 3/4 CH4
        typo (11.72% printed, 10.42% arithmetically)."""
        result = table4_throughput_loss.run()
        for row in result.rows:
            name, _, calc13, _, paper13, calc4, _, paper4 = row
            assert calc13 == pytest.approx(paper13, abs=0.02)
            if name != "qam256-3/4":
                assert calc4 == pytest.approx(paper4, abs=0.02)

    def test_e2e_close_to_calc(self):
        """Measured frame-level loss tracks the analytic loss within ~2%."""
        result = table4_throughput_loss.run()
        for row in result.rows:
            assert row[3] == pytest.approx(row[2], abs=2.0)
            assert row[6] == pytest.approx(row[5], abs=2.0)
