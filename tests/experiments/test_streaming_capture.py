"""Tests for the long-capture streaming experiment (streamcap)."""

from __future__ import annotations

from repro import telemetry
from repro.experiments import streaming_capture
from repro.experiments.runner import registry


class TestRegistration:
    def test_streamcap_registered(self):
        assert "streamcap" in registry()
        assert "streamcap" in registry(quick=True, master_seed=7)


class TestRun:
    def test_table_shape_and_full_recovery(self):
        result = streaming_capture.run(frame_counts=(4, 12), chunk_sizes=(1024,))
        assert len(result.rows) == 2
        assert result.columns[0] == "frames"
        for row in result.rows:
            frames, capture, chunk, decoded, drops, high_water, capacity = row
            assert decoded == frames
            assert drops == 0
            assert 0 < high_water <= capacity

    def test_high_water_independent_of_capture_length(self):
        """The table's headline: tripling the capture leaves peak ring
        occupancy unchanged for the same chunk size."""
        result = streaming_capture.run(frame_counts=(4, 12), chunk_sizes=(1024,))
        high_waters = [row[5] for row in result.rows]
        assert high_waters[0] == high_waters[1]
        # And a small fraction of the longer capture (the bound is frame +
        # chunk slack; these 40-octet frames are only 800 samples long).
        assert high_waters[1] < result.rows[1][1] / 4

    def test_ring_gauge_lands_in_metrics_manifest(self):
        """The --metrics-out manifest records the ring high-water gauge."""
        with telemetry.collect() as tel:
            streaming_capture.run(frame_counts=(3,), chunk_sizes=(2048,))
        record = telemetry.run_record(
            "streamcap", config={"quick": True}, seconds=0.0,
            snapshot=tel.snapshot(),
        )
        assert record["gauges"]["stream.ring.sledzig.high_water"] > 0
        assert record["gauges"]["stream.ring.sledzig.occupancy"] >= 0
