"""Tests for the experiment runner CLI plumbing."""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import registry, run_experiments


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        reg = registry()
        for key in (
            "theory", "t2", "t3", "t4",
            "fig5", "fig11", "fig12", "fig13",
            "fig14a", "fig14b", "fig15", "fig16", "fig17",
        ):
            assert key in reg

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_experiments(["nope"])

    def test_run_subset(self, capsys):
        results = run_experiments(["theory", "t3"])
        assert len(results) == 2
        assert all(isinstance(r, ExperimentResult) for r in results)
        out = capsys.readouterr().out
        assert "Sec III-B" in out and "Table III" in out


class TestResultFormatting:
    def test_row_arity_enforced(self):
        result = ExperimentResult("X", "t", columns=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_format_empty(self):
        result = ExperimentResult("X", "t", columns=["a"])
        text = result.format_table()
        assert "X: t" in text

    def test_float_formatting(self):
        result = ExperimentResult("X", "t", columns=["v"])
        result.add_row(3.14159)
        assert "3.14" in result.format_table()
