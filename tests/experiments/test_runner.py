"""Tests for the experiment runner CLI plumbing."""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import registry, run_experiments


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        reg = registry()
        for key in (
            "theory", "t2", "t3", "t4",
            "fig5", "fig11", "fig12", "fig13",
            "fig14a", "fig14b", "fig15", "fig16", "fig17",
        ):
            assert key in reg

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_experiments(["nope"])

    def test_run_subset(self, capsys):
        results = run_experiments(["theory", "t3"])
        assert len(results) == 2
        assert all(isinstance(r, ExperimentResult) for r in results)
        out = capsys.readouterr().out
        assert "Sec III-B" in out and "Table III" in out


class TestResultFormatting:
    def test_row_arity_enforced(self):
        result = ExperimentResult("X", "t", columns=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_format_empty(self):
        result = ExperimentResult("X", "t", columns=["a"])
        text = result.format_table()
        assert "X: t" in text

    def test_float_formatting(self):
        result = ExperimentResult("X", "t", columns=["v"])
        result.add_row(3.14159)
        assert "3.14" in result.format_table()


class TestPartialFailure:
    """One failing experiment must not discard the others' results."""

    @staticmethod
    def _break_theory(monkeypatch):
        from repro.experiments import theory

        def boom():
            raise RuntimeError("injected experiment failure")

        monkeypatch.setattr(theory, "run", boom)

    def test_serial_failure_reports_survivors(self, monkeypatch, capsys):
        self._break_theory(monkeypatch)
        with pytest.raises(SystemExit) as excinfo:
            run_experiments(["theory", "t3"])
        out = capsys.readouterr().out
        assert "Table III" in out  # t3 was still emitted
        assert "theory" in str(excinfo.value)
        assert "injected experiment failure" in str(excinfo.value)

    def test_worker_failure_reports_survivors(self, monkeypatch, capsys):
        # The pool forks, so the patched module propagates to workers.
        self._break_theory(monkeypatch)
        with pytest.raises(SystemExit) as excinfo:
            run_experiments(["theory", "t3"], workers=2)
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "theory" in str(excinfo.value)

    def test_failure_recorded_in_manifest(self, monkeypatch, capsys, tmp_path):
        import json

        self._break_theory(monkeypatch)
        path = tmp_path / "metrics.jsonl"
        with pytest.raises(SystemExit):
            run_experiments(["theory", "t3"], metrics_out=str(path))
        capsys.readouterr()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        by_name = {line["experiment"]: line for line in lines}
        assert by_name["theory"]["status"] == "failed"
        assert "RuntimeError" in by_name["theory"]["error"]
        assert by_name["t3"]["status"] == "ok"

    def test_all_successes_returns_results(self, capsys):
        results = run_experiments(["theory", "t3"])
        assert len(results) == 2
        capsys.readouterr()
