"""Tests for the SNR-waterfall validation experiment."""

from __future__ import annotations

import math

import pytest

from repro.experiments import snr_waterfall


class TestWaterfall:
    def test_thresholds_at_or_below_paper(self):
        """The software receiver (soft decoding) needs no more SNR than the
        paper's quoted minima."""
        result = snr_waterfall.run(n_frames=5)
        for row in result.rows:
            name, paper, measured, margin = row
            assert not math.isnan(measured), name
            assert measured <= paper + 0.5, name

    def test_qam_order_needs_more_snr(self):
        """Across modulations the measured thresholds rise with QAM order."""
        t16 = snr_waterfall.measured_threshold("qam16-1/2", n_frames=5)
        t64 = snr_waterfall.measured_threshold("qam64-2/3", n_frames=5)
        t256 = snr_waterfall.measured_threshold("qam256-3/4", n_frames=5)
        assert t16 < t64 < t256

    def test_delivery_monotone_in_snr(self):
        low = snr_waterfall.delivery_at_snr("qam64-2/3", 10.0, n_frames=6)
        high = snr_waterfall.delivery_at_snr("qam64-2/3", 25.0, n_frames=6)
        assert high >= low
        assert high == 1.0
