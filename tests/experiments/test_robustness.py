"""Tests for the robustness-waterfall experiment and its acceptance bar.

Two contracts live here:

* the ISSUE acceptance criterion — with CFO at 40 ppm and 4-tap Rayleigh
  multipath at 15 dB SNR, the hardened WiFi receiver recovers at least
  95% of the frames the un-impaired receiver recovers;
* the engine determinism contract — impaired Monte-Carlo trials are
  bit-identical at batch sizes {1, 8, 32} and worker counts {1, 4}.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import robustness_waterfall as rw

#: The acceptance sweep point: CFO 40 ppm on top of 4-tap Rayleigh.
_POINT = dict(system="wifi", axis="combined_cfo_mp", magnitude=40.0)


class TestAcceptance:
    def test_hardened_wifi_recovers_95_percent_of_clean(self):
        """CFO <= 40 ppm + 4-tap Rayleigh at 15 dB: >= 95% of clean delivery."""
        impaired = rw.delivery_at(
            **_POINT, n_frames=32, mcs_name="bpsk-1/2"
        )
        clean = rw.delivery_at(
            "wifi", "cfo_ppm", 0.0, n_frames=32, mcs_name="bpsk-1/2"
        )
        assert clean > 0.0
        assert impaired >= 0.95 * clean

    def test_zero_magnitude_matches_clean_channel(self):
        """The identity point of an axis is literally the clean channel."""
        ident = rw.delivery_summary(
            "wifi", "cfo_ppm", 0.0, n_frames=8, mcs_name="qpsk-1/2"
        )
        assert ident.summary.mean == 1.0


class TestBitIdentity:
    """Impaired trials draw from addressed streams: layout never moves bits."""

    @pytest.fixture(scope="class")
    def reference(self):
        return rw.delivery_summary(
            **_POINT, n_frames=32, mcs_name="bpsk-1/2", batch_size=32
        )

    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_batch_size_invariance(self, reference, batch_size):
        result = rw.delivery_summary(
            **_POINT, n_frames=32, mcs_name="bpsk-1/2", batch_size=batch_size
        )
        assert np.array_equal(result.outcomes, reference.outcomes)

    @pytest.mark.parametrize("workers", [4])
    def test_worker_count_invariance(self, reference, workers):
        result = rw.delivery_summary(
            **_POINT, n_frames=32, mcs_name="bpsk-1/2",
            batch_size=8, workers=workers,
        )
        assert np.array_equal(result.outcomes, reference.outcomes)


class TestExperiment:
    def test_run_produces_full_table(self):
        result = rw.run(
            axes=("cfo_ppm",), systems=("wifi", "zigbee"), n_frames=2
        )
        assert result.columns == ["axis", "magnitude", "wifi", "zigbee"]
        assert len(result.rows) == len(rw.AXES["cfo_ppm"])
        for _, _, wifi, zigbee in result.rows:
            assert 0.0 <= wifi <= 1.0
            assert 0.0 <= zigbee <= 1.0

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            rw.run(axes=("bogus",), n_frames=1)
        with pytest.raises(ConfigurationError):
            rw.build_pipeline("bogus", 1.0, 20e6)

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            rw.delivery_at("lora", "cfo_ppm", 0.0, n_frames=1)

    def test_every_axis_builds_identity_free_pipeline(self):
        """Every registered axis maps each magnitude to a pipeline."""
        for axis, magnitudes in rw.AXES.items():
            for magnitude in magnitudes:
                pipeline = rw.build_pipeline(axis, magnitude, 20e6)
                assert len(pipeline.kernels) >= 1

    def test_zigbee_survives_40ppm_cfo(self):
        """The segmented correlator + CFO estimator hold at 40 ppm."""
        delivered = rw.delivery_at("zigbee", "cfo_ppm", 40.0, n_frames=8)
        assert delivered == 1.0
