"""Tests for the ablation studies."""

from __future__ import annotations

import pytest

from repro.experiments import ablations


class TestSpanAblation:
    def test_rssi_saturates_past_seven(self):
        result = ablations.span_ablation(n_data_values=(5, 7, 9))
        rssi = {row[0]: row[1] for row in result.rows}
        # Going 5 -> 7 buys > 1 dB; 7 -> 9 buys < 1.5 dB more.
        assert rssi[7] < rssi[5] - 1.0
        assert abs(rssi[9] - rssi[7]) < 1.5

    def test_overhead_linear(self):
        result = ablations.span_ablation(n_data_values=(5, 6, 7))
        extras = [row[2] for row in result.rows]
        assert extras == [20, 24, 28]


class TestSolverAblation:
    def test_cluster_always_ok(self):
        result = ablations.solver_ablation()
        assert all(row[3] == "ok" for row in result.rows)

    def test_algorithm1_ok_where_applicable(self):
        result = ablations.solver_ablation()
        rate_half_rows = [r for r in result.rows if r[0] == "qam16-1/2"]
        assert len(rate_half_rows) == 4
        assert all(r[2] == "ok" for r in rate_half_rows)

    def test_extra_counts_reported(self):
        result = ablations.solver_ablation()
        by_key = {(r[0], r[1]): r[4] for r in result.rows}
        assert by_key[("qam256-3/4", "CH1")] == 42
        assert by_key[("qam16-1/2", "CH4")] == 10


class TestPreambleAblation:
    def test_preamble_costs_throughput_at_margin(self):
        result = ablations.preamble_ablation(
            d_z_values=(1.6,), duration_us=200_000.0
        )
        with_pre, without_pre = result.rows[0][1], result.rows[0][2]
        assert without_pre >= with_pre

    def test_no_effect_at_strong_signal(self):
        result = ablations.preamble_ablation(
            d_z_values=(1.0,), duration_us=200_000.0
        )
        with_pre, without_pre = result.rows[0][1], result.rows[0][2]
        assert with_pre == pytest.approx(without_pre, abs=5.0)


class TestCcaAblation:
    def test_deaf_threshold_collides(self):
        result = ablations.cca_threshold_ablation(
            thresholds_db=(-77.0, -60.0), duration_us=200_000.0
        )
        sensitive, deaf = result.rows[0], result.rows[1]
        # The deaf setting transmits into WiFi bursts and loses packets.
        assert deaf[3] > sensitive[3]
        assert deaf[1] < sensitive[1]

    def test_columns(self):
        result = ablations.cca_threshold_ablation(
            thresholds_db=(-77.0,), duration_us=150_000.0
        )
        assert result.columns == ["threshold dB", "throughput", "cca busy %", "failed %"]
