"""The ctc runner experiment: registry, acceptance numbers, manifest."""

from __future__ import annotations

import json

from repro import telemetry
from repro.experiments import ctc_tradeoff
from repro.experiments.runner import registry, run_experiments
from repro.mac.scenario import grid_scenario, run_scenario
from repro.tools.check_manifest import lint_manifest


def _small_run(**overrides):
    params = dict(
        depths=(1, 2), rates=(1, 4), n_trials=8,
        n_bss=2, n_sensors=12, duration_us=100_000.0, master_seed=7,
    )
    params.update(overrides)
    with telemetry.collect():
        return ctc_tradeoff.run(**params)


def test_ctc_is_registered():
    assert "ctc" in registry(quick=True)
    assert "ctc" in registry(quick=False)


def test_acceptance_lowest_depth_ber_and_delivery():
    """The ISSUE acceptance gate: at the lowest modulation depth the
    ZigBee delivery ratio stays within 2% of plain SledZig while the
    side channel still decodes (BER < 1e-2 at the acceptance SNR)."""
    result = _small_run()
    ctc = result.manifest_extra["ctc"]
    assert ctc["depth"] == 1
    assert ctc["ber"] < 1e-2
    assert ctc["delivery"]["delta"] <= 0.02
    assert ctc["frames_delivered"] == ctc["frames_sent"]


def test_sweep_rows_carry_error_budget_columns():
    result = _small_run(depths=(1,), rates=(1,))
    assert result.columns[:2] == ["depth", "frames/sym"]
    assert {"sync_err", "hdr_err", "crc_err"} <= set(result.columns)
    (row,) = result.rows
    by_col = dict(zip(result.columns, row))
    assert by_col["depth"] == 1
    assert 0.0 <= by_col["raw_ber"] <= 1.0
    assert by_col["zb_sledzig"] > 0.0 and by_col["zb_ctc"] > 0.0


def test_delivery_comparison_is_seed_pinned():
    """Both delivery runs share one scenario name, so re-running the CTC
    grid with the same seed is bit-deterministic."""
    kwargs = dict(
        name=ctc_tradeoff.DELIVERY_SCENARIO_NAME,
        duration_us=60_000.0, master_seed=11,
        sledzig=True, ctc_depth=1, duty_ratio=0.9,
    )
    a = run_scenario(grid_scenario(2, 8, **kwargs))
    b = run_scenario(grid_scenario(2, 8, **kwargs))
    assert {
        k: (s.packets_attempted, s.packets_delivered)
        for k, s in a.sensors.items()
    } == {
        k: (s.packets_attempted, s.packets_delivered)
        for k, s in b.sensors.items()
    }


def test_runner_writes_valid_ctc_manifest(tmp_path):
    manifest = tmp_path / "metrics.jsonl"
    with telemetry.collect():
        run_experiments(["ctc"], quick=True, as_json=True,
                        metrics_out=str(manifest))
    assert lint_manifest(manifest) == []
    (record,) = [
        json.loads(line) for line in manifest.read_text().splitlines()
    ]
    assert record["experiment"] == "ctc"
    assert record["status"] == "ok"
    assert record["ctc"]["ber"] < 1e-2
    assert record["ctc"]["delivery"]["delta"] <= 0.02
    assert record["counters"]["ctc.rx.frames"] > 0
    assert any(".drop." in key for key in record["drops"])
