"""Seed-addressed determinism: same master seed => bit-identical results
serially, batched in any size, or sharded across worker processes."""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import snr_waterfall
from repro.experiments.runner import run_experiments
from repro.mac.config import CoexistenceConfig, Topology
from repro.mac.simulator import sweep as mac_sweep
from repro.utils.serialization import jsonable


def _rows(results):
    return [[jsonable(row) for row in r.rows] for r in results]


class TestWaterfallPointDeterminism:
    # One SNR point inside the waterfall, where outcomes are genuinely
    # mixed (not all-0/all-1), so any stream misalignment shows up.
    KW = dict(mcs_name="qpsk-1/2", snr_db=4.0, n_frames=12, psdu_octets=16,
              seed=21)

    def test_workers_match_serial(self):
        serial = snr_waterfall.delivery_summary(**self.KW, workers=0)
        sharded = snr_waterfall.delivery_summary(**self.KW, workers=4)
        assert np.array_equal(serial.outcomes, sharded.outcomes)
        assert serial.summary == sharded.summary

    def test_repeat_run_is_bit_identical(self):
        a = snr_waterfall.delivery_summary(**self.KW)
        b = snr_waterfall.delivery_summary(**self.KW)
        assert np.array_equal(a.outcomes, b.outcomes)

    def test_different_seed_changes_outcomes(self):
        base = snr_waterfall.delivery_summary(**self.KW)
        other = snr_waterfall.delivery_summary(**{**self.KW, "seed": 22})
        # Mixed-outcome regime: 12 trials at a different seed should not
        # reproduce the exact same success pattern.
        assert not np.array_equal(base.outcomes, other.outcomes)


def _set_dwz(cfg, d):
    # Module-level so the sweep's trial partial pickles into worker processes.
    return replace(cfg, topology=Topology(d_wz=d, d_z=1.0))


class TestMacSweepDeterminism:
    def test_workers_match_serial(self):
        config = CoexistenceConfig(duration_us=40_000.0, seed=5)
        values = (2.0, 4.0)
        serial = mac_sweep(config, values, _set_dwz, n_seeds=2, workers=0)
        parallel = mac_sweep(config, values, _set_dwz, n_seeds=2, workers=2)
        for a, b in zip(serial, parallel):
            assert a.throughputs_kbps == b.throughputs_kbps


class TestRunnerDeterminism:
    def test_xtech_json_identical_across_runner_workers(self):
        kwargs = dict(quick=True, as_json=True, master_seed=123)
        serial = run_experiments(["xtech"], workers=0, **kwargs)
        parallel = run_experiments(["xtech"], workers=2, **kwargs)
        assert _rows(serial) == _rows(parallel)

    def test_seed_flag_reaches_stochastic_experiments(self):
        a = run_experiments(["xtech"], quick=True, master_seed=123)
        b = run_experiments(["xtech"], quick=True, master_seed=123)
        assert _rows(a) == _rows(b)
