"""Tests for the figure experiments (quick parameterisations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    fig05_spectrum,
    fig11_subcarriers,
    fig12_rssi_decrease,
    fig13_zigbee_rssi,
    fig14_dwz,
    fig15_dz,
    fig16_traffic,
    fig17_wifi_rssi,
)


class TestFig5:
    def test_notch_and_power_invariance(self):
        result = fig05_spectrum.run()
        regions = {row[0]: row for row in result.rows}
        inside = regions["overlapped data subcarriers"]
        outside = regions["other data subcarriers"]
        total = regions["total symbol power"]
        assert inside[3] < -6.0       # ~7 dB notch for QAM-16
        assert abs(outside[3]) < 0.5  # rest untouched
        assert abs(total[3]) < 0.6    # total power ~unchanged


class TestFig11:
    def test_seven_subcarriers_optimal_ch13(self):
        result = fig11_subcarriers.run(payload_octets=80)
        rows = {(r[0], r[1]): r[2] for r in result.rows}
        for ch in ("CH1", "CH2", "CH3"):
            assert rows[(ch, 7)] < rows[(ch, 6)] + 0.3   # 7 beats (or ties) 6
            assert abs(rows[(ch, 8)] - rows[(ch, 7)]) < 1.5  # 8 adds little

    def test_five_enough_for_ch4(self):
        result = fig11_subcarriers.run(payload_octets=80)
        rows = {(r[0], r[1]): r[2] for r in result.rows}
        assert rows[("CH4", 5)] < rows[("CH4", 4)]
        assert abs(rows[("CH4", 6)] - rows[("CH4", 5)]) < 1.5


class TestFig12:
    def test_decreases_track_paper(self):
        result = fig12_rssi_decrease.run(payload_octets=120)
        for row in result.rows:
            _, channel, normal, sled, decrease, p_norm, p_sled = row
            paper_decrease = p_norm - p_sled
            # Within 3 dB of the paper's reading on every combination (the
            # paper itself reports 1-3 dB run-to-run variation).
            assert decrease == pytest.approx(paper_decrease, abs=3.0)

    def test_ch4_deeper_than_ch13(self):
        result = fig12_rssi_decrease.run(payload_octets=120)
        for modulation in ("qam16", "qam64", "qam256"):
            rows = [r for r in result.rows if r[0] == modulation]
            ch13 = np.mean([r[4] for r in rows if r[1] != "CH4"])
            ch4 = [r[4] for r in rows if r[1] == "CH4"][0]
            assert ch4 > ch13


class TestFig13:
    def test_anchors(self):
        result = fig13_zigbee_rssi.run()
        first = result.rows[0]  # 0.5 m
        assert first[1] == pytest.approx(-75.0, abs=0.1)
        three_m = [r for r in result.rows if r[0] == 3.0][0]
        assert three_m[2] == -91.0  # gain 25 submerged at 3 m


class TestFig14:
    def test_crossover_ordering_ch13(self):
        """Smaller protection -> larger required distance."""
        curves = fig14_dwz.sweep_channel(
            3, distances=(3.5, 5.0, 9.0), duration_us=150_000.0
        )
        # At 9 m everything works.
        assert all(curves[label][2] > 40 for label in curves)
        # At 3.5 m only the strongest QAM protections deliver.
        assert curves["normal"][0] < 5.0
        assert curves["qam256"][0] > curves["normal"][0]
        # At 5 m SledZig delivers, normal does not.
        assert curves["qam64"][1] > 40
        assert curves["normal"][1] < 5.0

    def test_ch4_qam256_works_at_1m(self):
        curves = fig14_dwz.sweep_channel(4, distances=(1.0,), duration_us=150_000.0)
        assert curves["qam256"][0] > 40
        assert curves["normal"][0] < 5.0


class TestFig15:
    def test_collapse_at_1_6m(self):
        curves = fig15_dz.sweep(distances=(1.0, 1.6), duration_us=150_000.0)
        assert curves["qam256"][0] > 40     # healthy at 1 m
        assert curves["qam256"][1] < 15.0   # nearly zero at 1.6 m (paper)
        assert curves["normal"][1] < 5.0


class TestFig16:
    def test_ordering_and_degradation(self):
        data = fig16_traffic.sweep(
            ratios=(0.2, 0.8), duration_us=200_000.0, n_seeds=2
        )
        # Normal collapses at 80% while QAM-256 SledZig keeps going.
        assert data["normal"][1].mean < 10.0
        assert data["qam256"][1].mean > 30.0
        # At 20% everyone does reasonably.
        assert data["normal"][0].mean > 25.0


class TestFig17:
    def test_gap_and_floor(self):
        result = fig17_wifi_rssi.run()
        half_metre = result.rows[0]
        assert half_metre[3] == pytest.approx(30.0, abs=1.0)
        one_metre = result.rows[1]
        assert one_metre[2] == -91.0  # ZigBee at the noise floor by 1 m
