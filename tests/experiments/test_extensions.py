"""Tests for the extension experiments (collision lab, 40 MHz)."""

from __future__ import annotations

import pytest

from repro.experiments import ext40mhz, xtech_collision


class TestXtechCollision:
    def test_sledzig_outlasts_normal(self):
        curves = xtech_collision.sweep(levels_db=(14.0, 20.0), n_frames=4)
        # At 20 dB on-air advantage the SledZig waveform is still decodable,
        # the normal one is not.
        assert curves["sledzig"][1] > curves["normal"][1]

    def test_both_fine_when_wifi_weak(self):
        curves = xtech_collision.sweep(levels_db=(8.0,), n_frames=4)
        assert curves["normal"][0] == 1.0
        assert curves["sledzig"][0] == 1.0

    def test_run_renders(self):
        result = xtech_collision.run(levels_db=(14.0,), n_frames=3)
        assert len(result.rows) == 1
        assert "collision" in result.title.lower()


class TestExt40:
    def test_all_spans_verified(self):
        result = ext40mhz.run()
        assert len(result.rows) == 8
        assert all(row[7] is True for row in result.rows)

    def test_losses_below_20mhz_worst_case(self):
        result = ext40mhz.run()
        assert max(row[5] for row in result.rows) < 8.0

    def test_pilot_limited_spans(self):
        result = ext40mhz.run()
        for row in result.rows:
            if row[3]:  # has a pilot
                assert row[6] < 9.0  # decrease capped by the pilot
            else:
                assert row[6] == pytest.approx(13.2, abs=0.1)
