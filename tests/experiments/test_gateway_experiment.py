"""The gateway runner experiment: registry entry, SLOs, manifest shape."""

from __future__ import annotations

import json

from repro import telemetry
from repro.experiments import gateway_load
from repro.experiments.runner import registry, run_experiments
from repro.tools.check_manifest import lint_manifest


def test_gateway_is_registered():
    assert "gateway" in registry(quick=True)


def test_small_sweep_reports_slos_and_bit_identity():
    result = gateway_load.run(sweep=((2, 4, 4),), master_seed=99)
    assert result.columns[-1] == "bit_identical"
    assert [row[-1] for row in result.rows] == ["yes"]
    clients, frames, max_batch, fps, p50, p99, fill, _ = result.rows[0]
    assert (clients, frames, max_batch) == (2, 8, 4)
    assert fps > 0 and p99 >= p50 > 0
    slo = result.manifest_extra["slo"]
    assert slo["encoded"] == 8
    assert slo["latency_s"]["count"] == 8


def test_seed_changes_payloads_not_identity():
    a = gateway_load.run(sweep=((2, 2, 2),), master_seed=1)
    b = gateway_load.run(sweep=((2, 2, 2),), master_seed=2)
    assert [r[-1] for r in a.rows] == [r[-1] for r in b.rows] == ["yes"]


def test_runner_writes_valid_gateway_manifest(tmp_path):
    manifest = tmp_path / "metrics.jsonl"
    with telemetry.collect():
        run_experiments(["gateway"], quick=True, as_json=True,
                        metrics_out=str(manifest))
    assert lint_manifest(manifest) == []
    (record,) = [
        json.loads(line) for line in manifest.read_text().splitlines()
    ]
    assert record["experiment"] == "gateway"
    assert record["status"] == "ok"
    assert record["slo"]["latency_s"]["p99"] > 0
    assert record["counters"]["gateway.requests"] == record["slo"]["requests"]
