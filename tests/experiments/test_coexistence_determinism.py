"""Coexistence-family determinism: serial == workers == re-run, bit-exact.

The family's claim (documented in its result notes) is that every trial's
randomness is addressed by ``(master seed, scenario name, trial index,
node key)`` — never consumed in sequence — so worker scheduling and
config-tuple ordering cannot perturb outcomes.  These tests hold it to
that, and run the acceptance-scale scenario: 3 overlapping BSSs against
200 duty-cycled sensors, baseline vs concurrent vs SledZig.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import coexistence
from repro.mac.scenario import grid_scenario, run_scenario
from repro.mac.traffic import PoissonTraffic

# Short campaigns: determinism is binary, not statistical.
DURATION_US = 40_000.0
TRAFFIC = PoissonTraffic(rate_per_s=40.0)


def _point(workers: int = 0, master_seed: int = 11) -> np.ndarray:
    outcomes, _detail = coexistence.run_point(
        2, 12, "concurrent",
        duration_us=DURATION_US, n_trials=3,
        master_seed=master_seed, workers=workers, traffic=TRAFFIC,
    )
    return outcomes


class TestPointDeterminism:
    def test_rerun_is_bit_identical(self):
        assert np.array_equal(_point(workers=0), _point(workers=0))

    def test_workers_do_not_change_outcomes(self):
        serial = _point(workers=0)
        parallel = _point(workers=2)
        assert np.array_equal(serial, parallel), (
            f"serial {serial.tolist()} != workers=2 {parallel.tolist()}"
        )

    def test_seed_changes_outcomes(self):
        assert not np.array_equal(_point(master_seed=11), _point(master_seed=12))

    def test_trials_differ_from_each_other(self):
        """Addressed streams still vary across trial indices."""
        outcomes = _point(workers=0)
        assert len(set(outcomes.tolist())) > 1


class TestFamilyDeterminism:
    def test_full_quick_table_survives_workers_and_reruns(self):
        kwargs = dict(
            grid=((1, 6),), duration_us=DURATION_US, n_trials=2,
            master_seed=5, traffic=TRAFFIC,
        )
        serial = coexistence.run(workers=0, **kwargs)
        again = coexistence.run(workers=0, **kwargs)
        parallel = coexistence.run(workers=2, **kwargs)
        assert serial.rows == again.rows
        assert serial.rows == parallel.rows
        # One row per variant at the single grid point.
        assert len(serial.rows) == len(coexistence.VARIANTS)


@pytest.mark.slow
class TestAcceptanceScale:
    """The headline scenario: 3 BSSs (CH1/6/11) vs 200 ZigBee sensors."""

    def _run(self, variant: str, **overrides):
        kwargs = dict(
            name=f"accept/{variant}",
            duration_us=60_000.0,
            master_seed=7,
            traffic=TRAFFIC,
        )
        kwargs.update(overrides)
        return run_scenario(grid_scenario(3, 200, **kwargs))

    def test_three_bss_200_sensors_deterministic_and_ordered(self):
        baseline = self._run("baseline", wifi_saturated=False)
        concurrent = self._run("concurrent")
        sledzig = self._run("sledzig", sledzig=True)

        for result in (baseline, concurrent, sledzig):
            assert len(result.sensors) == 200
            assert result.packets_attempted > 0

        # Deterministic: the concurrent run reproduces bit-exactly.
        again = self._run("concurrent")
        assert concurrent.packets_delivered == again.packets_delivered
        assert concurrent.packets_attempted == again.packets_attempted
        assert concurrent.events_dispatched == again.events_dispatched

        # Physics ordering: interference hurts, SledZig recovers (most of) it.
        assert concurrent.delivery_ratio < baseline.delivery_ratio
        assert sledzig.delivery_ratio > concurrent.delivery_ratio
