"""Unit tests for the benchmark trend gate (repro.tools.bench_trend)."""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.tools import bench_trend


def _write_bench(directory: Path, suite: str, means: "dict[str, float]",
                 **entry_overrides) -> Path:
    entries = {}
    for name, mean in means.items():
        entry = {
            "fullname": f"benchmarks/test_bench_{suite}.py::{name}",
            "rounds": 10,
            "iterations": 1,
            "min_s": mean * 0.9,
            "mean_s": mean,
            "stddev_s": mean * 0.05,
        }
        entry.update(entry_overrides)
        entries[name] = entry
    path = directory / f"BENCH_{suite}.json"
    path.write_text(json.dumps({"suite": suite, "benchmarks": entries}))
    return path


@pytest.fixture
def dirs(tmp_path: Path) -> "tuple[Path, Path]":
    baseline = tmp_path / "baselines"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    return baseline, current


class TestCheck:
    def test_clean_when_identical(self, dirs) -> None:
        baseline, current = dirs
        _write_bench(baseline, "core", {"test_a": 0.010})
        _write_bench(current, "core", {"test_a": 0.010})
        assert bench_trend.run_check(current, baseline, 0.20, io.StringIO()) == 0

    def test_improvement_passes(self, dirs) -> None:
        baseline, current = dirs
        _write_bench(baseline, "core", {"test_a": 0.010})
        _write_bench(current, "core", {"test_a": 0.004})
        assert bench_trend.run_check(current, baseline, 0.20, io.StringIO()) == 0

    def test_regression_beyond_limit_fails(self, dirs) -> None:
        baseline, current = dirs
        _write_bench(baseline, "core", {"test_a": 0.010, "test_b": 0.020})
        _write_bench(current, "core", {"test_a": 0.013, "test_b": 0.020})
        out = io.StringIO()
        assert bench_trend.run_check(current, baseline, 0.20, out) == 1
        assert "REGRESSION core:test_a" in out.getvalue()

    def test_regression_within_limit_passes(self, dirs) -> None:
        baseline, current = dirs
        _write_bench(baseline, "core", {"test_a": 0.010})
        _write_bench(current, "core", {"test_a": 0.0118})
        assert bench_trend.run_check(current, baseline, 0.20, io.StringIO()) == 0

    def test_custom_limit(self, dirs) -> None:
        baseline, current = dirs
        _write_bench(baseline, "core", {"test_a": 0.010})
        _write_bench(current, "core", {"test_a": 0.014})
        assert bench_trend.run_check(current, baseline, 0.50, io.StringIO()) == 0
        assert bench_trend.run_check(current, baseline, 0.20, io.StringIO()) == 1

    def test_missing_current_suite_skipped(self, dirs) -> None:
        baseline, current = dirs
        _write_bench(baseline, "core", {"test_a": 0.010})
        out = io.StringIO()
        assert bench_trend.run_check(current, baseline, 0.20, out) == 0
        assert "skipped" in out.getvalue()

    def test_mismatched_pair_fails_with_per_name_diagnostics(self, dirs) -> None:
        """A benchmark on only one side is a violation, not a note.

        Regression test for the silent-mismatch bug: renaming a benchmark
        (or a benchmark silently not running) used to produce chatty notes
        and exit 0 — the gate went green while tracking nothing.
        """
        baseline, current = dirs
        _write_bench(baseline, "core", {"test_old": 0.010, "test_kept": 0.010})
        _write_bench(current, "core", {"test_new": 0.010, "test_kept": 0.010})
        out = io.StringIO()
        assert bench_trend.run_check(current, baseline, 0.20, out) == 2
        text = out.getvalue()
        assert "MISSING core:test_old" in text and "not in the fresh run" in text
        assert "MISSING core:test_new" in text and "no committed" in text
        # The matched benchmark still reports normally.
        assert "ok  core:test_kept" in text

    def test_fresh_suite_without_baseline_file_fails_per_name(self, dirs) -> None:
        baseline, current = dirs
        _write_bench(baseline, "core", {"test_a": 0.010})
        _write_bench(current, "core", {"test_a": 0.010})
        _write_bench(current, "newsuite", {"test_x": 0.010, "test_y": 0.010})
        out = io.StringIO()
        assert bench_trend.run_check(current, baseline, 0.20, out) == 2
        text = out.getvalue()
        assert "MISSING newsuite:test_x" in text
        assert "MISSING newsuite:test_y" in text
        assert "no committed BENCH_newsuite.json" in text

    def test_mismatch_and_regression_both_counted(self, dirs) -> None:
        baseline, current = dirs
        _write_bench(baseline, "core", {"test_a": 0.010, "test_old": 0.010})
        _write_bench(current, "core", {"test_a": 0.030})
        out = io.StringIO()
        assert bench_trend.run_check(current, baseline, 0.20, out) == 2
        text = out.getvalue()
        assert "REGRESSION core:test_a" in text
        assert "MISSING core:test_old" in text

    def test_empty_baseline_dir_is_clean(self, dirs) -> None:
        baseline, current = dirs
        assert bench_trend.run_check(current, baseline, 0.20, io.StringIO()) == 0

    def test_repo_baselines_match_schema_and_floor_suites(self) -> None:
        """The committed baselines exist and include the kernels suite."""
        root = Path(__file__).resolve().parents[2]
        baseline_dir = root / bench_trend.DEFAULT_BASELINE_DIR
        files = sorted(p.name for p in baseline_dir.glob("BENCH_*.json"))
        assert "BENCH_kernels.json" in files
        for path in baseline_dir.glob("BENCH_*.json"):
            assert bench_trend.schema_violations(path) == []
        kernels = bench_trend.load_bench_file(
            baseline_dir / "BENCH_kernels.json"
        )
        # The committed baseline itself must exhibit the speedup floors the
        # benchmark suite asserts (>=1.5x viterbi batch-32, >=2x gf2 solve).
        vit_ref = kernels["test_bench_viterbi_hard_batch32[reference]"]["mean_s"]
        vit_opt = kernels["test_bench_viterbi_hard_batch32[optimized]"]["mean_s"]
        assert vit_ref / vit_opt >= 1.5
        gf2_ref = kernels["test_bench_gf2_solve_192[reference]"]["mean_s"]
        gf2_opt = kernels["test_bench_gf2_solve_192[optimized]"]["mean_s"]
        assert gf2_ref / gf2_opt >= 2.0


class TestSchema:
    def test_valid_file_passes(self, dirs) -> None:
        baseline, _ = dirs
        _write_bench(baseline, "core", {"test_a": 0.010})
        assert bench_trend.run_schema(baseline, io.StringIO()) == 0

    def test_empty_dir_fails(self, dirs) -> None:
        baseline, _ = dirs
        assert bench_trend.run_schema(baseline, io.StringIO()) == 1

    def test_missing_fullname(self, dirs) -> None:
        baseline, _ = dirs
        path = _write_bench(baseline, "core", {"test_a": 0.010})
        data = json.loads(path.read_text())
        del data["benchmarks"]["test_a"]["fullname"]
        path.write_text(json.dumps(data))
        assert bench_trend.schema_violations(path) == [
            "BENCH_core.json:test_a: missing/malformed 'fullname'"
        ]

    def test_nonpositive_mean(self, dirs) -> None:
        baseline, _ = dirs
        path = _write_bench(baseline, "core", {"test_a": 0.010})
        data = json.loads(path.read_text())
        data["benchmarks"]["test_a"]["mean_s"] = 0.0
        path.write_text(json.dumps(data))
        assert any(
            "'mean_s' must be a positive number" in p
            for p in bench_trend.schema_violations(path)
        )

    def test_bad_rounds(self, dirs) -> None:
        baseline, _ = dirs
        path = _write_bench(baseline, "core", {"test_a": 0.010}, rounds=0)
        assert any(
            "'rounds' must be a positive integer" in p
            for p in bench_trend.schema_violations(path)
        )

    def test_unreadable_json(self, dirs) -> None:
        baseline, _ = dirs
        path = baseline / "BENCH_broken.json"
        path.write_text("{not json")
        problems = bench_trend.schema_violations(path)
        assert len(problems) == 1 and "unreadable" in problems[0]

    def test_missing_benchmarks_mapping(self, dirs) -> None:
        baseline, _ = dirs
        path = baseline / "BENCH_hollow.json"
        path.write_text(json.dumps({"suite": "hollow"}))
        problems = bench_trend.schema_violations(path)
        assert len(problems) == 1 and "unreadable" in problems[0]


class TestMain:
    def test_check_exit_status(self, dirs, monkeypatch, capsys) -> None:
        baseline, current = dirs
        _write_bench(baseline, "core", {"test_a": 0.010})
        _write_bench(current, "core", {"test_a": 0.030})
        status = bench_trend.main([
            "check", "--current", str(current), "--baseline", str(baseline),
        ])
        assert status == 1
        assert "REGRESSION" in capsys.readouterr().out
        status = bench_trend.main([
            "check", "--current", str(current), "--baseline", str(baseline),
            "--max-regression", "5.0",
        ])
        assert status == 0

    def test_schema_exit_status(self, dirs, capsys) -> None:
        baseline, _ = dirs
        _write_bench(baseline, "core", {"test_a": 0.010})
        assert bench_trend.main(["schema", "--current", str(baseline)]) == 0
