"""The --metrics-out manifest validator, against real and broken records."""

from __future__ import annotations

import json
from pathlib import Path

from repro import telemetry
from repro.tools.check_manifest import lint_manifest, lint_record, main


def _classic_record() -> dict:
    """A genuine experiment record, built the way the runner builds them."""
    with telemetry.collect() as tel:
        tel.count("wifi.rx.frames", 10)
        tel.count("wifi.rx.ok", 9)
        tel.count("wifi.rx.drop.SynchronizationError", 1)
        with tel.span("wifi.rx.decode"):
            pass
        snapshot = tel.snapshot()
    return telemetry.run_record(
        "waterfall",
        config={"experiment": "waterfall", "seed": 7},
        seconds=1.25,
        snapshot=snapshot,
        experiment_id="Fig. X",
        title="test record",
    )


def _gateway_record() -> dict:
    """A gateway SLO record: the classic shape plus the ``slo`` object."""
    with telemetry.collect() as tel:
        tel.count("gateway.requests", 12)
        tel.count("gateway.ok", 10)
        tel.count("gateway.drop.DeadlineExpiredError", 2)
        with tel.span("gateway.batch.encode_s"):
            pass
        snapshot = tel.snapshot()
    slo = {
        "requests": 12,
        "encoded": 10,
        "drops": {"DeadlineExpiredError": 2},
        "latency_s": {"count": 10, "p50": 0.004, "p90": 0.007, "p99": 0.009,
                      "max": 0.01},
        "batch_fill": {"4": 1, "6": 1},
        "queue_high_water": 8,
        "pool_restarts": 0,
        "workers": 0,
    }
    return telemetry.run_record(
        "gateway",
        config={"experiment": "gateway", "seed": None},
        seconds=0.8,
        snapshot=snapshot,
        experiment_id="Gateway",
        title="gateway SLO record",
        extra={"slo": slo},
    )


def _ctc_record() -> dict:
    """A CTC record: the classic shape plus the ``ctc`` acceptance object."""
    with telemetry.collect() as tel:
        tel.count("ctc.rx.frames", 7)
        tel.count("ctc.rx.sync_errors", 1)
        tel.count("ctc.rx.drop.CtcSyncError", 1)
        with tel.span("ctc.rx.decode"):
            pass
        snapshot = tel.snapshot()
    ctc = {
        "depth": 1,
        "frames_per_symbol": 4,
        "noise_db": 0.4,
        "separation_db": 2.34,
        "ber": 0.0025,
        "frames_sent": 8,
        "frames_delivered": 7,
        "sync_errors": 1,
        "header_errors": 0,
        "crc_errors": 0,
        "delivery": {"sledzig": 0.9939, "ctc": 0.9939, "delta": 0.0},
    }
    return telemetry.run_record(
        "ctc",
        config={"experiment": "ctc", "seed": 2026},
        seconds=0.5,
        snapshot=snapshot,
        experiment_id="CTC",
        title="ctc acceptance record",
        extra={"ctc": ctc},
    )


def _write_manifest(tmp_path: Path, records) -> Path:
    path = tmp_path / "metrics.jsonl"
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    )
    return path


class TestValidManifests:
    def test_classic_experiment_record_is_clean(self, tmp_path):
        path = _write_manifest(tmp_path, [_classic_record()])
        assert lint_manifest(path) == []

    def test_gateway_slo_record_is_clean(self, tmp_path):
        path = _write_manifest(tmp_path, [_gateway_record()])
        assert lint_manifest(path) == []

    def test_ctc_record_is_clean(self, tmp_path):
        path = _write_manifest(tmp_path, [_ctc_record()])
        assert lint_manifest(path) == []

    def test_mixed_manifest_is_clean(self, tmp_path):
        failed = telemetry.run_record(
            "fig12", config={"experiment": "fig12"}, seconds=0.1,
            status="failed", error="DecodingError: boom",
        )
        path = _write_manifest(
            tmp_path, [_classic_record(), failed, _gateway_record(),
                       _ctc_record()]
        )
        assert lint_manifest(path) == []
        assert main([str(path)]) == 0


class TestViolations:
    def test_tampered_config_breaks_digest(self, tmp_path):
        record = _classic_record()
        record["config"]["seed"] = 999  # edit without re-digesting
        path = _write_manifest(tmp_path, [record])
        violations = lint_manifest(path)
        assert any("config_digest" in v for v in violations)

    def test_missing_required_key(self):
        record = _classic_record()
        del record["seconds"]
        violations = lint_record(record, "here")
        assert any("'seconds'" in v for v in violations)

    def test_bad_status(self):
        record = _classic_record()
        record["status"] = "maybe"
        assert any("status" in v for v in lint_record(record, "here"))

    def test_failed_without_error(self):
        record = telemetry.run_record(
            "x", config={}, seconds=0.0, status="failed", error="E: e",
        )
        del record["error"]
        assert any("error" in v for v in lint_record(record, "here"))

    def test_drop_key_without_drop_marker(self):
        record = _classic_record()
        record["drops"]["wifi.rx.ok"] = 9
        assert any("*.drop.<cause>" in v for v in lint_record(record, "here"))

    def test_drops_disagreeing_with_counters(self):
        record = _classic_record()
        record["drops"]["wifi.rx.drop.SynchronizationError"] = 5
        assert any("disagrees" in v for v in lint_record(record, "here"))

    def test_timing_missing_summary_field(self):
        record = _classic_record()
        del record["timings"]["wifi.rx.decode"]["mean"]
        assert any("mean" in v for v in lint_record(record, "here"))

    def test_malformed_slo(self):
        record = _gateway_record()
        del record["slo"]["latency_s"]["p99"]
        record["slo"]["batch_fill"]["not-a-size"] = 1
        violations = lint_record(record, "here")
        assert any("p99" in v for v in violations)
        assert any("batch_fill" in v for v in violations)

    def test_malformed_ctc_object(self):
        record = _ctc_record()
        del record["ctc"]["separation_db"]
        record["ctc"]["ber"] = 1.5
        record["ctc"]["delivery"] = {"sledzig": 0.99}
        violations = lint_record(record, "here")
        assert any("separation_db" in v for v in violations)
        assert any("ctc.ber" in v for v in violations)
        assert any("ctc.delivery" in v and "delta" in v for v in violations)

    def test_ctc_not_an_object(self):
        record = _ctc_record()
        record["ctc"] = [1, 2, 3]
        assert any(
            "'ctc' is not an object" in v for v in lint_record(record, "here")
        )

    def test_non_json_line_and_exit_status(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        path.write_text("not json\n")
        assert main([str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().out

    def test_empty_manifest_flagged(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text("")
        assert lint_manifest(path) == [f"{path}: empty manifest"]

    def test_missing_file_flagged(self, tmp_path):
        violations = lint_manifest(tmp_path / "absent.jsonl")
        assert len(violations) == 1 and "unreadable" in violations[0]

    def test_usage_without_args(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out
