"""Differential conformance matrix: every backend against ``reference``.

The matrix enumerates :data:`repro.kernels.GLOBAL_REGISTRY` — registering
a backend is all it takes to enrol it here.  Each kernel is exercised
through its public dispatching wrapper with an explicit ``backend=``
override and the outputs are held **bit-identical** to the reference
backend on two input families:

* the golden-vector corpus (``tests/vectors``), which pins the kernels to
  real encode/decode traffic, and
* hypothesis-generated inputs covering random batch shapes, degenerate
  (zero-length / empty-batch) inputs, all-erasure metrics, and singular
  or inconsistent GF(2) systems (where *raising the same error* is the
  conformance contract).

Soft-metric inputs are restricted to finite floats: the reference argmax
and the optimized strict-compare agree on every finite input but would
diverge on NaN, and no receiver path produces NaN metrics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Tuple

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.dsp import dsss
from repro.dsp.trellis import (
    ERASURE,
    conv_encode_batch,
    viterbi_decode_batch,
    viterbi_decode_soft_batch,
)
from repro.errors import EncodingError
from repro.sledzig import insertion
from repro.utils.galois import gf2_rank, gf2_solve

VECTOR_DIR = Path(__file__).resolve().parents[1] / "vectors"

REFERENCE = kernels.REFERENCE_BACKEND

#: Every declared non-reference backend — including unavailable ones like
#: ``numba`` without numba installed, whose kernels must *fall back* to
#: bit-identical implementations rather than fail.
CANDIDATES = [
    name for name in kernels.available_backends() if name != REFERENCE
]

backends = pytest.mark.parametrize("backend", CANDIDATES)


def _vector(name: str) -> "np.lib.npyio.NpzFile":
    return np.load(VECTOR_DIR / f"{name}.npz")


def _outcome(fn: Callable[[str], object], backend: str):
    """Run *fn* under one backend -> ("ok", value) or ("raise", type, msg)."""
    try:
        return ("ok", fn(backend))
    except EncodingError as exc:
        return ("raise", type(exc), str(exc))


def assert_conforms(fn: Callable[[str], object], backend: str) -> None:
    """Assert *fn* produces bit-identical results (or the same error)."""
    expected = _outcome(fn, REFERENCE)
    actual = _outcome(fn, backend)
    assert actual[0] == expected[0], (
        f"backend {backend!r} {'raised' if actual[0] == 'raise' else 'returned'}"
        f" where reference did not: {actual} vs {expected}"
    )
    if expected[0] == "raise":
        assert actual[1] is expected[1]
        return
    exp, act = expected[1], actual[1]
    if not isinstance(exp, tuple):
        exp, act = (exp,), (act,)
    assert len(act) == len(exp)
    for i, (e, a) in enumerate(zip(exp, act)):
        e_arr, a_arr = np.asarray(e), np.asarray(a)
        assert e_arr.shape == a_arr.shape, f"output {i} shape mismatch"
        assert np.array_equal(e_arr, a_arr), (
            f"backend {backend!r} output {i} diverges from reference"
        )


# ---------------------------------------------------------------------------
# Golden-vector conformance
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden_coded() -> np.ndarray:
    """The wifi golden scrambled field, convolutionally encoded (1, 1152)."""
    with _vector("wifi_roundtrip") as vec:
        field = vec["scrambled_field"].astype(np.uint8)
    coded, _ = conv_encode_batch(field[None, :])
    return coded


@backends
def test_viterbi_hard_golden(backend: str, golden_coded: np.ndarray) -> None:
    clean = golden_coded.copy()
    flipped = golden_coded.copy()
    flipped[:, ::13] ^= 1  # sparse channel errors
    punctured = golden_coded.copy()
    punctured[:, ::5] = ERASURE
    for coded in (clean, flipped, punctured):
        assert_conforms(
            lambda b, c=coded: viterbi_decode_batch(
                c, assume_zero_tail=True, backend=b
            ),
            backend,
        )


@backends
def test_viterbi_soft_golden(backend: str, golden_coded: np.ndarray) -> None:
    rng = np.random.default_rng(2022)
    soft = (golden_coded.astype(np.float64) * 2.0 - 1.0) + rng.normal(
        0.0, 0.4, size=golden_coded.shape
    )
    soft[:, ::7] = 0.0  # punctured positions carry no information
    for zero_tail in (False, True):
        assert_conforms(
            lambda b, zt=zero_tail: viterbi_decode_soft_batch(
                soft, assume_zero_tail=zt, backend=b
            ),
            backend,
        )


@backends
def test_dsss_golden(backend: str) -> None:
    with _vector("zigbee_roundtrip") as vec:
        chips = vec["chips"].astype(np.float64)
    rng = np.random.default_rng(2022)
    noisy = (chips * 2.0 - 1.0) + rng.normal(0.0, 0.6, size=chips.shape)
    assert_conforms(
        lambda b: dsss.correlate_batch(noisy.reshape(2, -1), backend=b),
        backend,
    )
    assert_conforms(lambda b: dsss.despread_batch(chips, backend=b), backend)


@backends
def test_gf2_golden_cluster_systems(backend: str) -> None:
    """Rank/solve conformance on the real insertion-planning systems."""
    plan = insertion.plan_insertion("qam64-2/3", "CH2", 12)
    assert plan.clusters, "golden plan unexpectedly unconstrained"
    for cluster in plan.clusters:
        matrix = [
            [insertion._coefficient(c, p) for p in cluster.reserved]
            for c in cluster.constraints
        ]
        rhs = [c.value for c in cluster.constraints]
        assert_conforms(lambda b, m=matrix: gf2_rank(m, backend=b), backend)
        assert_conforms(
            lambda b, m=matrix, r=rhs: gf2_solve(m, r, backend=b), backend
        )


@backends
def test_insertion_stream_golden(backend: str) -> None:
    """End to end: build_stream under each backend reproduces the golden stream."""
    from repro.wifi.params import get_mcs

    with _vector("sledzig_insertion") as vec:
        stream = vec["stream"].astype(np.uint8)
        extra = vec["extra_positions"]
    n_symbols = stream.size // get_mcs("qam64-2/3").n_dbps
    plan = insertion.plan_insertion("qam64-2/3", "CH2", n_symbols)
    assert tuple(extra.tolist()) == plan.extra_positions
    is_extra = np.zeros(stream.size, dtype=bool)
    is_extra[extra] = True
    payload_scrambled = stream[~is_extra]
    with kernels.use_backend(backend):
        rebuilt = insertion.build_stream(plan, payload_scrambled)
    assert np.array_equal(rebuilt, stream)
    assert not insertion.verify_stream(rebuilt, "qam64-2/3", "CH2")


# ---------------------------------------------------------------------------
# Hypothesis-generated conformance
# ---------------------------------------------------------------------------

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def coded_batches(draw) -> Tuple[np.ndarray, bool]:
    """Random hard coded batches: any shape incl. empty, values {0,1,ERASURE}."""
    n_batch = draw(st.integers(min_value=0, max_value=3))
    n_steps = draw(st.integers(min_value=0, max_value=24))
    bits = draw(
        st.lists(
            st.integers(min_value=0, max_value=2),
            min_size=n_batch * 2 * n_steps,
            max_size=n_batch * 2 * n_steps,
        )
    )
    coded = np.array(bits, dtype=np.uint8).reshape(n_batch, 2 * n_steps)
    return coded, draw(st.booleans())


@st.composite
def soft_batches(draw) -> Tuple[np.ndarray, bool]:
    """Random finite soft batches (LLR-like), any shape incl. empty."""
    n_batch = draw(st.integers(min_value=0, max_value=3))
    n_steps = draw(st.integers(min_value=0, max_value=16))
    values = draw(
        st.lists(
            finite,
            min_size=n_batch * 2 * n_steps,
            max_size=n_batch * 2 * n_steps,
        )
    )
    soft = np.array(values, dtype=np.float64).reshape(n_batch, 2 * n_steps)
    return soft, draw(st.booleans())


@st.composite
def gf2_systems(draw) -> Tuple[np.ndarray, np.ndarray]:
    """Random GF(2) systems, biased towards singular/inconsistent ones."""
    rows = draw(st.integers(min_value=0, max_value=8))
    cols = draw(st.integers(min_value=0, max_value=8))
    bits = draw(
        st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=rows * (cols + 1),
            max_size=rows * (cols + 1),
        )
    )
    arr = np.array(bits, dtype=np.uint8).reshape(rows, cols + 1)
    matrix, rhs = arr[:, :cols], arr[:, cols].copy()
    if rows >= 2 and draw(st.booleans()):
        # Force a dependent row; flipping its rhs forces inconsistency.
        matrix[-1] = matrix[0]
        if draw(st.booleans()):
            rhs[-1] = rhs[0] ^ 1
        else:
            rhs[-1] = rhs[0]
    return matrix, rhs


@backends
@settings(max_examples=60, deadline=None)
@given(case=coded_batches())
def test_viterbi_hard_property(backend: str, case) -> None:
    coded, zero_tail = case
    assert_conforms(
        lambda b: viterbi_decode_batch(
            coded, assume_zero_tail=zero_tail, backend=b
        ),
        backend,
    )


@backends
@settings(max_examples=60, deadline=None)
@given(case=soft_batches())
def test_viterbi_soft_property(backend: str, case) -> None:
    soft, zero_tail = case
    assert_conforms(
        lambda b: viterbi_decode_soft_batch(
            soft, assume_zero_tail=zero_tail, backend=b
        ),
        backend,
    )


@backends
def test_viterbi_all_erasure(backend: str) -> None:
    """All-erasure hard input and all-zero soft input: pure tie-breaking."""
    hard = np.full((2, 40), ERASURE, dtype=np.uint8)
    soft = np.zeros((2, 40), dtype=np.float64)
    assert_conforms(
        lambda b: viterbi_decode_batch(hard, backend=b), backend
    )
    assert_conforms(
        lambda b: viterbi_decode_soft_batch(soft, backend=b), backend
    )


@backends
@settings(max_examples=40, deadline=None)
@given(
    n_batch=st.integers(min_value=0, max_value=3),
    n_symbols=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_dsss_property(backend: str, n_batch, n_symbols, seed) -> None:
    rng = np.random.default_rng(seed)
    chips = rng.normal(0.0, 1.0, size=(n_batch, 32 * n_symbols))
    assert_conforms(
        lambda b: dsss.correlate_batch(chips, backend=b), backend
    )


@backends
@settings(max_examples=80, deadline=None)
@given(system=gf2_systems())
def test_gf2_property(backend: str, system) -> None:
    matrix, rhs = system
    assert_conforms(lambda b, m=matrix: gf2_rank(m, backend=b), backend)
    assert_conforms(
        lambda b, m=matrix, r=rhs: gf2_solve(m, r, backend=b), backend
    )


@backends
def test_gf2_inconsistent_raises_on_every_backend(backend: str) -> None:
    matrix = [[1, 1], [1, 1]]
    rhs = [0, 1]
    assert_conforms(lambda b: gf2_solve(matrix, rhs, backend=b), backend)
    with pytest.raises(EncodingError):
        gf2_solve(matrix, rhs, backend=backend)
