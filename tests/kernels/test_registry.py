"""Unit tests for the kernel registry's selection and fallback machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.errors import ConfigurationError
from repro.kernels.registry import KernelRegistry


@pytest.fixture(autouse=True)
def _restore_selection():
    """Every test leaves the process-wide selection as it found it."""
    before = kernels.get_backend()
    yield
    kernels.set_backend(before)


class TestGlobalRegistry:
    def test_reference_backend_is_complete(self) -> None:
        for kernel in kernels.KERNEL_NAMES:
            assert kernels.GLOBAL_REGISTRY.implemented("reference", kernel)

    def test_declared_backends(self) -> None:
        names = kernels.available_backends()
        assert names[0] == "reference"
        assert "optimized" in names
        assert "numba" in names  # declared even when numba is absent

    def test_optimized_skips_dsss_and_falls_back(self) -> None:
        assert not kernels.GLOBAL_REGISTRY.implemented(
            "optimized", "dsss_correlate"
        )
        assert kernels.resolved_backend("dsss_correlate", "optimized") == (
            "reference"
        )

    def test_numba_resolves_without_crashing(self) -> None:
        # With numba absent every kernel falls back; with it present the
        # viterbi kernels resolve natively.  Either way resolution succeeds.
        for kernel in kernels.KERNEL_NAMES:
            resolved = kernels.resolved_backend(kernel, "numba")
            assert resolved in kernels.available_backends()

    def test_backend_report_shape(self) -> None:
        report = kernels.backend_report("reference")
        assert set(report) == set(kernels.KERNEL_NAMES)
        assert set(report.values()) == {"reference"}

    def test_unknown_backend_raises(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            kernels.resolved_backend("viterbi_hard", "turbo")

    def test_dispatch_explicit_backend_runs(self) -> None:
        rank = kernels.dispatch(
            "gf2_rank", np.eye(3, dtype=np.uint8), backend="reference"
        )
        assert int(rank) == 3


class TestSelection:
    def test_set_backend_validates(self) -> None:
        with pytest.raises(ConfigurationError):
            kernels.set_backend("no-such-backend")

    def test_use_backend_restores(self) -> None:
        before = kernels.get_backend()
        with kernels.use_backend("reference"):
            assert kernels.get_backend() == "reference"
        assert kernels.get_backend() == before

    def test_use_backend_restores_on_error(self) -> None:
        before = kernels.get_backend()
        with pytest.raises(RuntimeError):
            with kernels.use_backend("reference"):
                raise RuntimeError("boom")
        assert kernels.get_backend() == before

    def test_env_var_selection(self, monkeypatch) -> None:
        monkeypatch.setenv(kernels.ENV_VAR, "reference")
        kernels.reset_backend()
        assert kernels.get_backend() == "reference"
        monkeypatch.delenv(kernels.ENV_VAR)
        kernels.reset_backend()
        assert kernels.get_backend() == kernels.DEFAULT_BACKEND

    def test_bad_env_var_fails_at_dispatch_not_import(self, monkeypatch) -> None:
        monkeypatch.setenv(kernels.ENV_VAR, "bogus")
        kernels.reset_backend()
        assert kernels.get_backend() == "bogus"  # tolerated until used
        with pytest.raises(ConfigurationError):
            kernels.dispatch("gf2_rank", np.eye(2, dtype=np.uint8))


class TestFallbackChains:
    def test_partial_backend_falls_back_per_kernel(self) -> None:
        reg = KernelRegistry()
        reg.declare_backend("reference", fallback=None)
        reg.register("reference", "gf2_rank", lambda a: "ref")
        reg.register("reference", "gf2_solve", lambda a, b: "ref")
        reg.declare_backend("fast", fallback="reference")
        reg.register("fast", "gf2_rank", lambda a: "fast")
        assert reg.resolve("gf2_rank", "fast")[0] == "fast"
        assert reg.resolve("gf2_solve", "fast")[0] == "reference"

    def test_chained_fallback(self) -> None:
        reg = KernelRegistry()
        reg.declare_backend("reference", fallback=None)
        reg.register("reference", "viterbi_hard", lambda *a: "ref")
        reg.declare_backend("mid", fallback="reference")
        reg.declare_backend("top", fallback="mid")
        assert reg.resolve("viterbi_hard", "top")[0] == "reference"

    def test_cycle_detected(self) -> None:
        reg = KernelRegistry()
        reg.declare_backend("a", fallback="b")
        reg.declare_backend("b", fallback="a")
        with pytest.raises(ConfigurationError, match="cycle"):
            reg.resolve("viterbi_hard", "a")

    def test_dead_end_chain_raises(self) -> None:
        reg = KernelRegistry()
        reg.declare_backend("lonely", fallback=None)
        with pytest.raises(ConfigurationError, match="no backend implements"):
            reg.resolve("viterbi_hard", "lonely")

    def test_unknown_kernel_name_rejected(self) -> None:
        reg = KernelRegistry()
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            reg.register("reference", "fft_mixdown", lambda: None)

    def test_declare_is_idempotent(self) -> None:
        reg = KernelRegistry()
        first = reg.declare_backend("x", fallback="reference")
        first.kernels["gf2_rank"] = lambda a: 0
        again = reg.declare_backend("x", fallback="something-else")
        assert again is first
        assert again.fallback == "reference"  # first declaration wins

    def test_available_only_filter(self) -> None:
        reg = KernelRegistry()
        reg.declare_backend("reference", fallback=None)
        reg.declare_backend("ghost", available=False)
        assert reg.backend_names() == ("reference", "ghost")
        assert reg.backend_names(available_only=True) == ("reference",)
