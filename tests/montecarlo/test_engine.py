"""The Monte-Carlo engine: bit-reproducibility, batching, early stop, workers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.montecarlo import MonteCarloEngine, seeding


def gauss_trial(rng, index):
    """A trial whose outcome is one draw from the trial's own stream."""
    return float(rng.normal())


def gauss_batch(rngs, indices):
    return [float(rng.normal()) for rng in rngs]


def coin_trial(rng, index):
    return float(rng.integers(0, 2))


def constant_batch(rngs, indices):
    return [1.0 for _ in rngs]


def short_batch(rngs, indices):
    return [0.0]


def multi_draw_trial(rng, index):
    """Several draws of mixed kinds — exercises draw-order preservation."""
    a = rng.normal(size=3)
    b = float(rng.integers(0, 100))
    return float(a.sum() + b)


class TestReproducibility:
    def test_batch_of_n_equals_n_batches_of_one(self):
        engine = MonteCarloEngine("engine/batching", master_seed=11)
        whole = engine.run(gauss_trial, 24, batch_size=24)
        singles = engine.run(gauss_trial, 24, batch_size=1)
        odd = engine.run(gauss_trial, 24, batch_size=5)
        assert np.array_equal(whole.outcomes, singles.outcomes)
        assert np.array_equal(whole.outcomes, odd.outcomes)

    def test_batch_fn_matches_trial_fn(self):
        engine = MonteCarloEngine("engine/contract", master_seed=2)
        scalar = engine.run(gauss_trial, 16, batch_size=4)
        batched = engine.run(batch_fn=gauss_batch, n_trials=16, batch_size=4)
        assert np.array_equal(scalar.outcomes, batched.outcomes)

    def test_workers_match_serial(self):
        engine = MonteCarloEngine("engine/workers", master_seed=5)
        serial = engine.run(multi_draw_trial, 20, batch_size=4, workers=0)
        parallel = engine.run(multi_draw_trial, 20, batch_size=4, workers=3)
        assert np.array_equal(serial.outcomes, parallel.outcomes)

    def test_outcome_k_uses_trial_k_stream(self):
        engine = MonteCarloEngine("engine/address", master_seed=3)
        result = engine.run(gauss_trial, 8, batch_size=3)
        for k in range(8):
            rng = seeding.trial_rng(3, "engine/address", k)
            assert result.outcomes[k] == float(rng.normal())

    def test_different_experiments_differ(self):
        a = MonteCarloEngine("engine/a", master_seed=1).run(gauss_trial, 8)
        b = MonteCarloEngine("engine/b", master_seed=1).run(gauss_trial, 8)
        assert not np.array_equal(a.outcomes, b.outcomes)


class TestSummaries:
    def test_proportion_kind_uses_wilson(self):
        engine = MonteCarloEngine("engine/coin", master_seed=0, kind="proportion")
        result = engine.run(coin_trial, 40)
        assert result.summary.kind == "proportion"
        assert 0.0 <= result.summary.ci_low <= result.summary.mean
        assert result.summary.mean <= result.summary.ci_high <= 1.0

    def test_mean_kind(self):
        result = MonteCarloEngine("engine/mean", master_seed=0).run(gauss_trial, 40)
        assert result.summary.kind == "mean"
        assert result.n_trials == 40


class TestEarlyStop:
    def test_stops_at_batch_boundary(self):
        engine = MonteCarloEngine("engine/stop", master_seed=0)
        result = engine.run(
            batch_fn=constant_batch, n_trials=100, batch_size=10,
            target_halfwidth=0.01, min_trials=8,
        )
        # Constant outcomes: halfwidth hits 0 after the first batch.
        assert result.stopped_early
        assert result.n_trials == 10

    def test_min_trials_floor(self):
        engine = MonteCarloEngine("engine/stop-floor", master_seed=0)
        result = engine.run(
            batch_fn=constant_batch, n_trials=100, batch_size=5,
            target_halfwidth=0.01, min_trials=20,
        )
        assert result.n_trials == 20

    def test_workers_stop_at_same_boundary(self):
        engine = MonteCarloEngine("engine/stop-workers", master_seed=4)
        kwargs = dict(
            batch_fn=constant_batch, n_trials=60, batch_size=6,
            target_halfwidth=0.01, min_trials=6,
        )
        serial = engine.run(**kwargs, workers=0)
        parallel = engine.run(**kwargs, workers=4)
        assert serial.n_trials == parallel.n_trials
        assert np.array_equal(serial.outcomes, parallel.outcomes)
        assert serial.stopped_early and parallel.stopped_early

    def test_full_run_not_marked_early(self):
        engine = MonteCarloEngine("engine/full", master_seed=0)
        result = engine.run(
            batch_fn=constant_batch, n_trials=10, batch_size=10,
            target_halfwidth=0.01, min_trials=10,
        )
        assert result.n_trials == 10
        assert not result.stopped_early


class TestValidation:
    def test_rejects_bad_arguments(self):
        engine = MonteCarloEngine("engine/bad", master_seed=0)
        with pytest.raises(ConfigurationError):
            engine.run(n_trials=4)
        with pytest.raises(ConfigurationError):
            engine.run(gauss_trial, 0)
        with pytest.raises(ConfigurationError):
            engine.run(gauss_trial, 4, batch_size=0)
        with pytest.raises(ConfigurationError):
            MonteCarloEngine("engine/kind", kind="median")

    def test_batch_fn_length_mismatch_detected(self):
        engine = MonteCarloEngine("engine/len", master_seed=0)
        with pytest.raises(ConfigurationError):
            engine.run(batch_fn=short_batch, n_trials=4, batch_size=4)
