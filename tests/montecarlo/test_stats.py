"""Summary statistics: Wilson intervals, mean CIs, halfwidths."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.montecarlo.stats import (
    Z_95,
    TrialSummary,
    summarize_mean,
    summarize_proportion,
    wilson_interval,
)


class TestWilsonInterval:
    def test_stays_in_unit_interval_at_extremes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0 and 0.0 < high < 0.3
        low, high = wilson_interval(20, 20)
        assert 0.7 < low < 1.0 and high == 1.0

    def test_contains_point_estimate(self):
        for successes, n in [(1, 10), (5, 10), (9, 10), (50, 100)]:
            low, high = wilson_interval(successes, n)
            assert low <= successes / n <= high

    def test_narrows_with_n(self):
        w_small = np.diff(wilson_interval(5, 10))[0]
        w_large = np.diff(wilson_interval(500, 1000))[0]
        assert w_large < w_small

    def test_returns_plain_floats(self):
        low, high = wilson_interval(3, 7)
        assert type(low) is float and type(high) is float

    def test_validates(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 4)
        with pytest.raises(ConfigurationError):
            wilson_interval(-1, 4)


class TestSummarizeMean:
    def test_known_values(self):
        s = summarize_mean([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        sem = s.std / 2.0
        assert s.ci_low == pytest.approx(2.5 - Z_95 * sem)
        assert s.ci_high == pytest.approx(2.5 + Z_95 * sem)
        assert s.halfwidth == pytest.approx(Z_95 * sem)
        assert s.kind == "mean"

    def test_single_trial_degenerate(self):
        s = summarize_mean([7.0])
        assert s.std == 0.0 and s.halfwidth == 0.0 and s.mean == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_mean([])


class TestSummarizeProportion:
    def test_mean_is_success_fraction(self):
        s = summarize_proportion([1.0, 0.0, 1.0, 1.0])
        assert s.n == 4 and s.mean == 0.75 and s.kind == "proportion"
        assert (s.ci_low, s.ci_high) == wilson_interval(3, 4)

    def test_non_binary_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_proportion([0.5, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_proportion([])


class TestTrialSummary:
    def test_halfwidth(self):
        s = TrialSummary(n=3, mean=0.0, std=1.0, ci_low=-2.0, ci_high=4.0)
        assert s.halfwidth == 3.0
