"""The seed-addressing scheme: stable, independent, spawn-compatible."""

import numpy as np
import pytest

from repro.montecarlo import seeding


class TestExperimentEntropy:
    def test_stable_across_calls(self):
        assert seeding.experiment_entropy("a/b") == seeding.experiment_entropy("a/b")

    def test_is_sha256_not_hash(self):
        # Pinned value: stays fixed across processes and Python versions
        # (hash() would not, under PYTHONHASHSEED randomisation).
        words = seeding.experiment_entropy("snr_waterfall")
        assert all(0 <= w < 2**32 for w in words)
        assert len(words) == 4
        assert words == seeding.experiment_entropy("snr_waterfall")

    def test_distinct_experiments_distinct_entropy(self):
        assert seeding.experiment_entropy("e1") != seeding.experiment_entropy("e2")


class TestTrialSequence:
    def test_equals_spawned_child(self):
        # The documented equivalence: trial i is the i-th spawn() child.
        root = seeding.experiment_sequence(42, "exp")
        children = root.spawn(5)
        for i, child in enumerate(children):
            direct = seeding.trial_sequence(42, "exp", i)
            assert np.array_equal(
                direct.generate_state(4), child.generate_state(4)
            )

    def test_order_independent(self):
        late = seeding.trial_rng(1, "e", 1000)
        early = seeding.trial_rng(1, "e", 0)
        again = seeding.trial_rng(1, "e", 1000)
        assert late.integers(0, 2**31) == again.integers(0, 2**31)
        assert early.integers(0, 2**31) != late.integers(0, 2**31) or True

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            seeding.trial_sequence(0, "e", -1)

    def test_streams_differ_across_axes(self):
        base = seeding.trial_rng(0, "e", 0).integers(0, 2**31, size=8)
        assert not np.array_equal(
            base, seeding.trial_rng(0, "e", 1).integers(0, 2**31, size=8)
        )
        assert not np.array_equal(
            base, seeding.trial_rng(1, "e", 0).integers(0, 2**31, size=8)
        )
        assert not np.array_equal(
            base, seeding.trial_rng(0, "f", 0).integers(0, 2**31, size=8)
        )


class TestTrialRngs:
    def test_matches_individual_rngs(self):
        batch = seeding.trial_rngs(9, "e", [3, 1, 4])
        for rng, i in zip(batch, [3, 1, 4]):
            single = seeding.trial_rng(9, "e", i)
            assert np.array_equal(
                rng.integers(0, 2**31, size=4), single.integers(0, 2**31, size=4)
            )


class TestTrialSeed:
    def test_deterministic_64_bit(self):
        s = seeding.trial_seed(5, "mac", 7)
        assert s == seeding.trial_seed(5, "mac", 7)
        assert 0 <= s < 2**64
        assert s != seeding.trial_seed(5, "mac", 8)
