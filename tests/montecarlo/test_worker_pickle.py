"""Regression: the worker hand-off must not re-pickle payloads per task.

The engine used to submit ``(experiment, master_seed, trial_fn, batch_fn,
indices)`` with every batch, so a ``batch_fn`` carrying stacked payload
arrays was re-serialised per task.  Campaign constants now travel once
via the pool initializer; each task carries only its trial indices.
These tests pin both halves: per-task pickled bytes stay bounded even
with a multi-megabyte evaluator, and the initializer path produces
results bit-identical to the serial path.
"""

from __future__ import annotations

import functools
import pickle
from concurrent.futures import Future

import numpy as np
import pytest

import repro.montecarlo.engine as engine_module
from repro.errors import ConfigurationError
from repro.montecarlo import MonteCarloEngine

#: Ceiling for one task's pickled (fn, args, kwargs): indices only.
TASK_PICKLE_CEILING = 8192


class _RecordingExecutor:
    """Stand-in ProcessPoolExecutor: runs inline, records pickle sizes.

    Mirrors the real executor's serialisation contract — the initializer
    and its args are pickled once, every submitted task is pickled per
    call — without process overhead, so the byte accounting is exact and
    fast.
    """

    instances: "list[_RecordingExecutor]" = []

    def __init__(self, max_workers=None, initializer=None, initargs=()):
        self.initializer_bytes = len(pickle.dumps((initializer, initargs)))
        self.task_bytes: "list[int]" = []
        if initializer is not None:
            initializer(*initargs)
        _RecordingExecutor.instances.append(self)

    def submit(self, fn, *args, **kwargs):
        self.task_bytes.append(len(pickle.dumps((fn, args, kwargs))))
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except Exception as exc:  # mirror executor future semantics
            future.set_exception(exc)
        return future

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


@pytest.fixture
def recording_pool(monkeypatch):
    _RecordingExecutor.instances = []
    monkeypatch.setattr(engine_module, "ProcessPoolExecutor",
                        _RecordingExecutor)
    return _RecordingExecutor


def _payload_batch_fn(payload: np.ndarray, rngs, indices):
    """Batch evaluator carrying a large payload array (module-level so the
    executor contract — picklable evaluators — holds)."""
    return [float(rng.integers(0, 100)) + float(payload[0]) for rng in rngs]


def _uniform_batch_fn(rngs, indices):
    return [float(rng.integers(0, 1000)) for rng in rngs]


def _uniform_trial_fn(rng, index):
    return float(rng.integers(0, 10))


def _normal_batch_fn(rngs, indices):
    return [float(rng.standard_normal()) for rng in rngs]


def test_per_task_pickle_bytes_are_bounded(recording_pool):
    heavy = functools.partial(
        _payload_batch_fn, np.zeros(1_000_000, dtype=np.float64)
    )
    engine = MonteCarloEngine("pickle_bound", master_seed=7)
    engine.run(batch_fn=heavy, n_trials=64, batch_size=8, workers=2)
    (executor,) = recording_pool.instances
    # The ~8 MB payload travelled once, with the initializer...
    assert executor.initializer_bytes > 1_000_000
    # ...and never with a task: tasks carry only their trial indices.
    assert len(executor.task_bytes) == 8
    assert max(executor.task_bytes) < TASK_PICKLE_CEILING


def test_initializer_path_matches_serial_results(recording_pool):
    serial = MonteCarloEngine("init_equiv", master_seed=3).run(
        batch_fn=_uniform_batch_fn, n_trials=40, batch_size=8
    )
    pooled = MonteCarloEngine("init_equiv", master_seed=3).run(
        batch_fn=_uniform_batch_fn, n_trials=40, batch_size=8, workers=2
    )
    np.testing.assert_array_equal(serial.outcomes, pooled.outcomes)


def test_trial_fn_travels_via_initializer_too(recording_pool):
    serial = MonteCarloEngine("trial_equiv", master_seed=5).run(
        _uniform_trial_fn, n_trials=24, batch_size=6
    )
    pooled = MonteCarloEngine("trial_equiv", master_seed=5).run(
        _uniform_trial_fn, n_trials=24, batch_size=6, workers=3
    )
    np.testing.assert_array_equal(serial.outcomes, pooled.outcomes)
    executor = recording_pool.instances[-1]
    assert max(executor.task_bytes) < TASK_PICKLE_CEILING


def test_worker_batch_without_initializer_raises():
    engine_module._WORKER_CAMPAIGN = None
    with pytest.raises(ConfigurationError):
        engine_module._worker_batch([0, 1])


def test_real_process_pool_still_bit_identical():
    """End-to-end: a genuine process pool with the initializer hand-off."""
    serial = MonteCarloEngine("real_pool", master_seed=11).run(
        batch_fn=_normal_batch_fn, n_trials=32, batch_size=8
    )
    pooled = MonteCarloEngine("real_pool", master_seed=11).run(
        batch_fn=_normal_batch_fn, n_trials=32, batch_size=8, workers=2
    )
    np.testing.assert_array_equal(serial.outcomes, pooled.outcomes)
