"""Tests for the K=7 convolutional encoder and Viterbi decoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.utils.bits import random_bits
from repro.wifi.convolutional import (
    CONSTRAINT_LENGTH,
    ERASURE,
    ConvolutionalEncoder,
    conv_encode,
    encode_output_bit,
    viterbi_decode,
)


class TestEncoder:
    def test_rate_is_half(self, rng):
        bits = random_bits(100, rng)
        assert conv_encode(bits).size == 200

    def test_known_impulse_response(self):
        # A single 1 followed by zeros emits the generator taps interleaved.
        out = conv_encode([1, 0, 0, 0, 0, 0, 0])
        # g0 = 1011011, g1 = 1111001 read over successive steps.
        expected_a = [1, 0, 1, 1, 0, 1, 1]
        expected_b = [1, 1, 1, 1, 0, 0, 1]
        assert out[0::2].tolist() == expected_a
        assert out[1::2].tolist() == expected_b

    def test_linearity(self, rng):
        """Encoding is linear over GF(2): enc(a^b) = enc(a)^enc(b)."""
        a = random_bits(64, rng)
        b = random_bits(64, rng)
        combined = conv_encode((a ^ b).astype(np.uint8))
        assert np.array_equal(combined, conv_encode(a) ^ conv_encode(b))

    def test_streaming_matches_block(self, rng):
        bits = random_bits(90, rng)
        enc = ConvolutionalEncoder()
        stream = np.concatenate([enc.encode(bits[:40]), enc.encode(bits[40:])])
        assert np.array_equal(stream, conv_encode(bits))

    def test_state_tracking(self):
        enc = ConvolutionalEncoder()
        enc.encode([1, 1, 0])
        # State holds the last inputs, newest in the MSB: 011000.
        assert enc.state == 0b011000
        enc.reset()
        assert enc.state == 0

    def test_encode_bit_rejects_non_binary(self):
        with pytest.raises(EncodingError):
            ConvolutionalEncoder().encode_bit(2)

    def test_encode_output_bit_matches_encoder(self, rng):
        bits = random_bits(30, rng)
        coded = conv_encode(bits)
        padded = np.concatenate([np.zeros(6, np.uint8), bits])
        for n in range(bits.size):
            window = padded[n : n + 7][::-1]  # [x_n, x_{n-1}, ..., x_{n-6}]
            assert encode_output_bit(window, 0) == coded[2 * n]
            assert encode_output_bit(window, 1) == coded[2 * n + 1]

    def test_encode_output_bit_wrong_window(self):
        with pytest.raises(EncodingError):
            encode_output_bit([1, 0], 0)


class TestViterbi:
    @given(st.integers(0, 2**20))
    @settings(max_examples=25, deadline=None)
    def test_clean_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        data = np.concatenate([random_bits(120, rng), np.zeros(6, np.uint8)])
        decoded = viterbi_decode(conv_encode(data), n_data_bits=data.size)
        assert np.array_equal(decoded, data)

    def test_corrects_scattered_errors(self, rng):
        data = np.concatenate([random_bits(200, rng), np.zeros(6, np.uint8)])
        coded = conv_encode(data)
        corrupted = coded.copy()
        # Flip well-separated bits: free distance 10 corrects these easily.
        for pos in (10, 90, 170, 250, 330):
            corrupted[pos] ^= 1
        decoded = viterbi_decode(corrupted, n_data_bits=data.size)
        assert np.array_equal(decoded, data)

    def test_erasures_recoverable(self, rng):
        data = np.concatenate([random_bits(100, rng), np.zeros(6, np.uint8)])
        coded = conv_encode(data).copy()
        coded[5] = ERASURE
        coded[50] = ERASURE
        decoded = viterbi_decode(coded, n_data_bits=data.size)
        assert np.array_equal(decoded, data)

    def test_odd_length_rejected(self):
        with pytest.raises(DecodingError):
            viterbi_decode([1, 0, 1])

    def test_too_many_data_bits_rejected(self):
        with pytest.raises(DecodingError):
            viterbi_decode([1, 0, 1, 1], n_data_bits=3)

    def test_without_zero_tail_assumption(self, rng):
        data = random_bits(100, rng)  # no tail
        decoded = viterbi_decode(
            conv_encode(data), n_data_bits=data.size, assume_zero_tail=False
        )
        assert np.array_equal(decoded, data)

    def test_constraint_length(self):
        assert CONSTRAINT_LENGTH == 7
