"""Tests for receiver impairment handling: CFO and phase tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn, frequency_shift
from repro.utils.bits import random_bits
from repro.wifi.params import SAMPLE_RATE_HZ
from repro.wifi.preamble import PREAMBLE_LENGTH
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter


def _impaired_frame(rng, mcs="qam64-2/3", cfo_hz=0.0, snr_db=30.0, phase=0.0):
    psdu = random_bits(8 * 50, rng)
    frame = WifiTransmitter(mcs).transmit(psdu)
    w = frame.waveform * np.exp(1j * phase)
    if cfo_hz:
        w = frequency_shift(w, cfo_hz, SAMPLE_RATE_HZ)
    if snr_db is not None:
        w = awgn(w, snr_db, rng)
    return psdu, w


class TestCfoEstimation:
    @pytest.mark.parametrize("cfo_khz", [-96.0, -30.0, 5.0, 50.0, 96.0])
    def test_estimate_accuracy(self, cfo_khz, rng):
        """The STS+LTS estimator lands within ~1 kHz over the 802.11
        +-40 ppm range (+-96 kHz at 2.4 GHz)."""
        _, w = _impaired_frame(rng, cfo_hz=cfo_khz * 1e3)
        est = WifiReceiver.estimate_cfo(np.asarray(w), PREAMBLE_LENGTH)
        assert est == pytest.approx(cfo_khz * 1e3, abs=1200.0)

    @pytest.mark.parametrize("cfo_khz", [-96.0, 40.0, 96.0])
    def test_decodes_across_spec_range(self, cfo_khz, rng):
        psdu, w = _impaired_frame(rng, cfo_hz=cfo_khz * 1e3, snr_db=28.0)
        rec = WifiReceiver().receive(w)
        assert np.array_equal(rec.psdu_bits, psdu)

    def test_without_correction_fails(self, rng):
        """Disabling CFO correction at 50 kHz offset breaks QAM-64 —
        either the header fails to parse or the payload corrupts."""
        from repro.errors import DecodingError

        psdu, w = _impaired_frame(rng, cfo_hz=50e3, snr_db=None)
        try:
            rec = WifiReceiver().receive(
                w, data_start=PREAMBLE_LENGTH, correct_cfo=False, track_phase=False
            )
        except DecodingError:
            return  # SIGNAL parse failure: equally broken
        assert not np.array_equal(rec.psdu_bits, psdu)

    def test_zero_cfo_estimate_near_zero(self, rng):
        _, w = _impaired_frame(rng, snr_db=None)
        est = WifiReceiver.estimate_cfo(np.asarray(w), PREAMBLE_LENGTH)
        assert abs(est) < 200.0


class TestPhaseTracking:
    def test_constant_phase_removed_by_equaliser(self, rng):
        psdu, w = _impaired_frame(rng, phase=1.1, snr_db=None)
        rec = WifiReceiver().receive(w)
        assert np.array_equal(rec.psdu_bits, psdu)

    def test_residual_cfo_handled_by_pilots(self, rng):
        """A small residual CFO (post-correction scale) rotates later
        symbols; pilot tracking absorbs it."""
        psdu, w = _impaired_frame(rng, snr_db=None)
        w = frequency_shift(np.asarray(w), 300.0, SAMPLE_RATE_HZ)  # tiny CFO
        rec = WifiReceiver().receive(
            w, data_start=PREAMBLE_LENGTH, correct_cfo=False, track_phase=True
        )
        assert np.array_equal(rec.psdu_bits, psdu)

    def test_sledzig_frames_survive_cfo(self, rng):
        """The full SledZig pipeline is CFO-tolerant end to end."""
        from repro.sledzig.pipeline import SledZigReceiver, SledZigTransmitter

        payload = bytes(rng.integers(0, 256, 40, dtype=np.uint8))
        packet = SledZigTransmitter("qam16-1/2", "CH2").send(payload)
        w = frequency_shift(packet.waveform, 60e3, SAMPLE_RATE_HZ)
        w = awgn(w, 25.0, rng)
        received = SledZigReceiver().receive(w)
        assert received.payload == payload
        assert received.channel.name == "CH2"
