"""Tests for the SIGNAL field (PLCP header)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DecodingError
from repro.wifi.params import MCS_TABLE, get_mcs
from repro.wifi.signal_field import (
    MAX_LENGTH_OCTETS,
    RATE_CODES,
    build_signal_bits,
    decode_signal_symbol,
    encode_signal_symbol,
    parse_signal_bits,
)


class TestBits:
    def test_layout(self):
        bits = build_signal_bits(get_mcs("qam16-1/2"), 100)
        assert bits.size == 24
        assert np.all(bits[18:] == 0)  # tail

    def test_even_parity(self):
        for length in (1, 77, 4095):
            bits = build_signal_bits(get_mcs("qam64-3/4"), length)
            assert int(bits[:18].sum()) % 2 == 0

    @given(st.sampled_from(sorted(RATE_CODES)), st.integers(1, MAX_LENGTH_OCTETS))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, name, length):
        mcs = get_mcs(name)
        parsed_mcs, parsed_len = parse_signal_bits(build_signal_bits(mcs, length))
        assert parsed_mcs.name == name
        assert parsed_len == length

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigurationError):
            build_signal_bits(get_mcs("qam16-1/2"), 0)

    def test_oversize_rejected(self):
        with pytest.raises(ConfigurationError):
            build_signal_bits(get_mcs("qam16-1/2"), MAX_LENGTH_OCTETS + 1)

    def test_parity_error_detected(self):
        bits = build_signal_bits(get_mcs("qam16-1/2"), 5)
        bits[2] ^= 1
        with pytest.raises(DecodingError):
            parse_signal_bits(bits)

    def test_rate_codes_unique(self):
        assert len(set(RATE_CODES.values())) == len(RATE_CODES)

    def test_every_mcs_has_a_code(self):
        for name in MCS_TABLE:
            assert name in RATE_CODES


class TestSymbol:
    @pytest.mark.parametrize("name", ["qam16-1/2", "qam64-5/6", "qam256-3/4"])
    def test_encode_decode(self, name):
        mcs = get_mcs(name)
        spectrum = encode_signal_symbol(mcs, 321)
        decoded_mcs, length = decode_signal_symbol(spectrum)
        assert decoded_mcs.name == name
        assert length == 321

    def test_signal_symbol_is_bpsk(self):
        spectrum = encode_signal_symbol(get_mcs("qam256-5/6"), 10)
        from repro.wifi.ofdm import extract_subcarriers

        data, _ = extract_subcarriers(spectrum)
        assert np.allclose(np.abs(data.real), 1.0)
        assert np.allclose(data.imag, 0.0)
