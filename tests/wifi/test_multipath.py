"""Multipath robustness: the CP + LTS equaliser handle short echoes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.utils.bits import random_bits
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter


def _two_tap_channel(waveform, delay_samples, echo_gain):
    """Apply a direct path plus one delayed echo."""
    arr = np.asarray(waveform, dtype=np.complex128)
    out = arr.copy()
    out[delay_samples:] += echo_gain * arr[: arr.size - delay_samples]
    return out


class TestMultipath:
    @pytest.mark.parametrize("delay", [1, 4, 8])
    def test_echo_inside_cp_recoverable(self, delay, rng):
        """Echoes shorter than the 16-sample CP are absorbed by the
        frequency-domain equaliser."""
        psdu = random_bits(8 * 50, rng)
        frame = WifiTransmitter("qam16-1/2").transmit(psdu)
        echoed = _two_tap_channel(frame.waveform, delay, 0.3 * np.exp(1j * 0.9))
        reception = WifiReceiver().receive(echoed, data_start=320)
        assert np.array_equal(reception.psdu_bits, psdu)

    def test_echo_with_noise_soft_decoding(self, rng):
        psdu = random_bits(8 * 40, rng)
        frame = WifiTransmitter("qam64-2/3").transmit(psdu)
        echoed = _two_tap_channel(frame.waveform, 6, 0.25)
        noisy = awgn(echoed, 26.0, rng)
        reception = WifiReceiver().receive(noisy, data_start=320, soft=True)
        assert np.array_equal(reception.psdu_bits, psdu)

    def test_without_equaliser_echo_breaks_qam64(self, rng):
        """Disabling equalisation under a strong echo corrupts the frame —
        evidence the LTS estimate is doing real work."""
        from repro.errors import DecodingError

        psdu = random_bits(8 * 40, rng)
        frame = WifiTransmitter("qam64-2/3").transmit(psdu)
        echoed = _two_tap_channel(frame.waveform, 8, 0.45 * np.exp(1j * 2.0))
        try:
            reception = WifiReceiver().receive(
                echoed, data_start=320, equalise=False, track_phase=False
            )
        except DecodingError:
            return
        assert not np.array_equal(reception.psdu_bits, psdu)

    def test_sledzig_notch_survives_multipath(self, rng):
        """The protected channel stays detectable through an echo channel
        (the receiver sees equalised constellation points)."""
        from repro.sledzig.pipeline import SledZigReceiver, SledZigTransmitter

        payload = bytes(rng.integers(0, 256, 40, dtype=np.uint8))
        packet = SledZigTransmitter("qam64-2/3", "CH3").send(payload)
        echoed = _two_tap_channel(packet.waveform, 5, 0.3)
        received = SledZigReceiver().receive(echoed)
        assert received.payload == payload
        assert received.channel.name == "CH3"
