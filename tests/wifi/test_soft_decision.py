"""Tests for soft-decision demapping and Viterbi decoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.errors import DecodingError
from repro.utils.bits import random_bits
from repro.wifi.constellation import demodulate_hard, demodulate_soft, modulate
from repro.wifi.convolutional import conv_encode, viterbi_decode_soft
from repro.wifi.interleaver import deinterleave_soft, interleave
from repro.wifi.params import BITS_PER_SUBCARRIER
from repro.wifi.puncture import depuncture_soft, puncture
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter

QAMS = ("qam16", "qam64", "qam256")


class TestSoftDemap:
    @pytest.mark.parametrize("mod", ("bpsk",) + QAMS)
    def test_signs_match_hard_decisions_clean(self, mod, rng):
        bits = random_bits(BITS_PER_SUBCARRIER[mod] * 64, rng)
        symbols = modulate(bits, mod)
        soft = demodulate_soft(symbols, mod)
        hard = (soft > 0).astype(np.uint8)
        assert np.array_equal(hard, demodulate_hard(symbols, mod))
        assert np.array_equal(hard, bits)

    def test_confidence_scales_with_distance(self):
        """A point near a decision boundary yields a weaker soft value."""
        k = 1 / np.sqrt(10.0)
        confident = demodulate_soft(np.array([k * (3 + 3j)]), "qam16")
        marginal = demodulate_soft(np.array([k * (0.2 + 3j)]), "qam16")
        assert abs(confident[0]) > abs(marginal[0])

    def test_boundary_point_is_zero(self):
        # Real part exactly between -1 and +1 for the sign bit (b0).
        soft = demodulate_soft(np.array([0.0 + 1j / np.sqrt(10)]), "qam16")
        assert soft[0] == pytest.approx(0.0, abs=1e-12)


class TestSoftViterbi:
    def test_clean_roundtrip(self, rng):
        data = np.concatenate([random_bits(150, rng), np.zeros(6, np.uint8)])
        soft = conv_encode(data).astype(np.float64) * 2 - 1
        decoded = viterbi_decode_soft(soft, n_data_bits=data.size)
        assert np.array_equal(decoded, data)

    def test_weak_noisy_values(self, rng):
        data = np.concatenate([random_bits(150, rng), np.zeros(6, np.uint8)])
        soft = (conv_encode(data).astype(np.float64) * 2 - 1) + rng.normal(
            0, 0.6, size=2 * data.size
        )
        decoded = viterbi_decode_soft(soft, n_data_bits=data.size)
        assert np.array_equal(decoded, data)

    def test_zero_values_are_erasures(self, rng):
        data = np.concatenate([random_bits(120, rng), np.zeros(6, np.uint8)])
        soft = conv_encode(data).astype(np.float64) * 2 - 1
        soft[10] = 0.0
        soft[55] = 0.0
        decoded = viterbi_decode_soft(soft, n_data_bits=data.size)
        assert np.array_equal(decoded, data)

    def test_punctured_roundtrip(self, rng):
        for rate in ("2/3", "3/4", "5/6"):
            data = np.concatenate([random_bits(114, rng), np.zeros(6, np.uint8)])
            sent = puncture(conv_encode(data), rate).astype(np.float64) * 2 - 1
            soft = depuncture_soft(sent, rate)
            decoded = viterbi_decode_soft(soft, n_data_bits=data.size)
            assert np.array_equal(decoded, data), rate

    def test_odd_length_rejected(self):
        with pytest.raises(DecodingError):
            viterbi_decode_soft(np.ones(3))


class TestSoftReceiver:
    def test_soft_matches_hard_on_clean_channel(self, rng):
        psdu = random_bits(8 * 50, rng)
        frame = WifiTransmitter("qam64-3/4").transmit(psdu)
        rx = WifiReceiver()
        hard = rx.receive(frame.waveform, soft=False)
        soft = rx.receive(frame.waveform, soft=True)
        assert np.array_equal(hard.psdu_bits, psdu)
        assert np.array_equal(soft.psdu_bits, psdu)

    def test_soft_beats_hard_at_waterfall(self, rng):
        """At an SNR where hard decisions mostly fail, soft still decodes."""
        tx = WifiTransmitter("qam16-1/2")
        rx = WifiReceiver()
        hard_ok = soft_ok = 0
        for _ in range(8):
            psdu = random_bits(8 * 40, rng)
            noisy = awgn(tx.transmit(psdu).waveform, 9.5, rng)
            hard = rx.receive(noisy, data_start=320, soft=False)
            soft = rx.receive(noisy, data_start=320, soft=True)
            hard_ok += int(np.array_equal(hard.psdu_bits, psdu))
            soft_ok += int(np.array_equal(soft.psdu_bits, psdu))
        assert soft_ok > hard_ok
        assert soft_ok >= 7

    def test_deinterleave_soft_matches_bit_permutation(self, rng):
        from repro.wifi.interleaver import deinterleave

        bits = random_bits(192, rng)
        soft = interleave(bits, 192, 4).astype(np.float64) * 2 - 1
        out = deinterleave_soft(soft, 192, 4)
        assert np.array_equal((out > 0).astype(np.uint8), bits)
        assert np.array_equal(
            (out > 0).astype(np.uint8),
            deinterleave(interleave(bits, 192, 4), 192, 4),
        )
