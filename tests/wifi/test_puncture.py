"""Tests for puncturing/depuncturing and its index maps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, EncodingError
from repro.utils.bits import random_bits
from repro.wifi.convolutional import ERASURE, conv_encode, viterbi_decode
from repro.wifi.puncture import (
    PUNCTURE_PATTERNS,
    depuncture,
    is_punctured,
    kept_indices,
    puncture,
    punctured_length,
    transmitted_index,
)

RATES = ("1/2", "2/3", "3/4", "5/6")


class TestPatterns:
    @pytest.mark.parametrize("rate,expected", [
        ("1/2", 1.0), ("2/3", 3 / 4), ("3/4", 4 / 6), ("5/6", 6 / 10),
    ])
    def test_kept_fraction(self, rate, expected):
        pattern = PUNCTURE_PATTERNS[rate]
        assert sum(pattern) / len(pattern) == pytest.approx(expected)

    @pytest.mark.parametrize("rate", RATES)
    def test_effective_code_rate(self, rate):
        # n input bits -> 2n mother bits -> kept bits; rate = n / kept.
        n = 60
        kept = punctured_length(2 * n, rate)
        num, den = (int(x) for x in rate.split("/"))
        assert n / kept == pytest.approx(num / den)

    def test_unknown_rate(self):
        with pytest.raises(ConfigurationError):
            puncture([1, 1], "7/8")


class TestRoundtrip:
    @pytest.mark.parametrize("rate", RATES)
    def test_depuncture_restores_positions(self, rate, rng):
        mother = random_bits(120, rng)
        sent = puncture(mother, rate)
        restored = depuncture(sent, rate)
        assert restored.size == mother.size
        kept = kept_indices(mother.size, rate)
        assert np.array_equal(restored[kept], mother[kept])
        erased = np.setdiff1d(np.arange(mother.size), kept)
        assert np.all(restored[erased] == ERASURE)

    @pytest.mark.parametrize("rate", RATES)
    def test_misaligned_rejected(self, rate):
        if rate == "1/2":
            pytest.skip("any even length divides the trivial pattern")
        with pytest.raises(EncodingError):
            puncture([1] * 7, rate)

    @given(st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_viterbi_through_all_rates(self, seed):
        rng = np.random.default_rng(seed)
        data = np.concatenate([random_bits(114, rng), np.zeros(6, np.uint8)])
        mother = conv_encode(data)
        for rate in RATES:
            sent = puncture(mother, rate)
            decoded = viterbi_decode(depuncture(sent, rate), n_data_bits=data.size)
            assert np.array_equal(decoded, data), rate


class TestIndexMaps:
    @pytest.mark.parametrize("rate", RATES)
    def test_kept_indices_consistent_with_mask(self, rate):
        kept = kept_indices(60, rate)
        for q, pre in enumerate(kept):
            assert not is_punctured(int(pre), rate)
            assert transmitted_index(int(pre), rate) == q

    def test_transmitted_index_of_punctured_bit(self):
        # At rate 2/3 the 4th bit of each period (index 3) is dropped.
        assert is_punctured(3, "2/3")
        with pytest.raises(EncodingError):
            transmitted_index(3, "2/3")

    def test_punctured_length_requires_whole_periods(self):
        with pytest.raises(EncodingError):
            punctured_length(5, "3/4")
