"""Tests for OFDM subcarrier mapping, IFFT/FFT and cyclic prefix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.wifi.constellation import modulate
from repro.wifi.ofdm import (
    TIME_SCALE,
    extract_subcarriers,
    map_subcarriers,
    ofdm_demodulate,
    ofdm_modulate,
    symbols_to_waveform,
    waveform_to_symbols,
)
from repro.wifi.params import (
    CP_LENGTH,
    DATA_SUBCARRIERS,
    FFT_SIZE,
    PILOT_SUBCARRIERS,
    SYMBOL_LENGTH,
    fft_bin,
)
from repro.utils.bits import random_bits


def _random_points(rng, n=48):
    return modulate(random_bits(4 * n, rng), "qam16")


class TestMapping:
    def test_dc_and_guard_bins_empty(self, rng):
        spectrum = map_subcarriers(_random_points(rng))
        assert spectrum[0] == 0  # DC
        for k in range(27, 38):  # guard band bins (logical 27..-27)
            assert spectrum[k] == 0

    def test_pilots_present(self, rng):
        spectrum = map_subcarriers(_random_points(rng), symbol_index=1)
        for logical in PILOT_SUBCARRIERS:
            assert abs(spectrum[fft_bin(logical)]) == pytest.approx(1.0)

    def test_pilot_polarity_changes_with_symbol_index(self, rng):
        points = _random_points(rng)
        s0 = map_subcarriers(points, symbol_index=0)
        s4 = map_subcarriers(points, symbol_index=4)  # polarity -1
        assert s0[fft_bin(21)] == -s4[fft_bin(21)] or s0[fft_bin(-21)] == -s4[fft_bin(-21)]

    def test_pilots_disabled(self, rng):
        spectrum = map_subcarriers(_random_points(rng), pilot_enabled=False)
        for logical in PILOT_SUBCARRIERS:
            assert spectrum[fft_bin(logical)] == 0

    def test_extract_roundtrip(self, rng):
        points = _random_points(rng)
        data, pilots = extract_subcarriers(map_subcarriers(points, symbol_index=2))
        assert np.allclose(data, points)
        assert pilots.size == 4

    def test_wrong_point_count(self, rng):
        with pytest.raises(EncodingError):
            map_subcarriers(np.ones(47))


class TestModDemod:
    def test_roundtrip(self, rng):
        spectrum = map_subcarriers(_random_points(rng), symbol_index=1)
        time = ofdm_modulate(spectrum)
        assert time.size == SYMBOL_LENGTH
        assert np.allclose(ofdm_demodulate(time), spectrum, atol=1e-12)

    def test_cp_is_cyclic(self, rng):
        time = ofdm_modulate(map_subcarriers(_random_points(rng)))
        assert np.allclose(time[:CP_LENGTH], time[-CP_LENGTH:])

    def test_no_cp(self, rng):
        spectrum = map_subcarriers(_random_points(rng))
        time = ofdm_modulate(spectrum, add_cp=False)
        assert time.size == FFT_SIZE
        assert np.allclose(ofdm_demodulate(time, has_cp=False), spectrum)

    def test_unit_power_normalisation(self, rng):
        """52 unit-power subcarriers give ~unit mean sample power."""
        powers = []
        for _ in range(50):
            spectrum = map_subcarriers(_random_points(rng), symbol_index=1)
            time = ofdm_modulate(spectrum, add_cp=False)
            powers.append(np.mean(np.abs(time) ** 2))
        assert np.mean(powers) == pytest.approx(1.0, rel=0.05)

    def test_wrong_sizes_rejected(self):
        with pytest.raises(EncodingError):
            ofdm_modulate(np.zeros(63))
        with pytest.raises(EncodingError):
            ofdm_demodulate(np.zeros(10))


class TestWaveformAssembly:
    def test_roundtrip_multi_symbol(self, rng):
        spectra = [map_subcarriers(_random_points(rng), symbol_index=i) for i in range(3)]
        waveform = symbols_to_waveform(spectra)
        assert waveform.size == 3 * SYMBOL_LENGTH
        recovered = waveform_to_symbols(waveform)
        assert recovered.shape == (3, FFT_SIZE)
        for a, b in zip(recovered, spectra):
            assert np.allclose(a, b, atol=1e-12)

    def test_offset_slicing(self, rng):
        spectra = [map_subcarriers(_random_points(rng), symbol_index=i) for i in range(2)]
        waveform = np.concatenate([np.zeros(7, complex), symbols_to_waveform(spectra)])
        recovered = waveform_to_symbols(waveform, n_symbols=2, offset=7)
        assert np.allclose(recovered[1], spectra[1], atol=1e-12)

    def test_too_many_symbols_requested(self, rng):
        waveform = symbols_to_waveform([map_subcarriers(_random_points(rng))])
        with pytest.raises(EncodingError):
            waveform_to_symbols(waveform, n_symbols=2)

    def test_empty(self):
        assert symbols_to_waveform([]).size == 0

    def test_time_scale(self):
        assert TIME_SCALE == pytest.approx(64 / np.sqrt(52))
