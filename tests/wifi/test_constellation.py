"""Tests for Gray-coded QAM constellations and the significant-bit pattern."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, EncodingError
from repro.utils.bits import random_bits
from repro.wifi.constellation import (
    constellation_points,
    demodulate_hard,
    gray_code,
    gray_decode,
    lowest_point_power,
    lowest_power_axis_groups,
    modulate,
    normalisation_factor,
    significant_bit_pattern,
)
from repro.wifi.params import BITS_PER_SUBCARRIER, average_constellation_power

QAMS = ("qam16", "qam64", "qam256")
ALL = ("bpsk", "qpsk") + QAMS


class TestGray:
    @given(st.integers(0, 1023))
    def test_roundtrip(self, value):
        assert gray_decode(gray_code(value)) == value

    @given(st.integers(0, 1022))
    def test_adjacent_codes_differ_in_one_bit(self, value):
        diff = gray_code(value) ^ gray_code(value + 1)
        assert bin(diff).count("1") == 1


class TestPoints:
    @pytest.mark.parametrize("mod", ALL)
    def test_unit_average_power(self, mod):
        points = constellation_points(mod)
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("mod", ALL)
    def test_point_count(self, mod):
        assert constellation_points(mod).size == 2 ** BITS_PER_SUBCARRIER[mod]

    @pytest.mark.parametrize("mod", ALL)
    def test_all_points_distinct(self, mod):
        points = constellation_points(mod)
        assert len(set(np.round(points, 9))) == points.size

    def test_qam16_gray_axis(self):
        """802.11 mapping: I from b0b1 with 00->-3, 01->-1, 11->1, 10->3."""
        k = normalisation_factor("qam16")
        points = constellation_points("qam16")
        # Group value is MSB-first [b0 b1 b2 b3].
        assert points[0b0000] == pytest.approx(k * (-3 - 3j))
        assert points[0b0111] == pytest.approx(k * (-1 + 1j))
        assert points[0b1111] == pytest.approx(k * (1 + 1j))
        assert points[0b1010] == pytest.approx(k * (3 + 3j))
        assert points[0b1100] == pytest.approx(k * (1 - 3j))

    @pytest.mark.parametrize("mod,avg", [("qam16", 10), ("qam64", 42), ("qam256", 170)])
    def test_average_unnormalised_power(self, mod, avg):
        assert average_constellation_power(mod) == avg


class TestModDemod:
    @pytest.mark.parametrize("mod", ALL)
    def test_roundtrip(self, mod, rng):
        bits = random_bits(BITS_PER_SUBCARRIER[mod] * 64, rng)
        assert np.array_equal(demodulate_hard(modulate(bits, mod), mod), bits)

    @pytest.mark.parametrize("mod", QAMS)
    def test_roundtrip_with_small_noise(self, mod, rng):
        bits = random_bits(BITS_PER_SUBCARRIER[mod] * 64, rng)
        symbols = modulate(bits, mod)
        # Noise well inside half the minimum distance cannot flip decisions.
        k = normalisation_factor(mod)
        symbols = symbols + (k * 0.3) * (rng.normal(size=symbols.size)
                                         + 1j * rng.normal(size=symbols.size)) / 3
        assert np.array_equal(demodulate_hard(symbols, mod), bits)

    def test_misaligned_bits_rejected(self):
        with pytest.raises(EncodingError):
            modulate([1, 0, 1], "qam16")

    def test_unknown_modulation(self):
        with pytest.raises(ConfigurationError):
            modulate([1], "qam1024")

    def test_clipping_outliers(self):
        # Points far outside the grid clamp to the edge level, not crash.
        bits = demodulate_hard(np.array([100 + 100j]), "qam16")
        assert bits.size == 4


class TestSignificantBits:
    @pytest.mark.parametrize("mod,count", [("qam16", 2), ("qam64", 4), ("qam256", 6)])
    def test_pattern_size_matches_paper_table1(self, mod, count):
        assert len(significant_bit_pattern(mod)) == count

    @pytest.mark.parametrize("mod", QAMS)
    def test_pattern_forces_lowest_power(self, mod, rng):
        """Any point whose significant bits hold is one of the 4 lowest."""
        n = BITS_PER_SUBCARRIER[mod]
        pattern = significant_bit_pattern(mod)
        k = normalisation_factor(mod)
        lowest = k * np.sqrt(2.0)
        for _ in range(64):
            bits = random_bits(n, rng)
            for offset, value in pattern.items():
                bits[offset] = value
            point = modulate(bits, mod)[0]
            assert abs(point) == pytest.approx(lowest)

    @pytest.mark.parametrize("mod", QAMS)
    def test_violating_pattern_is_not_lowest(self, mod):
        """Flipping any single significant bit leaves the lowest set."""
        n = BITS_PER_SUBCARRIER[mod]
        pattern = significant_bit_pattern(mod)
        k = normalisation_factor(mod)
        lowest = k * np.sqrt(2.0)
        base = np.zeros(n, dtype=np.uint8)
        for offset, value in pattern.items():
            base[offset] = value
        for offset in pattern:
            flipped = base.copy()
            flipped[offset] ^= 1
            assert abs(modulate(flipped, mod)[0]) > lowest * 1.01

    def test_exactly_four_lowest_points(self):
        for mod in QAMS:
            points = constellation_points(mod)
            k = normalisation_factor(mod)
            n_lowest = int(np.sum(np.isclose(np.abs(points), k * np.sqrt(2))))
            assert n_lowest == 4

    def test_lowest_point_power_is_two(self):
        for mod in QAMS:
            assert lowest_point_power(mod) == 2.0

    def test_bpsk_has_no_pattern(self):
        with pytest.raises(ConfigurationError):
            significant_bit_pattern("bpsk")

    def test_qpsk_pattern_empty(self):
        # All QPSK points have equal power: nothing to force.
        assert significant_bit_pattern("qpsk") == {}

    def test_axis_groups_have_amplitude_one(self):
        for bits_per_axis in (2, 3, 4):
            groups = lowest_power_axis_groups(bits_per_axis)
            assert len(groups) == 2
