"""Tests for the 802.11 scrambler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.bits import random_bits
from repro.wifi.scrambler import (
    DEFAULT_SEED,
    SEQUENCE_PERIOD,
    Scrambler,
    descramble,
    scramble,
    scrambler_sequence,
)


class TestSequence:
    def test_period_is_127(self):
        seq = scrambler_sequence(length=2 * SEQUENCE_PERIOD)
        assert np.array_equal(seq[:SEQUENCE_PERIOD], seq[SEQUENCE_PERIOD:])

    def test_nonzero(self):
        seq = scrambler_sequence(length=SEQUENCE_PERIOD)
        assert seq.sum() > 0
        # A maximal-length 7-bit LFSR emits 64 ones and 63 zeros per period.
        assert int(seq.sum()) == 64

    def test_all_seeds_give_shifts_of_same_sequence(self):
        base = scrambler_sequence(seed=1, length=SEQUENCE_PERIOD)
        other = scrambler_sequence(seed=0b1011101, length=SEQUENCE_PERIOD)
        # m-sequence property: any seed produces a cyclic shift.
        found = any(
            np.array_equal(np.roll(base, shift), other)
            for shift in range(SEQUENCE_PERIOD)
        )
        assert found

    def test_zero_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            scrambler_sequence(seed=0)

    def test_eight_bit_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            scrambler_sequence(seed=0x80)


class TestScrambler:
    @given(st.lists(st.integers(0, 1), max_size=500))
    def test_roundtrip(self, bits):
        s = Scrambler()
        assert np.array_equal(s.descramble(s.scramble(bits)), np.array(bits, dtype=np.uint8))

    def test_scramble_changes_bits(self, rng):
        bits = random_bits(300, rng)
        assert not np.array_equal(scramble(bits), bits)

    def test_position_preserving(self, rng):
        """Flipping input bit i flips exactly output bit i (SledZig relies
        on the scrambler being a positionwise involution)."""
        bits = random_bits(64, rng)
        flipped = bits.copy()
        flipped[10] ^= 1
        a, b = scramble(bits), scramble(flipped)
        diff = np.flatnonzero(a != b)
        assert diff.tolist() == [10]

    def test_different_seeds_differ(self, rng):
        bits = random_bits(200, rng)
        assert not np.array_equal(scramble(bits, seed=1), scramble(bits, seed=2))

    def test_module_level_helpers_match_class(self, rng):
        bits = random_bits(100, rng)
        assert np.array_equal(scramble(bits), Scrambler(DEFAULT_SEED).scramble(bits))
        assert np.array_equal(descramble(scramble(bits)), bits)

    def test_sequence_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Scrambler().sequence(-1)
