"""Tests for waveform spectral measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.bits import random_bits
from repro.wifi.spectral import (
    band_power,
    band_power_db,
    power_spectrum,
    subcarrier_powers,
    total_power_db,
)
from repro.wifi.transmitter import WifiTransmitter


def _tone(freq_hz: float, n: int = 4096, fs: float = 20e6) -> np.ndarray:
    t = np.arange(n) / fs
    return np.exp(2j * np.pi * freq_hz * t)


class TestPowerSpectrum:
    def test_parseval(self):
        tone = _tone(3e6)
        _, psd = power_spectrum(tone)
        assert float(psd.sum()) == pytest.approx(1.0, rel=0.05)

    def test_tone_localised(self):
        freqs, psd = power_spectrum(_tone(5e6))
        peak_freq = freqs[int(np.argmax(psd))]
        assert peak_freq == pytest.approx(5e6, abs=60e3)

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            power_spectrum(np.zeros(10, complex))

    def test_short_waveform_degrades_nfft(self):
        # 200 samples < 512: resolution drops but the call succeeds.
        _, psd = power_spectrum(_tone(1e6, n=200))
        assert psd.size in (128, 64)


class TestBandPower:
    def test_tone_inside_band(self):
        power = band_power(_tone(2e6), center_hz=2e6, bandwidth_hz=2e6)
        assert power == pytest.approx(1.0, rel=0.1)

    def test_tone_outside_band(self):
        power = band_power(_tone(8e6), center_hz=-8e6, bandwidth_hz=2e6)
        assert power < 1e-4

    def test_band_outside_spectrum_rejected(self):
        with pytest.raises(ConfigurationError):
            band_power(_tone(0.0), center_hz=30e6, bandwidth_hz=1e6)

    def test_db_of_silence(self):
        assert band_power_db(np.zeros(1024, complex) + 0j, 0.0, 1e6) == float("-inf")

    def test_wifi_signal_total(self, rng):
        frame = WifiTransmitter("qam16-1/2").transmit(random_bits(8 * 200, rng))
        # Full 20 MHz band recovers roughly the total power.
        full = band_power(frame.waveform, 0.0, 20e6)
        assert 10 * np.log10(full) == pytest.approx(total_power_db(frame.waveform), abs=0.5)


class TestSubcarrierPowers:
    def test_shape(self, rng):
        frame = WifiTransmitter("qam16-1/2").transmit(random_bits(8 * 50, rng))
        powers = subcarrier_powers(np.stack(frame.data_spectra))
        assert powers.shape == (64,)
        assert powers[0] == pytest.approx(0.0, abs=1e-12)  # DC empty

    def test_single_spectrum_accepted(self, rng):
        frame = WifiTransmitter("qam16-1/2").transmit(random_bits(8 * 10, rng))
        powers = subcarrier_powers(frame.data_spectra[0])
        assert powers.shape == (64,)

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            subcarrier_powers(np.zeros((3, 32)))

    def test_total_power_db_empty(self):
        assert total_power_db(np.array([])) == float("-inf")
