"""Tests for the STS/LTS preamble and its detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SynchronizationError
from repro.wifi.preamble import (
    PREAMBLE_DURATION_US,
    PREAMBLE_LENGTH,
    detect_preamble,
    long_training_field,
    lts_spectrum,
    preamble_waveform,
    short_training_field,
    sts_spectrum,
)


class TestStructure:
    def test_lengths(self):
        assert short_training_field().size == 160
        assert long_training_field().size == 160
        assert preamble_waveform().size == PREAMBLE_LENGTH == 320

    def test_duration(self):
        assert PREAMBLE_DURATION_US == 16.0

    def test_sts_periodicity(self):
        stf = short_training_field()
        # Ten identical 16-sample periods.
        for rep in range(1, 10):
            assert np.allclose(stf[:16], stf[16 * rep : 16 * (rep + 1)])

    def test_lts_repetition(self):
        ltf = long_training_field()
        assert np.allclose(ltf[32:96], ltf[96:160])

    def test_lts_guard_is_cyclic(self):
        ltf = long_training_field()
        assert np.allclose(ltf[:32], ltf[128:160])

    def test_sts_occupies_every_fourth_subcarrier(self):
        spectrum = sts_spectrum()
        used = [k % 64 for k in range(-32, 32) if spectrum[k % 64] != 0]
        assert len(used) == 12
        for k in range(-32, 32):
            if spectrum[k % 64] != 0:
                assert k % 4 == 0

    def test_lts_uses_52_subcarriers(self):
        spectrum = lts_spectrum()
        assert int(np.sum(np.abs(spectrum) > 0)) == 52
        assert spectrum[0] == 0

    def test_preamble_is_full_power(self):
        """SledZig never reduces the preamble; mean power stays ~1."""
        power = np.mean(np.abs(preamble_waveform()) ** 2)
        assert power == pytest.approx(1.0, rel=0.15)


class TestDetection:
    def test_clean_detection(self):
        pre = preamble_waveform()
        tail = np.zeros(200, complex)
        start, metric = detect_preamble(np.concatenate([pre, tail]))
        assert start == PREAMBLE_LENGTH
        assert metric > 0.95

    def test_detection_with_offset(self):
        waveform = np.concatenate(
            [np.zeros(111, complex), preamble_waveform(), np.zeros(100, complex)]
        )
        start, _ = detect_preamble(waveform)
        assert start == 111 + PREAMBLE_LENGTH

    def test_detection_under_noise(self, rng):
        waveform = np.concatenate([preamble_waveform(), np.zeros(64, complex)])
        noisy = waveform + 0.2 * (
            rng.normal(size=waveform.size) + 1j * rng.normal(size=waveform.size)
        )
        start, _ = detect_preamble(noisy)
        assert start == PREAMBLE_LENGTH

    def test_noise_only_raises(self, rng):
        noise = 0.1 * (rng.normal(size=600) + 1j * rng.normal(size=600))
        with pytest.raises(SynchronizationError):
            detect_preamble(noise)

    def test_too_short_raises(self):
        with pytest.raises(SynchronizationError):
            detect_preamble(np.zeros(10, complex))
