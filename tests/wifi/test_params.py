"""Tests for the 802.11 parameter tables."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.wifi.params import (
    DATA_SUBCARRIERS,
    MCS_TABLE,
    N_DATA_SUBCARRIERS,
    PAPER_MCS_NAMES,
    PILOT_POLARITY,
    PILOT_SUBCARRIERS,
    SUBCARRIER_SPACING_HZ,
    average_constellation_power,
    data_subcarrier_index,
    fft_bin,
    get_mcs,
    subcarrier_frequency_hz,
)


class TestSubcarrierLayout:
    def test_counts(self):
        assert N_DATA_SUBCARRIERS == 48
        assert len(PILOT_SUBCARRIERS) == 4
        assert len(set(DATA_SUBCARRIERS) & set(PILOT_SUBCARRIERS)) == 0

    def test_no_dc(self):
        assert 0 not in DATA_SUBCARRIERS

    def test_range(self):
        assert min(DATA_SUBCARRIERS) == -26
        assert max(DATA_SUBCARRIERS) == 26

    def test_spacing(self):
        assert SUBCARRIER_SPACING_HZ == pytest.approx(312_500.0)
        assert subcarrier_frequency_hz(1) == pytest.approx(312_500.0)

    def test_fft_bin_wraparound(self):
        assert fft_bin(-1) == 63
        assert fft_bin(1) == 1
        with pytest.raises(ConfigurationError):
            fft_bin(40)

    def test_data_subcarrier_index(self):
        assert data_subcarrier_index(-26) == 0
        assert data_subcarrier_index(26) == 47
        with pytest.raises(ConfigurationError):
            data_subcarrier_index(7)  # pilot

    def test_pilot_polarity_length(self):
        assert len(PILOT_POLARITY) == 127
        assert set(PILOT_POLARITY) == {1, -1}


class TestMcsTable:
    def test_paper_modes_present(self):
        for name in PAPER_MCS_NAMES:
            assert name in MCS_TABLE

    @pytest.mark.parametrize("name", sorted(MCS_TABLE))
    def test_consistency(self, name):
        mcs = MCS_TABLE[name]
        assert mcs.n_cbps == 48 * mcs.n_bpsc
        num, den = mcs.rate_fraction
        assert mcs.n_dbps == mcs.n_cbps * num // den
        assert mcs.data_rate_mbps == mcs.n_dbps / 4.0

    def test_paper_data_rates(self):
        # The classic 802.11a ladder plus 256-QAM extensions.
        assert get_mcs("qam16-1/2").data_rate_mbps == 24.0
        assert get_mcs("qam16-3/4").data_rate_mbps == 36.0
        assert get_mcs("qam64-2/3").data_rate_mbps == 48.0
        assert get_mcs("qam64-3/4").data_rate_mbps == 54.0
        assert get_mcs("qam256-5/6").data_rate_mbps == 80.0

    def test_paper_min_snr(self):
        # Table IV column.
        assert get_mcs("qam16-1/2").min_snr_db == 11.0
        assert get_mcs("qam256-5/6").min_snr_db == 31.0

    def test_unknown_mcs(self):
        with pytest.raises(ConfigurationError):
            get_mcs("qam1024-9/10")

    def test_average_power_unknown_mod(self):
        with pytest.raises(ConfigurationError):
            average_constellation_power("pam4")
