"""Tests for DATA-field framing (SERVICE, tail, pad)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, EncodingError
from repro.utils.bits import random_bits
from repro.wifi.params import get_mcs
from repro.wifi.ppdu import (
    SERVICE_BITS,
    TAIL_BITS,
    assemble_data_field,
    descramble_data_field,
    extract_psdu,
    plan_data_field,
    scramble_data_field,
)
from repro.wifi.scrambler import Scrambler


class TestPlan:
    def test_alignment(self):
        mcs = get_mcs("qam16-1/2")  # 96 data bits per symbol
        layout = plan_data_field(800, mcs)
        assert layout.n_total_bits % mcs.n_dbps == 0
        assert layout.n_symbols == -(-(16 + 800 + 6) // 96)
        assert layout.n_pad_bits == layout.n_symbols * 96 - 822

    def test_minimum_one_symbol(self):
        layout = plan_data_field(0, get_mcs("qam256-5/6"))
        assert layout.n_symbols == 1

    def test_exact_fit_no_pad(self):
        mcs = get_mcs("qam16-1/2")
        layout = plan_data_field(96 * 3 - 22, mcs)
        assert layout.n_pad_bits == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_data_field(-1, get_mcs("qam16-1/2"))

    def test_index_properties(self):
        layout = plan_data_field(100, get_mcs("qam64-2/3"))
        assert layout.tail_start == SERVICE_BITS + 100
        assert layout.pad_start == layout.tail_start + TAIL_BITS


class TestAssembly:
    def test_service_and_tail_zero(self, rng):
        mcs = get_mcs("qam64-2/3")
        psdu = random_bits(500, rng)
        field = assemble_data_field(psdu, mcs)
        layout = plan_data_field(psdu.size, mcs)
        assert np.all(field[:SERVICE_BITS] == 0)
        assert np.all(field[layout.tail_start :] == 0)
        assert np.array_equal(extract_psdu(field, layout), psdu)

    def test_scramble_roundtrip(self, rng):
        mcs = get_mcs("qam16-3/4")
        psdu = random_bits(300, rng)
        layout = plan_data_field(psdu.size, mcs)
        field = assemble_data_field(psdu, mcs)
        scrambler = Scrambler()
        scrambled = scramble_data_field(field, layout, scrambler)
        # Tail bits forced to zero post-scramble.
        assert np.all(
            scrambled[layout.tail_start : layout.tail_start + TAIL_BITS] == 0
        )
        back = descramble_data_field(scrambled, layout, scrambler)
        assert np.array_equal(extract_psdu(back, layout), psdu)

    def test_length_mismatch_rejected(self, rng):
        mcs = get_mcs("qam16-1/2")
        layout = plan_data_field(100, mcs)
        with pytest.raises(EncodingError):
            scramble_data_field(random_bits(10, rng), layout, Scrambler())
        with pytest.raises(EncodingError):
            descramble_data_field(random_bits(10, rng), layout, Scrambler())
