"""End-to-end WiFi transmit/receive tests (clean and impaired channels)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.errors import ConfigurationError
from repro.utils.bits import bit_error_rate, random_bits
from repro.wifi.params import PAPER_MCS_NAMES, get_mcs
from repro.wifi.preamble import PREAMBLE_LENGTH
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter

ALL_PAPER_MCS = list(PAPER_MCS_NAMES)


class TestCleanChannel:
    @pytest.mark.parametrize("name", ALL_PAPER_MCS)
    def test_roundtrip(self, name, rng):
        tx = WifiTransmitter(name)
        psdu = random_bits(8 * 80, rng)
        frame = tx.transmit(psdu)
        reception = WifiReceiver().receive(frame.waveform)
        assert reception.mcs.name == name
        assert np.array_equal(reception.psdu_bits, psdu)

    def test_known_data_start(self, rng):
        psdu = random_bits(8 * 20, rng)
        frame = WifiTransmitter("qam16-1/2").transmit(psdu)
        reception = WifiReceiver().receive(frame.waveform, data_start=PREAMBLE_LENGTH)
        assert np.array_equal(reception.psdu_bits, psdu)

    def test_frame_duration(self, rng):
        mcs = get_mcs("qam64-2/3")
        frame = WifiTransmitter(mcs).transmit(random_bits(8 * 96, rng))
        # (16 + 768 + 6) / 192 -> 5 symbols; 16 + 4 + 20 us.
        assert frame.n_data_symbols == 5
        assert frame.duration_us == 40.0
        assert frame.waveform.size == 320 + 80 + 5 * 80

    def test_empty_psdu_rejected(self):
        with pytest.raises(ConfigurationError):
            WifiTransmitter("qam16-1/2").transmit([])

    def test_partial_octet_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            WifiTransmitter("qam16-1/2").transmit(random_bits(13, rng))

    def test_scrambled_field_exposed(self, rng):
        frame = WifiTransmitter("qam16-1/2").transmit(random_bits(8 * 10, rng))
        assert frame.scrambled_field.size == frame.layout.n_total_bits


class TestNoisyChannel:
    @pytest.mark.parametrize(
        "name,snr_db",
        [("qam16-1/2", 15.0), ("qam64-2/3", 22.0), ("qam256-3/4", 33.0)],
    )
    def test_decodes_above_min_snr(self, name, snr_db, rng):
        """A few dB above the paper's Table IV minimum the PSDU survives."""
        tx = WifiTransmitter(name)
        psdu = random_bits(8 * 60, rng)
        frame = tx.transmit(psdu)
        noisy = awgn(frame.waveform, snr_db, rng)
        reception = WifiReceiver().receive(noisy)
        assert reception.mcs.name == name
        assert np.array_equal(reception.psdu_bits, psdu)

    def test_fails_gracefully_at_terrible_snr(self, rng):
        frame = WifiTransmitter("qam256-5/6").transmit(random_bits(8 * 40, rng))
        noisy = awgn(frame.waveform, 5.0, rng)
        try:
            reception = WifiReceiver().receive(noisy)
            ber = bit_error_rate(
                frame.scrambled_field[:0], reception.psdu_bits[:0]
            )
            assert ber == 0.0  # only checks the call returns sanely
        except Exception:
            pass  # sync or header failure is acceptable at 5 dB

    def test_flat_channel_gain_equalised(self, rng):
        """A complex flat channel gain is removed by the LTS estimate."""
        tx = WifiTransmitter("qam64-3/4")
        psdu = random_bits(8 * 50, rng)
        frame = tx.transmit(psdu)
        gain = 0.5 * np.exp(1j * 0.7)
        reception = WifiReceiver().receive(frame.waveform * gain)
        assert np.array_equal(reception.psdu_bits, psdu)
