"""Tests for the two-permutation 802.11 interleaver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, EncodingError
from repro.utils.bits import random_bits
from repro.wifi.interleaver import (
    deinterleave,
    deinterleave_permutation,
    interleave,
    interleave_permutation,
    source_index,
)
from repro.wifi.params import MCS_TABLE

MCS_SHAPES = sorted({(m.n_cbps, m.n_bpsc) for m in MCS_TABLE.values()})


class TestPermutation:
    @pytest.mark.parametrize("n_cbps,n_bpsc", MCS_SHAPES)
    def test_is_bijection(self, n_cbps, n_bpsc):
        perm = interleave_permutation(n_cbps, n_bpsc)
        assert sorted(perm) == list(range(n_cbps))

    @pytest.mark.parametrize("n_cbps,n_bpsc", MCS_SHAPES)
    def test_inverse_is_inverse(self, n_cbps, n_bpsc):
        perm = interleave_permutation(n_cbps, n_bpsc)
        inv = deinterleave_permutation(n_cbps, n_bpsc)
        for k, j in enumerate(perm):
            assert inv[j] == k

    @pytest.mark.parametrize("n_cbps,n_bpsc", MCS_SHAPES)
    def test_adjacent_bits_on_nonadjacent_subcarriers(self, n_cbps, n_bpsc):
        """The standard's first-permutation property."""
        perm = interleave_permutation(n_cbps, n_bpsc)
        for k in range(n_cbps - 1):
            sc_a = perm[k] // n_bpsc
            sc_b = perm[k + 1] // n_bpsc
            assert abs(sc_a - sc_b) > 1

    def test_bad_ncbps(self):
        with pytest.raises(ConfigurationError):
            interleave_permutation(100, 4)

    def test_bpsk_identity_like(self):
        # BPSK (s=1) second permutation is trivial; still a bijection.
        perm = interleave_permutation(48, 1)
        assert sorted(perm) == list(range(48))


class TestRoundtrip:
    @pytest.mark.parametrize("n_cbps,n_bpsc", MCS_SHAPES)
    def test_single_symbol(self, n_cbps, n_bpsc, rng):
        bits = random_bits(n_cbps, rng)
        assert np.array_equal(
            deinterleave(interleave(bits, n_cbps, n_bpsc), n_cbps, n_bpsc), bits
        )

    def test_multi_symbol_blocks_independent(self, rng):
        n_cbps, n_bpsc = 192, 4
        a = random_bits(n_cbps, rng)
        b = random_bits(n_cbps, rng)
        both = interleave(np.concatenate([a, b]), n_cbps, n_bpsc)
        assert np.array_equal(both[:n_cbps], interleave(a, n_cbps, n_bpsc))
        assert np.array_equal(both[n_cbps:], interleave(b, n_cbps, n_bpsc))

    def test_partial_symbol_rejected(self):
        with pytest.raises(EncodingError):
            interleave([1, 0, 1], 192, 4)

    @given(st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_property_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        for n_cbps, n_bpsc in ((192, 4), (288, 6), (384, 8)):
            bits = random_bits(2 * n_cbps, rng)
            out = deinterleave(interleave(bits, n_cbps, n_bpsc), n_cbps, n_bpsc)
            assert np.array_equal(out, bits)


class TestSourceIndex:
    def test_matches_permutation(self):
        n_cbps, n_bpsc = 192, 4
        perm = interleave_permutation(n_cbps, n_bpsc)
        for k in (0, 5, 100, 191):
            assert source_index(perm[k], n_cbps, n_bpsc) == k

    def test_out_of_range(self):
        with pytest.raises(EncodingError):
            source_index(192, 192, 4)

    def test_moves_single_bit(self, rng):
        """Flipping one pre-interleave bit flips exactly the mapped output."""
        n_cbps, n_bpsc = 288, 6
        bits = random_bits(n_cbps, rng)
        flipped = bits.copy()
        flipped[37] ^= 1
        a = interleave(bits, n_cbps, n_bpsc)
        b = interleave(flipped, n_cbps, n_bpsc)
        diff = np.flatnonzero(a != b)
        assert diff.size == 1
        assert source_index(int(diff[0]), n_cbps, n_bpsc) == 37
