#!/usr/bin/env python3
"""Spectrum analysis: visualise the SledZig notch as an ASCII spectrum.

Generates a normal WiFi frame and SledZig frames protecting each of the
four overlapped ZigBee channels, then renders per-subcarrier power so the
notch (paper Fig. 5b) is visible in a terminal, plus the 2 MHz in-band
readings a TelosB would report (paper Fig. 12).

Run:  python examples/spectrum_analysis.py [qam16|qam64|qam256]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.sledzig import SledZigTransmitter, all_channels
from repro.utils.bits import random_bits
from repro.wifi.spectral import band_power_db, subcarrier_powers
from repro.wifi.transmitter import WifiTransmitter

MCS_BY_MOD = {"qam16": "qam16-1/2", "qam64": "qam64-2/3", "qam256": "qam256-3/4"}

#: Characters from quiet to loud.
BARS = " .:-=+*#%@"


def ascii_spectrum(powers: np.ndarray) -> str:
    """One character per logical subcarrier -26..26."""
    chars = []
    for logical in range(-26, 27):
        if logical == 0:
            chars.append("|")
            continue
        power = powers[logical % 64]
        db = 10 * np.log10(power + 1e-12)
        level = int(np.clip((db + 22) / 22 * (len(BARS) - 1), 0, len(BARS) - 1))
        chars.append(BARS[level])
    return "".join(chars)


def main() -> None:
    modulation = sys.argv[1] if len(sys.argv) > 1 else "qam64"
    mcs_name = MCS_BY_MOD.get(modulation, "qam64-2/3")
    rng = np.random.default_rng(42)
    payload = bytes(rng.integers(0, 256, size=300, dtype=np.uint8))

    normal = WifiTransmitter(mcs_name).transmit(random_bits(8 * 320, rng))
    print(f"per-subcarrier power, {mcs_name} (subcarriers -26..26, | = DC)\n")
    print(f"{'normal':>16}  {ascii_spectrum(subcarrier_powers(np.stack(normal.data_spectra)))}")

    for channel in all_channels():
        packet = SledZigTransmitter(mcs_name, channel).send(payload)
        powers = subcarrier_powers(np.stack(packet.frame.data_spectra))
        print(f"{'sledzig ' + channel.name:>16}  {ascii_spectrum(powers)}")

    print("\n2 MHz in-band power (dB rel. unit transmit power):")
    print(f"{'channel':>8} {'normal':>9} {'sledzig':>9} {'decrease':>9}")
    for channel in all_channels():
        n_db = band_power_db(normal.waveform[400:], channel.center_offset_hz, 2e6)
        packet = SledZigTransmitter(mcs_name, channel).send(payload)
        s_db = band_power_db(packet.waveform[400:], channel.center_offset_hz, 2e6)
        print(f"{channel.name:>8} {n_db:>9.2f} {s_db:>9.2f} {n_db - s_db:>8.2f}d")


if __name__ == "__main__":
    main()
