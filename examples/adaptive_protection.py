#!/usr/bin/env python3
"""Adaptive protection: a WiFi AP that discovers and shields its neighbour.

Composes the paper's mechanism with the signal-identification idea its
related-work section sketches: the AP samples the spectrum between its own
transmissions, estimates which ZigBee channel is occupied, and enables
SledZig on exactly that channel — paying the Table IV overhead only while a
neighbour actually exists.

The demo plays a timeline: quiet spectrum, then a ZigBee sensor appears on
channel 24 (CH2), later moves to channel 26 (CH4), then leaves.  The
controller follows with hysteresis (no flapping on single noisy captures).

Run:  python examples/adaptive_protection.py
"""

from __future__ import annotations

import numpy as np

from repro.sledzig import SledZigTransmitter
from repro.sledzig.adaptive import (
    AdaptiveSledZigController,
    EnergySnapshot,
    ZigbeeChannelEstimator,
)
from repro.sledzig.analysis import throughput_loss

#: Timeline phases: (duration in snapshots, active channel or None).
PHASES = ((40, None), (80, 2), (80, 4), (40, None))


def synth_snapshot(t: float, active: "int | None", rng) -> EnergySnapshot:
    """One idle-time spectrum sample with noisy ZigBee bursts."""
    levels = list(rng.normal(-91.0, 1.0, size=4))
    if active is not None and rng.random() < 0.35:  # bursty traffic
        levels[active - 1] = float(rng.normal(-72.0, 2.0))
    return EnergySnapshot(time_us=t, levels_db=levels)


def main() -> None:
    rng = np.random.default_rng(31)
    estimator = ZigbeeChannelEstimator(window=30, min_activity=0.12)
    controller = AdaptiveSledZigController(confirmations=3)

    print("t(ms)  estimate  protected  action")
    t = 0.0
    transmitter = None
    for duration, active in PHASES:
        for _ in range(duration):
            estimator.observe(synth_snapshot(t, active, rng))
            if int(t) % 10 == 0:
                before = controller.protected_channel
                after = controller.update(estimator.estimate())
                if after != before:
                    if after is None:
                        transmitter = None
                        action = "protection OFF (plain WiFi, zero overhead)"
                    else:
                        transmitter = SledZigTransmitter("qam64-2/3", after)
                        loss = throughput_loss("qam64-2/3", after)
                        action = (
                            f"protect CH{after} "
                            f"(overhead {loss:.1%}, frames re-encoded)"
                        )
                    print(
                        f"{t/1000:5.1f}  {str(estimator.estimate()):>8}  "
                        f"{str(after):>9}  {action}"
                    )
            t += 100.0  # one snapshot each 100 us

    print(f"\ntotal protection-target switches: {controller.n_switches}")
    if transmitter is not None:
        packet = transmitter.send(b"final state demo")
        print(f"last transmitter protects {transmitter.channel.name}, "
              f"{packet.encode_result.n_extra_bits} extra bits in its frame")
    print("\nReading: the AP pays the SledZig overhead only while a ZigBee "
          "neighbour is present, and tracks it across channels without "
          "flapping.")


if __name__ == "__main__":
    main()
