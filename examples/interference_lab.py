#!/usr/bin/env python3
"""Interference lab: why DSSS lets ZigBee shrug off partial corruption.

Reconstructs the PHY-level arguments of paper Sections IV-E/IV-F with the
actual ZigBee chain:

* scattered chip errors (narrowband residue like the WiFi pilot) leave the
  frame decodable thanks to the 32-chip spreading (d_min = 12);
* a strong burst the length of a WiFi preamble (16 us = one ZigBee symbol)
  kills exactly the symbols it covers — harmless over the redundant
  preamble, fatal over the payload.

Run:  python examples/interference_lab.py
"""

from __future__ import annotations

import numpy as np

from repro.channel.awgn import mix_at_offset
from repro.zigbee import ZigbeeReceiver, ZigbeeTransmitter
from repro.zigbee.params import SAMPLES_PER_CHIP, SYMBOL_DURATION_US


def try_receive(waveform: np.ndarray, psdu: bytes) -> str:
    try:
        reception = ZigbeeReceiver().receive(waveform, start_sample=0)
    except Exception as exc:
        return f"FAILED ({type(exc).__name__})"
    if reception.frame.psdu == psdu:
        worst = min(reception.symbol_scores)
        return f"decoded OK (worst symbol correlation {worst:.2f})"
    return "decoded WRONG payload"


def main() -> None:
    rng = np.random.default_rng(99)
    psdu = bytes(rng.integers(0, 256, size=30, dtype=np.uint8))
    clean = ZigbeeTransmitter().send(psdu)
    samples_per_symbol = 32 * SAMPLES_PER_CHIP
    print(f"frame: {len(psdu)} octets, {clean.duration_us:.0f} us on air\n")

    print("1) clean channel:")
    print("   ", try_receive(clean.waveform, psdu))

    print("\n2) continuous weak interference (like a residual SledZig "
          "payload, 10 dB below the signal):")
    weak = 0.3 * (rng.normal(size=clean.waveform.size)
                  + 1j * rng.normal(size=clean.waveform.size))
    print("   ", try_receive(clean.waveform + weak, psdu))

    print("\n3) strong 32 us burst (a WiFi preamble + SIGNAL) over ZigBee "
          "preamble symbols — redundancy absorbs it:")
    burst = 6.0 * (rng.normal(size=2 * samples_per_symbol)
                   + 1j * rng.normal(size=2 * samples_per_symbol))
    hit_preamble = mix_at_offset(clean.waveform, burst, samples_per_symbol * 2)
    print("   ", try_receive(hit_preamble, psdu))

    print("\n4) the same burst over payload symbols — no redundancy there "
          "(the paper's Fig. 15 limitation):")
    payload_symbol = 14  # SHR(10) + PHR(2) + into the payload
    hit_payload = mix_at_offset(
        clean.waveform, burst, samples_per_symbol * payload_symbol
    )
    print("   ", try_receive(hit_payload, psdu))

    print(f"\n(one ZigBee symbol = {SYMBOL_DURATION_US:.0f} us = a WiFi "
          "preamble; the ZigBee CCA window is 8 symbols = 128 us)")


if __name__ == "__main__":
    main()
