#!/usr/bin/env python3
"""Coexistence study: a smart-home sensor sharing air with a busy WiFi AP.

The scenario the paper's introduction motivates: a ZigBee sensor 2 m from a
WiFi access point that streams continuously.  Without SledZig the sensor is
starved (WiFi wins every channel contest and its energy drowns the sensor's
-84 dB signal); with SledZig the AP keeps transmitting at full power while
the sensor's channel clears.

The study sweeps the sensor's distance from the AP and prints the ZigBee
throughput for normal WiFi and SledZig under each QAM, plus what the WiFi
link pays for it (the Table IV loss).

Run:  python examples/coexistence_study.py
"""

from __future__ import annotations

from repro.mac import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig, run_coexistence
from repro.sledzig.analysis import throughput_loss

DISTANCES_M = (1.0, 2.0, 3.0, 4.0, 6.0)
MODES = (
    ("normal WiFi", "qam64-2/3", None),
    ("SledZig QAM-16", "qam16-1/2", 4),
    ("SledZig QAM-64", "qam64-2/3", 4),
    ("SledZig QAM-256", "qam256-3/4", 4),
)


def run_point(d_wz: float, mcs_name: str, channel: "int | None") -> float:
    config = CoexistenceConfig(
        wifi=WifiConfig(mcs_name=mcs_name, sledzig_channel=channel),
        zigbee=ZigbeeConfig(channel_index=4),
        topology=Topology(d_wz=d_wz, d_z=1.0),
        duration_us=400_000.0,
        seed=7,
    )
    return run_coexistence(config).zigbee_throughput_kbps


def main() -> None:
    print("ZigBee sensor throughput (kbps) under a continuously streaming AP")
    print("sensor uses ZigBee channel 26 (CH4), link distance 1 m\n")
    header = ["AP distance"] + [label for label, _, _ in MODES]
    print("  ".join(f"{h:>16}" for h in header))
    for d in DISTANCES_M:
        row = [f"{d:>13.1f} m"]
        for _, mcs_name, channel in MODES:
            row.append(f"{run_point(d, mcs_name, channel):>16.1f}")
        print("  ".join(row))

    print("\nWhat the AP pays (WiFi throughput loss on CH4, Table IV):")
    for label, mcs_name, channel in MODES[1:]:
        loss = throughput_loss(mcs_name, channel)
        print(f"  {label:<16}: {loss:.2%}")
    print("\nReading: with SledZig the sensor transmits successfully metres "
          "closer to the AP, for a ~10% WiFi throughput cost (Table IV; all "
          "three modes coincide at 10.42% on CH4).")


if __name__ == "__main__":
    main()
