#!/usr/bin/env python3
"""Quickstart: send a SledZig-encoded WiFi frame and decode it.

Demonstrates the core loop of the paper in a dozen lines:

1. pick a WiFi modulation and the ZigBee channel to protect;
2. the transmitter inserts extra bits so the overlapped subcarriers carry
   only lowest-power constellation points;
3. a completely standard 802.11 receive chain recovers the stream, detects
   which ZigBee channel was protected from the constellation, strips the
   extra bits, and returns the original payload.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SledZigReceiver, SledZigTransmitter
from repro.wifi.spectral import band_power_db


def main() -> None:
    payload = b"SledZig says hello to the ZigBee neighbourhood!"

    # Protect ZigBee channel 26 ("CH4" in the paper) while sending at
    # 48 Mbps (QAM-64, rate 2/3).
    tx = SledZigTransmitter("qam64-2/3", "CH4")
    packet = tx.send(payload)

    print(f"payload bytes       : {len(payload)}")
    print(f"extra bits inserted : {packet.encode_result.n_extra_bits}")
    print(f"throughput overhead : {packet.encode_result.overhead_fraction:.1%}")
    print(f"frame duration      : {packet.duration_us:.0f} us")

    # Power inside the protected 2 MHz band vs the whole 20 MHz channel.
    channel = tx.channel
    in_band = band_power_db(packet.waveform[400:], channel.center_offset_hz, 2e6)
    total = band_power_db(packet.waveform[400:], 0.0, 20e6)
    print(f"in-band power       : {in_band:.1f} dB (total {total:.1f} dB)")

    # The receiver needs no configuration: the channel is detected from the
    # received constellation (paper Section IV-G).
    rx = SledZigReceiver()
    received = rx.receive(packet.waveform)
    print(f"detected channel    : {received.channel.name} "
          f"(ZigBee {received.channel.zigbee_channel})")
    print(f"payload recovered   : {received.payload == payload}")
    print(f"payload             : {received.payload.decode()}")


if __name__ == "__main__":
    main()
