"""Cross-technology waveform plumbing: WiFi IQ seen by a ZigBee front end.

The paper's premise is physical: the energy a ZigBee radio receives from a
WiFi transmitter is whatever falls inside its 2 MHz channel.  This module
makes that literal — it mixes a 20 MHz WiFi baseband waveform down to a
ZigBee channel's centre, low-pass filters to the ZigBee bandwidth and
resamples to the ZigBee front end's rate, so real WiFi interference (normal
or SledZig) can be injected straight into :class:`repro.zigbee.receiver.
ZigbeeReceiver` for signal-level collision experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sledzig.channels import OverlapChannel, get_channel
from repro.utils.db import db_to_linear, signal_power
from repro.wifi.params import SAMPLE_RATE_HZ as WIFI_RATE_HZ
from repro.zigbee.params import SAMPLE_RATE_HZ as ZIGBEE_RATE_HZ


def lowpass_fir(cutoff_hz: float, sample_rate_hz: float, n_taps: int = 129) -> np.ndarray:
    """Windowed-sinc low-pass filter taps (Hamming window)."""
    if not 0 < cutoff_hz < sample_rate_hz / 2:
        raise ConfigurationError(
            f"cutoff {cutoff_hz} Hz outside (0, {sample_rate_hz / 2}) Hz"
        )
    if n_taps % 2 == 0:
        raise ConfigurationError("n_taps must be odd for a symmetric FIR")
    n = np.arange(n_taps) - (n_taps - 1) / 2
    fc = cutoff_hz / sample_rate_hz
    taps = 2 * fc * np.sinc(2 * fc * n)
    taps *= np.hamming(n_taps)
    return taps / taps.sum()


def extract_zigbee_band(
    wifi_waveform: np.ndarray,
    channel: "OverlapChannel | str | int",
    cutoff_hz: float = 1.2e6,
    phase_origin_sample: int = 0,
) -> np.ndarray:
    """The complex baseband a ZigBee front end receives from a WiFi signal.

    Steps: mix the channel's centre offset to DC, low-pass to the ZigBee
    bandwidth, and resample 20 MHz -> 8 MHz (the library's ZigBee rate).

    The output keeps physical power: its mean power equals the WiFi power
    that actually falls in the band (so SledZig's notch appears directly as
    a weaker interference waveform).

    The mixer follows :func:`repro.channel.awgn.frequency_shift`'s
    phase-continuity contract: pass the slice's absolute position in the
    stream as *phase_origin_sample* and the local oscillator keeps its
    phase across chunk boundaries, so chunked downconversion matches the
    full-capture mix up to the filter/resampler edge effects.
    """
    from scipy.signal import resample_poly

    from repro.channel.awgn import frequency_shift

    ch = get_channel(channel)
    arr = np.asarray(wifi_waveform, dtype=np.complex128).ravel()
    if arr.size < 256:
        raise ConfigurationError("WiFi waveform too short to extract a band")
    mixed = frequency_shift(
        arr,
        -ch.center_offset_hz,
        WIFI_RATE_HZ,
        phase_origin_sample=phase_origin_sample,
    )
    taps = lowpass_fir(cutoff_hz, WIFI_RATE_HZ)
    filtered = np.convolve(mixed, taps, mode="same")
    # 20 MHz -> 8 MHz is a rational 2/5 resampling.
    up = int(round(ZIGBEE_RATE_HZ / 2e6))        # 4
    down = int(round(WIFI_RATE_HZ / 2e6))        # 10
    from math import gcd

    g = gcd(up, down)
    return resample_poly(filtered, up // g, down // g)


def inject_interference(
    zigbee_waveform: np.ndarray,
    interference: np.ndarray,
    sir_db: float,
    offset_samples: int = 0,
) -> np.ndarray:
    """Add *interference* to a ZigBee waveform at a target signal-to-
    interference ratio.

    The interference is scaled so that (mean ZigBee power) / (mean
    interference power over the overlap) equals ``sir_db``; this is how the
    collision experiments dial in "the WiFi link is X dB above/below the
    ZigBee link" without re-deriving absolute path losses.
    """
    signal = np.asarray(zigbee_waveform, dtype=np.complex128).ravel()
    interf = np.asarray(interference, dtype=np.complex128).ravel()
    if offset_samples < 0:
        raise ConfigurationError("offset must be non-negative")
    p_signal = signal_power(signal)
    p_interf = signal_power(interf)
    if p_signal <= 0 or p_interf <= 0:
        raise ConfigurationError("both waveforms must carry power")
    scale = np.sqrt(p_signal / (p_interf * db_to_linear(sir_db)))
    total = max(signal.size, offset_samples + interf.size)
    out = np.zeros(total, dtype=np.complex128)
    out[: signal.size] = signal
    out[offset_samples : offset_samples + interf.size] += scale * interf
    return out


def inject_wifi_interference(
    zigbee_waveform: np.ndarray,
    wifi_waveform: np.ndarray,
    channel: "OverlapChannel | str | int",
    wifi_over_zigbee_db: float,
    offset_samples: int = 0,
) -> np.ndarray:
    """Collide a WiFi waveform into a ZigBee reception, physically.

    The WiFi waveform is scaled so its *total* 20 MHz power sits
    ``wifi_over_zigbee_db`` above the ZigBee signal power (how the links
    compare over the air), then the ZigBee-band portion is extracted and
    added.  This is the semantics that exposes SledZig's benefit: for the
    same on-air WiFi level, a SledZig waveform injects ~5-15 dB less energy
    into the protected band than a normal one.

    The interference is tiled to cover the whole ZigBee frame, emulating
    back-to-back WiFi transmission.
    """
    signal = np.asarray(zigbee_waveform, dtype=np.complex128).ravel()
    wifi = np.asarray(wifi_waveform, dtype=np.complex128).ravel()
    p_signal = signal_power(signal)
    p_wifi = signal_power(wifi)
    if p_signal <= 0 or p_wifi <= 0:
        raise ConfigurationError("both waveforms must carry power")
    scale = np.sqrt(p_signal * db_to_linear(wifi_over_zigbee_db) / p_wifi)
    band = extract_zigbee_band(scale * wifi, channel)
    needed = signal.size - offset_samples
    if needed > 0 and band.size < needed:
        band = np.tile(band, -(-needed // band.size))[:needed]
    out = signal.copy()
    end = min(signal.size, offset_samples + band.size)
    out[offset_samples:end] += band[: end - offset_samples]
    return out


def band_power_ratio_db(
    wifi_waveform: np.ndarray, channel: "OverlapChannel | str | int"
) -> float:
    """Fraction of a WiFi waveform's power inside a ZigBee band, in dB.

    For normal WiFi this sits near 10*log10(8/52) = -8.1 dB; a SledZig
    waveform reads several dB lower on its protected channel — a quick
    waveform-level check that the notch survived the full transmit chain.
    """
    band = extract_zigbee_band(wifi_waveform, channel)
    total = signal_power(np.asarray(wifi_waveform, dtype=np.complex128))
    in_band = signal_power(band)
    if total <= 0 or in_band <= 0:
        return float("-inf")
    return float(10.0 * np.log10(in_band / total))
