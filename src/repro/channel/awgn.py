"""Additive white Gaussian noise and waveform mixing for PHY-level tests."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.db import db_to_linear, signal_power


def awgn(
    waveform: np.ndarray,
    snr_db: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Add complex AWGN so the result has the requested SNR.

    The noise power is set relative to the measured mean power of
    *waveform*, which must be non-silent.

    *rng* is mandatory: noise is the one place an experiment's randomness
    enters the channel, so the generator must be threaded from the caller's
    trial stream (see :mod:`repro.montecarlo.seeding`) — a silent fallback
    to a fresh unseeded generator would break bit-reproducibility.
    """
    if not isinstance(rng, np.random.Generator):
        raise ConfigurationError(
            "awgn requires an explicit numpy Generator; derive one from the "
            "trial stream (repro.montecarlo.seeding.trial_rng)"
        )
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    power = signal_power(arr)
    if power <= 0.0:
        raise ConfigurationError("cannot set an SNR on a silent waveform")
    noise_power = power / db_to_linear(snr_db)
    noise = rng.normal(size=arr.size) + 1j * rng.normal(size=arr.size)
    noise *= np.sqrt(noise_power / 2.0)
    return arr + noise


def mix_at_offset(
    base: np.ndarray,
    interferer: np.ndarray,
    offset_samples: int,
    gain_db: float = 0.0,
) -> np.ndarray:
    """Add *interferer* into *base* starting at *offset_samples*.

    The result length covers both signals; *gain_db* scales the interferer.
    Used to overlay e.g. a WiFi burst on a ZigBee frame in PHY-level
    collision experiments.
    """
    if offset_samples < 0:
        raise ConfigurationError("offset must be non-negative")
    a = np.asarray(base, dtype=np.complex128).ravel()
    b = np.asarray(interferer, dtype=np.complex128).ravel() * np.sqrt(
        db_to_linear(gain_db)
    )
    total = max(a.size, offset_samples + b.size)
    out = np.zeros(total, dtype=np.complex128)
    out[: a.size] = a
    out[offset_samples : offset_samples + b.size] += b
    return out


def frequency_shift(
    waveform: np.ndarray,
    shift_hz: float,
    sample_rate_hz: float,
    phase_origin_sample: int = 0,
) -> np.ndarray:
    """Shift a baseband waveform by *shift_hz* (complex rotation).

    Phase-continuity contract: array index *n* is rotated by
    ``exp(2j*pi*shift_hz*(n + phase_origin_sample)/sample_rate_hz)`` — the
    phase origin sits at array index ``-phase_origin_sample``, i.e. at the
    first sample by default.  Because the phase reference is the array
    index (not any accumulated state), chained shifts compose exactly:
    shifting by ``+f`` then ``-f`` is the identity to machine precision,
    and shifting by ``f1`` then ``f2`` equals one shift by ``f1 + f2``
    (pinned by ``tests/channel/test_awgn.py``).  Pass the slice's absolute
    start as *phase_origin_sample* to keep a shift applied to a slice
    phase-continuous with the same shift applied to the full timeline.
    """
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    n = np.arange(arr.size) + int(phase_origin_sample)
    return arr * np.exp(2j * np.pi * shift_hz * n / sample_rate_hz)
