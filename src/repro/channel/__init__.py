"""Propagation, calibration and noise: the RF environment substrate."""

from repro.channel.awgn import awgn, frequency_shift, mix_at_offset
from repro.channel.batch import (
    apply_gain_db,
    awgn_batch,
    frequency_shift_batch,
    mix_at_offset_batch,
    stack_waveforms,
)
from repro.channel.downconvert import (
    band_power_ratio_db,
    extract_zigbee_band,
    inject_interference,
    inject_wifi_interference,
    lowpass_fir,
)
from repro.channel.calibration import (
    CC2420_GAIN_TO_DBM,
    DEFAULT_CALIBRATION,
    MEASURED_DECREASE_DB,
    Calibration,
    cc2420_power_dbm,
    sledzig_decrease_db,
)
from repro.channel.propagation import (
    WifiSignalProfile,
    distance,
    wifi_at_wifi_rx,
    wifi_inband_at_zigbee,
    wifi_profile,
    zigbee_at_wifi_rx,
    zigbee_rssi,
)

__all__ = [name for name in dir() if not name.startswith("_")]
