"""Calibration anchors tying the simulator to the paper's reported RSSI.

The paper's RSSI numbers come from TelosB and USRP registers and are *not*
absolute dBm; they are self-consistent readings.  All coexistence logic in
this library therefore runs in the same "reported dB" domain, pinned to the
operating points the paper states explicitly:

* background noise floor: -91 dB (Section V-A);
* normal WiFi (TX gain 15) read by a TelosB 1 m away: -60 dB in CH1-CH3 and
  -64 dB in CH4 (Fig. 12);
* ZigBee at 0 dBm (TX gain 31) read by a TelosB 0.5 m away: -75 dB
  (Fig. 13);
* ZigBee read by the WiFi receiver is a further ~10 dB down because its
  2 MHz power is averaged over the 20 MHz WiFi band (Fig. 17 discussion);
* WiFi read by the WiFi receiver 0.5 m away: -55 dB (Fig. 17).

Distance scaling uses a log-distance path-loss model with exponent 3.0
(typical office NLOS), which lands the paper's crossover distances: normal
WiFi stops hurting ZigBee near 8.5 m, SledZig QAM-256 near 3.5-4 m
(CH1-CH3) and ~1 m (CH4).

The in-band *decrease* SledZig achieves per (modulation, channel group) is
taken from waveform measurements of this library's own transmitter
(:mod:`repro.experiments.fig12_rssi_decrease` regenerates them); analytic
values from :func:`repro.sledzig.analysis.expected_band_decrease_db` are
within ~1 dB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: Waveform-measured in-band power decrease (dB) of SledZig vs normal WiFi,
#: keyed by (modulation, channel-group) where the group is "ch13" for
#: CH1-CH3 (pilot inside the span) or "ch4" (null subcarriers instead).
MEASURED_DECREASE_DB: Dict[Tuple[str, str], float] = {
    ("qam16", "ch13"): 4.5,
    ("qam16", "ch4"): 6.9,
    ("qam64", "ch13"): 6.9,
    ("qam64", "ch4"): 11.3,
    ("qam256", "ch13"): 7.3,
    ("qam256", "ch4"): 15.2,
}

#: CC2420 TX power register settings (TelosB "Tx gain") to output dBm,
#: from the CC2420 datasheet table.
CC2420_GAIN_TO_DBM: Dict[int, float] = {
    31: 0.0,
    27: -1.0,
    23: -3.0,
    19: -5.0,
    15: -7.0,
    11: -10.0,
    7: -15.0,
    3: -25.0,
}


def cc2420_power_dbm(tx_gain: int) -> float:
    """Output power for a CC2420 gain register value (0..31, interpolated)."""
    if not 0 <= tx_gain <= 31:
        raise ConfigurationError(f"CC2420 TX gain must be 0..31, got {tx_gain}")
    known = sorted(CC2420_GAIN_TO_DBM)
    if tx_gain <= known[0]:
        lo_gain = known[0]
        return CC2420_GAIN_TO_DBM[lo_gain] - 2.0 * (lo_gain - tx_gain)
    for lo, hi in zip(known, known[1:]):
        if lo <= tx_gain <= hi:
            frac = (tx_gain - lo) / (hi - lo)
            lo_dbm = CC2420_GAIN_TO_DBM[lo]
            hi_dbm = CC2420_GAIN_TO_DBM[hi]
            return lo_dbm + frac * (hi_dbm - lo_dbm)
    return CC2420_GAIN_TO_DBM[known[-1]]


@dataclass(frozen=True)
class Calibration:
    """All reported-dB anchors in one immutable bundle.

    Attributes:
        noise_floor_db: background noise reading.
        path_loss_exponent: log-distance exponent.
        wifi_inband_ch13_at_1m_db: normal-WiFi 2 MHz reading in CH1-CH3 at
            1 m with the reference WiFi TX gain.
        wifi_inband_ch4_at_1m_db: ditto for CH4.
        wifi_reference_gain_db: WiFi TX gain the anchors were taken at;
            other gains shift readings by the difference.
        zigbee_at_1m_db: TelosB reading of a 0 dBm ZigBee TX at 1 m
            (derived from the paper's -75 dB at 0.5 m).
        zigbee_wifi_band_penalty_db: extra loss when a 20 MHz receiver
            integrates the 2 MHz ZigBee signal.
        wifi_at_wifi_1m_db: USRP reading of the WiFi signal at 1 m.
        zigbee_cca_threshold_db: energy-detect CCA threshold of the ZigBee
            radio, reported domain.
        wifi_cca_threshold_db: energy-detect threshold of the WiFi radio.
    """

    noise_floor_db: float = -91.0
    path_loss_exponent: float = 3.0
    wifi_inband_ch13_at_1m_db: float = -60.0
    wifi_inband_ch4_at_1m_db: float = -64.0
    wifi_reference_gain_db: float = 15.0
    zigbee_at_1m_db: float = -84.0
    zigbee_wifi_band_penalty_db: float = 10.0
    wifi_at_wifi_1m_db: float = -64.0
    zigbee_cca_threshold_db: float = -70.0
    wifi_cca_threshold_db: float = -75.0

    def path_loss_db(self, distance_m: float) -> float:
        """Additional loss relative to the 1 m anchors."""
        if distance_m <= 0:
            raise ConfigurationError(
                f"distance must be positive, got {distance_m}"
            )
        return 10.0 * self.path_loss_exponent * _log10(max(distance_m, 0.05))


def _log10(x: float) -> float:
    from math import log10

    return log10(x)


def sledzig_decrease_db(modulation: str, channel_index: int) -> float:
    """Measured in-band decrease for a modulation on CH1..CH4."""
    group = "ch4" if channel_index == 4 else "ch13"
    key = (modulation, group)
    if key not in MEASURED_DECREASE_DB:
        raise ConfigurationError(
            f"no measured decrease for {modulation} on CH{channel_index}"
        )
    return MEASURED_DECREASE_DB[key]


#: The library-wide default calibration.
DEFAULT_CALIBRATION = Calibration()
