"""Vectorized channel operations over stacked frame batches.

The Monte-Carlo engine evaluates N trials at once; these kernels apply the
channel layer (noise, interference mixing, gain/path-loss scaling,
frequency shift) to a ``(batch, samples)`` matrix in one NumPy pass.

Determinism contract: :func:`awgn_batch` draws each row's noise from that
row's own :class:`~numpy.random.Generator` — the *same* draws, in the same
order, that the scalar :func:`repro.channel.awgn.awgn` would make for that
trial.  Stacking therefore changes the arithmetic layout but never the
bits: batch-of-N equals N batch-of-1 exactly (pinned by
``tests/channel/test_batch.py`` and the engine determinism tests).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.db import db_to_linear

__all__ = [
    "stack_waveforms",
    "awgn_batch",
    "mix_at_offset_batch",
    "apply_gain_db",
    "frequency_shift_batch",
]

FloatOrVector = Union[float, Sequence[float], np.ndarray]


def stack_waveforms(
    waveforms: Sequence[np.ndarray], length: Optional[int] = None
) -> np.ndarray:
    """Stack 1-D complex waveforms into a zero-padded ``(batch, L)`` matrix.

    *length* defaults to the longest input; shorter rows are zero-padded on
    the right (padding is silence, which every kernel here treats as such).
    """
    arrays = [np.asarray(w, dtype=np.complex128).ravel() for w in waveforms]
    if not arrays:
        raise ConfigurationError("cannot stack an empty list of waveforms")
    longest = max(a.size for a in arrays)
    if length is None:
        length = longest
    elif length < longest:
        raise ConfigurationError(
            f"length {length} is shorter than the longest waveform ({longest})"
        )
    out = np.zeros((len(arrays), length), dtype=np.complex128)
    for row, arr in zip(out, arrays):
        row[: arr.size] = arr
    return out


def _as_batch(waveforms: "np.ndarray | Sequence[np.ndarray]") -> np.ndarray:
    if isinstance(waveforms, (list, tuple)):
        return stack_waveforms(waveforms)
    arr = np.asarray(waveforms, dtype=np.complex128)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ConfigurationError("expected a (batch, samples) waveform matrix")
    return arr


def awgn_batch(
    waveforms: "np.ndarray | Sequence[np.ndarray]",
    snr_db: FloatOrVector,
    rngs: Sequence[np.random.Generator],
    lengths: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Add per-trial AWGN to a batch of waveforms at the requested SNRs.

    Args:
        waveforms: ``(batch, L)`` matrix (or list of equal/padded rows).
        snr_db: one SNR for the whole batch or one per row.
        rngs: one generator per row; row *k*'s noise comes only from
            ``rngs[k]``, reproducing the scalar ``awgn`` draws exactly.
        lengths: true (pre-padding) length per row.  Noise covers — and
            signal power is measured over — only the true samples, so a
            padded batch matches the unpadded scalar calls bit for bit.

    Returns a new ``(batch, L)`` matrix; padding samples stay zero.
    """
    stack = _as_batch(waveforms)
    n, total = stack.shape
    if len(rngs) != n:
        raise ConfigurationError(f"got {len(rngs)} generators for {n} waveforms")
    if lengths is None:
        true_lengths = [total] * n
    else:
        if len(lengths) != n:
            raise ConfigurationError(f"got {len(lengths)} lengths for {n} waveforms")
        true_lengths = [int(ell) for ell in lengths]
        if any(ell <= 0 or ell > total for ell in true_lengths):
            raise ConfigurationError("lengths must lie in [1, row width]")
    snrs = np.broadcast_to(np.asarray(snr_db, dtype=float).ravel(), (n,)) \
        if np.ndim(snr_db) else np.full(n, float(snr_db))
    # Power per row over its true samples, with the scalar path's exact
    # summation order: summing a padded full-width row can change NumPy's
    # pairwise-summation blocks and flip the last ulp of the noise scale.
    powers = np.array(
        [np.mean(np.abs(stack[k, :ell]) ** 2) for k, ell in enumerate(true_lengths)]
    )
    if np.any(powers <= 0.0):
        raise ConfigurationError("cannot set an SNR on a silent waveform")
    noise_powers = powers / db_to_linear(np.asarray(snrs))
    out = stack.copy()
    for k, (rng, ell) in enumerate(zip(rngs, true_lengths)):
        # Same draw order as the scalar path: real vector, then imaginary.
        noise = rng.normal(size=ell) + 1j * rng.normal(size=ell)
        out[k, :ell] += noise * np.sqrt(noise_powers[k] / 2.0)
    return out


def mix_at_offset_batch(
    bases: "np.ndarray | Sequence[np.ndarray]",
    interferers: "np.ndarray | Sequence[np.ndarray]",
    offsets_samples: "int | Sequence[int] | np.ndarray",
    gains_db: FloatOrVector = 0.0,
) -> np.ndarray:
    """Batched :func:`repro.channel.awgn.mix_at_offset`.

    Each row of *interferers* is scaled by its gain and added into the
    matching row of *bases* at its offset.  The output width covers the
    worst-case overlap across the batch; rows beyond their own extent stay
    zero, so per-row slices equal the scalar results exactly.
    """
    base = _as_batch(bases)
    interf = _as_batch(interferers)
    if base.shape[0] != interf.shape[0]:
        raise ConfigurationError("bases and interferers must have equal batch size")
    n = base.shape[0]
    offsets = np.broadcast_to(
        np.asarray(offsets_samples, dtype=int).ravel()
        if np.ndim(offsets_samples) else np.full(n, int(offsets_samples)),
        (n,),
    )
    if np.any(offsets < 0):
        raise ConfigurationError("offset must be non-negative")
    gains = np.broadcast_to(np.asarray(gains_db, dtype=float).ravel(), (n,)) \
        if np.ndim(gains_db) else np.full(n, float(gains_db))
    total = max(base.shape[1], int(offsets.max()) + interf.shape[1])
    out = np.zeros((n, total), dtype=np.complex128)
    out[:, : base.shape[1]] = base
    scaled = interf * np.sqrt(db_to_linear(gains))[:, np.newaxis]
    # Scatter-add every row's interferer at its own offset with one
    # fancy-indexed accumulate (offsets differ per row, so no single slice).
    cols = offsets[:, np.newaxis] + np.arange(interf.shape[1])[np.newaxis, :]
    rows = np.broadcast_to(np.arange(n)[:, np.newaxis], cols.shape)
    np.add.at(out, (rows.ravel(), cols.ravel()), scaled.ravel())
    return out


def apply_gain_db(
    waveforms: "np.ndarray | Sequence[np.ndarray]",
    gains_db: FloatOrVector,
) -> np.ndarray:
    """Scale each row by a power gain in dB (path-loss application).

    One multiply for the whole batch: ``gains_db`` may be a scalar or a
    per-row vector of (negative) path-loss values in dB.
    """
    stack = _as_batch(waveforms)
    gains = np.asarray(gains_db, dtype=float)
    if gains.ndim == 0:
        amplitude = np.sqrt(db_to_linear(float(gains)))
        return stack * amplitude
    if gains.ravel().size != stack.shape[0]:
        raise ConfigurationError(
            f"got {gains.ravel().size} gains for {stack.shape[0]} waveforms"
        )
    return stack * np.sqrt(db_to_linear(gains.ravel()))[:, np.newaxis]


def frequency_shift_batch(
    waveforms: "np.ndarray | Sequence[np.ndarray]",
    shifts_hz: FloatOrVector,
    sample_rate_hz: float,
    phase_origin_sample: int = 0,
) -> np.ndarray:
    """Complex-rotate each row by its own frequency offset.

    The downconversion workhorse: mixing a batch of WiFi waveforms to a
    ZigBee channel centre is ``frequency_shift_batch(stack, -offset, fs)``
    followed by one filter pass.

    Phase-continuity contract (same as the scalar
    :func:`repro.channel.awgn.frequency_shift`): column *n* is rotated by
    ``exp(2j*pi*shift*(n + phase_origin_sample)/fs)``, so the phase
    reference is the column index and chained shifts compose exactly —
    per-row slices equal the scalar results bit for bit.
    """
    stack = _as_batch(waveforms)
    n, total = stack.shape
    shifts = np.broadcast_to(np.asarray(shifts_hz, dtype=float).ravel(), (n,)) \
        if np.ndim(shifts_hz) else np.full(n, float(shifts_hz))
    samples = np.arange(total) + int(phase_origin_sample)
    # Same operation order as the scalar path ((2j*pi*f) * n / fs), so a
    # batched row is bit-identical to its scalar frequency_shift.
    factors = 2j * np.pi * shifts
    return stack * np.exp(factors[:, np.newaxis] * samples[np.newaxis, :]
                          / float(sample_rate_hz))
