"""Reported-RSSI propagation: who reads how much power from whom.

These functions answer the questions the coexistence simulator keeps asking:

* what 2 MHz in-band power does a ZigBee node read from a WiFi transmitter
  at distance d (during its preamble, a normal payload, or a SledZig
  payload)?
* what does a ZigBee receiver read from a ZigBee transmitter?
* what does the WiFi receiver read from either kind of transmitter?

All answers are in the paper's reported-dB domain (see
:mod:`repro.channel.calibration`) and never fall below the noise floor when
``floor=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.channel.calibration import (
    DEFAULT_CALIBRATION,
    Calibration,
    cc2420_power_dbm,
    sledzig_decrease_db,
)
from repro.errors import ConfigurationError
from repro.sledzig.channels import OverlapChannel, get_channel


@dataclass(frozen=True)
class WifiSignalProfile:
    """In-band power levels of one WiFi transmitter configuration.

    Attributes:
        preamble_db_at_1m: reading during the (always full-power) preamble
            plus SIGNAL symbol.
        payload_db_at_1m: reading during the DATA symbols (reduced when the
            transmitter runs SledZig).
    """

    preamble_db_at_1m: float
    payload_db_at_1m: float


def wifi_profile(
    channel: "int | str | OverlapChannel",
    sledzig_modulation: Optional[str] = None,
    tx_gain_db: float = 15.0,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> WifiSignalProfile:
    """In-band WiFi power profile for one ZigBee channel.

    Args:
        channel: which overlap channel the ZigBee link occupies.
        sledzig_modulation: None for normal WiFi; otherwise the QAM name and
            the payload level drops by the measured SledZig decrease.
        tx_gain_db: WiFi transmit gain (readings shift linearly with it).
        calibration: anchor set.
    """
    ch = get_channel(channel)
    base = (
        calibration.wifi_inband_ch4_at_1m_db
        if ch.index == 4
        else calibration.wifi_inband_ch13_at_1m_db
    )
    base += tx_gain_db - calibration.wifi_reference_gain_db
    payload = base
    if sledzig_modulation is not None:
        payload -= sledzig_decrease_db(sledzig_modulation, ch.index)
    return WifiSignalProfile(preamble_db_at_1m=base, payload_db_at_1m=payload)


def wifi_inband_at_zigbee(
    profile: WifiSignalProfile,
    distance_m: float,
    during_preamble: bool = False,
    calibration: Calibration = DEFAULT_CALIBRATION,
    floor: bool = False,
) -> float:
    """WiFi power a ZigBee node reads at *distance_m* (reported dB)."""
    level = (
        profile.preamble_db_at_1m if during_preamble else profile.payload_db_at_1m
    )
    rssi = level - calibration.path_loss_db(distance_m)
    if floor:
        rssi = max(rssi, calibration.noise_floor_db)
    return rssi


def zigbee_rssi(
    distance_m: float,
    tx_gain: int = 31,
    calibration: Calibration = DEFAULT_CALIBRATION,
    floor: bool = False,
) -> float:
    """ZigBee power a ZigBee node reads at *distance_m* (reported dB)."""
    rssi = (
        calibration.zigbee_at_1m_db
        + cc2420_power_dbm(tx_gain)
        - calibration.path_loss_db(distance_m)
    )
    if floor:
        rssi = max(rssi, calibration.noise_floor_db)
    return rssi


def zigbee_at_wifi_rx(
    distance_m: float,
    tx_gain: int = 31,
    calibration: Calibration = DEFAULT_CALIBRATION,
    floor: bool = False,
) -> float:
    """ZigBee power the 20 MHz WiFi receiver reads (band-diluted)."""
    rssi = zigbee_rssi(distance_m, tx_gain, calibration) - (
        calibration.zigbee_wifi_band_penalty_db
    )
    if floor:
        rssi = max(rssi, calibration.noise_floor_db)
    return rssi


def wifi_at_wifi_rx(
    distance_m: float,
    tx_gain_db: float = 15.0,
    calibration: Calibration = DEFAULT_CALIBRATION,
    floor: bool = False,
) -> float:
    """WiFi power the WiFi receiver reads at *distance_m*."""
    rssi = (
        calibration.wifi_at_wifi_1m_db
        + tx_gain_db
        - calibration.wifi_reference_gain_db
        - calibration.path_loss_db(distance_m)
    )
    if floor:
        rssi = max(rssi, calibration.noise_floor_db)
    return rssi


def distance(a: "tuple[float, float]", b: "tuple[float, float]") -> float:
    """Euclidean distance between two (x, y) positions in metres."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    d = (dx * dx + dy * dy) ** 0.5
    if d <= 0.0:
        raise ConfigurationError("two nodes cannot share the same position")
    return d
