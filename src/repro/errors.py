"""Exception hierarchy for the SledZig reproduction library.

All library-specific failures derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries while tests can assert on the
precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An invalid parameter combination was requested.

    Raised eagerly at construction time (e.g. a QAM order the 802.11 rate
    table does not define, a ZigBee channel outside 11..26, or a coding rate
    that is not recommended for the selected modulation).
    """


class EncodingError(ReproError):
    """A transmit chain stage received bits it cannot process."""


class DecodingError(ReproError):
    """A receive chain stage could not recover valid data."""


class InsertionError(EncodingError):
    """SledZig extra-bit insertion could not satisfy a significant bit.

    The paper argues (Section IV-D) that deinterleaving scatters significant
    bits far enough apart that the single/twin insertion strategy always
    succeeds.  The encoder re-verifies every constraint after construction
    and raises this error instead of emitting a wrong waveform if the claim
    were ever violated.
    """


class SynchronizationError(DecodingError):
    """A receiver failed to locate a preamble in the waveform."""


class InvalidWaveformError(DecodingError):
    """A receiver was handed samples it cannot process (NaN/Inf values).

    Raised by the waveform-domain front ends before any arithmetic runs on
    the samples, so injected faults surface as a typed error (or a ``None``
    result under ``on_error="none"``) instead of propagating NaNs through
    the decode chain.
    """


class TruncatedFrameError(DecodingError):
    """A frame started inside a capture but its tail is missing.

    Raised (or surfaced as a drop cause) when synchronisation succeeds but
    the capture — or the flushed remainder of a sample stream — ends before
    the frame's announced length is fully present.  Distinguishing this
    from a generic :class:`DecodingError` matters for streaming receivers:
    a truncated tail at ``flush()`` is an expected end-of-stream outcome,
    not a corrupt frame.
    """


class CtcSyncError(SynchronizationError):
    """The CTC demodulator saw a preamble but rejected the sync word.

    An alternating RSSI pattern locked the symbol slicer, yet the 16-bit
    sync word that should follow did not match — either noise mimicked a
    preamble or a genuine CTC frame's sync symbols were corrupted.  Counted
    per rejected candidate (``ctc.rx.sync_errors``), part of the OfdmFi-
    style emulation-fidelity metric.
    """


class CtcFramingError(DecodingError):
    """A synchronised CTC frame announced an impossible length.

    Sync succeeded but the length octet decodes beyond the configured
    maximum payload — the header symbols were corrupted (or the lock was
    false).  The candidate is dropped and the search resumes one sample
    after the lock.
    """


class CtcCrcError(DecodingError):
    """A fully received CTC frame failed its CRC-16 check.

    Symbol errors inside the payload survived slicing; the frame is
    dropped (``ctc.rx.crc_errors``) rather than delivered corrupt.
    """


class StreamOverflowError(DecodingError):
    """A streaming stage needed more lookahead than its ring buffer holds.

    Raised as a drop cause when a detected frame announces a length larger
    than the pipeline's bounded sample ring can ever buffer.  The frame is
    dropped and the search resumes; the stream itself keeps flowing at
    constant memory.
    """


class SimulationError(ReproError):
    """The discrete-event coexistence simulator reached an invalid state."""


class GatewayError(ReproError):
    """The coexistence gateway could not serve an encode request.

    Base class for the serving-layer failure taxonomy; every subclass is
    both raised to the submitting client and counted as a
    ``gateway.drop.<Cause>`` telemetry counter, so load tests can assert
    the two views agree.
    """


class GatewayOverloadError(GatewayError):
    """The admission queue is full; the request was rejected at submit time.

    Backpressure, not failure: the client saw the rejection before any
    worker time was spent, and may retry after backing off.
    """


class DeadlineExpiredError(GatewayError):
    """A request's deadline passed before its waveform was produced.

    Requests that expire while still queued are dropped *before* dispatch
    (no worker time wasted); requests that expire mid-batch have their
    result discarded on completion.
    """


class GatewayShutdownError(GatewayError):
    """The gateway is draining or closed; no new requests are admitted."""


class WorkerPoolError(GatewayError):
    """The encode worker pool died mid-batch (worker killed or crashed).

    Every request of the affected batch fails with this error; the
    gateway replaces the broken pool before dispatching the next batch
    (counted by ``gateway.pool.restarts``).
    """
