"""Pluggable backends for the hot compute kernels.

Public surface of the kernel registry (see :mod:`repro.kernels.registry`
for the selection/fallback model):

>>> from repro import kernels
>>> kernels.get_backend()
'optimized'
>>> with kernels.use_backend("reference"):
...     pass  # every dispatching wrapper now runs the reference kernels

Selection precedence: explicit ``backend=`` argument on a wrapper >
:func:`set_backend` / :class:`use_backend` > the ``REPRO_KERNEL_BACKEND``
environment variable > the default (``optimized``).  Resolution is per
kernel: a backend missing a kernel falls back along its declared chain to
``reference``, so partial backends (numba registers only the Viterbi
kernels; optimized skips the DSSS matmul) are always safe to select.

Registering a backend here is the *entire* integration story: the
differential conformance matrix in ``tests/kernels/`` enumerates this
registry and holds every backend to bit-identical outputs against
``reference`` on golden vectors and hypothesis-generated inputs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.kernels.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    GLOBAL_REGISTRY,
    KERNEL_NAMES,
    REFERENCE_BACKEND,
    dispatch,
    get_backend,
    reset_backend,
    resolved_backend,
    set_backend,
    use_backend,
)

# Importing a backend module registers it; order fixes backend_names().
from repro.kernels import reference as _reference  # noqa: F401  (registers)
from repro.kernels import optimized as _optimized  # noqa: F401  (registers)
from repro.kernels import numba_backend as _numba  # noqa: F401  (declares)

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "GLOBAL_REGISTRY",
    "KERNEL_NAMES",
    "REFERENCE_BACKEND",
    "available_backends",
    "backend_report",
    "dispatch",
    "get_backend",
    "reset_backend",
    "resolved_backend",
    "set_backend",
    "use_backend",
]


def available_backends(kernel: Optional[str] = None) -> Tuple[str, ...]:
    """Declared backend names; with *kernel*, only those implementing it."""
    names = GLOBAL_REGISTRY.backend_names()
    if kernel is None:
        return names
    return tuple(
        name for name in names if GLOBAL_REGISTRY.implemented(name, kernel)
    )


def backend_report(backend: Optional[str] = None) -> Dict[str, str]:
    """Kernel -> backend-that-actually-runs-it, under the given selection.

    Recorded into run manifests and the golden-vector manifest so results
    carry their kernel provenance.
    """
    return {
        kernel: resolved_backend(kernel, backend) for kernel in KERNEL_NAMES
    }
