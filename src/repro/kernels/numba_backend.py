"""Optional numba JIT backend for the Viterbi ACS kernels.

Registered only when ``numba`` imports; on machines without it the backend
is still *declared* (so ``REPRO_KERNEL_BACKEND=numba`` selects it without
crashing) but every kernel resolves through the fallback chain
``numba -> optimized -> reference``.  The jitted recursions mirror the
reference semantics operation for operation:

* hard ties break to the lower predecessor slot (strict ``<`` on slot 1);
* the soft gain is evaluated as ``sign_a*a + sign_b*b`` in that order, and
  ``metric + gain`` in that order, so every float rounds identically;
* traceback follows the packed (input | slot << 1) decisions.

Only the Viterbi kernels are registered — the DSSS matmul already runs in
BLAS and the packed GF(2) elimination is memory-bound, so a JIT buys
nothing there.  Conformance is enforced by the same differential matrix as
every other backend (``tests/kernels/`` enumerates the registry).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import GLOBAL_REGISTRY

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover
    numba = None
    NUMBA_AVAILABLE = False

__all__ = ["NUMBA_AVAILABLE"]


if NUMBA_AVAILABLE:  # pragma: no cover - container image ships no numba

    @numba.njit(cache=True)
    def _viterbi_hard_core(a, b, hard_costs, preds, pred_inputs, n_states,
                           assume_zero_tail):
        n_batch, n_steps = a.shape
        inf = np.iinfo(np.int64).max // 4
        decoded = np.empty((n_batch, n_steps), dtype=np.uint8)
        for row in range(n_batch):
            metrics = np.full(n_states, inf, dtype=np.int64)
            metrics[0] = 0
            decisions = np.empty((n_steps, n_states), dtype=np.uint8)
            nxt = np.empty(n_states, dtype=np.int64)
            for step in range(n_steps):
                av = a[row, step]
                bv = b[row, step]
                for state in range(n_states):
                    p0 = preds[state, 0]
                    p1 = preds[state, 1]
                    c0 = metrics[p0] + hard_costs[av, bv, p0, pred_inputs[state, 0]]
                    c1 = metrics[p1] + hard_costs[av, bv, p1, pred_inputs[state, 1]]
                    if c1 < c0:  # strict: ties keep slot 0, like argmin
                        nxt[state] = c1
                        decisions[step, state] = pred_inputs[state, 1] | 2
                    else:
                        nxt[state] = c0
                        decisions[step, state] = pred_inputs[state, 0]
                metrics[:] = nxt
            state = 0
            if not assume_zero_tail:
                best = metrics[0]
                for s in range(1, n_states):
                    if metrics[s] < best:
                        best = metrics[s]
                        state = s
            for step in range(n_steps - 1, -1, -1):
                packed = decisions[step, state]
                decoded[row, step] = packed & 1
                state = preds[state, packed >> 1]
        return decoded

    @numba.njit(cache=True)
    def _viterbi_soft_core(a, b, sign_a, sign_b, preds, pred_inputs, n_states,
                           assume_zero_tail):
        n_batch, n_steps = a.shape
        decoded = np.empty((n_batch, n_steps), dtype=np.uint8)
        for row in range(n_batch):
            metrics = np.full(n_states, -1e18, dtype=np.float64)
            metrics[0] = 0.0
            decisions = np.empty((n_steps, n_states), dtype=np.uint8)
            nxt = np.empty(n_states, dtype=np.float64)
            for step in range(n_steps):
                av = a[row, step]
                bv = b[row, step]
                for state in range(n_states):
                    p0 = preds[state, 0]
                    p1 = preds[state, 1]
                    u0 = pred_inputs[state, 0]
                    u1 = pred_inputs[state, 1]
                    g0 = sign_a[p0, u0] * av + sign_b[p0, u0] * bv
                    g1 = sign_a[p1, u1] * av + sign_b[p1, u1] * bv
                    c0 = metrics[p0] + g0
                    c1 = metrics[p1] + g1
                    if c1 > c0:  # strict: ties keep slot 0, like argmax
                        nxt[state] = c1
                        decisions[step, state] = u1 | 2
                    else:
                        nxt[state] = c0
                        decisions[step, state] = u0
                metrics[:] = nxt
            state = 0
            if not assume_zero_tail:
                best = metrics[0]
                for s in range(1, n_states):
                    if metrics[s] > best:
                        best = metrics[s]
                        state = s
            for step in range(n_steps - 1, -1, -1):
                packed = decisions[step, state]
                decoded[row, step] = packed & 1
                state = preds[state, packed >> 1]
        return decoded

    def viterbi_hard(a, b, t, assume_zero_tail):
        """JIT hard-decision Viterbi (semantics of the reference kernel)."""
        return _viterbi_hard_core(
            np.ascontiguousarray(a), np.ascontiguousarray(b),
            t.hard_costs, t.preds, t.pred_inputs, t.n_states,
            assume_zero_tail,
        )

    def viterbi_soft(a, b, t, assume_zero_tail):
        """JIT soft-decision Viterbi (semantics of the reference kernel)."""
        return _viterbi_soft_core(
            np.ascontiguousarray(a), np.ascontiguousarray(b),
            t.sign_a, t.sign_b, t.preds, t.pred_inputs, t.n_states,
            assume_zero_tail,
        )


def _register() -> None:
    GLOBAL_REGISTRY.declare_backend(
        "numba", fallback="optimized", available=NUMBA_AVAILABLE
    )
    if NUMBA_AVAILABLE:  # pragma: no cover
        GLOBAL_REGISTRY.register("numba", "viterbi_hard", viterbi_hard)
        GLOBAL_REGISTRY.register("numba", "viterbi_soft", viterbi_soft)


_register()
