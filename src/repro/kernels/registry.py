"""Kernel backend registry: named implementations of the hot kernels.

The encode/decode paths of this library are compute-bound in a handful of
kernels — Viterbi add-compare-select (hard and soft), the 16x32 DSSS chip
correlation, and GF(2) rank/solve.  Each kernel is registered here under a
*backend* name so alternative implementations can be swapped in without
touching any call site:

* ``reference`` — the plain numpy implementations the rest of the test
  suite (and the golden-vector corpus) is defined against.  Always
  registered, always complete.
* ``optimized`` — pure-numpy rewrites (butterfly ACS, packed-uint64 GF(2)
  elimination) that are bit-identical to ``reference`` by construction and
  by the differential conformance matrix in ``tests/kernels/``.
* ``numba`` — optional JIT backend, registered only when numba imports.

Selection: the ``REPRO_KERNEL_BACKEND`` environment variable names the
process-wide default (read once at import); :func:`set_backend` /
``use_backend`` override it programmatically.  Resolution is *per kernel*
with fallback: a backend that does not implement a kernel (or whose
dependency is unavailable) falls back along its declared chain, ending at
``reference``.  Registering a new backend is enough to enrol it in the
conformance matrix — the tests enumerate this registry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Environment variable naming the process-wide default backend.
ENV_VAR: str = "REPRO_KERNEL_BACKEND"

#: Backend every fallback chain ends at (must implement every kernel).
REFERENCE_BACKEND: str = "reference"

#: Default backend when neither the environment nor the API chose one.
DEFAULT_BACKEND: str = "optimized"

#: The kernels a complete backend implements.
KERNEL_NAMES: Tuple[str, ...] = (
    "viterbi_hard",
    "viterbi_soft",
    "dsss_correlate",
    "gf2_rank",
    "gf2_solve",
)


@dataclass
class BackendInfo:
    """One declared backend.

    Attributes:
        name: registry key (also the ``REPRO_KERNEL_BACKEND`` value).
        fallback: backend consulted for kernels this one does not
            implement; chains always terminate at ``reference``.
        available: False for backends whose optional dependency is
            missing — they stay selectable (every kernel falls back) so
            ``REPRO_KERNEL_BACKEND=numba`` degrades instead of crashing
            on machines without numba.
        kernels: implementations registered under this backend.
    """

    name: str
    fallback: Optional[str]
    available: bool = True
    kernels: Dict[str, Callable] = field(default_factory=dict)


class KernelRegistry:
    """Maps (kernel, backend) to implementations with per-kernel fallback."""

    def __init__(self) -> None:
        self._backends: Dict[str, BackendInfo] = {}

    def declare_backend(
        self,
        name: str,
        fallback: Optional[str] = REFERENCE_BACKEND,
        available: bool = True,
    ) -> BackendInfo:
        """Declare a backend (idempotent); kernels are registered after."""
        if name not in self._backends:
            self._backends[name] = BackendInfo(
                name=name, fallback=fallback, available=available
            )
        return self._backends[name]

    def register(self, backend: str, kernel: str, fn: Callable) -> None:
        """Register *fn* as *backend*'s implementation of *kernel*."""
        if kernel not in KERNEL_NAMES:
            raise ConfigurationError(
                f"unknown kernel {kernel!r}; known: {', '.join(KERNEL_NAMES)}"
            )
        info = self.declare_backend(backend)
        info.kernels[kernel] = fn

    def backend_names(self, available_only: bool = False) -> Tuple[str, ...]:
        """All declared backend names, declaration order."""
        return tuple(
            name
            for name, info in self._backends.items()
            if info.available or not available_only
        )

    def implemented(self, backend: str, kernel: str) -> bool:
        """True when *backend* implements *kernel* itself (no fallback)."""
        info = self._backends.get(backend)
        return bool(info and kernel in info.kernels)

    def resolve(self, kernel: str, backend: str) -> Tuple[str, Callable]:
        """The (backend name, fn) actually used for *kernel* under *backend*.

        Walks the fallback chain for kernels the requested backend does not
        implement.  Raises :class:`ConfigurationError` for unknown backend
        names or broken chains (cycles / dead ends before ``reference``).
        """
        if backend not in self._backends:
            raise ConfigurationError(
                f"unknown kernel backend {backend!r}; "
                f"declared: {', '.join(self._backends) or '(none)'}"
            )
        seen: List[str] = []
        name: Optional[str] = backend
        while name is not None:
            if name in seen:
                raise ConfigurationError(
                    f"kernel backend fallback cycle: {' -> '.join(seen + [name])}"
                )
            seen.append(name)
            info = self._backends.get(name)
            if info is None:
                break
            if kernel in info.kernels:
                return name, info.kernels[kernel]
            name = info.fallback
        raise ConfigurationError(
            f"no backend implements kernel {kernel!r} "
            f"(fallback chain {' -> '.join(seen)})"
        )


#: The process-wide registry every dispatching wrapper consults.
GLOBAL_REGISTRY = KernelRegistry()


def _initial_backend() -> str:
    return os.environ.get(ENV_VAR, DEFAULT_BACKEND)


#: Currently selected backend name (validated lazily, at first dispatch,
#: so merely importing with a bad env var does not crash tooling).
_active_backend: str = _initial_backend()


def get_backend() -> str:
    """The currently selected backend name."""
    return _active_backend


def set_backend(name: str) -> None:
    """Select the process-wide backend; raises on undeclared names."""
    global _active_backend
    if name not in GLOBAL_REGISTRY.backend_names():
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; "
            f"declared: {', '.join(GLOBAL_REGISTRY.backend_names())}"
        )
    _active_backend = name


def reset_backend() -> None:
    """Re-read the selection from the environment (tests use this)."""
    global _active_backend
    _active_backend = _initial_backend()


class use_backend:
    """Context manager selecting a backend for the enclosed block."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._previous: Optional[str] = None

    def __enter__(self) -> "use_backend":
        self._previous = get_backend()
        set_backend(self._name)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._previous is not None:
            set_backend(self._previous)


def resolved_backend(kernel: str, backend: Optional[str] = None) -> str:
    """Name of the backend that would actually run *kernel* right now."""
    name, _ = GLOBAL_REGISTRY.resolve(kernel, backend or _active_backend)
    return name


def dispatch(kernel: str, *args, backend: Optional[str] = None, **kwargs):
    """Run *kernel* on the selected (or explicitly named) backend."""
    _, fn = GLOBAL_REGISTRY.resolve(kernel, backend or _active_backend)
    return fn(*args, **kwargs)
