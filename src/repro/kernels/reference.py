"""Reference kernel implementations: the semantics every backend must match.

These are the plain numpy implementations that previously lived inline in
:mod:`repro.dsp.trellis`, :mod:`repro.dsp.dsss` and
:mod:`repro.utils.galois`.  They define the bit-level contract — including
tie-breaking (lowest predecessor slot wins a hard-metric tie, first maximum
wins a correlation tie) and the exact floating-point evaluation order — that
the differential conformance matrix in ``tests/kernels/`` holds every other
backend to.

Backends receive pre-validated arrays: the public wrappers keep all shape /
dtype / value checking, so kernels here are pure recursions.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import EncodingError
from repro.kernels.registry import GLOBAL_REGISTRY, REFERENCE_BACKEND

__all__ = [
    "viterbi_hard",
    "viterbi_soft",
    "dsss_correlate",
    "gf2_rank",
    "gf2_solve",
    "traceback",
]


def traceback(
    decisions: np.ndarray, start_state: np.ndarray, preds: np.ndarray
) -> np.ndarray:
    """Vectorized survivor traceback over the batch axis."""
    n_batch, n_steps, _ = decisions.shape
    rows = np.arange(n_batch)
    state = start_state.astype(np.int64)
    decoded = np.empty((n_batch, n_steps), dtype=np.uint8)
    for step in range(n_steps - 1, -1, -1):
        packed = decisions[rows, step, state]
        decoded[:, step] = packed & 1
        state = preds[state, packed >> 1]
    return decoded


def viterbi_hard(
    a: np.ndarray, b: np.ndarray, t, assume_zero_tail: bool
) -> np.ndarray:
    """Hard-decision ACS + traceback over ``(batch, n_steps)`` A/B planes.

    *a* / *b* hold the received pair values in {0, 1, ERASURE}; *t* is the
    :class:`repro.dsp.trellis.Trellis`.  Returns all decoded bits; the
    caller slices to ``n_data_bits``.
    """
    n_batch, n_steps = a.shape
    inf = np.iinfo(np.int64).max // 4
    metrics = np.full((n_batch, t.n_states), inf, dtype=np.int64)
    metrics[:, 0] = 0
    decisions = np.zeros((n_batch, n_steps, t.n_states), dtype=np.uint8)
    preds, pred_inputs = t.preds, t.pred_inputs
    states = np.arange(t.n_states)[None, :]
    for step in range(n_steps):
        cost = t.hard_costs[a[:, step], b[:, step]]  # (batch, states, 2)
        cand = metrics[:, preds] + cost[:, preds, pred_inputs]
        choice = np.argmin(cand, axis=2)
        metrics = np.take_along_axis(cand, choice[:, :, None], axis=2)[:, :, 0]
        decisions[:, step] = (pred_inputs[states, choice] | (choice << 1)).astype(
            np.uint8
        )

    if assume_zero_tail:
        start = np.zeros(n_batch, dtype=np.int64)
    else:
        start = np.argmin(metrics, axis=1)
    return traceback(decisions, start, preds)


def viterbi_soft(
    a: np.ndarray, b: np.ndarray, t, assume_zero_tail: bool
) -> np.ndarray:
    """Soft-decision (correlation-metric) ACS + traceback, maximised."""
    n_batch, n_steps = a.shape
    metrics = np.full((n_batch, t.n_states), -1e18, dtype=np.float64)
    metrics[:, 0] = 0.0
    decisions = np.zeros((n_batch, n_steps, t.n_states), dtype=np.uint8)
    preds, pred_inputs = t.preds, t.pred_inputs
    states = np.arange(t.n_states)[None, :]
    for step in range(n_steps):
        gain = (
            t.sign_a[None, :, :] * a[:, step, None, None]
            + t.sign_b[None, :, :] * b[:, step, None, None]
        )  # (batch, states, 2)
        cand = metrics[:, preds] + gain[:, preds, pred_inputs]
        choice = np.argmax(cand, axis=2)
        metrics = np.take_along_axis(cand, choice[:, :, None], axis=2)[:, :, 0]
        decisions[:, step] = (pred_inputs[states, choice] | (choice << 1)).astype(
            np.uint8
        )

    if assume_zero_tail:
        start = np.zeros(n_batch, dtype=np.int64)
    else:
        start = np.argmax(metrics, axis=1)
    return traceback(decisions, start, preds)


def dsss_correlate(
    chunks: np.ndarray, table: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Correlate ``(..., n_symbols, 32)`` soft chips against *table* rows.

    Returns ``(symbols, winning)`` — the argmax row per symbol (first
    maximum wins ties) and its un-normalised correlation.  The caller
    normalises; the matmul expression is part of the bit-exactness
    contract (same BLAS call, same rounding, on every backend).
    """
    scores_all = chunks @ table.T  # (..., n_symbols, 16)
    symbols = np.argmax(scores_all, axis=-1)
    winning = np.take_along_axis(scores_all, symbols[..., None], axis=-1)[..., 0]
    return symbols.astype(np.int64), winning


def gf2_solve(
    a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, bool]:
    """Solve ``A x = b`` over GF(2) by dense uint8 Gaussian elimination.

    Mirrors :func:`repro.utils.galois.gf2_solve` semantics exactly: column
    sweep in ascending order, pivot = first remaining row with a 1 in the
    column, free variables 0, :class:`EncodingError` on inconsistency.
    Inputs are 0/1 uint8 arrays owned by the kernel (mutated freely).
    """
    rows, cols = a.shape
    pivot_cols: List[int] = []
    row = 0
    for col in range(cols):
        pivot = None
        for r in range(row, rows):
            if a[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != row:
            a[[row, pivot]] = a[[pivot, row]]
            b[[row, pivot]] = b[[pivot, row]]
        for r in range(rows):
            if r != row and a[r, col]:
                a[r] ^= a[row]
                b[r] ^= b[row]
        pivot_cols.append(col)
        row += 1
        if row == rows:
            break
    # Inconsistency: a zero row of A with nonzero rhs.
    for r in range(row, rows):
        if b[r] and not a[r].any():
            raise EncodingError("gf2_solve: inconsistent linear system")
    solution = np.zeros(cols, dtype=np.uint8)
    for r, col in enumerate(pivot_cols):
        solution[col] = b[r]
    return solution, len(pivot_cols) == cols


def gf2_rank(a: np.ndarray) -> int:
    """Rank of a 0/1 uint8 GF(2) matrix (mutates its working copy)."""
    rows, cols = a.shape
    rank = 0
    for col in range(cols):
        pivot = None
        for r in range(rank, rows):
            if a[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != rank:
            a[[rank, pivot]] = a[[pivot, rank]]
        for r in range(rows):
            if r != rank and a[r, col]:
                a[r] ^= a[rank]
        rank += 1
        if rank == rows:
            break
    return rank


def _register() -> None:
    GLOBAL_REGISTRY.declare_backend(REFERENCE_BACKEND, fallback=None)
    for name, fn in (
        ("viterbi_hard", viterbi_hard),
        ("viterbi_soft", viterbi_soft),
        ("dsss_correlate", dsss_correlate),
        ("gf2_rank", gf2_rank),
        ("gf2_solve", gf2_solve),
    ):
        GLOBAL_REGISTRY.register(REFERENCE_BACKEND, name, fn)


_register()
