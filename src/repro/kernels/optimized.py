"""Optimized pure-numpy kernel backend — bit-identical to ``reference``.

Two rewrites, both proven bit-exact (argument below, enforced by the
conformance matrix in ``tests/kernels/``):

**Butterfly ACS.**  The trellis built by :func:`repro.dsp.trellis._build_trellis`
has the classic shift-register structure ``next_state = (s >> 1) | (bit << (K-2))``,
so destination state ``d`` always has exactly the predecessors
``2*(d % half)`` and ``2*(d % half) + 1`` (``half = n_states / 2``) and the
input bit on both edges is ``d // half``.  That turns the reference's three
fancy-indexed gathers per step into one reshape + one LUT gather:

* predecessor metrics are ``metrics.reshape(batch, half, 2)`` tiled over the
  two input-bit halves — stride tricks instead of a ``(states, 2)`` gather;
* branch metrics are bit-packed: the received ``(a, b)`` pair indexes a
  precomputed ``(9, states, 2)`` edge-cost table (hard) or selects one of
  the four ``±a±b`` combinations (soft), computed once per step instead of
  128 multiply-adds per batch row.

Integer path metrics are exact, so the hard kernel is trivially identical.
The soft kernel is identical because IEEE-754 round-to-nearest negation is
exact and symmetric: ``-(a+b) == (-a)+(-b)`` and ``-(a-b) == (-a)+b``
bit-for-bit, and every remaining add happens in the same order as the
reference.  Tie-breaking is reproduced by choosing slot 1 only on a
*strict* win, matching ``argmin``/``argmax`` first-index semantics.

**Packed GF(2) elimination.**  Rows are packed 64 columns per uint64 word
(rhs appended as one extra bit for the solver), so pivot search is a
vectorized column test and each elimination step XORs whole rows of words
across all hit rows at once — the reference's per-row Python loop becomes
one numpy op.  GF(2) arithmetic is exact, and the pivot order is identical,
so outputs (and the inconsistency error) match bit-for-bit.

A trellis without the shift-register structure falls back to the reference
kernel at call time; the DSSS correlation is deliberately *not* registered
here (no pure-numpy rewrite beats the BLAS matmul while preserving the
exact summation order), which exercises the registry's per-kernel fallback.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import EncodingError
from repro.kernels import reference
from repro.kernels.registry import GLOBAL_REGISTRY

__all__ = ["viterbi_hard", "viterbi_soft", "gf2_rank", "gf2_solve"]

#: Per-trellis precomputed butterfly tables, keyed by id().  The trellis
#: object is stored alongside to pin its lifetime (ids are only unique
#: among live objects); trellises are themselves cached per process in
#: repro.dsp.cache, so this holds a handful of entries.
_BUTTERFLY_CACHE: Dict[int, Tuple[object, Optional[tuple]]] = {}


def _butterfly_tables(t) -> Optional[tuple]:
    """Precompute (and cache) the butterfly tables for one trellis.

    Returns None when the trellis does not have the shift-register
    predecessor structure (caller falls back to the reference kernel).
    """
    cached = _BUTTERFLY_CACHE.get(id(t))
    if cached is not None and cached[0] is t:
        return cached[1]

    n_states = t.n_states
    half = n_states // 2
    tables: Optional[tuple] = None
    if half * 2 == n_states and n_states >= 2:
        dst = np.arange(n_states)
        expected_preds = np.stack([2 * (dst % half), 2 * (dst % half) + 1], axis=1)
        expected_inputs = np.stack([dst // half, dst // half], axis=1)
        if np.array_equal(t.preds, expected_preds) and np.array_equal(
            t.pred_inputs, expected_inputs
        ):
            # Branch metrics gathered once per (received pair) instead of
            # per (batch, state, slot): hard costs packed by code a*3+b,
            # soft gains by the output-pair combination on each edge.
            edge_costs = np.ascontiguousarray(
                t.hard_costs[:, :, t.preds, t.pred_inputs].reshape(
                    9, n_states, 2
                )
            )
            combo_edge = np.ascontiguousarray(
                (t.out_a[t.preds, t.pred_inputs] << 1)
                | t.out_b[t.preds, t.pred_inputs]
            )  # (states, 2) in 0..3 == (sign_a>0)<<1 | (sign_b>0)
            input_bits = (dst // half).astype(np.uint8)
            tables = (half, edge_costs, combo_edge, input_bits)

    _BUTTERFLY_CACHE[id(t)] = (t, tables)
    return tables


def _traceback_butterfly(
    decisions: np.ndarray, start_state: np.ndarray, half: int
) -> np.ndarray:
    """Survivor traceback with arithmetic predecessors (no gather table)."""
    n_batch, n_steps, _ = decisions.shape
    rows = np.arange(n_batch)
    state = start_state.astype(np.int64)
    decoded = np.empty((n_batch, n_steps), dtype=np.uint8)
    for step in range(n_steps - 1, -1, -1):
        packed = decisions[rows, step, state]
        decoded[:, step] = packed & 1
        state = ((state % half) << 1) | (packed >> 1)
    return decoded


def viterbi_hard(
    a: np.ndarray, b: np.ndarray, t, assume_zero_tail: bool
) -> np.ndarray:
    """Butterfly hard-decision ACS; falls back on non-butterfly trellises."""
    tables = _butterfly_tables(t)
    if tables is None:
        return reference.viterbi_hard(a, b, t, assume_zero_tail)
    half, edge_costs, _, input_bits = tables

    n_batch, n_steps = a.shape
    code = a * 3 + b  # bit-packed received pair, indexes the (9, ...) LUT
    inf = np.iinfo(np.int64).max // 4
    metrics = np.full((n_batch, t.n_states), inf, dtype=np.int64)
    metrics[:, 0] = 0
    decisions = np.empty((n_batch, n_steps, t.n_states), dtype=np.uint8)
    for step in range(n_steps):
        edge = edge_costs[code[:, step]]  # (batch, states, 2)
        pm = metrics.reshape(n_batch, half, 2)
        cand = np.concatenate([pm, pm], axis=1) + edge
        choice = cand[:, :, 1] < cand[:, :, 0]  # strict: argmin tie -> slot 0
        metrics = np.where(choice, cand[:, :, 1], cand[:, :, 0])
        decisions[:, step] = input_bits[None, :] | (choice.astype(np.uint8) << 1)

    if assume_zero_tail:
        start = np.zeros(n_batch, dtype=np.int64)
    else:
        start = np.argmin(metrics, axis=1)
    return _traceback_butterfly(decisions, start, half)


def viterbi_soft(
    a: np.ndarray, b: np.ndarray, t, assume_zero_tail: bool
) -> np.ndarray:
    """Butterfly soft-decision ACS; falls back on non-butterfly trellises."""
    tables = _butterfly_tables(t)
    if tables is None:
        return reference.viterbi_soft(a, b, t, assume_zero_tail)
    half, _, combo_edge, input_bits = tables

    n_batch, n_steps = a.shape
    metrics = np.full((n_batch, t.n_states), -1e18, dtype=np.float64)
    metrics[:, 0] = 0.0
    decisions = np.empty((n_batch, n_steps, t.n_states), dtype=np.uint8)
    for step in range(n_steps):
        av, bv = a[:, step], b[:, step]
        apb = av + bv
        amb = av - bv
        # The four ±a±b gains, indexed by (sign_a>0)<<1 | (sign_b>0); the
        # negations are IEEE-exact so each equals the reference's
        # sign_a*a + sign_b*b bit-for-bit.
        combos = np.stack([-apb, -amb, amb, apb], axis=1)  # (batch, 4)
        gain = combos[:, combo_edge]  # (batch, states, 2)
        pm = metrics.reshape(n_batch, half, 2)
        cand = np.concatenate([pm, pm], axis=1) + gain
        choice = cand[:, :, 1] > cand[:, :, 0]  # strict: argmax tie -> slot 0
        metrics = np.where(choice, cand[:, :, 1], cand[:, :, 0])
        decisions[:, step] = input_bits[None, :] | (choice.astype(np.uint8) << 1)

    if assume_zero_tail:
        start = np.zeros(n_batch, dtype=np.int64)
    else:
        start = np.argmax(metrics, axis=1)
    return _traceback_butterfly(decisions, start, half)


def _pack_rows(bits: np.ndarray, total_bits: int) -> np.ndarray:
    """Pack ``(rows, <=total_bits)`` 0/1 uint8 into little-endian uint64 words."""
    n_words = (total_bits + 63) // 64
    padded = np.zeros((bits.shape[0], n_words * 64), dtype=np.uint8)
    padded[:, : bits.shape[1]] = bits
    packed = np.packbits(padded, axis=1, bitorder="little")
    return np.ascontiguousarray(packed).view(np.uint64)


def _column_mask(aug: np.ndarray, col: int) -> np.ndarray:
    """Boolean vector: which rows of *aug* have bit *col* set."""
    word, bit = divmod(col, 64)
    return (aug[:, word] >> np.uint64(bit)) & np.uint64(1) != 0


def gf2_solve(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, bool]:
    """Packed-uint64 Gaussian elimination over the augmented matrix."""
    rows, cols = a.shape
    aug = _pack_rows(np.concatenate([a, b[:, None]], axis=1), cols + 1)
    pivot_cols: List[int] = []
    row = 0
    for col in range(cols):
        if row == rows:
            break
        hit = _column_mask(aug, col)
        below = np.nonzero(hit[row:])[0]
        if below.size == 0:
            continue
        pivot = row + int(below[0])
        if pivot != row:
            aug[[row, pivot]] = aug[[pivot, row]]
            hit[row], hit[pivot] = hit[pivot], hit[row]
        hit[row] = False
        aug[hit] ^= aug[row]
        pivot_cols.append(col)
        row += 1
    if row < rows:
        # Below the pivot rows every A-part is zero (all columns were
        # swept), so inconsistency is just "rhs bit still set".
        if np.any(_column_mask(aug[row:], cols)):
            raise EncodingError("gf2_solve: inconsistent linear system")
    solution = np.zeros(cols, dtype=np.uint8)
    if pivot_cols:
        rhs_bits = _column_mask(aug[: len(pivot_cols)], cols)
        solution[np.asarray(pivot_cols)] = rhs_bits.astype(np.uint8)
    return solution, len(pivot_cols) == cols


def gf2_rank(a: np.ndarray) -> int:
    """Packed-uint64 row reduction; same pivot order as the reference."""
    rows, cols = a.shape
    if rows == 0 or cols == 0:
        return 0
    packed = _pack_rows(a, cols)
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        hit = _column_mask(packed, col)
        below = np.nonzero(hit[rank:])[0]
        if below.size == 0:
            continue
        pivot = rank + int(below[0])
        if pivot != rank:
            packed[[rank, pivot]] = packed[[pivot, rank]]
            hit[rank], hit[pivot] = hit[pivot], hit[rank]
        hit[rank] = False
        packed[hit] ^= packed[rank]
        rank += 1
    return rank


def _register() -> None:
    info = GLOBAL_REGISTRY.declare_backend("optimized", fallback="reference")
    GLOBAL_REGISTRY.register("optimized", "viterbi_hard", viterbi_hard)
    GLOBAL_REGISTRY.register("optimized", "viterbi_soft", viterbi_soft)
    # dsss_correlate intentionally not registered: resolves via fallback.
    if sys.byteorder == "little":
        # The uint64 view in _pack_rows assumes little-endian words.
        GLOBAL_REGISTRY.register("optimized", "gf2_rank", gf2_rank)
        GLOBAL_REGISTRY.register("optimized", "gf2_solve", gf2_solve)
    del info


_register()
