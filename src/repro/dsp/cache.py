"""Module-level cache for precomputed DSP tables.

Every hot primitive in :mod:`repro.dsp` is driven by small, parameter-keyed
lookup tables — the 64-state trellis, interleaver permutations per
(N_CBPS, N_BPSC), Gray QAM maps per modulation, the 16x32 DSSS chip matrix,
scrambler periods per seed.  Building them is cheap but not free, and the
batched experiment suite asks for the same tables millions of times, so they
are built once per process and kept in a single registry with hit/miss
accounting (tested by ``tests/dsp/test_cache.py``).

Keys are plain hashable tuples whose first element names the table family,
e.g. ``("trellis", 0o133, 0o171, 7)``.  Worker processes spawned by the
experiment runner each hold their own registry; tables are derived purely
from the key, so there is nothing to synchronise across processes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, Tuple


class TableCache:
    """A tiny thread-safe build-once registry for precomputed tables."""

    def __init__(self) -> None:
        self._tables: Dict[Hashable, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the table for *key*, building it on first request."""
        with self._lock:
            if key in self._tables:
                self.hits += 1
                return self._tables[key]
        value = builder()
        with self._lock:
            # Another thread may have raced us; keep the first entry so every
            # caller sees the same (possibly aliased) table object.
            self.misses += 1
            return self._tables.setdefault(key, value)

    def clear(self) -> None:
        """Drop every table and reset the hit/miss counters."""
        with self._lock:
            self._tables.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._tables

    def stats(self) -> Dict[str, int]:
        """Current ``{"entries", "hits", "misses"}`` counters."""
        with self._lock:
            return {
                "entries": len(self._tables),
                "hits": self.hits,
                "misses": self.misses,
            }


#: The process-wide registry used by every repro.dsp module.
_GLOBAL_CACHE = TableCache()


def cached_table(key: Tuple, builder: Callable[[], Any]) -> Any:
    """Fetch *key* from the global registry, building with *builder* once."""
    return _GLOBAL_CACHE.get(key, builder)


def cache_stats() -> Dict[str, int]:
    """Hit/miss/entry counters of the global registry."""
    return _GLOBAL_CACHE.stats()


def clear_cache() -> None:
    """Reset the global registry (used by tests)."""
    _GLOBAL_CACHE.clear()
