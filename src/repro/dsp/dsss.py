"""DSSS chip tables and vectorized spread/correlate kernels (802.15.4).

The sixteen 32-chip PN sequences (IEEE 802.15.4-2015 Table 12-1) are built
once and cached, in both 0/1 and bipolar form.  Spreading is a table
lookup; despreading correlates *every* received symbol against all sixteen
sequences with a single matrix product instead of a Python loop per symbol
— the kernel behind :mod:`repro.zigbee.dsss`.

The correlation itself dispatches through the :mod:`repro.kernels`
registry (kernel ``dsss_correlate``); validation, the hard/soft mapping
and score normalisation stay here, so every backend sees the same
pre-shaped ``(..., n_symbols, 32)`` chip chunks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import kernels
from repro.dsp.cache import cached_table
from repro.errors import DecodingError, EncodingError
from repro.dsp.params import BITS_PER_SYMBOL, CHIPS_PER_SYMBOL

#: Chip sequence of data symbol 0 (c0 first), IEEE 802.15.4 Table 12-1.
SYMBOL0_CHIPS: str = "11011001110000110101001000101110"


def chip_table() -> np.ndarray:
    """All sixteen chip sequences as a cached (16, 32) uint8 array.

    Symbols 1-7 are 4-chip cyclic shifts of symbol 0; symbols 8-15 repeat
    0-7 with the odd-indexed (Q) chips inverted.
    """

    def build() -> np.ndarray:
        base = np.array([int(c) for c in SYMBOL0_CHIPS], dtype=np.uint8)
        table = np.zeros((16, CHIPS_PER_SYMBOL), dtype=np.uint8)
        for symbol in range(8):
            table[symbol] = np.roll(base, 4 * symbol)
        flip = np.zeros(CHIPS_PER_SYMBOL, dtype=np.uint8)
        flip[1::2] = 1  # invert the odd-indexed (Q) chips
        for symbol in range(8):
            table[8 + symbol] = table[symbol] ^ flip
        table.setflags(write=False)
        return table

    return cached_table(("dsss-chips",), build)


def bipolar_table() -> np.ndarray:
    """Cached chip table mapped to +-1 floats, for correlation receivers."""

    def build() -> np.ndarray:
        table = (chip_table().astype(np.float64) * 2.0) - 1.0
        table.setflags(write=False)
        return table

    return cached_table(("dsss-bipolar",), build)


def bits_to_symbols(bits: np.ndarray) -> np.ndarray:
    """Group bits (LSB-first nibbles, trailing axis) into symbols 0..15."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.shape[-1] % BITS_PER_SYMBOL:
        raise EncodingError(
            f"{arr.shape[-1]} bits do not form whole {BITS_PER_SYMBOL}-bit symbols"
        )
    # Explicit group count: reshape(-1, 4) is ambiguous for size-0 inputs.
    groups = arr.reshape(
        arr.shape[:-1] + (arr.shape[-1] // BITS_PER_SYMBOL, BITS_PER_SYMBOL)
    )
    weights = (1 << np.arange(BITS_PER_SYMBOL)).astype(np.int64)  # b0 is the LSB
    return groups @ weights


def symbols_to_bits(symbols: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bits_to_symbols` (trailing axis expands 4x)."""
    arr = np.asarray(symbols, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() > 15):
        raise EncodingError("data symbols must be 0..15")
    out = np.empty(arr.shape + (BITS_PER_SYMBOL,), dtype=np.uint8)
    for bit in range(BITS_PER_SYMBOL):
        out[..., bit] = (arr >> bit) & 1
    return out.reshape(arr.shape[:-1] + (-1,)) if arr.ndim else out.ravel()


def spread_batch(bits: np.ndarray) -> np.ndarray:
    """Spread bits (trailing axis) into the 32-chips-per-nibble stream."""
    symbols = bits_to_symbols(bits)
    chips = chip_table()[symbols]
    flat = symbols.shape[-1] * CHIPS_PER_SYMBOL  # explicit: -1 breaks on size 0
    return chips.reshape(symbols.shape[:-1] + (flat,)).astype(np.uint8)


def correlate_batch(
    chips: np.ndarray, backend: Optional[str] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Correlate soft chips against all sixteen sequences, per symbol.

    Args:
        chips: real-valued bipolar chip estimates with trailing axis a
            whole number of 32-chip symbols (any leading batch shape).
        backend: kernel-backend override (default: process selection).

    Returns ``(symbols, scores)`` where *symbols* holds the winning data
    symbols and *scores* the normalised correlation of each winner
    (1.0 = perfect match).
    """
    arr = np.asarray(chips, dtype=np.float64)
    if arr.shape[-1] % CHIPS_PER_SYMBOL:
        raise DecodingError(
            f"{arr.shape[-1]} chips do not form whole "
            f"{CHIPS_PER_SYMBOL}-chip symbols"
        )
    # Explicit symbol count (not -1): reshape(-1, 32) is ambiguous for
    # size-0 inputs, and zero-length chip streams are legal.
    n_symbols = arr.shape[-1] // CHIPS_PER_SYMBOL
    chunks = arr.reshape(arr.shape[:-1] + (n_symbols, CHIPS_PER_SYMBOL))
    symbols, winning = kernels.dispatch(
        "dsss_correlate", chunks, bipolar_table(), backend=backend
    )
    norms = np.abs(chunks).sum(axis=-1)
    norms = np.where(norms == 0.0, 1.0, norms)
    return symbols, winning / norms


def despread_batch(
    chips: np.ndarray, backend: Optional[str] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Correlate a chip stream (hard 0/1 or soft bipolar) back to bits.

    Hard chip streams (all values in [0, 1]) are mapped to bipolar first,
    matching the scalar :func:`repro.zigbee.dsss.despread` semantics.
    Returns ``(bits, scores)``.
    """
    arr = np.asarray(chips, dtype=np.float64)
    if arr.size and arr.min() >= 0.0 and arr.max() <= 1.0:
        arr = arr * 2.0 - 1.0  # hard chips -> bipolar
    symbols, scores = correlate_batch(arr, backend=backend)
    return symbols_to_bits(symbols), scores
