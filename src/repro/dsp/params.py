"""PHY constants shared by the :mod:`repro.dsp` kernels.

This is a leaf module — it imports nothing from the technology packages —
so every ``repro.dsp`` kernel can be imported on its own without touching
:mod:`repro.wifi` or :mod:`repro.zigbee`.  The technology ``params``
modules re-export these values (they are properties of the 802.11 and
802.15.4 PHYs, not of any one chain), keeping a single source of truth.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError

# --- 802.11 OFDM (20 MHz channel) ------------------------------------------

#: FFT size of the OFDM modulator.
FFT_SIZE: int = 64

#: Cyclic-prefix length in samples (0.8 us guard interval).
CP_LENGTH: int = 16

#: Samples per OFDM symbol including the cyclic prefix (4 us).
SYMBOL_LENGTH: int = FFT_SIZE + CP_LENGTH

#: Pilot subcarrier logical indices (relative to the channel centre).
PILOT_SUBCARRIERS: Tuple[int, ...] = (-21, -7, 7, 21)

#: Data subcarrier logical indices: -26..26 excluding 0 and the pilots.
DATA_SUBCARRIERS: Tuple[int, ...] = tuple(
    k for k in range(-26, 27) if k != 0 and k not in PILOT_SUBCARRIERS
)

#: Number of data subcarriers per OFDM symbol.
N_DATA_SUBCARRIERS: int = len(DATA_SUBCARRIERS)  # 48

#: Pilot BPSK values for subcarriers (-21, -7, 7, 21) before polarity.
PILOT_VALUES: Tuple[int, ...] = (1, 1, 1, -1)

#: The 127-element pilot polarity sequence p_n of 802.11-2012 Eq. 18-25.
PILOT_POLARITY: Tuple[int, ...] = (
    1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1,
    -1, -1, 1, 1, -1, 1, 1, -1, 1, 1, 1, 1, 1, 1, -1, 1,
    1, 1, -1, 1, 1, -1, -1, 1, 1, 1, -1, 1, -1, -1, -1, 1,
    -1, 1, -1, -1, 1, -1, -1, 1, 1, 1, 1, 1, -1, -1, 1, 1,
    -1, -1, 1, -1, 1, -1, 1, 1, -1, -1, -1, 1, 1, -1, -1, -1,
    -1, 1, -1, -1, 1, -1, 1, 1, 1, 1, -1, 1, -1, 1, -1, 1,
    -1, -1, -1, -1, -1, 1, -1, 1, 1, -1, 1, -1, 1, 1, 1, -1,
    -1, 1, -1, -1, -1, 1, 1, 1, -1, -1, -1, -1, -1, -1, -1,
)

#: Bits per subcarrier for each modulation name.
BITS_PER_SUBCARRIER: Dict[str, int] = {
    "bpsk": 1,
    "qpsk": 2,
    "qam16": 4,
    "qam64": 6,
    "qam256": 8,
}


def average_constellation_power(modulation: str) -> float:
    """Average un-normalised constellation power (e.g. 10 for QAM-16)."""
    m = BITS_PER_SUBCARRIER.get(modulation)
    if m is None:
        raise ConfigurationError(f"unknown modulation {modulation!r}")
    if m == 1:
        return 1.0
    levels = np.arange(1, 2 ** (m // 2), 2, dtype=float)
    per_axis = float(np.mean(levels**2))
    return 2.0 * per_axis


# --- 802.15.4 O-QPSK (2.4 GHz) ---------------------------------------------

#: Chips per DSSS symbol.
CHIPS_PER_SYMBOL: int = 32

#: Data bits per symbol (one nibble).
BITS_PER_SYMBOL: int = 4

#: Baseband oversampling used by the waveform model (samples per chip).
SAMPLES_PER_CHIP: int = 4
