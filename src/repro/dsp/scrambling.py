"""Additive-scrambler sequences, cached per seed, applied batch-wise.

The 802.11 frame-synchronous scrambler is a 7-bit LFSR with a 127-bit
period; scrambling is a pure XOR mask, so applying it to a whole batch of
frames is one vectorized operation once the period is known.  The period
for each non-zero seed is generated once and cached.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.cache import cached_table
from repro.errors import ConfigurationError

#: Period of the x^7 + x^4 + 1 scrambling sequence.
SEQUENCE_PERIOD: int = 127


def _build_period(seed: int) -> np.ndarray:
    state = [(seed >> i) & 1 for i in range(7)]  # state[i] holds x^(i+1)
    out = np.empty(SEQUENCE_PERIOD, dtype=np.uint8)
    for i in range(SEQUENCE_PERIOD):
        feedback = state[6] ^ state[3]  # x^7 XOR x^4
        out[i] = feedback
        state = [feedback] + state[:6]
    out.setflags(write=False)
    return out


def scrambler_period(seed: int) -> np.ndarray:
    """One full 127-bit period of the scrambling sequence for *seed*."""
    if not 0 < seed < 128:
        raise ConfigurationError(
            f"scrambler seed must be a non-zero 7-bit value, got {seed}"
        )
    return cached_table(("scrambler", seed), lambda: _build_period(seed))


def scrambler_sequence(seed: int, length: int) -> np.ndarray:
    """First *length* bits of the scrambling sequence for *seed*."""
    if length < 0:
        raise ConfigurationError("sequence length must be non-negative")
    period = scrambler_period(seed)
    reps = -(-length // SEQUENCE_PERIOD) if length else 0
    return np.tile(period, max(reps, 1))[:length]


def scramble_batch(bits: np.ndarray, seed: int) -> np.ndarray:
    """XOR a ``(batch, n)`` bit array with the scrambling sequence.

    The scrambler is additive, so this function is its own inverse.
    """
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 2:
        raise ConfigurationError("scramble_batch expects a (batch, n) array")
    return (arr ^ scrambler_sequence(seed, arr.shape[1])[None, :]).astype(np.uint8)
