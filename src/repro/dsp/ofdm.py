"""Batched FFT-based OFDM (de)modulation and subcarrier mapping.

One 20 MHz 802.11 symbol is a 64-point (I)FFT plus a 16-sample cyclic
prefix.  These kernels operate on whole stacks of symbols at once — the
IFFT/FFT runs along axis 1 of an ``(n_symbols, 64)`` array and the cyclic
prefix is attached/stripped with pure slicing — so modulating a frame (or a
batch of frames) costs one FFT call instead of one per symbol.

Subcarrier index tables (FFT bins of the 48 data and 4 pilot subcarriers)
are cached in :mod:`repro.dsp.cache`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dsp.cache import cached_table
from repro.errors import EncodingError
from repro.dsp.params import (
    CP_LENGTH,
    DATA_SUBCARRIERS,
    FFT_SIZE,
    N_DATA_SUBCARRIERS,
    PILOT_POLARITY,
    PILOT_SUBCARRIERS,
    PILOT_VALUES,
    SYMBOL_LENGTH,
)

#: IFFT output scaling so 52 unit-power subcarriers give unit sample power.
TIME_SCALE: float = FFT_SIZE / np.sqrt(52.0)


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def data_bins() -> np.ndarray:
    """FFT bins of the 48 data subcarriers, in logical order."""
    return cached_table(
        ("ofdm-data-bins",),
        lambda: _frozen(np.array([k % FFT_SIZE for k in DATA_SUBCARRIERS])),
    )


def pilot_bins() -> np.ndarray:
    """FFT bins of the 4 pilot subcarriers, in logical order."""
    return cached_table(
        ("ofdm-pilot-bins",),
        lambda: _frozen(np.array([k % FFT_SIZE for k in PILOT_SUBCARRIERS])),
    )


def pilot_polarities(symbol_indices: np.ndarray) -> np.ndarray:
    """Pilot polarity p_n for each symbol index (SIGNAL symbol is n = 0)."""
    polarity = cached_table(
        ("ofdm-pilot-polarity",),
        lambda: _frozen(np.array(PILOT_POLARITY, dtype=np.float64)),
    )
    return polarity[np.asarray(symbol_indices) % len(PILOT_POLARITY)]


def map_subcarriers_batch(
    points: np.ndarray,
    symbol_indices: np.ndarray,
    pilot_enabled: bool = True,
) -> np.ndarray:
    """Place stacks of 48 data points (plus pilots) into 64-bin spectra.

    Args:
        points: ``(n_symbols, 48)`` complex data points.
        symbol_indices: per-symbol pilot-polarity index (PPDU position
            *including* the SIGNAL symbol).
        pilot_enabled: set False to zero the pilots.
    """
    pts = np.asarray(points, dtype=np.complex128)
    if pts.ndim != 2 or pts.shape[1] != N_DATA_SUBCARRIERS:
        raise EncodingError(
            f"need (n_symbols, {N_DATA_SUBCARRIERS}) data points, got {pts.shape}"
        )
    spectra = np.zeros((pts.shape[0], FFT_SIZE), dtype=np.complex128)
    spectra[:, data_bins()] = pts
    if pilot_enabled:
        polarity = pilot_polarities(symbol_indices)
        values = np.asarray(PILOT_VALUES, dtype=np.float64)
        spectra[:, pilot_bins()] = polarity[:, None] * values[None, :]
    return spectra


def extract_subcarriers_batch(
    spectra: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``(n_symbols, 64)`` spectra into (data points, pilot values)."""
    spec = np.asarray(spectra, dtype=np.complex128)
    if spec.ndim != 2 or spec.shape[1] != FFT_SIZE:
        raise EncodingError(f"spectra must be (n_symbols, {FFT_SIZE}), got {spec.shape}")
    return spec[:, data_bins()], spec[:, pilot_bins()]


def ofdm_modulate_batch(spectra: np.ndarray, add_cp: bool = True) -> np.ndarray:
    """IFFT ``(n_symbols, 64)`` spectra to time samples, prepending the CP."""
    spec = np.asarray(spectra, dtype=np.complex128)
    if spec.ndim != 2 or spec.shape[1] != FFT_SIZE:
        raise EncodingError(f"spectra must be (n_symbols, {FFT_SIZE}), got {spec.shape}")
    time = np.fft.ifft(spec, axis=1) * TIME_SCALE
    if not add_cp:
        return time
    return np.concatenate([time[:, -CP_LENGTH:], time], axis=1)


def ofdm_demodulate_batch(symbols: np.ndarray, has_cp: bool = True) -> np.ndarray:
    """FFT received symbol rows (CP stripped first) back to 64-bin spectra."""
    arr = np.asarray(symbols, dtype=np.complex128)
    expected = SYMBOL_LENGTH if has_cp else FFT_SIZE
    if arr.ndim != 2 or arr.shape[1] != expected:
        raise EncodingError(
            f"symbols must be (n_symbols, {expected}), got {arr.shape}"
        )
    body = arr[:, CP_LENGTH:] if has_cp else arr
    return np.fft.fft(body, axis=1) / TIME_SCALE


def waveform_to_spectra(
    waveform: np.ndarray, n_symbols: int, offset: int = 0
) -> np.ndarray:
    """Slice a waveform into ``(n_symbols, 64)`` spectra starting at *offset*."""
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    available = (arr.size - offset) // SYMBOL_LENGTH
    if n_symbols > available:
        raise EncodingError(
            f"waveform holds {available} symbols after offset, need {n_symbols}"
        )
    block = arr[offset : offset + n_symbols * SYMBOL_LENGTH]
    return ofdm_demodulate_batch(block.reshape(n_symbols, SYMBOL_LENGTH))
