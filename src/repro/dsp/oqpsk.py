"""Vectorized half-sine O-QPSK modulation kernels (802.15.4 2.4 GHz PHY).

Even-indexed chips modulate the I rail and odd-indexed chips the Q rail;
each rail sends one half-sine pulse of duration 2 Tc per chip with the Q
rail offset by Tc.  Because pulses on one rail never overlap (they are
spaced exactly one pulse length apart), the whole waveform is a reshape of
an outer product — no per-chip Python loop — and the matched filter is a
single matrix-vector product per rail.

Kernels accept a leading batch axis: ``(n_chips,)`` or ``(batch, n_chips)``
chip arrays, with every frame in a batch the same length.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.cache import cached_table
from repro.errors import DecodingError, EncodingError
from repro.dsp.params import SAMPLES_PER_CHIP

#: Samples of one half-sine pulse (duration 2 Tc).
PULSE_SAMPLES: int = 2 * SAMPLES_PER_CHIP


def half_sine_pulse() -> np.ndarray:
    """One cached half-sine pulse spanning two chip periods."""

    def build() -> np.ndarray:
        t = np.arange(PULSE_SAMPLES, dtype=np.float64)
        pulse = np.sin(np.pi * t / PULSE_SAMPLES)
        pulse.setflags(write=False)
        return pulse

    return cached_table(("oqpsk-pulse",), build)


def modulate_chips_batch(chips: np.ndarray) -> np.ndarray:
    """O-QPSK modulate chip rows (even chip count) to IQ samples.

    Output rows have ``SAMPLES_PER_CHIP`` samples per chip plus one
    trailing half-pulse tail (the Q rail's offset).  Half-sine pulses on
    offset rails give sin^2 + cos^2 = 1 — a constant unit envelope (the
    MSK property) — so no further normalisation is applied.
    """
    arr = np.asarray(chips, dtype=np.float64)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise EncodingError("modulate_chips_batch expects 1-D or 2-D chips")
    if arr.shape[1] % 2:
        raise EncodingError("O-QPSK needs an even number of chips")
    bipolar = arr * 2.0 - 1.0 if arr.size == 0 or arr.min() >= 0 else arr
    i_chips = bipolar[:, 0::2]
    q_chips = bipolar[:, 1::2]
    pulse = half_sine_pulse()
    n_frames, n_pairs = i_chips.shape
    # Signal ends after the last Q pulse: n_pairs pulses per rail, Q offset
    # by one chip period.
    end = n_pairs * PULSE_SAMPLES + SAMPLES_PER_CHIP
    i_rail = np.zeros((n_frames, end), dtype=np.float64)
    q_rail = np.zeros((n_frames, end), dtype=np.float64)
    i_rail[:, : n_pairs * PULSE_SAMPLES] = (
        i_chips[:, :, None] * pulse
    ).reshape(n_frames, -1)
    q_rail[:, SAMPLES_PER_CHIP : SAMPLES_PER_CHIP + n_pairs * PULSE_SAMPLES] = (
        q_chips[:, :, None] * pulse
    ).reshape(n_frames, -1)
    waveform = i_rail + 1j * q_rail
    return waveform[0] if squeeze else waveform


def demodulate_chips_batch(waveform: np.ndarray, n_chips: int) -> np.ndarray:
    """Matched-filter demodulation back to bipolar soft chip values.

    Args:
        waveform: IQ sample rows starting at the first I pulse (extra
            trailing samples are ignored).
        n_chips: number of chips to recover per row (even).
    """
    arr = np.asarray(waveform, dtype=np.complex128)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise DecodingError("demodulate_chips_batch expects 1-D or 2-D samples")
    if n_chips % 2:
        raise DecodingError("O-QPSK chip count must be even")
    n_pairs = n_chips // 2
    needed = n_pairs * PULSE_SAMPLES + SAMPLES_PER_CHIP if n_pairs else 0
    if arr.shape[1] < needed:
        raise DecodingError("waveform too short for requested chips")
    pulse = half_sine_pulse()
    pulse_energy = float(np.sum(pulse**2))
    span = n_pairs * PULSE_SAMPLES
    i_segments = arr.real[:, :span].reshape(arr.shape[0], n_pairs, PULSE_SAMPLES)
    q_segments = arr.imag[:, SAMPLES_PER_CHIP : SAMPLES_PER_CHIP + span].reshape(
        arr.shape[0], n_pairs, PULSE_SAMPLES
    )
    soft = np.empty((arr.shape[0], n_chips), dtype=np.float64)
    soft[:, 0::2] = (i_segments @ pulse) / pulse_energy
    soft[:, 1::2] = (q_segments @ pulse) / pulse_energy
    return soft[0] if squeeze else soft
