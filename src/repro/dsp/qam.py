"""Gray-coded QAM map/demap tables and batch (de)modulation kernels.

Home of the constellation hot path shared by the WiFi transmitter, the
receiver, and SledZig's significant-bit machinery.  All lookup tables —
per-axis Gray amplitude maps, full constellation point tables, per-bit
level sets for max-log LLRs, and the bit-group weight vectors — are cached
per modulation in :mod:`repro.dsp.cache`.

The kernels are batch-first: bits and symbols may carry any leading batch
shape; only the trailing axis is interpreted (bit groups / points).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dsp.cache import cached_table
from repro.errors import ConfigurationError, EncodingError
from repro.dsp.params import BITS_PER_SUBCARRIER, average_constellation_power


def gray_code(index: int) -> int:
    """Binary-reflected Gray code of *index*."""
    return index ^ (index >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_code`."""
    index = 0
    while code:
        index ^= code
        code >>= 1
    return index


def bits_per_point(modulation: str) -> int:
    """N_BPSC of one constellation point."""
    n_bpsc = BITS_PER_SUBCARRIER.get(modulation)
    if n_bpsc is None:
        raise ConfigurationError(f"unknown modulation {modulation!r}")
    return n_bpsc


def normalisation_factor(modulation: str) -> float:
    """K_mod such that the normalised constellation has unit average power."""
    return 1.0 / float(np.sqrt(average_constellation_power(modulation)))


def axis_tables(bits_per_axis: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached (amplitude_by_group, group_by_level) tables for one QAM axis.

    ``amplitude_by_group[g]`` is the (un-normalised) amplitude selected by
    the axis bit-group *g* read MSB-first; ``group_by_level[L]`` is the
    group for level L (0 = most negative amplitude).
    """

    def build() -> Tuple[np.ndarray, np.ndarray]:
        n_levels = 2**bits_per_axis
        amplitude_by_group = np.zeros(n_levels, dtype=np.int64)
        group_by_level = np.zeros(n_levels, dtype=np.int64)
        for level in range(n_levels):
            group = gray_code(level)
            amplitude_by_group[group] = 2 * level - (n_levels - 1)
            group_by_level[level] = group
        amplitude_by_group.setflags(write=False)
        group_by_level.setflags(write=False)
        return amplitude_by_group, group_by_level

    return cached_table(("qam-axis", bits_per_axis), build)


def constellation_table(modulation: str) -> np.ndarray:
    """Cached normalised points indexed by the MSB-first bit-group value."""

    def build() -> np.ndarray:
        n_bpsc = bits_per_point(modulation)
        if modulation == "bpsk":
            points = np.array([-1.0 + 0j, 1.0 + 0j])
        else:
            half = n_bpsc // 2
            amp, _ = axis_tables(half)
            k_mod = normalisation_factor(modulation)
            values = np.arange(2**n_bpsc)
            i_group = values >> half
            q_group = values & ((1 << half) - 1)
            points = k_mod * (amp[i_group] + 1j * amp[q_group])
        points.setflags(write=False)
        return points

    return cached_table(("qam-points", modulation), build)


def axis_level_sets(bits_per_axis: int) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    """Cached per axis-bit (amplitudes with bit=0, amplitudes with bit=1)."""

    def build() -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
        n_levels = 2**bits_per_axis
        _, group_by_level = axis_tables(bits_per_axis)
        sets = []
        for bit in range(bits_per_axis):
            zeros, ones = [], []
            for level in range(n_levels):
                amplitude = 2 * level - (n_levels - 1)
                group = int(group_by_level[level])
                if (group >> (bits_per_axis - 1 - bit)) & 1:
                    ones.append(amplitude)
                else:
                    zeros.append(amplitude)
            sets.append(
                (np.array(zeros, dtype=float), np.array(ones, dtype=float))
            )
        return tuple(sets)

    return cached_table(("qam-level-sets", bits_per_axis), build)


def _group_weights(n_bpsc: int) -> np.ndarray:
    """Cached MSB-first weight vector collapsing bit groups to integers."""

    def build() -> np.ndarray:
        weights = (1 << np.arange(n_bpsc - 1, -1, -1)).astype(np.int64)
        weights.setflags(write=False)
        return weights

    return cached_table(("qam-weights", n_bpsc), build)


def modulate_batch(bits: np.ndarray, modulation: str) -> np.ndarray:
    """Map bits to constellation points; trailing axis is the bit stream.

    An input of shape ``(..., n)`` with ``n`` a multiple of N_BPSC yields
    points of shape ``(..., n / N_BPSC)``.
    """
    arr = np.asarray(bits, dtype=np.uint8)
    n_bpsc = bits_per_point(modulation)
    if arr.shape[-1] % n_bpsc:
        raise EncodingError(
            f"{arr.shape[-1]} bits do not form whole {modulation} points "
            f"({n_bpsc} bits each)"
        )
    groups = arr.reshape(arr.shape[:-1] + (-1, n_bpsc))
    values = groups @ _group_weights(n_bpsc)
    return constellation_table(modulation)[values]


def _hard_axis_bits(component: np.ndarray, half: int, k_mod: float) -> np.ndarray:
    """Nearest-level hard decisions for one axis -> ``(..., half)`` bits."""
    n_levels = 2**half
    _, group_by_level = axis_tables(half)
    level = np.round((component / k_mod + (n_levels - 1)) / 2.0)
    level = np.clip(level, 0, n_levels - 1).astype(np.int64)
    groups = group_by_level[level]
    out = np.empty(component.shape + (half,), dtype=np.uint8)
    for bit in range(half):
        out[..., bit] = (groups >> (half - 1 - bit)) & 1
    return out


def demodulate_hard_batch(symbols: np.ndarray, modulation: str) -> np.ndarray:
    """Hard demap points of shape ``(..., n)`` to bits ``(..., n * N_BPSC)``."""
    syms = np.asarray(symbols, dtype=np.complex128)
    n_bpsc = bits_per_point(modulation)
    if modulation == "bpsk":
        return (syms.real > 0).astype(np.uint8)
    half = n_bpsc // 2
    k_mod = normalisation_factor(modulation)
    i_bits = _hard_axis_bits(syms.real, half, k_mod)
    q_bits = _hard_axis_bits(syms.imag, half, k_mod)
    out = np.concatenate([i_bits, q_bits], axis=-1)
    return out.reshape(syms.shape[:-1] + (-1,)) if syms.ndim else out


def _soft_axis(component: np.ndarray, half: int, k_mod: float) -> np.ndarray:
    """Max-log LLRs for one axis -> ``(..., half)`` soft values."""
    y = component / k_mod
    out = np.empty(y.shape + (half,), dtype=np.float64)
    for bit, (zeros, ones) in enumerate(axis_level_sets(half)):
        d0 = np.min((y[..., None] - zeros) ** 2, axis=-1)
        d1 = np.min((y[..., None] - ones) ** 2, axis=-1)
        out[..., bit] = d0 - d1
    return out


def demodulate_soft_batch(symbols: np.ndarray, modulation: str) -> np.ndarray:
    """Max-log LLR demap; positive soft value means the bit is 1."""
    syms = np.asarray(symbols, dtype=np.complex128)
    n_bpsc = bits_per_point(modulation)
    if modulation == "bpsk":
        return syms.real.copy()
    half = n_bpsc // 2
    k_mod = normalisation_factor(modulation)
    i_soft = _soft_axis(syms.real, half, k_mod)
    q_soft = _soft_axis(syms.imag, half, k_mod)
    out = np.concatenate([i_soft, q_soft], axis=-1)
    return out.reshape(syms.shape[:-1] + (-1,)) if syms.ndim else out
