"""802.11 block-interleaver permutations, cached and applied to 2-D blocks.

The permutation for one OFDM symbol depends only on (N_CBPS, N_BPSC); both
directions are cached as index arrays so interleaving a whole batch of
symbols is a single fancy-indexing operation.  The scalar helpers in
:mod:`repro.wifi.interleaver` (including SledZig's inverse position lookup)
are thin views over these tables.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.cache import cached_table
from repro.errors import ConfigurationError, EncodingError


def _build_permutation(n_cbps: int, n_bpsc: int) -> np.ndarray:
    if n_cbps % 16:
        raise ConfigurationError(f"N_CBPS must be a multiple of 16, got {n_cbps}")
    if n_bpsc < 1 or n_cbps % n_bpsc:
        raise ConfigurationError(
            f"N_BPSC {n_bpsc} incompatible with N_CBPS {n_cbps}"
        )
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    i = (n_cbps // 16) * (k % 16) + k // 16
    j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
    perm = j.astype(np.int64)
    if not np.array_equal(np.sort(perm), k):
        raise ConfigurationError("interleaver permutation is not a bijection")
    perm.setflags(write=False)
    return perm


def interleave_permutation(n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Cached permutation ``perm[k] = j`` (input index to output index)."""
    return cached_table(
        ("interleave", n_cbps, n_bpsc), lambda: _build_permutation(n_cbps, n_bpsc)
    )


def deinterleave_permutation(n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Cached inverse permutation ``inv[j] = k``."""

    def build() -> np.ndarray:
        perm = interleave_permutation(n_cbps, n_bpsc)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        inv.setflags(write=False)
        return inv

    return cached_table(("deinterleave", n_cbps, n_bpsc), build)


def _as_blocks(values: np.ndarray, n_cbps: int) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise EncodingError("interleaver kernels expect a 1-D or 2-D array")
    if arr.shape[1] % n_cbps:
        raise EncodingError(
            f"stream of {arr.shape[1]} values is not whole symbols of {n_cbps}"
        )
    return arr.reshape(-1, n_cbps)


def interleave_blocks(values: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Interleave rows of whole symbols; any leading shape is preserved.

    Accepts ``(n_bits,)`` or ``(batch, n_bits)`` with ``n_bits`` a multiple
    of N_CBPS and permutes every N_CBPS-sized block independently.
    """
    arr = np.asarray(values)
    blocks = _as_blocks(arr, n_cbps)
    perm = interleave_permutation(n_cbps, n_bpsc)
    out = np.empty_like(blocks)
    out[:, perm] = blocks
    return out.reshape(arr.shape)


def deinterleave_blocks(values: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Invert :func:`interleave_blocks` (same shape contract)."""
    arr = np.asarray(values)
    blocks = _as_blocks(arr, n_cbps)
    perm = interleave_permutation(n_cbps, n_bpsc)
    return blocks[:, perm].reshape(arr.shape)
