"""Shared vectorized DSP core for the WiFi / ZigBee / SledZig chains.

``repro.dsp`` is the single home of the hot bit/symbol-domain primitives;
the per-technology packages (:mod:`repro.wifi`, :mod:`repro.zigbee`,
:mod:`repro.sledzig`) keep the standard-facing APIs and delegate their
inner loops here.  Every kernel is batch-first (a leading frame/symbol
axis) and backed by precomputed tables held in a module-level cache:

========================  =====================================================
Module                    Owns
========================  =====================================================
:mod:`repro.dsp.cache`    parameter-keyed table registry with hit/miss stats
:mod:`repro.dsp.trellis`  K=7 trellis tables, GF(2)-FIR encoder, batched
                          hard/soft Viterbi add-compare-select
:mod:`repro.dsp.scrambling`  127-bit scrambler periods per seed, batch XOR
:mod:`repro.dsp.interleaving`  (N_CBPS, N_BPSC) permutations, block apply
:mod:`repro.dsp.qam`      Gray map/demap tables, batch (de)modulation, LLRs
:mod:`repro.dsp.ofdm`     subcarrier bin tables, batched IFFT/FFT + CP
:mod:`repro.dsp.dsss`     16x32 PN chip matrix, batch spread/correlate
:mod:`repro.dsp.oqpsk`    half-sine pulse, vectorized rails + matched filter
========================  =====================================================

See DESIGN.md ("The repro.dsp layer") for the layering contract, cache key
conventions, and batch semantics.
"""

from repro.dsp.cache import TableCache, cache_stats, cached_table, clear_cache
from repro.dsp.trellis import (
    ERASURE,
    Trellis,
    conv_encode_batch,
    get_trellis,
    viterbi_decode_batch,
    viterbi_decode_soft_batch,
)
from repro.dsp.scrambling import scramble_batch, scrambler_sequence
from repro.dsp.interleaving import (
    deinterleave_blocks,
    deinterleave_permutation,
    interleave_blocks,
    interleave_permutation,
)
from repro.dsp.qam import (
    constellation_table,
    demodulate_hard_batch,
    demodulate_soft_batch,
    modulate_batch,
)
from repro.dsp.ofdm import (
    extract_subcarriers_batch,
    map_subcarriers_batch,
    ofdm_demodulate_batch,
    ofdm_modulate_batch,
    waveform_to_spectra,
)
from repro.dsp.dsss import correlate_batch, despread_batch, spread_batch
from repro.dsp.oqpsk import demodulate_chips_batch, modulate_chips_batch

__all__ = [
    "TableCache",
    "cache_stats",
    "cached_table",
    "clear_cache",
    "ERASURE",
    "Trellis",
    "conv_encode_batch",
    "get_trellis",
    "viterbi_decode_batch",
    "viterbi_decode_soft_batch",
    "scramble_batch",
    "scrambler_sequence",
    "deinterleave_blocks",
    "deinterleave_permutation",
    "interleave_blocks",
    "interleave_permutation",
    "constellation_table",
    "demodulate_hard_batch",
    "demodulate_soft_batch",
    "modulate_batch",
    "extract_subcarriers_batch",
    "map_subcarriers_batch",
    "ofdm_demodulate_batch",
    "ofdm_modulate_batch",
    "waveform_to_spectra",
    "correlate_batch",
    "despread_batch",
    "spread_batch",
    "demodulate_chips_batch",
    "modulate_chips_batch",
]
