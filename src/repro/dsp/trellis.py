"""Convolutional-code trellis tables and vectorized encode/Viterbi kernels.

This is the hot core behind :mod:`repro.wifi.convolutional`.  The 64-state
(K = 7) trellis of the 802.11 code — next-state, output, and predecessor
tables — is built once per (g0, g1, K) and cached in
:mod:`repro.dsp.cache`.  On top of it sit three vectorized kernels:

* :func:`conv_encode_batch` — the rate-1/2 encoder expressed as a GF(2) FIR
  filter (each output stream is the XOR of a handful of shifted copies of
  the input), so whole batches of frames encode with ~14 numpy ops total
  instead of one Python iteration per bit.
* :func:`viterbi_decode_batch` / :func:`viterbi_decode_soft_batch` — hard
  and soft add-compare-select over a ``(batch, 64)`` metric plane.  The
  per-step recursion is inherently sequential, but every step now processes
  all frames and all states in one shot, which is where the batch-32
  speedup of ``benchmarks/test_bench_core.py`` comes from.

The ACS recursions themselves are *kernels*: this module validates inputs
and splits the A/B planes, then dispatches to the backend selected in
:mod:`repro.kernels` (``reference`` numpy loop, ``optimized`` butterfly
ACS, optional ``numba``), all of which are held bit-identical by the
conformance matrix in ``tests/kernels/``.

All kernels take and return 2-D arrays with the batch axis first; every
frame in a batch must have the same length (callers group by length).
Scalar decodes are the one-row special case.  Zero-length frames and empty
batches are legal and return well-formed empty arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import kernels
from repro.dsp.cache import cached_table
from repro.errors import DecodingError
from repro.utils.galois import poly_to_taps

#: Default 802.11 generator polynomials (octal 133 / 171) and K = 7.
DEFAULT_G0: int = 0o133
DEFAULT_G1: int = 0o171
DEFAULT_CONSTRAINT_LENGTH: int = 7

#: Erasure marker inside depunctured hard streams (neither 0 nor 1).
ERASURE: int = 2


@dataclass(frozen=True)
class Trellis:
    """Precomputed tables of one rate-1/2 convolutional code.

    Attributes:
        constraint_length: K (the shift register holds K - 1 bits).
        n_states: 2^(K-1).
        g0_taps, g1_taps: tap vectors ordered [x_n, x_{n-1}, ...].
        next_state: ``next_state[state, input]`` transition table.
        outputs: ``outputs[state, input]`` packing (A << 1) | B.
        preds: ``preds[state, slot]`` — the two predecessor states.
        pred_inputs: input bit taken along each predecessor edge.
        out_a, out_b: the A/B output bits as int64 ``[state, input]`` tables.
        sign_a, sign_b: the same outputs mapped to +-1.0 (soft metrics).
        hard_costs: ``hard_costs[a, b, state, input]`` Hamming branch cost
            for a received pair (a, b) with values in {0, 1, ERASURE};
            erased positions contribute no cost.
    """

    constraint_length: int
    n_states: int
    g0_taps: np.ndarray
    g1_taps: np.ndarray
    next_state: np.ndarray
    outputs: np.ndarray
    preds: np.ndarray
    pred_inputs: np.ndarray
    out_a: np.ndarray
    out_b: np.ndarray
    sign_a: np.ndarray
    sign_b: np.ndarray
    hard_costs: np.ndarray


def _build_trellis(g0: int, g1: int, constraint_length: int) -> Trellis:
    n_states = 1 << (constraint_length - 1)
    g0_taps = poly_to_taps(g0, constraint_length)
    g1_taps = poly_to_taps(g1, constraint_length)
    n_history = constraint_length - 1

    next_state = np.zeros((n_states, 2), dtype=np.int64)
    outputs = np.zeros((n_states, 2), dtype=np.int64)
    for state in range(n_states):
        history = [(state >> (n_history - 1 - i)) & 1 for i in range(n_history)]
        for bit in range(2):
            window = np.array([bit] + history, dtype=np.uint8)
            a = int(np.bitwise_and(g0_taps, window).sum() & 1)
            b = int(np.bitwise_and(g1_taps, window).sum() & 1)
            outputs[state, bit] = (a << 1) | b
            next_state[state, bit] = ((state >> 1) | (bit << (n_history - 1))) & (
                n_states - 1
            )

    preds = np.zeros((n_states, 2), dtype=np.int64)
    pred_inputs = np.zeros((n_states, 2), dtype=np.int64)
    fill = np.zeros(n_states, dtype=np.int64)
    for state in range(n_states):
        for bit in range(2):
            dst = next_state[state, bit]
            preds[dst, fill[dst]] = state
            pred_inputs[dst, fill[dst]] = bit
            fill[dst] += 1
    if not np.all(fill == 2):
        raise DecodingError("trellis construction failed (predecessor count)")

    out_a = (outputs >> 1).astype(np.int64)
    out_b = (outputs & 1).astype(np.int64)
    hard_costs = np.zeros((3, 3, n_states, 2), dtype=np.int64)
    for a in range(3):
        for b in range(3):
            cost = np.zeros((n_states, 2), dtype=np.int64)
            if a != ERASURE:
                cost += out_a != a
            if b != ERASURE:
                cost += out_b != b
            hard_costs[a, b] = cost

    return Trellis(
        constraint_length=constraint_length,
        n_states=n_states,
        g0_taps=g0_taps,
        g1_taps=g1_taps,
        next_state=next_state,
        outputs=outputs,
        preds=preds,
        pred_inputs=pred_inputs,
        out_a=out_a,
        out_b=out_b,
        sign_a=(out_a * 2 - 1).astype(np.float64),
        sign_b=(out_b * 2 - 1).astype(np.float64),
        hard_costs=hard_costs,
    )


def get_trellis(
    g0: int = DEFAULT_G0,
    g1: int = DEFAULT_G1,
    constraint_length: int = DEFAULT_CONSTRAINT_LENGTH,
) -> Trellis:
    """The cached trellis for one generator pair."""
    return cached_table(
        ("trellis", g0, g1, constraint_length),
        lambda: _build_trellis(g0, g1, constraint_length),
    )


def _fir_gf2(padded: np.ndarray, taps: np.ndarray, n_history: int) -> np.ndarray:
    """GF(2) FIR filter over rows of *padded* (history columns prepended).

    ``taps[k]`` multiplies x_{n-k}; the returned array drops the first
    *n_history* columns so row *i* holds y_i for the un-padded inputs.
    """
    acc = np.zeros_like(padded)
    for k in np.flatnonzero(taps):
        if k == 0:
            acc ^= padded
        else:
            acc[:, k:] ^= padded[:, :-k]
    return acc[:, n_history:]


def conv_encode_batch(
    bits: np.ndarray,
    initial_state: int = 0,
    trellis: Optional[Trellis] = None,
) -> Tuple[np.ndarray, int]:
    """Rate-1/2 encode a ``(batch, n)`` bit array, serialised A-first.

    Every row starts from the same *initial_state* (0 for a standard DATA
    field).  Returns ``(coded, final_state)`` where *coded* has shape
    ``(batch, 2n)``; *final_state* is the shift-register state after the
    last bit (meaningful to streaming callers, which use batch size 1).
    """
    t = trellis or get_trellis()
    arr = np.ascontiguousarray(np.asarray(bits, dtype=np.uint8))
    if arr.ndim != 2:
        raise DecodingError("conv_encode_batch expects a (batch, n) array")
    n_history = t.constraint_length - 1
    history = np.array(
        [(initial_state >> i) & 1 for i in range(n_history)], dtype=np.uint8
    )  # history[i] = x_{n-1-(n_history-1-i)}... x_{-1} is the MSB of state
    # State packs x_{n-1} in the MSB, so the padded prefix (oldest first) is
    # [x_{-n_history}, ..., x_{-1}] = LSB..MSB of the state value.
    padded = np.concatenate(
        [np.broadcast_to(history, (arr.shape[0], n_history)), arr], axis=1
    ).astype(np.uint8)
    a = _fir_gf2(padded, t.g0_taps, n_history)
    b = _fir_gf2(padded, t.g1_taps, n_history)
    out = np.empty((arr.shape[0], 2 * arr.shape[1]), dtype=np.uint8)
    out[:, 0::2] = a
    out[:, 1::2] = b
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        # Zero-length frames (and empty batches) encode to a well-formed
        # empty stream and leave the register untouched.
        final_state = initial_state
    else:
        tail = padded[0, -n_history:]  # x_{n-K+1} .. x_{n-1}, oldest first
        final_state = 0
        for i, bit in enumerate(tail):
            final_state |= int(bit) << i
    return out, final_state


def _check_pairs(coded: np.ndarray, n_data_bits: Optional[int]) -> int:
    if coded.ndim != 2:
        raise DecodingError("batch Viterbi expects a (batch, 2n) array")
    if coded.shape[1] % 2:
        raise DecodingError("coded stream must contain A/B pairs (even length)")
    n_steps = coded.shape[1] // 2
    if n_data_bits is not None and n_data_bits > n_steps:
        raise DecodingError(
            f"requested {n_data_bits} data bits from only {n_steps} coded pairs"
        )
    return n_steps


def viterbi_decode_batch(
    coded: np.ndarray,
    n_data_bits: Optional[int] = None,
    assume_zero_tail: bool = True,
    trellis: Optional[Trellis] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Hard-decision Viterbi over a ``(batch, 2n)`` coded array.

    Values of :data:`ERASURE` mark punctured positions and contribute no
    branch metric.  Semantics per row match the scalar decoder exactly
    (same tie-breaking: lowest predecessor slot wins) on every backend;
    *backend* overrides the process-wide :mod:`repro.kernels` selection.
    """
    t = trellis or get_trellis()
    arr = np.asarray(coded, dtype=np.uint8)
    n_steps = _check_pairs(arr, n_data_bits)
    if n_data_bits is None:
        n_data_bits = n_steps
    a = arr[:, 0::2].astype(np.int64)
    b = arr[:, 1::2].astype(np.int64)
    decoded = kernels.dispatch(
        "viterbi_hard", a, b, t, assume_zero_tail, backend=backend
    )
    return decoded[:, :n_data_bits]


def viterbi_decode_soft_batch(
    soft: np.ndarray,
    n_data_bits: Optional[int] = None,
    assume_zero_tail: bool = False,
    trellis: Optional[Trellis] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Soft-decision Viterbi over a ``(batch, 2n)`` array of LLR-like values.

    Positive means "this coded bit is more likely 1"; punctured positions
    carry 0.0 and thus no information.  The path metric is the correlation
    ``sum(soft * (2 * expected - 1))``, maximised.  *backend* overrides
    the process-wide :mod:`repro.kernels` selection.
    """
    t = trellis or get_trellis()
    arr = np.asarray(soft, dtype=np.float64)
    n_steps = _check_pairs(arr, n_data_bits)
    if n_data_bits is None:
        n_data_bits = n_steps
    a = np.ascontiguousarray(arr[:, 0::2])
    b = np.ascontiguousarray(arr[:, 1::2])
    decoded = kernels.dispatch(
        "viterbi_soft", a, b, t, assume_zero_tail, backend=backend
    )
    return decoded[:, :n_data_bits]
