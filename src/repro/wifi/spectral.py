"""Waveform spectral analysis: power spectrum and in-band power measurement.

The paper's RSSI experiments (Figs. 11/12) measure how much WiFi power falls
inside a 2 MHz ZigBee channel.  These helpers compute that from actual IQ
waveforms via a windowed, segment-averaged periodogram, so inter-subcarrier
spectral leakage — the effect that makes 7 overlapped subcarriers better
than 6 (paper Fig. 7) — is captured by the signal itself rather than
assumed.

Convention: :func:`power_spectrum` returns per-bin *power* (linear, unit of
signal power), normalised so the sum over all bins equals the mean waveform
power (Parseval).  In-band power is then a plain sum over bins in the band.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.wifi.params import SAMPLE_RATE_HZ


def power_spectrum(
    waveform: np.ndarray,
    nfft: int = 512,
    sample_rate_hz: float = SAMPLE_RATE_HZ,
) -> Tuple[np.ndarray, np.ndarray]:
    """Averaged windowed periodogram of a complex baseband waveform.

    Returns ``(frequencies_hz, per_bin_power)`` with frequencies centred on
    0 (fftshifted), spanning +-sample_rate/2.  ``sum(per_bin_power)`` equals
    the (window-weighted) mean power of the waveform.
    """
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    if arr.size < 64:
        raise ConfigurationError(
            f"waveform of {arr.size} samples is too short for a spectrum"
        )
    while nfft > arr.size:
        nfft //= 2  # degrade resolution gracefully for short waveforms
    window = np.hanning(nfft)
    win_energy = float(np.sum(window**2))
    hop = nfft // 2
    acc = np.zeros(nfft, dtype=np.float64)
    count = 0
    start = 0
    while start + nfft <= arr.size:
        spec = np.fft.fft(arr[start : start + nfft] * window)
        acc += np.abs(spec) ** 2
        count += 1
        start += hop
    psd = acc / (count * nfft * win_energy)
    freqs = np.fft.fftfreq(nfft, d=1.0 / sample_rate_hz)
    return np.fft.fftshift(freqs), np.fft.fftshift(psd)


def band_power(
    waveform: np.ndarray,
    center_hz: float,
    bandwidth_hz: float,
    nfft: int = 512,
    sample_rate_hz: float = SAMPLE_RATE_HZ,
) -> float:
    """Mean power falling inside [center - bw/2, center + bw/2] (linear).

    This emulates what a narrowband energy detector (the TelosB RSSI
    register) reports when pointed at a 2 MHz ZigBee channel inside the
    20 MHz WiFi signal.
    """
    freqs, psd = power_spectrum(waveform, nfft, sample_rate_hz)
    low = center_hz - bandwidth_hz / 2.0
    high = center_hz + bandwidth_hz / 2.0
    mask = (freqs >= low) & (freqs < high)
    if not mask.any():
        raise ConfigurationError(
            f"band [{low:.0f}, {high:.0f}] Hz outside the sampled spectrum"
        )
    return float(np.sum(psd[mask]))


def band_power_db(
    waveform: np.ndarray,
    center_hz: float,
    bandwidth_hz: float,
    nfft: int = 512,
    sample_rate_hz: float = SAMPLE_RATE_HZ,
) -> float:
    """:func:`band_power` in dB relative to unit power."""
    power = band_power(waveform, center_hz, bandwidth_hz, nfft, sample_rate_hz)
    if power <= 0.0:
        return float("-inf")
    return float(10.0 * np.log10(power))


def total_power_db(waveform: np.ndarray) -> float:
    """Mean waveform power in dB relative to unit power."""
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    if arr.size == 0:
        return float("-inf")
    power = float(np.mean(np.abs(arr) ** 2))
    return float(10.0 * np.log10(power)) if power > 0 else float("-inf")


def subcarrier_powers(spectra: np.ndarray) -> np.ndarray:
    """Average per-FFT-bin power over a stack of 64-bin symbol spectra.

    Useful for exact (leakage-free) views of which subcarriers carry power,
    e.g. the Fig. 5(b) style spectrum comparison.
    """
    arr = np.asarray(spectra, dtype=np.complex128)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.shape[1] != 64:
        raise ConfigurationError(
            f"expected symbols of 64 bins, got shape {arr.shape}"
        )
    return np.mean(np.abs(arr) ** 2, axis=0)
