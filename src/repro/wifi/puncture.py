"""Puncturing for coding rates 2/3, 3/4 and 5/6 (802.11 Section 18.3.5.6).

Every 802.11 coding rate starts from the rate-1/2 mother code; higher rates
transmit only a subset of the coded bits.  The keep-patterns below are over
the serialised (A1 B1 A2 B2 ...) stream:

    2/3: keep A1 B1 A2     drop B2             (period 4 -> 3)
    3/4: keep A1 B1 A2 B3  drop B2 A3          (period 6 -> 4)
    5/6: keep A1 B1 A2 B3 A4 B5  drop B2 A3 B4 A5  (period 10 -> 6)

SledZig needs both directions: :func:`puncture` for the transmit chain and
the index maps for translating significant-bit positions between the
transmitted stream and the pre-puncture ``y`` stream of the paper's Eq. 1.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.utils.bits import BitsLike, as_bits
from repro.wifi.convolutional import ERASURE

#: Keep-patterns over the serialised pre-puncture stream, one per rate.
PUNCTURE_PATTERNS: Dict[str, Tuple[int, ...]] = {
    "1/2": (1, 1),
    "2/3": (1, 1, 1, 0),
    "3/4": (1, 1, 1, 0, 0, 1),
    "5/6": (1, 1, 1, 0, 0, 1, 1, 0, 0, 1),
}


def _pattern(coding_rate: str) -> np.ndarray:
    try:
        return np.array(PUNCTURE_PATTERNS[coding_rate], dtype=bool)
    except KeyError:
        raise ConfigurationError(
            f"unknown coding rate {coding_rate!r}; valid: {sorted(PUNCTURE_PATTERNS)}"
        ) from None


def punctured_length(n_prepuncture: int, coding_rate: str) -> int:
    """Transmitted bits resulting from *n_prepuncture* mother-code bits."""
    pattern = _pattern(coding_rate)
    period = pattern.size
    if n_prepuncture % period:
        raise EncodingError(
            f"pre-puncture length {n_prepuncture} is not a multiple of the "
            f"rate-{coding_rate} pattern period {period}"
        )
    return n_prepuncture // period * int(pattern.sum())


def puncture(coded: BitsLike, coding_rate: str) -> np.ndarray:
    """Drop the punctured positions from a rate-1/2 coded stream."""
    arr = as_bits(coded)
    pattern = _pattern(coding_rate)
    period = pattern.size
    if arr.size % period:
        raise EncodingError(
            f"coded length {arr.size} is not a multiple of the "
            f"rate-{coding_rate} pattern period {period}"
        )
    mask = np.tile(pattern, arr.size // period)
    return arr[mask]


def depuncture(received: BitsLike, coding_rate: str) -> np.ndarray:
    """Re-expand a punctured stream, marking missing bits as erasures.

    The output length is the original mother-code length; punctured positions
    hold :data:`repro.wifi.convolutional.ERASURE` so the Viterbi decoder
    skips them in its branch metrics.
    """
    arr = np.asarray(as_bits(received) if not isinstance(received, np.ndarray) else received)
    arr = np.asarray(arr, dtype=np.uint8).ravel()
    pattern = _pattern(coding_rate)
    period = pattern.size
    kept_per_period = int(pattern.sum())
    if arr.size % kept_per_period:
        raise EncodingError(
            f"received length {arr.size} is not a multiple of {kept_per_period} "
            f"kept bits per rate-{coding_rate} period"
        )
    n_periods = arr.size // kept_per_period
    out = np.full(n_periods * period, ERASURE, dtype=np.uint8)
    mask = np.tile(pattern, n_periods)
    out[mask] = arr
    return out


def depuncture_soft(received: np.ndarray, coding_rate: str) -> np.ndarray:
    """Re-expand punctured *soft* values; missing bits become 0.0.

    Zero is the natural soft erasure — it contributes nothing to a
    correlation path metric — so the soft Viterbi needs no erasure marker.
    """
    arr = np.asarray(received, dtype=np.float64).ravel()
    pattern = _pattern(coding_rate)
    period = pattern.size
    kept_per_period = int(pattern.sum())
    if arr.size % kept_per_period:
        raise EncodingError(
            f"received length {arr.size} is not a multiple of {kept_per_period} "
            f"kept bits per rate-{coding_rate} period"
        )
    n_periods = arr.size // kept_per_period
    out = np.zeros(n_periods * period, dtype=np.float64)
    out[np.tile(pattern, n_periods)] = arr
    return out


def puncture_blocks(coded: np.ndarray, coding_rate: str) -> np.ndarray:
    """Batch :func:`puncture`: drop punctured columns of a ``(batch, n)`` array."""
    arr = np.asarray(coded, dtype=np.uint8)
    if arr.ndim != 2:
        raise EncodingError("puncture_blocks expects a (batch, n) array")
    pattern = _pattern(coding_rate)
    period = pattern.size
    if arr.shape[1] % period:
        raise EncodingError(
            f"coded length {arr.shape[1]} is not a multiple of the "
            f"rate-{coding_rate} pattern period {period}"
        )
    mask = np.tile(pattern, arr.shape[1] // period)
    return arr[:, mask]


def depuncture_blocks(received: np.ndarray, coding_rate: str) -> np.ndarray:
    """Batch :func:`depuncture`: erasure-expand every row of ``(batch, n)``."""
    arr = np.asarray(received, dtype=np.uint8)
    if arr.ndim != 2:
        raise EncodingError("depuncture_blocks expects a (batch, n) array")
    pattern = _pattern(coding_rate)
    period = pattern.size
    kept_per_period = int(pattern.sum())
    if arr.shape[1] % kept_per_period:
        raise EncodingError(
            f"received length {arr.shape[1]} is not a multiple of "
            f"{kept_per_period} kept bits per rate-{coding_rate} period"
        )
    n_periods = arr.shape[1] // kept_per_period
    out = np.full((arr.shape[0], n_periods * period), ERASURE, dtype=np.uint8)
    out[:, np.tile(pattern, n_periods)] = arr
    return out


def depuncture_soft_blocks(received: np.ndarray, coding_rate: str) -> np.ndarray:
    """Batch :func:`depuncture_soft`: zero-fill punctured columns."""
    arr = np.asarray(received, dtype=np.float64)
    if arr.ndim != 2:
        raise EncodingError("depuncture_soft_blocks expects a (batch, n) array")
    pattern = _pattern(coding_rate)
    period = pattern.size
    kept_per_period = int(pattern.sum())
    if arr.shape[1] % kept_per_period:
        raise EncodingError(
            f"received length {arr.shape[1]} is not a multiple of "
            f"{kept_per_period} kept bits per rate-{coding_rate} period"
        )
    n_periods = arr.shape[1] // kept_per_period
    out = np.zeros((arr.shape[0], n_periods * period), dtype=np.float64)
    out[:, np.tile(pattern, n_periods)] = arr
    return out


def kept_indices(n_prepuncture: int, coding_rate: str) -> np.ndarray:
    """Pre-puncture indices of the bits that survive puncturing, in order.

    ``kept_indices(n, rate)[q]`` is the mother-code position of transmitted
    bit *q* — the map SledZig uses to push significant-bit positions from the
    interleaver domain back to the paper's y-stream.
    """
    pattern = _pattern(coding_rate)
    period = pattern.size
    if n_prepuncture % period:
        raise EncodingError(
            f"pre-puncture length {n_prepuncture} is not a multiple of {period}"
        )
    mask = np.tile(pattern, n_prepuncture // period)
    return np.flatnonzero(mask)


def transmitted_index(pre_index: int, coding_rate: str) -> int:
    """Position of mother-code bit *pre_index* in the transmitted stream.

    Raises :class:`EncodingError` if that bit is punctured away.
    """
    pattern = _pattern(coding_rate)
    period = pattern.size
    phase = pre_index % period
    if not pattern[phase]:
        raise EncodingError(
            f"mother-code bit {pre_index} is punctured at rate {coding_rate}"
        )
    kept_before_phase = int(pattern[:phase].sum())
    return (pre_index // period) * int(pattern.sum()) + kept_before_phase


def is_punctured(pre_index: int, coding_rate: str) -> bool:
    """Whether mother-code bit *pre_index* is dropped at this rate."""
    pattern = _pattern(coding_rate)
    return not bool(pattern[pre_index % pattern.size])
