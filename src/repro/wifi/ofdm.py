"""OFDM symbol assembly: subcarrier mapping, IFFT/FFT and cyclic prefix.

One 20 MHz 802.11 symbol is a 64-point IFFT over 48 data subcarriers, 4
pilots and 12 nulls, preceded by a 16-sample cyclic prefix.  Frequency-domain
vectors use *logical* subcarrier indices -32..31 (0 = DC); the natural-order
FFT bin of logical index k is k mod 64.

Normalisation: time-domain symbols are scaled by 64/sqrt(52) after numpy's
ifft, so a symbol whose 52 used subcarriers each carry unit average power has
unit average sample power.  This keeps waveform-level power measurements
(e.g. the RSSI experiments) directly comparable across modulations.

The batched FFT kernels and cached bin tables live in
:mod:`repro.dsp.ofdm`; the per-symbol helpers here are one-row wrappers.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.dsp.ofdm import (
    TIME_SCALE,
    extract_subcarriers_batch,
    map_subcarriers_batch,
    ofdm_demodulate_batch,
    ofdm_modulate_batch,
    waveform_to_spectra,
)
from repro.errors import EncodingError
from repro.wifi.params import (
    FFT_SIZE,
    N_DATA_SUBCARRIERS,
    SYMBOL_LENGTH,
)

__all__ = [
    "TIME_SCALE",
    "map_subcarriers",
    "extract_subcarriers",
    "ofdm_modulate",
    "ofdm_demodulate",
    "symbols_to_waveform",
    "waveform_to_symbols",
]


def map_subcarriers(
    data_symbols: Sequence[complex],
    symbol_index: int = 0,
    pilot_enabled: bool = True,
) -> np.ndarray:
    """Place 48 data QAM points and the 4 pilots into a 64-bin spectrum.

    Args:
        data_symbols: exactly 48 complex points, in logical subcarrier order
            (-26 upwards, skipping pilots and DC).
        symbol_index: index of this symbol within the PPDU *including* the
            SIGNAL symbol, selecting the pilot polarity p_n (SIGNAL uses
            n = 0, the first DATA symbol n = 1, ...).
        pilot_enabled: set False to zero the pilots (used by analysis code
            isolating data-subcarrier power).

    Returns the length-64 frequency vector indexed by FFT bin.
    """
    points = np.asarray(data_symbols, dtype=np.complex128).ravel()
    if points.size != N_DATA_SUBCARRIERS:
        raise EncodingError(
            f"need exactly {N_DATA_SUBCARRIERS} data points, got {points.size}"
        )
    return map_subcarriers_batch(
        points[None, :], np.array([symbol_index]), pilot_enabled
    )[0]


def extract_subcarriers(spectrum: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a 64-bin spectrum into (48 data points, 4 pilot values)."""
    spec = np.asarray(spectrum, dtype=np.complex128).ravel()
    if spec.size != FFT_SIZE:
        raise EncodingError(f"spectrum must have {FFT_SIZE} bins, got {spec.size}")
    data, pilots = extract_subcarriers_batch(spec[None, :])
    return data[0].copy(), pilots[0].copy()


def ofdm_modulate(spectrum: np.ndarray, add_cp: bool = True) -> np.ndarray:
    """IFFT a 64-bin spectrum into time samples, prepending the CP."""
    spec = np.asarray(spectrum, dtype=np.complex128).ravel()
    if spec.size != FFT_SIZE:
        raise EncodingError(f"spectrum must have {FFT_SIZE} bins, got {spec.size}")
    return ofdm_modulate_batch(spec[None, :], add_cp=add_cp)[0]


def ofdm_demodulate(samples: np.ndarray, has_cp: bool = True) -> np.ndarray:
    """FFT one received symbol (CP stripped first) back to 64 bins."""
    arr = np.asarray(samples, dtype=np.complex128).ravel()
    expected = SYMBOL_LENGTH if has_cp else FFT_SIZE
    if arr.size != expected:
        raise EncodingError(
            f"symbol must have {expected} samples, got {arr.size}"
        )
    return ofdm_demodulate_batch(arr[None, :], has_cp=has_cp)[0]


def symbols_to_waveform(spectra: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-symbol spectra into one CP-prefixed waveform."""
    if len(spectra) == 0:
        return np.zeros(0, dtype=np.complex128)
    stacked = np.asarray(spectra, dtype=np.complex128)
    if stacked.ndim != 2 or stacked.shape[1] != FFT_SIZE:
        raise EncodingError(
            f"spectra must stack to (n_symbols, {FFT_SIZE}), got {stacked.shape}"
        )
    return ofdm_modulate_batch(stacked).ravel()


def waveform_to_symbols(
    waveform: np.ndarray, n_symbols: Optional[int] = None, offset: int = 0
) -> np.ndarray:
    """Slice a waveform into per-symbol spectra starting at *offset*.

    Returns an array of shape (n_symbols, 64).
    """
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    if n_symbols is None:
        n_symbols = (arr.size - offset) // SYMBOL_LENGTH
    return waveform_to_spectra(arr, n_symbols, offset)
