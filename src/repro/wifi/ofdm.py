"""OFDM symbol assembly: subcarrier mapping, IFFT/FFT and cyclic prefix.

One 20 MHz 802.11 symbol is a 64-point IFFT over 48 data subcarriers, 4
pilots and 12 nulls, preceded by a 16-sample cyclic prefix.  Frequency-domain
vectors use *logical* subcarrier indices -32..31 (0 = DC); the natural-order
FFT bin of logical index k is k mod 64.

Normalisation: time-domain symbols are scaled by 64/sqrt(52) after numpy's
ifft, so a symbol whose 52 used subcarriers each carry unit average power has
unit average sample power.  This keeps waveform-level power measurements
(e.g. the RSSI experiments) directly comparable across modulations.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import EncodingError
from repro.wifi.params import (
    CP_LENGTH,
    DATA_SUBCARRIERS,
    FFT_SIZE,
    N_DATA_SUBCARRIERS,
    PILOT_POLARITY,
    PILOT_SUBCARRIERS,
    PILOT_VALUES,
    SYMBOL_LENGTH,
)

#: IFFT output scaling so 52 unit-power subcarriers give unit sample power.
TIME_SCALE: float = FFT_SIZE / np.sqrt(52.0)


def map_subcarriers(
    data_symbols: Sequence[complex],
    symbol_index: int = 0,
    pilot_enabled: bool = True,
) -> np.ndarray:
    """Place 48 data QAM points and the 4 pilots into a 64-bin spectrum.

    Args:
        data_symbols: exactly 48 complex points, in logical subcarrier order
            (-26 upwards, skipping pilots and DC).
        symbol_index: index of this symbol within the PPDU *including* the
            SIGNAL symbol, selecting the pilot polarity p_n (SIGNAL uses
            n = 0, the first DATA symbol n = 1, ...).
        pilot_enabled: set False to zero the pilots (used by analysis code
            isolating data-subcarrier power).

    Returns the length-64 frequency vector indexed by FFT bin.
    """
    points = np.asarray(data_symbols, dtype=np.complex128).ravel()
    if points.size != N_DATA_SUBCARRIERS:
        raise EncodingError(
            f"need exactly {N_DATA_SUBCARRIERS} data points, got {points.size}"
        )
    spectrum = np.zeros(FFT_SIZE, dtype=np.complex128)
    for point, logical in zip(points, DATA_SUBCARRIERS):
        spectrum[logical % FFT_SIZE] = point
    if pilot_enabled:
        polarity = PILOT_POLARITY[symbol_index % len(PILOT_POLARITY)]
        for value, logical in zip(PILOT_VALUES, PILOT_SUBCARRIERS):
            spectrum[logical % FFT_SIZE] = polarity * value
    return spectrum


def extract_subcarriers(spectrum: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a 64-bin spectrum into (48 data points, 4 pilot values)."""
    spec = np.asarray(spectrum, dtype=np.complex128).ravel()
    if spec.size != FFT_SIZE:
        raise EncodingError(f"spectrum must have {FFT_SIZE} bins, got {spec.size}")
    data = np.array([spec[k % FFT_SIZE] for k in DATA_SUBCARRIERS])
    pilots = np.array([spec[k % FFT_SIZE] for k in PILOT_SUBCARRIERS])
    return data, pilots


def ofdm_modulate(spectrum: np.ndarray, add_cp: bool = True) -> np.ndarray:
    """IFFT a 64-bin spectrum into time samples, prepending the CP."""
    spec = np.asarray(spectrum, dtype=np.complex128).ravel()
    if spec.size != FFT_SIZE:
        raise EncodingError(f"spectrum must have {FFT_SIZE} bins, got {spec.size}")
    time = np.fft.ifft(spec) * TIME_SCALE
    if not add_cp:
        return time
    return np.concatenate([time[-CP_LENGTH:], time])


def ofdm_demodulate(samples: np.ndarray, has_cp: bool = True) -> np.ndarray:
    """FFT one received symbol (CP stripped first) back to 64 bins."""
    arr = np.asarray(samples, dtype=np.complex128).ravel()
    expected = SYMBOL_LENGTH if has_cp else FFT_SIZE
    if arr.size != expected:
        raise EncodingError(
            f"symbol must have {expected} samples, got {arr.size}"
        )
    body = arr[CP_LENGTH:] if has_cp else arr
    return np.fft.fft(body) / TIME_SCALE


def symbols_to_waveform(spectra: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-symbol spectra into one CP-prefixed waveform."""
    if len(spectra) == 0:
        return np.zeros(0, dtype=np.complex128)
    return np.concatenate([ofdm_modulate(spec) for spec in spectra])


def waveform_to_symbols(
    waveform: np.ndarray, n_symbols: Optional[int] = None, offset: int = 0
) -> np.ndarray:
    """Slice a waveform into per-symbol spectra starting at *offset*.

    Returns an array of shape (n_symbols, 64).
    """
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    available = (arr.size - offset) // SYMBOL_LENGTH
    if n_symbols is None:
        n_symbols = available
    if n_symbols > available:
        raise EncodingError(
            f"waveform holds {available} symbols after offset, need {n_symbols}"
        )
    out = np.empty((n_symbols, FFT_SIZE), dtype=np.complex128)
    for s in range(n_symbols):
        start = offset + s * SYMBOL_LENGTH
        out[s] = ofdm_demodulate(arr[start : start + SYMBOL_LENGTH])
    return out
