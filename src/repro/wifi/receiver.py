"""Standard 802.11 OFDM receiver.

Mirrors the transmit chain: preamble synchronisation, LTS channel estimate,
SIGNAL decode, then per-symbol FFT -> equalise -> hard demap -> deinterleave
-> depuncture -> Viterbi -> descramble.  The result exposes both the raw
descrambled DATA-field stream (what SledZig's extra-bit stripping consumes,
paper Section IV-G) and the recovered PSDU.

Batching: :meth:`WifiReceiver.receive_frames` runs the waveform-domain front
end per frame (synchronisation is inherently per-frame) but stacks every
frame that announced the same MCS and symbol count into one batched
deinterleave -> depuncture -> Viterbi -> descramble pass over the
:mod:`repro.dsp` kernels — the Viterbi recursion dominates receive cost, so
this is where the batch axis pays.  The scalar :meth:`WifiReceiver.receive`
is a batch-of-one wrapper.

The Viterbi pass runs on whichever :mod:`repro.kernels` backend is selected
(``REPRO_KERNEL_BACKEND`` / ``repro.kernels.set_backend``); the receiver
records the resolved backend per decoded group in the
``wifi.rx.kernel.<backend>`` telemetry counter so run manifests carry the
kernel provenance of their numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels, telemetry
from repro.dsp.interleaving import deinterleave_blocks
from repro.dsp.ofdm import extract_subcarriers_batch, waveform_to_spectra
from repro.dsp.qam import demodulate_hard_batch, demodulate_soft_batch
from repro.dsp.scrambling import scramble_batch
from repro.dsp.trellis import viterbi_decode_batch, viterbi_decode_soft_batch
from repro.errors import (
    DecodingError,
    InvalidWaveformError,
    ReproError,
    SynchronizationError,
)
from repro.wifi.params import SAMPLE_RATE_HZ, Mcs
from repro.wifi.ppdu import (
    SERVICE_BITS,
    DataFieldLayout,
    plan_data_field,
)
from repro.wifi.preamble import PREAMBLE_LENGTH, detect_preamble, lts_spectrum
from repro.wifi.puncture import depuncture_blocks, depuncture_soft_blocks
from repro.wifi.scrambler import DEFAULT_SEED, Scrambler
from repro.wifi.signal_field import decode_signal_symbol


@dataclass
class WifiReception:
    """Everything recovered from one PPDU.

    Attributes:
        mcs: MCS announced by the SIGNAL field.
        layout: DATA-field layout implied by the SIGNAL LENGTH.
        psdu_bits: recovered PSDU payload bits.
        descrambled_field: the full descrambled DATA field (SERVICE + PSDU +
            tail + pad) — the stream SledZig strips extra bits from.
        data_points: per-symbol equalised constellation points (48 each),
            used by the SledZig receiver to detect the ZigBee channel.
    """

    mcs: Mcs
    layout: DataFieldLayout
    psdu_bits: np.ndarray
    descrambled_field: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0, dtype=np.uint8))
    data_points: List[np.ndarray] = field(repr=False, default_factory=list)


@dataclass
class _FrontEndResult:
    """Per-frame waveform-domain state awaiting the batched bit-domain pass."""

    mcs: Mcs
    layout: DataFieldLayout
    data_points: List[np.ndarray]
    interleaved: np.ndarray  # hard bits (uint8) or soft LLRs (float64)


class WifiReceiver:
    """Counterpart of :class:`repro.wifi.transmitter.WifiTransmitter`."""

    def __init__(self, scrambler_seed: int = DEFAULT_SEED) -> None:
        self.scrambler = Scrambler(scrambler_seed)

    def receive(
        self,
        waveform: np.ndarray,
        data_start: Optional[int] = None,
        equalise: bool = True,
        soft: bool = False,
        correct_cfo: bool = True,
        track_phase: bool = True,
    ) -> WifiReception:
        """Decode one PPDU from complex baseband samples.

        Args:
            waveform: samples containing the full PPDU from its first sample.
            data_start: sample index of the SIGNAL symbol; when None the
                preamble correlator locates it (a clean frame starts its
                SIGNAL symbol at sample 320).
            equalise: apply the LTS-based channel estimate (harmless on an
                ideal channel, required after any filtering channel).
            soft: use max-log LLR demapping and soft-decision Viterbi
                (roughly 2 dB better at the waterfall than hard decisions).
            correct_cfo: estimate the carrier frequency offset from the
                preamble (STS coarse + LTS fine) and de-rotate the samples.
            track_phase: remove the per-symbol common phase error using the
                pilot subcarriers (mops up residual CFO).
        """
        return self.receive_frames(
            [waveform],
            data_start=data_start,
            equalise=equalise,
            soft=soft,
            correct_cfo=correct_cfo,
            track_phase=track_phase,
        )[0]

    def receive_frames(
        self,
        waveforms: Sequence[np.ndarray],
        data_start: Optional[int] = None,
        equalise: bool = True,
        soft: bool = False,
        correct_cfo: bool = True,
        track_phase: bool = True,
        on_error: str = "raise",
    ) -> "List[Optional[WifiReception]]":
        """Decode many PPDUs, batching the bit-domain stages across frames.

        Synchronisation, channel estimation and demapping run per frame;
        frames whose SIGNAL fields announce the same MCS and symbol count
        are then deinterleaved, depunctured, Viterbi-decoded and
        descrambled together.  Results come back in input order.

        Args:
            on_error: "raise" propagates the first per-frame decode failure
                (scalar semantics); "none" records a ``None`` result for
                that frame and keeps decoding the rest — the mode the
                Monte-Carlo batch trials rely on, where a frame lost at the
                waterfall is an outcome, not an error.
        """
        if on_error not in ("raise", "none"):
            raise DecodingError(f"unknown on_error mode {on_error!r}")
        tel = telemetry.current()
        tel.count("wifi.rx.frames", len(waveforms))
        fronts: List[Optional[_FrontEndResult]] = []
        with tel.span("wifi.rx.front_end"):
            for w in waveforms:
                try:
                    fronts.append(
                        self._front_end(
                            np.asarray(w, dtype=np.complex128).ravel(),
                            data_start,
                            equalise,
                            soft,
                            correct_cfo,
                            track_phase,
                        )
                    )
                except ReproError as exc:
                    tel.count(f"wifi.rx.drop.{type(exc).__name__}")
                    if on_error == "raise":
                        raise
                    fronts.append(None)
                except Exception:
                    # A non-ReproError front-end failure is a genuine bug,
                    # never a lost frame: propagate regardless of on_error.
                    tel.count("wifi.rx.error.unexpected")
                    raise
        groups: Dict[Tuple[Mcs, int], List[int]] = {}
        for idx, front in enumerate(fronts):
            if front is None:
                continue
            groups.setdefault((front.mcs, front.layout.n_symbols), []).append(idx)
        results: List[Optional[WifiReception]] = [None] * len(fronts)
        if groups:
            viterbi_kernel = "viterbi_soft" if soft else "viterbi_hard"
            tel.count(
                f"wifi.rx.kernel.{kernels.resolved_backend(viterbi_kernel)}",
                sum(len(v) for v in groups.values()),
            )
        with tel.span("wifi.rx.bit_domain"):
            for indices in groups.values():
                mcs = fronts[indices[0]].mcs
                layout = fronts[indices[0]].layout
                stacked = np.stack([fronts[i].interleaved for i in indices])
                coded = deinterleave_blocks(stacked, mcs.n_cbps, mcs.n_bpsc)
                if soft:
                    mother = depuncture_soft_blocks(coded, mcs.coding_rate)
                    scrambled = viterbi_decode_soft_batch(
                        mother, n_data_bits=layout.n_total_bits
                    )
                else:
                    mother = depuncture_blocks(coded, mcs.coding_rate)
                    scrambled = viterbi_decode_batch(
                        mother, n_data_bits=layout.n_total_bits, assume_zero_tail=True
                    )
                descrambled = scramble_batch(scrambled, self.scrambler.seed)
                for row, idx in enumerate(indices):
                    # Frames in a group share MCS and symbol count but may carry
                    # different PSDU lengths (pad absorbs the difference).
                    frame_layout = fronts[idx].layout
                    psdu = descrambled[
                        row, SERVICE_BITS : SERVICE_BITS + frame_layout.n_psdu_bits
                    ]
                    results[idx] = WifiReception(
                        mcs=mcs,
                        layout=frame_layout,
                        psdu_bits=psdu.astype(np.uint8),
                        descrambled_field=descrambled[row].astype(np.uint8),
                        data_points=fronts[idx].data_points,
                    )
        tel.count("wifi.rx.ok", sum(1 for r in results if r is not None))
        return results  # type: ignore[return-value]

    def _front_end(
        self,
        arr: np.ndarray,
        data_start: Optional[int],
        equalise: bool,
        soft: bool,
        correct_cfo: bool,
        track_phase: bool,
    ) -> _FrontEndResult:
        """Waveform domain: sync, CFO, channel, SIGNAL, demap to one stream."""
        if not np.all(np.isfinite(arr)):
            raise InvalidWaveformError("waveform contains NaN or Inf samples")
        if data_start is None:
            data_start, _ = detect_preamble(arr)
        if correct_cfo and data_start >= PREAMBLE_LENGTH:
            cfo_hz = self.estimate_cfo(arr, data_start)
            if abs(cfo_hz) > 1.0:
                n = np.arange(arr.size)
                arr = arr * np.exp(-2j * np.pi * cfo_hz * n / SAMPLE_RATE_HZ)
        channel = self._estimate_channel(arr, data_start) if equalise else None

        signal_spec = waveform_to_spectra(arr, 1, offset=data_start)[0]
        if channel is not None:
            signal_spec = self._apply_equaliser(signal_spec, channel)
        mcs, length_octets = decode_signal_symbol(signal_spec)

        layout = plan_data_field(length_octets * 8, mcs)
        spectra = waveform_to_spectra(
            arr, layout.n_symbols, offset=data_start + 80
        )
        if channel is not None:
            spectra = self._apply_equaliser(spectra, channel)
        points, pilots = extract_subcarriers_batch(spectra)
        if track_phase:
            points = self._pilot_phase_correct_batch(
                points, pilots, first_symbol_index=1
            )
        if soft:
            llrs = demodulate_soft_batch(points, mcs.modulation)
            if channel is not None:
                llrs = self._csi_weight(llrs, channel, mcs.n_bpsc)
            interleaved = llrs.ravel()
        else:
            interleaved = demodulate_hard_batch(points, mcs.modulation).ravel()
        return _FrontEndResult(
            mcs=mcs,
            layout=layout,
            data_points=list(points),
            interleaved=interleaved,
        )

    @staticmethod
    def estimate_cfo(waveform: np.ndarray, data_start: int) -> float:
        """Carrier-frequency-offset estimate from the preamble, in Hz.

        Coarse stage: the STS repeats every 16 samples, so the phase of
        sum(x[n+16] conj(x[n])) over the short training field advances by
        2*pi*f*16/fs per period — unambiguous to +-625 kHz.  Fine stage:
        the LTS repeats every 64 samples (+-156 kHz ambiguity) and refines
        the estimate after coarse removal.
        """
        preamble_start = data_start - PREAMBLE_LENGTH
        stf = waveform[preamble_start + 16 : preamble_start + 160]
        if stf.size < 32:
            return 0.0
        lag = 16
        corr = np.sum(stf[lag:] * np.conj(stf[:-lag]))
        coarse = float(np.angle(corr)) / (2 * np.pi * lag) * SAMPLE_RATE_HZ

        n = np.arange(waveform.size)
        derotated = waveform * np.exp(-2j * np.pi * coarse * n / SAMPLE_RATE_HZ)
        lts_start = data_start - 128
        first = derotated[lts_start : lts_start + 64]
        second = derotated[lts_start + 64 : lts_start + 128]
        if first.size == 64 and second.size == 64:
            corr = np.sum(second * np.conj(first))
            fine = float(np.angle(corr)) / (2 * np.pi * 64) * SAMPLE_RATE_HZ
        else:
            fine = 0.0
        return coarse + fine

    @staticmethod
    def _pilot_phase_correct(
        points: np.ndarray, pilots: np.ndarray, symbol_index: int
    ) -> np.ndarray:
        """Remove the common phase error measured on the four pilots."""
        corrected = WifiReceiver._pilot_phase_correct_batch(
            np.asarray(points)[None, :],
            np.asarray(pilots)[None, :],
            first_symbol_index=symbol_index,
        )
        return corrected[0]

    @staticmethod
    def _pilot_phase_correct_batch(
        points: np.ndarray, pilots: np.ndarray, first_symbol_index: int
    ) -> np.ndarray:
        """Per-symbol common-phase-error removal over stacked symbols.

        *points* is ``(n_symbols, 48)`` and *pilots* ``(n_symbols, 4)``;
        symbol s uses pilot polarity index ``first_symbol_index + s``.
        """
        from repro.dsp.ofdm import pilot_polarities
        from repro.wifi.params import PILOT_VALUES

        n_symbols = points.shape[0]
        polarity = pilot_polarities(np.arange(n_symbols) + first_symbol_index)
        expected = polarity[:, None] * np.asarray(PILOT_VALUES, dtype=np.float64)
        corr = np.sum(pilots * expected, axis=1)  # expected values are +-1 (real)
        phase = np.where(np.abs(corr) < 1e-12, 0.0, np.angle(corr))
        return points * np.exp(-1j * phase)[:, None]

    @staticmethod
    def _csi_weight(
        llrs: np.ndarray, channel: np.ndarray, n_bpsc: int
    ) -> np.ndarray:
        """Scale each subcarrier's LLRs by its channel power (CSI weighting).

        Zero-forcing equalisation amplifies the noise on a faded subcarrier
        by ``1/|H|^2``, so its LLRs are far less reliable than their
        magnitude suggests; weighting by ``|H|^2`` restores the max-log
        metric under frequency-selective fading (on a flat channel the
        weights are uniform and nothing changes).  Normalised by the mean
        weight to keep LLR magnitudes comparable across channels.
        """
        from repro.dsp.ofdm import data_bins

        csi = np.abs(channel[data_bins()]) ** 2
        mean = float(csi.mean())
        if mean <= 0.0:
            return llrs
        weights = csi / mean
        shaped = llrs.reshape(llrs.shape[0], -1, n_bpsc)
        return (shaped * weights[np.newaxis, :, np.newaxis]).reshape(
            llrs.shape
        )

    @staticmethod
    def _estimate_channel(waveform: np.ndarray, data_start: int) -> np.ndarray:
        """LTS-based frequency-domain channel estimate (64 bins)."""
        if data_start < PREAMBLE_LENGTH:
            raise DecodingError(
                f"SIGNAL at sample {data_start} leaves no room for a preamble"
            )
        lts_start = data_start - 128
        ref = lts_spectrum()
        est = np.zeros(64, dtype=np.complex128)
        used = np.abs(ref) > 0
        for rep in range(2):
            chunk = waveform[lts_start + 64 * rep : lts_start + 64 * (rep + 1)]
            if chunk.size != 64:
                raise DecodingError("waveform too short for LTS channel estimate")
            fft = np.fft.fft(chunk) / (64 / np.sqrt(52.0))
            est[used] += fft[used] / ref[used]
        est[used] /= 2.0
        est[~used] = 1.0
        return est

    @staticmethod
    def _apply_equaliser(spectrum: np.ndarray, channel: np.ndarray) -> np.ndarray:
        """Zero-forcing equalisation of symbol spectra (last axis = 64 bins)."""
        safe = np.where(np.abs(channel) > 1e-12, channel, 1.0)
        return spectrum / safe


def decode_frames(
    waveforms: Sequence[np.ndarray],
    scrambler_seed: int = DEFAULT_SEED,
    **kwargs: object,
) -> List[np.ndarray]:
    """Batch-decode PPDU waveforms straight to PSDU bit arrays.

    A full-buffer adapter over the streaming core: each capture goes
    through :func:`repro.wifi.streaming.sync_capture` as one chunk (the
    degenerate chunking), then every located frame window batch-decodes
    through :meth:`WifiReceiver.receive_frames` — so the bit-domain
    engine still amortises across frames.  Keyword arguments are
    forwarded (``soft=``, ``equalise=``, ...); the first frame per
    capture is returned, and a capture with no decodable frame raises its
    typed drop cause (scalar semantics, as before).
    """
    receiver = WifiReceiver(scrambler_seed)
    if kwargs.get("data_start") is not None:
        return [
            rec.psdu_bits for rec in receiver.receive_frames(waveforms, **kwargs)
        ]
    kwargs.pop("data_start", None)
    from repro.wifi.streaming import sync_capture

    chosen = []
    for waveform in waveforms:
        windows, drops = sync_capture(
            waveform,
            equalise=bool(kwargs.get("equalise", True)),
            correct_cfo=bool(kwargs.get("correct_cfo", True)),
        )
        if not windows:
            if drops:
                raise drops[0].error
            raise SynchronizationError("no 802.11 preamble found in capture")
        chosen.append(windows[0])
    groups: Dict[int, List[int]] = {}
    for idx, window in enumerate(chosen):
        groups.setdefault(window.data_start, []).append(idx)
    out: List[Optional[np.ndarray]] = [None] * len(chosen)
    for data_start, indices in groups.items():
        receptions = receiver.receive_frames(
            [chosen[i].window for i in indices], data_start=data_start, **kwargs
        )
        for row, idx in enumerate(indices):
            out[idx] = receptions[row].psdu_bits
    return out  # type: ignore[return-value]
