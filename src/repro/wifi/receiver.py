"""Standard 802.11 OFDM receiver.

Mirrors the transmit chain: preamble synchronisation, LTS channel estimate,
SIGNAL decode, then per-symbol FFT -> equalise -> hard demap -> deinterleave
-> depuncture -> Viterbi -> descramble.  The result exposes both the raw
descrambled DATA-field stream (what SledZig's extra-bit stripping consumes,
paper Section IV-G) and the recovered PSDU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import DecodingError
from repro.wifi.constellation import demodulate_hard, demodulate_soft
from repro.wifi.convolutional import viterbi_decode, viterbi_decode_soft
from repro.wifi.interleaver import deinterleave, deinterleave_soft
from repro.wifi.ofdm import extract_subcarriers, waveform_to_symbols
from repro.wifi.params import SAMPLE_RATE_HZ, Mcs
from repro.wifi.ppdu import (
    SERVICE_BITS,
    DataFieldLayout,
    descramble_data_field,
    plan_data_field,
)
from repro.wifi.preamble import PREAMBLE_LENGTH, detect_preamble, lts_spectrum
from repro.wifi.puncture import depuncture, depuncture_soft
from repro.wifi.scrambler import DEFAULT_SEED, Scrambler
from repro.wifi.signal_field import decode_signal_symbol


@dataclass
class WifiReception:
    """Everything recovered from one PPDU.

    Attributes:
        mcs: MCS announced by the SIGNAL field.
        layout: DATA-field layout implied by the SIGNAL LENGTH.
        psdu_bits: recovered PSDU payload bits.
        descrambled_field: the full descrambled DATA field (SERVICE + PSDU +
            tail + pad) — the stream SledZig strips extra bits from.
        data_points: per-symbol equalised constellation points (48 each),
            used by the SledZig receiver to detect the ZigBee channel.
    """

    mcs: Mcs
    layout: DataFieldLayout
    psdu_bits: np.ndarray
    descrambled_field: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0, dtype=np.uint8))
    data_points: List[np.ndarray] = field(repr=False, default_factory=list)


class WifiReceiver:
    """Counterpart of :class:`repro.wifi.transmitter.WifiTransmitter`."""

    def __init__(self, scrambler_seed: int = DEFAULT_SEED) -> None:
        self.scrambler = Scrambler(scrambler_seed)

    def receive(
        self,
        waveform: np.ndarray,
        data_start: Optional[int] = None,
        equalise: bool = True,
        soft: bool = False,
        correct_cfo: bool = True,
        track_phase: bool = True,
    ) -> WifiReception:
        """Decode one PPDU from complex baseband samples.

        Args:
            waveform: samples containing the full PPDU from its first sample.
            data_start: sample index of the SIGNAL symbol; when None the
                preamble correlator locates it (a clean frame starts its
                SIGNAL symbol at sample 320).
            equalise: apply the LTS-based channel estimate (harmless on an
                ideal channel, required after any filtering channel).
            soft: use max-log LLR demapping and soft-decision Viterbi
                (roughly 2 dB better at the waterfall than hard decisions).
            correct_cfo: estimate the carrier frequency offset from the
                preamble (STS coarse + LTS fine) and de-rotate the samples.
            track_phase: remove the per-symbol common phase error using the
                pilot subcarriers (mops up residual CFO).
        """
        arr = np.asarray(waveform, dtype=np.complex128).ravel()
        if data_start is None:
            data_start, _ = detect_preamble(arr)
        if correct_cfo and data_start >= PREAMBLE_LENGTH:
            cfo_hz = self.estimate_cfo(arr, data_start)
            if abs(cfo_hz) > 1.0:
                n = np.arange(arr.size)
                arr = arr * np.exp(-2j * np.pi * cfo_hz * n / SAMPLE_RATE_HZ)
        channel = self._estimate_channel(arr, data_start) if equalise else None

        signal_spec = waveform_to_symbols(arr, 1, offset=data_start)[0]
        if channel is not None:
            signal_spec = self._apply_equaliser(signal_spec, channel)
        mcs, length_octets = decode_signal_symbol(signal_spec)

        layout = plan_data_field(length_octets * 8, mcs)
        spectra = waveform_to_symbols(
            arr, layout.n_symbols, offset=data_start + 80
        )
        data_points: List[np.ndarray] = []
        per_symbol = []
        for s, spec in enumerate(spectra):
            if channel is not None:
                spec = self._apply_equaliser(spec, channel)
            points, pilots = extract_subcarriers(spec)
            if track_phase:
                points = self._pilot_phase_correct(points, pilots, s + 1)
            data_points.append(points)
            if soft:
                per_symbol.append(demodulate_soft(points, mcs.modulation))
            else:
                per_symbol.append(demodulate_hard(points, mcs.modulation))
        interleaved = np.concatenate(per_symbol)
        if soft:
            coded = deinterleave_soft(interleaved, mcs.n_cbps, mcs.n_bpsc)
            mother = depuncture_soft(coded, mcs.coding_rate)
            scrambled = viterbi_decode_soft(
                mother, n_data_bits=layout.n_total_bits
            )
        else:
            coded = deinterleave(interleaved, mcs.n_cbps, mcs.n_bpsc)
            mother = depuncture(coded, mcs.coding_rate)
            scrambled = viterbi_decode(
                mother, n_data_bits=layout.n_total_bits, assume_zero_tail=True
            )
        descrambled = descramble_data_field(scrambled, layout, self.scrambler)
        psdu = descrambled[SERVICE_BITS : SERVICE_BITS + layout.n_psdu_bits]
        return WifiReception(
            mcs=mcs,
            layout=layout,
            psdu_bits=psdu.astype(np.uint8),
            descrambled_field=descrambled.astype(np.uint8),
            data_points=data_points,
        )

    @staticmethod
    def estimate_cfo(waveform: np.ndarray, data_start: int) -> float:
        """Carrier-frequency-offset estimate from the preamble, in Hz.

        Coarse stage: the STS repeats every 16 samples, so the phase of
        sum(x[n+16] conj(x[n])) over the short training field advances by
        2*pi*f*16/fs per period — unambiguous to +-625 kHz.  Fine stage:
        the LTS repeats every 64 samples (+-156 kHz ambiguity) and refines
        the estimate after coarse removal.
        """
        preamble_start = data_start - PREAMBLE_LENGTH
        stf = waveform[preamble_start + 16 : preamble_start + 160]
        if stf.size < 32:
            return 0.0
        lag = 16
        corr = np.sum(stf[lag:] * np.conj(stf[:-lag]))
        coarse = float(np.angle(corr)) / (2 * np.pi * lag) * SAMPLE_RATE_HZ

        n = np.arange(waveform.size)
        derotated = waveform * np.exp(-2j * np.pi * coarse * n / SAMPLE_RATE_HZ)
        lts_start = data_start - 128
        first = derotated[lts_start : lts_start + 64]
        second = derotated[lts_start + 64 : lts_start + 128]
        if first.size == 64 and second.size == 64:
            corr = np.sum(second * np.conj(first))
            fine = float(np.angle(corr)) / (2 * np.pi * 64) * SAMPLE_RATE_HZ
        else:
            fine = 0.0
        return coarse + fine

    @staticmethod
    def _pilot_phase_correct(
        points: np.ndarray, pilots: np.ndarray, symbol_index: int
    ) -> np.ndarray:
        """Remove the common phase error measured on the four pilots."""
        from repro.wifi.params import PILOT_POLARITY, PILOT_VALUES

        polarity = PILOT_POLARITY[symbol_index % len(PILOT_POLARITY)]
        expected = polarity * np.asarray(PILOT_VALUES, dtype=np.float64)
        corr = np.sum(pilots * expected)  # expected values are +-1 (real)
        if abs(corr) < 1e-12:
            return points
        phase = np.angle(corr)
        return points * np.exp(-1j * phase)

    @staticmethod
    def _estimate_channel(waveform: np.ndarray, data_start: int) -> np.ndarray:
        """LTS-based frequency-domain channel estimate (64 bins)."""
        if data_start < PREAMBLE_LENGTH:
            raise DecodingError(
                f"SIGNAL at sample {data_start} leaves no room for a preamble"
            )
        lts_start = data_start - 128
        ref = lts_spectrum()
        est = np.zeros(64, dtype=np.complex128)
        used = np.abs(ref) > 0
        for rep in range(2):
            chunk = waveform[lts_start + 64 * rep : lts_start + 64 * (rep + 1)]
            if chunk.size != 64:
                raise DecodingError("waveform too short for LTS channel estimate")
            fft = np.fft.fft(chunk) / (64 / np.sqrt(52.0))
            est[used] += fft[used] / ref[used]
        est[used] /= 2.0
        est[~used] = 1.0
        return est

    @staticmethod
    def _apply_equaliser(spectrum: np.ndarray, channel: np.ndarray) -> np.ndarray:
        """Zero-forcing equalisation of one symbol spectrum."""
        safe = np.where(np.abs(channel) > 1e-12, channel, 1.0)
        return spectrum / safe
