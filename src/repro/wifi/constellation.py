"""Gray-coded QAM constellations of 802.11 (BPSK through 256-QAM).

Each modulation maps groups of N_BPSC bits to one complex point.  For square
QAM the first half of the group selects the I amplitude and the second half
the Q amplitude; each axis uses the binary-reflected Gray code, so the level
sequence from most negative to most positive amplitude is gray(0), gray(1),
... gray(2^m - 1).  Points are normalised by K_mod so the average
constellation power is 1 (K_mod = 1/sqrt(10), 1/sqrt(42), 1/sqrt(170) for
QAM-16/64/256).

The four lowest-power points of any square QAM are (+-1 +-1j)/K_mod; the
axis bit-groups selecting amplitude +-1 agree on every bit except the
leading (sign) bit — exactly the paper's Table I: QAM-16 has 2 significant
bits per point, QAM-64 has 4, QAM-256 has 6
(see :func:`significant_bit_pattern`).

All lookup tables and the hot map/demap kernels live in
:mod:`repro.dsp.qam`; this module keeps the stream-oriented scalar API plus
the SledZig-specific significant-bit derivations.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.dsp.qam import (
    axis_level_sets as _axis_level_sets,
    axis_tables as _axis_tables,
    bits_per_point as _bits_per_point,
    constellation_table,
    demodulate_hard_batch,
    demodulate_soft_batch,
    gray_code,
    gray_decode,
    modulate_batch,
    normalisation_factor,
)
from repro.errors import ConfigurationError
from repro.utils.bits import BitsLike, as_bits

__all__ = [
    "gray_code",
    "gray_decode",
    "normalisation_factor",
    "constellation_points",
    "modulate",
    "demodulate_hard",
    "demodulate_soft",
    "lowest_power_axis_groups",
    "significant_bit_pattern",
    "lowest_point_power",
]


def constellation_points(modulation: str) -> np.ndarray:
    """All normalised points, indexed by the integer value of the bit group
    (MSB-first over [I bits | Q bits])."""
    return constellation_table(modulation)


def modulate(bits: BitsLike, modulation: str) -> np.ndarray:
    """Map a bit stream (length multiple of N_BPSC) to complex symbols."""
    return modulate_batch(as_bits(bits), modulation)


def demodulate_hard(symbols: np.ndarray, modulation: str) -> np.ndarray:
    """Hard-decision demap: nearest axis level, Gray-encoded back to bits."""
    syms = np.asarray(symbols, dtype=np.complex128).ravel()
    return demodulate_hard_batch(syms, modulation)


def demodulate_soft(symbols: np.ndarray, modulation: str) -> np.ndarray:
    """Max-log LLR demapping: positive soft value means the bit is 1.

    Per axis bit the soft value is the squared-distance difference between
    the nearest bit=0 level and the nearest bit=1 level — the standard
    max-log approximation.  The absolute scale is irrelevant to a Viterbi
    decoder (argmax is scale-invariant), so no noise-variance estimate is
    needed.
    """
    syms = np.asarray(symbols, dtype=np.complex128).ravel()
    return demodulate_soft_batch(syms, modulation)


def lowest_power_axis_groups(bits_per_axis: int) -> List[int]:
    """Axis bit-groups selecting amplitude +-1 (the lowest-power levels)."""
    n_levels = 2**bits_per_axis
    _, group_by_level = _axis_tables(bits_per_axis)
    return [int(group_by_level[n_levels // 2 - 1]), int(group_by_level[n_levels // 2])]


def significant_bit_pattern(modulation: str) -> Dict[int, int]:
    """Required values at the point-level bit offsets that force lowest power.

    Returns a mapping ``{bit offset within the N_BPSC group: value}``.  For
    any square QAM the two axis groups with amplitude +-1 agree on all bits
    except the leading (sign) bit, so the fixed offsets are 1..m-1 on the I
    half and m+1..2m-1 on the Q half, with value pattern 1, 0, ..., 0 — the
    paper's Table I.
    """
    n_bpsc = _bits_per_point(modulation)
    if modulation in ("bpsk",):
        raise ConfigurationError(
            "BPSK has no reduced-power points (both points have equal power)"
        )
    half = n_bpsc // 2
    low_groups = lowest_power_axis_groups(half)
    pattern: Dict[int, int] = {}
    for offset in range(half):
        bits = {(g >> (half - 1 - offset)) & 1 for g in low_groups}
        if len(bits) == 1:
            value = bits.pop()
            pattern[offset] = value          # I axis bit
            pattern[half + offset] = value   # Q axis bit (same Gray table)
    return pattern


def lowest_point_power(modulation: str) -> float:
    """Un-normalised power of the lowest points (always 2 for square QAM)."""
    n_bpsc = _bits_per_point(modulation)
    if modulation == "bpsk":
        return 1.0
    del n_bpsc
    return 2.0
