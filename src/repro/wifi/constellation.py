"""Gray-coded QAM constellations of 802.11 (BPSK through 256-QAM).

Each modulation maps groups of N_BPSC bits to one complex point.  For square
QAM the first half of the group selects the I amplitude and the second half
the Q amplitude; each axis uses the binary-reflected Gray code, so the level
sequence from most negative to most positive amplitude is gray(0), gray(1),
... gray(2^m - 1).  Points are normalised by K_mod so the average
constellation power is 1 (K_mod = 1/sqrt(10), 1/sqrt(42), 1/sqrt(170) for
QAM-16/64/256).

The four lowest-power points of any square QAM are (+-1 +-1j)/K_mod; the
axis bit-groups selecting amplitude +-1 are gray(2^(m-1) - 1) = 01...1 -> 010...0?
No — see :func:`lowest_power_axis_groups`; concretely the last m-1 bits of
the axis group must equal 1, 0, 0, ... 0 while the leading (sign) bit is
free.  That is exactly the paper's Table I: QAM-16 has 2 significant bits
per point, QAM-64 has 4, QAM-256 has 6.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.utils.bits import BitsLike, as_bits
from repro.wifi.params import BITS_PER_SUBCARRIER, average_constellation_power


def gray_code(index: int) -> int:
    """Binary-reflected Gray code of *index*."""
    return index ^ (index >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_code`."""
    index = 0
    while code:
        index ^= code
        code >>= 1
    return index


def normalisation_factor(modulation: str) -> float:
    """K_mod such that the normalised constellation has unit average power."""
    return 1.0 / float(np.sqrt(average_constellation_power(modulation)))


@lru_cache(maxsize=None)
def _axis_tables(bits_per_axis: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return (amplitude_by_group, group_by_level) for one QAM axis.

    ``amplitude_by_group[g]`` is the (un-normalised) amplitude selected by
    the axis bit-group *g* read MSB-first; ``group_by_level[L]`` is the group
    for level L (0 = most negative amplitude).
    """
    n_levels = 2**bits_per_axis
    amplitude_by_group = np.zeros(n_levels, dtype=np.int64)
    group_by_level = np.zeros(n_levels, dtype=np.int64)
    for level in range(n_levels):
        group = gray_code(level)
        amplitude_by_group[group] = 2 * level - (n_levels - 1)
        group_by_level[level] = group
    return amplitude_by_group, group_by_level


def constellation_points(modulation: str) -> np.ndarray:
    """All normalised points, indexed by the integer value of the bit group
    (MSB-first over [I bits | Q bits])."""
    n_bpsc = _bits_per_point(modulation)
    if modulation == "bpsk":
        return np.array([-1.0 + 0j, 1.0 + 0j])
    half = n_bpsc // 2
    amp, _ = _axis_tables(half)
    k_mod = normalisation_factor(modulation)
    points = np.empty(2**n_bpsc, dtype=np.complex128)
    for value in range(2**n_bpsc):
        i_group = value >> half
        q_group = value & ((1 << half) - 1)
        points[value] = k_mod * (amp[i_group] + 1j * amp[q_group])
    return points


def _bits_per_point(modulation: str) -> int:
    n_bpsc = BITS_PER_SUBCARRIER.get(modulation)
    if n_bpsc is None:
        raise ConfigurationError(f"unknown modulation {modulation!r}")
    return n_bpsc


def modulate(bits: BitsLike, modulation: str) -> np.ndarray:
    """Map a bit stream (length multiple of N_BPSC) to complex symbols."""
    arr = as_bits(bits)
    n_bpsc = _bits_per_point(modulation)
    if arr.size % n_bpsc:
        raise EncodingError(
            f"{arr.size} bits do not form whole {modulation} points "
            f"({n_bpsc} bits each)"
        )
    groups = arr.reshape(-1, n_bpsc)
    weights = 1 << np.arange(n_bpsc - 1, -1, -1)
    values = groups @ weights
    return constellation_points(modulation)[values]


def demodulate_hard(symbols: np.ndarray, modulation: str) -> np.ndarray:
    """Hard-decision demap: nearest axis level, Gray-encoded back to bits."""
    syms = np.asarray(symbols, dtype=np.complex128).ravel()
    n_bpsc = _bits_per_point(modulation)
    if modulation == "bpsk":
        return (syms.real > 0).astype(np.uint8)
    half = n_bpsc // 2
    n_levels = 2**half
    _, group_by_level = _axis_tables(half)
    k_mod = normalisation_factor(modulation)

    def axis_bits(component: np.ndarray) -> np.ndarray:
        # Quantise to the nearest odd level, clamp to the constellation edge.
        level = np.round((component / k_mod + (n_levels - 1)) / 2.0)
        level = np.clip(level, 0, n_levels - 1).astype(np.int64)
        groups = group_by_level[level]
        out = np.empty((component.size, half), dtype=np.uint8)
        for bit in range(half):
            out[:, bit] = (groups >> (half - 1 - bit)) & 1
        return out

    i_bits = axis_bits(syms.real)
    q_bits = axis_bits(syms.imag)
    return np.concatenate([i_bits, q_bits], axis=1).ravel()


@lru_cache(maxsize=None)
def _axis_level_sets(bits_per_axis: int) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    """Per axis-bit: (amplitudes with bit=0, amplitudes with bit=1)."""
    n_levels = 2**bits_per_axis
    _, group_by_level = _axis_tables(bits_per_axis)
    sets = []
    for bit in range(bits_per_axis):
        zeros, ones = [], []
        for level in range(n_levels):
            amplitude = 2 * level - (n_levels - 1)
            group = int(group_by_level[level])
            if (group >> (bits_per_axis - 1 - bit)) & 1:
                ones.append(amplitude)
            else:
                zeros.append(amplitude)
        sets.append((np.array(zeros, dtype=float), np.array(ones, dtype=float)))
    return tuple(sets)


def demodulate_soft(symbols: np.ndarray, modulation: str) -> np.ndarray:
    """Max-log LLR demapping: positive soft value means the bit is 1.

    Per axis bit the soft value is the squared-distance difference between
    the nearest bit=0 level and the nearest bit=1 level — the standard
    max-log approximation.  The absolute scale is irrelevant to a Viterbi
    decoder (argmax is scale-invariant), so no noise-variance estimate is
    needed.
    """
    syms = np.asarray(symbols, dtype=np.complex128).ravel()
    n_bpsc = _bits_per_point(modulation)
    if modulation == "bpsk":
        return syms.real.copy()
    half = n_bpsc // 2
    k_mod = normalisation_factor(modulation)
    level_sets = _axis_level_sets(half)

    def axis_soft(component: np.ndarray) -> np.ndarray:
        y = component / k_mod
        out = np.empty((y.size, half), dtype=np.float64)
        for bit, (zeros, ones) in enumerate(level_sets):
            d0 = np.min((y[:, None] - zeros[None, :]) ** 2, axis=1)
            d1 = np.min((y[:, None] - ones[None, :]) ** 2, axis=1)
            out[:, bit] = d0 - d1
        return out

    i_soft = axis_soft(syms.real)
    q_soft = axis_soft(syms.imag)
    return np.concatenate([i_soft, q_soft], axis=1).ravel()


def lowest_power_axis_groups(bits_per_axis: int) -> List[int]:
    """Axis bit-groups selecting amplitude +-1 (the lowest-power levels)."""
    n_levels = 2**bits_per_axis
    _, group_by_level = _axis_tables(bits_per_axis)
    return [int(group_by_level[n_levels // 2 - 1]), int(group_by_level[n_levels // 2])]


def significant_bit_pattern(modulation: str) -> Dict[int, int]:
    """Required values at the point-level bit offsets that force lowest power.

    Returns a mapping ``{bit offset within the N_BPSC group: value}``.  For
    any square QAM the two axis groups with amplitude +-1 agree on all bits
    except the leading (sign) bit, so the fixed offsets are 1..m-1 on the I
    half and m+1..2m-1 on the Q half, with value pattern 1, 0, ..., 0 — the
    paper's Table I.
    """
    n_bpsc = _bits_per_point(modulation)
    if modulation in ("bpsk",):
        raise ConfigurationError(
            "BPSK has no reduced-power points (both points have equal power)"
        )
    half = n_bpsc // 2
    low_groups = lowest_power_axis_groups(half)
    pattern: Dict[int, int] = {}
    for offset in range(half):
        bits = {(g >> (half - 1 - offset)) & 1 for g in low_groups}
        if len(bits) == 1:
            value = bits.pop()
            pattern[offset] = value          # I axis bit
            pattern[half + offset] = value   # Q axis bit (same Gray table)
    return pattern


def lowest_point_power(modulation: str) -> float:
    """Un-normalised power of the lowest points (always 2 for square QAM)."""
    n_bpsc = _bits_per_point(modulation)
    if modulation == "bpsk":
        return 1.0
    del n_bpsc
    return 2.0
