"""DATA-field framing: SERVICE, tail and pad bits (802.11 Section 18.3.5.2).

The DATA field of an OFDM PPDU is::

    SERVICE (16 zero bits) | PSDU | tail (6 zero bits) | pad (to N_DBPS)

The entire field is scrambled; the six *scrambled* tail bits are then forced
back to zero so the convolutional encoder is flushed to the all-zero state.

SledZig inserts its extra bits into this same stream (in the scrambled
domain), so helpers here expose the exact index arithmetic both the plain
and the SledZig transmit paths need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.utils.bits import BitsLike, as_bits
from repro.wifi.params import Mcs
from repro.wifi.scrambler import Scrambler

#: Number of SERVICE bits preceding the PSDU.
SERVICE_BITS: int = 16

#: Number of tail bits flushing the convolutional encoder.
TAIL_BITS: int = 6


@dataclass(frozen=True)
class DataFieldLayout:
    """Index layout of one DATA field.

    Attributes:
        n_psdu_bits: PSDU payload length in bits.
        n_symbols: number of OFDM DATA symbols.
        n_pad_bits: number of pad bits after the tail.
    """

    n_psdu_bits: int
    n_symbols: int
    n_pad_bits: int

    @property
    def n_total_bits(self) -> int:
        """Total DATA-field bits (SERVICE + PSDU + tail + pad)."""
        return SERVICE_BITS + self.n_psdu_bits + TAIL_BITS + self.n_pad_bits

    @property
    def tail_start(self) -> int:
        """Index of the first tail bit within the DATA field."""
        return SERVICE_BITS + self.n_psdu_bits

    @property
    def pad_start(self) -> int:
        """Index of the first pad bit within the DATA field."""
        return self.tail_start + TAIL_BITS


def plan_data_field(n_psdu_bits: int, mcs: Mcs) -> DataFieldLayout:
    """Compute symbol count and pad length for a PSDU of *n_psdu_bits*."""
    if n_psdu_bits < 0:
        raise ConfigurationError("PSDU length cannot be negative")
    needed = SERVICE_BITS + n_psdu_bits + TAIL_BITS
    n_symbols = max(1, -(-needed // mcs.n_dbps))
    n_pad = n_symbols * mcs.n_dbps - needed
    return DataFieldLayout(n_psdu_bits, n_symbols, n_pad)


def assemble_data_field(psdu_bits: BitsLike, mcs: Mcs) -> np.ndarray:
    """Build the unscrambled DATA-field bit stream for *psdu_bits*."""
    psdu = as_bits(psdu_bits)
    layout = plan_data_field(psdu.size, mcs)
    field = np.zeros(layout.n_total_bits, dtype=np.uint8)
    field[SERVICE_BITS : SERVICE_BITS + psdu.size] = psdu
    return field


def scramble_data_field(
    field_bits: BitsLike, layout: DataFieldLayout, scrambler: Scrambler
) -> np.ndarray:
    """Scramble a DATA field and zero the scrambled tail bits."""
    field = as_bits(field_bits)
    if field.size != layout.n_total_bits:
        raise EncodingError(
            f"field has {field.size} bits, layout expects {layout.n_total_bits}"
        )
    scrambled = scrambler.scramble(field)
    scrambled[layout.tail_start : layout.tail_start + TAIL_BITS] = 0
    return scrambled


def descramble_data_field(
    scrambled_bits: BitsLike, layout: DataFieldLayout, scrambler: Scrambler
) -> np.ndarray:
    """Invert :func:`scramble_data_field`, recovering SERVICE + PSDU.

    The tail and pad regions are descrambled too but their contents are
    meaningless to callers; the PSDU slice is what matters.
    """
    scrambled = as_bits(scrambled_bits)
    if scrambled.size != layout.n_total_bits:
        raise EncodingError(
            f"stream has {scrambled.size} bits, layout expects {layout.n_total_bits}"
        )
    return scrambler.descramble(scrambled)


def extract_psdu(field_bits: BitsLike, layout: DataFieldLayout) -> np.ndarray:
    """Slice the PSDU out of an unscrambled DATA field."""
    field = as_bits(field_bits)
    if field.size < layout.tail_start:
        raise EncodingError("field shorter than SERVICE + PSDU")
    return field[SERVICE_BITS : layout.tail_start]
