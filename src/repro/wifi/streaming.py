"""Streaming 802.11 OFDM receive front end (chunked, constant memory).

Splits the receive chain into two :class:`repro.streaming.stage.Stage`\\ s:

* :class:`WifiSyncStage` — owns a bounded :class:`~repro.streaming.ring.
  SampleRing` and a sync state machine.  It correlates incoming chunks
  against the known LTS incrementally (absolute stream positions, partial
  windows carried across chunk boundaries), probes each candidate's
  SIGNAL symbol for the frame length, and emits one
  :class:`WifiFrameWindow` per fully buffered PPDU.
* :class:`WifiDecodeStage` — decodes each window through the standard
  :class:`~repro.wifi.receiver.WifiReceiver` chain (sync is already
  pinned, so the decode arithmetic is byte-for-byte the batch path's).

Chunk invariance: every decision is deferred until the stage's full
lookahead window is buffered (or the stream is flushed), and every
correlation value is an independent, position-local dot product — so any
chunking of a capture, including single-sample pushes, yields
bit-identical events to a one-chunk push.  The classic full-buffer
``decode_frames`` is exactly that one-chunk push (plus cross-frame
batching of the bit domain).

Unlike :func:`repro.wifi.preamble.detect_preamble` — which takes the
*global* correlation argmax and therefore needs the whole capture — the
streaming sync rule is local: the earliest threshold crossing, refined to
the strongest peak within one preamble's lookahead.  On a capture holding
one clean frame the two rules agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.errors import (
    DecodingError,
    InvalidWaveformError,
    ReproError,
    StreamOverflowError,
    TruncatedFrameError,
)
from repro.streaming.ring import SampleRing
from repro.streaming.stage import DropEvent, FrameEvent, StreamPipeline
from repro.wifi.ofdm import waveform_to_spectra
from repro.wifi.params import Mcs, get_mcs
from repro.wifi.ppdu import DataFieldLayout, plan_data_field
from repro.wifi.preamble import PREAMBLE_LENGTH, lts_reference_symbol
from repro.wifi.receiver import WifiReceiver, WifiReception
from repro.wifi.scrambler import DEFAULT_SEED
from repro.wifi.signal_field import decode_signal_symbol

__all__ = [
    "WifiFrameWindow",
    "WifiSyncStage",
    "WifiDecodeStage",
    "WifiStreamReceiver",
    "DEFAULT_RING_CAPACITY",
]

#: Samples per OFDM symbol (80 = 64-point FFT + 16 cyclic prefix).
_SYMBOL_SAMPLES: int = 80

#: Metric positions examined after a threshold crossing to find the LTS
#: peak (covers both LTS repetitions with margin).
_REFINE_WINDOW: int = 160

#: Extra metric lookahead past the refine window: the twin-peak test reads
#: ``metric[peak + 64]`` for a peak anywhere in the refine window.
_CONFIRM_SPAN: int = _REFINE_WINDOW + 64

#: Samples retained behind the search cursor so a detection at the cursor
#: can still reach back to the start of its preamble.
_SEARCH_LOOKBACK: int = PREAMBLE_LENGTH

#: Default ring capacity: the longest legal PPDU (4095-octet PSDU at the
#: lowest supported rate, ~110k samples) plus headroom, as a power of two.
DEFAULT_RING_CAPACITY: int = 1 << 17

#: States of the sync machine.
_SEARCH, _CONFIRM, _WANT_SIGNAL, _WANT_FRAME = range(4)


@dataclass
class WifiFrameWindow:
    """One fully buffered PPDU, cut out of the stream and ready to decode.

    Attributes:
        start_sample: absolute stream index of the window's first sample.
        window: the samples (an owned copy — it outlives the ring).
        data_start: SIGNAL-symbol offset *within the window* (320 when the
            full preamble is present; less only when the frame started
            before the stream did).
        mcs: MCS announced by the SIGNAL probe.
        layout: DATA-field layout implied by the SIGNAL LENGTH.
    """

    start_sample: int
    window: np.ndarray
    data_start: int
    mcs: Mcs
    layout: DataFieldLayout


def _preamble_metric(arr: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Normalised LTS correlation metric for every position in *arr*.

    Identical arithmetic to :func:`repro.wifi.preamble.detect_preamble`:
    each output is an independent dot product over one ``ref``-length
    window, so evaluating a slice of the stream yields bit-identical
    values to evaluating the full capture.
    """
    corr = np.abs(np.correlate(arr, ref, mode="valid"))
    energy = np.sqrt(np.convolve(np.abs(arr) ** 2, np.ones(ref.size), mode="valid"))
    ref_energy = np.sqrt(np.sum(np.abs(ref) ** 2))
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(energy > 0, corr / (energy * ref_energy), 0.0)


def probe_signal(
    arr: np.ndarray,
    data_start: int,
    equalise: bool = True,
    correct_cfo: bool = True,
) -> Tuple[Mcs, DataFieldLayout]:
    """Decode just the SIGNAL symbol of a synchronised PPDU prefix.

    *arr* must cover the preamble (as far back as available) through the
    end of the SIGNAL symbol (``data_start + 80``).  Mirrors the front
    end's preamble handling exactly — same CFO estimate, same channel
    estimate — so the announced (MCS, layout) always matches what the full
    decode will see.
    """
    if not np.all(np.isfinite(arr[: data_start + _SYMBOL_SAMPLES])):
        raise InvalidWaveformError("waveform contains NaN or Inf samples")
    if correct_cfo and data_start >= PREAMBLE_LENGTH:
        cfo_hz = WifiReceiver.estimate_cfo(arr, data_start)
        if abs(cfo_hz) > 1.0:
            from repro.wifi.params import SAMPLE_RATE_HZ

            n = np.arange(arr.size)
            arr = arr * np.exp(-2j * np.pi * cfo_hz * n / SAMPLE_RATE_HZ)
    channel = WifiReceiver._estimate_channel(arr, data_start) if equalise else None
    signal_spec = waveform_to_spectra(arr, 1, offset=data_start)[0]
    if channel is not None:
        signal_spec = WifiReceiver._apply_equaliser(signal_spec, channel)
    mcs, length_octets = decode_signal_symbol(signal_spec)
    return mcs, plan_data_field(length_octets * 8, mcs)


class WifiSyncStage:
    """Incremental preamble search + SIGNAL length probe + window cutter."""

    name = "sync"

    def __init__(
        self,
        threshold: float = 0.5,
        capacity: int = DEFAULT_RING_CAPACITY,
        equalise: bool = True,
        correct_cfo: bool = True,
        ring_name: str = "wifi",
    ) -> None:
        self.threshold = threshold
        self.equalise = equalise
        self.correct_cfo = correct_cfo
        self.ring = SampleRing(capacity, name=ring_name)
        self._ref = lts_reference_symbol()
        self._state = _SEARCH
        self._search_pos = 0  # next metric position to evaluate
        self._candidate = 0  # threshold-crossing position (CONFIRM)
        self._data_start = 0  # absolute SIGNAL start (WANT_SIGNAL/WANT_FRAME)
        self._mcs: Optional[Mcs] = None
        self._layout: Optional[DataFieldLayout] = None
        self._frame_end = 0

    # -- event helpers ---------------------------------------------------

    def _drop(self, error: ReproError, at: int) -> DropEvent:
        telemetry.current().count(f"wifi.stream.drop.{type(error).__name__}")
        return DropEvent(start_sample=at, stage=self.name, error=error)

    def _window_start(self) -> int:
        """First sample of the candidate frame's window (preamble start,
        clamped to what the stream ever contained)."""
        return max(self.ring.start, self._data_start - PREAMBLE_LENGTH)

    def _resume_search(self, at: int) -> None:
        """Abandon the current candidate and search again from *at*."""
        self._state = _SEARCH
        self._search_pos = at
        self._mcs = None
        self._layout = None
        self.ring.release(at - _SEARCH_LOOKBACK)

    # -- core ------------------------------------------------------------

    def push(self, chunk: np.ndarray) -> List[Any]:
        """Ingest one chunk (any size) and emit what it completes."""
        arr = np.asarray(chunk, dtype=np.complex128).ravel()
        events: List[Any] = []
        pos = 0
        while pos < arr.size:
            free = self.ring.capacity - self.ring.occupancy
            if free == 0:
                # Nothing consumable and no room: the pending frame plus
                # lookback exceeds the ring — drop it and move on.
                events.append(
                    self._drop(
                        StreamOverflowError(
                            f"pending frame needs more than the ring's "
                            f"{self.ring.capacity}-sample bound"
                        ),
                        self._window_start(),
                    )
                )
                self._resume_search(self.ring.end)
                free = self.ring.capacity - self.ring.occupancy
            take = min(free, arr.size - pos)
            self.ring.append(arr[pos : pos + take])
            pos += take
            events.extend(self._advance(final=False))
        return events

    def flush(self) -> List[Any]:
        """End of stream: resolve what is resolvable, drop typed tails."""
        events = list(self._advance(final=True))
        if self._state in (_WANT_SIGNAL, _WANT_FRAME):
            events.append(
                self._drop(
                    TruncatedFrameError(
                        f"stream ended {self._frame_end - self.ring.end} "
                        f"samples short of the frame at {self._window_start()}"
                        if self._state == _WANT_FRAME
                        else "stream ended inside a preamble, before the "
                        "SIGNAL symbol arrived"
                    ),
                    self._window_start(),
                )
            )
        self._resume_search(self.ring.end)
        return events

    def _advance(self, final: bool) -> Iterable[Any]:
        """Run the state machine as far as buffered samples allow."""
        events: List[Any] = []
        ref_size = self._ref.size
        while True:
            end = self.ring.end
            if self._state == _SEARCH:
                evaluable = end - ref_size + 1  # metric needs [p, p + ref)
                if evaluable <= self._search_pos:
                    return events
                metric = _preamble_metric(
                    self.ring.view(self._search_pos, end), self._ref
                )
                hits = metric >= self.threshold
                if not hits.any():
                    self._search_pos = evaluable
                    self.ring.release(self._search_pos - _SEARCH_LOOKBACK)
                    return events
                self._candidate = self._search_pos + int(np.argmax(hits))
                self._search_pos = self._candidate
                self._state = _CONFIRM
            elif self._state == _CONFIRM:
                # Need metric positions [c, c + _CONFIRM_SPAN) — i.e.
                # samples through c + span + ref - 1 — before committing.
                have_all = end >= self._candidate + _CONFIRM_SPAN + ref_size - 1
                if not have_all and not final:
                    return events
                hi = min(self._candidate + _CONFIRM_SPAN + ref_size - 1, end)
                metric = _preamble_metric(
                    self.ring.view(self._candidate, hi), self._ref
                )
                if metric.size == 0:
                    return events  # flush with < one ref of tail: nothing
                window = metric[: min(_REFINE_WINDOW, metric.size)]
                peak_rel = int(np.argmax(window))
                second_rel = peak_rel + 64
                if (
                    second_rel < metric.size
                    and metric[second_rel] > self.threshold
                ):
                    self._data_start = self._candidate + second_rel + 64
                else:
                    self._data_start = self._candidate + peak_rel + 64
                self._state = _WANT_SIGNAL
            elif self._state == _WANT_SIGNAL:
                needed = self._data_start + _SYMBOL_SAMPLES
                if end < needed:
                    if not final:
                        return events
                    return events  # flush() emits the truncation drop
                ws = self._window_start()
                try:
                    self._mcs, self._layout = probe_signal(
                        self.ring.view(ws, needed),
                        self._data_start - ws,
                        equalise=self.equalise,
                        correct_cfo=self.correct_cfo,
                    )
                except ReproError as exc:
                    events.append(self._drop(exc, ws))
                    self._resume_search(self._data_start)
                    continue
                self._frame_end = (
                    self._data_start
                    + _SYMBOL_SAMPLES * (1 + self._layout.n_symbols)
                )
                if self._frame_end - ws > self.ring.capacity:
                    events.append(
                        self._drop(
                            StreamOverflowError(
                                f"frame of {self._frame_end - ws} samples "
                                f"exceeds the {self.ring.capacity}-sample "
                                f"ring bound"
                            ),
                            ws,
                        )
                    )
                    self._resume_search(self._data_start)
                    continue
                self._state = _WANT_FRAME
            elif self._state == _WANT_FRAME:
                if end < self._frame_end:
                    return events  # flush() emits the truncation drop
                ws = self._window_start()
                telemetry.current().count("wifi.stream.frames")
                events.append(
                    WifiFrameWindow(
                        start_sample=ws,
                        window=np.array(self.ring.view(ws, self._frame_end)),
                        data_start=self._data_start - ws,
                        mcs=self._mcs,
                        layout=self._layout,
                    )
                )
                self._resume_search(self._frame_end)


def sync_capture(
    waveform: np.ndarray,
    threshold: float = 0.5,
    capacity: int = DEFAULT_RING_CAPACITY,
    equalise: bool = True,
    correct_cfo: bool = True,
) -> Tuple[List[WifiFrameWindow], List[DropEvent]]:
    """Streaming sync over one full capture (the one-chunk push).

    This is the full-buffer adapter's core: the classic ``decode_frames``
    runs this per capture, then batch-decodes the collected windows.  A
    capture of NaN/Inf samples is reported as an
    :class:`~repro.errors.InvalidWaveformError` drop, matching the batch
    receiver's front-end check.
    """
    stage = WifiSyncStage(
        threshold=threshold,
        capacity=capacity,
        equalise=equalise,
        correct_cfo=correct_cfo,
    )
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    if not np.all(np.isfinite(arr)):
        error = InvalidWaveformError("waveform contains NaN or Inf samples")
        return [], [stage._drop(error, 0)]
    events = list(stage.push(arr)) + list(stage.flush())
    windows = [e for e in events if isinstance(e, WifiFrameWindow)]
    drops = [e for e in events if isinstance(e, DropEvent)]
    return windows, drops


class WifiDecodeStage:
    """Decode each :class:`WifiFrameWindow` through the standard chain."""

    name = "decode"

    def __init__(
        self,
        scrambler_seed: int = DEFAULT_SEED,
        equalise: bool = True,
        soft: bool = False,
        correct_cfo: bool = True,
        track_phase: bool = True,
    ) -> None:
        self._receiver = WifiReceiver(scrambler_seed)
        self._options = dict(
            equalise=equalise,
            soft=soft,
            correct_cfo=correct_cfo,
            track_phase=track_phase,
        )

    def push(self, item: Any) -> List[Any]:
        if not isinstance(item, WifiFrameWindow):
            return [item]  # pass upstream drops through
        try:
            reception = self._receiver.receive_frames(
                [item.window], data_start=item.data_start, **self._options
            )[0]
        except ReproError as exc:
            telemetry.current().count(f"wifi.stream.drop.{type(exc).__name__}")
            return [
                DropEvent(
                    start_sample=item.start_sample, stage=self.name, error=exc
                )
            ]
        return [FrameEvent(start_sample=item.start_sample, result=reception)]

    def flush(self) -> List[Any]:
        return []


class WifiStreamReceiver:
    """Chunked 802.11 receiver: push sample chunks, collect receptions.

    The streaming counterpart of :class:`~repro.wifi.receiver.
    WifiReceiver`: feed arbitrarily sliced complex baseband chunks with
    :meth:`push`, finish with :meth:`flush`.  Events are
    :class:`~repro.streaming.stage.FrameEvent`\\ s carrying
    :class:`~repro.wifi.receiver.WifiReception` results and typed
    :class:`~repro.streaming.stage.DropEvent`\\ s; output is bit-identical
    for any chunking of the same stream.
    """

    def __init__(
        self,
        scrambler_seed: int = DEFAULT_SEED,
        sync_threshold: float = 0.5,
        capacity: int = DEFAULT_RING_CAPACITY,
        equalise: bool = True,
        soft: bool = False,
        correct_cfo: bool = True,
        track_phase: bool = True,
    ) -> None:
        self.sync = WifiSyncStage(
            threshold=sync_threshold,
            capacity=capacity,
            equalise=equalise,
            correct_cfo=correct_cfo,
        )
        self.pipeline = StreamPipeline(
            [
                self.sync,
                WifiDecodeStage(
                    scrambler_seed,
                    equalise=equalise,
                    soft=soft,
                    correct_cfo=correct_cfo,
                    track_phase=track_phase,
                ),
            ],
            "wifi.stream",
        )

    def push(self, chunk: np.ndarray) -> List[Any]:
        """Feed one chunk; returns the events it completed."""
        return self.pipeline.push(chunk)

    def flush(self) -> List[Any]:
        """End the stream; returns the final events."""
        return self.pipeline.flush()

    def receive_stream(
        self, chunks: Iterable[np.ndarray]
    ) -> Tuple[List[WifiReception], List[DropEvent]]:
        """Convenience: run a whole chunk iterator, split the outcome."""
        events = self.pipeline.run(chunks)
        frames = [e.result for e in events if isinstance(e, FrameEvent)]
        drops = [e for e in events if isinstance(e, DropEvent)]
        return frames, drops
