"""802.11n HT40 (40 MHz) PHY parameters and interleaver.

The paper's footnote 1: "The WiFi channel can be up to 40 MHz in 802.11n
... the similar idea can be easily extended to wider channel scenarios."
This module supplies the pieces the extension needs:

* the HT40 subcarrier plan: a 128-point FFT, used subcarriers -58..58
  excluding {-1, 0, +1}, six pilots at +-11, +-25, +-53 -> 108 data
  subcarriers;
* the HT interleaver for 40 MHz: N_COL = 18, N_ROW = 6 x N_BPSC, with the
  same two-permutation structure as the 20 MHz code (single spatial
  stream, so no frequency rotation);
* the HT40 MCS ladder (single stream) for the paper's three QAM orders.

The modulation, coding and SledZig machinery are channel-width agnostic, so
:mod:`repro.sledzig.wideband` composes these tables with the existing
solver to protect ZigBee channels under a 40 MHz transmitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.wifi.params import BITS_PER_SUBCARRIER, CODING_RATES

#: Baseband sample rate of a 40 MHz channel.
SAMPLE_RATE_HZ: float = 40e6

#: FFT size.
FFT_SIZE: int = 128

#: Subcarrier spacing is unchanged: 312.5 kHz.
SUBCARRIER_SPACING_HZ: float = SAMPLE_RATE_HZ / FFT_SIZE

#: HT40 pilot subcarriers (single stream).
PILOT_SUBCARRIERS: Tuple[int, ...] = (-53, -25, -11, 11, 25, 53)

#: HT40 data subcarriers: -58..58 minus {0, +-1} and the pilots.
DATA_SUBCARRIERS: Tuple[int, ...] = tuple(
    k
    for k in range(-58, 59)
    if k not in (-1, 0, 1) and k not in PILOT_SUBCARRIERS
)

#: Number of data subcarriers (108 for HT40).
N_DATA_SUBCARRIERS: int = len(DATA_SUBCARRIERS)

#: HT interleaver column count for 40 MHz.
N_COLUMNS: int = 18


@dataclass(frozen=True)
class Ht40Mcs:
    """One single-stream HT40 modulation-and-coding scheme.

    Attributes:
        modulation: qam16 / qam64 / qam256.
        coding_rate: 1/2, 2/3, 3/4 or 5/6.
        n_bpsc: coded bits per subcarrier.
        n_cbps: coded bits per symbol (108 x n_bpsc).
        n_dbps: data bits per symbol.
    """

    modulation: str
    coding_rate: str
    n_bpsc: int
    n_cbps: int
    n_dbps: int

    @property
    def name(self) -> str:
        """Readable identifier, e.g. ``ht40-qam64-5/6``."""
        return f"ht40-{self.modulation}-{self.coding_rate}"

    @property
    def data_rate_mbps(self) -> float:
        """PHY rate with the 4 us symbol (long guard interval)."""
        return self.n_dbps / 4.0


def _make(modulation: str, coding_rate: str) -> Ht40Mcs:
    n_bpsc = BITS_PER_SUBCARRIER[modulation]
    num, den = CODING_RATES[coding_rate]
    n_cbps = N_DATA_SUBCARRIERS * n_bpsc
    if (n_cbps * num) % den:
        raise ConfigurationError(
            f"HT40 {modulation} rate {coding_rate} yields fractional data bits"
        )
    return Ht40Mcs(modulation, coding_rate, n_bpsc, n_cbps, n_cbps * num // den)


#: HT40 single-stream ladder covering the paper's modulations.
HT40_MCS_TABLE: Dict[str, Ht40Mcs] = {
    mcs.name: mcs
    for mcs in (
        _make("qam16", "1/2"),
        _make("qam16", "3/4"),
        _make("qam64", "2/3"),
        _make("qam64", "3/4"),
        _make("qam64", "5/6"),
        _make("qam256", "3/4"),
        _make("qam256", "5/6"),
    )
}


def get_ht40_mcs(name: str) -> Ht40Mcs:
    """Look up an HT40 MCS by name (``ht40-<modulation>-<rate>``)."""
    key = name if name.startswith("ht40-") else f"ht40-{name}"
    try:
        return HT40_MCS_TABLE[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown HT40 MCS {name!r}; valid: {sorted(HT40_MCS_TABLE)}"
        ) from None


@lru_cache(maxsize=None)
def ht40_interleave_permutation(n_cbps: int, n_bpsc: int) -> Tuple[int, ...]:
    """HT40 interleaver permutation ``perm[k] = j`` (single stream).

    IEEE 802.11n 20.3.11.8.2 with N_COL = 18 and N_ROW = 6 x N_BPSC:

        i = N_ROW * (k mod N_COL) + floor(k / N_COL)
        j = s * floor(i/s) + (i + N_CBPS - floor(N_COL * i / N_CBPS)) mod s
    """
    n_row = 6 * n_bpsc
    if n_cbps != N_COLUMNS * n_row:
        raise ConfigurationError(
            f"N_CBPS {n_cbps} does not equal N_COL({N_COLUMNS}) x N_ROW({n_row})"
        )
    s = max(n_bpsc // 2, 1)
    perm = []
    for k in range(n_cbps):
        i = n_row * (k % N_COLUMNS) + k // N_COLUMNS
        j = s * (i // s) + (i + n_cbps - (N_COLUMNS * i) // n_cbps) % s
        perm.append(j)
    if sorted(perm) != list(range(n_cbps)):
        raise ConfigurationError("HT40 interleaver permutation is not a bijection")
    return tuple(perm)


@lru_cache(maxsize=None)
def ht40_deinterleave_permutation(n_cbps: int, n_bpsc: int) -> Tuple[int, ...]:
    """Inverse of :func:`ht40_interleave_permutation`."""
    perm = ht40_interleave_permutation(n_cbps, n_bpsc)
    inv = [0] * n_cbps
    for k, j in enumerate(perm):
        inv[j] = k
    return tuple(inv)


def data_subcarrier_index(logical: int) -> int:
    """Position (0..107) of a logical data subcarrier in the QAM sequence."""
    try:
        return DATA_SUBCARRIERS.index(logical)
    except ValueError:
        raise ConfigurationError(
            f"subcarrier {logical} is not an HT40 data subcarrier"
        ) from None
