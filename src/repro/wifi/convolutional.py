"""Rate-1/2 convolutional encoder and Viterbi decoder (802.11, K = 7).

The encoder uses the industry-standard generator polynomials g0 = 133 and
g1 = 171 (octal) — written in binary these are 1011011 and 1111001, exactly
the vectors the paper's Eq. 1 multiplies against X_n = [x_n ... x_{n-6}].
One input bit produces the output pair (A, B) = (g0 . X_n, g1 . X_n); the
pairs are serialised A first.

The Viterbi decoder is a hard-decision implementation over the 64-state
trellis, with erasure support so punctured streams can be decoded after
depuncturing marks the missing bits.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import DecodingError, EncodingError
from repro.utils.bits import BitsLike, as_bits
from repro.utils.galois import poly_to_taps

#: Constraint length of the 802.11 code.
CONSTRAINT_LENGTH: int = 7

#: Number of trellis states (2^(K-1)).
N_STATES: int = 64

#: Generator polynomials, octal 133 and 171.
G0: int = 0o133
G1: int = 0o171

#: Tap vectors ordered [x_n, x_{n-1}, ..., x_{n-6}] as in the paper's X_n.
G0_TAPS: np.ndarray = poly_to_taps(G0, CONSTRAINT_LENGTH)
G1_TAPS: np.ndarray = poly_to_taps(G1, CONSTRAINT_LENGTH)

#: Erasure marker inside depunctured streams (neither 0 nor 1).
ERASURE: int = 2


def _build_trellis() -> Tuple[np.ndarray, np.ndarray]:
    """Precompute next-state and output tables for all (state, input) pairs.

    A state encodes the previous six input bits [x_{n-1} .. x_{n-6}], with
    x_{n-1} in the most significant position.  Returns ``(next_state,
    outputs)`` where ``outputs[state, input]`` packs (A << 1) | B.
    """
    next_state = np.zeros((N_STATES, 2), dtype=np.int64)
    outputs = np.zeros((N_STATES, 2), dtype=np.int64)
    for state in range(N_STATES):
        history = [(state >> (5 - i)) & 1 for i in range(6)]  # x_{n-1}..x_{n-6}
        for bit in range(2):
            window = np.array([bit] + history, dtype=np.uint8)
            a = int(np.bitwise_and(G0_TAPS, window).sum() & 1)
            b = int(np.bitwise_and(G1_TAPS, window).sum() & 1)
            outputs[state, bit] = (a << 1) | b
            next_state[state, bit] = ((state >> 1) | (bit << 5)) & 0x3F
    return next_state, outputs


_NEXT_STATE, _OUTPUTS = _build_trellis()


class ConvolutionalEncoder:
    """Streaming rate-1/2 encoder holding the six-bit shift register."""

    def __init__(self) -> None:
        self._state = 0

    @property
    def state(self) -> int:
        """Current 6-bit register contents (x_{n-1} in the MSB)."""
        return self._state

    def reset(self) -> None:
        """Clear the shift register (start of a new DATA field)."""
        self._state = 0

    def encode_bit(self, bit: int) -> Tuple[int, int]:
        """Encode one input bit, returning the output pair (A, B)."""
        if bit not in (0, 1):
            raise EncodingError(f"input bit must be 0 or 1, got {bit!r}")
        packed = int(_OUTPUTS[self._state, bit])
        self._state = int(_NEXT_STATE[self._state, bit])
        return packed >> 1, packed & 1

    def encode(self, bits: BitsLike) -> np.ndarray:
        """Encode a block of bits, returning the serialised A/B stream."""
        arr = as_bits(bits)
        out = np.empty(2 * arr.size, dtype=np.uint8)
        state = self._state
        for i, bit in enumerate(arr):
            packed = int(_OUTPUTS[state, bit])
            out[2 * i] = packed >> 1
            out[2 * i + 1] = packed & 1
            state = int(_NEXT_STATE[state, bit])
        self._state = state
        return out


def conv_encode(bits: BitsLike) -> np.ndarray:
    """One-shot encode from the all-zero state (standard DATA field usage)."""
    encoder = ConvolutionalEncoder()
    return encoder.encode(bits)


def encode_output_bit(window: BitsLike, branch: int) -> int:
    """Evaluate the paper's Eq. 1 for one output bit.

    *window* is X_n = [x_n, x_{n-1}, ..., x_{n-6}] and *branch* selects the
    generator: 0 -> g0 (y_{2n-1}), 1 -> g1 (y_{2n}).
    """
    arr = as_bits(window)
    if arr.size != CONSTRAINT_LENGTH:
        raise EncodingError(
            f"window must have {CONSTRAINT_LENGTH} bits, got {arr.size}"
        )
    taps = G0_TAPS if branch == 0 else G1_TAPS
    return int(np.bitwise_and(taps, arr).sum() & 1)


def viterbi_decode_soft(
    soft: np.ndarray,
    n_data_bits: Optional[int] = None,
    assume_zero_tail: bool = False,
) -> np.ndarray:
    """Soft-decision Viterbi decode of a rate-1/2 stream.

    Args:
        soft: serialised A/B soft values; positive means "this coded bit is
            more likely 1".  Punctured positions carry 0.0 (no information)
            — :func:`repro.wifi.puncture.depuncture_soft` produces exactly
            that, which is why erasures need no special casing here.
        n_data_bits: expected decoded length (default: every pair).
        assume_zero_tail: select the survivor ending in state 0.

    The path metric is the correlation sum(soft * (2 * expected - 1)),
    maximised; soft decisions buy roughly 2 dB over hard decisions on an
    AWGN channel.
    """
    stream = np.asarray(soft, dtype=np.float64).ravel()
    if stream.size % 2:
        raise DecodingError("soft stream must contain A/B pairs (even length)")
    n_steps = stream.size // 2
    if n_data_bits is None:
        n_data_bits = n_steps
    if n_data_bits > n_steps:
        raise DecodingError(
            f"requested {n_data_bits} data bits from only {n_steps} soft pairs"
        )
    pairs = stream.reshape(-1, 2)
    out_a = ((_OUTPUTS >> 1) * 2 - 1).astype(np.float64)  # +-1 expected signs
    out_b = ((_OUTPUTS & 1) * 2 - 1).astype(np.float64)

    preds = np.zeros((N_STATES, 2), dtype=np.int64)
    pred_inputs = np.zeros((N_STATES, 2), dtype=np.int64)
    fill = np.zeros(N_STATES, dtype=np.int64)
    for state in range(N_STATES):
        for bit in range(2):
            dst = _NEXT_STATE[state, bit]
            preds[dst, fill[dst]] = state
            pred_inputs[dst, fill[dst]] = bit
            fill[dst] += 1

    neg_inf = -1e18
    metrics = np.full(N_STATES, neg_inf, dtype=np.float64)
    metrics[0] = 0.0
    decisions = np.zeros((n_steps, N_STATES), dtype=np.uint8)
    for step in range(n_steps):
        a, b = pairs[step]
        gain = out_a * a + out_b * b  # [state, input] correlation gain
        cand = np.empty((N_STATES, 2), dtype=np.float64)
        for slot in range(2):
            src = preds[:, slot]
            inp = pred_inputs[:, slot]
            cand[:, slot] = metrics[src] + gain[src, inp]
        choice = np.argmax(cand, axis=1)
        metrics = cand[np.arange(N_STATES), choice]
        decisions[step] = pred_inputs[np.arange(N_STATES), choice] | (
            choice.astype(np.uint8) << 1
        )

    state = 0 if assume_zero_tail else int(np.argmax(metrics))
    decoded = np.empty(n_steps, dtype=np.uint8)
    for step in range(n_steps - 1, -1, -1):
        packed = int(decisions[step, state])
        decoded[step] = packed & 1
        state = int(preds[state, packed >> 1])
    return decoded[:n_data_bits]


def viterbi_decode(
    coded: BitsLike,
    n_data_bits: Optional[int] = None,
    assume_zero_tail: bool = True,
) -> np.ndarray:
    """Hard-decision Viterbi decode of a rate-1/2 stream.

    Args:
        coded: serialised A/B stream; values of :data:`ERASURE` (2) are
            treated as punctured and contribute no branch metric.
        n_data_bits: expected number of decoded bits (defaults to half the
            coded length, rounded down).
        assume_zero_tail: when True the survivor path ending in state 0 is
            selected, matching the standard's six zero tail bits.

    Returns the decoded bit array.
    """
    stream = np.asarray(coded, dtype=np.uint8).ravel()
    if stream.size % 2:
        raise DecodingError("coded stream must contain A/B pairs (even length)")
    n_steps = stream.size // 2
    if n_data_bits is None:
        n_data_bits = n_steps
    if n_data_bits > n_steps:
        raise DecodingError(
            f"requested {n_data_bits} data bits from only {n_steps} coded pairs"
        )

    pairs = stream.reshape(-1, 2)
    inf = np.iinfo(np.int64).max // 4
    metrics = np.full(N_STATES, inf, dtype=np.int64)
    metrics[0] = 0
    decisions = np.zeros((n_steps, N_STATES), dtype=np.uint8)

    out_a = (_OUTPUTS >> 1).astype(np.int64)  # [state, input]
    out_b = (_OUTPUTS & 1).astype(np.int64)
    next_state = _NEXT_STATE

    # For the backward recursion we need, for each destination state, its two
    # predecessor (state, input) pairs.
    preds = np.zeros((N_STATES, 2), dtype=np.int64)  # predecessor states
    pred_inputs = np.zeros((N_STATES, 2), dtype=np.int64)
    fill = np.zeros(N_STATES, dtype=np.int64)
    for state in range(N_STATES):
        for bit in range(2):
            dst = next_state[state, bit]
            slot = fill[dst]
            preds[dst, slot] = state
            pred_inputs[dst, slot] = bit
            fill[dst] += 1
    if not np.all(fill == 2):
        raise DecodingError("trellis construction failed (predecessor count)")

    for step in range(n_steps):
        a, b = int(pairs[step, 0]), int(pairs[step, 1])
        cost = np.zeros((N_STATES, 2), dtype=np.int64)
        if a != ERASURE:
            cost += out_a != a
        if b != ERASURE:
            cost += out_b != b
        cand = np.empty((N_STATES, 2), dtype=np.int64)
        for slot in range(2):
            src = preds[:, slot]
            inp = pred_inputs[:, slot]
            cand[:, slot] = metrics[src] + cost[src, inp]
        choice = np.argmin(cand, axis=1)
        metrics = cand[np.arange(N_STATES), choice]
        decisions[step] = pred_inputs[np.arange(N_STATES), choice] | (
            choice.astype(np.uint8) << 1
        )

    state = 0 if assume_zero_tail else int(np.argmin(metrics))
    decoded = np.empty(n_steps, dtype=np.uint8)
    for step in range(n_steps - 1, -1, -1):
        packed = int(decisions[step, state])
        bit = packed & 1
        slot = packed >> 1
        decoded[step] = bit
        state = int(preds[state, slot])
    return decoded[:n_data_bits]
