"""Rate-1/2 convolutional encoder and Viterbi decoder (802.11, K = 7).

The encoder uses the industry-standard generator polynomials g0 = 133 and
g1 = 171 (octal) — written in binary these are 1011011 and 1111001, exactly
the vectors the paper's Eq. 1 multiplies against X_n = [x_n ... x_{n-6}].
One input bit produces the output pair (A, B) = (g0 . X_n, g1 . X_n); the
pairs are serialised A first.

The trellis tables and the hot encode/decode recursions live in
:mod:`repro.dsp.trellis`; this module keeps the standard-facing scalar API
(streaming encoder, one-shot encode, hard/soft Viterbi) as thin wrappers
over the batched kernels.  Hard decoding supports erasures so punctured
streams can be decoded after depuncturing marks the missing bits.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.dsp.trellis import (
    ERASURE,
    conv_encode_batch,
    get_trellis,
    viterbi_decode_batch,
    viterbi_decode_soft_batch,
)
from repro.errors import DecodingError, EncodingError
from repro.utils.bits import BitsLike, as_bits
from repro.utils.galois import poly_to_taps

#: Constraint length of the 802.11 code.
CONSTRAINT_LENGTH: int = 7

#: Number of trellis states (2^(K-1)).
N_STATES: int = 64

#: Generator polynomials, octal 133 and 171.
G0: int = 0o133
G1: int = 0o171

#: Tap vectors ordered [x_n, x_{n-1}, ..., x_{n-6}] as in the paper's X_n.
G0_TAPS: np.ndarray = poly_to_taps(G0, CONSTRAINT_LENGTH)
G1_TAPS: np.ndarray = poly_to_taps(G1, CONSTRAINT_LENGTH)

__all__ = [
    "CONSTRAINT_LENGTH",
    "N_STATES",
    "G0",
    "G1",
    "G0_TAPS",
    "G1_TAPS",
    "ERASURE",
    "ConvolutionalEncoder",
    "conv_encode",
    "encode_output_bit",
    "viterbi_decode",
    "viterbi_decode_soft",
]


class ConvolutionalEncoder:
    """Streaming rate-1/2 encoder holding the six-bit shift register."""

    def __init__(self) -> None:
        self._state = 0

    @property
    def state(self) -> int:
        """Current 6-bit register contents (x_{n-1} in the MSB)."""
        return self._state

    def reset(self) -> None:
        """Clear the shift register (start of a new DATA field)."""
        self._state = 0

    def encode_bit(self, bit: int) -> Tuple[int, int]:
        """Encode one input bit, returning the output pair (A, B)."""
        if bit not in (0, 1):
            raise EncodingError(f"input bit must be 0 or 1, got {bit!r}")
        trellis = get_trellis()
        packed = int(trellis.outputs[self._state, bit])
        self._state = int(trellis.next_state[self._state, bit])
        return packed >> 1, packed & 1

    def encode(self, bits: BitsLike) -> np.ndarray:
        """Encode a block of bits, returning the serialised A/B stream."""
        arr = as_bits(bits)
        coded, self._state = conv_encode_batch(arr[None, :], self._state)
        return coded[0]


def conv_encode(bits: BitsLike) -> np.ndarray:
    """One-shot encode from the all-zero state (standard DATA field usage)."""
    coded, _ = conv_encode_batch(as_bits(bits)[None, :])
    return coded[0]


def encode_output_bit(window: BitsLike, branch: int) -> int:
    """Evaluate the paper's Eq. 1 for one output bit.

    *window* is X_n = [x_n, x_{n-1}, ..., x_{n-6}] and *branch* selects the
    generator: 0 -> g0 (y_{2n-1}), 1 -> g1 (y_{2n}).
    """
    arr = as_bits(window)
    if arr.size != CONSTRAINT_LENGTH:
        raise EncodingError(
            f"window must have {CONSTRAINT_LENGTH} bits, got {arr.size}"
        )
    taps = G0_TAPS if branch == 0 else G1_TAPS
    return int(np.bitwise_and(taps, arr).sum() & 1)


def viterbi_decode_soft(
    soft: np.ndarray,
    n_data_bits: Optional[int] = None,
    assume_zero_tail: bool = False,
) -> np.ndarray:
    """Soft-decision Viterbi decode of a rate-1/2 stream.

    Args:
        soft: serialised A/B soft values; positive means "this coded bit is
            more likely 1".  Punctured positions carry 0.0 (no information)
            — :func:`repro.wifi.puncture.depuncture_soft` produces exactly
            that, which is why erasures need no special casing here.
        n_data_bits: expected decoded length (default: every pair).
        assume_zero_tail: select the survivor ending in state 0.

    The path metric is the correlation sum(soft * (2 * expected - 1)),
    maximised; soft decisions buy roughly 2 dB over hard decisions on an
    AWGN channel.
    """
    stream = np.asarray(soft, dtype=np.float64).ravel()
    return viterbi_decode_soft_batch(
        stream[None, :], n_data_bits=n_data_bits, assume_zero_tail=assume_zero_tail
    )[0]


def viterbi_decode(
    coded: BitsLike,
    n_data_bits: Optional[int] = None,
    assume_zero_tail: bool = True,
) -> np.ndarray:
    """Hard-decision Viterbi decode of a rate-1/2 stream.

    Args:
        coded: serialised A/B stream; values of :data:`ERASURE` (2) are
            treated as punctured and contribute no branch metric.
        n_data_bits: expected number of decoded bits (defaults to half the
            coded length, rounded down).
        assume_zero_tail: when True the survivor path ending in state 0 is
            selected, matching the standard's six zero tail bits.

    Returns the decoded bit array.
    """
    stream = np.asarray(coded, dtype=np.uint8).ravel()
    if stream.size and int(stream.max()) > ERASURE:
        raise DecodingError("hard-decision stream may contain only 0, 1 and 2")
    return viterbi_decode_batch(
        stream[None, :], n_data_bits=n_data_bits, assume_zero_tail=assume_zero_tail
    )[0]
