"""802.11 block interleaver (Section 18.3.5.7).

Each OFDM symbol's N_CBPS coded bits are permuted by two steps: the first
spreads adjacent coded bits onto non-adjacent subcarriers, the second rotates
bits within a subcarrier so long runs do not hit only low-reliability
constellation positions.

For a bit at input index k (0-based, k = 0..N_CBPS-1):

    i = (N_CBPS / 16) * (k mod 16) + floor(k / 16)
    j = s * floor(i / s) + (i + N_CBPS - floor(16 i / N_CBPS)) mod s

with s = max(N_BPSC / 2, 1).  Output index j is the position feeding the QAM
mapper, i.e. subcarrier floor(j / N_BPSC), bit offset j mod N_BPSC.

SledZig works this permutation *backwards*: significant bits defined at the
constellation (output) side are mapped to their pre-interleaver positions,
which the paper notes also scatters them — the property that makes Algorithm
1's twin-insertion always solvable.

The permutation tables and the block-apply kernels are owned by
:mod:`repro.dsp.interleaving`; this module re-exposes them with the
stream-oriented scalar signatures the rest of the WiFi chain uses.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.interleaving import (
    deinterleave_blocks,
    deinterleave_permutation,
    interleave_blocks,
    interleave_permutation,
)
from repro.errors import EncodingError
from repro.utils.bits import BitsLike, as_bits

__all__ = [
    "interleave_permutation",
    "deinterleave_permutation",
    "interleave",
    "deinterleave",
    "deinterleave_soft",
    "source_index",
]


def interleave(bits: BitsLike, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Interleave a stream of whole OFDM symbols (length multiple of N_CBPS)."""
    return interleave_blocks(as_bits(bits), n_cbps, n_bpsc)


def deinterleave(bits: BitsLike, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Invert :func:`interleave` on a stream of whole OFDM symbols."""
    return deinterleave_blocks(as_bits(bits), n_cbps, n_bpsc)


def deinterleave_soft(values: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Deinterleave real-valued soft decisions (same permutation as bits)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    return deinterleave_blocks(arr, n_cbps, n_bpsc)


def source_index(output_index: int, n_cbps: int, n_bpsc: int) -> int:
    """Pre-interleaver index of the bit that lands at *output_index*.

    This is the core inverse lookup of SledZig's significant-bit derivation:
    given a constellation-side bit position (subcarrier * N_BPSC + offset),
    return where that bit sits in the post-puncture coded stream.
    """
    if not 0 <= output_index < n_cbps:
        raise EncodingError(
            f"output index {output_index} outside one symbol of {n_cbps} bits"
        )
    return int(deinterleave_permutation(n_cbps, n_bpsc)[output_index])
