"""802.11 block interleaver (Section 18.3.5.7).

Each OFDM symbol's N_CBPS coded bits are permuted by two steps: the first
spreads adjacent coded bits onto non-adjacent subcarriers, the second rotates
bits within a subcarrier so long runs do not hit only low-reliability
constellation positions.

For a bit at input index k (0-based, k = 0..N_CBPS-1):

    i = (N_CBPS / 16) * (k mod 16) + floor(k / 16)
    j = s * floor(i / s) + (i + N_CBPS - floor(16 i / N_CBPS)) mod s

with s = max(N_BPSC / 2, 1).  Output index j is the position feeding the QAM
mapper, i.e. subcarrier floor(j / N_BPSC), bit offset j mod N_BPSC.

SledZig works this permutation *backwards*: significant bits defined at the
constellation (output) side are mapped to their pre-interleaver positions,
which the paper notes also scatters them — the property that makes Algorithm
1's twin-insertion always solvable.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.utils.bits import BitsLike, as_bits


@lru_cache(maxsize=None)
def interleave_permutation(n_cbps: int, n_bpsc: int) -> Tuple[int, ...]:
    """Permutation ``perm[k] = j`` from input index k to output index j."""
    if n_cbps % 16:
        raise ConfigurationError(f"N_CBPS must be a multiple of 16, got {n_cbps}")
    if n_bpsc < 1 or n_cbps % n_bpsc:
        raise ConfigurationError(
            f"N_BPSC {n_bpsc} incompatible with N_CBPS {n_cbps}"
        )
    s = max(n_bpsc // 2, 1)
    perm = []
    for k in range(n_cbps):
        i = (n_cbps // 16) * (k % 16) + k // 16
        j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
        perm.append(j)
    if sorted(perm) != list(range(n_cbps)):
        raise ConfigurationError("interleaver permutation is not a bijection")
    return tuple(perm)


@lru_cache(maxsize=None)
def deinterleave_permutation(n_cbps: int, n_bpsc: int) -> Tuple[int, ...]:
    """Inverse permutation ``inv[j] = k`` (output index back to input)."""
    perm = interleave_permutation(n_cbps, n_bpsc)
    inv = [0] * n_cbps
    for k, j in enumerate(perm):
        inv[j] = k
    return tuple(inv)


def interleave(bits: BitsLike, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Interleave a stream of whole OFDM symbols (length multiple of N_CBPS)."""
    arr = as_bits(bits)
    if arr.size % n_cbps:
        raise EncodingError(
            f"stream of {arr.size} bits is not whole symbols of {n_cbps}"
        )
    perm = np.array(interleave_permutation(n_cbps, n_bpsc))
    blocks = arr.reshape(-1, n_cbps)
    out = np.empty_like(blocks)
    out[:, perm] = blocks
    return out.ravel()


def deinterleave(bits: BitsLike, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Invert :func:`interleave` on a stream of whole OFDM symbols."""
    arr = as_bits(bits)
    if arr.size % n_cbps:
        raise EncodingError(
            f"stream of {arr.size} bits is not whole symbols of {n_cbps}"
        )
    perm = np.array(interleave_permutation(n_cbps, n_bpsc))
    blocks = arr.reshape(-1, n_cbps)
    out = blocks[:, perm]
    return out.ravel()


def deinterleave_soft(values: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Deinterleave real-valued soft decisions (same permutation as bits)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size % n_cbps:
        raise EncodingError(
            f"stream of {arr.size} values is not whole symbols of {n_cbps}"
        )
    perm = np.array(interleave_permutation(n_cbps, n_bpsc))
    return arr.reshape(-1, n_cbps)[:, perm].ravel()


def source_index(output_index: int, n_cbps: int, n_bpsc: int) -> int:
    """Pre-interleaver index of the bit that lands at *output_index*.

    This is the core inverse lookup of SledZig's significant-bit derivation:
    given a constellation-side bit position (subcarrier * N_BPSC + offset),
    return where that bit sits in the post-puncture coded stream.
    """
    if not 0 <= output_index < n_cbps:
        raise EncodingError(
            f"output index {output_index} outside one symbol of {n_cbps} bits"
        )
    return deinterleave_permutation(n_cbps, n_bpsc)[output_index]
