"""802.11 OFDM PLCP preamble: short and long training fields.

The preamble is 16 us: ten repetitions of a 0.8 us short training symbol
(STS) for AGC/coarse sync, then a 1.6 us guard plus two 3.2 us long training
symbols (LTS) for channel estimation and fine synchronisation.  SledZig does
not touch the preamble — the paper's Section IV-F analyses precisely the
consequence: the first 16 us of every packet stay at full power, which is
why the preamble window is modelled explicitly in the coexistence simulator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SynchronizationError
from repro.wifi.params import CP_LENGTH, FFT_SIZE

#: STS occupies every 4th subcarrier; sqrt(13/6) restores unit average power.
_STS_SCALE = np.sqrt(13.0 / 6.0)

#: Non-zero STS entries: logical subcarrier -> un-scaled value.
_STS_FREQ = {
    -24: 1 + 1j, -20: -1 - 1j, -16: 1 + 1j, -12: -1 - 1j, -8: -1 - 1j,
    -4: 1 + 1j, 4: -1 - 1j, 8: -1 - 1j, 12: 1 + 1j, 16: 1 + 1j,
    20: 1 + 1j, 24: 1 + 1j,
}

#: LTS values on subcarriers -26..26 (index 26 is DC = 0).
_LTS_SEQUENCE = np.array(
    [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1,
     -1, 1, 1, 1, 1, 0, 1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1,
     1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1],
    dtype=np.float64,
)

#: Duration of the full preamble in samples (16 us at 20 MHz).
PREAMBLE_LENGTH: int = 320

#: Duration of the preamble in microseconds.
PREAMBLE_DURATION_US: float = 16.0


def sts_spectrum() -> np.ndarray:
    """64-bin frequency-domain short training symbol."""
    spectrum = np.zeros(FFT_SIZE, dtype=np.complex128)
    for logical, value in _STS_FREQ.items():
        spectrum[logical % FFT_SIZE] = _STS_SCALE * value
    return spectrum


def lts_spectrum() -> np.ndarray:
    """64-bin frequency-domain long training symbol."""
    spectrum = np.zeros(FFT_SIZE, dtype=np.complex128)
    for offset, value in enumerate(_LTS_SEQUENCE):
        logical = offset - 26
        if logical == 0:
            continue
        spectrum[logical % FFT_SIZE] = value
    return spectrum


def short_training_field() -> np.ndarray:
    """The 8 us short training field: ten 16-sample STS periods.

    The sqrt(13/6) factor in the STS spectrum makes its total subcarrier
    power equal the 52-tone data symbols, so the same 64/sqrt(52) time
    scaling yields unit average sample power across the whole preamble.
    """
    time = np.fft.ifft(sts_spectrum()) * (FFT_SIZE / np.sqrt(52.0))
    period = time[:16]
    return np.tile(period, 10)


def long_training_field() -> np.ndarray:
    """The 8 us long training field: 32-sample guard + two LTS symbols."""
    time = np.fft.ifft(lts_spectrum()) * (FFT_SIZE / np.sqrt(52.0))
    guard = time[-2 * CP_LENGTH:]
    return np.concatenate([guard, time, time])


def preamble_waveform() -> np.ndarray:
    """Full 320-sample (16 us) preamble: STF followed by LTF."""
    return np.concatenate([short_training_field(), long_training_field()])


def lts_reference_symbol() -> np.ndarray:
    """One LTS symbol in the time domain (64 samples, no guard)."""
    return np.fft.ifft(lts_spectrum()) * (FFT_SIZE / np.sqrt(52.0))


def detect_preamble(
    waveform: np.ndarray, threshold: float = 0.5
) -> Tuple[int, float]:
    """Locate the preamble via cross-correlation with the known LTS.

    Returns ``(data_start, peak_metric)`` where *data_start* is the sample
    index of the first OFDM symbol after the preamble (the SIGNAL symbol).
    Raises :class:`SynchronizationError` if no sufficiently strong LTS
    correlation peak is found.
    """
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    ref = lts_reference_symbol()
    if arr.size < PREAMBLE_LENGTH:
        raise SynchronizationError(
            f"waveform of {arr.size} samples is shorter than a preamble"
        )
    corr = np.abs(np.correlate(arr, ref, mode="valid"))
    energy = np.sqrt(
        np.convolve(np.abs(arr) ** 2, np.ones(ref.size), mode="valid")
    )
    ref_energy = np.sqrt(np.sum(np.abs(ref) ** 2))
    with np.errstate(divide="ignore", invalid="ignore"):
        metric = np.where(energy > 0, corr / (energy * ref_energy), 0.0)
    # The two LTS symbols give twin peaks 64 samples apart; take the second.
    peak = int(np.argmax(metric))
    if metric[peak] < threshold:
        raise SynchronizationError(
            f"no LTS found: best correlation {metric[peak]:.3f} < {threshold}"
        )
    second = peak + FFT_SIZE
    if second < metric.size and metric[second] > threshold:
        data_start = second + FFT_SIZE
    else:
        data_start = peak + FFT_SIZE
    return data_start, float(metric[peak])
