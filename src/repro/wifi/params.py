"""802.11 OFDM PHY parameters (20 MHz channel).

Defines the subcarrier layout (48 data + 4 pilot + 12 null subcarriers of a
64-point FFT), symbol timing, and the modulation-and-coding table used by the
paper: QAM-16, QAM-64 and QAM-256 with their recommended coding rates, plus
BPSK/QPSK for the SIGNAL field and completeness.

A note on the paper's rate labels: Table III of the paper lists "2/3" for
QAM-16 with 144 data bits per OFDM symbol.  144 = 192 x 3/4, i.e. that row is
the standard 16-QAM rate-3/4 mode (36 Mbps in 802.11a); the 802.11 standard
defines no 16-QAM 2/3 mode.  This library uses the standard-consistent rates
and the experiment harness annotates the relabelling (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dsp.params import (
    BITS_PER_SUBCARRIER,
    CP_LENGTH,
    DATA_SUBCARRIERS,
    FFT_SIZE,
    N_DATA_SUBCARRIERS,
    PILOT_POLARITY,
    PILOT_SUBCARRIERS,
    PILOT_VALUES,
    SYMBOL_LENGTH,
    average_constellation_power,
)
from repro.errors import ConfigurationError

#: Baseband sample rate of a 20 MHz 802.11 channel.
SAMPLE_RATE_HZ: float = 20e6

#: OFDM symbol duration in microseconds.
SYMBOL_DURATION_US: float = 4.0

#: Subcarrier spacing: 20 MHz / 64 = 312.5 kHz.
SUBCARRIER_SPACING_HZ: float = SAMPLE_RATE_HZ / FFT_SIZE

#: Indices carrying any energy (data + pilots).
USED_SUBCARRIERS: Tuple[int, ...] = tuple(
    k for k in range(-26, 27) if k != 0
)

#: Coding rates expressed as (numerator, denominator).
CODING_RATES: Dict[str, Tuple[int, int]] = {
    "1/2": (1, 2),
    "2/3": (2, 3),
    "3/4": (3, 4),
    "5/6": (5, 6),
}


@dataclass(frozen=True)
class Mcs:
    """One modulation-and-coding scheme of the 20 MHz OFDM PHY.

    Attributes:
        modulation: one of ``bpsk``, ``qpsk``, ``qam16``, ``qam64``, ``qam256``.
        coding_rate: ``1/2``, ``2/3``, ``3/4`` or ``5/6``.
        n_bpsc: coded bits per subcarrier.
        n_cbps: coded bits per OFDM symbol (48 x n_bpsc).
        n_dbps: data bits per OFDM symbol (n_cbps x rate).
        min_snr_db: minimum receive SNR for a successful link, from the
            paper's Table IV.
    """

    modulation: str
    coding_rate: str
    n_bpsc: int
    n_cbps: int
    n_dbps: int
    min_snr_db: float

    @property
    def data_rate_mbps(self) -> float:
        """PHY data rate in Mbit/s (one OFDM symbol each 4 us)."""
        return self.n_dbps / SYMBOL_DURATION_US

    @property
    def rate_fraction(self) -> Tuple[int, int]:
        """Coding rate as an (numerator, denominator) tuple."""
        return CODING_RATES[self.coding_rate]

    @property
    def name(self) -> str:
        """Readable identifier, e.g. ``qam64-3/4``."""
        return f"{self.modulation}-{self.coding_rate}"


def _make_mcs(modulation: str, coding_rate: str, min_snr_db: float) -> Mcs:
    n_bpsc = BITS_PER_SUBCARRIER[modulation]
    n_cbps = N_DATA_SUBCARRIERS * n_bpsc
    num, den = CODING_RATES[coding_rate]
    if (n_cbps * num) % den:
        raise ConfigurationError(
            f"{modulation} with rate {coding_rate} does not yield whole data bits"
        )
    n_dbps = n_cbps * num // den
    return Mcs(modulation, coding_rate, n_bpsc, n_cbps, n_dbps, min_snr_db)


#: All MCS entries the library supports, keyed by ``<modulation>-<rate>``.
#: Minimum-SNR values for the QAM modes come from the paper's Table IV;
#: BPSK/QPSK values use the classic 802.11a receiver sensitivities.
MCS_TABLE: Dict[str, Mcs] = {
    mcs.name: mcs
    for mcs in (
        _make_mcs("bpsk", "1/2", 4.0),
        _make_mcs("bpsk", "3/4", 6.0),
        _make_mcs("qpsk", "1/2", 7.0),
        _make_mcs("qpsk", "3/4", 9.0),
        _make_mcs("qam16", "1/2", 11.0),
        _make_mcs("qam16", "3/4", 15.0),
        _make_mcs("qam64", "2/3", 18.0),
        _make_mcs("qam64", "3/4", 20.0),
        _make_mcs("qam64", "5/6", 25.0),
        _make_mcs("qam256", "3/4", 29.0),
        _make_mcs("qam256", "5/6", 31.0),
    )
}

#: The seven (modulation, rate) combinations evaluated in the paper's
#: Tables III/IV, in the paper's row order.  The second QAM-16 row is
#: labelled "2/3" in the paper but is the standard rate-3/4 mode (see module
#: docstring).
PAPER_MCS_NAMES: Tuple[str, ...] = (
    "qam16-1/2",
    "qam16-3/4",
    "qam64-2/3",
    "qam64-3/4",
    "qam64-5/6",
    "qam256-3/4",
    "qam256-5/6",
)


def get_mcs(name: str) -> Mcs:
    """Look up an MCS by ``<modulation>-<rate>`` name.

    Raises :class:`ConfigurationError` for unknown combinations, listing the
    valid choices.
    """
    try:
        return MCS_TABLE[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown MCS {name!r}; valid: {sorted(MCS_TABLE)}"
        ) from None


def data_subcarrier_index(logical: int) -> int:
    """Position (0..47) of a logical data subcarrier within a symbol's QAM
    point sequence, i.e. the order the interleaved bits fill subcarriers."""
    try:
        return DATA_SUBCARRIERS.index(logical)
    except ValueError:
        raise ConfigurationError(
            f"subcarrier {logical} is not a data subcarrier"
        ) from None


def subcarrier_frequency_hz(logical: int) -> float:
    """Baseband centre frequency of a logical subcarrier."""
    if not -32 <= logical <= 31:
        raise ConfigurationError(f"subcarrier index {logical} out of range")
    return logical * SUBCARRIER_SPACING_HZ


def fft_bin(logical: int) -> int:
    """Map a logical subcarrier index (-32..31) to its FFT bin (0..63)."""
    if not -32 <= logical <= 31:
        raise ConfigurationError(f"subcarrier index {logical} out of range")
    return logical % FFT_SIZE
