"""802.11 OFDM PHY: the standard transmit/receive chain SledZig rides on."""

from repro.wifi.constellation import (
    constellation_points,
    demodulate_hard,
    demodulate_soft,
    gray_code,
    gray_decode,
    lowest_point_power,
    lowest_power_axis_groups,
    modulate,
    normalisation_factor,
    significant_bit_pattern,
)
from repro.wifi.convolutional import (
    CONSTRAINT_LENGTH,
    ERASURE,
    G0_TAPS,
    G1_TAPS,
    ConvolutionalEncoder,
    conv_encode,
    encode_output_bit,
    viterbi_decode,
    viterbi_decode_soft,
)
from repro.wifi.interleaver import (
    deinterleave,
    deinterleave_permutation,
    deinterleave_soft,
    interleave,
    interleave_permutation,
    source_index,
)
from repro.wifi.ofdm import (
    TIME_SCALE,
    extract_subcarriers,
    map_subcarriers,
    ofdm_demodulate,
    ofdm_modulate,
    symbols_to_waveform,
    waveform_to_symbols,
)
from repro.wifi.params import (
    BITS_PER_SUBCARRIER,
    CP_LENGTH,
    DATA_SUBCARRIERS,
    FFT_SIZE,
    MCS_TABLE,
    N_DATA_SUBCARRIERS,
    PAPER_MCS_NAMES,
    PILOT_SUBCARRIERS,
    SAMPLE_RATE_HZ,
    SUBCARRIER_SPACING_HZ,
    SYMBOL_DURATION_US,
    SYMBOL_LENGTH,
    Mcs,
    average_constellation_power,
    data_subcarrier_index,
    fft_bin,
    get_mcs,
    subcarrier_frequency_hz,
)
from repro.wifi.ppdu import (
    SERVICE_BITS,
    TAIL_BITS,
    DataFieldLayout,
    assemble_data_field,
    descramble_data_field,
    extract_psdu,
    plan_data_field,
    scramble_data_field,
)
from repro.wifi.preamble import (
    PREAMBLE_DURATION_US,
    PREAMBLE_LENGTH,
    detect_preamble,
    long_training_field,
    preamble_waveform,
    short_training_field,
)
from repro.wifi.puncture import (
    PUNCTURE_PATTERNS,
    depuncture,
    depuncture_soft,
    is_punctured,
    kept_indices,
    puncture,
    punctured_length,
    transmitted_index,
)
from repro.wifi.receiver import WifiReceiver, WifiReception, decode_frames
from repro.wifi.scrambler import DEFAULT_SEED, Scrambler, descramble, scramble
from repro.wifi.streaming import (
    WifiDecodeStage,
    WifiFrameWindow,
    WifiStreamReceiver,
    WifiSyncStage,
    sync_capture,
)
from repro.wifi.signal_field import (
    RATE_CODES,
    build_signal_bits,
    decode_signal_symbol,
    encode_signal_symbol,
    parse_signal_bits,
)
from repro.wifi.spectral import (
    band_power,
    band_power_db,
    power_spectrum,
    subcarrier_powers,
    total_power_db,
)
from repro.wifi.transmitter import (
    WifiFrame,
    WifiTransmitter,
    encode_data_symbols,
    encode_data_symbols_batch,
    encode_frames,
)

__all__ = [name for name in dir() if not name.startswith("_")]
