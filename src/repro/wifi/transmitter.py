"""Standard 802.11 OFDM transmitter (Fig. 1 of the paper).

The chain is: scramble -> convolutional encode -> puncture -> interleave ->
QAM modulate -> map onto OFDM subcarriers -> IFFT + CP, preceded by the
16 us preamble and the SIGNAL symbol.

The class exposes two entry points:

* :meth:`WifiTransmitter.transmit` — the plain standard path from PSDU bits.
* :meth:`WifiTransmitter.transmit_scrambled_field` — takes an
  already-scrambled DATA-field stream.  SledZig builds its transmit stream in
  the scrambled domain (paper Fig. 6), then hands it to this method so that
  every subsequent stage is *exactly* the standard one — the central
  compatibility claim of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.utils.bits import BitsLike, as_bits
from repro.wifi.constellation import modulate
from repro.wifi.convolutional import ConvolutionalEncoder
from repro.wifi.interleaver import interleave
from repro.wifi.ofdm import map_subcarriers, ofdm_modulate
from repro.wifi.params import Mcs, get_mcs
from repro.wifi.ppdu import (
    DataFieldLayout,
    assemble_data_field,
    plan_data_field,
    scramble_data_field,
)
from repro.wifi.preamble import preamble_waveform
from repro.wifi.puncture import puncture
from repro.wifi.scrambler import DEFAULT_SEED, Scrambler
from repro.wifi.signal_field import encode_signal_symbol


@dataclass
class WifiFrame:
    """A fully assembled PPDU plus the intermediate stages tests need.

    Attributes:
        mcs: modulation and coding scheme of the DATA field.
        layout: SERVICE/PSDU/tail/pad index layout.
        scrambled_field: the scrambled DATA-field bit stream actually fed to
            the encoder (after tail zeroing / SledZig insertion).
        data_spectra: per-DATA-symbol 64-bin frequency vectors.
        waveform: complex baseband samples (preamble + SIGNAL + DATA).
        psdu_octets: value carried in the SIGNAL LENGTH field.
    """

    mcs: Mcs
    layout: DataFieldLayout
    scrambled_field: np.ndarray
    data_spectra: List[np.ndarray] = field(repr=False, default_factory=list)
    waveform: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0))
    psdu_octets: int = 0

    @property
    def n_data_symbols(self) -> int:
        """Number of OFDM DATA symbols in the frame."""
        return len(self.data_spectra)

    @property
    def duration_us(self) -> float:
        """On-air duration: 16 us preamble + 4 us SIGNAL + 4 us per symbol."""
        return 16.0 + 4.0 + 4.0 * self.n_data_symbols


def encode_data_symbols(
    scrambled_field: BitsLike, mcs: Mcs, first_symbol_index: int = 1
) -> List[np.ndarray]:
    """Run the post-scrambler transmit chain on a scrambled DATA field.

    Returns one 64-bin spectrum per OFDM symbol.  *first_symbol_index* sets
    the pilot-polarity index of the first DATA symbol (the SIGNAL symbol is
    index 0).
    """
    bits = as_bits(scrambled_field)
    if bits.size % mcs.n_dbps:
        raise EncodingError(
            f"scrambled field of {bits.size} bits is not whole OFDM symbols "
            f"of {mcs.n_dbps} data bits"
        )
    encoder = ConvolutionalEncoder()
    mother = encoder.encode(bits)
    coded = puncture(mother, mcs.coding_rate)
    interleaved = interleave(coded, mcs.n_cbps, mcs.n_bpsc)
    spectra: List[np.ndarray] = []
    n_symbols = bits.size // mcs.n_dbps
    for s in range(n_symbols):
        chunk = interleaved[s * mcs.n_cbps : (s + 1) * mcs.n_cbps]
        points = modulate(chunk, mcs.modulation)
        spectra.append(map_subcarriers(points, symbol_index=first_symbol_index + s))
    return spectra


class WifiTransmitter:
    """Standard-compliant 802.11 OFDM transmitter for one MCS."""

    def __init__(self, mcs: "Mcs | str", scrambler_seed: int = DEFAULT_SEED) -> None:
        self.mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
        if self.mcs.modulation == "bpsk" and self.mcs.coding_rate == "1/2":
            # Allowed, but note: SledZig needs QAM; plain frames are fine.
            pass
        self.scrambler = Scrambler(scrambler_seed)

    def transmit(self, psdu_bits: BitsLike) -> WifiFrame:
        """Build the complete PPDU waveform for a PSDU (whole octets)."""
        psdu = as_bits(psdu_bits)
        if psdu.size == 0 or psdu.size % 8:
            raise ConfigurationError(
                f"PSDU must be a non-empty whole number of octets, got "
                f"{psdu.size} bits"
            )
        layout = plan_data_field(psdu.size, self.mcs)
        unscrambled = assemble_data_field(psdu, self.mcs)
        scrambled = scramble_data_field(unscrambled, layout, self.scrambler)
        return self.transmit_scrambled_field(scrambled, layout, psdu.size // 8)

    def transmit_scrambled_field(
        self,
        scrambled_field: BitsLike,
        layout: DataFieldLayout,
        psdu_octets: Optional[int] = None,
    ) -> WifiFrame:
        """Assemble a PPDU from an already-scrambled DATA field stream.

        This is the SledZig entry point: the caller (the SledZig encoder)
        has built the scrambled stream with extra bits inserted; everything
        from the convolutional encoder onwards is untouched standard code.
        """
        scrambled = as_bits(scrambled_field)
        if psdu_octets is None:
            psdu_octets = max(1, -(-layout.n_psdu_bits // 8))
        spectra = encode_data_symbols(scrambled, self.mcs)
        if len(spectra) != layout.n_symbols:
            raise EncodingError(
                f"scrambled stream made {len(spectra)} symbols, layout "
                f"expects {layout.n_symbols}"
            )
        signal_spectrum = encode_signal_symbol(self.mcs, psdu_octets)
        pieces = [preamble_waveform(), ofdm_modulate(signal_spectrum)]
        pieces.extend(ofdm_modulate(spec) for spec in spectra)
        waveform = np.concatenate(pieces)
        return WifiFrame(
            mcs=self.mcs,
            layout=layout,
            scrambled_field=scrambled,
            data_spectra=spectra,
            waveform=waveform,
            psdu_octets=psdu_octets,
        )
