"""Standard 802.11 OFDM transmitter (Fig. 1 of the paper).

The chain is: scramble -> convolutional encode -> puncture -> interleave ->
QAM modulate -> map onto OFDM subcarriers -> IFFT + CP, preceded by the
16 us preamble and the SIGNAL symbol.  Every stage runs on the batched
kernels in :mod:`repro.dsp`, so a whole frame — or a whole batch of frames —
moves through each stage in one vectorized call.

The class exposes two families of entry points:

* :meth:`WifiTransmitter.transmit` / :meth:`WifiTransmitter.transmit_frames`
  — the plain standard path from PSDU bits, scalar and batched.
* :meth:`WifiTransmitter.transmit_scrambled_field` /
  :meth:`WifiTransmitter.transmit_scrambled_fields` — take
  already-scrambled DATA-field streams.  SledZig builds its transmit stream
  in the scrambled domain (paper Fig. 6), then hands it to these methods so
  that every subsequent stage is *exactly* the standard one — the central
  compatibility claim of the paper.

:func:`encode_frames` is the module-level batch convenience: payloads in,
waveforms out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dsp.ofdm import map_subcarriers_batch, ofdm_modulate_batch
from repro.dsp.qam import modulate_batch
from repro.dsp.scrambling import scramble_batch
from repro.dsp.trellis import conv_encode_batch
from repro.errors import ConfigurationError, EncodingError
from repro.utils.bits import BitsLike, as_bits
from repro.wifi.interleaver import interleave_permutation
from repro.wifi.params import Mcs, get_mcs
from repro.wifi.ppdu import (
    SERVICE_BITS,
    TAIL_BITS,
    DataFieldLayout,
    plan_data_field,
)
from repro.wifi.preamble import preamble_waveform
from repro.wifi.puncture import puncture_blocks
from repro.wifi.scrambler import DEFAULT_SEED, Scrambler
from repro.wifi.signal_field import encode_signal_symbol


@dataclass
class WifiFrame:
    """A fully assembled PPDU plus the intermediate stages tests need.

    Attributes:
        mcs: modulation and coding scheme of the DATA field.
        layout: SERVICE/PSDU/tail/pad index layout.
        scrambled_field: the scrambled DATA-field bit stream actually fed to
            the encoder (after tail zeroing / SledZig insertion).
        data_spectra: per-DATA-symbol 64-bin frequency vectors.
        waveform: complex baseband samples (preamble + SIGNAL + DATA).
        psdu_octets: value carried in the SIGNAL LENGTH field.
    """

    mcs: Mcs
    layout: DataFieldLayout
    scrambled_field: np.ndarray
    data_spectra: List[np.ndarray] = field(repr=False, default_factory=list)
    waveform: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0))
    psdu_octets: int = 0

    @property
    def n_data_symbols(self) -> int:
        """Number of OFDM DATA symbols in the frame."""
        return len(self.data_spectra)

    @property
    def duration_us(self) -> float:
        """On-air duration: 16 us preamble + 4 us SIGNAL + 4 us per symbol."""
        return 16.0 + 4.0 + 4.0 * self.n_data_symbols


def encode_data_symbols_batch(
    scrambled_fields: np.ndarray, mcs: Mcs, first_symbol_index: int = 1
) -> np.ndarray:
    """Run the post-scrambler transmit chain on a batch of DATA fields.

    Args:
        scrambled_fields: ``(batch, n_bits)`` scrambled streams, all the same
            length and a whole number of OFDM symbols.
        mcs: modulation and coding scheme.
        first_symbol_index: pilot-polarity index of the first DATA symbol
            (the SIGNAL symbol is index 0).

    Returns ``(batch, n_symbols, 64)`` frequency-domain DATA symbols.
    """
    bits = np.asarray(scrambled_fields, dtype=np.uint8)
    if bits.ndim != 2:
        raise EncodingError("encode_data_symbols_batch expects (batch, n_bits)")
    if bits.shape[1] == 0 or bits.shape[1] % mcs.n_dbps:
        raise EncodingError(
            f"scrambled field of {bits.shape[1]} bits is not whole OFDM "
            f"symbols of {mcs.n_dbps} data bits"
        )
    n_frames = bits.shape[0]
    n_symbols = bits.shape[1] // mcs.n_dbps
    mother, _ = conv_encode_batch(bits)
    coded = puncture_blocks(mother, mcs.coding_rate)
    # Interleave all symbols of all frames with one fancy-indexing op.
    blocks = coded.reshape(-1, mcs.n_cbps)
    interleaved = np.empty_like(blocks)
    interleaved[:, interleave_permutation(mcs.n_cbps, mcs.n_bpsc)] = blocks
    points = modulate_batch(interleaved, mcs.modulation)  # (B*S, 48)
    symbol_indices = np.tile(
        np.arange(n_symbols) + first_symbol_index, n_frames
    )
    spectra = map_subcarriers_batch(points, symbol_indices)
    return spectra.reshape(n_frames, n_symbols, 64)


def encode_data_symbols(
    scrambled_field: BitsLike, mcs: Mcs, first_symbol_index: int = 1
) -> List[np.ndarray]:
    """Run the post-scrambler transmit chain on one scrambled DATA field.

    Returns one 64-bin spectrum per OFDM symbol.  *first_symbol_index* sets
    the pilot-polarity index of the first DATA symbol (the SIGNAL symbol is
    index 0).
    """
    bits = as_bits(scrambled_field)
    spectra = encode_data_symbols_batch(bits[None, :], mcs, first_symbol_index)
    return list(spectra[0])


class WifiTransmitter:
    """Standard-compliant 802.11 OFDM transmitter for one MCS."""

    def __init__(self, mcs: "Mcs | str", scrambler_seed: int = DEFAULT_SEED) -> None:
        self.mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
        if self.mcs.modulation == "bpsk" and self.mcs.coding_rate == "1/2":
            # Allowed, but note: SledZig needs QAM; plain frames are fine.
            pass
        self.scrambler = Scrambler(scrambler_seed)

    def transmit(self, psdu_bits: BitsLike) -> WifiFrame:
        """Build the complete PPDU waveform for a PSDU (whole octets)."""
        return self.transmit_frames([psdu_bits])[0]

    def transmit_frames(self, psdu_payloads: Sequence[BitsLike]) -> List[WifiFrame]:
        """Build PPDUs for many PSDUs, batching equal-length payloads.

        Payloads of the same bit length share one DATA-field layout and run
        through scrambling, coding, interleaving, QAM and the IFFT as a
        single batch; results come back in input order.
        """
        payloads = [as_bits(p) for p in psdu_payloads]
        for psdu in payloads:
            if psdu.size == 0 or psdu.size % 8:
                raise ConfigurationError(
                    f"PSDU must be a non-empty whole number of octets, got "
                    f"{psdu.size} bits"
                )
        groups: Dict[int, List[int]] = {}
        for idx, psdu in enumerate(payloads):
            groups.setdefault(psdu.size, []).append(idx)
        frames: List[Optional[WifiFrame]] = [None] * len(payloads)
        for n_bits, indices in groups.items():
            layout = plan_data_field(n_bits, self.mcs)
            fields = np.zeros((len(indices), layout.n_total_bits), dtype=np.uint8)
            for row, idx in enumerate(indices):
                fields[row, SERVICE_BITS : SERVICE_BITS + n_bits] = payloads[idx]
            scrambled = scramble_batch(fields, self.scrambler.seed)
            scrambled[:, layout.tail_start : layout.tail_start + TAIL_BITS] = 0
            built = self.transmit_scrambled_fields(scrambled, layout, n_bits // 8)
            for row, idx in enumerate(indices):
                frames[idx] = built[row]
        return frames  # type: ignore[return-value]

    def transmit_scrambled_field(
        self,
        scrambled_field: BitsLike,
        layout: DataFieldLayout,
        psdu_octets: Optional[int] = None,
    ) -> WifiFrame:
        """Assemble a PPDU from an already-scrambled DATA field stream.

        This is the SledZig entry point: the caller (the SledZig encoder)
        has built the scrambled stream with extra bits inserted; everything
        from the convolutional encoder onwards is untouched standard code.
        """
        scrambled = as_bits(scrambled_field)
        return self.transmit_scrambled_fields(
            scrambled[None, :], layout, psdu_octets
        )[0]

    def transmit_scrambled_fields(
        self,
        scrambled_fields: np.ndarray,
        layout: DataFieldLayout,
        psdu_octets: Optional[int] = None,
    ) -> List[WifiFrame]:
        """Batch form of :meth:`transmit_scrambled_field`.

        All rows of *scrambled_fields* share *layout* (and hence the SIGNAL
        symbol); the whole batch is coded, modulated and IFFT'd together.
        """
        scrambled = np.asarray(scrambled_fields, dtype=np.uint8)
        if scrambled.ndim != 2:
            raise EncodingError(
                "transmit_scrambled_fields expects a (batch, n_bits) array"
            )
        if psdu_octets is None:
            psdu_octets = max(1, -(-layout.n_psdu_bits // 8))
        spectra = encode_data_symbols_batch(scrambled, self.mcs)
        if spectra.shape[1] != layout.n_symbols:
            raise EncodingError(
                f"scrambled stream made {spectra.shape[1]} symbols, layout "
                f"expects {layout.n_symbols}"
            )
        n_frames, n_symbols = spectra.shape[:2]
        signal_spectrum = encode_signal_symbol(self.mcs, psdu_octets)
        head = np.concatenate(
            [preamble_waveform(), ofdm_modulate_batch(signal_spectrum[None, :])[0]]
        )
        data_waves = ofdm_modulate_batch(spectra.reshape(-1, 64)).reshape(
            n_frames, -1
        )
        frames = []
        for row in range(n_frames):
            frames.append(
                WifiFrame(
                    mcs=self.mcs,
                    layout=layout,
                    scrambled_field=scrambled[row],
                    data_spectra=list(spectra[row]),
                    waveform=np.concatenate([head, data_waves[row]]),
                    psdu_octets=psdu_octets,
                )
            )
        return frames


def encode_frames(
    psdu_payloads: Sequence[BitsLike],
    mcs: "Mcs | str",
    scrambler_seed: int = DEFAULT_SEED,
) -> List[np.ndarray]:
    """Batch-encode PSDUs straight to PPDU waveforms.

    Thin convenience over :meth:`WifiTransmitter.transmit_frames` returning
    just the complex baseband waveforms, in input order.
    """
    transmitter = WifiTransmitter(mcs, scrambler_seed)
    return [frame.waveform for frame in transmitter.transmit_frames(psdu_payloads)]
