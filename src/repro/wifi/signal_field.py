"""SIGNAL field (PLCP header) encode/decode.

The SIGNAL symbol is one BPSK rate-1/2 OFDM symbol carrying 24 bits:

    RATE (4) | reserved (1) | LENGTH (12, LSB first) | parity (1, even) | tail (6)

It is never scrambled and never SledZig-encoded, and it tells the receiver
the modulation and coding rate — two of the three pieces of information the
SledZig receiver needs to strip extra bits (paper Section IV-G); the third
(the ZigBee channel) is recovered from the constellation itself.

802.11a defines RATE codes for eight modes; the 256-QAM modes the paper
evaluates come from later amendments, so this library assigns them unused
4-bit codes (documented in :data:`RATE_CODES`) to keep a self-contained
header format.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, DecodingError
from repro.utils.bits import as_bits, bits_to_int, int_to_bits
from repro.wifi.constellation import demodulate_hard, modulate
from repro.wifi.convolutional import conv_encode, viterbi_decode
from repro.wifi.interleaver import deinterleave, interleave
from repro.wifi.ofdm import extract_subcarriers, map_subcarriers
from repro.wifi.params import Mcs, get_mcs

#: RATE code (MSB-first) for each supported MCS name.  The first eight are
#: the 802.11a codes; the last three are library-assigned extensions.
RATE_CODES = {
    "bpsk-1/2": 0b1101,
    "bpsk-3/4": 0b1111,
    "qpsk-1/2": 0b0101,
    "qpsk-3/4": 0b0111,
    "qam16-1/2": 0b1001,
    "qam16-3/4": 0b1011,
    "qam64-2/3": 0b0001,
    "qam64-3/4": 0b0011,
    "qam64-5/6": 0b0010,
    "qam256-3/4": 0b0110,
    "qam256-5/6": 0b1110,
}

_MCS_BY_CODE = {code: name for name, code in RATE_CODES.items()}

#: Maximum PSDU length the 12-bit LENGTH field can express, in octets.
MAX_LENGTH_OCTETS: int = 4095

#: Number of information bits in the SIGNAL field.
SIGNAL_BITS: int = 24


def build_signal_bits(mcs: Mcs, length_octets: int) -> np.ndarray:
    """Assemble the 24 SIGNAL bits for the given MCS and PSDU length."""
    if mcs.name not in RATE_CODES:
        raise ConfigurationError(f"no RATE code for MCS {mcs.name}")
    if not 1 <= length_octets <= MAX_LENGTH_OCTETS:
        raise ConfigurationError(
            f"LENGTH must be 1..{MAX_LENGTH_OCTETS} octets, got {length_octets}"
        )
    rate_bits = int_to_bits(RATE_CODES[mcs.name], 4, lsb_first=False)
    length_bits = int_to_bits(length_octets, 12, lsb_first=True)
    body = np.concatenate([rate_bits, [0], length_bits])
    parity = int(body.sum()) & 1
    return np.concatenate([body, [parity], np.zeros(6, dtype=np.uint8)]).astype(
        np.uint8
    )


def parse_signal_bits(bits: np.ndarray) -> Tuple[Mcs, int]:
    """Parse 24 SIGNAL bits back into (MCS, PSDU length in octets)."""
    arr = as_bits(bits)
    if arr.size != SIGNAL_BITS:
        raise DecodingError(f"SIGNAL field must be 24 bits, got {arr.size}")
    if int(arr[:17].sum()) & 1 != int(arr[17]):
        raise DecodingError("SIGNAL parity check failed")
    rate_code = bits_to_int(arr[:4], lsb_first=False)
    name = _MCS_BY_CODE.get(rate_code)
    if name is None:
        raise DecodingError(f"unknown RATE code {rate_code:04b}")
    length = bits_to_int(arr[5:17], lsb_first=True)
    if length == 0:
        raise DecodingError("SIGNAL LENGTH of zero octets")
    return get_mcs(name), length


def encode_signal_symbol(mcs: Mcs, length_octets: int) -> np.ndarray:
    """Produce the SIGNAL symbol's 64-bin frequency-domain spectrum."""
    bits = build_signal_bits(mcs, length_octets)
    coded = conv_encode(bits)
    interleaved = interleave(coded, n_cbps=48, n_bpsc=1)
    points = modulate(interleaved, "bpsk")
    return map_subcarriers(points, symbol_index=0)


def decode_signal_symbol(spectrum: np.ndarray) -> Tuple[Mcs, int]:
    """Recover (MCS, length) from a received SIGNAL symbol spectrum."""
    data_points, _ = extract_subcarriers(spectrum)
    bits = demodulate_hard(data_points, "bpsk")
    coded = deinterleave(bits, n_cbps=48, n_bpsc=1)
    decoded = viterbi_decode(coded, n_data_bits=SIGNAL_BITS)
    return parse_signal_bits(decoded)
