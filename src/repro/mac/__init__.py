"""Discrete-event WiFi/ZigBee coexistence simulator (paper Figs. 14-16).

Two engine configurations share the node state machines: the two-node
paper reproduction (``run_coexistence``, pinned bit-identically by
``tests/mac/``) and the multi-cell scenario engine (``run_scenario``) for
dense WiFi/ZigBee fields on the partitioned medium.
"""

from repro.mac.config import (
    WIFI_CW_MIN,
    WIFI_DIFS_US,
    WIFI_PREAMBLE_US,
    WIFI_SCENARIO_CHANNELS,
    WIFI_SLOT_US,
    CoexistenceConfig,
    Topology,
    WifiConfig,
    ZigbeeConfig,
    zigbee_wifi_overlap,
)
from repro.mac.events import CalendarQueue, EventScheduler
from repro.mac.medium import (
    Medium,
    MediumView,
    PartitionedMedium,
    SpatialIndex,
    WifiBurst,
    ZigbeeBurst,
)
from repro.mac.scenario import (
    CellSpec,
    ScenarioConfig,
    ScenarioResult,
    SensorSpec,
    grid_scenario,
    run_scenario,
)
from repro.mac.traffic import (
    CBRTraffic,
    OnOffTraffic,
    PoissonTraffic,
    TrafficSpec,
)
from repro.mac.multilink import LinkPlacement, MultiLinkResult, run_multilink
from repro.mac.rate_control import (
    RateChoice,
    effective_goodput_mbps,
    select_mcs,
    select_mcs_for_protection,
)
from repro.mac.simulator import (
    CoexistenceResult,
    SweepPoint,
    run_coexistence,
    sweep,
)
from repro.mac.wifi_node import CellAttachment, WifiNode, WifiStats
from repro.mac.zigbee_node import ZigbeeLink, ZigbeeStats

__all__ = [name for name in dir() if not name.startswith("_")]
