"""Discrete-event WiFi/ZigBee coexistence simulator (paper Figs. 14-16)."""

from repro.mac.config import (
    WIFI_CW_MIN,
    WIFI_DIFS_US,
    WIFI_PREAMBLE_US,
    WIFI_SLOT_US,
    CoexistenceConfig,
    Topology,
    WifiConfig,
    ZigbeeConfig,
)
from repro.mac.events import EventScheduler
from repro.mac.medium import Medium, WifiBurst, ZigbeeBurst
from repro.mac.multilink import LinkPlacement, MultiLinkResult, run_multilink
from repro.mac.rate_control import (
    RateChoice,
    effective_goodput_mbps,
    select_mcs,
    select_mcs_for_protection,
)
from repro.mac.simulator import (
    CoexistenceResult,
    SweepPoint,
    run_coexistence,
    sweep,
)
from repro.mac.wifi_node import WifiNode, WifiStats
from repro.mac.zigbee_node import ZigbeeLink, ZigbeeStats

__all__ = [name for name in dir() if not name.startswith("_")]
