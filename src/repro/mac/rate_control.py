"""WiFi rate selection under SledZig (paper Section V-D2's fallback).

The paper notes that when conditions tighten, "the WiFi link can adapt to
the settings with lower SNR threshold to enable data transmission".  This
module implements that adaptation as a goodput maximiser: among the MCS
ladder, pick the mode with the highest *effective* rate

    goodput = PHY rate x (1 - SledZig loss on the protected channel)

subject to the link SNR clearing the mode's minimum (paper Table IV
column).  SledZig changes the trade-off in a non-obvious way: a higher QAM
needs more SNR but also buys a deeper in-band notch (Fig. 12), so a link
with headroom may *prefer* QAM-256 even when QAM-64 already fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.channel.calibration import sledzig_decrease_db
from repro.errors import ConfigurationError
from repro.sledzig.analysis import throughput_loss
from repro.wifi.params import PAPER_MCS_NAMES, Mcs, get_mcs


@dataclass(frozen=True)
class RateChoice:
    """Outcome of one rate-selection decision.

    Attributes:
        mcs: the selected scheme (None when no mode fits the SNR).
        goodput_mbps: effective application rate after SledZig overhead.
        protection_db: in-band decrease delivered to the protected channel
            (0 when SledZig is off).
    """

    mcs: Optional[Mcs]
    goodput_mbps: float
    protection_db: float


def effective_goodput_mbps(
    mcs: "Mcs | str", sledzig_channel: Optional[int]
) -> float:
    """PHY rate minus the Table IV overhead for the protected channel."""
    mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
    if sledzig_channel is None:
        return mcs.data_rate_mbps
    return mcs.data_rate_mbps * (1.0 - throughput_loss(mcs, sledzig_channel))


def select_mcs(
    snr_db: float,
    sledzig_channel: Optional[int] = None,
    candidates: Sequence[str] = PAPER_MCS_NAMES,
    margin_db: float = 0.0,
) -> RateChoice:
    """Highest-goodput MCS whose SNR requirement (plus margin) is met.

    Args:
        snr_db: current link SNR at the WiFi receiver.
        sledzig_channel: CH1..CH4 index when protecting a ZigBee channel,
            else None (plain WiFi).
        candidates: MCS names to consider.
        margin_db: extra SNR headroom demanded above each mode's minimum
            (a deployment knob against fading).
    """
    if sledzig_channel is not None and not 1 <= sledzig_channel <= 4:
        raise ConfigurationError(
            f"sledzig_channel must be 1..4 or None, got {sledzig_channel}"
        )
    best: Optional[Tuple[float, Mcs]] = None
    for name in candidates:
        mcs = get_mcs(name)
        if snr_db < mcs.min_snr_db + margin_db:
            continue
        goodput = effective_goodput_mbps(mcs, sledzig_channel)
        if best is None or goodput > best[0]:
            best = (goodput, mcs)
    if best is None:
        return RateChoice(mcs=None, goodput_mbps=0.0, protection_db=0.0)
    goodput, mcs = best
    protection = (
        sledzig_decrease_db(mcs.modulation, sledzig_channel)
        if sledzig_channel is not None
        else 0.0
    )
    return RateChoice(mcs=mcs, goodput_mbps=goodput, protection_db=protection)


def select_mcs_for_protection(
    snr_db: float,
    sledzig_channel: int,
    min_protection_db: float,
    candidates: Sequence[str] = PAPER_MCS_NAMES,
    margin_db: float = 0.0,
) -> RateChoice:
    """Highest-goodput MCS that also guarantees a minimum in-band decrease.

    This is the coexistence-first policy: the ZigBee neighbour needs at
    least *min_protection_db* of relief (e.g. 10 dB to clear its SINR
    threshold at a known distance); among the modes delivering it, take the
    fastest that the link SNR supports.
    """
    deliverable = [
        name
        for name in candidates
        if sledzig_decrease_db(get_mcs(name).modulation, sledzig_channel)
        >= min_protection_db
    ]
    if not deliverable:
        return RateChoice(mcs=None, goodput_mbps=0.0, protection_db=0.0)
    return select_mcs(snr_db, sledzig_channel, deliverable, margin_db)
