"""ZigBee link (transmitter + receiver) for the coexistence simulator.

The transmitter runs the unslotted CSMA-CA of IEEE 802.15.4: a random
backoff of 0..2^BE - 1 periods of 320 us, then an 8-symbol (128 us)
energy-detect CCA; busy raises BE and retries, and after
macMaxCSMABackoffs failures the packet is dropped — exactly the timing
asymmetry (Section II-B) that makes ZigBee lose the channel race.

Reception is evaluated symbol by symbol against the medium's interference
trace: each 16 us symbol sees its time-averaged interference power, maps to
SINR, then to a symbol error probability via the DSSS correlation model.
The SHR preamble tolerates corrupted symbols (redundancy, Section IV-F);
SFD, PHR and every payload symbol must decode.  A WiFi preamble window at
full power therefore kills precisely the symbols it crosses — the Fig. 15
limitation emerges from the mechanics rather than a special case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.channel.propagation import distance, zigbee_rssi
from repro.errors import SimulationError
from repro.mac.config import CoexistenceConfig
from repro.mac.events import EventScheduler
from repro.mac.medium import Medium
from repro.mac.traffic import TrafficSpec, build_sampler
from repro.utils.db import db_to_linear, linear_to_db
from repro.zigbee.frame import frame_duration_us
from repro.zigbee.link_model import symbol_error_probability
from repro.zigbee.params import (
    BACKOFF_PERIOD_US,
    CCA_DURATION_US,
    MAX_BE,
    MAX_CSMA_BACKOFFS,
    MIN_BE,
    PREAMBLE_SYMBOLS,
    SYMBOL_DURATION_US,
)


@dataclass
class ZigbeeStats:
    """Counters accumulated by the ZigBee link.

    Attributes:
        packets_attempted: packets entering CSMA-CA.
        packets_sent: packets actually put on air.
        packets_delivered: packets decoded by the receiver.
        packets_dropped_cca: packets abandoned after CCA failures.
        packets_failed: transmitted packets lost to interference/noise.
        payload_bits_delivered: successfully received payload bits.
        cca_attempts / cca_busy: clear-channel assessments and busy verdicts.
    """

    packets_attempted: int = 0
    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped_cca: int = 0
    packets_failed: int = 0
    payload_bits_delivered: float = 0.0
    cca_attempts: int = 0
    cca_busy: int = 0
    #: Traffic-model packet arrivals (0 in the legacy saturated mode,
    #: where packets are generated back-to-back rather than arriving).
    arrivals: int = 0
    #: Arrivals discarded because the transmit queue was full.
    queue_dropped: int = 0

    def throughput_kbps(self, duration_us: float) -> float:
        """Delivered payload throughput in kbit/s."""
        if duration_us <= 0:
            raise SimulationError("duration must be positive")
        return self.payload_bits_delivered / duration_us * 1000.0

    @property
    def delivery_ratio(self) -> float:
        """Delivered / attempted packets (0 when nothing was attempted)."""
        if self.packets_attempted == 0:
            return 0.0
        return self.packets_delivered / self.packets_attempted


def _clamped_distance(
    a: "tuple[float, float]", b: "tuple[float, float]"
) -> float:
    """Pairwise distance floored at 5 cm (never raises on coincidence).

    Scenario geometry can legitimately place a node arbitrarily close to
    (or on top of) the legacy topology's WiFi origin; the partitioned
    medium ignores these legacy distance arguments anyway.
    """
    return max(math.hypot(a[0] - b[0], a[1] - b[1]), 0.05)


class ZigbeeLink:
    """A ZigBee transmitter-receiver pair (saturated or traffic-driven).

    With ``traffic=None`` (the default) the link is *saturated*: a new
    packet enters CSMA-CA the instant the previous one finishes — the
    paper-reproduction mode, pinned bit-identically by ``tests/mac/``.
    With a :mod:`repro.mac.traffic` spec, packets instead *arrive* from
    the sampler; arrivals during a transmission wait in a bounded FIFO
    queue (tail-drop beyond ``queue_limit``).
    """

    def __init__(
        self,
        config: CoexistenceConfig,
        scheduler: EventScheduler,
        medium: Medium,
        rng: np.random.Generator,
        link_id: int = 0,
        tx_position: "tuple[float, float] | None" = None,
        rx_position: "tuple[float, float] | None" = None,
        traffic: TrafficSpec = None,
        queue_limit: int = 8,
    ) -> None:
        if queue_limit < 0:
            raise SimulationError(f"queue_limit must be >= 0, got {queue_limit}")
        self.config = config
        self.scheduler = scheduler
        self.medium = medium
        self.rng = rng
        self.stats = ZigbeeStats()
        self.link_id = link_id
        topo = config.topology
        self.tx_position = tx_position or topo.zigbee_tx
        self.rx_position = rx_position or topo.zigbee_rx
        self.d_tx_to_wifi = _clamped_distance(self.tx_position, topo.wifi_tx)
        self.d_rx_to_wifi = _clamped_distance(self.rx_position, topo.wifi_tx)
        self.d_link = distance(self.tx_position, self.rx_position)
        self.signal_db = zigbee_rssi(
            self.d_link, config.zigbee.tx_gain, config.calibration
        )
        self.packet_duration_us = frame_duration_us(config.zigbee.payload_octets)
        self._nb = 0
        self._be = MIN_BE
        self._sampler = build_sampler(traffic)
        self.queue_limit = queue_limit
        self._queued = 0
        self._idle = True

    def start(self) -> None:
        """Queue the first packet (saturated) or await the first arrival."""
        if self._sampler is None:
            self._next_packet()
            return
        self._schedule_arrival()

    def _schedule_arrival(self) -> None:
        interval = self._sampler.next_interval_us(self.rng)
        if interval is None:
            return  # degenerate traffic model: no arrivals, ever
        self.scheduler.schedule(interval, self._arrival)

    def _arrival(self) -> None:
        self.stats.arrivals += 1
        if self._idle:
            self._idle = False
            self._next_packet()
        elif self._queued < self.queue_limit:
            self._queued += 1
        else:
            self.stats.queue_dropped += 1
        self._schedule_arrival()

    def _next_packet(self) -> None:
        self.stats.packets_attempted += 1
        self._nb = 0
        self._be = MIN_BE
        self._backoff()

    def _backoff(self) -> None:
        periods = int(self.rng.integers(0, 2**self._be))
        self.scheduler.schedule(periods * BACKOFF_PERIOD_US, self._do_cca)

    def _do_cca(self) -> None:
        now = self.scheduler.now
        self.scheduler.schedule(CCA_DURATION_US, lambda: self._cca_result(now))

    def _cca_result(self, cca_start: float) -> None:
        self.stats.cca_attempts += 1
        wifi_level = self.medium.average_power_db(
            cca_start,
            cca_start + CCA_DURATION_US,
            self.d_tx_to_wifi,
            at_position=self.tx_position,
        )
        # Same-technology carrier sense: other ZigBee links on the channel.
        peer_level = self.medium.zigbee_average_power_db(
            cca_start,
            cca_start + CCA_DURATION_US,
            1.0,
            exclude_source=self.link_id,
            at_position=self.tx_position,
        )
        level = wifi_level
        if peer_level != float("-inf"):
            level = float(
                linear_to_db(db_to_linear(wifi_level) + db_to_linear(peer_level))
            )
        if level > self.config.zigbee.cca_threshold_db:
            self.stats.cca_busy += 1
            self._nb += 1
            self._be = min(self._be + 1, MAX_BE)
            if self._nb > MAX_CSMA_BACKOFFS:
                self.stats.packets_dropped_cca += 1
                self._finish_packet()
                return
            self._backoff()
            return
        self._transmit()

    def _transmit(self) -> None:
        from repro.channel.calibration import cc2420_power_dbm
        from repro.mac.medium import ZigbeeBurst

        start = self.scheduler.now
        end = start + self.packet_duration_us
        self.stats.packets_sent += 1
        self.medium.add_zigbee_burst(
            ZigbeeBurst(
                start_us=start,
                end_us=end,
                level_db_at_1m=self.config.calibration.zigbee_at_1m_db
                + cc2420_power_dbm(self.config.zigbee.tx_gain),
                source=self.link_id,
                position=self.tx_position,
            )
        )
        self.scheduler.schedule(
            self.packet_duration_us, lambda: self._evaluate_reception(start, end)
        )

    def _evaluate_reception(self, start: float, end: float) -> None:
        if self._packet_received(start, end):
            self.stats.packets_delivered += 1
            self.stats.payload_bits_delivered += 8 * self.config.zigbee.payload_octets
        else:
            self.stats.packets_failed += 1
        self._finish_packet()

    def _finish_packet(self) -> None:
        # Bound the medium's memory: nothing queries more than ~100 ms back.
        self.medium.prune_before(self.scheduler.now - 100_000.0)
        if self._sampler is None:
            # Saturated: the next packet is born after the processing delay.
            self.scheduler.schedule(
                self.config.zigbee.processing_delay_us, self._next_packet
            )
            return
        if self._queued > 0:
            self._queued -= 1
            self.scheduler.schedule(
                self.config.zigbee.processing_delay_us, self._next_packet
            )
        else:
            self._idle = True

    def _packet_received(self, start: float, end: float) -> bool:
        """Symbol-by-symbol SINR evaluation of one packet."""
        fade = (
            float(self.rng.normal(0.0, self.config.fading_sigma_db))
            if self.config.fading_sigma_db > 0
            else 0.0
        )
        signal = self.signal_db + fade
        noise_linear = db_to_linear(self.config.calibration.noise_floor_db)
        n_symbols = int(round((end - start) / SYMBOL_DURATION_US))
        trace = self.medium.interference_trace(
            start, end, self.d_rx_to_wifi, at_position=self.rx_position
        )
        # Peer-interference strategy, picked per medium generation.  The
        # partitioned medium hands over every peer burst in the packet
        # window once (path loss applied), so the per-symbol loop is plain
        # arithmetic; the legacy medium keeps its original per-symbol
        # query — that path is pinned bit-identically by the golden tests
        # — gated by a whole-packet probe (a window with no co-channel
        # energy has silent sub-intervals too, so skipping the per-symbol
        # queries cannot change a result).
        fetch_peers = getattr(self.medium, "zigbee_peer_bursts", None)
        peer_bursts = None
        has_peers = False
        if fetch_peers is not None:
            peer_bursts = fetch_peers(
                start, end, exclude_source=self.link_id,
                at_position=self.rx_position,
            )
        else:
            has_peers = (
                self.medium.zigbee_average_power_db(
                    start, end, 1.0, exclude_source=self.link_id,
                    at_position=self.rx_position,
                )
                != float("-inf")
            )

        preamble_errors = 0
        for sym in range(n_symbols):
            t0 = start + sym * SYMBOL_DURATION_US
            t1 = t0 + SYMBOL_DURATION_US
            interference = 0.0
            for seg_start, seg_end, level in trace:
                overlap = min(seg_end, t1) - max(seg_start, t0)
                if overlap <= 0 or level == float("-inf"):
                    continue
                interference += db_to_linear(level) * overlap
            interference /= SYMBOL_DURATION_US
            # Co-channel ZigBee peers (multi-link scenarios) interfere too.
            if peer_bursts is not None:
                peer_acc = 0.0
                for burst_start, burst_end, linear in peer_bursts:
                    peer_overlap = min(burst_end, t1) - max(burst_start, t0)
                    if peer_overlap > 0:
                        peer_acc += linear * peer_overlap
                interference += peer_acc / SYMBOL_DURATION_US
            elif has_peers:
                peer = self.medium.zigbee_average_power_db(
                    t0, t1, 1.0, exclude_source=self.link_id,
                    at_position=self.rx_position,
                )
                if peer != float("-inf"):
                    interference += db_to_linear(peer)
            sinr_db = signal - float(linear_to_db(interference + noise_linear))
            ser = symbol_error_probability(sinr_db)
            failed = bool(self.rng.random() < ser)
            if sym < PREAMBLE_SYMBOLS:
                preamble_errors += int(failed)
                if preamble_errors > PREAMBLE_SYMBOLS // 2:
                    return False  # preamble redundancy exhausted
            elif failed:
                return False  # SFD/PHR/payload symbols have no redundancy
        return True
