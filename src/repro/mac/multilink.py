"""Multi-link coexistence scenarios: several ZigBee links, one WiFi.

The paper's Fig. 4 motivates SledZig with two simultaneous failure modes —
links inside the WiFi carrier-sense range are silenced, links inside its
interference range are corrupted.  A multi-link scenario shows both at once
and how SledZig lifts them together, including the second-order effect the
single-link runs cannot express: ZigBee links also contend with *each
other* (same-technology CSMA), so freeing them from WiFi reintroduces
ordinary ZigBee contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.config import CoexistenceConfig
from repro.mac.events import EventScheduler
from repro.mac.medium import Medium
from repro.mac.wifi_node import WifiNode, WifiStats
from repro.mac.zigbee_node import ZigbeeLink, ZigbeeStats


@dataclass(frozen=True)
class LinkPlacement:
    """Where one ZigBee link sits.

    Attributes:
        tx: transmitter (x, y) in metres.
        rx: receiver (x, y) in metres.
    """

    tx: Tuple[float, float]
    rx: Tuple[float, float]


@dataclass
class MultiLinkResult:
    """Per-link outcomes of one multi-link run.

    Attributes:
        per_link: ZigBee counters in placement order.
        wifi: WiFi counters.
        duration_us: simulated time.
    """

    per_link: List[ZigbeeStats]
    wifi: WifiStats
    duration_us: float

    def throughput_kbps(self, index: int) -> float:
        """Delivered throughput of one link."""
        return self.per_link[index].throughput_kbps(self.duration_us)

    @property
    def total_zigbee_kbps(self) -> float:
        """Network-wide delivered ZigBee throughput."""
        return sum(
            stats.throughput_kbps(self.duration_us) for stats in self.per_link
        )


def run_multilink(
    config: CoexistenceConfig,
    placements: Sequence[LinkPlacement],
) -> MultiLinkResult:
    """Run one scenario with several ZigBee links sharing the channel.

    All links use ``config.zigbee`` (gain, payload, CCA threshold) and the
    WiFi/SledZig settings of ``config.wifi``; only their positions differ.
    Links carrier-sense both the WiFi signal and each other, and interfere
    with each other at their receivers.
    """
    if not placements:
        raise ConfigurationError("need at least one link placement")
    scheduler = EventScheduler()
    medium = Medium(config.calibration)
    rng = np.random.default_rng(config.seed)
    wifi = WifiNode(config, scheduler, medium, rng)
    links = [
        ZigbeeLink(
            config,
            scheduler,
            medium,
            np.random.default_rng(config.seed + 31 * (i + 1)),
            link_id=i + 1,
            tx_position=p.tx,
            rx_position=p.rx,
        )
        for i, p in enumerate(placements)
    ]
    wifi.start()
    for link in links:
        link.start()
    scheduler.run_until(config.duration_us)
    return MultiLinkResult(
        per_link=[link.stats for link in links],
        wifi=wifi.stats,
        duration_us=config.duration_us,
    )
