"""Traffic models for scenario-mode ZigBee sensors.

The two-node paper reproduction runs the ZigBee link *saturated*: a new
packet is enqueued the instant the previous one finishes.  Scenario-mode
sensors are duty-cycled — a field of two hundred saturated sensors says
nothing about coexistence, because the medium is wall-to-wall ZigBee
regardless of what WiFi does.  This module provides the arrival processes
the scenario engine draws packet inter-arrival times from:

* :class:`PoissonTraffic` — exponential inter-arrivals at a mean rate;
  the classic memoryless sensor-network reporting model.
* :class:`CBRTraffic` — constant bit rate: a packet every ``period_us``,
  the periodic sampling model (temperature every 500 ms).
* :class:`OnOffTraffic` — bursty ON/OFF: alternating exponential ON and
  OFF phases; packets arrive Poisson inside ON phases only.  Models
  event-triggered sensors (motion, alarms) whose load clumps.

Specs are frozen dataclasses (hashable, safe inside scenario configs that
cross process boundaries under ``--workers``); ``build()`` returns a
stateful sampler whose only entropy source is the per-node RNG stream
handed in at call time.  Samplers never consume RNG at construction, so a
node's draw sequence is a pure function of its own stream — the property
the determinism tests pin.

Sampler protocol::

    sampler.next_interval_us(rng) -> float | None

``None`` means "no further arrivals ever" (a degenerate spec such as an
ON/OFF model with a zero-duration ON phase); the scenario engine then
simply never schedules another packet for that node.  A ``None`` traffic
model at the node level means *saturated* — the legacy behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Union

from repro.errors import ConfigurationError


class TrafficSampler(Protocol):
    """Stateful arrival-process sampler (one per node)."""

    def next_interval_us(self, rng) -> Optional[float]:
        """Time from now to the next packet arrival, or None for never."""
        ...


@dataclass(frozen=True)
class PoissonTraffic:
    """Memoryless arrivals at ``rate_per_s`` packets per second."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ConfigurationError(
                f"Poisson rate must be >= 0, got {self.rate_per_s}"
            )

    def build(self) -> "_PoissonSampler":
        return _PoissonSampler(self.rate_per_s)


class _PoissonSampler:
    def __init__(self, rate_per_s: float) -> None:
        self._mean_us = 1e6 / rate_per_s if rate_per_s > 0 else None

    def next_interval_us(self, rng) -> Optional[float]:
        if self._mean_us is None:
            return None
        return float(rng.exponential(self._mean_us))


@dataclass(frozen=True)
class CBRTraffic:
    """One packet every ``period_us`` (constant bit rate reporting)."""

    period_us: float

    def __post_init__(self) -> None:
        if self.period_us <= 0:
            raise ConfigurationError(
                f"CBR period must be positive, got {self.period_us}"
            )

    def build(self) -> "_CBRSampler":
        return _CBRSampler(self.period_us)


class _CBRSampler:
    def __init__(self, period_us: float) -> None:
        self._period_us = period_us

    def next_interval_us(self, rng) -> Optional[float]:
        return self._period_us


@dataclass(frozen=True)
class OnOffTraffic:
    """Bursty arrivals: Poisson at ``rate_per_s`` during exponential ON
    phases (mean ``mean_on_us``), silent during exponential OFF phases
    (mean ``mean_off_us``).

    Degenerate phases are well-defined rather than errors, because sweep
    grids hit them naturally:

    * ``mean_on_us == 0`` — the ON phase never opens: no arrivals, ever
      (the sampler returns None).
    * ``mean_off_us == 0`` — no gap between bursts: collapses to plain
      Poisson at ``rate_per_s``.
    * ``rate_per_s == 0`` — ON phases carry no packets: no arrivals.
    """

    rate_per_s: float
    mean_on_us: float
    mean_off_us: float

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ConfigurationError(
                f"ON/OFF rate must be >= 0, got {self.rate_per_s}"
            )
        if self.mean_on_us < 0 or self.mean_off_us < 0:
            raise ConfigurationError(
                "ON/OFF phase durations must be >= 0, got "
                f"on={self.mean_on_us} off={self.mean_off_us}"
            )

    def build(self) -> "_OnOffSampler":
        return _OnOffSampler(self.rate_per_s, self.mean_on_us, self.mean_off_us)


class _OnOffSampler:
    """Walks ON/OFF phase boundaries, accumulating skipped OFF time.

    The sampler tracks how much ON time remains in the current phase.  An
    exponential arrival draw that fits inside the remaining ON time is an
    arrival; one that overshoots burns the remainder, adds an OFF phase
    draw to the accumulated delay, opens a fresh ON phase and retries.
    RNG draw order is fixed (arrival, then OFF duration, then ON duration)
    so the sequence is reproducible from the stream alone.
    """

    def __init__(self, rate_per_s: float, mean_on_us: float, mean_off_us: float) -> None:
        self._rate_per_s = rate_per_s
        self._mean_on_us = mean_on_us
        self._mean_off_us = mean_off_us
        self._mean_gap_us = 1e6 / rate_per_s if rate_per_s > 0 else None
        self._on_left_us: Optional[float] = None  # None: phase not yet drawn

    def next_interval_us(self, rng) -> Optional[float]:
        if self._mean_gap_us is None or self._mean_on_us == 0.0:
            return None
        if self._mean_off_us == 0.0:
            return float(rng.exponential(self._mean_gap_us))
        if self._on_left_us is None:
            self._on_left_us = float(rng.exponential(self._mean_on_us))
        delay = 0.0
        while True:
            gap = float(rng.exponential(self._mean_gap_us))
            if gap <= self._on_left_us:
                self._on_left_us -= gap
                return delay + gap
            delay += self._on_left_us
            delay += float(rng.exponential(self._mean_off_us))
            self._on_left_us = float(rng.exponential(self._mean_on_us))


#: A scenario traffic spec: None means saturated (legacy behaviour).
TrafficSpec = Union[PoissonTraffic, CBRTraffic, OnOffTraffic, None]


def build_sampler(spec: TrafficSpec) -> Optional[TrafficSampler]:
    """Instantiate the sampler for *spec* (None stays None: saturated)."""
    if spec is None:
        return None
    return spec.build()
