"""WiFi transmitter device for the coexistence simulator.

Models the asymmetry the paper builds on: a 28 us DIFS and 9 us slots let
the WiFi device claim the channel essentially at will against ZigBee's
320 us periods.  Two traffic modes:

* **stream** (duty_ratio == 1.0): one endless transmission with a single
  leading preamble — the USRP streaming source of the Fig. 14/15
  experiments ("continuous WiFi transmissions");
* **bursts** (duty_ratio < 1.0): fixed-length frames separated by idle gaps
  sized so the airtime fraction equals the duty ratio (the Fig. 16
  "duration ratio"), each frame carrying its own full-power preamble.

ZigBee energy at a WiFi receiver sits near the noise floor (Fig. 17), so
the WiFi device's own CCA essentially never defers to ZigBee; the simulator
still evaluates WiFi frame SINR against concurrent ZigBee activity to
reproduce the paper's "no WiFi BER increase" observation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.channel.propagation import wifi_profile
from repro.errors import SimulationError
from repro.mac.config import (
    WIFI_CW_MIN,
    WIFI_DIFS_US,
    WIFI_PREAMBLE_US,
    WIFI_SLOT_US,
    CoexistenceConfig,
)
from repro.mac.events import EventScheduler
from repro.mac.medium import Medium, Position, WifiBurst

#: 802.11 maximum contention window (slots) for deferral backoff doubling.
WIFI_CW_MAX = 1023


@dataclass(frozen=True)
class CellAttachment:
    """Scenario-mode identity of a WiFi transmitter (one BSS).

    The legacy two-node simulator has a single unpositioned WiFi
    transmitter; a scenario attaches each :class:`WifiNode` to a cell so
    its bursts carry a source id, a position and per-sub-channel payload
    levels, and so it carrier-senses *other* BSSs on its channel before
    transmitting (inter-BSS contention — hidden terminals emerge when two
    cells sit outside each other's sensing range).

    Attributes:
        source: globally unique transmitter id (spatial-index key).
        position: the AP/transmitter (x, y) in metres.
        rx_position: the station the downlink SINR is evaluated at.
        payload_db_by_sub: payload level at 1 m per ZigBee overlap
            sub-channel CH1..CH4 of this 20 MHz band — only the SledZig-
            protected sub is reduced.
        payload_db_by_sub_cycle: when set, successive bursts cycle through
            these per-sub level tuples instead of the static
            ``payload_db_by_sub`` — the CTC side channel's power-pattern
            schedule (one alphabet symbol per burst, wrapping around).
            Deterministic: burst *i* always carries ``cycle[i % len]``,
            independent of contention outcomes or RNG draws.
        contend: carrier-sense other cells before each burst (False makes
            the node a blind transmitter, e.g. for hidden-terminal
            baselines).
        cs_threshold_db: busy verdict threshold for inter-BSS carrier
            sense (the calibration's ``wifi_cca_threshold_db``).
    """

    source: int
    position: Position
    rx_position: Position
    payload_db_by_sub: Optional[Tuple[float, float, float, float]] = None
    payload_db_by_sub_cycle: Optional[
        Tuple[Tuple[float, float, float, float], ...]
    ] = None
    contend: bool = True
    cs_threshold_db: float = -75.0


@dataclass
class WifiStats:
    """Counters accumulated by the WiFi device.

    Attributes:
        bursts_sent: frames (or stream segments) put on air.
        airtime_us: total on-air time.
        payload_bits: DATA bits carried (excludes SledZig extra bits).
        extra_bits: SledZig overhead bits carried.
        deferrals: scenario-mode carrier-sense busy verdicts (inter-BSS
            contention; always 0 in the legacy two-node simulator).
    """

    bursts_sent: int = 0
    airtime_us: float = 0.0
    payload_bits: float = 0.0
    extra_bits: float = 0.0
    bursts_ok: int = 0
    bursts_degraded: int = 0
    worst_sinr_db: float = float("inf")
    deferrals: int = 0

    def throughput_mbps(self, duration_us: float) -> float:
        """Application-level WiFi throughput in Mbit/s."""
        if duration_us <= 0:
            raise SimulationError("duration must be positive")
        return self.payload_bits / duration_us


class WifiNode:
    """The interfering WiFi transmitter."""

    def __init__(
        self,
        config: CoexistenceConfig,
        scheduler: EventScheduler,
        medium: Medium,
        rng: np.random.Generator,
        cell: Optional[CellAttachment] = None,
    ) -> None:
        from repro.sledzig.analysis import throughput_loss
        from repro.wifi.params import get_mcs

        self.config = config
        self.scheduler = scheduler
        self.medium = medium
        self.rng = rng
        self.cell = cell
        self._cw = WIFI_CW_MIN
        self._burst_index = 0
        self.stats = WifiStats()
        self.mcs = get_mcs(config.wifi.mcs_name)
        wifi = config.wifi
        self.profile = wifi_profile(
            channel=config.zigbee.channel_index,
            sledzig_modulation=self.mcs.modulation if wifi.sledzig_enabled else None,
            tx_gain_db=wifi.tx_gain_db,
            calibration=config.calibration,
        )
        # Fraction of DATA bits that are SledZig overhead.
        self._overhead = (
            throughput_loss(self.mcs, wifi.sledzig_channel)
            if wifi.sledzig_enabled
            else 0.0
        )

    def start(self) -> None:
        """Begin transmitting at t = 0 (after one DIFS + backoff)."""
        if not self.config.wifi.saturated:
            return
        self.scheduler.schedule(self._contention_delay(), self._begin_burst)

    def _contention_delay(self) -> float:
        """DIFS plus a uniform backoff draw (CW_min window)."""
        slots = int(self.rng.integers(0, WIFI_CW_MIN + 1))
        return WIFI_DIFS_US + slots * WIFI_SLOT_US

    def _channel_clear(self) -> bool:
        """Inter-BSS carrier sense over the last slot at our own position.

        Only other sources on this cell's band count (the medium view
        excludes our own bursts); a cell outside every peer's sensing
        range always reads clear — that asymmetry *is* the hidden-terminal
        geometry.
        """
        assert self.cell is not None
        now = self.scheduler.now
        t0 = max(0.0, now - WIFI_SLOT_US)
        if now - t0 <= 0:
            return True
        level = self.medium.average_power_db(
            t0, now, 1.0, at_position=self.cell.position
        )
        return level <= self.cell.cs_threshold_db

    def _begin_burst(self) -> None:
        wifi = self.config.wifi
        if self.cell is not None and self.cell.contend:
            if not self._channel_clear():
                # Busy: binary-exponential backoff, then listen again.
                self.stats.deferrals += 1
                self._cw = min(2 * self._cw + 1, WIFI_CW_MAX)
                slots = int(self.rng.integers(0, self._cw + 1))
                self.scheduler.schedule(
                    WIFI_DIFS_US + slots * WIFI_SLOT_US, self._begin_burst
                )
                return
            self._cw = WIFI_CW_MIN
        now = self.scheduler.now
        if wifi.duty_ratio >= 1.0:
            # Continuous stream: one burst to the end of the simulation.
            end = self.config.duration_us
            if end <= now:
                return
            self._emit(now, end, preamble=True)
            return
        duration = wifi.burst_duration_us
        self._emit(now, now + duration, preamble=True)
        gap = duration * (1.0 - wifi.duty_ratio) / wifi.duty_ratio
        # Jitter the gap +-20% so ZigBee packets see varied overlap phases.
        jitter = float(self.rng.uniform(0.8, 1.2))
        self.scheduler.schedule(
            duration + gap * jitter + self._contention_delay(), self._begin_burst
        )

    def _emit(self, start: float, end: float, preamble: bool) -> None:
        fade = (
            float(self.rng.normal(0.0, self.config.fading_sigma_db))
            if self.config.fading_sigma_db > 0
            else 0.0
        )
        has_preamble = preamble and self.config.wifi.preamble_modelled
        payload_db_by_sub = None
        if self.cell is not None:
            payload_db_by_sub = self.cell.payload_db_by_sub
            if self.cell.payload_db_by_sub_cycle:
                cycle = self.cell.payload_db_by_sub_cycle
                payload_db_by_sub = cycle[self._burst_index % len(cycle)]
        self._burst_index += 1
        burst = WifiBurst(
            start_us=start,
            end_us=end,
            preamble_until_us=start + (WIFI_PREAMBLE_US if has_preamble else 0.0),
            preamble_db_at_1m=self.profile.preamble_db_at_1m,
            payload_db_at_1m=self.profile.payload_db_at_1m,
            fade_db=fade,
            source=self.cell.source if self.cell is not None else 0,
            position=self.cell.position if self.cell is not None else None,
            payload_db_by_sub=payload_db_by_sub,
        )
        self.medium.add_burst(burst)
        self.stats.bursts_sent += 1
        airtime = end - start
        self.stats.airtime_us += airtime
        data_time = max(airtime - (WIFI_PREAMBLE_US if preamble else 0.0), 0.0)
        total_bits = data_time / 4.0 * self.mcs.n_dbps
        self.stats.extra_bits += total_bits * self._overhead
        self.stats.payload_bits += total_bits * (1.0 - self._overhead)
        self.scheduler.schedule(airtime, lambda: self._evaluate_burst(start, end))

    def _evaluate_burst(self, start: float, end: float) -> None:
        """SINR check of one burst against concurrent ZigBee energy.

        Reproduces Section V-D2 dynamically: the ZigBee signal reaches the
        WiFi receiver band-diluted and near the noise floor, so bursts
        essentially never degrade; the counters prove it per run instead of
        assuming it.
        """
        from repro.channel.propagation import distance, wifi_at_wifi_rx
        from repro.utils.db import db_to_linear, linear_to_db

        topo = self.config.topology
        cal = self.config.calibration
        if self.cell is not None:
            d_link = max(
                math.hypot(
                    self.cell.position[0] - self.cell.rx_position[0],
                    self.cell.position[1] - self.cell.rx_position[1],
                ),
                0.05,
            )
            signal = wifi_at_wifi_rx(d_link, self.config.wifi.tx_gain_db, cal)
            zigbee = self.medium.zigbee_average_power_db(
                start,
                end,
                1.0,
                band_penalty_db=cal.zigbee_wifi_band_penalty_db,
                at_position=self.cell.rx_position,
            )
        else:
            signal = wifi_at_wifi_rx(
                distance(topo.wifi_tx, topo.wifi_rx), self.config.wifi.tx_gain_db, cal
            )
            zigbee = self.medium.zigbee_average_power_db(
                start,
                end,
                distance(topo.zigbee_tx, topo.wifi_rx),
                band_penalty_db=cal.zigbee_wifi_band_penalty_db,
            )
        denom = db_to_linear(cal.noise_floor_db)
        if zigbee != float("-inf"):
            denom += db_to_linear(zigbee)
        sinr = signal - float(linear_to_db(denom))
        self.stats.worst_sinr_db = min(self.stats.worst_sinr_db, sinr)
        if sinr >= self.mcs.min_snr_db:
            self.stats.bursts_ok += 1
        else:
            self.stats.bursts_degraded += 1
