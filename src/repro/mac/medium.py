"""Shared-medium model: who hears how much power, when.

Two generations of medium live here:

* :class:`Medium` — the original single-WiFi-interferer record the paper
  reproduction runs on (one transmitter, distance-scaled at query time).
  Its behaviour is pinned bit-identically by ``tests/mac/``.
* the partitioned stack for dense scenarios — :class:`SpatialIndex`,
  :class:`WifiBand`, :class:`ZigbeeBand`, :class:`PartitionedMedium` and
  the :class:`MediumView` adapter.  Activity is partitioned per frequency
  band (one :class:`WifiBand` per 20 MHz WiFi channel, one
  :class:`ZigbeeBand` per 2 MHz ZigBee channel) and, inside a band, per
  transmitter, so each source's bursts stay time-ordered and
  non-overlapping and binary search still applies.  A spatial grid culls
  sources beyond the interference range before any per-burst work, which
  is what keeps CCA and per-symbol SINR queries affordable with hundreds
  of nodes.

Both answer the same two queries the ZigBee MAC/PHY needs:

* time-averaged in-band power over an interval (for the 128 us energy-detect
  CCA — this is where the paper's "a 16 us preamble inside a 128 us window
  barely moves the average" argument becomes mechanical);
* a piecewise-constant interference trace over an interval (for per-symbol
  SINR evaluation of a ZigBee packet, where a full-power WiFi preamble
  crossing one symbol kills exactly that symbol).

WiFi activity is stored as intervals with two levels (preamble window at
full power, payload at the possibly SledZig-reduced level) referenced to
1 m; per-receiver distance scaling and optional per-packet shadowing are
applied at query time.  Hidden terminals and capture asymmetries are
emergent in the partitioned stack: carrier sense and reception query power
at *positions*, so a transmitter outside another's sensing range but
inside a receiver's interference range produces exactly the classic
failure geometry.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.channel.calibration import Calibration
from repro.errors import SimulationError
from repro.utils.db import db_to_linear, linear_to_db

#: Position type alias: (x, y) in metres.
Position = Tuple[float, float]


@dataclass(frozen=True)
class WifiBurst:
    """One on-air WiFi transmission.

    Attributes:
        start_us / end_us: interval on air.
        preamble_until_us: end of the full-power preamble window (equals
            ``start_us`` + 20 for packetised frames; streams repeat no
            preamble).
        preamble_db_at_1m: in-band level of the preamble at 1 m.
        payload_db_at_1m: in-band level of the payload at 1 m.
        fade_db: shadowing draw for this burst (applied to all receivers —
            transmitter-side fading; receiver-side fading is drawn by the
            receiver).
        source: identifier of the transmitting cell in partitioned media
            (0 in the legacy single-transmitter medium).
        position: transmitter (x, y) for per-receiver path loss in
            partitioned media; None in the legacy medium (distance is a
            query argument there).
        payload_db_by_sub: per-overlap-sub-channel payload levels
            (CH1..CH4 of this 20 MHz band) for partitioned media — a
            SledZig transmitter only reduces power in the sub-band it
            protects, so receivers on the other sub-channels must read the
            normal level.  None falls back to ``payload_db_at_1m``.
    """

    start_us: float
    end_us: float
    preamble_until_us: float
    preamble_db_at_1m: float
    payload_db_at_1m: float
    fade_db: float = 0.0
    source: int = 0
    position: Optional[Position] = None
    payload_db_by_sub: Optional[Tuple[float, float, float, float]] = None


@dataclass(frozen=True)
class ZigbeeBurst:
    """One on-air ZigBee transmission.

    Attributes:
        start_us / end_us: interval on air.
        level_db_at_1m: reported power at 1 m (already including the ZigBee
            TX gain).
        source: identifier of the transmitting link (lets a node exclude
            its own bursts from carrier-sense queries).
        position: transmitter (x, y), used for per-receiver path loss in
            multi-link scenarios; None falls back to the query distance.
    """

    start_us: float
    end_us: float
    level_db_at_1m: float
    source: int = 0
    position: "tuple[float, float] | None" = None


class Medium:
    """Time-indexed WiFi + ZigBee activity record with power queries."""

    def __init__(self, calibration: Calibration) -> None:
        self.calibration = calibration
        self._bursts: List[WifiBurst] = []
        self._starts: List[float] = []
        self._zigbee: List[ZigbeeBurst] = []

    def add_burst(self, burst: WifiBurst) -> None:
        """Register a WiFi transmission (must be appended in time order)."""
        if self._bursts and burst.start_us < self._bursts[-1].start_us:
            raise SimulationError("bursts must be added in start-time order")
        if burst.end_us <= burst.start_us:
            raise SimulationError("burst must have positive duration")
        self._bursts.append(burst)
        self._starts.append(burst.start_us)

    def bursts_overlapping(self, t0: float, t1: float) -> List[WifiBurst]:
        """All bursts intersecting [t0, t1)."""
        if t1 <= t0:
            return []
        # Bursts are time-ordered and non-overlapping (single WiFi
        # transmitter): at most one burst starting before t0 can still cover
        # it, then walk forward until starts pass t1.
        idx = max(0, bisect_left(self._starts, t0) - 1)
        out: List[WifiBurst] = []
        for burst in self._bursts[idx:]:
            if burst.start_us >= t1:
                break
            if burst.end_us > t0:
                out.append(burst)
        return out

    def interference_trace(
        self,
        t0: float,
        t1: float,
        distance_m: float,
        extra_fade_db: float = 0.0,
        *,
        at_position: Optional[Position] = None,
    ) -> List[Tuple[float, float, float]]:
        """Piecewise-constant WiFi in-band power at a receiver.

        Returns ``[(seg_start, seg_end, level_db), ...]`` covering exactly
        [t0, t1); segments with no WiFi activity carry ``-inf``.
        *at_position* is the position-aware protocol hook shared with
        :class:`MediumView`; this single-interferer medium captures the
        receiver geometry entirely in *distance_m* and ignores it.
        """
        if t1 <= t0:
            return []
        path = self.calibration.path_loss_db(distance_m)
        edges = {t0, t1}
        for burst in self.bursts_overlapping(t0, t1):
            for edge in (burst.start_us, burst.preamble_until_us, burst.end_us):
                if t0 < edge < t1:
                    edges.add(edge)
        points = sorted(edges)
        trace: List[Tuple[float, float, float]] = []
        for seg_start, seg_end in zip(points, points[1:]):
            mid = (seg_start + seg_end) / 2.0
            level = float("-inf")
            for burst in self.bursts_overlapping(seg_start, seg_end):
                if burst.start_us <= mid < burst.end_us:
                    base = (
                        burst.preamble_db_at_1m
                        if mid < burst.preamble_until_us
                        else burst.payload_db_at_1m
                    )
                    contribution = base + burst.fade_db + extra_fade_db - path
                    if level == float("-inf"):
                        level = contribution
                    else:
                        level = linear_to_db(
                            db_to_linear(level) + db_to_linear(contribution)
                        )
            trace.append((seg_start, seg_end, level))
        return trace

    def average_power_db(
        self,
        t0: float,
        t1: float,
        distance_m: float,
        extra_fade_db: float = 0.0,
        *,
        at_position: Optional[Position] = None,
    ) -> float:
        """Time-averaged linear WiFi power over [t0, t1), in reported dB.

        Includes the noise floor, mirroring an energy-detect CCA register.
        *at_position* is ignored here (see :meth:`interference_trace`).
        """
        if t1 <= t0:
            raise SimulationError("average_power_db needs a positive interval")
        noise = db_to_linear(self.calibration.noise_floor_db)
        acc = 0.0
        for seg_start, seg_end, level in self.interference_trace(
            t0, t1, distance_m, extra_fade_db
        ):
            linear = noise if level == float("-inf") else noise + db_to_linear(level)
            acc += linear * (seg_end - seg_start)
        return float(linear_to_db(acc / (t1 - t0)))

    def add_zigbee_burst(self, burst: ZigbeeBurst) -> None:
        """Register a ZigBee transmission (time order enforced)."""
        if self._zigbee and burst.start_us < self._zigbee[-1].start_us:
            raise SimulationError("zigbee bursts must be added in time order")
        if burst.end_us <= burst.start_us:
            raise SimulationError("zigbee burst must have positive duration")
        self._zigbee.append(burst)

    def zigbee_average_power_db(
        self,
        t0: float,
        t1: float,
        distance_m: float,
        band_penalty_db: float = 0.0,
        exclude_source: "int | None" = None,
        at_position: "tuple[float, float] | None" = None,
    ) -> float:
        """Time-averaged ZigBee power over [t0, t1) at a receiver.

        *band_penalty_db* models a wideband (20 MHz) receiver integrating
        the 2 MHz ZigBee signal (the paper's ~10 dB dilution, Fig. 17).
        *exclude_source* drops one link's own bursts (carrier sense must
        not hear itself); when both a burst position and *at_position* are
        known the true pairwise distance overrides *distance_m*.
        Returns -inf when no ZigBee energy overlaps the interval.
        """
        if t1 <= t0:
            raise SimulationError("zigbee_average_power_db needs a positive interval")
        default_path = self.calibration.path_loss_db(distance_m)
        acc = 0.0
        any_overlap = False
        for burst in self._zigbee:
            if exclude_source is not None and burst.source == exclude_source:
                continue
            overlap = min(burst.end_us, t1) - max(burst.start_us, t0)
            if overlap <= 0:
                continue
            any_overlap = True
            path = default_path
            if burst.position is not None and at_position is not None:
                dx = burst.position[0] - at_position[0]
                dy = burst.position[1] - at_position[1]
                pair = max((dx * dx + dy * dy) ** 0.5, 0.05)
                path = self.calibration.path_loss_db(pair)
            level = burst.level_db_at_1m - path - band_penalty_db
            acc += db_to_linear(level) * overlap
        if not any_overlap or acc <= 0:
            return float("-inf")
        return float(linear_to_db(acc / (t1 - t0)))

    def prune_before(self, t_us: float) -> None:
        """Drop bursts that ended before *t_us* (memory bound for long runs)."""
        keep = 0
        while keep < len(self._bursts) and self._bursts[keep].end_us < t_us:
            keep += 1
        if keep:
            del self._bursts[:keep]
            del self._starts[:keep]
        zkeep = 0
        while zkeep < len(self._zigbee) and self._zigbee[zkeep].end_us < t_us:
            zkeep += 1
        if zkeep:
            del self._zigbee[:zkeep]


class SpatialIndex:
    """Grid hash over static transmitter positions.

    Nodes register once at scenario build time; queries return the sources
    within a radius of a receiver position, sorted by source id so every
    consumer iterates them in the same deterministic order.  Results are
    memoised per (position, radius) — scenario node positions are static,
    so after the first packet every lookup is a dict hit.
    """

    def __init__(self, cell_size_m: float = 10.0) -> None:
        if cell_size_m <= 0:
            raise SimulationError("cell_size_m must be positive")
        self.cell_size_m = cell_size_m
        self._positions: Dict[int, Position] = {}
        self._grid: Dict[Tuple[int, int], List[int]] = {}
        self._cache: Dict[Tuple[float, float, float], Tuple[int, ...]] = {}

    def _cell(self, position: Position) -> Tuple[int, int]:
        return (
            int(math.floor(position[0] / self.cell_size_m)),
            int(math.floor(position[1] / self.cell_size_m)),
        )

    def register(self, source: int, position: Position) -> None:
        """Register one transmitter (re-registering a source is an error)."""
        if source in self._positions:
            raise SimulationError(f"source {source} already registered")
        self._positions[source] = position
        self._grid.setdefault(self._cell(position), []).append(source)
        self._cache.clear()

    def position(self, source: int) -> Position:
        """Registered position of *source*."""
        try:
            return self._positions[source]
        except KeyError:
            raise SimulationError(f"source {source} is not registered") from None

    def sources_within(self, position: Position, radius_m: float) -> Tuple[int, ...]:
        """Sources within *radius_m* of *position*, sorted by id."""
        key = (position[0], position[1], radius_m)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        span = int(math.ceil(radius_m / self.cell_size_m))
        cx, cy = self._cell(position)
        out: List[int] = []
        r2 = radius_m * radius_m
        for gx in range(cx - span, cx + span + 1):
            for gy in range(cy - span, cy + span + 1):
                for source in self._grid.get((gx, gy), ()):
                    sx, sy = self._positions[source]
                    dx = sx - position[0]
                    dy = sy - position[1]
                    if dx * dx + dy * dy <= r2:
                        out.append(source)
        result = tuple(sorted(out))
        self._cache[key] = result
        return result


class _Track:
    """Time-ordered, non-overlapping bursts of a single transmitter."""

    __slots__ = ("starts", "bursts")

    def __init__(self) -> None:
        self.starts: List[float] = []
        self.bursts: List[object] = []

    def add(self, burst) -> None:
        if self.bursts and burst.start_us < self.bursts[-1].start_us:
            raise SimulationError(
                "a source's bursts must be added in start-time order"
            )
        if burst.end_us <= burst.start_us:
            raise SimulationError("burst must have positive duration")
        self.starts.append(burst.start_us)
        self.bursts.append(burst)

    def overlapping(self, t0: float, t1: float) -> List[object]:
        """Bursts of this track intersecting [t0, t1)."""
        idx = max(0, bisect_left(self.starts, t0) - 1)
        out: List[object] = []
        for burst in self.bursts[idx:]:
            if burst.start_us >= t1:
                break
            if burst.end_us > t0:
                out.append(burst)
        return out

    def covering(self, t: float):
        """The burst on air at time *t*, or None."""
        idx = bisect_right(self.starts, t) - 1
        if idx < 0:
            return None
        burst = self.bursts[idx]
        return burst if burst.start_us <= t < burst.end_us else None

    def prune_before(self, t_us: float) -> None:
        keep = 0
        while keep < len(self.bursts) and self.bursts[keep].end_us < t_us:
            keep += 1
        if keep:
            del self.starts[:keep]
            del self.bursts[:keep]


class WifiBand:
    """All WiFi activity on one 20 MHz channel, partitioned per source."""

    def __init__(
        self,
        calibration: Calibration,
        spatial: SpatialIndex,
        range_m: float,
    ) -> None:
        self.calibration = calibration
        self.spatial = spatial
        self.range_m = range_m
        self._tracks: Dict[int, _Track] = {}

    def add_burst(self, burst: WifiBurst) -> None:
        """Register one positioned WiFi transmission (keyed by its source)."""
        if burst.position is None:
            raise SimulationError("partitioned WiFi bursts need a position")
        self._tracks.setdefault(burst.source, _Track()).add(burst)

    def _relevant_tracks(
        self, position: Position, exclude_source: Optional[int]
    ) -> List[Tuple[float, _Track]]:
        """(path loss, track) pairs for in-range sources, id order."""
        out: List[Tuple[float, _Track]] = []
        for source in self.spatial.sources_within(position, self.range_m):
            if source == exclude_source:
                continue
            track = self._tracks.get(source)
            if track is None or not track.bursts:
                continue
            sx, sy = self.spatial.position(source)
            d = math.sqrt(
                (sx - position[0]) ** 2 + (sy - position[1]) ** 2
            )
            out.append((self.calibration.path_loss_db(max(d, 0.05)), track))
        return out

    @staticmethod
    def _burst_level(burst: WifiBurst, mid: float, sub_index: Optional[int]) -> float:
        if mid < burst.preamble_until_us:
            return burst.preamble_db_at_1m + burst.fade_db
        if sub_index is not None and burst.payload_db_by_sub is not None:
            return burst.payload_db_by_sub[sub_index - 1] + burst.fade_db
        return burst.payload_db_at_1m + burst.fade_db

    def interference_trace(
        self,
        t0: float,
        t1: float,
        position: Position,
        sub_index: Optional[int] = None,
        exclude_source: Optional[int] = None,
    ) -> List[Tuple[float, float, float]]:
        """Piecewise-constant summed WiFi power at *position* over [t0, t1).

        Same contract as :meth:`Medium.interference_trace`: segments cover
        [t0, t1) exactly and silent segments carry ``-inf``.  Unlike the
        legacy medium, bursts of *different* sources may overlap in time;
        their linear powers add per segment.
        """
        if t1 <= t0:
            return []
        tracks = self._relevant_tracks(position, exclude_source)
        edges = {t0, t1}
        actives: List[Tuple[float, _Track, List[WifiBurst]]] = []
        for path, track in tracks:
            bursts = track.overlapping(t0, t1)
            if not bursts:
                continue
            actives.append((path, track, bursts))
            for burst in bursts:
                for edge in (burst.start_us, burst.preamble_until_us, burst.end_us):
                    if t0 < edge < t1:
                        edges.add(edge)
        points = sorted(edges)
        trace: List[Tuple[float, float, float]] = []
        for seg_start, seg_end in zip(points, points[1:]):
            mid = (seg_start + seg_end) / 2.0
            acc = 0.0
            for path, track, _bursts in actives:
                burst = track.covering(mid)
                if burst is None:
                    continue
                acc += db_to_linear(self._burst_level(burst, mid, sub_index) - path)
            level = float(linear_to_db(acc)) if acc > 0 else float("-inf")
            trace.append((seg_start, seg_end, level))
        return trace

    def average_power_db(
        self,
        t0: float,
        t1: float,
        position: Position,
        sub_index: Optional[int] = None,
        exclude_source: Optional[int] = None,
    ) -> float:
        """Time-averaged WiFi power (noise floor included), reported dB."""
        if t1 <= t0:
            raise SimulationError("average_power_db needs a positive interval")
        noise = db_to_linear(self.calibration.noise_floor_db)
        acc = 0.0
        for seg_start, seg_end, level in self.interference_trace(
            t0, t1, position, sub_index, exclude_source
        ):
            linear = noise if level == float("-inf") else noise + db_to_linear(level)
            acc += linear * (seg_end - seg_start)
        return float(linear_to_db(acc / (t1 - t0)))

    def prune_before(self, t_us: float) -> None:
        for track in self._tracks.values():
            track.prune_before(t_us)


class ZigbeeBand:
    """All ZigBee activity on one 2 MHz channel, partitioned per source."""

    def __init__(
        self,
        calibration: Calibration,
        spatial: SpatialIndex,
        range_m: float,
    ) -> None:
        self.calibration = calibration
        self.spatial = spatial
        self.range_m = range_m
        self._tracks: Dict[int, _Track] = {}

    def add_burst(self, burst: ZigbeeBurst) -> None:
        """Register one positioned ZigBee transmission."""
        if burst.position is None:
            raise SimulationError("partitioned ZigBee bursts need a position")
        self._tracks.setdefault(burst.source, _Track()).add(burst)

    def bursts_at(
        self,
        t0: float,
        t1: float,
        position: Position,
        exclude_source: Optional[int] = None,
        band_penalty_db: float = 0.0,
    ) -> List[Tuple[float, float, float]]:
        """In-range peer bursts intersecting [t0, t1) as receiver powers.

        Returns ``(start_us, end_us, linear_power)`` triples — path loss
        already applied — so a per-symbol reception loop can integrate
        peer interference with one medium query per *packet* instead of
        one per symbol.  Source order (ascending id) fixes the float
        summation order deterministically.
        """
        out: List[Tuple[float, float, float]] = []
        if t1 <= t0:
            return out
        for source in self.spatial.sources_within(position, self.range_m):
            if source == exclude_source:
                continue
            track = self._tracks.get(source)
            if track is None or not track.bursts:
                continue
            bursts = track.overlapping(t0, t1)
            if not bursts:
                continue
            sx, sy = self.spatial.position(source)
            d = math.sqrt((sx - position[0]) ** 2 + (sy - position[1]) ** 2)
            path = self.calibration.path_loss_db(max(d, 0.05))
            for burst in bursts:
                level = burst.level_db_at_1m - path - band_penalty_db
                out.append((burst.start_us, burst.end_us, db_to_linear(level)))
        return out

    def average_power_db(
        self,
        t0: float,
        t1: float,
        position: Position,
        exclude_source: Optional[int] = None,
        band_penalty_db: float = 0.0,
    ) -> float:
        """Time-averaged ZigBee power at *position* over [t0, t1).

        Returns ``-inf`` when no in-range ZigBee energy overlaps the
        interval (matching :meth:`Medium.zigbee_average_power_db`).
        """
        if t1 <= t0:
            raise SimulationError("average_power_db needs a positive interval")
        acc = 0.0
        any_overlap = False
        for source in self.spatial.sources_within(position, self.range_m):
            if source == exclude_source:
                continue
            track = self._tracks.get(source)
            if track is None or not track.bursts:
                continue
            bursts = track.overlapping(t0, t1)
            if not bursts:
                continue
            sx, sy = self.spatial.position(source)
            d = math.sqrt((sx - position[0]) ** 2 + (sy - position[1]) ** 2)
            path = self.calibration.path_loss_db(max(d, 0.05))
            for burst in bursts:
                overlap = min(burst.end_us, t1) - max(burst.start_us, t0)
                if overlap <= 0:
                    continue
                any_overlap = True
                level = burst.level_db_at_1m - path - band_penalty_db
                acc += db_to_linear(level) * overlap
        if not any_overlap or acc <= 0:
            return float("-inf")
        return float(linear_to_db(acc / (t1 - t0)))

    def prune_before(self, t_us: float) -> None:
        for track in self._tracks.values():
            track.prune_before(t_us)


class PartitionedMedium:
    """Per-frequency-band, per-source, spatially indexed activity record.

    One :class:`WifiBand` per 20 MHz WiFi channel and one
    :class:`ZigbeeBand` per 2 MHz ZigBee channel, sharing a single
    :class:`SpatialIndex` (source ids are globally unique across the
    scenario).  Pruning is throttled so per-packet calls from hundreds of
    sensors do not degenerate into a linear scan storm.
    """

    def __init__(
        self,
        calibration: Calibration,
        spatial: Optional[SpatialIndex] = None,
        wifi_range_m: float = 60.0,
        zigbee_range_m: float = 25.0,
        prune_interval_us: float = 50_000.0,
    ) -> None:
        self.calibration = calibration
        self.spatial = spatial if spatial is not None else SpatialIndex()
        self.wifi_range_m = wifi_range_m
        self.zigbee_range_m = zigbee_range_m
        self.prune_interval_us = prune_interval_us
        self._wifi: Dict[int, WifiBand] = {}
        self._zigbee: Dict[int, ZigbeeBand] = {}
        self._last_prune_us = float("-inf")

    def wifi_band(self, channel: int) -> WifiBand:
        """The (lazily created) band of one WiFi channel."""
        band = self._wifi.get(channel)
        if band is None:
            band = WifiBand(self.calibration, self.spatial, self.wifi_range_m)
            self._wifi[channel] = band
        return band

    def zigbee_band(self, channel: int) -> ZigbeeBand:
        """The (lazily created) band of one ZigBee channel."""
        band = self._zigbee.get(channel)
        if band is None:
            band = ZigbeeBand(self.calibration, self.spatial, self.zigbee_range_m)
            self._zigbee[channel] = band
        return band

    def prune_before(self, t_us: float) -> None:
        """Drop bursts ended before *t_us* (throttled; memory bound)."""
        if t_us - self._last_prune_us < self.prune_interval_us:
            return
        self._last_prune_us = t_us
        for band in self._wifi.values():
            band.prune_before(t_us)
        for band in self._zigbee.values():
            band.prune_before(t_us)


class MediumView:
    """One node's window onto a :class:`PartitionedMedium`.

    Exposes the legacy :class:`Medium` query API, so the node state
    machines (:class:`~repro.mac.wifi_node.WifiNode`,
    :class:`~repro.mac.zigbee_node.ZigbeeLink`) run unchanged on either
    medium generation.  Geometry routing: the legacy ``distance_m``
    arguments are ignored — queries resolve at ``at_position`` when the
    caller provides one, else at this view's home *position*.

    Args:
        medium: the shared partitioned record.
        position: the node's default query position.
        wifi_band: the WiFi band the node hears (None: no WiFi overlap —
            WiFi queries return the noise floor / silence).
        sub_index: the overlap sub-channel (CH1..CH4) this node occupies
            inside *wifi_band* — selects the per-sub payload level.
        wifi_source: this node's own source id for WiFi bursts; excluded
            from its WiFi queries (carrier sense must not hear itself).
        zigbee_tx_band: band this node's own ZigBee bursts land in.
        zigbee_rx_bands: bands the node hears ZigBee energy from (a 2 MHz
            sensor hears its own channel; a 20 MHz WiFi receiver hears
            every ZigBee channel overlapping its band).
    """

    def __init__(
        self,
        medium: PartitionedMedium,
        position: Position,
        *,
        wifi_band: Optional[WifiBand] = None,
        sub_index: Optional[int] = None,
        wifi_source: Optional[int] = None,
        zigbee_tx_band: Optional[ZigbeeBand] = None,
        zigbee_rx_bands: Sequence[ZigbeeBand] = (),
    ) -> None:
        self.medium = medium
        self.calibration = medium.calibration
        self.position = position
        self._wifi_band = wifi_band
        self._sub_index = sub_index
        self._wifi_source = wifi_source
        self._zigbee_tx_band = zigbee_tx_band
        self._zigbee_rx_bands = tuple(zigbee_rx_bands)

    def add_burst(self, burst: WifiBurst) -> None:
        """Put one of this node's WiFi bursts on its band."""
        if self._wifi_band is None:
            raise SimulationError("this node has no WiFi band to transmit on")
        self._wifi_band.add_burst(burst)

    def add_zigbee_burst(self, burst: ZigbeeBurst) -> None:
        """Put one of this node's ZigBee bursts on its band."""
        if self._zigbee_tx_band is None:
            raise SimulationError("this node has no ZigBee band to transmit on")
        self._zigbee_tx_band.add_burst(burst)

    def interference_trace(
        self,
        t0: float,
        t1: float,
        distance_m: float = 1.0,
        extra_fade_db: float = 0.0,
        *,
        at_position: Optional[Position] = None,
    ) -> List[Tuple[float, float, float]]:
        """WiFi interference trace at the resolved position."""
        if t1 <= t0:
            return []
        if self._wifi_band is None:
            return [(t0, t1, float("-inf"))]
        pos = at_position if at_position is not None else self.position
        trace = self._wifi_band.interference_trace(
            t0, t1, pos, self._sub_index, self._wifi_source
        )
        if extra_fade_db:
            trace = [
                (s, e, level if level == float("-inf") else level + extra_fade_db)
                for s, e, level in trace
            ]
        return trace

    def average_power_db(
        self,
        t0: float,
        t1: float,
        distance_m: float = 1.0,
        extra_fade_db: float = 0.0,
        *,
        at_position: Optional[Position] = None,
    ) -> float:
        """Time-averaged WiFi power (noise included) at the position."""
        if t1 <= t0:
            raise SimulationError("average_power_db needs a positive interval")
        if self._wifi_band is None:
            return self.calibration.noise_floor_db
        pos = at_position if at_position is not None else self.position
        return self._wifi_band.average_power_db(
            t0, t1, pos, self._sub_index, self._wifi_source
        )

    def zigbee_average_power_db(
        self,
        t0: float,
        t1: float,
        distance_m: float = 1.0,
        band_penalty_db: float = 0.0,
        exclude_source: Optional[int] = None,
        at_position: Optional[Position] = None,
    ) -> float:
        """Summed ZigBee power over this node's hearable bands."""
        pos = at_position if at_position is not None else self.position
        acc = 0.0
        any_energy = False
        for band in self._zigbee_rx_bands:
            level = band.average_power_db(
                t0, t1, pos, exclude_source, band_penalty_db
            )
            if level != float("-inf"):
                any_energy = True
                acc += db_to_linear(level)
        if not any_energy:
            return float("-inf")
        return float(linear_to_db(acc))

    def zigbee_peer_bursts(
        self,
        t0: float,
        t1: float,
        exclude_source: Optional[int] = None,
        at_position: Optional[Position] = None,
    ) -> List[Tuple[float, float, float]]:
        """Peer ZigBee bursts in [t0, t1) as ``(start, end, linear power)``.

        The fast path for per-symbol reception: one medium query per
        packet, then plain arithmetic per symbol.  Only the partitioned
        medium offers this — the legacy :class:`Medium` has no equivalent,
        and callers feature-detect it."""
        pos = at_position if at_position is not None else self.position
        out: List[Tuple[float, float, float]] = []
        for band in self._zigbee_rx_bands:
            out.extend(band.bursts_at(t0, t1, pos, exclude_source))
        return out

    def prune_before(self, t_us: float) -> None:
        """Throttled prune of the whole partitioned record."""
        self.medium.prune_before(t_us)
