"""Shared-medium model: who hears how much power, when.

The medium keeps a time-indexed record of WiFi activity and answers the two
queries the ZigBee MAC/PHY needs:

* time-averaged in-band power over an interval (for the 128 us energy-detect
  CCA — this is where the paper's "a 16 us preamble inside a 128 us window
  barely moves the average" argument becomes mechanical);
* a piecewise-constant interference trace over an interval (for per-symbol
  SINR evaluation of a ZigBee packet, where a full-power WiFi preamble
  crossing one symbol kills exactly that symbol).

WiFi activity is stored as intervals with two levels (preamble window at
full power, payload at the possibly SledZig-reduced level) referenced to
1 m; per-receiver distance scaling and optional per-packet shadowing are
applied at query time.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.channel.calibration import Calibration
from repro.errors import SimulationError
from repro.utils.db import db_to_linear, linear_to_db


@dataclass(frozen=True)
class WifiBurst:
    """One on-air WiFi transmission.

    Attributes:
        start_us / end_us: interval on air.
        preamble_until_us: end of the full-power preamble window (equals
            ``start_us`` + 20 for packetised frames; streams repeat no
            preamble).
        preamble_db_at_1m: in-band level of the preamble at 1 m.
        payload_db_at_1m: in-band level of the payload at 1 m.
        fade_db: shadowing draw for this burst (applied to all receivers —
            transmitter-side fading; receiver-side fading is drawn by the
            receiver).
    """

    start_us: float
    end_us: float
    preamble_until_us: float
    preamble_db_at_1m: float
    payload_db_at_1m: float
    fade_db: float = 0.0


@dataclass(frozen=True)
class ZigbeeBurst:
    """One on-air ZigBee transmission.

    Attributes:
        start_us / end_us: interval on air.
        level_db_at_1m: reported power at 1 m (already including the ZigBee
            TX gain).
        source: identifier of the transmitting link (lets a node exclude
            its own bursts from carrier-sense queries).
        position: transmitter (x, y), used for per-receiver path loss in
            multi-link scenarios; None falls back to the query distance.
    """

    start_us: float
    end_us: float
    level_db_at_1m: float
    source: int = 0
    position: "tuple[float, float] | None" = None


class Medium:
    """Time-indexed WiFi + ZigBee activity record with power queries."""

    def __init__(self, calibration: Calibration) -> None:
        self.calibration = calibration
        self._bursts: List[WifiBurst] = []
        self._starts: List[float] = []
        self._zigbee: List[ZigbeeBurst] = []

    def add_burst(self, burst: WifiBurst) -> None:
        """Register a WiFi transmission (must be appended in time order)."""
        if self._bursts and burst.start_us < self._bursts[-1].start_us:
            raise SimulationError("bursts must be added in start-time order")
        if burst.end_us <= burst.start_us:
            raise SimulationError("burst must have positive duration")
        self._bursts.append(burst)
        self._starts.append(burst.start_us)

    def bursts_overlapping(self, t0: float, t1: float) -> List[WifiBurst]:
        """All bursts intersecting [t0, t1)."""
        if t1 <= t0:
            return []
        # Bursts are time-ordered and non-overlapping (single WiFi
        # transmitter): at most one burst starting before t0 can still cover
        # it, then walk forward until starts pass t1.
        idx = max(0, bisect_left(self._starts, t0) - 1)
        out: List[WifiBurst] = []
        for burst in self._bursts[idx:]:
            if burst.start_us >= t1:
                break
            if burst.end_us > t0:
                out.append(burst)
        return out

    def interference_trace(
        self, t0: float, t1: float, distance_m: float, extra_fade_db: float = 0.0
    ) -> List[Tuple[float, float, float]]:
        """Piecewise-constant WiFi in-band power at a receiver.

        Returns ``[(seg_start, seg_end, level_db), ...]`` covering exactly
        [t0, t1); segments with no WiFi activity carry ``-inf``.
        """
        if t1 <= t0:
            return []
        path = self.calibration.path_loss_db(distance_m)
        edges = {t0, t1}
        for burst in self.bursts_overlapping(t0, t1):
            for edge in (burst.start_us, burst.preamble_until_us, burst.end_us):
                if t0 < edge < t1:
                    edges.add(edge)
        points = sorted(edges)
        trace: List[Tuple[float, float, float]] = []
        for seg_start, seg_end in zip(points, points[1:]):
            mid = (seg_start + seg_end) / 2.0
            level = float("-inf")
            for burst in self.bursts_overlapping(seg_start, seg_end):
                if burst.start_us <= mid < burst.end_us:
                    base = (
                        burst.preamble_db_at_1m
                        if mid < burst.preamble_until_us
                        else burst.payload_db_at_1m
                    )
                    contribution = base + burst.fade_db + extra_fade_db - path
                    if level == float("-inf"):
                        level = contribution
                    else:
                        level = linear_to_db(
                            db_to_linear(level) + db_to_linear(contribution)
                        )
            trace.append((seg_start, seg_end, level))
        return trace

    def average_power_db(
        self, t0: float, t1: float, distance_m: float, extra_fade_db: float = 0.0
    ) -> float:
        """Time-averaged linear WiFi power over [t0, t1), in reported dB.

        Includes the noise floor, mirroring an energy-detect CCA register.
        """
        if t1 <= t0:
            raise SimulationError("average_power_db needs a positive interval")
        noise = db_to_linear(self.calibration.noise_floor_db)
        acc = 0.0
        for seg_start, seg_end, level in self.interference_trace(
            t0, t1, distance_m, extra_fade_db
        ):
            linear = noise if level == float("-inf") else noise + db_to_linear(level)
            acc += linear * (seg_end - seg_start)
        return float(linear_to_db(acc / (t1 - t0)))

    def add_zigbee_burst(self, burst: ZigbeeBurst) -> None:
        """Register a ZigBee transmission (time order enforced)."""
        if self._zigbee and burst.start_us < self._zigbee[-1].start_us:
            raise SimulationError("zigbee bursts must be added in time order")
        if burst.end_us <= burst.start_us:
            raise SimulationError("zigbee burst must have positive duration")
        self._zigbee.append(burst)

    def zigbee_average_power_db(
        self,
        t0: float,
        t1: float,
        distance_m: float,
        band_penalty_db: float = 0.0,
        exclude_source: "int | None" = None,
        at_position: "tuple[float, float] | None" = None,
    ) -> float:
        """Time-averaged ZigBee power over [t0, t1) at a receiver.

        *band_penalty_db* models a wideband (20 MHz) receiver integrating
        the 2 MHz ZigBee signal (the paper's ~10 dB dilution, Fig. 17).
        *exclude_source* drops one link's own bursts (carrier sense must
        not hear itself); when both a burst position and *at_position* are
        known the true pairwise distance overrides *distance_m*.
        Returns -inf when no ZigBee energy overlaps the interval.
        """
        if t1 <= t0:
            raise SimulationError("zigbee_average_power_db needs a positive interval")
        default_path = self.calibration.path_loss_db(distance_m)
        acc = 0.0
        any_overlap = False
        for burst in self._zigbee:
            if exclude_source is not None and burst.source == exclude_source:
                continue
            overlap = min(burst.end_us, t1) - max(burst.start_us, t0)
            if overlap <= 0:
                continue
            any_overlap = True
            path = default_path
            if burst.position is not None and at_position is not None:
                dx = burst.position[0] - at_position[0]
                dy = burst.position[1] - at_position[1]
                pair = max((dx * dx + dy * dy) ** 0.5, 0.05)
                path = self.calibration.path_loss_db(pair)
            level = burst.level_db_at_1m - path - band_penalty_db
            acc += db_to_linear(level) * overlap
        if not any_overlap or acc <= 0:
            return float("-inf")
        return float(linear_to_db(acc / (t1 - t0)))

    def prune_before(self, t_us: float) -> None:
        """Drop bursts that ended before *t_us* (memory bound for long runs)."""
        keep = 0
        while keep < len(self._bursts) and self._bursts[keep].end_us < t_us:
            keep += 1
        if keep:
            del self._bursts[:keep]
            del self._starts[:keep]
        zkeep = 0
        while zkeep < len(self._zigbee) and self._zigbee[zkeep].end_us < t_us:
            zkeep += 1
        if zkeep:
            del self._zigbee[:zkeep]
