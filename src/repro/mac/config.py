"""Configuration for one coexistence simulation run.

Defaults reproduce the paper's testbed (Fig. 10): a WiFi link and a ZigBee
link on the same corridor, WiFi TX gain 15, ZigBee TX gain 31, 60-octet
ZigBee payloads whose no-interference throughput calibrates to the paper's
~63 kbps ceiling (Section V-C1: CSMA overheads plus TelosB serial delay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.channel.calibration import DEFAULT_CALIBRATION, Calibration
from repro.errors import ConfigurationError
from repro.utils.validation import require, require_positive, require_range

#: WiFi MAC timing from the paper (Section II-B).
WIFI_DIFS_US: float = 28.0
WIFI_SLOT_US: float = 9.0
WIFI_CW_MIN: int = 15

#: WiFi PLCP preamble + SIGNAL duration (always full power).
WIFI_PREAMBLE_US: float = 20.0

#: The three non-overlapping 2.4 GHz WiFi channels multi-cell scenarios use.
WIFI_SCENARIO_CHANNELS: Tuple[int, int, int] = (1, 6, 11)

#: The four centre-frequency offsets (MHz, ZigBee minus WiFi) at which a
#: 2 MHz ZigBee channel falls inside a 20 MHz WiFi band, in CH1..CH4 order.
_OVERLAP_OFFSETS_MHZ: Tuple[int, int, int, int] = (-7, -2, 3, 8)


def zigbee_wifi_overlap(zigbee_channel: int) -> Optional[Tuple[int, int]]:
    """Which WiFi scenario channel an IEEE 802.15.4 channel overlaps.

    Returns ``(wifi_channel, sub_index)`` where *sub_index* is the paper's
    CH1..CH4 overlap sub-channel inside that 20 MHz band, or None when the
    ZigBee channel overlaps none of channels 1/6/11 (15, 20, 25 and 26 are
    the classic "clear" channels).  Centre frequencies: WiFi channel *c*
    sits at 2407 + 5c MHz, ZigBee channel *z* at 2405 + 5(z - 11) MHz.
    """
    if not 11 <= zigbee_channel <= 26:
        raise ConfigurationError(
            f"IEEE 802.15.4 channel must be 11..26, got {zigbee_channel}"
        )
    zigbee_mhz = 2405 + 5 * (zigbee_channel - 11)
    for wifi_channel in WIFI_SCENARIO_CHANNELS:
        offset = zigbee_mhz - (2407 + 5 * wifi_channel)
        if offset in _OVERLAP_OFFSETS_MHZ:
            return wifi_channel, _OVERLAP_OFFSETS_MHZ.index(offset) + 1
    return None


@dataclass(frozen=True)
class WifiConfig:
    """WiFi-side parameters.

    Attributes:
        mcs_name: modulation/rate of the DATA symbols.
        sledzig_channel: CH1..CH4 index when SledZig is enabled, else None
            (normal WiFi).
        tx_gain_db: transmit gain (15 is the paper's setting).
        duty_ratio: fraction of airtime carrying WiFi frames; 1.0 means the
            continuous-stream mode of the Fig. 14/15 experiments (a single
            endless transmission, preamble only at the start — the USRP
            streaming transmitter), anything below 1.0 means packetised
            bursts with idle gaps (Fig. 16).
        burst_duration_us: on-air length of one burst in packetised mode.
        saturated: when False the device stays silent (baseline runs).
        preamble_modelled: model the 20 us preamble + SIGNAL window at full
            power (default).  Disabling it is an *ablation switch only* —
            real WiFi cannot drop its preamble — used to quantify how much
            of the Fig. 15 limitation the preamble term carries.
    """

    mcs_name: str = "qam64-2/3"
    sledzig_channel: Optional[int] = None
    tx_gain_db: float = 15.0
    duty_ratio: float = 1.0
    burst_duration_us: float = 4000.0
    saturated: bool = True
    preamble_modelled: bool = True

    @property
    def sledzig_enabled(self) -> bool:
        """Whether the transmitter encodes with SledZig."""
        return self.sledzig_channel is not None


@dataclass(frozen=True)
class ZigbeeConfig:
    """ZigBee-side parameters.

    Attributes:
        channel_index: CH1..CH4 the link occupies.
        tx_gain: CC2420 gain register (31 = 0 dBm).
        payload_octets: PSDU payload per packet.
        processing_delay_us: per-packet host delay (TelosB serial link);
            calibrated so the clean-channel throughput is ~63 kbps.
        cca_threshold_db: energy-detect threshold (reported dB).
        sinr_threshold_db: not used directly (the symbol-error model is),
            kept for analytical tooling.
    """

    channel_index: int = 4
    tx_gain: int = 31
    payload_octets: int = 60
    processing_delay_us: float = 4300.0
    cca_threshold_db: float = -70.0

    def __post_init__(self) -> None:
        require(1 <= self.channel_index <= 4, "channel_index must be 1..4")
        require_range(self.tx_gain, "tx_gain", 0, 31)
        require_range(self.payload_octets, "payload_octets", 1, 127)


@dataclass(frozen=True)
class Topology:
    """Node placement (metres), matching the paper's Fig. 10 geometry.

    The WiFi transmitter sits at the origin; the ZigBee transmitter is
    ``d_wz`` away and its receiver a further ``d_z`` along the same line
    (the far side, away from the interferer); the WiFi receiver is ``d_w``
    from its transmitter on the opposite side.
    """

    d_wz: float = 4.0
    d_z: float = 1.0
    d_w: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.d_wz, "d_wz")
        require_positive(self.d_z, "d_z")
        require_positive(self.d_w, "d_w")

    @property
    def wifi_tx(self) -> Tuple[float, float]:
        """WiFi transmitter position."""
        return (0.0, 0.0)

    @property
    def wifi_rx(self) -> Tuple[float, float]:
        """WiFi receiver position."""
        return (-self.d_w, 0.0)

    @property
    def zigbee_tx(self) -> Tuple[float, float]:
        """ZigBee transmitter position."""
        return (self.d_wz, 0.0)

    @property
    def zigbee_rx(self) -> Tuple[float, float]:
        """ZigBee receiver position."""
        return (self.d_wz + self.d_z, 0.0)


@dataclass(frozen=True)
class CoexistenceConfig:
    """Everything one simulation run needs.

    Attributes:
        wifi: WiFi-side configuration.
        zigbee: ZigBee-side configuration.
        topology: node placement.
        duration_us: simulated time.
        seed: RNG seed (packet randomness, backoffs, fading).
        fading_sigma_db: per-packet lognormal shadowing applied to each
            link independently; 0 disables it.
        calibration: reported-dB anchor set.
    """

    wifi: WifiConfig = field(default_factory=WifiConfig)
    zigbee: ZigbeeConfig = field(default_factory=ZigbeeConfig)
    topology: Topology = field(default_factory=Topology)
    duration_us: float = 2_000_000.0
    seed: int = 1
    fading_sigma_db: float = 0.0
    calibration: Calibration = DEFAULT_CALIBRATION

    def __post_init__(self) -> None:
        require_positive(self.duration_us, "duration_us")
        if not 0.0 < self.wifi.duty_ratio <= 1.0:
            raise ConfigurationError(
                f"duty_ratio must be in (0, 1], got {self.wifi.duty_ratio}"
            )
