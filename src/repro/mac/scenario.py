"""Multi-cell coexistence scenarios: many BSSs, hundreds of sensors.

The two-node simulator (:mod:`repro.mac.simulator`) reproduces the paper's
single-link experiments; this module scales the *same* node state machines
onto the partitioned medium so one simulation can run overlapping WiFi
cells on channels 1/6/11 against hundreds of duty-cycled ZigBee sensors —
with hidden terminals and capture asymmetries emerging from the geometry
rather than from switches.

Determinism contract (pinned by ``tests/experiments/``):

* every node draws from its own RNG stream addressed by
  ``(master_seed, scenario name, trial index, node key)`` via
  :func:`repro.montecarlo.seeding.node_rng` — a node's randomness depends
  only on its stable string key, never on how many other nodes exist or
  where it sits in the config tuples;
* source ids, construction order, start order and result iteration all
  follow the sorted node keys, so shuffling the config tuples changes
  nothing;
* the event core dequeues by ``(time, tie-break)``; with per-node streams
  and key-ordered starts the whole run is a pure function of the config.

Every run is bounded by an event budget (a livelock guard): a degenerate
configuration fails with a typed :class:`~repro.errors.SimulationError`
instead of hanging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.channel.calibration import DEFAULT_CALIBRATION, Calibration
from repro.channel.propagation import wifi_profile
from repro.errors import ConfigurationError
from repro.mac.config import (
    WIFI_SCENARIO_CHANNELS,
    CoexistenceConfig,
    WifiConfig,
    ZigbeeConfig,
    zigbee_wifi_overlap,
)
from repro.mac.events import EventScheduler
from repro.mac.medium import (
    MediumView,
    PartitionedMedium,
    Position,
    SpatialIndex,
)
from repro.mac.traffic import PoissonTraffic, TrafficSpec
from repro.mac.wifi_node import CellAttachment, WifiNode, WifiStats
from repro.mac.zigbee_node import ZigbeeLink, ZigbeeStats
from repro.montecarlo.seeding import node_rng

#: Default per-node-per-millisecond event allowance for the budget guard.
_EVENTS_PER_NODE_MS = 200.0

#: Budget floor so tiny scenarios still have room for startup transients.
_EVENTS_FLOOR = 50_000


@dataclass(frozen=True)
class CellSpec:
    """One WiFi BSS of a scenario.

    Attributes:
        key: stable unique name (seeds the cell's RNG stream).
        wifi_channel: 2.4 GHz channel (one of 1/6/11).
        position: transmitter/AP (x, y) in metres.
        rx_position: the downlink station SINR is evaluated at.
        wifi: traffic shape and SledZig mode of this cell
            (``sledzig_channel`` names the protected overlap sub-channel).
        contend: carrier-sense other cells on the channel before each
            burst; False gives a blind transmitter (hidden-terminal
            baselines).
        ctc_depth: when set, the cell modulates its protected-sub power
            pattern with a CTC beacon at this modulation depth — each
            burst carries one symbol of the repeating
            :data:`CTC_BEACON_PAYLOAD` schedule (requires SledZig).
    """

    key: str
    wifi_channel: int
    position: Position
    rx_position: Position
    wifi: WifiConfig = field(default_factory=WifiConfig)
    contend: bool = True
    ctc_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigurationError("cell key must be non-empty")
        if self.wifi_channel not in WIFI_SCENARIO_CHANNELS:
            raise ConfigurationError(
                f"wifi_channel must be one of {WIFI_SCENARIO_CHANNELS}, "
                f"got {self.wifi_channel}"
            )
        if self.ctc_depth is not None:
            if not self.wifi.sledzig_enabled:
                raise ConfigurationError(
                    f"cell {self.key!r}: ctc_depth requires SledZig "
                    f"(there is no power pattern to modulate without it)"
                )
            if self.ctc_depth < 1:
                raise ConfigurationError(
                    f"cell {self.key!r}: ctc_depth must be >= 1, "
                    f"got {self.ctc_depth}"
                )


@dataclass(frozen=True)
class SensorSpec:
    """One duty-cycled ZigBee sensor link of a scenario.

    Attributes:
        key: stable unique name (seeds the sensor's RNG stream).
        zigbee_channel: IEEE 802.15.4 channel 11..26; the WiFi overlap
            sub-channel is derived from it.
        tx_position / rx_position: the link endpoints (must differ).
        traffic: arrival process (None: saturated, the legacy mode).
        zigbee: radio parameters (its ``channel_index`` is overridden by
            the derived overlap sub-channel).
        queue_limit: transmit queue bound in traffic mode (tail drop).
    """

    key: str
    zigbee_channel: int
    tx_position: Position
    rx_position: Position
    traffic: TrafficSpec = None
    zigbee: ZigbeeConfig = field(default_factory=ZigbeeConfig)
    queue_limit: int = 8

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigurationError("sensor key must be non-empty")
        zigbee_wifi_overlap(self.zigbee_channel)  # validates the range
        if self.tx_position == self.rx_position:
            raise ConfigurationError(
                f"sensor {self.key!r}: tx and rx cannot share a position"
            )
        if self.queue_limit < 0:
            raise ConfigurationError(
                f"sensor {self.key!r}: queue_limit must be >= 0"
            )


@dataclass(frozen=True)
class ScenarioConfig:
    """A full multi-cell coexistence scenario.

    Attributes:
        name: stable scenario name — part of every node's RNG address, so
            distinct scenarios draw independent randomness under the same
            master seed.
        cells / sensors: the node population (any iteration order; the
            engine sorts by key).
        duration_us: simulated time.
        master_seed / trial_index: the RNG stream address prefix.
        fading_sigma_db: per-packet lognormal shadowing (0 disables).
        calibration: reported-dB anchor set.
        max_events: event-budget override; None derives a generous bound
            from the population and duration.
    """

    name: str
    cells: Tuple[CellSpec, ...] = ()
    sensors: Tuple[SensorSpec, ...] = ()
    duration_us: float = 150_000.0
    master_seed: int = 0
    trial_index: int = 0
    fading_sigma_db: float = 0.0
    calibration: Calibration = DEFAULT_CALIBRATION
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.duration_us <= 0:
            raise ConfigurationError("duration_us must be positive")
        if self.trial_index < 0:
            raise ConfigurationError("trial_index must be non-negative")
        keys = [c.key for c in self.cells] + [s.key for s in self.sensors]
        if len(set(keys)) != len(keys):
            seen: set = set()
            dupes = sorted({k for k in keys if k in seen or seen.add(k)})
            raise ConfigurationError(f"duplicate node keys: {dupes}")

    def event_budget(self) -> int:
        """The run's event allowance (explicit override or derived)."""
        if self.max_events is not None:
            return self.max_events
        n_nodes = len(self.cells) + len(self.sensors)
        derived = _EVENTS_PER_NODE_MS * max(1, n_nodes) * (self.duration_us / 1000.0)
        return max(_EVENTS_FLOOR, int(derived))


@dataclass
class ScenarioResult:
    """Outcome of one scenario run.

    Attributes:
        config: the scenario that ran.
        sensors: per-sensor counters, keyed by spec key (sorted order).
        cells: per-cell counters, keyed by spec key (sorted order).
        events_dispatched: total events the run processed.
    """

    config: ScenarioConfig
    sensors: Dict[str, ZigbeeStats]
    cells: Dict[str, WifiStats]
    events_dispatched: int

    @property
    def packets_attempted(self) -> int:
        return sum(s.packets_attempted for s in self.sensors.values())

    @property
    def packets_delivered(self) -> int:
        return sum(s.packets_delivered for s in self.sensors.values())

    @property
    def delivery_ratio(self) -> float:
        """Delivered / attempted across all sensors.

        A scenario with nothing attempted (no sensors, or traffic models
        that never fire) delivers everything it was asked to — 1.0 — so
        the ratio stays a meaningful scalar for baseline variants.
        """
        attempted = self.packets_attempted
        if attempted == 0:
            return 1.0
        return self.packets_delivered / attempted

    @property
    def zigbee_throughput_kbps(self) -> float:
        """Network-total delivered ZigBee throughput."""
        return sum(
            s.payload_bits_delivered for s in self.sensors.values()
        ) / self.config.duration_us * 1000.0

    @property
    def wifi_throughput_mbps(self) -> float:
        """Network-total WiFi DATA throughput."""
        return sum(
            c.payload_bits for c in self.cells.values()
        ) / self.config.duration_us


def _cell_payload_by_sub(
    wifi: WifiConfig, calibration: Calibration
) -> Tuple[float, float, float, float]:
    """Payload level at 1 m per overlap sub-channel CH1..CH4.

    SledZig shapes only the sub-band it protects; the other three read the
    normal (non-SledZig) level — the physical reason one cell cannot
    protect every ZigBee channel at once.
    """
    from repro.wifi.params import get_mcs

    modulation = get_mcs(wifi.mcs_name).modulation
    levels = []
    for sub in (1, 2, 3, 4):
        protected = wifi.sledzig_enabled and wifi.sledzig_channel == sub
        profile = wifi_profile(
            channel=sub,
            sledzig_modulation=modulation if protected else None,
            tx_gain_db=wifi.tx_gain_db,
            calibration=calibration,
        )
        levels.append(profile.payload_db_at_1m)
    return tuple(levels)  # type: ignore[return-value]


#: The side-channel beacon a CTC-enabled cell repeats, one symbol per
#: burst (a single octet keeps the cycle short: 64 bursts per frame).
CTC_BEACON_PAYLOAD: bytes = b"\xa5"


def _ctc_payload_cycle(
    wifi: WifiConfig, calibration: Calibration, depth: int
) -> Tuple[Tuple[float, float, float, float], ...]:
    """Per-burst CH1..CH4 level cycle carrying the CTC beacon.

    Symbol 1 bursts use the plain SledZig levels; symbol 0 bursts raise
    only the protected sub to the measured-anchored 0-symbol level (the
    full-protection decrease scaled by the alphabet's analytic pattern
    ratio — see :func:`repro.sledzig.ctc.alphabet.scaled_decreases_db`).
    """
    from repro.sledzig.ctc.alphabet import ctc_alphabet, scaled_decreases_db
    from repro.sledzig.ctc.modem import CtcModulator

    sub = wifi.sledzig_channel
    if sub is None:
        raise ConfigurationError("CTC modulation requires a SledZig sub-channel")
    protected = _cell_payload_by_sub(wifi, calibration)
    alphabet = ctc_alphabet(wifi.mcs_name, sub, depth)
    low_decrease, _ = scaled_decreases_db(alphabet, calibration)
    normal = wifi_profile(
        channel=sub, tx_gain_db=wifi.tx_gain_db, calibration=calibration
    ).payload_db_at_1m
    released = list(protected)
    released[sub - 1] = normal - low_decrease
    levels = (tuple(released), protected)
    schedule = CtcModulator(wifi.mcs_name, sub, depth).pattern_schedule(
        CTC_BEACON_PAYLOAD
    )
    return tuple(levels[bit] for bit in schedule)  # type: ignore[return-value]


def _overlapping_zigbee_channels(wifi_channel: int) -> List[int]:
    """IEEE 802.15.4 channels inside one WiFi band, ascending."""
    return [
        z
        for z in range(11, 27)
        if (pair := zigbee_wifi_overlap(z)) is not None and pair[0] == wifi_channel
    ]


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Run one multi-cell scenario to completion.

    Raises:
        SimulationError: when the event budget is exhausted (livelock
            guard) or the medium protocol is violated.
        ConfigurationError: on invalid specs (already at construction).
    """
    scheduler = EventScheduler()
    spatial = SpatialIndex()
    medium = PartitionedMedium(config.calibration, spatial)
    experiment = f"scenario/{config.name}"

    cell_specs = {c.key: c for c in config.cells}
    sensor_specs = {s.key: s for s in config.sensors}
    ordered_keys = sorted(cell_specs) + sorted(sensor_specs)
    source_by_key = {key: i + 1 for i, key in enumerate(ordered_keys)}

    wifi_nodes: Dict[str, WifiNode] = {}
    zigbee_links: Dict[str, ZigbeeLink] = {}

    for key in sorted(cell_specs):
        spec = cell_specs[key]
        source = source_by_key[key]
        spatial.register(source, spec.position)
        view = MediumView(
            medium,
            spec.position,
            wifi_band=medium.wifi_band(spec.wifi_channel),
            wifi_source=source,
            zigbee_rx_bands=tuple(
                medium.zigbee_band(z)
                for z in _overlapping_zigbee_channels(spec.wifi_channel)
            ),
        )
        cell_config = CoexistenceConfig(
            wifi=spec.wifi,
            zigbee=ZigbeeConfig(channel_index=spec.wifi.sledzig_channel or 1),
            duration_us=config.duration_us,
            seed=0,
            fading_sigma_db=config.fading_sigma_db,
            calibration=config.calibration,
        )
        attachment = CellAttachment(
            source=source,
            position=spec.position,
            rx_position=spec.rx_position,
            payload_db_by_sub=_cell_payload_by_sub(spec.wifi, config.calibration),
            payload_db_by_sub_cycle=(
                _ctc_payload_cycle(spec.wifi, config.calibration, spec.ctc_depth)
                if spec.ctc_depth is not None
                else None
            ),
            contend=spec.contend,
            cs_threshold_db=config.calibration.wifi_cca_threshold_db,
        )
        wifi_nodes[key] = WifiNode(
            cell_config,
            scheduler,
            view,
            node_rng(config.master_seed, experiment, config.trial_index, key),
            cell=attachment,
        )

    for key in sorted(sensor_specs):
        spec = sensor_specs[key]
        source = source_by_key[key]
        spatial.register(source, spec.tx_position)
        overlap = zigbee_wifi_overlap(spec.zigbee_channel)
        view = MediumView(
            medium,
            spec.tx_position,
            wifi_band=medium.wifi_band(overlap[0]) if overlap else None,
            sub_index=overlap[1] if overlap else None,
            zigbee_tx_band=medium.zigbee_band(spec.zigbee_channel),
            zigbee_rx_bands=(medium.zigbee_band(spec.zigbee_channel),),
        )
        sensor_config = CoexistenceConfig(
            wifi=WifiConfig(saturated=False),
            zigbee=replace(
                spec.zigbee, channel_index=overlap[1] if overlap else 1
            ),
            duration_us=config.duration_us,
            seed=0,
            fading_sigma_db=config.fading_sigma_db,
            calibration=config.calibration,
        )
        zigbee_links[key] = ZigbeeLink(
            sensor_config,
            scheduler,
            view,
            node_rng(config.master_seed, experiment, config.trial_index, key),
            link_id=source,
            tx_position=spec.tx_position,
            rx_position=spec.rx_position,
            traffic=spec.traffic,
            queue_limit=spec.queue_limit,
        )

    for key in ordered_keys:
        node = wifi_nodes.get(key) or zigbee_links.get(key)
        node.start()

    dispatched = scheduler.run_until(
        config.duration_us, max_events=config.event_budget()
    )

    result = ScenarioResult(
        config=config,
        sensors={key: zigbee_links[key].stats for key in sorted(zigbee_links)},
        cells={key: wifi_nodes[key].stats for key in sorted(wifi_nodes)},
        events_dispatched=dispatched,
    )
    _export_scenario_telemetry(result)
    return result


def _export_scenario_telemetry(result: ScenarioResult) -> None:
    """Per-node and aggregate counters for ``--metrics-out`` manifests.

    Counter names embed the scenario name and the node key, so grid points
    and variants never collide when one experiment run merges many
    scenarios into a single snapshot; trials of the same scenario sum.
    """
    tel = telemetry.current()
    prefix = f"scenario.{result.config.name}"
    tel.count(f"{prefix}.runs")
    tel.count(f"{prefix}.events", result.events_dispatched)
    tel.count(f"{prefix}.zigbee.packets_attempted", result.packets_attempted)
    tel.count(f"{prefix}.zigbee.packets_delivered", result.packets_delivered)
    tel.gauge(f"{prefix}.zigbee.delivery_ratio", result.delivery_ratio)
    for key, stats in result.sensors.items():
        tel.count(f"{prefix}.sensor.{key}.attempted", stats.packets_attempted)
        tel.count(f"{prefix}.sensor.{key}.delivered", stats.packets_delivered)
    for key, stats in result.cells.items():
        tel.count(f"{prefix}.cell.{key}.bursts", stats.bursts_sent)
        tel.count(f"{prefix}.cell.{key}.deferrals", stats.deferrals)


#: The BSS anchor positions of a 3-cell grid (metres): an equilateral-ish
#: triangle ~25 m apart, channels 1/6/11 — neighbours are on different
#: channels but inside each other's interference range via sub-overlap.
_BSS_BASES: Tuple[Position, Position, Position] = (
    (0.0, 0.0),
    (25.0, 0.0),
    (12.5, 21.65),
)

#: ZigBee channels riding sub-channel CH2 of WiFi channels 1/6/11 — the
#: sub a SledZig cell protects in the grid scenarios.
_GRID_ZIGBEE_CHANNELS: Tuple[int, int, int] = (12, 17, 22)

#: The protected overlap sub-channel of the grid scenarios.
GRID_SLEDZIG_SUB = 2


def grid_scenario(
    n_bss: int,
    n_sensors: int,
    *,
    name: Optional[str] = None,
    duration_us: float = 150_000.0,
    master_seed: int = 0,
    trial_index: int = 0,
    sledzig: bool = False,
    ctc_depth: Optional[int] = None,
    wifi_saturated: bool = True,
    duty_ratio: float = 0.5,
    burst_duration_us: float = 2000.0,
    mcs_name: str = "qam64-2/3",
    traffic: TrafficSpec = PoissonTraffic(rate_per_s=40.0),
    fading_sigma_db: float = 0.0,
    max_events: Optional[int] = None,
) -> ScenarioConfig:
    """A deterministic multi-cell grid: *n_bss* WiFi cells, *n_sensors* sensors.

    Geometry is a pure function of the counts: cells cycle through three
    anchor positions on channels 1/6/11 (extra triples shift 60 m east,
    beyond interference range), each sensor attaches to cell ``j % n_bss``
    on the ZigBee channel riding that cell's CH2 sub-band, placed on
    golden-angle rings 4..13 m out with a 0.5 m link.  With ``sledzig``
    every cell protects CH2 — exactly the sensors' sub-channel.  With
    ``ctc_depth`` (requires ``sledzig``) every cell additionally modulates
    the CTC beacon onto its protected-sub power pattern, one symbol per
    burst.

    Degenerate counts are first-class: ``n_bss=0`` is the ZigBee-alone
    field (sensors cluster around the origin anchors), ``n_sensors=0`` the
    WiFi-alone grid.
    """
    if n_bss < 0 or n_sensors < 0:
        raise ConfigurationError("node counts must be non-negative")
    scenario_name = name or (
        f"grid/b{n_bss}/s{n_sensors}/"
        f"{'sledzig' if sledzig else 'wifi' if wifi_saturated else 'quiet'}"
        + (f"/ctc{ctc_depth}" if ctc_depth is not None else "")
    )

    def _cell_anchor(index: int) -> Position:
        base = _BSS_BASES[index % 3]
        return (base[0] + 60.0 * (index // 3), base[1])

    cells = tuple(
        CellSpec(
            key=f"bss{k:02d}",
            wifi_channel=WIFI_SCENARIO_CHANNELS[k % 3],
            position=_cell_anchor(k),
            rx_position=(_cell_anchor(k)[0], _cell_anchor(k)[1] + 1.0),
            wifi=WifiConfig(
                mcs_name=mcs_name,
                sledzig_channel=GRID_SLEDZIG_SUB if sledzig else None,
                duty_ratio=duty_ratio,
                burst_duration_us=burst_duration_us,
                saturated=wifi_saturated,
            ),
            ctc_depth=ctc_depth,
        )
        for k in range(n_bss)
    )

    sensors = []
    for j in range(n_sensors):
        anchor_index = j % n_bss if n_bss > 0 else j % 3
        center = _cell_anchor(anchor_index)
        ring = (j // max(1, n_bss)) % 4
        radius = 4.0 + 3.0 * ring
        angle = math.radians((j * 137.5) % 360.0)
        tx = (
            center[0] + radius * math.cos(angle),
            center[1] + radius * math.sin(angle),
        )
        sensors.append(
            SensorSpec(
                key=f"sensor{j:03d}",
                zigbee_channel=_GRID_ZIGBEE_CHANNELS[anchor_index % 3],
                tx_position=tx,
                rx_position=(tx[0] + 0.3, tx[1] + 0.4),
                traffic=traffic,
            )
        )

    return ScenarioConfig(
        name=scenario_name,
        cells=cells,
        sensors=tuple(sensors),
        duration_us=duration_us,
        master_seed=master_seed,
        trial_index=trial_index,
        fading_sigma_db=fading_sigma_db,
        max_events=max_events,
    )
