"""Top-level coexistence simulator: wire the devices, run, report.

One call — :func:`run_coexistence` — reproduces one data point of the
paper's Figs. 14/15/16: place the links, run the event loop for the
configured duration, and return throughput and packet counters for both
networks.  Batch helpers sweep a parameter across seeds for box-plot style
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.channel.propagation import distance, wifi_at_wifi_rx, zigbee_at_wifi_rx
from repro.mac.config import CoexistenceConfig
from repro.mac.events import EventScheduler
from repro.mac.medium import Medium
from repro.mac.wifi_node import WifiNode, WifiStats
from repro.mac.zigbee_node import ZigbeeLink, ZigbeeStats


@dataclass
class CoexistenceResult:
    """Outcome of one simulation run.

    Attributes:
        config: the configuration that produced it.
        zigbee: ZigBee counters.
        wifi: WiFi counters.
        wifi_sinr_db: WiFi link SINR against concurrent ZigBee energy
            (the paper's Section V-D2 check).
    """

    config: CoexistenceConfig
    zigbee: ZigbeeStats
    wifi: WifiStats
    wifi_sinr_db: float

    @property
    def zigbee_throughput_kbps(self) -> float:
        """Delivered ZigBee payload throughput."""
        return self.zigbee.throughput_kbps(self.config.duration_us)

    @property
    def wifi_throughput_mbps(self) -> float:
        """WiFi application throughput (extra bits excluded)."""
        return self.wifi.throughput_mbps(self.config.duration_us)

    @property
    def wifi_link_ok(self) -> bool:
        """Whether the WiFi SINR clears its MCS minimum (ZigBee harmless)."""
        from repro.wifi.params import get_mcs

        return self.wifi_sinr_db >= get_mcs(self.config.wifi.mcs_name).min_snr_db


def run_coexistence(config: CoexistenceConfig) -> CoexistenceResult:
    """Run one coexistence scenario to completion."""
    scheduler = EventScheduler()
    medium = Medium(config.calibration)
    rng = np.random.default_rng(config.seed)
    wifi = WifiNode(config, scheduler, medium, rng)
    zigbee = ZigbeeLink(config, scheduler, medium, rng)
    wifi.start()
    zigbee.start()
    scheduler.run_until(config.duration_us)

    # WiFi-side SINR against ZigBee (worst case: ZigBee transmitting).
    topo = config.topology
    wifi_signal = wifi_at_wifi_rx(
        distance(topo.wifi_tx, topo.wifi_rx),
        config.wifi.tx_gain_db,
        config.calibration,
    )
    zigbee_interference = zigbee_at_wifi_rx(
        distance(topo.zigbee_tx, topo.wifi_rx),
        config.zigbee.tx_gain,
        config.calibration,
        floor=True,
    )
    wifi_sinr = wifi_signal - zigbee_interference
    return CoexistenceResult(
        config=config,
        zigbee=zigbee.stats,
        wifi=wifi.stats,
        wifi_sinr_db=wifi_sinr,
    )


@dataclass
class SweepPoint:
    """Aggregated statistics for one parameter value across seeds.

    Attributes:
        value: the swept parameter value.
        throughputs_kbps: per-seed ZigBee throughputs.
    """

    value: float
    throughputs_kbps: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        """Mean ZigBee throughput (kbps)."""
        return float(np.mean(self.throughputs_kbps)) if self.throughputs_kbps else 0.0

    @property
    def median(self) -> float:
        """Median ZigBee throughput (kbps)."""
        return float(np.median(self.throughputs_kbps)) if self.throughputs_kbps else 0.0

    def quartiles(self) -> "tuple[float, float]":
        """Lower and upper quartiles — the paper's Fig. 16 box edges."""
        if not self.throughputs_kbps:
            return (0.0, 0.0)
        q1, q3 = np.percentile(self.throughputs_kbps, [25, 75])
        return (float(q1), float(q3))


def sweep(
    base_config: CoexistenceConfig,
    values: Sequence[float],
    apply_value: Callable[[CoexistenceConfig, float], CoexistenceConfig],
    n_seeds: int = 3,
) -> List[SweepPoint]:
    """Run a parameter sweep with *n_seeds* repetitions per value."""
    points: List[SweepPoint] = []
    for value in values:
        point = SweepPoint(value=value)
        for seed_offset in range(n_seeds):
            config = apply_value(base_config, value)
            config = replace(config, seed=base_config.seed + seed_offset * 101)
            result = run_coexistence(config)
            point.throughputs_kbps.append(result.zigbee_throughput_kbps)
        points.append(point)
    return points
