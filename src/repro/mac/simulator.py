"""Top-level coexistence simulator: wire the devices, run, report.

One call — :func:`run_coexistence` — reproduces one data point of the
paper's Figs. 14/15/16: place the links, run the event loop for the
configured duration, and return throughput and packet counters for both
networks.  Batch helpers sweep a parameter across seeds for box-plot style
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro import telemetry
from repro.channel.propagation import distance, wifi_at_wifi_rx, zigbee_at_wifi_rx
from repro.mac.config import CoexistenceConfig
from repro.montecarlo import MonteCarloEngine, TrialSummary, summarize_mean
from repro.mac.events import EventScheduler
from repro.mac.medium import Medium
from repro.mac.wifi_node import WifiNode, WifiStats
from repro.mac.zigbee_node import ZigbeeLink, ZigbeeStats


@dataclass
class CoexistenceResult:
    """Outcome of one simulation run.

    Attributes:
        config: the configuration that produced it.
        zigbee: ZigBee counters.
        wifi: WiFi counters.
        wifi_sinr_db: WiFi link SINR against concurrent ZigBee energy
            (the paper's Section V-D2 check).
    """

    config: CoexistenceConfig
    zigbee: ZigbeeStats
    wifi: WifiStats
    wifi_sinr_db: float

    @property
    def zigbee_throughput_kbps(self) -> float:
        """Delivered ZigBee payload throughput."""
        return self.zigbee.throughput_kbps(self.config.duration_us)

    @property
    def wifi_throughput_mbps(self) -> float:
        """WiFi application throughput (extra bits excluded)."""
        return self.wifi.throughput_mbps(self.config.duration_us)

    @property
    def wifi_link_ok(self) -> bool:
        """Whether the WiFi SINR clears its MCS minimum (ZigBee harmless)."""
        from repro.wifi.params import get_mcs

        return self.wifi_sinr_db >= get_mcs(self.config.wifi.mcs_name).min_snr_db


def run_coexistence(
    config: CoexistenceConfig,
    rng: "np.random.Generator | None" = None,
) -> CoexistenceResult:
    """Run one coexistence scenario to completion.

    Args:
        config: the scenario.
        rng: the generator driving every random draw (backoffs, payloads,
            fading).  When None it is derived from ``config.seed``; the
            Monte-Carlo engine instead passes the trial's addressed stream
            so sweeps are reproducible under any execution order.
    """
    scheduler = EventScheduler()
    medium = Medium(config.calibration)
    if rng is None:
        rng = np.random.default_rng(config.seed)
    wifi = WifiNode(config, scheduler, medium, rng)
    zigbee = ZigbeeLink(config, scheduler, medium, rng)
    wifi.start()
    zigbee.start()
    scheduler.run_until(config.duration_us)

    # WiFi-side SINR against ZigBee (worst case: ZigBee transmitting).
    topo = config.topology
    wifi_signal = wifi_at_wifi_rx(
        distance(topo.wifi_tx, topo.wifi_rx),
        config.wifi.tx_gain_db,
        config.calibration,
    )
    zigbee_interference = zigbee_at_wifi_rx(
        distance(topo.zigbee_tx, topo.wifi_rx),
        config.zigbee.tx_gain,
        config.calibration,
        floor=True,
    )
    wifi_sinr = wifi_signal - zigbee_interference
    result = CoexistenceResult(
        config=config,
        zigbee=zigbee.stats,
        wifi=wifi.stats,
        wifi_sinr_db=wifi_sinr,
    )
    _export_run_telemetry(result)
    return result


def _export_run_telemetry(result: CoexistenceResult) -> None:
    """Export one run's channel-occupancy and backoff counters.

    Everything here derives from the (seed-deterministic) event-loop
    outcome, so the counters satisfy the telemetry layer's merge
    determinism across serial/batched/worker execution.
    """
    tel = telemetry.current()
    z, w = result.zigbee, result.wifi
    tel.count("mac.runs")
    tel.count("mac.duration_us", result.config.duration_us)
    tel.count("mac.zigbee.packets_attempted", z.packets_attempted)
    tel.count("mac.zigbee.packets_sent", z.packets_sent)
    tel.count("mac.zigbee.packets_delivered", z.packets_delivered)
    tel.count("mac.zigbee.packets_dropped_cca", z.packets_dropped_cca)
    tel.count("mac.zigbee.packets_failed", z.packets_failed)
    tel.count("mac.zigbee.cca_attempts", z.cca_attempts)
    tel.count("mac.zigbee.cca_busy", z.cca_busy)
    tel.count("mac.wifi.bursts_sent", w.bursts_sent)
    tel.count("mac.wifi.airtime_us", w.airtime_us)
    if result.config.duration_us > 0:
        tel.gauge(
            "mac.wifi.occupancy", w.airtime_us / result.config.duration_us
        )


@dataclass
class SweepPoint:
    """Aggregated statistics for one parameter value across seeds.

    Attributes:
        value: the swept parameter value.
        throughputs_kbps: per-seed ZigBee throughputs.
    """

    value: float
    throughputs_kbps: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        """Mean ZigBee throughput (kbps)."""
        return float(np.mean(self.throughputs_kbps)) if self.throughputs_kbps else 0.0

    @property
    def median(self) -> float:
        """Median ZigBee throughput (kbps)."""
        return float(np.median(self.throughputs_kbps)) if self.throughputs_kbps else 0.0

    def quartiles(self) -> "tuple[float, float]":
        """Lower and upper quartiles — the paper's Fig. 16 box edges."""
        if not self.throughputs_kbps:
            return (0.0, 0.0)
        q1, q3 = np.percentile(self.throughputs_kbps, [25, 75])
        return (float(q1), float(q3))

    def summary(self) -> TrialSummary:
        """Mean with 95 % confidence interval over the per-seed runs."""
        return summarize_mean(self.throughputs_kbps)


def _sweep_trial(
    rng: np.random.Generator,
    index: int,
    base_config: CoexistenceConfig,
    value: float,
    apply_value: Callable[[CoexistenceConfig, float], CoexistenceConfig],
) -> float:
    """One repetition of one sweep point, driven by its addressed stream."""
    config = apply_value(base_config, value)
    return run_coexistence(config, rng=rng).zigbee_throughput_kbps


def sweep(
    base_config: CoexistenceConfig,
    values: Sequence[float],
    apply_value: Callable[[CoexistenceConfig, float], CoexistenceConfig],
    n_seeds: int = 3,
    experiment: str = "mac.sweep",
    workers: int = 0,
    target_halfwidth: "float | None" = None,
) -> List[SweepPoint]:
    """Run a parameter sweep with *n_seeds* repetitions per value.

    Each repetition runs on the Monte-Carlo engine under the experiment key
    ``"{experiment}/value={value}"`` and ``base_config.seed`` as the master
    seed, so results are bit-identical for any *workers* count and the
    per-seed runs of different points are statistically independent.
    *target_halfwidth* stops a point early once its 95 % CI is tight
    enough (*n_seeds* then acts as the budget).
    """
    points: List[SweepPoint] = []
    for value in values:
        engine = MonteCarloEngine(
            f"{experiment}/value={value}", master_seed=base_config.seed
        )
        result = engine.run(
            partial(
                _sweep_trial,
                base_config=base_config,
                value=value,
                apply_value=apply_value,
            ),
            n_seeds,
            workers=workers,
            target_halfwidth=target_halfwidth,
            min_trials=min(2, n_seeds),
        )
        points.append(
            SweepPoint(value=value, throughputs_kbps=[float(v) for v in result.outcomes])
        )
    return points
