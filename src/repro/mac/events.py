"""Microsecond-resolution discrete-event core: indexed calendar/heap queue.

The original scheduler was a plain ``heapq`` of ``(time, seq, callback)``
tuples with a grow-only cancelled-id set — fine for two nodes, but a
thousand-node scenario cancels and reschedules constantly (CSMA backoff
timers, traffic arrivals), and dead entries then dominate the heap.

:class:`CalendarQueue` keeps the same deterministic total order — events
dequeue by ``(time, tie-break sequence)``, so equal timestamps resolve in
schedule order (FIFO) — but adds an index table from event id to its live
heap key, giving:

* O(1) cancellation (the index entry is dropped; the heap entry dies lazily);
* O(log n) rescheduling that *keeps the event id* while taking a fresh
  tie-break (a rescheduled event behaves exactly as cancel + schedule-now);
* bounded garbage: when dead entries outnumber live ones the heap is
  compacted in place, so long scenario runs with heavy cancel/reschedule
  traffic stay at O(live events) memory — the old cancelled-id set grew
  without bound.

Time is a float in microseconds, matching the MAC constants of both
standards (9/28 us WiFi slots vs 320 us ZigBee periods).  Determinism is
the load-bearing property: the scenario engine's bit-reproducibility (and
the two-node golden pins in ``tests/mac/``) rest on the dequeue order being
a pure function of the schedule/cancel/reschedule call sequence.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

EventCallback = Callable[[], None]

#: Compaction is skipped below this many dead entries (tiny heaps churn).
_COMPACT_FLOOR = 64


class CalendarQueue:
    """Indexed heap of ``(time, tie-break, event id)`` keys.

    The queue stores opaque payloads keyed by a monotonically increasing
    event id.  Dequeue order is strictly ``(time, tie-break)``; every
    ``push`` and ``reschedule`` takes the next tie-break, so FIFO holds at
    equal timestamps and a rescheduled event ties *after* events already
    queued for its new time.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int]] = []
        # event id -> (time, tie-break, payload); absence means cancelled/fired.
        self._live: Dict[int, Tuple[float, int, object]] = {}
        self._next_id = 0
        self._next_tiebreak = 0
        self._dead = 0

    def __len__(self) -> int:
        """Number of live (pending) events."""
        return len(self._live)

    def push(self, time: float, payload: object) -> int:
        """Queue *payload* at *time*; returns the event id."""
        self._next_id += 1
        self._next_tiebreak += 1
        event_id = self._next_id
        self._live[event_id] = (time, self._next_tiebreak, payload)
        heapq.heappush(self._heap, (time, self._next_tiebreak, event_id))
        return event_id

    def remove(self, event_id: int) -> bool:
        """Remove a pending event; False if unknown, fired, or removed."""
        if event_id not in self._live:
            return False
        del self._live[event_id]
        self._dead += 1
        self._maybe_compact()
        return True

    def reschedule(self, event_id: int, new_time: float) -> bool:
        """Move a pending event to *new_time*, keeping its id.

        The event takes a fresh tie-break: at its new timestamp it dequeues
        after anything already queued there, exactly as if it had been
        cancelled and re-pushed now.  Returns False if the id is not live.
        """
        entry = self._live.get(event_id)
        if entry is None:
            return False
        self._next_tiebreak += 1
        self._live[event_id] = (new_time, self._next_tiebreak, entry[2])
        heapq.heappush(self._heap, (new_time, self._next_tiebreak, event_id))
        self._dead += 1  # the old heap key is now stale
        self._maybe_compact()
        return True

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None when empty."""
        self._skip_dead()
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Tuple[float, int, object]:
        """Dequeue the earliest live event as ``(time, id, payload)``."""
        self._skip_dead()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        time, tiebreak, event_id = heapq.heappop(self._heap)
        payload = self._live.pop(event_id)[2]
        return time, event_id, payload

    def _skip_dead(self) -> None:
        """Drop stale heap keys (cancelled or superseded by reschedule)."""
        heap = self._heap
        while heap:
            time, tiebreak, event_id = heap[0]
            entry = self._live.get(event_id)
            if entry is not None and entry[0] == time and entry[1] == tiebreak:
                return
            heapq.heappop(heap)
            self._dead -= 1

    def _maybe_compact(self) -> None:
        """Rebuild the heap from live entries once dead keys dominate."""
        if self._dead < _COMPACT_FLOOR or self._dead <= len(self._live):
            return
        self._heap = [
            (time, tiebreak, event_id)
            for event_id, (time, tiebreak, _payload) in self._live.items()
        ]
        heapq.heapify(self._heap)
        self._dead = 0


class EventScheduler:
    """Deterministic single-threaded event loop in simulated microseconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue = CalendarQueue()

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def schedule(self, delay_us: float, callback: EventCallback) -> int:
        """Schedule *callback* after *delay_us*; returns a cancellable id."""
        if delay_us < 0:
            raise SimulationError(f"cannot schedule {delay_us} us in the past")
        return self._queue.push(self._now + delay_us, callback)

    def cancel(self, event_id: int) -> None:
        """Cancel a pending event by id (no-op if already fired)."""
        self._queue.remove(event_id)

    def reschedule(self, event_id: int, delay_us: float) -> bool:
        """Move a pending event to ``now + delay_us``, keeping its id.

        Returns False when the event already fired or was cancelled — the
        caller decides whether that means scheduling afresh.
        """
        if delay_us < 0:
            raise SimulationError(f"cannot reschedule {delay_us} us in the past")
        return self._queue.reschedule(event_id, self._now + delay_us)

    def run_until(
        self, end_time_us: float, max_events: Optional[int] = None
    ) -> int:
        """Process events up to and including *end_time_us*.

        Returns the number of events dispatched.  *max_events* bounds the
        dispatch count as a livelock guard for degenerate scenarios; when
        the budget is exhausted a :class:`SimulationError` is raised with
        the simulated time reached, so a hung configuration fails loudly
        inside the typed error hierarchy instead of spinning forever.
        """
        if end_time_us < self._now:
            raise SimulationError("cannot run the clock backwards")
        dispatched = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > end_time_us:
                break
            if max_events is not None and dispatched >= max_events:
                raise SimulationError(
                    f"event budget ({max_events}) exhausted at "
                    f"t={self._now:.1f} us with {len(self._queue)} pending"
                )
            time, _event_id, payload = self._queue.pop()
            self._now = time
            payload()  # type: ignore[operator]
            dispatched += 1
        self._now = end_time_us
        return dispatched

    def pending(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
