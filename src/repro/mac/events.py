"""Microsecond-resolution discrete-event scheduler.

A tiny, deterministic event loop: events are (time, sequence, callback)
tuples in a heap; ties break by insertion order so runs are reproducible
for a fixed seed.  Time is a float in microseconds, matching the MAC
constants of both standards (9/28 us WiFi slots vs 320 us ZigBee periods).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

EventCallback = Callable[[], None]


class EventScheduler:
    """Deterministic single-threaded event loop in simulated microseconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._heap: List[Tuple[float, int, EventCallback]] = []
        self._cancelled: set = set()

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def schedule(self, delay_us: float, callback: EventCallback) -> int:
        """Schedule *callback* after *delay_us*; returns a cancellable id."""
        if delay_us < 0:
            raise SimulationError(f"cannot schedule {delay_us} us in the past")
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay_us, self._sequence, callback))
        return self._sequence

    def cancel(self, event_id: int) -> None:
        """Cancel a pending event by id (no-op if already fired)."""
        self._cancelled.add(event_id)

    def run_until(self, end_time_us: float) -> None:
        """Process events up to and including *end_time_us*."""
        if end_time_us < self._now:
            raise SimulationError("cannot run the clock backwards")
        while self._heap and self._heap[0][0] <= end_time_us:
            time, seq, callback = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._now = time
            callback()
        self._now = end_time_us

    def pending(self) -> int:
        """Number of events still queued (cancelled ones included)."""
        return len(self._heap)
