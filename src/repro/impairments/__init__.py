"""Channel impairment and fault-injection subsystem.

Composable, batched, seed-deterministic models of the RF imperfections the
paper's USRP/TelosB testbed exposes SledZig to — carrier frequency offset,
sampling clock drift, IQ imbalance, phase noise, multipath fading and ADC
quantization — so the reproduction's claims can be validated under
realistic distortion rather than idealised path loss + AWGN.

See :mod:`repro.impairments.kernels` for the kernel contract and
:mod:`repro.impairments.pipeline` for composition; the
``robustness_waterfall`` experiment sweeps these against the WiFi, SledZig
and ZigBee receivers.
"""

from repro.impairments.kernels import (
    Adc,
    CarrierFrequencyOffset,
    ImpairmentKernel,
    IQImbalance,
    Multipath,
    PhaseNoise,
    SamplingClockOffset,
)
from repro.impairments.pipeline import ImpairmentPipeline

__all__ = [
    "Adc",
    "CarrierFrequencyOffset",
    "ImpairmentKernel",
    "ImpairmentPipeline",
    "IQImbalance",
    "Multipath",
    "PhaseNoise",
    "SamplingClockOffset",
]
