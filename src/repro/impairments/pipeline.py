"""Composable impairment pipelines over batched waveforms.

An :class:`ImpairmentPipeline` chains impairment kernels in order; applying
it to a ``(batch, samples)`` matrix runs every kernel's ``apply`` in
sequence under the same per-row generators.  Because each kernel draws row
*k*'s randomness only from ``rngs[k]`` and the kernel order is fixed, the
draw sequence a trial sees depends only on its addressed generator — never
on the batch it happens to share — which keeps impaired Monte-Carlo trials
bit-identical at any batch size or worker count (pinned by
``tests/impairments/test_conformance.py``).

Typical wiring inside a Monte-Carlo ``batch_fn``::

    pipeline = ImpairmentPipeline((
        CarrierFrequencyOffset(96e3, SAMPLE_RATE_HZ),
        Multipath(n_taps=4),
    ))
    impaired = pipeline.apply(stack_waveforms(waves), rngs)
    noisy = awgn_batch(impaired, snr_db, rngs)

The impairments draw from the trial streams *before* ``awgn_batch`` does,
so the scalar reference path must apply them in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.channel.batch import _as_batch
from repro.errors import ConfigurationError
from repro.impairments.kernels import ImpairmentKernel

__all__ = ["ImpairmentPipeline"]


@dataclass(frozen=True)
class ImpairmentPipeline:
    """An ordered chain of impairment kernels with one ``apply`` call."""

    kernels: Tuple[ImpairmentKernel, ...] = ()

    def __post_init__(self) -> None:
        for kernel in self.kernels:
            if not isinstance(kernel, ImpairmentKernel):
                raise ConfigurationError(
                    f"{kernel!r} is not an ImpairmentKernel"
                )

    @property
    def uses_rng(self) -> bool:
        """Whether any stage consumes per-row randomness."""
        return any(kernel.uses_rng for kernel in self.kernels)

    def apply(
        self,
        batch: "np.ndarray | Sequence[np.ndarray]",
        rngs: Optional[Sequence[np.random.Generator]] = None,
        lengths: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Run every kernel in order over the batch.

        Args:
            batch: ``(batch, samples)`` matrix or list of rows.
            rngs: one generator per row; required iff :attr:`uses_rng`.
                Stochastic stages consume their draws in pipeline order.
            lengths: true (pre-padding) sample count per row; kernels keep
                padding silent and size their draws by the true length.
        """
        stack = _as_batch(batch)
        if self.uses_rng and rngs is not None and len(rngs) != stack.shape[0]:
            raise ConfigurationError(
                f"got {len(rngs)} generators for {stack.shape[0]} rows"
            )
        out = stack.copy() if not self.kernels else stack
        for kernel in self.kernels:
            out = kernel.apply(out, rngs, lengths)
        return out

    def apply_one(
        self,
        waveform: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Scalar convenience: impair one waveform (batch-of-one)."""
        rngs = None if rng is None else [rng]
        return self.apply(np.asarray(waveform)[np.newaxis, :], rngs)[0]
