"""Stateless channel-impairment kernels over ``(batch, samples)`` matrices.

Each kernel models one RF imperfection of the paper's USRP/TelosB testbed
that the idealised path-loss + AWGN substitute channel leaves out:

* :class:`CarrierFrequencyOffset` — crystal mismatch between transmitter
  and receiver (802.11 allows +-20 ppm per side, +-40 ppm net).
* :class:`SamplingClockOffset` — the same crystal error applied to the ADC
  sampling instants (samples slowly drift against the symbol grid).
* :class:`IQImbalance` — gain/phase mismatch between the I and Q rails of
  a direct-conversion front end (image leakage).
* :class:`PhaseNoise` — oscillator phase as a Wiener random walk.
* :class:`Multipath` — tapped-delay-line fading (Rayleigh or Rician taps,
  exponentially decaying power profile, or explicit taps).
* :class:`Adc` — mid-tread quantization plus clipping of each rail.

Kernel contract
---------------

Every kernel is a frozen dataclass with an ``apply(batch, rngs=None,
lengths=None)`` method mapping a ``(batch, samples)`` complex matrix to a
new matrix of the same shape:

* **Statelessness** — all configuration lives in the dataclass fields; the
  kernel object carries no mutable state, so one instance can serve any
  number of batches concurrently.
* **Determinism** — a stochastic kernel (``uses_rng`` True) draws row *k*'s
  randomness only from ``rngs[k]``, in an order fixed by the kernel's
  definition.  Because a trial's generator is addressed by trial index (see
  :mod:`repro.montecarlo.seeding`) and never shared between rows, impaired
  trials are bit-identical at any batch size or worker count.
* **Padding is silence** — when *lengths* gives each row's true
  (pre-padding) sample count, a kernel confines its effect (and any
  per-sample randomness) to the first ``lengths[k]`` samples, and padding
  stays exactly zero.  Stochastic draws are sized by the true length, so a
  padded batch reproduces the unpadded scalar calls bit for bit.

The pipeline composing kernels lives in
:mod:`repro.impairments.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.channel.batch import _as_batch
from repro.errors import ConfigurationError

__all__ = [
    "ImpairmentKernel",
    "CarrierFrequencyOffset",
    "SamplingClockOffset",
    "IQImbalance",
    "PhaseNoise",
    "Multipath",
    "Adc",
]


def _true_lengths(
    batch: np.ndarray, lengths: Optional[Sequence[int]]
) -> np.ndarray:
    """Per-row true sample counts, defaulting to the full row width."""
    n, total = batch.shape
    if lengths is None:
        return np.full(n, total, dtype=np.int64)
    if len(lengths) != n:
        raise ConfigurationError(f"got {len(lengths)} lengths for {n} rows")
    out = np.asarray([int(ell) for ell in lengths], dtype=np.int64)
    if np.any(out <= 0) or np.any(out > total):
        raise ConfigurationError("lengths must lie in [1, row width]")
    return out


def _check_rngs(rngs: Optional[Sequence[np.random.Generator]], n: int) -> None:
    if rngs is None:
        raise ConfigurationError(
            "this impairment draws randomness; pass one Generator per row "
            "(derive them from the trial streams, repro.montecarlo.seeding)"
        )
    if len(rngs) != n:
        raise ConfigurationError(f"got {len(rngs)} generators for {n} rows")


@dataclass(frozen=True)
class ImpairmentKernel:
    """Base class: a stateless ``(batch, samples) -> (batch, samples)`` map."""

    #: Whether :meth:`apply` consumes randomness from the per-row generators.
    uses_rng = False

    def apply(
        self,
        batch: "np.ndarray | Sequence[np.ndarray]",
        rngs: Optional[Sequence[np.random.Generator]] = None,
        lengths: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def apply_one(
        self,
        waveform: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Scalar convenience: impair one waveform (batch-of-one)."""
        rngs = None if rng is None else [rng]
        return self.apply(np.asarray(waveform)[np.newaxis, :], rngs)[0]


@dataclass(frozen=True)
class CarrierFrequencyOffset(ImpairmentKernel):
    """Constant carrier offset: rotate each sample by ``2*pi*f*n/fs``.

    The phase origin is sample 0 of each row (the
    :func:`repro.channel.awgn.frequency_shift` convention), so an offset of
    0 Hz is the exact identity and +f followed by -f composes back to the
    input bit for bit.
    """

    offset_hz: float
    sample_rate_hz: float

    def apply(self, batch, rngs=None, lengths=None):
        stack = _as_batch(batch)
        if self.offset_hz == 0.0:
            return stack.copy()
        n = np.arange(stack.shape[1])
        phase = np.exp(2j * np.pi * self.offset_hz * n / self.sample_rate_hz)
        return stack * phase[np.newaxis, :]


@dataclass(frozen=True)
class SamplingClockOffset(ImpairmentKernel):
    """Sampling-clock error of *ppm* parts per million.

    The receiver's ADC samples at ``fs * (1 + ppm * 1e-6)`` relative to the
    transmit clock; the kernel resamples each row onto that grid by linear
    interpolation.  Reads past a row's true extent return silence, and the
    output keeps the input width.  ``ppm=0`` is the exact identity.
    """

    ppm: float

    def apply(self, batch, rngs=None, lengths=None):
        stack = _as_batch(batch)
        if self.ppm == 0.0:
            return stack.copy()
        n, total = stack.shape
        ells = _true_lengths(stack, lengths)
        out = np.zeros_like(stack)
        step = 1.0 + self.ppm * 1e-6
        for k in range(n):
            ell = int(ells[k])
            positions = np.arange(ell) * step
            base = np.floor(positions).astype(np.int64)
            frac = positions - base
            valid = base < ell
            left = np.where(valid, stack[k, np.minimum(base, ell - 1)], 0.0)
            has_right = base + 1 < ell
            right = np.where(
                has_right, stack[k, np.minimum(base + 1, ell - 1)], 0.0
            )
            row = np.where(valid, left * (1.0 - frac) + right * frac, 0.0)
            out[k, :ell] = row
        return out


@dataclass(frozen=True)
class IQImbalance(ImpairmentKernel):
    """Gain/phase mismatch between the I and Q rails (image leakage).

    Uses the standard two-coefficient model ``y = k1*x + k2*conj(x)`` with
    ``k1 = (1 + g*exp(-j*phi)) / 2`` and ``k2 = (1 - g*exp(j*phi)) / 2``
    where *g* is the amplitude ratio and *phi* the quadrature error.  At
    0 dB / 0 degrees both collapse to the identity.  The map is real-linear
    in the waveform, so it commutes with any real gain.
    """

    gain_db: float = 0.0
    phase_deg: float = 0.0

    def apply(self, batch, rngs=None, lengths=None):
        stack = _as_batch(batch)
        if self.gain_db == 0.0 and self.phase_deg == 0.0:
            return stack.copy()
        g = 10.0 ** (self.gain_db / 20.0)
        phi = np.deg2rad(self.phase_deg)
        k1 = (1.0 + g * np.exp(-1j * phi)) / 2.0
        k2 = (1.0 - g * np.exp(1j * phi)) / 2.0
        return k1 * stack + k2 * np.conj(stack)


@dataclass(frozen=True)
class PhaseNoise(ImpairmentKernel):
    """Oscillator phase noise as a Wiener (random-walk) process.

    Each row is rotated by ``exp(j * cumsum(steps))`` where the steps are
    zero-mean Gaussian with standard deviation *rms_step_rad* per sample,
    drawn from that row's generator (one ``normal(size=true_length)`` call,
    so the draw count never depends on batch padding).
    """

    rms_step_rad: float

    uses_rng = True

    def apply(self, batch, rngs=None, lengths=None):
        stack = _as_batch(batch)
        _check_rngs(rngs, stack.shape[0])
        ells = _true_lengths(stack, lengths)
        out = stack.copy()
        for k, rng in enumerate(rngs):
            ell = int(ells[k])
            steps = rng.normal(size=ell) * self.rms_step_rad
            out[k, :ell] *= np.exp(1j * np.cumsum(steps))
        return out


@dataclass(frozen=True)
class Multipath(ImpairmentKernel):
    """Tapped-delay-line multipath fading.

    Without explicit *taps*, each row draws its own tap gains from its
    generator: an exponentially decaying power profile
    (``decay_db_per_tap`` per tap, normalised to unit total power so the
    channel is SNR-neutral on average), Rayleigh taps by default, or a
    Rician first tap of the given K-factor with ``profile="rician"``.  One
    ``normal(size=(n_taps, 2))`` draw per row, independent of batch layout.

    With ``taps=(...)`` the kernel is deterministic and convolves every row
    with exactly those complex gains — ``taps=(1,)`` is the identity.

    The output keeps the input extent: echo tails beyond a row's true
    length are truncated (the frame window a receiver would capture).
    """

    n_taps: int = 4
    tap_spacing_samples: int = 1
    profile: str = "rayleigh"
    k_factor_db: float = 6.0
    decay_db_per_tap: float = 3.0
    taps: Optional[Tuple[complex, ...]] = None

    uses_rng = True

    def __post_init__(self) -> None:
        if self.profile not in ("rayleigh", "rician"):
            raise ConfigurationError(f"unknown multipath profile {self.profile!r}")
        if self.taps is None and self.n_taps < 1:
            raise ConfigurationError("n_taps must be at least 1")
        if self.tap_spacing_samples < 1:
            raise ConfigurationError("tap_spacing_samples must be at least 1")
        # Explicit taps need no randomness; announce that to the pipeline.
        if self.taps is not None:
            object.__setattr__(self, "uses_rng", False)

    def _profile_powers(self) -> np.ndarray:
        powers = 10.0 ** (
            -self.decay_db_per_tap * np.arange(self.n_taps) / 10.0
        )
        return powers / powers.sum()

    def _draw_taps(self, rng: np.random.Generator) -> np.ndarray:
        powers = self._profile_powers()
        raw = rng.normal(size=(self.n_taps, 2))
        scattered = (raw[:, 0] + 1j * raw[:, 1]) * np.sqrt(powers / 2.0)
        if self.profile == "rayleigh":
            return scattered
        # Rician: the first tap carries a deterministic LOS component of
        # K/(K+1) of its power plus a scattered part of 1/(K+1).
        k_lin = 10.0 ** (self.k_factor_db / 10.0)
        taps = scattered.copy()
        taps[0] = np.sqrt(powers[0] * k_lin / (k_lin + 1.0)) + scattered[
            0
        ] * np.sqrt(1.0 / (k_lin + 1.0))
        return taps

    def apply(self, batch, rngs=None, lengths=None):
        stack = _as_batch(batch)
        n = stack.shape[0]
        if self.taps is None:
            _check_rngs(rngs, n)
            all_taps = [self._draw_taps(rng) for rng in rngs]
        else:
            all_taps = [np.asarray(self.taps, dtype=np.complex128)] * n
        ells = _true_lengths(stack, lengths)
        out = np.zeros_like(stack)
        for k in range(n):
            ell = int(ells[k])
            row = stack[k, :ell]
            acc = np.zeros(ell, dtype=np.complex128)
            for i, h in enumerate(all_taps[k]):
                delay = i * self.tap_spacing_samples
                if delay >= ell:
                    break
                acc[delay:] += h * row[: ell - delay]
            out[k, :ell] = acc
        return out


@dataclass(frozen=True)
class Adc(ImpairmentKernel):
    """ADC model: per-rail clipping and mid-tread uniform quantization.

    Each rail (real and imaginary) is clipped to ``[-full_scale,
    +full_scale]`` and rounded to one of ``2**n_bits - 1`` mid-tread levels
    (level spacing ``full_scale / (2**(n_bits-1) - 1)``).  Mid-tread keeps
    zero exactly representable — silence stays silence — and makes the
    kernel idempotent: every output level is its own quantization, clipped
    samples included.
    """

    n_bits: int = 10
    full_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_bits < 2:
            raise ConfigurationError("Adc needs at least 2 bits")
        if self.full_scale <= 0.0:
            raise ConfigurationError("full_scale must be positive")

    def _quantize_rail(self, rail: np.ndarray) -> np.ndarray:
        levels = 2 ** (self.n_bits - 1) - 1
        delta = self.full_scale / levels
        idx = np.clip(np.round(rail / delta), -levels, levels)
        return idx * delta

    def apply(self, batch, rngs=None, lengths=None):
        stack = _as_batch(batch)
        return self._quantize_rail(stack.real) + 1j * self._quantize_rail(
            stack.imag
        )
