"""SledZig reproduction: subcarrier-level energy decreasing for coexistence.

Reproduces *SledZig: Boosting Cross-Technology Coexistence for Low-Power
Wireless Devices* (ICDCS 2022) as a pure-Python system:

* :mod:`repro.wifi` — full 802.11 OFDM PHY (the standard chain SledZig
  rides on, bit-exact through scrambler/coder/interleaver/QAM/OFDM);
* :mod:`repro.zigbee` — full 802.15.4 PHY (DSSS, O-QPSK, framing);
* :mod:`repro.sledzig` — the paper's contribution: significant-bit
  derivation, extra-bit insertion, receive-side stripping and channel
  detection;
* :mod:`repro.channel` — calibrated propagation in the paper's reported-dB
  domain;
* :mod:`repro.mac` — discrete-event CSMA/CA coexistence simulator;
* :mod:`repro.experiments` — regenerates every table and figure.

Quickstart::

    from repro import SledZigTransmitter, SledZigReceiver

    tx = SledZigTransmitter("qam64-2/3", "CH4")
    packet = tx.send(b"hello zigbee neighbourhood")
    rx = SledZigReceiver()           # detects the protected channel itself
    print(rx.receive(packet.waveform).payload)
"""

from repro.errors import (
    ConfigurationError,
    DecodingError,
    EncodingError,
    InsertionError,
    ReproError,
    SimulationError,
    SynchronizationError,
)
from repro.sledzig import (
    OverlapChannel,
    SledZigDecoder,
    SledZigEncoder,
    SledZigReceiver,
    SledZigTransmitter,
    all_channels,
    get_channel,
)
from repro.wifi import WifiReceiver, WifiTransmitter, get_mcs
from repro.zigbee import ZigbeeReceiver, ZigbeeTransmitter

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "DecodingError",
    "EncodingError",
    "InsertionError",
    "ReproError",
    "SimulationError",
    "SynchronizationError",
    "OverlapChannel",
    "SledZigDecoder",
    "SledZigEncoder",
    "SledZigReceiver",
    "SledZigTransmitter",
    "all_channels",
    "get_channel",
    "WifiReceiver",
    "WifiTransmitter",
    "get_mcs",
    "ZigbeeReceiver",
    "ZigbeeTransmitter",
    "__version__",
]
