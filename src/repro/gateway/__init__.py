"""Coexistence-gateway service layer: many clients, one warm encode path.

SledZig is an encode-side transform on a fully standard 802.11 chain,
which makes it a natural *service*: clients submit individual frames, the
gateway coalesces them into the existing ``encode_frames`` batch APIs and
executes batches on a persistent, cache-warm worker pool.  See
:mod:`repro.gateway.server` for the serving guarantees and DESIGN.md
("The coexistence gateway") for the architecture.
"""

from repro.gateway.policy import BatchPolicy, EncodeProfile, make_batch_encoder
from repro.gateway.pool import EncodeWorkerPool, task_bytes
from repro.gateway.server import GatewayClient, GatewayServer

__all__ = [
    "BatchPolicy",
    "EncodeProfile",
    "EncodeWorkerPool",
    "GatewayClient",
    "GatewayServer",
    "make_batch_encoder",
    "task_bytes",
]
