"""Persistent encode worker pool with warm per-worker caches.

The gateway's hot path is ``encode_frames`` over a coalesced batch.  Two
execution modes share one interface:

* **inline** (``workers=0``): batches encode synchronously in the calling
  process — deterministic, zero IPC, the mode the property tests and the
  load-smoke benchmark use;
* **process** (``workers >= 1``): a :class:`~concurrent.futures.
  ProcessPoolExecutor` whose *initializer* builds every profile's warm
  encoder (transmitter objects plus the :mod:`repro.dsp` table caches)
  once per worker.  A task then ships only ``(profile index, payload
  bytes)`` — never transmitters, tables, or waveform arrays — so the
  per-task pickle cost is bounded by the payloads themselves
  (:func:`task_bytes`, pinned by ``tests/gateway/test_pool.py``).

A worker killed mid-batch surfaces as
:class:`~repro.errors.WorkerPoolError` on that batch's future; the pool
object is then *broken* and :meth:`EncodeWorkerPool.restart` builds a
fresh executor (the server does this automatically before the next
dispatch).
"""

from __future__ import annotations

import pickle
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, WorkerPoolError
from repro.gateway.policy import BatchEncoder, EncodeProfile, make_batch_encoder

__all__ = ["EncodeWorkerPool", "task_bytes"]

#: Per-worker warm encoders, built once by the pool initializer and keyed
#: by position in the profile tuple the initializer received.
_WORKER_ENCODERS: Dict[int, BatchEncoder] = {}


def _warm_worker(profiles: Tuple[EncodeProfile, ...]) -> None:
    """Pool initializer: build every profile's encoder in this worker."""
    _WORKER_ENCODERS.clear()
    for index, profile in enumerate(profiles):
        _WORKER_ENCODERS[index] = make_batch_encoder(profile)


def _encode_task(profile_index: int, payloads: List[bytes]) -> List[np.ndarray]:
    """Worker-process task: encode one batch with the warm encoder."""
    encoder = _WORKER_ENCODERS.get(profile_index)
    if encoder is None:
        raise ConfigurationError(
            f"worker has no warm encoder for profile index {profile_index}"
        )
    return encoder(payloads)


def task_bytes(profile_index: int, payloads: Sequence[bytes]) -> int:
    """Pickled size of one pool task's arguments.

    The hand-off contract the regression tests bound: a task carries the
    profile *index* and the payload bytes, nothing else — warm state
    travels once via the initializer.
    """
    return len(pickle.dumps((profile_index, list(payloads))))


class EncodeWorkerPool:
    """Batch-encode executor over a fixed set of profiles.

    Args:
        profiles: every profile the pool may be asked to encode for;
            process workers warm all of them at start.
        workers: 0 encodes inline in the calling process; >= 1 runs a
            process pool of that size.
    """

    def __init__(
        self, profiles: Sequence[EncodeProfile], workers: int = 0
    ) -> None:
        if not profiles:
            raise ConfigurationError("pool needs at least one profile")
        if workers < 0:
            raise ConfigurationError("workers must be non-negative")
        self.profiles: Tuple[EncodeProfile, ...] = tuple(profiles)
        self.workers = int(workers)
        self._index = {p.key(): i for i, p in enumerate(self.profiles)}
        if len(self._index) != len(self.profiles):
            raise ConfigurationError("duplicate profiles in pool")
        self._inline: Dict[int, BatchEncoder] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self.broken = False
        self.restarts = 0
        if self.workers:
            self._executor = self._make_executor()

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_warm_worker,
            initargs=(self.profiles,),
        )

    def profile_index(self, profile: EncodeProfile) -> int:
        """Stable index of *profile* within this pool."""
        try:
            return self._index[profile.key()]
        except KeyError:
            raise ConfigurationError(
                f"profile {profile.technology}/{profile.mcs} not registered "
                "with this pool"
            ) from None

    def _inline_encoder(self, index: int) -> BatchEncoder:
        encoder = self._inline.get(index)
        if encoder is None:
            encoder = self._inline[index] = make_batch_encoder(
                self.profiles[index]
            )
        return encoder

    def submit(self, profile_index: int, payloads: List[bytes]) -> "Future":
        """Encode one batch; returns a future of the waveform list.

        Inline mode encodes synchronously (the future is already done);
        process mode submits to the executor.  A dead worker resolves the
        future with :class:`~repro.errors.WorkerPoolError` and marks the
        pool broken.
        """
        if not 0 <= profile_index < len(self.profiles):
            raise ConfigurationError(f"unknown profile index {profile_index}")
        if self._executor is None:
            future: "Future" = Future()
            try:
                future.set_result(self._inline_encoder(profile_index)(payloads))
            except Exception as exc:
                # Boundary: the submitting client owns this failure; the
                # server maps it onto the batch's requests as a typed
                # drop (unexpected types are re-raised there as bugs).
                future.set_exception(exc)
            return future
        if self.broken:
            future = Future()
            future.set_exception(WorkerPoolError("encode worker pool is broken"))
            return future
        raw = self._executor.submit(_encode_task, profile_index, payloads)
        wrapped: "Future" = Future()

        def _translate(done: "Future") -> None:
            if done.cancelled():
                wrapped.cancel()
                return
            error = done.exception()
            if isinstance(error, BrokenProcessPool):
                self.broken = True
                wrapped.set_exception(
                    WorkerPoolError(f"encode worker died mid-batch: {error}")
                )
            elif error is not None:
                wrapped.set_exception(error)
            else:
                wrapped.set_result(done.result())

        raw.add_done_callback(_translate)
        return wrapped

    def restart(self) -> None:
        """Replace a broken executor with a fresh, warm one."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self.workers:
            self._executor = self._make_executor()
        self.broken = False
        self.restarts += 1
        telemetry.current().count("gateway.pool.restarts")

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor (idempotent; inline mode is a no-op)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=True)
            self._executor = None
