"""Asyncio coexistence gateway: many clients, one warm encode pipeline.

:class:`GatewayServer` accepts per-frame encode requests, coalesces them
per :class:`~repro.gateway.policy.EncodeProfile` under a
max-batch/max-linger :class:`~repro.gateway.policy.BatchPolicy`, and
executes whole batches on an :class:`~repro.gateway.pool.EncodeWorkerPool`
— so a fleet of single-frame clients gets the vectorized throughput of
the ``encode_frames`` batch APIs without knowing batches exist.

Serving guarantees (all pinned by ``tests/gateway/``):

* **Determinism.**  Coalescing never changes bits: each request's
  waveform is identical to what one direct ``encode_frames`` call on the
  same payloads would produce, for any interleaving and any batch size.
* **Backpressure.**  At most ``max_pending`` admitted requests wait for
  dispatch; submission beyond that raises
  :class:`~repro.errors.GatewayOverloadError` *at submit time*.
* **Deadlines.**  A request with ``timeout_s`` that is still queued when
  its deadline passes is dropped with
  :class:`~repro.errors.DeadlineExpiredError` and never reaches a worker;
  one already in flight has its late result discarded.  In-flight batches
  are capped, so a stalled pool cannot silently absorb the queue.
* **Fault surfacing.**  A worker killed mid-batch fails that batch's
  requests with :class:`~repro.errors.WorkerPoolError`; the pool is
  replaced before the next dispatch.  Every drop increments a matching
  ``gateway.drop.<Cause>`` telemetry counter — the SLO snapshot and the
  counters always agree.

Shutdown is graceful: :meth:`GatewayServer.aclose` stops admission,
flushes partial batches immediately, waits for in-flight work, and shuts
the pool down.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.errors import (
    ConfigurationError,
    DeadlineExpiredError,
    GatewayOverloadError,
    GatewayShutdownError,
    ReproError,
)
from repro.gateway.policy import BatchPolicy, EncodeProfile
from repro.gateway.pool import EncodeWorkerPool
from repro.telemetry.quantiles import Reservoir

__all__ = ["GatewayClient", "GatewayServer"]


@dataclass
class _Request:
    """One admitted encode request awaiting its waveform."""

    payload: bytes
    profile_index: int
    future: "asyncio.Future[np.ndarray]"
    enqueued: float
    timer: "Optional[asyncio.TimerHandle]" = field(default=None)

    def settle(self) -> None:
        """Cancel the deadline timer (the request has been resolved)."""
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class GatewayServer:
    """Batch-coalescing encode front end over a persistent worker pool.

    Args:
        profiles: the encode profiles this gateway serves (requests
            default to the first).
        policy: coalescing/backpressure bounds.
        workers: 0 encodes inline (deterministic, test/benchmark mode);
            >= 1 runs that many warm worker processes.
        latency_cap: retained-sample bound of the latency reservoir.

    Use as an async context manager, or call :meth:`start` /
    :meth:`aclose` explicitly.  All methods must run on the event loop
    the server was started on.
    """

    def __init__(
        self,
        profiles: "Sequence[EncodeProfile] | EncodeProfile | None" = None,
        policy: Optional[BatchPolicy] = None,
        workers: int = 0,
        latency_cap: int = 4096,
    ) -> None:
        if profiles is None:
            profiles = (EncodeProfile(),)
        elif isinstance(profiles, EncodeProfile):
            profiles = (profiles,)
        self.profiles = tuple(profiles)
        self.policy = policy or BatchPolicy()
        self.workers = int(workers)
        self._pool = EncodeWorkerPool(self.profiles, workers=self.workers)
        self._pending: List["list[_Request]"] = [[] for _ in self.profiles]
        self._total_pending = 0
        self._queue_high_water = 0
        self._inflight: "set[asyncio.Task]" = set()
        self._max_inflight = 1 if self.workers == 0 else 2 * self.workers
        self._latency = Reservoir(latency_cap)
        self._batch_fill: Dict[int, int] = {}
        self._drops: Dict[str, int] = {}
        self._requests = 0
        self._encoded = 0
        self._closing = False
        self._started = False
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._wake: "asyncio.Event | None" = None
        self._idle: "asyncio.Event | None" = None
        self._batcher: "asyncio.Task | None" = None

    async def __aenter__(self) -> "GatewayServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def start(self) -> None:
        """Bind to the running loop and start the batcher task."""
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._batcher = self._loop.create_task(self._run_batcher())
        self._started = True

    # -- submission ----------------------------------------------------

    def submit(
        self,
        payload: bytes,
        profile: Optional[EncodeProfile] = None,
        timeout_s: Optional[float] = None,
    ) -> "asyncio.Future[np.ndarray]":
        """Admit one encode request; the future resolves to its waveform.

        Raises:
            GatewayShutdownError: the gateway is draining or closed.
            GatewayOverloadError: the admission queue is full.
        """
        if self._loop is None:
            raise ConfigurationError("gateway not started (use `async with`)")
        tel = telemetry.current()
        tel.count("gateway.requests")
        self._requests += 1
        if self._closing:
            self._count_drop(GatewayShutdownError)
            raise GatewayShutdownError("gateway is draining; request refused")
        if self._total_pending >= self.policy.max_pending:
            self._count_drop(GatewayOverloadError)
            raise GatewayOverloadError(
                f"admission queue full ({self.policy.max_pending} pending)"
            )
        index = (
            0 if profile is None else self._pool.profile_index(profile)
        )
        request = _Request(
            payload=bytes(payload),
            profile_index=index,
            future=self._loop.create_future(),
            enqueued=self._loop.time(),
        )
        if timeout_s is not None:
            request.timer = self._loop.call_later(
                timeout_s, self._expire, request
            )
        self._pending[index].append(request)
        self._total_pending += 1
        if self._total_pending > self._queue_high_water:
            self._queue_high_water = self._total_pending
        self._idle.clear()
        self._wake.set()
        return request.future

    def _expire(self, request: _Request) -> None:
        """Deadline timer callback: drop *request* if still unresolved."""
        request.timer = None
        if request.future.done():
            return
        self._count_drop(DeadlineExpiredError)
        request.future.set_exception(
            DeadlineExpiredError("request deadline passed before encode")
        )

    def _count_drop(self, cause: "type[ReproError] | ReproError") -> None:
        name = (
            cause.__name__
            if isinstance(cause, type)
            else type(cause).__name__
        )
        self._drops[name] = self._drops.get(name, 0) + 1
        telemetry.current().count(f"gateway.drop.{name}")

    # -- batching ------------------------------------------------------

    async def _run_batcher(self) -> None:
        """Coalesce pending requests into batches and dispatch them."""
        assert self._loop is not None and self._wake is not None
        policy = self.policy
        while True:
            if self._total_pending == 0 or len(self._inflight) >= self._max_inflight:
                self._wake.clear()
                # Re-check between clear and wait: a submit/completion in
                # the gap sets the event and wait() returns immediately.
                if self._total_pending == 0 or len(self._inflight) >= self._max_inflight:
                    await self._wake.wait()
                continue
            now = self._loop.time()
            next_flush: Optional[float] = None
            dispatched = False
            for index, queue in enumerate(self._pending):
                if not queue:
                    continue
                full = len(queue) >= policy.max_batch
                aged = (now - queue[0].enqueued) >= policy.max_linger_s
                if full or aged or self._closing:
                    size = min(policy.max_batch, len(queue))
                    batch = queue[:size]
                    del queue[:size]
                    self._total_pending -= size
                    task = self._loop.create_task(
                        self._dispatch_batch(index, batch)
                    )
                    self._inflight.add(task)
                    task.add_done_callback(self._batch_done)
                    dispatched = True
                    if len(self._inflight) >= self._max_inflight:
                        break
                else:
                    flush_at = queue[0].enqueued + policy.max_linger_s
                    if next_flush is None or flush_at < next_flush:
                        next_flush = flush_at
            if dispatched:
                continue
            if next_flush is not None:
                delay = max(0.0, next_flush - self._loop.time())
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), delay)
                except asyncio.TimeoutError:
                    pass

    def _batch_done(self, task: "asyncio.Task") -> None:
        self._inflight.discard(task)
        if self._wake is not None:
            self._wake.set()
        self._note_progress()

    def _note_progress(self) -> None:
        if self._idle is not None and not self._total_pending and not self._inflight:
            self._idle.set()

    async def _dispatch_batch(
        self, index: int, batch: List[_Request]
    ) -> None:
        """Encode one coalesced batch and settle its requests."""
        tel = telemetry.current()
        # Requests that expired while queued are dropped here, before any
        # worker sees them; live ones keep their deadline timer armed so a
        # stalled pool cannot hold them past their deadline.
        live = [r for r in batch if not r.future.done()]
        if not live:
            return
        fill = len(live)
        tel.count("gateway.batches")
        tel.observe("gateway.batch.fill", fill)
        self._batch_fill[fill] = self._batch_fill.get(fill, 0) + 1
        if self._pool.broken:
            self._pool.restart()
        payloads = [r.payload for r in live]
        start = self._loop.time()
        try:
            waveforms = await asyncio.wrap_future(
                self._pool.submit(index, payloads), loop=self._loop
            )
        except ReproError as exc:
            self._fail_batch(live, exc)
            return
        except Exception as exc:
            # Boundary: a non-ReproError encode failure is a bug, but the
            # batcher must keep serving other clients — fail this batch's
            # futures with the real error (clients re-raise it) and count
            # it apart from the typed drop taxonomy.
            tel.count("gateway.error.unexpected")
            self._fail_batch(live, exc)
            return
        tel.observe("gateway.batch.encode_s", self._loop.time() - start)
        done_at = self._loop.time()
        for request, waveform in zip(live, waveforms):
            if request.future.done():
                continue  # expired mid-flight; result discarded
            request.settle()
            request.future.set_result(waveform)
            self._encoded += 1
            tel.count("gateway.ok")
            self._latency.observe(done_at - request.enqueued)

    def _fail_batch(self, live: List[_Request], error: Exception) -> None:
        for request in live:
            if request.future.done():
                continue
            request.settle()
            if isinstance(error, ReproError):
                self._count_drop(error)
            request.future.set_exception(error)

    # -- lifecycle -----------------------------------------------------

    async def drain(self) -> None:
        """Wait until no request is pending or in flight."""
        if self._idle is None:
            return
        self._note_progress()
        await self._idle.wait()

    async def aclose(self) -> None:
        """Stop admission, flush partial batches, wait, shut the pool down."""
        if not self._started:
            return
        self._closing = True
        if self._wake is not None:
            self._wake.set()  # flush partial batches without lingering
        await self.drain()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        self._pool.shutdown(wait=True)
        self._started = False

    # -- observability -------------------------------------------------

    def slo_snapshot(self) -> Dict[str, object]:
        """The gateway's SLO view, mirrored into telemetry gauges.

        Returns requests/encoded/drop counts, the latency reservoir
        summary (p50/p90/p99 in seconds), the batch-fill histogram and
        queue/pool health — the same numbers the ``gateway`` runner
        experiment writes into its ``--metrics-out`` manifest.
        """
        tel = telemetry.current()
        latency = self._latency.to_jsonable()
        tel.gauge("gateway.latency.p50_ms", latency["p50"] * 1e3)
        tel.gauge("gateway.latency.p99_ms", latency["p99"] * 1e3)
        tel.gauge("gateway.queue.high_water", self._queue_high_water)
        return {
            "requests": self._requests,
            "encoded": self._encoded,
            "drops": dict(sorted(self._drops.items())),
            "latency_s": latency,
            "batch_fill": {
                str(size): count
                for size, count in sorted(self._batch_fill.items())
            },
            "queue_high_water": self._queue_high_water,
            "pool_restarts": self._pool.restarts,
            "workers": self.workers,
        }


class GatewayClient:
    """In-process client of a :class:`GatewayServer` (awaitable API)."""

    def __init__(
        self,
        server: GatewayServer,
        profile: Optional[EncodeProfile] = None,
    ) -> None:
        self._server = server
        self._profile = profile

    async def encode(
        self, payload: bytes, timeout_s: Optional[float] = None
    ) -> np.ndarray:
        """Encode one payload; returns its PPDU waveform."""
        return await self._server.submit(
            payload, profile=self._profile, timeout_s=timeout_s
        )

    async def encode_many(
        self, payloads: Sequence[bytes], timeout_s: Optional[float] = None
    ) -> List[np.ndarray]:
        """Submit many payloads at once and await all their waveforms."""
        futures = [
            self._server.submit(
                payload, profile=self._profile, timeout_s=timeout_s
            )
            for payload in payloads
        ]
        return list(await asyncio.gather(*futures))
