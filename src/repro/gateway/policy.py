"""Gateway configuration: encode profiles and the batching policy.

An :class:`EncodeProfile` names one (technology, MCS, channel, scrambler
seed) encode pipeline; the gateway coalesces requests *per profile* so a
batch always flows through one ``encode_frames`` call of the existing
batch APIs.  A :class:`BatchPolicy` bounds how that coalescing behaves:
how many frames one batch may hold, how long the first request of a
partial batch may linger waiting for company, and how many admitted
requests may be pending before submission is refused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BatchPolicy", "EncodeProfile", "make_batch_encoder"]

#: A batch encoder: payload byte strings in, one waveform per payload out.
BatchEncoder = Callable[[Sequence[bytes]], List[np.ndarray]]


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing and admission bounds for the gateway.

    Attributes:
        max_batch: most frames one dispatched batch may carry.
        max_linger_s: longest the oldest pending request may wait for its
            batch to fill before a partial batch is dispatched anyway.
        max_pending: admitted-but-undispatched request bound; submission
            beyond it raises :class:`~repro.errors.GatewayOverloadError`.
    """

    max_batch: int = 32
    max_linger_s: float = 0.002
    max_pending: int = 256

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be at least 1")
        if self.max_linger_s < 0.0:
            raise ConfigurationError("max_linger_s must be non-negative")
        if self.max_pending < 1:
            raise ConfigurationError("max_pending must be at least 1")


@dataclass(frozen=True)
class EncodeProfile:
    """One encode pipeline the gateway serves.

    Attributes:
        technology: ``"sledzig"`` (SledZig-shaped 802.11 PPDUs) or
            ``"wifi"`` (plain 802.11 PPDUs); ignored when *encode_fn* is
            given.
        mcs: WiFi MCS name, e.g. ``"qam16-1/2"``.
        channel: overlap channel for SledZig profiles, e.g. ``"CH1"``.
        scrambler_seed: 802.11 scrambler seed.
        encode_fn: optional custom batch encoder (a picklable module-level
            callable — worker processes import it by reference).  Used by
            the fault-injection tests to install crashing/stalling
            encoders; production profiles leave it ``None``.
    """

    technology: str = "sledzig"
    mcs: str = "qam16-1/2"
    channel: str = "CH1"
    scrambler_seed: int = 93
    encode_fn: Optional[BatchEncoder] = None

    def __post_init__(self) -> None:
        if self.encode_fn is None and self.technology not in ("sledzig", "wifi"):
            raise ConfigurationError(
                f"unknown gateway technology {self.technology!r}; "
                "choose 'sledzig' or 'wifi' (or pass encode_fn)"
            )

    def key(self) -> Tuple:
        """Hashable identity used to group requests into batches."""
        return (
            self.technology,
            self.mcs,
            self.channel,
            self.scrambler_seed,
            self.encode_fn,
        )


def make_batch_encoder(profile: EncodeProfile) -> BatchEncoder:
    """Build the warm batch encoder for *profile*.

    Construction resolves the MCS/channel tables and instantiates the
    transmitter once; the returned closure reuses it for every batch, so
    worker processes pay the table-building cost in their initializer
    rather than per task.
    """
    if profile.encode_fn is not None:
        return profile.encode_fn
    if profile.technology == "sledzig":
        from repro.sledzig.pipeline import SledZigTransmitter

        transmitter = SledZigTransmitter(
            profile.mcs, profile.channel, profile.scrambler_seed
        )

        def encode_sledzig(payloads: Sequence[bytes]) -> List[np.ndarray]:
            return [tx.waveform for tx in transmitter.send_frames(payloads)]

        return encode_sledzig
    from repro.utils.bits import bytes_to_bits
    from repro.wifi.transmitter import WifiTransmitter

    wifi = WifiTransmitter(profile.mcs, profile.scrambler_seed)

    def encode_wifi(payloads: Sequence[bytes]) -> List[np.ndarray]:
        bit_payloads = [bytes_to_bits(p) for p in payloads]
        return [frame.waveform for frame in wifi.transmit_frames(bit_payloads)]

    return encode_wifi
